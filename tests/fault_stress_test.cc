// Randomized fault-injection stress harness (the ISSUE's acceptance gate):
// sweep many fault seeds through the full pipeline and the artifact store
// and assert the three robustness invariants under every seed —
//   1. no crash: every run ends in ok() or a typed Status,
//   2. no torn state: artifact directories always either load in full or
//      report NotFound; no `.tmp` / `.old` staging residue survives,
//   3. no silent drift: a run where no fault fired is bitwise identical to
//      the injector-off baseline.
// Seed count defaults to 50; CI and local soak runs override it with
// GRGAD_STRESS_SEEDS.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "src/core/artifacts.h"
#include "src/core/pipeline.h"
#include "src/core/run_context.h"
#include "src/data/example_graph.h"
#include "src/tensor/matrix.h"
#include "src/util/fault.h"
#include "src/util/status.h"

namespace grgad {
namespace {

namespace fs = std::filesystem;

int StressSeeds() {
  const char* env = std::getenv("GRGAD_STRESS_SEEDS");
  if (env == nullptr || env[0] == '\0') return 50;
  const int n = std::atoi(env);
  return n > 0 ? n : 50;
}

TpGrGadOptions QuickOptions(uint64_t seed = 42) {
  TpGrGadOptions options;
  options.seed = seed;
  options.mh_gae.base.epochs = 10;
  options.mh_gae.base.hidden_dim = 16;
  options.mh_gae.base.embed_dim = 8;
  options.mh_gae.anchor_fraction = 0.15;
  options.tpgcl.epochs = 8;
  options.tpgcl.hidden_dim = 16;
  options.tpgcl.embed_dim = 8;
  options.ReseedStages();
  return options;
}

fs::path TempDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("grgad_stress_" + name);
  fs::remove_all(dir);
  return dir;
}

bool ArtifactsIdentical(const PipelineArtifacts& a,
                        const PipelineArtifacts& b) {
  if (a.anchors != b.anchors || a.candidate_groups != b.candidate_groups ||
      a.group_scores != b.group_scores ||
      a.gae_node_errors != b.gae_node_errors ||
      a.tpgcl_loss_history != b.tpgcl_loss_history ||
      a.group_embeddings.rows() != b.group_embeddings.rows() ||
      a.group_embeddings.cols() != b.group_embeddings.cols() ||
      a.scored_groups.size() != b.scored_groups.size()) {
    return false;
  }
  for (size_t i = 0; i < a.group_embeddings.rows(); ++i) {
    for (size_t j = 0; j < a.group_embeddings.cols(); ++j) {
      if (a.group_embeddings(i, j) != b.group_embeddings(i, j)) return false;
    }
  }
  for (size_t i = 0; i < a.scored_groups.size(); ++i) {
    if (a.scored_groups[i].nodes != b.scored_groups[i].nodes ||
        a.scored_groups[i].score != b.scored_groups[i].score) {
      return false;
    }
  }
  return true;
}

class FaultStressTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disable(); }
};

TEST_F(FaultStressTest, PipelineSurvivesEveryFaultSeed) {
  const Dataset d = GenExampleGraph({});
  FaultInjector::Global().Disable();
  const auto baseline = TpGrGad(QuickOptions(7)).TryRun(d.graph);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  const int seeds = StressSeeds();
  int faulted_runs = 0;
  int clean_runs = 0;
  for (int seed = 0; seed < seeds; ++seed) {
    ASSERT_TRUE(FaultInjector::Global()
                    .Configure("seed=" + std::to_string(seed) + ",rate=0.02")
                    .ok());
    RunContext ctx;
    const auto result = TpGrGad(QuickOptions(7)).TryRun(d.graph, &ctx);
    const uint64_t fired = FaultInjector::Global().fired_count();
    FaultInjector::Global().Disable();

    if (!result.ok()) {
      // Invariant 1: a faulted run unwinds into a typed, non-empty status.
      EXPECT_NE(result.status().code(), StatusCode::kOk) << "seed " << seed;
      EXPECT_FALSE(result.status().message().empty()) << "seed " << seed;
      ++faulted_runs;
      continue;
    }
    if (fired == 0) {
      // Invariant 3: the armed-but-quiet injector must not perturb results.
      EXPECT_TRUE(ArtifactsIdentical(result.value(), baseline.value()))
          << "seed " << seed << " diverged from baseline without any fault";
      ++clean_runs;
    }
  }
  // rate=0.02 across hundreds of checks makes both outcomes near-certain
  // over >= 50 seeds; a zero here means the harness stopped exercising one
  // side of the contract.
  if (seeds >= 50) {
    EXPECT_GT(faulted_runs, 0) << "no seed injected any fault";
  }
  (void)clean_runs;
}

TEST_F(FaultStressTest, ArtifactStoreSurvivesEveryFaultSeed) {
  const fs::path dir = TempDir("artifacts");
  const Dataset d = GenExampleGraph({});
  FaultInjector::Global().Disable();
  const auto baseline = TpGrGad(QuickOptions(7)).TryRun(d.graph);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Known-good artifacts on disk; every faulted save must either replace
  // them in full or leave them byte-for-byte loadable.
  ASSERT_TRUE(SaveArtifacts(baseline.value(), dir.string()).ok());
  PipelineArtifacts next = baseline.value();

  const int seeds = StressSeeds();
  int failed_saves = 0;
  int committed_saves = 0;
  uint64_t committed_seed = baseline.value().seed;
  for (int seed = 0; seed < seeds; ++seed) {
    next.seed = static_cast<uint64_t>(seed + 1000);  // Distinguishable write.
    ASSERT_TRUE(
        FaultInjector::Global()
            .Configure("seed=" + std::to_string(seed) +
                       ",artifact/write=0.2,artifact/fsync=0.1,"
                       "artifact/rename=0.2,artifact/read=0.1")
            .ok());
    const Status save = SaveArtifacts(next, dir.string());
    FaultInjector::Global().Disable();

    // Invariant 2: no staging residue either way.
    EXPECT_FALSE(fs::exists(dir.string() + ".tmp")) << "seed " << seed;
    EXPECT_FALSE(fs::exists(dir.string() + ".old")) << "seed " << seed;

    const auto loaded = LoadArtifacts(dir.string());
    ASSERT_TRUE(loaded.ok())
        << "seed " << seed << ": " << loaded.status().ToString();
    if (save.ok()) {
      EXPECT_EQ(loaded.value().seed, next.seed) << "seed " << seed;
      committed_seed = next.seed;
      ++committed_saves;
    } else {
      EXPECT_FALSE(save.message().empty()) << "seed " << seed;
      // The directory holds exactly the previous committed generation —
      // never a mixture of old and new.
      EXPECT_EQ(loaded.value().seed, committed_seed) << "seed " << seed;
      EXPECT_TRUE(ArtifactsIdentical(loaded.value(), next))
          << "seed " << seed << " left torn artifact contents";
      ++failed_saves;
    }
  }
  if (seeds >= 50) {
    EXPECT_GT(failed_saves, 0) << "fault rates never failed a save";
    EXPECT_GT(committed_saves, 0) << "fault rates never allowed a save";
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace grgad
