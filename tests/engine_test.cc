// The Engine layer: stage decomposition equivalence, RunContext
// (cancellation / progress / telemetry), artifact persistence, the method
// registry, and string-keyed option overrides.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "src/core/artifacts.h"
#include "src/core/method_registry.h"
#include "src/core/options.h"
#include "src/core/pipeline.h"
#include "src/core/stages.h"
#include "src/data/example_graph.h"

namespace grgad {
namespace {

TpGrGadOptions QuickOptions(uint64_t seed = 7) {
  TpGrGadOptions options;
  options.seed = seed;
  options.mh_gae.base.epochs = 10;
  options.mh_gae.base.hidden_dim = 32;
  options.mh_gae.base.embed_dim = 16;
  options.mh_gae.anchor_fraction = 0.15;
  options.tpgcl.epochs = 8;
  options.tpgcl.hidden_dim = 32;
  options.tpgcl.embed_dim = 16;
  options.ReseedStages();
  return options;
}

void ExpectArtifactsIdentical(const PipelineArtifacts& a,
                              const PipelineArtifacts& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.anchors, b.anchors);
  EXPECT_EQ(a.candidate_groups, b.candidate_groups);
  ASSERT_EQ(a.group_embeddings.rows(), b.group_embeddings.rows());
  ASSERT_EQ(a.group_embeddings.cols(), b.group_embeddings.cols());
  for (size_t i = 0; i < a.group_embeddings.rows(); ++i) {
    for (size_t j = 0; j < a.group_embeddings.cols(); ++j) {
      EXPECT_EQ(a.group_embeddings(i, j), b.group_embeddings(i, j))
          << "embedding (" << i << "," << j << ")";
    }
  }
  EXPECT_EQ(a.group_scores, b.group_scores);
  ASSERT_EQ(a.scored_groups.size(), b.scored_groups.size());
  for (size_t i = 0; i < a.scored_groups.size(); ++i) {
    EXPECT_EQ(a.scored_groups[i].nodes, b.scored_groups[i].nodes);
    EXPECT_EQ(a.scored_groups[i].score, b.scored_groups[i].score);
  }
  EXPECT_EQ(a.gae_node_errors, b.gae_node_errors);
  EXPECT_EQ(a.tpgcl_loss_history, b.tpgcl_loss_history);
}

std::string TempDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("grgad_engine_test_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

// ---- stage decomposition ----------------------------------------------------

TEST(EngineStagesTest, StageByStageMatchesRunBitForBit) {
  // The legacy monolithic Run(), the fallible TryRun(), and a hand-driven
  // stage-by-stage execution must all produce byte-identical artifacts.
  const Dataset d = GenExampleGraph({});
  const TpGrGadOptions options = QuickOptions();
  const PipelineArtifacts via_run = TpGrGad(options).Run(d.graph);

  auto via_tryrun = TpGrGad(options).TryRun(d.graph);
  ASSERT_TRUE(via_tryrun.ok()) << via_tryrun.status().ToString();
  ExpectArtifactsIdentical(via_run, via_tryrun.value());

  PipelineArtifacts manual;
  manual.seed = options.seed;  // Provenance travels with the artifacts.
  auto anchors = RunAnchorStage(d.graph, options);
  ASSERT_TRUE(anchors.ok());
  manual.anchors = anchors.value().anchors;
  manual.gae_node_errors = anchors.value().node_errors;
  auto candidates = RunCandidateStage(d.graph, manual.anchors, options);
  ASSERT_TRUE(candidates.ok());
  manual.candidate_groups = candidates.value().groups;
  auto embedding =
      RunEmbeddingStage(d.graph, manual.candidate_groups, options);
  ASSERT_TRUE(embedding.ok());
  manual.group_embeddings = embedding.value().embeddings;
  manual.tpgcl_loss_history = embedding.value().loss_history;
  auto scoring = RunScoringStage(manual.group_embeddings,
                                 manual.candidate_groups, options);
  ASSERT_TRUE(scoring.ok());
  manual.group_scores = scoring.value().scores;
  manual.scored_groups = scoring.value().scored_groups;
  ExpectArtifactsIdentical(via_run, manual);
}

TEST(EngineStagesTest, BadInputsReturnStatusNotAbort) {
  const TpGrGadOptions options = QuickOptions();
  TpGrGad method(options);

  Graph empty;  // No nodes, no attributes.
  auto no_nodes = method.TryRun(empty);
  ASSERT_FALSE(no_nodes.ok());
  EXPECT_EQ(no_nodes.status().code(), StatusCode::kInvalidArgument);

  GraphBuilder builder(5);  // Nodes and edges but no attributes.
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  auto attrless = method.TryRun(builder.Build());
  ASSERT_FALSE(attrless.ok());
  EXPECT_EQ(attrless.status().code(), StatusCode::kInvalidArgument);

  GraphBuilder isolated(4);  // Attributed but edgeless: nothing to train on.
  auto edgeless = method.TryRun(isolated.Build(Matrix(4, 3, 0.5)));
  ASSERT_FALSE(edgeless.ok());
  EXPECT_EQ(edgeless.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineStagesTest, TooFewGroupsIsFailedPrecondition) {
  const Dataset d = GenExampleGraph({});
  const TpGrGadOptions options = QuickOptions();
  auto embedding = RunEmbeddingStage(d.graph, {{0, 1, 2}}, options);
  ASSERT_FALSE(embedding.ok());
  EXPECT_EQ(embedding.status().code(), StatusCode::kFailedPrecondition);

  auto scoring = RunScoringStage(Matrix(), {}, options);
  ASSERT_FALSE(scoring.ok());
  EXPECT_EQ(scoring.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineStagesTest, ScoringRejectsMisalignedInputs) {
  auto scoring = RunScoringStage(Matrix(3, 4), {{0, 1}, {2, 3}},
                                 QuickOptions());
  ASSERT_FALSE(scoring.ok());
  EXPECT_EQ(scoring.status().code(), StatusCode::kInvalidArgument);
}

// ---- RunContext: telemetry, progress, cancellation ---------------------------

TEST(RunContextTest, RecordsStageTimingsAndProgressEvents) {
  const Dataset d = GenExampleGraph({});
  RunContext ctx;
  std::vector<std::string> events;
  ctx.on_progress = [&events](const StageEvent& event) {
    events.push_back(event.stage + (event.finished ? ":done" : ":start"));
  };
  auto result = TpGrGad(QuickOptions()).TryRun(d.graph, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(ctx.stage_timings().size(), 4u);
  EXPECT_EQ(ctx.stage_timings()[0].stage, "anchors");
  EXPECT_EQ(ctx.stage_timings()[1].stage, "sampling");
  EXPECT_EQ(ctx.stage_timings()[2].stage, "embedding");
  EXPECT_EQ(ctx.stage_timings()[3].stage, "scoring");
  for (const StageTiming& t : ctx.stage_timings()) {
    EXPECT_GE(t.seconds, 0.0);
  }
  EXPECT_GT(ctx.TotalSeconds(), 0.0);

  const std::vector<std::string> expected = {
      "anchors:start",   "anchors:done",  "sampling:start", "sampling:done",
      "embedding:start", "embedding:done", "scoring:start",  "scoring:done"};
  EXPECT_EQ(events, expected);
}

TEST(RunContextTest, ContextDoesNotChangeResults) {
  const Dataset d = GenExampleGraph({});
  RunContext ctx;
  auto with_ctx = TpGrGad(QuickOptions()).TryRun(d.graph, &ctx);
  auto without_ctx = TpGrGad(QuickOptions()).TryRun(d.graph);
  ASSERT_TRUE(with_ctx.ok());
  ASSERT_TRUE(without_ctx.ok());
  ExpectArtifactsIdentical(with_ctx.value(), without_ctx.value());
}

TEST(RunContextTest, PreCancelledRunReturnsCancelled) {
  const Dataset d = GenExampleGraph({});
  RunContext ctx;
  ctx.RequestCancel();
  auto result = TpGrGad(QuickOptions()).TryRun(d.graph, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(ctx.stage_timings().empty());
}

TEST(RunContextTest, MidRunCancellationUnwindsCleanly) {
  // Cancel from the progress callback as the embedding stage starts: the
  // TPGCL training loop polls the token each epoch and bails out; the run
  // reports kCancelled and never reaches the scoring stage.
  const Dataset d = GenExampleGraph({});
  RunContext ctx;
  ctx.on_progress = [&ctx](const StageEvent& event) {
    if (event.stage == "embedding" && !event.finished) ctx.RequestCancel();
  };
  TpGrGadOptions options = QuickOptions();
  options.tpgcl.epochs = 10000;  // Would take minutes if not cancelled.
  auto result = TpGrGad(options).TryRun(d.graph, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  for (const StageTiming& t : ctx.stage_timings()) {
    EXPECT_NE(t.stage, "scoring");
  }
}

TEST(RunContextTest, CancellationFromAnotherThreadIsSafe) {
  const Dataset d = GenExampleGraph({});
  RunContext ctx;
  TpGrGadOptions options = QuickOptions();
  options.tpgcl.epochs = 10000;
  std::thread canceller([&ctx] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ctx.RequestCancel();
  });
  auto result = TpGrGad(options).TryRun(d.graph, &ctx);
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

// ---- artifact persistence -----------------------------------------------------

TEST(ArtifactsTest, SaveLoadRoundTripIsExact) {
  const Dataset d = GenExampleGraph({});
  auto result = TpGrGad(QuickOptions()).TryRun(d.graph);
  ASSERT_TRUE(result.ok());
  const PipelineArtifacts& artifacts = result.value();

  const std::string dir = TempDir("roundtrip");
  ASSERT_TRUE(SaveArtifacts(artifacts, dir).ok());
  auto reloaded = LoadArtifacts(dir);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ExpectArtifactsIdentical(artifacts, reloaded.value());
  std::filesystem::remove_all(dir);
}

TEST(ArtifactsTest, RescoreAfterReloadMatchesOriginalScores) {
  // The headline Engine property: reload saved embeddings and re-run only
  // the scoring stage — same detector and seed give bit-identical scores.
  const Dataset d = GenExampleGraph({});
  const TpGrGadOptions options = QuickOptions();
  auto result = TpGrGad(options).TryRun(d.graph);
  ASSERT_TRUE(result.ok());

  const std::string dir = TempDir("rescore");
  ASSERT_TRUE(SaveArtifacts(result.value(), dir).ok());
  auto reloaded = LoadArtifacts(dir);
  ASSERT_TRUE(reloaded.ok());

  auto rescored =
      RescoreArtifacts(reloaded.value(), options.detector, options.seed);
  ASSERT_TRUE(rescored.ok()) << rescored.status().ToString();
  EXPECT_EQ(rescored.value().scores, result.value().group_scores);

  // Swapping the detector re-scores the same embeddings without training.
  auto swapped = RescoreArtifacts(reloaded.value(), DetectorKind::kEnsemble,
                                  options.seed);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(swapped.value().scores.size(), result.value().group_scores.size());
  std::filesystem::remove_all(dir);
}

TEST(ArtifactsTest, LoadFromMissingDirectoryIsNotFound) {
  auto missing = LoadArtifacts(TempDir("missing"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(ArtifactsTest, RescoreWithoutEmbeddingsIsFailedPrecondition) {
  PipelineArtifacts artifacts;
  artifacts.candidate_groups = {{0, 1}, {2, 3}};
  auto rescored = RescoreArtifacts(artifacts, DetectorKind::kEcod, 42);
  ASSERT_FALSE(rescored.ok());
  EXPECT_EQ(rescored.status().code(), StatusCode::kFailedPrecondition);
}

// ---- method registry -----------------------------------------------------------

TEST(MethodRegistryTest, ListsAndConstructsEveryMethod) {
  const auto names = ListMethods();
  ASSERT_EQ(names.size(), 6u);
  for (const std::string& name : names) {
    auto method = MakeGroupDetector(name);
    ASSERT_TRUE(method.ok()) << name << ": " << method.status().ToString();
    ASSERT_NE(method.value(), nullptr) << name;
    EXPECT_FALSE(method.value()->Name().empty()) << name;

    auto keys = MethodOptionKeys(name);
    ASSERT_TRUE(keys.ok()) << name;
    EXPECT_FALSE(keys.value().empty()) << name;
  }
}

TEST(MethodRegistryTest, UnknownNameIsNotFound) {
  auto method = MakeGroupDetector("no-such-method");
  ASSERT_FALSE(method.ok());
  EXPECT_EQ(method.status().code(), StatusCode::kNotFound);
  auto keys = MethodOptionKeys("no-such-method");
  ASSERT_FALSE(keys.ok());
  EXPECT_EQ(keys.status().code(), StatusCode::kNotFound);
}

TEST(MethodRegistryTest, RegistryTpGrGadMatchesHandWiredOptions) {
  MethodOptions method_options;
  method_options.seed = 7;
  method_options.overrides = {
      "mh_gae.epochs=10",     "mh_gae.hidden_dim=32", "mh_gae.embed_dim=16",
      "mh_gae.anchor_fraction=0.15", "tpgcl.epochs=8", "tpgcl.hidden_dim=32",
      "tpgcl.embed_dim=16"};
  auto method = MakeGroupDetector("tp-grgad", method_options);
  ASSERT_TRUE(method.ok()) << method.status().ToString();
  const auto* tp = dynamic_cast<const TpGrGad*>(method.value().get());
  ASSERT_NE(tp, nullptr);

  const TpGrGadOptions expected = QuickOptions(7);
  EXPECT_EQ(tp->options().seed, expected.seed);
  EXPECT_EQ(tp->options().mh_gae.base.seed, expected.mh_gae.base.seed);
  EXPECT_EQ(tp->options().mh_gae.base.epochs, expected.mh_gae.base.epochs);
  EXPECT_EQ(tp->options().mh_gae.anchor_fraction,
            expected.mh_gae.anchor_fraction);
  EXPECT_EQ(tp->options().tpgcl.seed, expected.tpgcl.seed);
  EXPECT_EQ(tp->options().tpgcl.epochs, expected.tpgcl.epochs);
  EXPECT_EQ(tp->options().tpgcl.embed_dim, expected.tpgcl.embed_dim);
}

TEST(MethodRegistryTest, BadOverridesAreInvalidArgument) {
  MethodOptions method_options;
  method_options.overrides = {"no.such.key=3"};
  auto unknown_key = MakeGroupDetector("tp-grgad", method_options);
  ASSERT_FALSE(unknown_key.ok());
  EXPECT_EQ(unknown_key.status().code(), StatusCode::kInvalidArgument);

  method_options.overrides = {"tpgcl.epochs=banana"};
  auto bad_value = MakeGroupDetector("tp-grgad", method_options);
  ASSERT_FALSE(bad_value.ok());
  EXPECT_EQ(bad_value.status().code(), StatusCode::kInvalidArgument);

  method_options.overrides = {"not-an-assignment"};
  auto no_equals = MakeGroupDetector("deepfd", method_options);
  ASSERT_FALSE(no_equals.ok());
  EXPECT_EQ(no_equals.status().code(), StatusCode::kInvalidArgument);
}

// ---- option map ------------------------------------------------------------------

TEST(OptionMapTest, ParsesEveryBoundType) {
  TpGrGadOptions options;
  ASSERT_TRUE(ApplyTpGrGadOverrides(
                  &options, {"tpgcl.epochs=30", "mh_gae.lr=0.01",
                             "disable_tpgcl=true", "detector=ensemble",
                             "sampler.max_groups=500", "seed=99",
                             "mh_gae.target=A^5", "tpgcl.positive_aug=ND",
                             "sampler.path_mode=graphsnn"})
                  .ok());
  EXPECT_EQ(options.tpgcl.epochs, 30);
  EXPECT_DOUBLE_EQ(options.mh_gae.base.lr, 0.01);
  EXPECT_TRUE(options.disable_tpgcl);
  EXPECT_EQ(options.detector, DetectorKind::kEnsemble);
  EXPECT_EQ(options.sampler.max_groups, 500);
  EXPECT_EQ(options.seed, 99u);
  // "seed" re-propagates into the stage seeds, like the constructor.
  EXPECT_EQ(options.mh_gae.base.seed, 99u ^ 0x1);
  EXPECT_EQ(options.tpgcl.seed, 99u ^ 0x2);
  EXPECT_EQ(options.mh_gae.base.target, ReconTarget::kPower5);
  EXPECT_EQ(options.tpgcl.positive_aug, AugmentationKind::kNodeDrop);
  EXPECT_EQ(options.sampler.path_mode, PathSearchMode::kGraphSnnWeighted);
}

TEST(OptionMapTest, SeedOverrideKeepsExplicitStageSeedsEitherOrder) {
  // "seed" must never clobber an explicit stage-seed override, no matter
  // which order the two assignments appear in.
  TpGrGadOptions before_seed;
  ASSERT_TRUE(
      ApplyTpGrGadOverrides(&before_seed, {"tpgcl.seed=123", "seed=9"}).ok());
  EXPECT_EQ(before_seed.tpgcl.seed, 123u);
  EXPECT_EQ(before_seed.mh_gae.base.seed, 9u ^ 0x1);

  TpGrGadOptions after_seed;
  ASSERT_TRUE(
      ApplyTpGrGadOverrides(&after_seed, {"seed=9", "tpgcl.seed=123"}).ok());
  EXPECT_EQ(after_seed.tpgcl.seed, 123u);
  EXPECT_EQ(after_seed.mh_gae.base.seed, 9u ^ 0x1);
}

TEST(OptionMapTest, RejectsNegativeUnsignedAndOverflow) {
  TpGrGadOptions options;
  EXPECT_EQ(ApplyTpGrGadOverrides(&options, {"seed=-1"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ApplyTpGrGadOverrides(&options, {"tpgcl.epochs=4294967296"})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ApplyTpGrGadOverrides(&options, {"mh_gae.lr=1e999"}).code(),
            StatusCode::kInvalidArgument);
}

TEST(OptionMapTest, UnknownKeyListsKnownOptions) {
  TpGrGadOptions options;
  const Status status = ApplyTpGrGadOverrides(&options, {"bogus=1"});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("tpgcl.epochs"), std::string::npos);
}

TEST(OptionMapTest, StatusCancelledHasName) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace grgad
