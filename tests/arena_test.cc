// MatrixArena unit tests: buffer reuse, exact shape keying, stats
// accounting, scope nesting, and full teardown (including under
// cancellation mid-training).
#include "src/tensor/arena.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/data/example_graph.h"
#include "src/gae/gae_base.h"
#include "src/nn/autograd.h"
#include "src/nn/optim.h"
#include "src/tensor/matrix.h"

namespace grgad {
namespace {

TEST(MatrixArenaTest, AcquireIsZeroFilledAndShaped) {
  MatrixArena arena;
  Matrix m = arena.Acquire(3, 5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 5u);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_EQ(m.data()[i], 0.0);
}

TEST(MatrixArenaTest, ReleaseThenAcquireReusesTheBuffer) {
  MatrixArena arena;
  Matrix m = arena.Acquire(4, 4);
  const double* buffer = m.data();
  m.Fill(7.0);
  arena.Release(std::move(m));
  Matrix again = arena.Acquire(4, 4);
  EXPECT_EQ(again.data(), buffer);  // Same heap buffer came back...
  for (size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again.data()[i], 0.0);  // ...zeroed again.
  }
  const MatrixArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.acquired, 2u);
  EXPECT_EQ(stats.heap_allocs, 1u);
  EXPECT_EQ(stats.reused, 1u);
  EXPECT_EQ(stats.released, 1u);
}

TEST(MatrixArenaTest, ShapeKeyingIsExact) {
  MatrixArena arena;
  Matrix m = arena.Acquire(2, 6);
  arena.Release(std::move(m));
  // Same element count, different shape: must NOT be served from the free
  // list (shape keys are exact, not size-based).
  Matrix other = arena.Acquire(6, 2);
  EXPECT_EQ(arena.stats().heap_allocs, 2u);
  EXPECT_EQ(arena.stats().reused, 0u);
  arena.Release(std::move(other));
  Matrix back = arena.Acquire(2, 6);
  EXPECT_EQ(arena.stats().reused, 1u);
  EXPECT_EQ(arena.free_buffers(), 1u);  // The 6x2 is still parked.
  (void)back;
}

TEST(MatrixArenaTest, AcquireCopyMatchesSource) {
  MatrixArena arena;
  Matrix src = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Matrix copy = arena.AcquireCopy(src);
  EXPECT_TRUE(copy.ApproxEquals(src, 0.0));
}

TEST(MatrixArenaTest, StatsTrackBytesAndOutstanding) {
  MatrixArena arena;
  Matrix a = arena.Acquire(8, 8);
  Matrix b = arena.Acquire(8, 8);
  EXPECT_EQ(arena.outstanding(), 2);
  EXPECT_EQ(arena.stats().bytes_served, 2u * 64u * sizeof(double));
  EXPECT_EQ(arena.stats().heap_bytes, 2u * 64u * sizeof(double));
  arena.Release(std::move(a));
  EXPECT_EQ(arena.outstanding(), 1);
  EXPECT_EQ(arena.free_buffers(), 1u);
  arena.Release(std::move(b));
  EXPECT_EQ(arena.outstanding(), 0);
  arena.ResetStats();
  EXPECT_EQ(arena.stats().acquired, 0u);
}

TEST(MatrixArenaTest, ClearDropsParkedBuffers) {
  MatrixArena arena;
  arena.Release(arena.Acquire(3, 3));
  arena.Release(arena.Acquire(5, 2));
  EXPECT_EQ(arena.free_buffers(), 2u);
  arena.Clear();
  EXPECT_EQ(arena.free_buffers(), 0u);
  // The arena stays usable; the next acquire is a fresh heap allocation.
  const uint64_t before = arena.stats().heap_allocs;
  Matrix m = arena.Acquire(3, 3);
  EXPECT_EQ(arena.stats().heap_allocs, before + 1);
}

TEST(MatrixArenaTest, ReleaseIgnoresEmptyMatrices) {
  MatrixArena arena;
  arena.Release(Matrix());
  EXPECT_EQ(arena.stats().released, 0u);
  EXPECT_EQ(arena.free_buffers(), 0u);
}

TEST(ArenaScopeTest, InstallsAndRestoresNested) {
  EXPECT_EQ(CurrentArena(), nullptr);
  MatrixArena outer, inner;
  {
    ArenaScope outer_scope(&outer);
    EXPECT_EQ(CurrentArena(), &outer);
    {
      ArenaScope inner_scope(&inner);
      EXPECT_EQ(CurrentArena(), &inner);
      {
        ArenaScope off(nullptr);
        EXPECT_EQ(CurrentArena(), nullptr);
      }
      EXPECT_EQ(CurrentArena(), &inner);
    }
    EXPECT_EQ(CurrentArena(), &outer);
  }
  EXPECT_EQ(CurrentArena(), nullptr);
}

TEST(ArenaScopeTest, TapeTeardownReturnsEveryBuffer) {
  MatrixArena arena;
  {
    ArenaScope scope(&arena);
    Var w(Matrix::FromRows({{0.5, -0.25}, {1.0, 2.0}}),
          /*requires_grad=*/true);
    Var x(Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}}));
    Var loss = MeanAll(Relu(MatMul(x, w)));
    loss.Backward();
    EXPECT_GT(arena.outstanding(), 0);
  }
  // Every node (including the leaves' values and the parameter gradient)
  // has been destroyed; all buffers must be back on the free lists (the
  // negative balance is the adopted leaf values — see outstanding()).
  EXPECT_LE(arena.outstanding(), 0);
  EXPECT_GT(arena.stats().released, 0u);
}

TEST(ArenaScopeTest, SecondEpochIsHeapAllocationFree) {
  MatrixArena arena;
  ArenaScope scope(&arena);
  Var w(Matrix::FromRows({{0.5, -0.25}, {1.0, 2.0}}), /*requires_grad=*/true);
  Var x(Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}}));
  Adam adam({w});
  auto epoch = [&] {
    adam.ZeroGrad();
    Var loss = MeanAll(Relu(MatMul(x, w)));
    loss.Backward();
    adam.Step();
  };
  // Warmup: epoch 1 populates the free lists on tape teardown; epoch 2 may
  // still allocate one stray buffer (epoch 1 parked the parameter-gradient
  // buffer on its leaf node after the concurrency peak had passed).
  epoch();
  epoch();
  const uint64_t warm = arena.stats().heap_allocs;
  EXPECT_GT(warm, 0u);
  for (int i = 0; i < 5; ++i) epoch();
  EXPECT_EQ(arena.stats().heap_allocs, warm)
      << "steady-state epochs must not allocate";
  EXPECT_GT(arena.stats().reused, 0u);
}

TEST(ArenaTrainingTest, CancelledFitReturnsAllBuffers) {
  DatasetOptions data_options;
  data_options.seed = 11;
  const Dataset d = GenExampleGraph(data_options);
  MatrixArena arena;
  GaeOptions options;
  options.epochs = 50;
  options.hidden_dim = 8;
  options.embed_dim = 4;
  options.arena = &arena;
  options.cancel.RequestCancel();  // Fires at the first per-epoch poll.
  const GaeResult partial = GcnGae(options).Fit(d.graph);
  EXPECT_TRUE(partial.loss_history.empty());
  // The abandoned run's tape, parameters, and optimizer state buffers all
  // unwound through the arena: nothing may still be outstanding.
  EXPECT_LE(arena.outstanding(), 0);

  // The same (still-warm) arena serves a full fit afterwards.
  GaeOptions full = options;
  full.cancel = CancelToken();
  const GaeResult result = GcnGae(full).Fit(d.graph);
  EXPECT_EQ(result.loss_history.size(), 50u);
  EXPECT_LE(arena.outstanding(), 0);
}

TEST(ArenaTrainingTest, SecondFitIsHeapAllocationFree) {
  DatasetOptions data_options;
  data_options.seed = 11;
  const Dataset d = GenExampleGraph(data_options);
  MatrixArena arena;
  GaeOptions options;
  options.epochs = 4;
  options.hidden_dim = 8;
  options.embed_dim = 4;
  options.arena = &arena;
  const GaeResult first = GcnGae(options).Fit(d.graph);
  ASSERT_EQ(first.loss_history.size(), 4u);
  arena.ResetStats();
  const GaeResult second = GcnGae(options).Fit(d.graph);
  ASSERT_EQ(second.loss_history.size(), 4u);
  EXPECT_EQ(arena.stats().heap_allocs, 0u)
      << "a structurally identical fit on a warm arena must be served "
         "entirely from the free lists";
  EXPECT_GT(arena.stats().reused, 0u);
}

}  // namespace
}  // namespace grgad
