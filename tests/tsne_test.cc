// t-SNE: output geometry (centering, shape), determinism, and cluster
// preservation on well-separated Gaussian blobs.
#include <cmath>

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/viz/tsne.h"

namespace grgad {
namespace {

/// Two well-separated 8-d blobs of 30 points each.
struct Blobs {
  Matrix x;
  std::vector<int> labels;
};

Blobs MakeBlobs(uint64_t seed) {
  Rng rng(seed);
  Blobs data;
  data.x = Matrix(60, 8);
  data.labels.assign(60, 0);
  for (int i = 0; i < 60; ++i) {
    const bool second = i >= 30;
    data.labels[i] = second ? 1 : 0;
    for (int j = 0; j < 8; ++j) {
      data.x(i, j) = rng.Normal(second ? 6.0 : 0.0, 0.5);
    }
  }
  return data;
}

TsneOptions QuickTsne() {
  TsneOptions options;
  options.iterations = 150;
  return options;
}

TEST(TsneTest, OutputShapeAndCentering) {
  const Blobs data = MakeBlobs(1);
  const Matrix y = Tsne(data.x, QuickTsne());
  EXPECT_EQ(y.rows(), 60u);
  EXPECT_EQ(y.cols(), 2u);
  const auto center = y.ColMeans();
  EXPECT_NEAR(center[0], 0.0, 1e-6);
  EXPECT_NEAR(center[1], 0.0, 1e-6);
  for (size_t i = 0; i < y.rows(); ++i) {
    EXPECT_TRUE(std::isfinite(y(i, 0)));
    EXPECT_TRUE(std::isfinite(y(i, 1)));
  }
}

TEST(TsneTest, Deterministic) {
  const Blobs data = MakeBlobs(2);
  const Matrix a = Tsne(data.x, QuickTsne());
  const Matrix b = Tsne(data.x, QuickTsne());
  EXPECT_TRUE(a.ApproxEquals(b, 1e-12));
}

TEST(TsneTest, SeparatesBlobs) {
  const Blobs data = MakeBlobs(3);
  const Matrix y = Tsne(data.x, QuickTsne());
  EXPECT_GT(BinarySeparationScore(y, data.labels), 0.5);
}

TEST(TsneTest, PerplexityClampedForTinyInputs) {
  Rng rng(4);
  Matrix x = Matrix::Gaussian(6, 3, &rng);
  TsneOptions options;
  options.perplexity = 50.0;  // Way above n.
  options.iterations = 50;
  const Matrix y = Tsne(x, options);
  EXPECT_EQ(y.rows(), 6u);
  for (size_t i = 0; i < y.rows(); ++i) {
    EXPECT_TRUE(std::isfinite(y(i, 0)));
  }
}

TEST(SeparationScoreTest, PerfectAndDegenerate) {
  Matrix y(4, 2);
  y(0, 0) = 0.0;
  y(1, 0) = 0.1;
  y(2, 0) = 10.0;
  y(3, 0) = 10.1;
  EXPECT_GT(BinarySeparationScore(y, {0, 0, 1, 1}), 0.9);
  EXPECT_LT(BinarySeparationScore(y, {1, 0, 1, 0}), 0.1);
  EXPECT_DOUBLE_EQ(BinarySeparationScore(y, {0, 0, 0, 0}), 0.0);
}

}  // namespace
}  // namespace grgad
