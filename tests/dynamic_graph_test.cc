// DynamicGraph: slack-CSR mutation semantics, the immutable read contract
// (sorted rows, Edges()-order streaming), delta log + compaction, and the
// canonical-PackedView equivalence against a from-scratch GraphBuilder
// rebuild under randomized churn.
#include "src/graph/dynamic_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "src/graph/algorithms.h"
#include "src/util/rng.h"
#include "tests/kernel_test_util.h"

namespace grgad {
namespace {

Graph TriangleWithTail() {
  // 0-1-2 triangle, 2-3 tail.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddEdge(2, 3);
  return b.Build();
}

Graph RandomGraph(int n, int extra_edges, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (int v = 1; v < n; ++v) {
    b.AddEdge(v, static_cast<int>(rng.UniformInt(static_cast<uint64_t>(v))));
  }
  for (int e = 0; e < extra_edges; ++e) {
    const int u = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    if (u != v) b.AddEdge(u, v);
  }
  Matrix x = Matrix::Gaussian(n, 4, &rng);
  return b.Build(std::move(x));
}

/// The graph a from-scratch GraphBuilder would produce from dg's edge set.
Graph Rebuild(const DynamicGraph& dg) {
  GraphBuilder b(dg.num_nodes());
  dg.ForEachEdge([&b](int u, int v) { b.AddEdge(u, v); });
  return b.Build(dg.attributes());
}

/// Field-level equality of two graphs (offsets/rows/attrs), via the public
/// surface.
void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (int v = 0; v < a.num_nodes(); ++v) {
    auto na = a.Neighbors(v);
    auto nb = b.Neighbors(v);
    ASSERT_EQ(std::vector<int>(na.begin(), na.end()),
              std::vector<int>(nb.begin(), nb.end()))
        << "row " << v;
  }
  ASSERT_EQ(a.has_attributes(), b.has_attributes());
  if (a.has_attributes()) {
    EXPECT_TRUE(testing::BitwiseEqual(a.attributes(), b.attributes()));
  }
}

TEST(DynamicGraphTest, StartsIdenticalToBase) {
  Graph base = TriangleWithTail();
  DynamicGraph dg(base);
  EXPECT_EQ(dg.num_nodes(), 4);
  EXPECT_EQ(dg.num_edges(), 4);
  EXPECT_EQ(dg.Degree(2), 3);
  auto nb = dg.Neighbors(2);
  EXPECT_EQ(std::vector<int>(nb.begin(), nb.end()),
            (std::vector<int>{0, 1, 3}));
  EXPECT_TRUE(dg.Validate().ok());
  ExpectSameGraph(dg.PackedView(), base);
  EXPECT_TRUE(dg.DeltaLog().empty());
}

TEST(DynamicGraphTest, AddAndRemoveEdges) {
  DynamicGraph dg(TriangleWithTail());
  EXPECT_TRUE(dg.AddEdge(0, 3));
  EXPECT_TRUE(dg.HasEdge(3, 0));
  EXPECT_EQ(dg.num_edges(), 5);
  // Rejected mutations leave no trace.
  EXPECT_FALSE(dg.AddEdge(0, 3));   // Duplicate.
  EXPECT_FALSE(dg.AddEdge(1, 1));   // Self-loop.
  EXPECT_FALSE(dg.AddEdge(0, 99));  // Out of range.
  EXPECT_FALSE(dg.RemoveEdge(1, 3));  // Absent.
  EXPECT_EQ(dg.num_edges(), 5);
  EXPECT_EQ(dg.DeltaLog().size(), 1u);

  EXPECT_TRUE(dg.RemoveEdge(2, 0));
  EXPECT_FALSE(dg.HasEdge(0, 2));
  EXPECT_EQ(dg.num_edges(), 4);
  EXPECT_TRUE(dg.Validate().ok());
  ExpectSameGraph(dg.PackedView(), Rebuild(dg));

  const DynamicGraphStats stats = dg.stats();
  EXPECT_EQ(stats.edges_added, 1u);
  EXPECT_EQ(stats.edges_removed, 1u);
  EXPECT_EQ(stats.pending_log, 2u);
}

TEST(DynamicGraphTest, SlackOverflowRegrows) {
  // A star center accumulates edges far beyond its initial slack.
  Graph base = TriangleWithTail();
  DynamicGraph dg(base);
  // Grow the node set, then fan edges into node 0.
  for (int i = 0; i < 30; ++i) dg.AddNode({});
  for (int v = 4; v < 34; ++v) EXPECT_TRUE(dg.AddEdge(0, v));
  EXPECT_EQ(dg.Degree(0), 32);
  EXPECT_GE(dg.stats().regrows, 1u);
  EXPECT_TRUE(dg.Validate().ok());
  ExpectSameGraph(dg.PackedView(), Rebuild(dg));
}

TEST(DynamicGraphTest, AddNodeCarriesAttributes) {
  Graph base = RandomGraph(10, 5, 1);
  DynamicGraph dg(base);
  const std::vector<double> attrs = {1.5, -2.0, 0.25, 7.0};
  const int id = dg.AddNode(attrs);
  EXPECT_EQ(id, 10);
  EXPECT_EQ(dg.num_nodes(), 11);
  EXPECT_EQ(dg.Degree(id), 0);
  ASSERT_EQ(dg.attributes().rows(), 11u);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(dg.attributes()(10, j), attrs[j]);
  }
  // Old rows survive bit for bit.
  for (int v = 0; v < 10; ++v) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(dg.attributes()(v, j), base.attributes()(v, j));
    }
  }
  EXPECT_TRUE(dg.AddEdge(id, 3));
  EXPECT_TRUE(dg.Validate().ok());
  ExpectSameGraph(dg.PackedView(), Rebuild(dg));
}

TEST(DynamicGraphTest, RemoveNodeDetachesButKeepsId) {
  DynamicGraph dg(TriangleWithTail());
  EXPECT_TRUE(dg.RemoveNode(2));
  EXPECT_EQ(dg.Degree(2), 0);
  EXPECT_EQ(dg.num_nodes(), 4);  // Id survives as an isolated node.
  EXPECT_EQ(dg.num_edges(), 1);  // Only 0-1 remains.
  EXPECT_FALSE(dg.RemoveNode(2));   // Already isolated.
  EXPECT_FALSE(dg.RemoveNode(99));  // Out of range.
  EXPECT_TRUE(dg.Validate().ok());
  ExpectSameGraph(dg.PackedView(), Rebuild(dg));
}

TEST(DynamicGraphTest, ForEachEdgeMatchesPackedEdgesOrder) {
  DynamicGraph dg(RandomGraph(30, 40, 2));
  Rng rng(3);
  for (int i = 0; i < 25; ++i) {
    const int u = static_cast<int>(rng.UniformInt(30));
    const int v = static_cast<int>(rng.UniformInt(30));
    if (rng.Bernoulli(0.5)) {
      dg.AddEdge(u, v);
    } else {
      dg.RemoveEdge(u, v);
    }
  }
  std::vector<std::pair<int, int>> streamed;
  dg.ForEachEdge([&](int u, int v) { streamed.emplace_back(u, v); });
  EXPECT_EQ(streamed, dg.PackedView().Edges());
  EXPECT_EQ(static_cast<int>(streamed.size()), dg.num_edges());
}

TEST(DynamicGraphTest, CompactTruncatesLogAndPreservesEdges) {
  DynamicGraph dg(TriangleWithTail());
  dg.AddEdge(0, 3);
  dg.RemoveEdge(1, 2);
  EXPECT_EQ(dg.DeltaLog().size(), 2u);
  const Graph before = dg.PackedView();
  dg.Compact();
  EXPECT_TRUE(dg.DeltaLog().empty());
  EXPECT_EQ(dg.stats().compactions, 1u);
  EXPECT_TRUE(dg.Validate().ok());
  ExpectSameGraph(dg.PackedView(), before);
}

TEST(DynamicGraphTest, DeltaLogRecordsNormalizedMutations) {
  DynamicGraph dg(TriangleWithTail());
  dg.AddEdge(3, 0);     // Logged as (0, 3).
  dg.RemoveEdge(2, 1);  // Logged as (1, 2).
  ASSERT_EQ(dg.DeltaLog().size(), 2u);
  EXPECT_EQ(dg.DeltaLog()[0].kind, GraphMutation::Kind::kAddEdge);
  EXPECT_EQ(dg.DeltaLog()[0].u, 0);
  EXPECT_EQ(dg.DeltaLog()[0].v, 3);
  EXPECT_EQ(dg.DeltaLog()[1].kind, GraphMutation::Kind::kRemoveEdge);
  EXPECT_EQ(dg.DeltaLog()[1].u, 1);
  EXPECT_EQ(dg.DeltaLog()[1].v, 2);
}

TEST(DynamicGraphTest, RandomizedChurnMatchesRebuild) {
  const int n = 60;
  DynamicGraph dg(RandomGraph(n, 80, 4));
  Rng rng(5);
  for (int step = 0; step < 400; ++step) {
    const int u = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const double roll = rng.Uniform();
    if (roll < 0.45) {
      const bool expect = u != v && !dg.HasEdge(u, v);
      EXPECT_EQ(dg.AddEdge(u, v), expect);
    } else if (roll < 0.9) {
      const bool expect = dg.HasEdge(u, v);
      EXPECT_EQ(dg.RemoveEdge(u, v), expect);
    } else if (roll < 0.95) {
      dg.RemoveNode(u);
    } else {
      dg.Compact();
    }
    if (step % 67 == 0) {
      ASSERT_TRUE(dg.Validate().ok()) << "step " << step;
      ExpectSameGraph(dg.PackedView(), Rebuild(dg));
    }
  }
  ASSERT_TRUE(dg.Validate().ok());
  ExpectSameGraph(dg.PackedView(), Rebuild(dg));
}

TEST(DynamicGraphTest, TemplatedTraversalsRunOnTheLiveView) {
  // The templated algorithms accept any Graph-shaped type: BFS trees and
  // cycle enumeration over the live DynamicGraph must match the same
  // traversal over the canonical packed view.
  DynamicGraph dg(RandomGraph(40, 50, 6));
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const int u = static_cast<int>(rng.UniformInt(40));
    const int v = static_cast<int>(rng.UniformInt(40));
    if (rng.Bernoulli(0.5)) {
      dg.AddEdge(u, v);
    } else {
      dg.RemoveEdge(u, v);
    }
  }
  const Graph& packed = dg.PackedView();
  for (int root : {0, 7, 23}) {
    const BfsTree live = BuildBfsTree(dg, root, 4);
    const BfsTree gold = BuildBfsTree(packed, root, 4);
    EXPECT_EQ(live.parent, gold.parent);
    EXPECT_EQ(live.depth, gold.depth);
    EXPECT_EQ(live.order, gold.order);
    EXPECT_EQ(CyclesThrough(dg, root, 6, 16),
              CyclesThrough(packed, root, 6, 16));
  }
}

}  // namespace
}  // namespace grgad
