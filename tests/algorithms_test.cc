// Graph algorithms: BFS distances/trees, shortest paths (BFS + Bellman-Ford
// agreement on unit weights), connected components, subset components,
// cycle enumeration, and local structure statistics.
#include "src/graph/algorithms.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace grgad {
namespace {

/// 0-1-2-3-4 path plus a 5-6-7 triangle island... (7 total wired below).
Graph PathAndTriangle() {
  GraphBuilder b(8);
  for (int i = 0; i + 1 < 5; ++i) b.AddEdge(i, i + 1);
  b.AddEdge(5, 6);
  b.AddEdge(6, 7);
  b.AddEdge(7, 5);
  return b.Build();
}

Graph Ring(int n) {
  GraphBuilder b(n);
  for (int i = 0; i < n; ++i) b.AddEdge(i, (i + 1) % n);
  return b.Build();
}

TEST(AlgorithmsTest, BfsDistances) {
  Graph g = PathAndTriangle();
  const auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[4], 4);
  EXPECT_EQ(dist[5], kUnreachable);
  const auto bounded = BfsDistances(g, 0, 2);
  EXPECT_EQ(bounded[2], 2);
  EXPECT_EQ(bounded[3], kUnreachable);
}

TEST(AlgorithmsTest, ShortestPathOnPathGraph) {
  Graph g = PathAndTriangle();
  EXPECT_EQ(ShortestPath(g, 0, 4), (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ShortestPath(g, 2, 2), (std::vector<int>{2}));
  EXPECT_TRUE(ShortestPath(g, 0, 5).empty());
}

TEST(AlgorithmsTest, ShortestPathPicksShortcut) {
  Graph g = Ring(6);
  const auto path = ShortestPath(g, 0, 2);
  EXPECT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 2);
}

TEST(AlgorithmsTest, BellmanFordMatchesBfsOnUnitWeights) {
  Graph g = Ring(7);
  const std::vector<double> unit(g.Edges().size(), 1.0);
  std::vector<double> dist;
  std::vector<int> parent;
  ASSERT_TRUE(BellmanFord(g, 0, unit, &dist, &parent));
  const auto bfs = BfsDistances(g, 0);
  for (int v = 0; v < g.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(dist[v], static_cast<double>(bfs[v]));
  }
  const auto path = BellmanFordPath(g, 0, 3, unit);
  EXPECT_EQ(path.size(), 4u);
}

TEST(AlgorithmsTest, BellmanFordRespectsWeights) {
  // 0-1 (w=10), 0-2 (w=1), 1-2 (w=1): best 0->1 goes through 2.
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  Graph g = b.Build();
  // Edges() order is sorted: (0,1), (0,2), (1,2).
  std::vector<double> w = {10.0, 1.0, 1.0};
  const auto path = BellmanFordPath(g, 0, 1, w);
  EXPECT_EQ(path, (std::vector<int>{0, 2, 1}));
}

TEST(AlgorithmsTest, BellmanFordDetectsNegativeCycle) {
  Graph g = Ring(3);
  std::vector<double> w = {-1.0, -1.0, -1.0};
  std::vector<double> dist;
  std::vector<int> parent;
  EXPECT_FALSE(BellmanFord(g, 0, w, &dist, &parent));
}

TEST(AlgorithmsTest, BfsTreeStructure) {
  Graph g = PathAndTriangle();
  const BfsTree tree = BuildBfsTree(g, 1, 2);
  EXPECT_EQ(tree.parent[1], 1);
  EXPECT_EQ(tree.depth[1], 0);
  EXPECT_EQ(tree.parent[0], 1);
  EXPECT_EQ(tree.depth[3], 2);
  EXPECT_EQ(tree.depth[4], kUnreachable);  // Beyond depth 2.
  EXPECT_EQ(tree.order.front(), 1);
  // Order is by non-decreasing depth.
  for (size_t i = 1; i < tree.order.size(); ++i) {
    EXPECT_LE(tree.depth[tree.order[i - 1]], tree.depth[tree.order[i]]);
  }
}

TEST(AlgorithmsTest, ConnectedComponentsLabels) {
  Graph g = PathAndTriangle();
  const auto comp = ConnectedComponents(g);
  EXPECT_EQ(comp[0], comp[4]);
  EXPECT_EQ(comp[5], comp[7]);
  EXPECT_NE(comp[0], comp[5]);
  const int max_label = *std::max_element(comp.begin(), comp.end());
  EXPECT_EQ(max_label, 1);
}

TEST(AlgorithmsTest, ComponentsOfSubset) {
  Graph g = PathAndTriangle();
  // {0,1} contiguous; {3} isolated from them (2 missing); {5,7} joined.
  const auto groups = ComponentsOfSubset(g, {0, 1, 3, 5, 7});
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<int>{3}));
  EXPECT_EQ(groups[2], (std::vector<int>{5, 7}));
}

TEST(AlgorithmsTest, KHopNeighborhood) {
  Graph g = PathAndTriangle();
  EXPECT_EQ(KHopNeighborhood(g, 2, 1), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(KHopNeighborhood(g, 2, 2), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(AlgorithmsTest, CyclesThroughFindsRing) {
  Graph g = Ring(5);
  const auto cycles = CyclesThrough(g, 0, 8);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 5u);
  EXPECT_EQ(cycles[0][0], 0);
  std::set<int> members(cycles[0].begin(), cycles[0].end());
  EXPECT_EQ(members.size(), 5u);
}

TEST(AlgorithmsTest, CyclesThroughRespectsMaxLen) {
  Graph g = Ring(9);
  EXPECT_TRUE(CyclesThrough(g, 0, 8).empty());
  EXPECT_EQ(CyclesThrough(g, 0, 9).size(), 1u);
}

TEST(AlgorithmsTest, CyclesOnAcyclicGraphEmpty) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(1, 3);
  const auto cycles = CyclesThrough(b.Build(), 1, 8);
  EXPECT_TRUE(cycles.empty());
}

TEST(AlgorithmsTest, TwoTrianglesSharingNode) {
  // Two triangles sharing node 0: 0-1-2 and 0-3-4.
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddEdge(0, 3);
  b.AddEdge(3, 4);
  b.AddEdge(4, 0);
  const auto cycles = CyclesThrough(b.Build(), 0, 8);
  EXPECT_EQ(cycles.size(), 2u);
}

TEST(AlgorithmsTest, ClusteringCoefficient) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  b.AddEdge(1, 2);
  Graph g = b.Build();
  EXPECT_NEAR(ClusteringCoefficient(g, 0), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(g, 3), 0.0);
  EXPECT_DOUBLE_EQ(ClusteringCoefficient(g, 1), 1.0);
}

TEST(AlgorithmsTest, MeanNeighborDegree) {
  Graph g = PathAndTriangle();
  EXPECT_DOUBLE_EQ(MeanNeighborDegree(g, 0), 2.0);  // Node 1 has degree 2.
  EXPECT_DOUBLE_EQ(MeanNeighborDegree(g, 2), 2.0);
  GraphBuilder b(1);
  EXPECT_DOUBLE_EQ(MeanNeighborDegree(b.Build(), 0), 0.0);
}

// Property: on rings of odd size n, the shortest path between antipodal-ish
// nodes has ceil(n/2) edges at most.
class RingPathPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RingPathPropertyTest, PathLengthBounded) {
  const int n = GetParam();
  Graph g = Ring(n);
  for (int target = 1; target < n; ++target) {
    const auto path = ShortestPath(g, 0, target);
    ASSERT_FALSE(path.empty());
    const int hops = static_cast<int>(path.size()) - 1;
    EXPECT_EQ(hops, std::min(target, n - target));
  }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, RingPathPropertyTest,
                         ::testing::Values(3, 4, 5, 8, 11));

}  // namespace
}  // namespace grgad
