// Graph/GraphBuilder: CSR invariants, dedup, induced subgraphs with
// mapping composition, and Validate().
#include "src/graph/graph.h"

#include <gtest/gtest.h>

namespace grgad {
namespace {

Graph TriangleWithTail() {
  // 0-1-2 triangle, 2-3 tail.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddEdge(2, 3);
  return b.Build();
}

TEST(GraphBuilderTest, DedupsAndDropsSelfLoops) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // Duplicate (reversed).
  b.AddEdge(0, 1);  // Duplicate.
  b.AddEdge(2, 2);  // Self-loop.
  EXPECT_EQ(b.num_edges(), 1);
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphBuilderTest, HasEdgeQueries) {
  GraphBuilder b(3);
  b.AddEdge(0, 2);
  EXPECT_TRUE(b.HasEdge(0, 2));
  EXPECT_TRUE(b.HasEdge(2, 0));
  EXPECT_FALSE(b.HasEdge(0, 1));
  EXPECT_FALSE(b.HasEdge(1, 1));
}

TEST(GraphTest, NeighborsSortedAndSymmetric) {
  Graph g = TriangleWithTail();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  auto nb = g.Neighbors(2);
  EXPECT_EQ(std::vector<int>(nb.begin(), nb.end()),
            (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(g.Degree(2), 3);
  EXPECT_EQ(g.Degree(3), 1);
  EXPECT_TRUE(g.HasEdge(3, 2));
  EXPECT_FALSE(g.HasEdge(3, 0));
  EXPECT_FALSE(g.HasEdge(-1, 0));
  EXPECT_FALSE(g.HasEdge(0, 99));
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphTest, EdgesListsEachOnce) {
  Graph g = TriangleWithTail();
  const auto edges = g.Edges();
  EXPECT_EQ(edges.size(), 4u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(GraphTest, AttributesAttachAndValidate) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  Matrix x = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Graph g = b.Build(x);
  EXPECT_TRUE(g.has_attributes());
  EXPECT_EQ(g.attr_dim(), 2u);
  EXPECT_DOUBLE_EQ(g.attributes()(1, 0), 3.0);
  Matrix y = Matrix::FromRows({{9.0, 9.0}, {8.0, 8.0}});
  g.SetAttributes(y);
  EXPECT_DOUBLE_EQ(g.attributes()(0, 0), 9.0);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphTest, InducedSubgraphBasics) {
  Graph g = TriangleWithTail();
  Matrix x(4, 1);
  for (int i = 0; i < 4; ++i) x(i, 0) = i * 10.0;
  g.SetAttributes(x);
  Graph sub = g.InducedSubgraph({2, 0, 1});
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_edges(), 3);  // The triangle.
  EXPECT_EQ(sub.mapping(), (std::vector<int>{2, 0, 1}));
  EXPECT_DOUBLE_EQ(sub.attributes()(0, 0), 20.0);
  EXPECT_TRUE(sub.Validate().ok());
}

TEST(GraphTest, InducedSubgraphDedupsInput) {
  Graph g = TriangleWithTail();
  Graph sub = g.InducedSubgraph({3, 3, 2, 3});
  EXPECT_EQ(sub.num_nodes(), 2);
  EXPECT_EQ(sub.num_edges(), 1);
  EXPECT_EQ(sub.mapping(), (std::vector<int>{3, 2}));
}

TEST(GraphTest, NestedInducedSubgraphComposesMapping) {
  Graph g = TriangleWithTail();
  Graph sub = g.InducedSubgraph({1, 2, 3});  // local: 0->1, 1->2, 2->3
  Graph subsub = sub.InducedSubgraph({1, 2});
  EXPECT_EQ(subsub.mapping(), (std::vector<int>{2, 3}));
  EXPECT_EQ(subsub.num_edges(), 1);
}

TEST(GraphTest, EmptyGraph) {
  Graph g = GraphBuilder(0).Build();
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.Validate().ok());
  Graph single = GraphBuilder(1).Build();
  EXPECT_EQ(single.Degree(0), 0);
  EXPECT_TRUE(single.Neighbors(0).empty());
}

TEST(GraphTest, DisconnectedNodesSurvive) {
  GraphBuilder b(5);
  b.AddEdge(0, 4);
  Graph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.Degree(2), 0);
  EXPECT_TRUE(g.Validate().ok());
}

}  // namespace
}  // namespace grgad
