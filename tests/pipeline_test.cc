// End-to-end TP-GrGAD pipeline and the evaluation harness: the full method
// must beat the node-level adapter on the example dataset's CR, stay
// deterministic, and the ablation switch (w/o TPGCL) must function.
#include <gtest/gtest.h>

#include "src/baselines/group_extraction.h"
#include "src/core/evaluation.h"
#include "src/core/pipeline.h"
#include "src/data/example_graph.h"
#include "src/gae/dominant.h"

namespace grgad {
namespace {

TpGrGadOptions QuickOptions(uint64_t seed = 42, bool reseed = true) {
  TpGrGadOptions options;
  options.seed = seed;
  options.mh_gae.base.epochs = 40;
  options.mh_gae.base.hidden_dim = 32;
  options.mh_gae.base.embed_dim = 16;
  options.mh_gae.anchor_fraction = 0.15;
  options.tpgcl.epochs = 30;
  options.tpgcl.hidden_dim = 32;
  options.tpgcl.embed_dim = 16;
  if (reseed) options.ReseedStages();
  return options;
}

TEST(PipelineTest, ProducesScoredGroups) {
  const Dataset d = GenExampleGraph({});
  TpGrGad method(QuickOptions());
  EXPECT_EQ(method.Name(), "tp-grgad");
  const PipelineArtifacts artifacts = method.Run(d.graph);
  EXPECT_FALSE(artifacts.anchors.empty());
  EXPECT_GE(artifacts.candidate_groups.size(), 2u);
  EXPECT_EQ(artifacts.group_scores.size(), artifacts.candidate_groups.size());
  EXPECT_EQ(artifacts.scored_groups.size(), artifacts.candidate_groups.size());
  EXPECT_EQ(artifacts.group_embeddings.rows(),
            artifacts.candidate_groups.size());
  EXPECT_EQ(artifacts.gae_node_errors.size(),
            static_cast<size_t>(d.graph.num_nodes()));
  EXPECT_FALSE(artifacts.tpgcl_loss_history.empty());
}

TEST(PipelineTest, DeterministicGivenSeed) {
  const Dataset d = GenExampleGraph({});
  const auto a = TpGrGad(QuickOptions(7)).Run(d.graph);
  const auto b = TpGrGad(QuickOptions(7)).Run(d.graph);
  ASSERT_EQ(a.scored_groups.size(), b.scored_groups.size());
  for (size_t i = 0; i < a.scored_groups.size(); ++i) {
    EXPECT_EQ(a.scored_groups[i].nodes, b.scored_groups[i].nodes);
    EXPECT_DOUBLE_EQ(a.scored_groups[i].score, b.scored_groups[i].score);
  }
}

TEST(PipelineTest, ConstructorPropagatesSeedWithoutReseedStages) {
  // ReseedStages() footgun regression: a detector built from un-reseeded
  // options (seed set, ReseedStages forgotten) must agree with one built
  // from explicitly reseeded options — the constructor propagates.
  const Dataset d = GenExampleGraph({});
  const auto forgot =
      TpGrGad(QuickOptions(7, /*reseed=*/false)).Run(d.graph);
  const auto reseeded =
      TpGrGad(QuickOptions(7, /*reseed=*/true)).Run(d.graph);
  ASSERT_EQ(forgot.scored_groups.size(), reseeded.scored_groups.size());
  for (size_t i = 0; i < forgot.scored_groups.size(); ++i) {
    EXPECT_EQ(forgot.scored_groups[i].nodes, reseeded.scored_groups[i].nodes);
    EXPECT_DOUBLE_EQ(forgot.scored_groups[i].score,
                     reseeded.scored_groups[i].score);
  }
}

TEST(PipelineTest, ConstructorKeepsExplicitStageSeeds) {
  TpGrGadOptions options;
  options.seed = 7;
  options.tpgcl.seed = 123;  // Explicit per-stage seed must win.
  TpGrGad method(options);
  EXPECT_EQ(method.options().tpgcl.seed, 123u);
  EXPECT_EQ(method.options().mh_gae.base.seed, 7u ^ 0x1);
}

TEST(PipelineTest, DefaultOptionsKeepHistoricalStageSeeds) {
  // Bit-for-bit compatibility: default-constructed options must run with
  // the same stage seeds as before the Engine redesign.
  TpGrGad method;
  EXPECT_EQ(method.options().mh_gae.base.seed, GaeOptions{}.seed);
  EXPECT_EQ(method.options().tpgcl.seed, TpgclOptions{}.seed);
}

TEST(PipelineTest, BeatsNodeLevelAdapterOnCompleteness) {
  // The headline Table III shape on the example instance: TP-GrGAD's CR
  // exceeds the DOMINANT-with-components adapter's CR.
  const Dataset d = GenExampleGraph({});
  TpGrGad method(QuickOptions());
  const GroupEvaluation ours =
      EvaluateGroups(d, method.DetectGroups(d.graph));

  GaeOptions gae;
  gae.epochs = 40;
  gae.hidden_dim = 32;
  gae.embed_dim = 16;
  NodeScorerGroupAdapter dominant(std::make_shared<Dominant>(gae));
  const GroupEvaluation theirs =
      EvaluateGroups(d, dominant.DetectGroups(d.graph));

  EXPECT_GT(ours.cr, theirs.cr);
  EXPECT_GT(ours.cr, 0.5);
}

TEST(PipelineTest, AblationWithoutTpgclRuns) {
  const Dataset d = GenExampleGraph({});
  TpGrGadOptions options = QuickOptions();
  options.disable_tpgcl = true;
  const PipelineArtifacts artifacts = TpGrGad(options).Run(d.graph);
  EXPECT_EQ(artifacts.group_embeddings.cols(), d.graph.attr_dim());
  EXPECT_TRUE(artifacts.tpgcl_loss_history.empty());
  EXPECT_EQ(artifacts.group_scores.size(), artifacts.candidate_groups.size());
}

TEST(PipelineTest, AlternativeDetectorsWork) {
  const Dataset d = GenExampleGraph({});
  for (DetectorKind kind : {DetectorKind::kLof, DetectorKind::kMad}) {
    TpGrGadOptions options = QuickOptions();
    options.detector = kind;
    options.tpgcl.epochs = 10;
    const auto groups = TpGrGad(options).DetectGroups(d.graph);
    EXPECT_FALSE(groups.empty());
  }
}

TEST(EvaluationTest, PerfectPredictionsScorePerfect) {
  const Dataset d = GenExampleGraph({});
  std::vector<ScoredGroup> perfect;
  for (const auto& g : d.anomaly_groups) perfect.push_back({g, 1.0});
  // Add clearly-normal distractors with low scores.
  perfect.push_back({{0, 1, 2}, 0.01});
  perfect.push_back({{10, 11, 12}, 0.02});
  const GroupEvaluation eval = EvaluateGroups(d, perfect);
  EXPECT_DOUBLE_EQ(eval.cr, 1.0);
  EXPECT_DOUBLE_EQ(eval.f1, 1.0);
  EXPECT_DOUBLE_EQ(eval.auc, 1.0);
  EXPECT_EQ(eval.num_predicted_anomalous, 3);
}

TEST(EvaluationTest, EmptyPredictions) {
  const Dataset d = GenExampleGraph({});
  const GroupEvaluation eval = EvaluateGroups(d, {});
  EXPECT_DOUBLE_EQ(eval.cr, 0.0);
  EXPECT_DOUBLE_EQ(eval.f1, 0.0);
  EXPECT_EQ(eval.num_candidates, 0);
}

TEST(EvaluationTest, InvertedScoresHurtAuc) {
  const Dataset d = GenExampleGraph({});
  std::vector<ScoredGroup> inverted;
  for (const auto& g : d.anomaly_groups) inverted.push_back({g, 0.0});
  inverted.push_back({{0, 1, 2}, 1.0});
  inverted.push_back({{10, 11, 12}, 0.9});
  const GroupEvaluation eval = EvaluateGroups(d, inverted);
  EXPECT_LT(eval.auc, 0.5);
  // Contamination thresholding still labels k groups positive; with ties at
  // the bottom some true group may sneak in, but F1 must stay poor.
  EXPECT_LT(eval.f1, 0.5);
}

TEST(EvaluationTest, AggregateComputesMeanAndStdError) {
  GroupEvaluation a, b;
  a.cr = 0.8;
  b.cr = 0.6;
  a.f1 = 1.0;
  b.f1 = 0.0;
  a.auc = 0.9;
  b.auc = 0.7;
  const AggregatedEvaluation agg = Aggregate({a, b});
  EXPECT_DOUBLE_EQ(agg.cr_mean, 0.7);
  EXPECT_NEAR(agg.cr_stderr, 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(agg.f1_mean, 0.5);
  EXPECT_DOUBLE_EQ(agg.auc_mean, 0.8);
  EXPECT_TRUE(Aggregate({}).cr_mean == 0.0);
}

TEST(EvaluationTest, FormatCell) {
  EXPECT_EQ(FormatCell(0.812, 0.104), "0.81±0.10");
  EXPECT_EQ(FormatCell(1.0, 0.0), "1.00±0.00");
}

}  // namespace
}  // namespace grgad
