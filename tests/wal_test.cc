// Durability contracts (PR 9 acceptance gates):
//   1. WAL framing — append/reopen round-trips every record; a torn or
//      corrupt tail (truncated record, flipped payload byte, flipped length
//      prefix) is detected, truncated at the last valid record, and
//      reported as a typed DataLoss note — never an error, never a crash,
//   2. snapshots — SaveServeSnapshot/LoadServeSnapshot round-trip the full
//      serving state exactly (graph, artifact doubles, tracker marks,
//      refresh cache, WAL high-water mark); a missing snapshot is NotFound,
//      a corrupt one is DataLoss,
//   3. recovery equivalence — a daemon restarted from snapshot + WAL tail
//      (including a stale snapshot whose records still sit in the WAL)
//      answers byte-identically to one that never died, and its resident
//      artifact doubles match exactly.
// The kill -9 sweep over the crash fault points lives in
// tests/crash_recovery_test.cc; this file covers the same machinery
// in-process.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/artifacts.h"
#include "src/core/method_registry.h"
#include "src/core/pipeline.h"
#include "src/core/stages.h"
#include "src/data/example_graph.h"
#include "src/graph/dynamic_graph.h"
#include "src/serve/request.h"
#include "src/serve/server.h"
#include "src/serve/wal.h"
#include "src/util/status.h"

namespace grgad {
namespace {

namespace fs = std::filesystem;

TpGrGadOptions QuickOptions(uint64_t seed = 42) {
  TpGrGadOptions options;
  options.seed = seed;
  options.mh_gae.base.epochs = 10;
  options.mh_gae.base.hidden_dim = 16;
  options.mh_gae.base.embed_dim = 8;
  options.mh_gae.anchor_fraction = 0.15;
  options.tpgcl.epochs = 8;
  options.tpgcl.hidden_dim = 16;
  options.tpgcl.embed_dim = 8;
  options.ReseedStages();
  return options;
}

const Dataset& TestDataset() {
  static const Dataset* dataset = new Dataset(GenExampleGraph());
  return *dataset;
}

const PipelineArtifacts& TrainedArtifacts() {
  static const PipelineArtifacts* artifacts = [] {
    auto result = RunPipeline(TestDataset().graph, QuickOptions());
    if (!result.ok()) {
      ADD_FAILURE() << "seed training failed: " << result.status().ToString();
      return new PipelineArtifacts();
    }
    return new PipelineArtifacts(std::move(result).value());
  }();
  return *artifacts;
}

fs::path TempDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("grgad_wal_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

GraphMutation EdgeMutation(bool add, int u, int v) {
  GraphMutation m;
  m.kind = add ? GraphMutation::Kind::kAddEdge : GraphMutation::Kind::kRemoveEdge;
  m.u = u;
  m.v = v;
  return m;
}

std::string Slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Spit(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.flush().good());
}

// ---- WAL framing ------------------------------------------------------------

TEST(WalTest, AppendReopenRoundtrip) {
  const fs::path dir = TempDir("roundtrip");
  const std::string path = (dir / "wal.log").string();
  {
    auto wal = WriteAheadLog::Open(path, /*sync_every=*/1);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_EQ(wal.value()->last_seq(), 0u);
    EXPECT_TRUE(
        wal.value()->Append(WalRecord::Kind::kMutation, EdgeMutation(true, 3, 9))
            .ok());
    EXPECT_TRUE(wal.value()->Append(WalRecord::Kind::kRefresh).ok());
    EXPECT_TRUE(wal.value()
                    ->Append(WalRecord::Kind::kMutation,
                             EdgeMutation(false, 3, 9))
                    .ok());
    EXPECT_TRUE(wal.value()->Append(WalRecord::Kind::kCompact).ok());
    EXPECT_EQ(wal.value()->last_seq(), 4u);
    EXPECT_EQ(wal.value()->appends(), 4u);
  }
  auto reopened = WriteAheadLog::Open(path, 1);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const WriteAheadLog& wal = *reopened.value();
  EXPECT_EQ(wal.open_stats().base, 0u);
  EXPECT_EQ(wal.open_stats().truncated_records, 0u);
  EXPECT_EQ(wal.open_stats().truncation_note, "");
  ASSERT_EQ(wal.records().size(), 4u);
  EXPECT_EQ(wal.records()[0].kind, WalRecord::Kind::kMutation);
  EXPECT_EQ(wal.records()[0].mutation.kind, GraphMutation::Kind::kAddEdge);
  EXPECT_EQ(wal.records()[0].mutation.u, 3);
  EXPECT_EQ(wal.records()[0].mutation.v, 9);
  EXPECT_EQ(wal.records()[0].seq, 1u);
  EXPECT_EQ(wal.records()[1].kind, WalRecord::Kind::kRefresh);
  EXPECT_EQ(wal.records()[2].mutation.kind, GraphMutation::Kind::kRemoveEdge);
  EXPECT_EQ(wal.records()[3].kind, WalRecord::Kind::kCompact);
  EXPECT_EQ(wal.last_seq(), 4u);
}

TEST(WalTest, FsyncBatchingHonorsSyncEvery) {
  const fs::path dir = TempDir("sync_every");
  auto wal = WriteAheadLog::Open((dir / "wal.log").string(), /*sync_every=*/3);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  const uint64_t base_fsyncs = wal.value()->fsyncs();
  EXPECT_TRUE(
      wal.value()->Append(WalRecord::Kind::kMutation, EdgeMutation(true, 0, 1))
          .ok());
  EXPECT_TRUE(
      wal.value()->Append(WalRecord::Kind::kMutation, EdgeMutation(true, 0, 2))
          .ok());
  EXPECT_EQ(wal.value()->fsyncs(), base_fsyncs);  // Batching: 2 < 3 unsynced.
  EXPECT_TRUE(
      wal.value()->Append(WalRecord::Kind::kMutation, EdgeMutation(true, 0, 3))
          .ok());
  EXPECT_EQ(wal.value()->fsyncs(), base_fsyncs + 1);  // Third append syncs.
  EXPECT_TRUE(wal.value()->Sync().ok());  // Explicit sync always syncs.
  EXPECT_EQ(wal.value()->fsyncs(), base_fsyncs + 2);
}

/// Appends `n` mutation records and returns the WAL file's bytes.
std::string BuildWalFile(const fs::path& path, int n) {
  auto wal = WriteAheadLog::Open(path.string(), 1);
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(wal.value()
                    ->Append(WalRecord::Kind::kMutation,
                             EdgeMutation(true, i, i + 100))
                    .ok());
  }
  wal.value().reset();  // Closes the fd.
  return Slurp(path);
}

void ExpectTornTail(const fs::path& path, size_t expect_valid,
                    size_t expect_truncated) {
  auto reopened = WriteAheadLog::Open(path.string(), 1);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const WriteAheadLog& wal = *reopened.value();
  EXPECT_EQ(wal.records().size(), expect_valid);
  EXPECT_EQ(wal.open_stats().truncated_records, expect_truncated);
  EXPECT_NE(wal.open_stats().truncation_note.find("DataLoss"),
            std::string::npos)
      << wal.open_stats().truncation_note;
  EXPECT_EQ(wal.last_seq(), expect_valid);
  // The truncation is physical: a further reopen sees a clean file.
  auto again = WriteAheadLog::Open(path.string(), 1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->records().size(), expect_valid);
  EXPECT_EQ(again.value()->open_stats().truncated_records, 0u);
}

TEST(WalTest, TruncatedTailRecordIsDroppedOnOpen) {
  const fs::path dir = TempDir("torn");
  const fs::path path = dir / "wal.log";
  const std::string bytes = BuildWalFile(path, 3);
  // Chop the last record mid-frame — what a crash mid-append leaves.
  Spit(path, bytes.substr(0, bytes.size() - 7));
  ExpectTornTail(path, 2, 1);
}

TEST(WalTest, FlippedPayloadByteIsDroppedOnOpen) {
  const fs::path dir = TempDir("bitflip");
  const fs::path path = dir / "wal.log";
  std::string bytes = BuildWalFile(path, 3);
  bytes[bytes.size() - 2] ^= 0x04;  // Inside the last record's payload.
  Spit(path, bytes);
  ExpectTornTail(path, 2, 1);
}

TEST(WalTest, FlippedLengthPrefixIsDroppedOnOpen) {
  const fs::path dir = TempDir("lenflip");
  const fs::path path = dir / "wal.log";
  std::string bytes = BuildWalFile(path, 3);
  // The last record's length prefix is the second field on the last line.
  const size_t line = bytes.rfind('\n', bytes.size() - 2) + 1;
  const size_t len_field = bytes.find(' ', line) + 1;
  ASSERT_NE(bytes[len_field], '9');
  bytes[len_field] = '9';  // Claims a longer payload than is framed.
  Spit(path, bytes);
  ExpectTornTail(path, 2, 1);
}

TEST(WalTest, MidFileCorruptionTruncatesEverythingAfterIt) {
  const fs::path dir = TempDir("midfile");
  const fs::path path = dir / "wal.log";
  std::string bytes = BuildWalFile(path, 4);
  // Corrupt record 2 of 4: records 3-4 have valid frames but an unusable
  // predecessor — the log is only trustworthy up to the last contiguous
  // valid prefix.
  const size_t header_end = bytes.find('\n') + 1;
  const size_t record2 = bytes.find('\n', header_end) + 1;
  bytes[bytes.find("mutation", record2)] = 'X';
  Spit(path, bytes);
  ExpectTornTail(path, 1, 3);
}

TEST(WalTest, ResetToStartsAnEmptyLogAtTheNewBase) {
  const fs::path dir = TempDir("reset");
  const fs::path path = dir / "wal.log";
  auto wal = WriteAheadLog::Open(path.string(), 1);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(wal.value()
                    ->Append(WalRecord::Kind::kMutation,
                             EdgeMutation(true, i, i + 50))
                    .ok());
  }
  ASSERT_TRUE(wal.value()->ResetTo(3).ok());
  EXPECT_EQ(wal.value()->last_seq(), 3u);
  // Appends continue above the base; reopen replays only the new tail.
  ASSERT_TRUE(
      wal.value()->Append(WalRecord::Kind::kMutation, EdgeMutation(true, 9, 90))
          .ok());
  wal.value().reset();
  auto reopened = WriteAheadLog::Open(path.string(), 1);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->open_stats().base, 3u);
  ASSERT_EQ(reopened.value()->records().size(), 1u);
  EXPECT_EQ(reopened.value()->records()[0].seq, 4u);
  EXPECT_EQ(reopened.value()->last_seq(), 4u);
}

// ---- graph + serve-state snapshots ------------------------------------------

TEST(WalTest, GraphSnapshotRoundtripIsExact) {
  const Graph& graph = TestDataset().graph;
  const std::string text = SerializeGraphSnapshot(graph);
  auto parsed = ParseGraphSnapshot(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Bitwise: the round-tripped graph re-serializes to identical bytes
  // (edges in canonical order, attributes at 17 significant digits).
  EXPECT_EQ(SerializeGraphSnapshot(parsed.value()), text);
  EXPECT_EQ(parsed.value().num_nodes(), graph.num_nodes());
  EXPECT_EQ(parsed.value().num_edges(), graph.num_edges());
}

TEST(WalTest, GraphSnapshotParseRejectsDamage) {
  const std::string text = SerializeGraphSnapshot(TestDataset().graph);
  EXPECT_FALSE(ParseGraphSnapshot("").ok());
  EXPECT_FALSE(ParseGraphSnapshot("bogus header\n").ok());
  // Truncation mid-file is DataLoss, not a crash or a partial graph.
  auto torn = ParseGraphSnapshot(text.substr(0, text.size() / 2));
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kDataLoss);
  auto trailing = ParseGraphSnapshot(text + "extra\n");
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.status().code(), StatusCode::kDataLoss);
}

TEST(WalTest, ServeSnapshotRoundtripRestoresEverything) {
  const fs::path dir = TempDir("snapshot");
  ServeStateSnapshot state;
  state.all_dirty = false;
  state.dirty_anchor_indices = {1, 4, 7};
  state.refresh_primed = true;
  // A primed cache must cover every resident anchor (load validates that).
  state.refresh_per_anchor.resize(TrainedArtifacts().anchors.size());
  state.refresh_per_anchor[0] = {{0, 1, 2}, {3, 4}};
  state.refresh_per_anchor[2] = {{5, 6, 7}};
  const Status saved =
      SaveServeSnapshot(dir.string(), TestDataset().graph, TrainedArtifacts(),
                        state, /*wal_seq=*/17);
  ASSERT_TRUE(saved.ok()) << saved.ToString();

  auto loaded = LoadServeSnapshot(dir.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const LoadedServeSnapshot& snap = loaded.value();
  EXPECT_EQ(snap.wal_seq, 17u);
  EXPECT_EQ(snap.state.all_dirty, false);
  EXPECT_EQ(snap.state.dirty_anchor_indices, state.dirty_anchor_indices);
  EXPECT_EQ(snap.state.refresh_primed, true);
  EXPECT_EQ(snap.state.refresh_per_anchor, state.refresh_per_anchor);
  EXPECT_EQ(SerializeGraphSnapshot(snap.graph),
            SerializeGraphSnapshot(TestDataset().graph));
  // Artifact doubles round-trip exactly (the PR 6 17-digit contract).
  const PipelineArtifacts& a = TrainedArtifacts();
  const PipelineArtifacts& b = snap.artifacts;
  EXPECT_EQ(b.seed, a.seed);
  EXPECT_EQ(b.anchors, a.anchors);
  EXPECT_EQ(b.candidate_groups, a.candidate_groups);
  ASSERT_EQ(b.scored_groups.size(), a.scored_groups.size());
  for (size_t i = 0; i < a.scored_groups.size(); ++i) {
    EXPECT_EQ(b.scored_groups[i].nodes, a.scored_groups[i].nodes);
    EXPECT_EQ(b.scored_groups[i].score, a.scored_groups[i].score) << i;
  }
  ASSERT_EQ(b.group_embeddings.rows(), a.group_embeddings.rows());
  ASSERT_EQ(b.group_embeddings.cols(), a.group_embeddings.cols());
  for (size_t r = 0; r < a.group_embeddings.rows(); ++r) {
    for (size_t c = 0; c < a.group_embeddings.cols(); ++c) {
      ASSERT_EQ(b.group_embeddings(r, c), a.group_embeddings(r, c));
    }
  }

  // A second save atomically replaces the first.
  state.all_dirty = true;
  ASSERT_TRUE(SaveServeSnapshot(dir.string(), TestDataset().graph,
                                TrainedArtifacts(), state, 23)
                  .ok());
  auto replaced = LoadServeSnapshot(dir.string());
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(replaced.value().wal_seq, 23u);
  EXPECT_TRUE(replaced.value().state.all_dirty);
}

TEST(WalTest, MissingSnapshotIsNotFoundCorruptIsDataLoss) {
  const fs::path dir = TempDir("snapdamage");
  auto missing = LoadServeSnapshot(dir.string());
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  ServeStateSnapshot state;
  state.all_dirty = true;
  ASSERT_TRUE(SaveServeSnapshot(dir.string(), TestDataset().graph,
                                TrainedArtifacts(), state, 5)
                  .ok());
  // Flip one byte of the persisted graph: the manifest checksum must catch
  // it and refuse to serve from damaged state.
  const fs::path graph_file = dir / "snapshot" / "graph.txt";
  std::string bytes = Slurp(graph_file);
  bytes[bytes.size() / 2] ^= 0x01;
  Spit(graph_file, bytes);
  auto corrupt = LoadServeSnapshot(dir.string());
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kDataLoss)
      << corrupt.status().ToString();
}

// ---- daemon recovery equivalence --------------------------------------------

std::string Exec(ServeDaemon* daemon, const std::string& line) {
  auto request = ParseServeRequest(line);
  EXPECT_TRUE(request.ok()) << line << ": " << request.status().ToString();
  if (!request.ok()) return "";
  return daemon->Execute(request.value());
}

std::string EdgeOp(int64_t id, bool add, int u, int v) {
  return "{\"id\": " + std::to_string(id) + ", \"op\": \"" +
         (add ? "add-edge" : "remove-edge") + "\", \"u\": " +
         std::to_string(u) + ", \"v\": " + std::to_string(v) + "}";
}

/// First `count` node pairs absent from the example graph.
std::vector<std::pair<int, int>> AbsentEdges(size_t count) {
  const Graph& graph = TestDataset().graph;
  std::vector<std::pair<int, int>> absent;
  for (int a = 0; a < graph.num_nodes() && absent.size() < count; ++a) {
    for (int b = a + 1; b < graph.num_nodes() && absent.size() < count; ++b) {
      if (!graph.HasEdge(a, b)) absent.emplace_back(a, b);
    }
  }
  EXPECT_EQ(absent.size(), count);
  return absent;
}

std::unique_ptr<ServeDaemon> MakeDaemon(const std::string& state_dir) {
  ServeOptions options;
  options.pipeline = QuickOptions();
  options.state_dir = state_dir;
  return std::make_unique<ServeDaemon>(TestDataset().graph, TrainedArtifacts(),
                                       std::move(options));
}

/// CmdServe's restart path in miniature: load the snapshot (if any), seed
/// the daemon with its graph + artifacts, then EnableDurability replays the
/// WAL tail. Returns {snapshot, daemon}; the snapshot must outlive the
/// daemon, which borrows its graph.
struct Recovered {
  std::unique_ptr<LoadedServeSnapshot> snapshot;
  std::unique_ptr<ServeDaemon> daemon;
};

Recovered Recover(const std::string& state_dir) {
  Recovered out;
  auto loaded = LoadServeSnapshot(state_dir);
  if (loaded.ok()) {
    out.snapshot =
        std::make_unique<LoadedServeSnapshot>(std::move(loaded).value());
    ServeOptions options;
    options.pipeline = QuickOptions();
    options.state_dir = state_dir;
    PipelineArtifacts artifacts = std::move(out.snapshot->artifacts);
    out.daemon = std::make_unique<ServeDaemon>(
        out.snapshot->graph, std::move(artifacts), std::move(options));
  } else {
    EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound)
        << loaded.status().ToString();
    out.daemon = MakeDaemon(state_dir);
  }
  const Status durable = out.daemon->EnableDurability(out.snapshot.get());
  EXPECT_TRUE(durable.ok()) << durable.ToString();
  return out;
}

/// The bitwise probe: responses that depend on every recovered double and
/// every recovered mark. Rescore reads the resident artifact embeddings;
/// refresh consumes the dirty marks + refresh cache and re-renders scores.
std::vector<std::string> Probe(ServeDaemon* daemon) {
  return {Exec(daemon, R"({"id": 900, "op": "refresh", "top": 5})"),
          Exec(daemon, R"({"id": 901, "op": "rescore", "detector": "ensemble", "top": 5})")};
}

TEST(WalTest, RecoveryReplaysTheWalTailBitwise) {
  const fs::path dir = TempDir("replay");
  const auto edges = AbsentEdges(2);
  const std::vector<std::string> ops = {
      EdgeOp(1, true, edges[0].first, edges[0].second),
      EdgeOp(2, true, edges[1].first, edges[1].second),
      R"({"id": 3, "op": "refresh", "top": 3})",
      EdgeOp(4, false, edges[0].first, edges[0].second),
  };

  // The reference daemon never crashes and is never durable.
  auto reference = std::make_unique<ServeDaemon>(
      TestDataset().graph, TrainedArtifacts(), ServeOptions{QuickOptions()});
  std::vector<std::string> reference_responses;
  for (const std::string& op : ops) {
    reference_responses.push_back(Exec(reference.get(), op));
  }

  // The durable daemon answers identically live, then dies abruptly: no
  // shutdown snapshot, just the destructor (a kill would not even run
  // that — the WAL bytes are already on disk either way).
  {
    Recovered live = Recover(dir.string());
    ASSERT_EQ(live.daemon->dynamic_graph().num_edges(),
              TestDataset().graph.num_edges());
    for (size_t i = 0; i < ops.size(); ++i) {
      EXPECT_EQ(Exec(live.daemon.get(), ops[i]), reference_responses[i]) << i;
    }
  }

  // Restart: no snapshot exists, so recovery replays all four records.
  Recovered restarted = Recover(dir.string());
  EXPECT_EQ(restarted.snapshot, nullptr);
  EXPECT_EQ(restarted.daemon->dynamic_graph().num_edges(),
            TestDataset().graph.num_edges() + 1);
  EXPECT_NE(restarted.daemon->MetricsJson().find("\"replayed_records\": 4"),
            std::string::npos)
      << restarted.daemon->MetricsJson();
  EXPECT_EQ(Probe(restarted.daemon.get()), Probe(reference.get()));
}

TEST(WalTest, SnapshotPlusWalTailRestartsBitwise) {
  const fs::path dir = TempDir("snaptail");
  const auto edges = AbsentEdges(3);
  const std::vector<std::string> before_snapshot = {
      EdgeOp(1, true, edges[0].first, edges[0].second),
      EdgeOp(2, true, edges[1].first, edges[1].second),
      R"({"id": 3, "op": "refresh", "top": 3})",
  };
  const std::vector<std::string> after_snapshot = {
      EdgeOp(4, true, edges[2].first, edges[2].second),
      EdgeOp(5, false, edges[1].first, edges[1].second),
  };

  auto reference = std::make_unique<ServeDaemon>(
      TestDataset().graph, TrainedArtifacts(), ServeOptions{QuickOptions()});
  for (const std::string& op : before_snapshot) (void)Exec(reference.get(), op);
  for (const std::string& op : after_snapshot) (void)Exec(reference.get(), op);

  {
    Recovered live = Recover(dir.string());
    for (const std::string& op : before_snapshot) {
      (void)Exec(live.daemon.get(), op);
    }
    ASSERT_TRUE(live.daemon->SnapshotNow().ok());
    for (const std::string& op : after_snapshot) {
      (void)Exec(live.daemon.get(), op);
    }
  }  // Dies with two unsnapshotted WAL records.

  Recovered restarted = Recover(dir.string());
  ASSERT_NE(restarted.snapshot, nullptr);
  // Three adds survive minus one remove: base + 2.
  EXPECT_EQ(restarted.daemon->dynamic_graph().num_edges(),
            TestDataset().graph.num_edges() + 2);
  EXPECT_NE(restarted.daemon->MetricsJson().find("\"replayed_records\": 2"),
            std::string::npos);
  EXPECT_EQ(Probe(restarted.daemon.get()), Probe(reference.get()));
}

TEST(WalTest, StaleSnapshotSkipsWalRecordsItAlreadyCovers) {
  // A snapshot at seq 2 normally truncates the WAL to base 2; simulate the
  // crash window where the full WAL survives alongside it (snapshot
  // committed, truncation never ran). Records 1-2 must NOT replay — the
  // detectable failure is seq 1's add-edge resurrecting an edge that
  // seq 2 removed before the snapshot was cut.
  const fs::path dir = TempDir("stale");
  const auto edges = AbsentEdges(2);
  const std::vector<std::string> covered = {
      EdgeOp(1, true, edges[0].first, edges[0].second),
      EdgeOp(2, false, edges[0].first, edges[0].second),
  };
  const std::string tail = EdgeOp(3, true, edges[1].first, edges[1].second);

  auto reference = std::make_unique<ServeDaemon>(
      TestDataset().graph, TrainedArtifacts(), ServeOptions{QuickOptions()});
  for (const std::string& op : covered) (void)Exec(reference.get(), op);
  (void)Exec(reference.get(), tail);

  {
    Recovered live = Recover(dir.string());
    for (const std::string& op : covered) (void)Exec(live.daemon.get(), op);
    ASSERT_TRUE(live.daemon->SnapshotNow().ok());
    (void)Exec(live.daemon.get(), tail);
  }

  // Rebuild the WAL as the pre-truncation file: base 0, all three records.
  const fs::path wal_path = dir / "wal.log";
  fs::remove(wal_path);
  {
    auto wal = WriteAheadLog::Open(wal_path.string(), 1);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()
                    ->Append(WalRecord::Kind::kMutation,
                             EdgeMutation(true, edges[0].first,
                                          edges[0].second))
                    .ok());
    ASSERT_TRUE(wal.value()
                    ->Append(WalRecord::Kind::kMutation,
                             EdgeMutation(false, edges[0].first,
                                          edges[0].second))
                    .ok());
    ASSERT_TRUE(wal.value()
                    ->Append(WalRecord::Kind::kMutation,
                             EdgeMutation(true, edges[1].first,
                                          edges[1].second))
                    .ok());
  }

  Recovered restarted = Recover(dir.string());
  ASSERT_NE(restarted.snapshot, nullptr);
  EXPECT_EQ(restarted.snapshot->wal_seq, 2u);
  // Only seq 3 replayed: one extra edge, not two.
  EXPECT_EQ(restarted.daemon->dynamic_graph().num_edges(),
            TestDataset().graph.num_edges() + 1);
  EXPECT_NE(restarted.daemon->MetricsJson().find("\"replayed_records\": 1"),
            std::string::npos);
  EXPECT_EQ(Probe(restarted.daemon.get()), Probe(reference.get()));
}

TEST(WalTest, CorruptWalTailRecoversToLastValidStateWithDataLossNote) {
  const fs::path dir = TempDir("cutail");
  const auto edges = AbsentEdges(2);

  // Reference: only the first mutation — the second will be destroyed.
  auto reference = std::make_unique<ServeDaemon>(
      TestDataset().graph, TrainedArtifacts(), ServeOptions{QuickOptions()});
  (void)Exec(reference.get(),
             EdgeOp(1, true, edges[0].first, edges[0].second));

  {
    Recovered live = Recover(dir.string());
    (void)Exec(live.daemon.get(),
               EdgeOp(1, true, edges[0].first, edges[0].second));
    (void)Exec(live.daemon.get(),
               EdgeOp(2, true, edges[1].first, edges[1].second));
  }

  // Bit-rot the second record's payload.
  const fs::path wal_path = dir / "wal.log";
  std::string bytes = Slurp(wal_path.string());
  bytes[bytes.size() - 2] ^= 0x08;
  Spit(wal_path, bytes);

  Recovered restarted = Recover(dir.string());
  EXPECT_EQ(restarted.daemon->dynamic_graph().num_edges(),
            TestDataset().graph.num_edges() + 1);
  const std::string metrics = restarted.daemon->MetricsJson();
  EXPECT_NE(metrics.find("\"replayed_records\": 1"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("\"truncated_tail_records\": 1"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("DataLoss"), std::string::npos) << metrics;
  EXPECT_EQ(Probe(restarted.daemon.get()), Probe(reference.get()));
}

}  // namespace
}  // namespace grgad
