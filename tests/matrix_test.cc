// Dense Matrix: construction, arithmetic, reductions, and the three matmul
// kernels (including agreement between the specialized transpose variants
// and explicit transposition, and determinism of the blocked parallel
// kernels against the serial reference implementations).
#include "src/tensor/matrix.h"

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "src/tensor/reference_kernels.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "tests/kernel_test_util.h"

namespace grgad {
namespace {

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m.Fill(0.0);
  EXPECT_DOUBLE_EQ(m.Sum(), 0.0);
  EXPECT_TRUE(Matrix().empty());
}

TEST(MatrixTest, FromRowsAndIdentity) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  Matrix i = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(i.Sum(), 3.0);
  EXPECT_DOUBLE_EQ(i(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
}

TEST(MatrixTest, ElementwiseArithmetic) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 44.0);
  Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 9.0);
  Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  Matrix had = a.Hadamard(b);
  EXPECT_DOUBLE_EQ(had(0, 1), 40.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Rng rng(1);
  Matrix m = Matrix::Gaussian(4, 7, &rng);
  EXPECT_TRUE(m.Transpose().Transpose().ApproxEquals(m));
  EXPECT_DOUBLE_EQ(m.Transpose()(3, 2), m(2, 3));
}

TEST(MatrixTest, Reductions) {
  Matrix m = Matrix::FromRows({{1, -2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m.Sum(), 6.0);
  EXPECT_DOUBLE_EQ(m.Mean(), 1.5);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), std::sqrt(1 + 4 + 9 + 16.0));
  EXPECT_EQ(m.RowSums(), (std::vector<double>{-1.0, 7.0}));
  EXPECT_EQ(m.RowMeans(), (std::vector<double>{-0.5, 3.5}));
  EXPECT_EQ(m.ColMeans(), (std::vector<double>{2.0, 1.0}));
  EXPECT_DOUBLE_EQ(m.RowNorm(1), 5.0);
}

TEST(MatrixTest, GatherRowsAndSetRow) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Matrix g = m.GatherRows({2, 0, 2});
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_DOUBLE_EQ(g(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(g(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(g(2, 0), 5.0);
  m.SetRow(1, {7.0, 8.0});
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST(MatrixTest, MapAndApproxEquals) {
  Matrix m = Matrix::FromRows({{1, 4}, {9, 16}});
  Matrix r = m.Map([](double v) { return std::sqrt(v); });
  EXPECT_TRUE(r.ApproxEquals(Matrix::FromRows({{1, 2}, {3, 4}}), 1e-12));
  EXPECT_FALSE(r.ApproxEquals(m));
  EXPECT_FALSE(r.ApproxEquals(Matrix(2, 3)));
  m.MapInPlace([](double v) { return -v; });
  EXPECT_DOUBLE_EQ(m(0, 0), -1.0);
}

TEST(MatrixTest, MatMulSmallKnownResult) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = MatMul(a, b);
  EXPECT_TRUE(c.ApproxEquals(Matrix::FromRows({{19, 22}, {43, 50}})));
}

TEST(MatrixTest, MatMulIdentity) {
  Rng rng(2);
  Matrix m = Matrix::Gaussian(5, 5, &rng);
  EXPECT_TRUE(MatMul(m, Matrix::Identity(5)).ApproxEquals(m, 1e-12));
  EXPECT_TRUE(MatMul(Matrix::Identity(5), m).ApproxEquals(m, 1e-12));
}

TEST(MatrixTest, TransposeKernelsAgree) {
  Rng rng(3);
  Matrix a = Matrix::Gaussian(6, 4, &rng);
  Matrix b = Matrix::Gaussian(5, 4, &rng);
  EXPECT_TRUE(
      MatMulTransposeB(a, b).ApproxEquals(MatMul(a, b.Transpose()), 1e-10));
  Matrix c = Matrix::Gaussian(6, 3, &rng);
  EXPECT_TRUE(
      MatMulTransposeA(a, c).ApproxEquals(MatMul(a.Transpose(), c), 1e-10));
}

TEST(MatrixTest, MatMulLargeParallelMatchesSerialSum) {
  // Product with a ones-vector equals row sums — checks the parallel path.
  Rng rng(4);
  Matrix a = Matrix::Gaussian(300, 50, &rng);
  Matrix ones(50, 1, 1.0);
  Matrix out = MatMul(a, ones);
  const auto sums = a.RowSums();
  for (size_t i = 0; i < a.rows(); ++i) {
    EXPECT_NEAR(out(i, 0), sums[i], 1e-9);
  }
}

TEST(MatrixTest, ToStringTruncates) {
  Matrix m(20, 20, 1.0);
  const std::string s = m.ToString(3, 3);
  EXPECT_NE(s.find("Matrix(20x20)"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

// Property sweep: (A B)^T == B^T A^T across shapes.
class MatMulTransposePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulTransposePropertyTest, TransposeOfProduct) {
  const auto [m, k, n] = GetParam();
  Rng rng(17 + m + k * 3 + n * 7);
  Matrix a = Matrix::Gaussian(m, k, &rng);
  Matrix b = Matrix::Gaussian(k, n, &rng);
  Matrix left = MatMul(a, b).Transpose();
  Matrix right = MatMul(b.Transpose(), a.Transpose());
  EXPECT_TRUE(left.ApproxEquals(right, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulTransposePropertyTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(7, 1, 5), std::make_tuple(16, 8, 2),
                      std::make_tuple(65, 33, 17)));

// ---- blocked-kernel determinism vs the serial reference kernels ----

using ::grgad::testing::BitwiseEqual;
using ::grgad::testing::ScopedDegree;

// Shapes chosen to exercise full register tiles, row tails, and column tails.
class KernelReferenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KernelReferenceTest, MatchesSerialReferenceAtDegreeOne) {
  ScopedDegree degree(1);
  const auto [m, k, n] = GetParam();
  Rng rng(91 + m + 3 * k + 7 * n);
  Matrix a = Matrix::Gaussian(m, k, &rng);
  Matrix b = Matrix::Gaussian(k, n, &rng);
  // The blocked MatMul accumulates each output element over k in the same
  // ascending order as the reference, so agreement is exact, not just 1e-12.
  EXPECT_TRUE(BitwiseEqual(MatMul(a, b), reference::MatMul(a, b)));
  EXPECT_TRUE(BitwiseEqual(a.Transpose(), reference::Transpose(a)));
  Matrix bt = Matrix::Gaussian(n, k, &rng);
  EXPECT_TRUE(MatMulTransposeB(a, bt).ApproxEquals(
      reference::MatMulTransposeB(a, bt), 1e-12));
  Matrix at = Matrix::Gaussian(k, m, &rng);
  EXPECT_TRUE(MatMulTransposeA(at, b).ApproxEquals(
      reference::MatMulTransposeA(at, b), 1e-12));
}

TEST_P(KernelReferenceTest, BitwiseIdenticalAcrossThreadCounts) {
  const auto [m, k, n] = GetParam();
  Rng rng(173 + m + 3 * k + 7 * n);
  Matrix a = Matrix::Gaussian(m, k, &rng);
  Matrix b = Matrix::Gaussian(k, n, &rng);
  Matrix serial;
  {
    ScopedDegree degree(1);
    serial = MatMul(a, b);
  }
  for (int threads : {2, 4, 8}) {
    ScopedDegree degree(threads);
    EXPECT_TRUE(BitwiseEqual(MatMul(a, b), serial)) << threads << " threads";
    // Repeated runs at a fixed degree must also be bitwise stable.
    EXPECT_TRUE(BitwiseEqual(MatMul(a, b), MatMul(a, b)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelReferenceTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(4, 32, 32),
                      std::make_tuple(5, 7, 33), std::make_tuple(64, 64, 64),
                      std::make_tuple(130, 96, 70),
                      std::make_tuple(33, 128, 257)));

TEST(MatrixTest, MapFnMatchesMapAndGoesParallel) {
  Rng rng(7);
  // Large enough to cross the parallel-map threshold.
  Matrix m = Matrix::Gaussian(260, 260, &rng);
  ScopedDegree degree(4);
  Matrix via_fn = m.MapFn([](double v) { return v * 2.0 + 1.0; });
  Matrix via_std = m.Map([](double v) { return v * 2.0 + 1.0; });
  EXPECT_TRUE(BitwiseEqual(via_fn, via_std));
  Matrix in_place = m;
  in_place.MapInPlaceFn([](double v) { return v * 2.0 + 1.0; });
  EXPECT_TRUE(BitwiseEqual(in_place, via_fn));
}

TEST(MatrixTest, MatMulInsideParallelRegionIsSafe) {
  // Kernels may be invoked from code that is itself inside a ParallelFor;
  // the nested dispatch must degrade to inline execution, not deadlock.
  ScopedDegree degree(4);
  Rng rng(8);
  Matrix a = Matrix::Gaussian(24, 16, &rng);
  Matrix b = Matrix::Gaussian(16, 12, &rng);
  Matrix expected = MatMul(a, b);
  std::vector<Matrix> results(8);
  ParallelFor(8, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) results[i] = MatMul(a, b);
  });
  for (const Matrix& r : results) EXPECT_TRUE(BitwiseEqual(r, expected));
}

TEST(MatrixIntoKernelsTest, MatchAllocatingKernelsBitwise) {
  Rng rng(99);
  const Matrix a = Matrix::Gaussian(37, 23, &rng);
  const Matrix b = Matrix::Gaussian(23, 19, &rng);
  const Matrix c = Matrix::Gaussian(37, 23, &rng);

  Matrix out(37, 19, /*fill=*/5.0);  // Stale contents must not leak through.
  MatMulInto(a, b, &out);
  EXPECT_TRUE(BitwiseEqual(out, MatMul(a, b)));

  Matrix tb(37, 37, 5.0);
  MatMulTransposeBInto(a, c, &tb);
  EXPECT_TRUE(BitwiseEqual(tb, MatMulTransposeB(a, c)));

  Matrix ta(23, 23, 5.0);
  MatMulTransposeAInto(a, c, &ta);
  EXPECT_TRUE(BitwiseEqual(ta, MatMulTransposeA(a, c)));

  Matrix tr(23, 37);
  TransposeInto(a, &tr);
  EXPECT_TRUE(BitwiseEqual(tr, a.Transpose()));

  Matrix ew(37, 23);
  AddInto(a, c, &ew);
  EXPECT_TRUE(BitwiseEqual(ew, a + c));
  SubInto(a, c, &ew);
  EXPECT_TRUE(BitwiseEqual(ew, a - c));
  HadamardInto(a, c, &ew);
  EXPECT_TRUE(BitwiseEqual(ew, a.Hadamard(c)));
  ScaledInto(a, -1.75, &ew);
  EXPECT_TRUE(BitwiseEqual(ew, a * -1.75));

  Matrix mapped(37, 23);
  a.MapToFn(&mapped, [](double v) { return v > 0.0 ? v : 0.0; });
  EXPECT_TRUE(
      BitwiseEqual(mapped, a.MapFn([](double v) { return v > 0.0 ? v : 0.0; })));
}

TEST(MatrixInPlaceKernelsTest, MatchOutOfPlaceBitwise) {
  Rng rng(100);
  const Matrix a = Matrix::Gaussian(41, 17, &rng);
  const Matrix b = Matrix::Gaussian(41, 17, &rng);
  Matrix x = a;
  x.AddInPlace(b);
  EXPECT_TRUE(BitwiseEqual(x, a + b));
  x = a;
  x.SubInPlace(b);
  EXPECT_TRUE(BitwiseEqual(x, a - b));
  x = a;
  x.MulInPlace(b);
  EXPECT_TRUE(BitwiseEqual(x, a.Hadamard(b)));
  x = Matrix(41, 17, 3.0);
  x.CopyFrom(a);
  EXPECT_TRUE(BitwiseEqual(x, a));
}

}  // namespace
}  // namespace grgad
