// Thread-safety of the RunContext telemetry surface — the serving daemon's
// usage pattern: several threads bracketing StageScopes and recording
// sub-stage timings on one shared context. The assertions check that no
// sample is lost and every progress event fires; the TSan CI job is what
// turns an unlocked interleaving into a hard failure.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/core/run_context.h"

namespace grgad {
namespace {

constexpr int kThreads = 8;
constexpr int kIters = 32;

TEST(RunContextTest, ConcurrentTelemetryLosesNoSamples) {
  RunContext ctx;
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  ctx.on_progress = [&](const StageEvent& event) {
    (event.finished ? finished : started).fetch_add(1,
                                                    std::memory_order_relaxed);
  };

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ctx, t] {
      const std::string stage = "stage-" + std::to_string(t);
      const std::string sub = "sub-" + std::to_string(t);
      for (int i = 0; i < kIters; ++i) {
        { StageScope scope(&ctx, stage); }
        ctx.RecordSubStage(sub, 0.25e-3);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  // One StageScope timing plus one sub-stage timing per iteration.
  const std::vector<StageTiming> timings = ctx.stage_timings();
  EXPECT_EQ(timings.size(),
            static_cast<size_t>(kThreads) * kIters * 2);
  // StageScope emits started+finished; RecordSubStage emits finished only.
  EXPECT_EQ(started.load(), kThreads * kIters);
  EXPECT_EQ(finished.load(), kThreads * kIters * 2);

  double sub_seconds = 0.0;
  for (const StageTiming& t : timings) {
    if (t.stage.rfind("sub-", 0) == 0) sub_seconds += t.seconds;
  }
  EXPECT_NEAR(sub_seconds, kThreads * kIters * 0.25e-3, 1e-9);
}

TEST(RunContextTest, SnapshotStaysConsistentWhileRecording) {
  RunContext ctx;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 4 * kIters; ++i) ctx.RecordSubStage("w", 1e-6);
    done.store(true, std::memory_order_release);
  });
  // Concurrent readers must always observe fully-formed entries.
  while (!done.load(std::memory_order_acquire)) {
    for (const StageTiming& t : ctx.stage_timings()) {
      ASSERT_EQ(t.stage, "w");
    }
    (void)ctx.TotalSeconds();
  }
  writer.join();
  EXPECT_EQ(ctx.stage_timings().size(), static_cast<size_t>(4 * kIters));
}

}  // namespace
}  // namespace grgad
