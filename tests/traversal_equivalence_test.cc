// Equivalence contract of the candidate-stage primitives (PERF.md,
// "Candidate stage"):
//   - every workspace-backed traversal (BFS distances, BFS tree, Dijkstra
//     over adjacency-slot costs, Bellman–Ford, connected components,
//     subset components, cycle DFS) is element-for-element identical to
//     the allocating seed implementation on random graphs, including when
//     one workspace is reused across many traversals;
//   - a SubgraphView exposes exactly the graph Graph::InducedSubgraph
//     materializes (ids, CSR rows, edge enumeration), and pattern search,
//     classification, and every augmentation produce identical output on
//     either representation under a fixed RNG;
//   - pooled workspaces are allocation-free at steady state.
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/gcl/augmentations.h"
#include "src/graph/algorithms.h"
#include "src/graph/graph.h"
#include "src/graph/subgraph_view.h"
#include "src/graph/traversal_workspace.h"
#include "src/sampling/pattern_search.h"
#include "src/util/rng.h"
#include "tests/kernel_test_util.h"

namespace grgad {
namespace {

using testing::BitwiseEqual;

/// Connected-ish random graph with extra chords and 6-dim attributes.
Graph RandomGraph(int n, int extra_edges, uint64_t seed,
                  bool attributes = true) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (int v = 1; v < n; ++v) {
    if (rng.Bernoulli(0.9)) {
      b.AddEdge(v, static_cast<int>(rng.UniformInt(static_cast<uint64_t>(v))));
    }
  }
  for (int e = 0; e < extra_edges; ++e) {
    const int u = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    if (u != v) b.AddEdge(u, v);
  }
  Matrix x;
  if (attributes) x = Matrix::Gaussian(n, 6, &rng);
  return b.Build(std::move(x));
}

double AttrCost(const Graph& g, int u, int v) {
  const double* a = g.attributes().RowPtr(u);
  const double* b = g.attributes().RowPtr(v);
  double s = 0.0;
  for (size_t j = 0; j < g.attr_dim(); ++j) {
    const double d = a[j] - b[j];
    s += d * d;
  }
  return 0.25 + std::sqrt(s);
}

std::vector<double> SlotCosts(const Graph& g) {
  std::vector<double> costs(g.num_adj_slots());
  for (int u = 0; u < g.num_nodes(); ++u) {
    auto nb = g.Neighbors(u);
    for (size_t i = 0; i < nb.size(); ++i) {
      costs[g.AdjOffset(u) + i] = AttrCost(g, u, nb[i]);
    }
  }
  return costs;
}

TEST(ForEachEdgeTest, MatchesEdgesOrder) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = RandomGraph(60, 90, seed);
    const auto edges = g.Edges();
    std::vector<std::pair<int, int>> streamed;
    g.ForEachEdge([&](int u, int v) { streamed.emplace_back(u, v); });
    EXPECT_EQ(streamed, edges);
    EXPECT_EQ(g.num_adj_slots(), 2 * g.num_edges());
  }
}

TEST(TraversalEquivalenceTest, BfsDistances) {
  TraversalWorkspace ws;
  for (uint64_t seed : {11u, 12u, 13u}) {
    const Graph g = RandomGraph(120, 60, seed);
    for (int max_depth : {-1, 0, 2, 5}) {
      for (int src : {0, 7, 59, 119}) {
        const std::vector<int> want = BfsDistances(g, src, max_depth);
        BfsDistances(g, src, max_depth, &ws);
        for (int v = 0; v < g.num_nodes(); ++v) {
          ASSERT_EQ(ws.Hop(v), want[v]) << "src=" << src << " v=" << v;
        }
      }
    }
  }
}

TEST(TraversalEquivalenceTest, BfsTree) {
  TraversalWorkspace ws;
  for (uint64_t seed : {21u, 22u}) {
    const Graph g = RandomGraph(100, 80, seed);
    for (int max_depth : {-1, 3, 32}) {
      for (int root : {0, 13, 99}) {
        const BfsTree want = BuildBfsTree(g, root, max_depth);
        BuildBfsTree(g, root, max_depth, &ws);
        ASSERT_EQ(ws.Order().size(), want.order.size());
        for (size_t i = 0; i < want.order.size(); ++i) {
          ASSERT_EQ(ws.Order()[i], want.order[i]);
        }
        for (int v = 0; v < g.num_nodes(); ++v) {
          ASSERT_EQ(ws.Parent(v), want.parent[v]);
          ASSERT_EQ(ws.Hop(v), want.depth[v]);
        }
      }
    }
  }
}

TEST(TraversalEquivalenceTest, DijkstraSlotCosts) {
  TraversalWorkspace ws;
  for (uint64_t seed : {31u, 32u}) {
    const Graph g = RandomGraph(90, 70, seed);
    const std::vector<double> slot_costs = SlotCosts(g);
    const auto cost_fn = [&g](int u, int v) { return AttrCost(g, u, v); };
    for (double max_cost : {0.0, 3.5}) {
      for (int src : {0, 44, 89}) {
        std::vector<double> want_dist;
        std::vector<int> want_parent;
        Dijkstra(g, src, cost_fn, &want_dist, &want_parent, max_cost);
        Dijkstra(g, src, slot_costs, max_cost, &ws);
        for (int v = 0; v < g.num_nodes(); ++v) {
          ASSERT_EQ(ws.Dist(v), want_dist[v]) << "src=" << src << " v=" << v;
          ASSERT_EQ(ws.Parent(v), want_parent[v]);
        }
      }
    }
  }
}

TEST(TraversalEquivalenceTest, BellmanFord) {
  TraversalWorkspace ws;
  for (uint64_t seed : {41u, 42u}) {
    const Graph g = RandomGraph(70, 50, seed);
    Rng rng(seed ^ 0xbeef);
    std::vector<double> weights(g.num_edges());
    for (double& w : weights) w = rng.Uniform(0.05, 2.0);
    for (int src : {0, 35, 69}) {
      std::vector<double> want_dist;
      std::vector<int> want_parent;
      const bool want_ok = BellmanFord(g, src, weights, &want_dist,
                                       &want_parent);
      const bool got_ok = BellmanFord(g, src, weights, &ws);
      ASSERT_EQ(got_ok, want_ok);
      for (int v = 0; v < g.num_nodes(); ++v) {
        ASSERT_EQ(ws.Dist(v), want_dist[v]);
        ASSERT_EQ(ws.Parent(v), want_parent[v]);
      }
    }
  }
}

TEST(TraversalEquivalenceTest, BellmanFordNegativeCycle) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  const Graph g = b.Build();
  const std::vector<double> weights = {-1.0, -1.0, -1.0};
  std::vector<double> dist;
  std::vector<int> parent;
  EXPECT_FALSE(BellmanFord(g, 0, weights, &dist, &parent));
  TraversalWorkspace ws;
  EXPECT_FALSE(BellmanFord(g, 0, weights, &ws));
}

TEST(TraversalEquivalenceTest, ConnectedComponents) {
  TraversalWorkspace ws;
  for (uint64_t seed : {51u, 52u, 53u}) {
    // Sparse enough to leave several components.
    const Graph g = RandomGraph(80, 5, seed, /*attributes=*/false);
    const std::vector<int> want = ConnectedComponents(g);
    const std::span<const int> got = ConnectedComponents(g, &ws);
    ASSERT_EQ(got.size(), want.size());
    for (size_t v = 0; v < want.size(); ++v) ASSERT_EQ(got[v], want[v]);
  }
}

TEST(TraversalEquivalenceTest, ComponentsOfSubset) {
  TraversalWorkspace ws;
  for (uint64_t seed : {61u, 62u}) {
    const Graph g = RandomGraph(100, 60, seed, /*attributes=*/false);
    Rng rng(seed ^ 0xfeed);
    std::vector<int> subset;
    for (int v = 0; v < g.num_nodes(); ++v) {
      if (rng.Bernoulli(0.35)) subset.push_back(v);
    }
    rng.Shuffle(&subset);  // Order-sensitive output; exercise it shuffled.
    EXPECT_EQ(ComponentsOfSubset(g, subset, &ws),
              ComponentsOfSubset(g, subset));
  }
}

TEST(TraversalEquivalenceTest, CyclesThrough) {
  TraversalWorkspace ws;
  for (uint64_t seed : {71u, 72u}) {
    const Graph g = RandomGraph(50, 80, seed, /*attributes=*/false);
    for (int v : {0, 10, 49}) {
      const auto want = CyclesThrough(g, v, /*max_len=*/8, /*max_cycles=*/16,
                                      /*max_steps=*/20000);
      const auto got = CyclesThrough(g, v, /*max_len=*/8, /*max_cycles=*/16,
                                     /*max_steps=*/20000, &ws);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) ASSERT_EQ(got[i], want[i]);
    }
  }
}

TEST(SubgraphViewTest, MatchesInducedSubgraph) {
  for (uint64_t seed : {81u, 82u, 83u}) {
    const Graph g = RandomGraph(60, 70, seed);
    // Sorted, unsorted, and duplicate-bearing node lists.
    const std::vector<std::vector<int>> node_lists = {
        {1, 2, 3, 4, 5, 9, 10, 11},
        {30, 4, 17, 55, 2, 41, 8},
        {7, 7, 3, 12, 3, 20, 12, 1},
    };
    SubgraphView view;
    for (const auto& nodes : node_lists) {
      const Graph induced = g.InducedSubgraph(nodes);
      view.Reset(g, nodes);
      ASSERT_EQ(view.num_nodes(), induced.num_nodes());
      ASSERT_EQ(view.num_edges(), induced.num_edges());
      ASSERT_EQ(std::vector<int>(view.GlobalIds().begin(),
                                 view.GlobalIds().end()),
                induced.mapping());
      for (int v = 0; v < view.num_nodes(); ++v) {
        ASSERT_EQ(view.Degree(v), induced.Degree(v));
        auto got = view.Neighbors(v);
        auto want = induced.Neighbors(v);
        ASSERT_EQ(std::vector<int>(got.begin(), got.end()),
                  std::vector<int>(want.begin(), want.end()));
      }
      std::vector<std::pair<int, int>> streamed;
      view.ForEachEdge([&](int u, int v) { streamed.emplace_back(u, v); });
      EXPECT_EQ(streamed, induced.Edges());
      // Attribute rows alias the host rows of the mapped ids.
      for (int v = 0; v < view.num_nodes(); ++v) {
        const double* got_row = view.AttrRow(v);
        for (size_t j = 0; j < g.attr_dim(); ++j) {
          ASSERT_EQ(got_row[j], induced.attributes()(v, j));
        }
      }
      // Materialize round-trips to the same graph.
      const Graph mat = view.Materialize();
      EXPECT_EQ(mat.Edges(), induced.Edges());
      EXPECT_TRUE(BitwiseEqual(mat.attributes(), induced.attributes()));
    }
  }
}

TEST(SubgraphViewTest, PatternsAndClassificationMatchInduced) {
  for (uint64_t seed : {91u, 92u, 93u}) {
    const Graph g = RandomGraph(80, 50, seed);
    Rng pick(seed);
    SubgraphView view;
    for (int trial = 0; trial < 6; ++trial) {
      std::vector<int> nodes;
      const int base = static_cast<int>(pick.UniformInt(60));
      for (int i = 0; i < 14; ++i) nodes.push_back(base + i);
      const Graph induced = g.InducedSubgraph(nodes);
      view.Reset(g, nodes);
      const FoundPatterns want = SearchPatterns(induced);
      const FoundPatterns got = SearchPatterns(view);
      EXPECT_EQ(got.trees, want.trees);
      EXPECT_EQ(got.paths, want.paths);
      EXPECT_EQ(got.cycles, want.cycles);
      EXPECT_EQ(ClassifyGroupPattern(view), ClassifyGroupPattern(induced));
    }
  }
}

TEST(SubgraphViewTest, AugmentMatchesInducedUnderFixedRng) {
  const Graph g = RandomGraph(70, 60, 101);
  SubgraphView view;
  for (AugmentationKind kind :
       {AugmentationKind::kPba, AugmentationKind::kPpa,
        AugmentationKind::kNodeDrop, AugmentationKind::kEdgeRemove,
        AugmentationKind::kFeatureMask}) {
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<int> nodes;
      for (int i = 0; i < 12; ++i) nodes.push_back(trial * 13 + i);
      const Graph induced = g.InducedSubgraph(nodes);
      view.Reset(g, nodes);
      const FoundPatterns patterns = SearchPatterns(induced);
      Rng rng_a(7u + trial);
      Rng rng_b(7u + trial);
      const Graph want = Augment(induced, kind, patterns, &rng_a);
      const Graph got = Augment(view, kind, patterns, &rng_b);
      ASSERT_EQ(got.num_nodes(), want.num_nodes()) << ToString(kind);
      EXPECT_EQ(got.Edges(), want.Edges()) << ToString(kind);
      EXPECT_TRUE(BitwiseEqual(got.attributes(), want.attributes()))
          << ToString(kind);
      // The two forms must also have consumed the same rng stream.
      EXPECT_EQ(rng_a.NextU64(), rng_b.NextU64()) << ToString(kind);
    }
  }
}

TEST(WorkspacePoolTest, SteadyStateAcquireIsAllocationFree) {
  TraversalWorkspacePool pool;
  pool.Prewarm(4, 256);
  const uint64_t before = TraversalWorkspace::TotalHeapAllocs();
  for (int round = 0; round < 3; ++round) {
    auto a = pool.Acquire();
    auto b = pool.Acquire();
    a->Begin(256);
    b->Begin(100);  // Smaller graphs never grow a prewarmed workspace.
  }
  EXPECT_EQ(TraversalWorkspace::TotalHeapAllocs(), before);
}

TEST(WorkspaceTest, ReuseAcrossTraversalsStaysCorrect) {
  // One workspace, alternating algorithms over two graphs: the epoch stamp
  // must fully isolate consecutive traversals.
  const Graph g1 = RandomGraph(64, 40, 111);
  const Graph g2 = RandomGraph(48, 90, 112);
  TraversalWorkspace ws;
  for (int round = 0; round < 5; ++round) {
    const Graph& g = (round % 2 == 0) ? g1 : g2;
    const int src = round * 7 % g.num_nodes();
    const std::vector<int> want_bfs = BfsDistances(g, src, -1);
    BfsDistances(g, src, -1, &ws);
    for (int v = 0; v < g.num_nodes(); ++v) ASSERT_EQ(ws.Hop(v), want_bfs[v]);
    const auto want_cycles = CyclesThrough(g, src, 6, 8, 5000);
    const auto got_cycles = CyclesThrough(g, src, 6, 8, 5000, &ws);
    ASSERT_EQ(got_cycles.size(), want_cycles.size());
  }
}

}  // namespace
}  // namespace grgad
