// Graph operators: normalized adjacency, standardized powers, modularity
// projection, and the GraphSNN weighted adjacency of Eqn. (4).
#include <cmath>

#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/graph/graphsnn.h"
#include "src/graph/operators.h"

namespace grgad {
namespace {

Graph Triangle() {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  return b.Build();
}

Graph Path(int n) {
  GraphBuilder b(n);
  for (int i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1);
  return b.Build();
}

TEST(OperatorsTest, AdjacencyMatrixSymmetric) {
  Graph g = Triangle();
  SparseMatrix a = AdjacencyMatrix(g);
  EXPECT_EQ(a.nnz(), 6u);
  EXPECT_DOUBLE_EQ(a.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 0.0);
}

TEST(OperatorsTest, NormalizedAdjacencyRowSumsOnRegularGraph) {
  // On a d-regular graph, Â rows sum to exactly 1.
  Graph g = Triangle();
  auto a_norm = NormalizedAdjacency(g);
  const auto sums = a_norm->RowSums();
  for (double s : sums) EXPECT_NEAR(s, 1.0, 1e-12);
  // Self-loops present.
  EXPECT_GT(a_norm->At(0, 0), 0.0);
}

TEST(OperatorsTest, NormalizedAdjacencyHandlesIsolatedNodes) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  auto a_norm = NormalizedAdjacency(b.Build());
  // Isolated node 2 keeps only its self-loop with weight 1.
  EXPECT_NEAR(a_norm->At(2, 2), 1.0, 1e-12);
}

TEST(OperatorsTest, SymmetricNormalizeIsSymmetric) {
  Graph g = Path(5);
  SparseMatrix norm = SymmetricNormalize(AdjacencyMatrix(g), true);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_NEAR(norm.At(i, j), norm.At(j, i), 1e-12);
    }
  }
}

TEST(OperatorsTest, StandardizedPowerK1IsNormalizedAdjacency) {
  Graph g = Path(4);
  SparseMatrix p1 = StandardizedPower(g, 1);
  // Max-normalized row-stochastic walk matrix: entries in [0, 1], zero diag.
  EXPECT_DOUBLE_EQ(p1.At(0, 0), 0.0);
  EXPECT_GT(p1.At(0, 1), 0.0);
  EXPECT_LE(p1.MaxNormalized().At(0, 1), 1.0);
}

TEST(OperatorsTest, StandardizedPowerReachesKHops) {
  Graph g = Path(6);
  SparseMatrix p3 = StandardizedPower(g, 3);
  // After 3 steps, node 0 reaches node 3 but not node 5 (parity+distance).
  EXPECT_GT(p3.At(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(p3.At(0, 5), 0.0);
  // 2 hops is reachable by a 3-step walk? No: path graph walks alternate
  // parity, so (0,2) needs an even number of steps.
  EXPECT_DOUBLE_EQ(p3.At(0, 2), 0.0);
  EXPECT_GT(p3.At(0, 1), 0.0);  // Step back and forth.
}

TEST(OperatorsTest, StandardizedPowerMaxIsOne) {
  Graph g = Path(8);
  for (int k : {2, 3, 5}) {
    SparseMatrix p = StandardizedPower(g, k);
    double max_v = 0.0;
    for (size_t i = 0; i < p.rows(); ++i) {
      for (double v : p.RowValues(i)) max_v = std::max(max_v, v);
    }
    EXPECT_NEAR(max_v, 1.0, 1e-12) << "k=" << k;
  }
}

TEST(OperatorsTest, StandardizedPowerRowCapPrunes) {
  // Star graph: center row of A^2 would touch all leaves' neighbors.
  GraphBuilder b(40);
  for (int i = 1; i < 40; ++i) b.AddEdge(0, i);
  Graph g = b.Build();
  SparseMatrix p2 = StandardizedPower(g, 2, /*row_cap=*/5);
  for (size_t i = 0; i < p2.rows(); ++i) {
    EXPECT_LE(p2.RowNnz(i), 5u);
  }
}

TEST(OperatorsTest, ModularityProjectionZeroForRegularStructure) {
  // On a complete graph, B = A - d d^T/2m has constant row structure; the
  // projection should have much smaller magnitude than for a star graph.
  GraphBuilder complete(6);
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) complete.AddEdge(i, j);
  }
  Matrix proj = ModularityProjection(complete.Build(), 8, 42);
  EXPECT_EQ(proj.rows(), 6u);
  EXPECT_EQ(proj.cols(), 8u);
  // Deterministic given the seed.
  Matrix proj2 = ModularityProjection(complete.Build(), 8, 42);
  EXPECT_TRUE(proj.ApproxEquals(proj2, 1e-12));
}

TEST(OperatorsTest, ModularityProjectionSeparatesCommunities) {
  // Two disjoint triangles: within-community rows should be more similar to
  // each other than to the other community's rows.
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  b.AddEdge(5, 3);
  Matrix proj = ModularityProjection(b.Build(), 16, 7);
  auto row_dist = [&proj](int a, int c) {
    double s = 0.0;
    for (size_t j = 0; j < proj.cols(); ++j) {
      const double d = proj(a, j) - proj(c, j);
      s += d * d;
    }
    return std::sqrt(s);
  };
  EXPECT_LT(row_dist(0, 1), row_dist(0, 3));
}

TEST(GraphSnnTest, EdgeWeightsOnTriangle) {
  // Triangle: every edge's closed-neighborhood overlap is all 3 nodes with
  // 3 internal edges -> weight = 3/(3*2) * 3^1 = 1.5.
  Graph g = Triangle();
  const auto w = GraphSnnEdgeWeights(g, 1.0);
  ASSERT_EQ(w.size(), 3u);
  for (double v : w) EXPECT_NEAR(v, 1.5, 1e-12);
}

TEST(GraphSnnTest, PathEdgesHaveSmallOverlap) {
  // Path 0-1-2: overlap of (0,1) is {0,1,2}? Closed nbhd of 0 = {0,1},
  // of 1 = {0,1,2} -> overlap {0,1} with 1 edge -> 1/(2*1)*2 = 1.
  Graph g = Path(3);
  const auto w = GraphSnnEdgeWeights(g, 1.0);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(w[0], 1.0, 1e-12);
  EXPECT_NEAR(w[1], 1.0, 1e-12);
}

TEST(GraphSnnTest, TriangleEdgesWeighMoreThanBridges) {
  // Triangle + pendant: the in-triangle edges must outweigh the bridge.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddEdge(2, 3);
  Graph g = b.Build();
  const auto edges = g.Edges();
  const auto w = GraphSnnEdgeWeights(g, 1.0);
  double triangle_min = 1e9, bridge = -1;
  for (size_t e = 0; e < edges.size(); ++e) {
    if (edges[e] == std::make_pair(2, 3)) {
      bridge = w[e];
    } else {
      triangle_min = std::min(triangle_min, w[e]);
    }
  }
  EXPECT_GT(triangle_min, bridge);
}

TEST(GraphSnnTest, AdjacencyMatchesSparsityPatternOfA) {
  Graph g = Triangle();
  GraphSnnOptions options;
  SparseMatrix snn = GraphSnnAdjacency(g, options);
  EXPECT_EQ(snn.nnz(), 6u);
  EXPECT_NEAR(snn.At(0, 1), snn.At(1, 0), 1e-12);
  // Max-normalized: top weight exactly 1.
  double max_v = 0.0;
  for (size_t i = 0; i < snn.rows(); ++i) {
    for (double v : snn.RowValues(i)) max_v = std::max(max_v, v);
  }
  EXPECT_NEAR(max_v, 1.0, 1e-12);
}

TEST(GraphSnnTest, LambdaScalesWeights) {
  Graph g = Triangle();
  const auto w1 = GraphSnnEdgeWeights(g, 1.0);
  const auto w2 = GraphSnnEdgeWeights(g, 2.0);
  EXPECT_NEAR(w2[0] / w1[0], 3.0, 1e-12);  // |V|^2 / |V|^1 with |V| = 3.
}

}  // namespace
}  // namespace grgad
