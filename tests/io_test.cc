// Dataset serialization round-trips and malformed-input handling.
#include <gtest/gtest.h>

#include <fstream>

#include "src/data/io.h"
#include "src/data/registry.h"

namespace grgad {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  ASSERT_TRUE(f.is_open());
  f << content;
}

TEST(IoTest, EdgeListRoundTrip) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 4);
  b.AddEdge(2, 3);
  Graph g = b.Build();
  const std::string path = TempPath("edges.txt");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), 5);
  EXPECT_EQ(loaded.value().Edges(), g.Edges());
}

TEST(IoTest, EdgeListExplicitNodeCount) {
  WriteFileOrDie(TempPath("tiny.edges"), "0 1\n");
  auto loaded = LoadEdgeList(TempPath("tiny.edges"), 10);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), 10);
  auto conflict = LoadEdgeList(TempPath("tiny.edges"), 1);
  EXPECT_FALSE(conflict.ok());
}

TEST(IoTest, EdgeListRejectsGarbage) {
  WriteFileOrDie(TempPath("bad.edges"), "0 x\n");
  EXPECT_FALSE(LoadEdgeList(TempPath("bad.edges")).ok());
  WriteFileOrDie(TempPath("neg.edges"), "-1 2\n");
  EXPECT_FALSE(LoadEdgeList(TempPath("neg.edges")).ok());
  EXPECT_FALSE(LoadEdgeList("/no/such/file.edges").ok());
}

TEST(IoTest, AttributesRoundTrip) {
  Matrix x = Matrix::FromRows({{1.5, -2.0}, {0.0, 3.25}});
  const std::string path = TempPath("attrs.csv");
  ASSERT_TRUE(SaveAttributes(x, path).ok());
  auto loaded = LoadAttributes(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().ApproxEquals(x, 1e-9));
}

TEST(IoTest, AttributesRejectRaggedRows) {
  WriteFileOrDie(TempPath("ragged.csv"), "1,2\n3\n");
  EXPECT_FALSE(LoadAttributes(TempPath("ragged.csv")).ok());
  WriteFileOrDie(TempPath("nonnum.csv"), "1,abc\n");
  EXPECT_FALSE(LoadAttributes(TempPath("nonnum.csv")).ok());
}

TEST(IoTest, GroupsRoundTrip) {
  Dataset d;
  d.name = "t";
  GraphBuilder b(10);
  b.AddEdge(0, 1);
  d.graph = b.Build();
  d.anomaly_groups = {{1, 2, 3}, {5, 7}};
  d.group_patterns = {TopologyPattern::kPath, TopologyPattern::kCycle};
  const std::string path = TempPath("groups.txt");
  ASSERT_TRUE(SaveGroups(d, path).ok());
  std::vector<std::vector<int>> groups;
  std::vector<TopologyPattern> patterns;
  ASSERT_TRUE(LoadGroups(path, &groups, &patterns).ok());
  EXPECT_EQ(groups, d.anomaly_groups);
  EXPECT_EQ(patterns, d.group_patterns);
}

TEST(IoTest, GroupsRejectBadLines) {
  std::vector<std::vector<int>> groups;
  std::vector<TopologyPattern> patterns;
  WriteFileOrDie(TempPath("nocolon.groups"), "path 1 2 3\n");
  EXPECT_FALSE(LoadGroups(TempPath("nocolon.groups"), &groups,
                          &patterns).ok());
  WriteFileOrDie(TempPath("badpat.groups"), "star: 1 2 3\n");
  EXPECT_FALSE(LoadGroups(TempPath("badpat.groups"), &groups,
                          &patterns).ok());
  WriteFileOrDie(TempPath("empty.groups"), "path:\n");
  EXPECT_FALSE(LoadGroups(TempPath("empty.groups"), &groups,
                          &patterns).ok());
}

TEST(IoTest, FullDatasetRoundTrip) {
  DatasetOptions options;
  options.scale = 0.1;
  options.attr_dim = 8;
  auto gen = MakeDataset("simml", options);
  ASSERT_TRUE(gen.ok());
  const std::string prefix = TempPath("simml_rt");
  ASSERT_TRUE(SaveDataset(gen.value(), prefix).ok());
  auto loaded = LoadDataset(prefix, "simml");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().graph.num_nodes(), gen.value().graph.num_nodes());
  EXPECT_EQ(loaded.value().graph.Edges(), gen.value().graph.Edges());
  EXPECT_TRUE(loaded.value().graph.attributes().ApproxEquals(
      gen.value().graph.attributes(), 1e-8));
  EXPECT_EQ(loaded.value().anomaly_groups, gen.value().anomaly_groups);
  EXPECT_EQ(loaded.value().group_patterns, gen.value().group_patterns);
}

}  // namespace
}  // namespace grgad
