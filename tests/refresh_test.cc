// Incremental refresh over a mutable graph (the PR's golden contract):
//   1. dirty-region tracking — an edge mutation marks exactly the anchors
//      whose radius-R balls contain an endpoint; weighted path modes are
//      not radius-local and must MarkAll(),
//   2. the golden test — RefreshArtifacts over the tracker's dirty set is
//      bitwise identical to re-running the candidate + pooled-embedding +
//      scoring stages from scratch on the mutated graph, at GRGAD_THREADS
//      1 and 4,
//   3. randomized mutation churn through the serving daemon — interleaved
//      add-edge / remove-edge / refresh requests end at the same resident
//      artifacts (and byte-identical rescore responses) as a from-scratch
//      daemon on the rebuilt final graph, and the outcome is independent of
//      the admission order of commuting mutations.
#include "src/core/refresh.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/core/artifacts.h"
#include "src/core/stages.h"
#include "src/graph/dynamic_graph.h"
#include "src/sampling/dirty_tracker.h"
#include "src/serve/request.h"
#include "src/serve/server.h"
#include "src/tensor/matrix.h"
#include "src/util/rng.h"
#include "tests/kernel_test_util.h"

namespace grgad {
namespace {

Graph ChainGraph(int n) {
  GraphBuilder b(n);
  for (int v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1);
  return b.Build();
}

/// Connected random graph (spanning tree + extras) with 4-dim attributes.
Graph RandomGraph(int n, int extra_edges, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (int v = 1; v < n; ++v) {
    b.AddEdge(v, static_cast<int>(rng.UniformInt(static_cast<uint64_t>(v))));
  }
  for (int e = 0; e < extra_edges; ++e) {
    const int u = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    if (u != v) b.AddEdge(u, v);
  }
  Matrix x = Matrix::Gaussian(n, 4, &rng);
  return b.Build(std::move(x));
}

std::vector<int> EveryKth(int n, int k) {
  std::vector<int> anchors;
  for (int v = 0; v < n; v += k) anchors.push_back(v);
  return anchors;
}

/// Options whose candidate output is radius-local: hop-count path search
/// with small radii, so ball invalidation is sound AND actually local on a
/// few-hundred-node graph.
TpGrGadOptions LocalOptions(uint64_t seed = 29) {
  TpGrGadOptions options;
  options.seed = seed;
  options.sampler.path_mode = PathSearchMode::kUnweighted;
  options.sampler.pair_radius = 4;
  options.sampler.cycle_max_len = 4;
  options.ReseedStages();
  return options;
}

/// What RefreshArtifacts promises to match: the candidate stage plus the
/// pooled embedding + scoring stages, run fresh on `g` with fixed anchors.
struct Reference {
  std::vector<std::vector<int>> groups;
  Matrix embeddings;
  std::vector<double> scores;
  std::vector<ScoredGroup> scored_groups;
};

void FullReference(const Graph& g, const std::vector<int>& anchors,
                   const TpGrGadOptions& options, Reference* out) {
  auto candidates = RunCandidateStage(g, anchors, options);
  ASSERT_TRUE(candidates.ok()) << candidates.status().ToString();
  out->groups = std::move(candidates.value().groups);
  TpGrGadOptions pooled = options;
  pooled.disable_tpgcl = true;
  auto embedded = RunEmbeddingStage(g, out->groups, pooled);
  ASSERT_TRUE(embedded.ok()) << embedded.status().ToString();
  out->embeddings = std::move(embedded.value().embeddings);
  auto scored = RunScoringStage(out->embeddings, out->groups, pooled);
  ASSERT_TRUE(scored.ok()) << scored.status().ToString();
  out->scores = std::move(scored.value().scores);
  out->scored_groups = std::move(scored.value().scored_groups);
}

void ExpectSameScoredGroups(const std::vector<ScoredGroup>& a,
                            const std::vector<ScoredGroup>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].nodes, b[i].nodes) << "group " << i;
    EXPECT_EQ(a[i].score, b[i].score) << "group " << i;
  }
}

// ---- dirty-region tracking --------------------------------------------------

TEST(DirtyTrackerTest, OnlyHopCountSearchIsRadiusLocal) {
  GroupSamplerOptions options;
  options.path_mode = PathSearchMode::kUnweighted;
  EXPECT_TRUE(IncrementalInvalidationSound(options));
  options.path_mode = PathSearchMode::kAttributeDistance;
  EXPECT_FALSE(IncrementalInvalidationSound(options));
  options.path_mode = PathSearchMode::kGraphSnnWeighted;
  EXPECT_FALSE(IncrementalInvalidationSound(options));

  options.pair_radius = 4;
  options.cycle_max_len = 7;
  EXPECT_EQ(InvalidationRadius(options), 7);
  options.pair_radius = 9;
  EXPECT_EQ(InvalidationRadius(options), 9);
}

TEST(DirtyTrackerTest, ChainBallMarksOnlyNearbyAnchors) {
  const Graph g = ChainGraph(100);
  const std::vector<int> anchors = EveryKth(100, 10);  // 0, 10, ..., 90.
  AnchorDirtyTracker tracker;
  tracker.Reset(anchors, /*radius=*/4, g.num_nodes());

  // Ball of radius 4 around {50, 51} covers nodes 46..55: anchor 50 only.
  EXPECT_EQ(tracker.MarkFromEdge(g, 50, 51), 1);
  EXPECT_EQ(tracker.dirty_count(), 1u);
  // Fanout counts anchors in the ball even when already dirty.
  EXPECT_EQ(tracker.MarkFromEdge(g, 50, 51), 1);
  EXPECT_EQ(tracker.dirty_count(), 1u);
  // {14, 15} covers 10..19: anchor 10 (index 1).
  EXPECT_EQ(tracker.MarkFromEdge(g, 14, 15), 1);
  // {25, 26} covers 21..30: anchor 30 (index 3) only.
  EXPECT_EQ(tracker.MarkFromEdge(g, 25, 26), 1);

  EXPECT_EQ(tracker.TakeDirtyIndices(), (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(tracker.dirty_count(), 0u);
  EXPECT_TRUE(tracker.TakeDirtyIndices().empty());
}

TEST(DirtyTrackerTest, NodeBallAndMarkAll) {
  const Graph g = ChainGraph(40);
  const std::vector<int> anchors = {0, 10, 20, 30};
  AnchorDirtyTracker tracker;
  tracker.Reset(anchors, /*radius=*/3, g.num_nodes());

  // Ball of radius 3 around node 9 covers 6..12: anchor 10 only.
  EXPECT_EQ(tracker.MarkFromNode(g, 9), 1);
  EXPECT_EQ(tracker.TakeDirtyIndices(), (std::vector<int>{1}));

  tracker.MarkAll();
  EXPECT_TRUE(tracker.all_dirty());
  EXPECT_EQ(tracker.TakeDirtyIndices(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_FALSE(tracker.all_dirty());
}

TEST(DirtyTrackerTest, TraversesNodesAddedAfterReset) {
  const Graph g = ChainGraph(12);
  AnchorDirtyTracker tracker;
  tracker.Reset({0, 11}, /*radius=*/2, g.num_nodes());

  DynamicGraph dg(g);
  const int fresh = dg.AddNode({});
  ASSERT_TRUE(dg.AddEdge(10, fresh));
  // Ball around the new node reaches 10, 11, 12(+itself): anchor 11.
  EXPECT_EQ(tracker.MarkFromEdge(dg, 10, fresh), 1);
  EXPECT_EQ(tracker.TakeDirtyIndices(), (std::vector<int>{1}));
}

// ---- golden: incremental == from-scratch, bitwise ---------------------------

TEST(RefreshTest, UnprimedRefreshIsAFullResample) {
  const Graph g = RandomGraph(250, 120, 7);
  const TpGrGadOptions options = LocalOptions();
  PipelineArtifacts artifacts;
  artifacts.seed = options.seed;
  artifacts.anchors = EveryKth(g.num_nodes(), 5);
  RefreshState state;
  RefreshStats stats;
  const Status status =
      RefreshArtifacts(g, options, /*dirty_indices=*/{}, &state, &artifacts,
                       /*ctx=*/nullptr, &stats);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(stats.full);
  EXPECT_EQ(stats.dirty_anchors, artifacts.anchors.size());
  EXPECT_TRUE(state.primed);
  ASSERT_GE(artifacts.candidate_groups.size(), 2u);
  EXPECT_EQ(artifacts.group_scores.size(), artifacts.candidate_groups.size());
}

TEST(RefreshTest, IncrementalMatchesFullRecomputeBitwise) {
  for (int degree : {1, 4}) {
    SCOPED_TRACE("degree=" + std::to_string(degree));
    testing::ScopedDegree scoped(degree);

    const Graph g0 = RandomGraph(250, 120, 7);
    const TpGrGadOptions options = LocalOptions();
    ASSERT_TRUE(IncrementalInvalidationSound(options.sampler));

    PipelineArtifacts artifacts;
    artifacts.seed = options.seed;
    artifacts.anchors = EveryKth(g0.num_nodes(), 5);
    RefreshState state;
    Status status = RefreshArtifacts(g0, options, {}, &state, &artifacts);
    ASSERT_TRUE(status.ok()) << status.ToString();

    AnchorDirtyTracker tracker;
    tracker.Reset(artifacts.anchors, InvalidationRadius(options.sampler),
                  g0.num_nodes());

    // One add (marked after applying) and one remove (marked before).
    DynamicGraph dg(g0);
    ASSERT_FALSE(dg.HasEdge(10, 200));
    ASSERT_TRUE(dg.AddEdge(10, 200));
    tracker.MarkFromEdge(dg, 10, 200);
    const int rv = dg.Neighbors(40).front();
    tracker.MarkFromEdge(dg, 40, rv);
    ASSERT_TRUE(dg.RemoveEdge(40, rv));

    const std::vector<int> dirty = tracker.TakeDirtyIndices();
    ASSERT_FALSE(dirty.empty());
    // The point of the PR: a local mutation re-samples a strict subset.
    EXPECT_LT(dirty.size(), artifacts.anchors.size());

    RefreshStats stats;
    status = RefreshArtifacts(dg.PackedView(), options, dirty, &state,
                              &artifacts, nullptr, &stats);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_FALSE(stats.full);
    EXPECT_EQ(stats.dirty_anchors, dirty.size());

    Reference ref;
    FullReference(dg.PackedView(), artifacts.anchors, options, &ref);
    ASSERT_GE(ref.groups.size(), 2u);
    EXPECT_EQ(artifacts.candidate_groups, ref.groups);
    EXPECT_TRUE(testing::BitwiseEqual(artifacts.group_embeddings,
                                      ref.embeddings));
    EXPECT_EQ(artifacts.group_scores, ref.scores);
    ExpectSameScoredGroups(artifacts.scored_groups, ref.scored_groups);
  }
}

// ---- churn through the daemon ----------------------------------------------

std::string ExecuteLine(ServeDaemon* daemon, const std::string& line) {
  auto request = ParseServeRequest(line);
  EXPECT_TRUE(request.ok()) << line << ": " << request.status().ToString();
  if (!request.ok()) return "";
  Status status;
  const std::string response = daemon->Execute(request.value(), &status);
  EXPECT_TRUE(status.ok()) << line << ": " << status.ToString();
  return response;
}

std::string MutationLine(int64_t id, bool add, int u, int v) {
  return "{\"id\": " + std::to_string(id) + ", \"op\": \"" +
         (add ? "add-edge" : "remove-edge") + "\", \"u\": " +
         std::to_string(u) + ", \"v\": " + std::to_string(v) + "}";
}

/// The graph a from-scratch GraphBuilder would produce from dg's edge set.
Graph Rebuild(const DynamicGraph& dg) {
  GraphBuilder b(dg.num_nodes());
  dg.ForEachEdge([&b](int u, int v) { b.AddEdge(u, v); });
  return b.Build(dg.attributes());
}

void ExpectSameArtifacts(const PipelineArtifacts& a,
                         const PipelineArtifacts& b) {
  EXPECT_EQ(a.candidate_groups, b.candidate_groups);
  EXPECT_TRUE(testing::BitwiseEqual(a.group_embeddings, b.group_embeddings));
  EXPECT_EQ(a.group_scores, b.group_scores);
  ExpectSameScoredGroups(a.scored_groups, b.scored_groups);
}

TEST(RefreshServeTest, ChurnMatchesFromScratchRebuildBitwise) {
  for (int degree : {1, 4}) {
    SCOPED_TRACE("degree=" + std::to_string(degree));
    testing::ScopedDegree scoped(degree);

    const Graph g0 = RandomGraph(220, 100, 11);
    ServeOptions serve_options;
    serve_options.pipeline = LocalOptions(31);
    PipelineArtifacts seed_artifacts;
    seed_artifacts.seed = serve_options.pipeline.seed;
    seed_artifacts.anchors = EveryKth(g0.num_nodes(), 5);

    ServeDaemon live(g0, seed_artifacts, serve_options);
    ASSERT_FALSE(ExecuteLine(&live, R"({"id": 1, "op": "refresh"})").empty());

    // Random churn: adds, removes, periodic incremental refreshes.
    Rng rng(77);
    int64_t id = 2;
    for (int step = 0; step < 60; ++step) {
      const int u = static_cast<int>(rng.UniformInt(220));
      const int v = static_cast<int>(rng.UniformInt(220));
      if (u == v) continue;
      const bool add = rng.Bernoulli(0.6);
      ExecuteLine(&live, MutationLine(id++, add, u, v));
      if (step % 9 == 8) {
        ExecuteLine(&live, "{\"id\": " + std::to_string(id++) +
                               ", \"op\": \"refresh\"}");
      }
    }
    ExecuteLine(&live, R"({"id": 900, "op": "refresh"})");

    // A daemon born on the rebuilt final graph, one full (unprimed) refresh.
    const Graph rebuilt = Rebuild(live.dynamic_graph());
    ServeDaemon fresh(rebuilt, seed_artifacts, serve_options);
    ASSERT_FALSE(
        ExecuteLine(&fresh, R"({"id": 901, "op": "refresh"})").empty());

    ExpectSameArtifacts(live.artifacts(), fresh.artifacts());
    // Byte-level: rescore is a pure function of the resident artifacts.
    const std::string probe =
        R"({"id": 950, "op": "rescore", "detector": "knn", "top": 6})";
    EXPECT_EQ(ExecuteLine(&live, probe), ExecuteLine(&fresh, probe));
  }
}

TEST(RefreshServeTest, AdmissionOrderDoesNotChangeScores) {
  const Graph g0 = RandomGraph(200, 80, 17);
  ServeOptions serve_options;
  serve_options.pipeline = LocalOptions(23);
  PipelineArtifacts seed_artifacts;
  seed_artifacts.seed = serve_options.pipeline.seed;
  seed_artifacts.anchors = EveryKth(g0.num_nodes(), 5);

  // A commuting mutation set: distinct absent edges to add plus distinct
  // present edges to remove (disjoint from the adds).
  std::vector<std::string> forward;
  Rng rng(5);
  int64_t id = 10;
  int added = 0;
  while (added < 8) {
    const int u = static_cast<int>(rng.UniformInt(200));
    const int v = static_cast<int>(rng.UniformInt(200));
    if (u == v || g0.HasEdge(u, v)) continue;
    forward.push_back(MutationLine(id++, /*add=*/true, u, v));
    ++added;
  }
  for (int v = 60; v < 64; ++v) {
    forward.push_back(
        MutationLine(id++, /*add=*/false, v, g0.Neighbors(v).front()));
  }
  std::vector<std::string> reversed(forward.rbegin(), forward.rend());

  std::vector<std::string> probes;
  for (const auto& order : {forward, reversed}) {
    ServeDaemon daemon(g0, seed_artifacts, serve_options);
    ExecuteLine(&daemon, R"({"id": 1, "op": "refresh"})");
    for (const std::string& line : order) ExecuteLine(&daemon, line);
    ExecuteLine(&daemon, R"({"id": 800, "op": "refresh"})");
    probes.push_back(ExecuteLine(
        &daemon, R"({"id": 801, "op": "rescore", "detector": "ecod"})"));
  }
  ASSERT_EQ(probes.size(), 2u);
  EXPECT_FALSE(probes[0].empty());
  EXPECT_EQ(probes[0], probes[1]);
}

}  // namespace
}  // namespace grgad
