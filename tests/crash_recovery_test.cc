// The kill-point sweep (PR 9 acceptance gate): a real `grgad serve
// --state-dir` child process is crashed — _exit(137), indistinguishable
// from kill -9 — at every durability fault point while absorbing live
// churn, then the state directory is recovered in-process and compared,
// byte for byte and double for double, against a daemon that never died.
//
// The contract per point:
//   wal/pre-append            in-flight op NOT recovered (no WAL byte hit
//                             disk before the crash),
//   wal/mid-append            in-flight op NOT recovered (torn tail record,
//                             truncated on recovery),
//   wal/post-append-pre-ack   in-flight op IS recovered (durable but
//                             unacked — at-least-once, resolved by replay),
//   snapshot/mid              acked ops recovered via WAL (torn snapshot
//                             tmp dir discarded),
//   snapshot/post-pre-truncate acked ops recovered via the committed
//                             snapshot; the stale WAL records below its
//                             high-water mark must not double-replay.
//
// The child runs GRGAD_THREADS=1 while the in-process reference runs at
// the ambient degree, so the sweep also enforces the cross-thread-count
// half of the bitwise contract (CI runs ctest at the default and at
// GRGAD_THREADS=4).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/artifacts.h"
#include "src/core/method_registry.h"
#include "src/core/pipeline.h"
#include "src/core/stages.h"
#include "src/data/registry.h"
#include "src/serve/request.h"
#include "src/serve/server.h"
#include "src/serve/wal.h"
#include "src/util/status.h"
#include "src/util/transport.h"

extern char** environ;

namespace grgad {
namespace {

namespace fs = std::filesystem;

/// The CLI binary, built next to the test binaries (ctest runs from the
/// build directory).
const char* kCliPath = "./grgad";

/// Overrides shared by the child's --set flags and the in-process
/// reference: cheap training, every append durable, snapshot every 2
/// mutations (so the snapshot/* points fire mid-churn).
const std::vector<std::string>& SharedOverrides() {
  static const std::vector<std::string>* overrides =
      new std::vector<std::string>{
          "tpgcl.epochs=8",
          "serve.wal_sync_every=1",
          "serve.snapshot_every_mutations=2",
      };
  return *overrides;
}

TpGrGadOptions BaseOptions() {
  auto options = BuildTpGrGadOptions(42, SharedOverrides());
  EXPECT_TRUE(options.ok()) << options.status().ToString();
  return options.ok() ? options.value() : TpGrGadOptions{};
}

const Dataset& TestDataset() {
  static const Dataset* dataset = [] {
    auto result = MakeDataset("example", DatasetOptions{});
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return new Dataset(result.ok() ? std::move(result).value() : Dataset{});
  }();
  return *dataset;
}

const PipelineArtifacts& TrainedArtifacts() {
  static const PipelineArtifacts* artifacts = [] {
    auto result = RunPipeline(TestDataset().graph, BaseOptions());
    if (!result.ok()) {
      ADD_FAILURE() << "seed training failed: " << result.status().ToString();
      return new PipelineArtifacts();
    }
    return new PipelineArtifacts(std::move(result).value());
  }();
  return *artifacts;
}

/// Artifacts persisted once for the children's --in (bitwise the same
/// resident state the in-process reference daemon holds).
const std::string& SavedArtifactsDir() {
  static const std::string* dir = [] {
    const fs::path path =
        fs::temp_directory_path() / "grgad_crash_test_artifacts";
    fs::remove_all(path);
    const Status saved = SaveArtifacts(TrainedArtifacts(), path.string());
    EXPECT_TRUE(saved.ok()) << saved.ToString();
    return new std::string(path.string());
  }();
  return *dir;
}

fs::path TempDir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("grgad_crash_test_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string SanitizePointName(std::string point) {
  for (char& c : point) {
    if (c == '/' || c == '-') c = '_';
  }
  return point;
}

// ---- child process ----------------------------------------------------------

struct ServeChild {
  pid_t pid = -1;
  std::unique_ptr<LineChannel> channel;  ///< Requests out, responses in.
};

/// Forks + execs `grgad serve` on stdio pipes with the crash fault armed.
ServeChild SpawnServeChild(const std::string& state_dir,
                           const std::string& fault_point) {
  // envp is assembled before fork: only async-signal-safe calls may run
  // between fork and exec in a threaded test binary.
  std::vector<std::string> env_storage;
  for (char** e = environ; *e != nullptr; ++e) {
    const std::string entry(*e);
    if (entry.rfind("GRGAD_FAULTS=", 0) == 0) continue;
    if (entry.rfind("GRGAD_THREADS=", 0) == 0) continue;
    env_storage.push_back(entry);
  }
  env_storage.push_back("GRGAD_FAULTS=crash=1," + fault_point + "=1");
  env_storage.push_back("GRGAD_THREADS=1");
  std::vector<char*> envp;
  for (std::string& entry : env_storage) envp.push_back(entry.data());
  envp.push_back(nullptr);

  std::vector<std::string> arg_storage = {
      kCliPath,     "serve",       "--dataset=example",
      "--in",       SavedArtifactsDir(),
      "--state-dir", state_dir,    "--quiet",
  };
  for (const std::string& override_kv : SharedOverrides()) {
    arg_storage.push_back("--set");
    arg_storage.push_back(override_kv);
  }
  std::vector<char*> argv;
  for (std::string& arg : arg_storage) argv.push_back(arg.data());
  argv.push_back(nullptr);

  int c2s[2] = {-1, -1};
  int s2c[2] = {-1, -1};
  EXPECT_EQ(::pipe(c2s), 0);
  EXPECT_EQ(::pipe(s2c), 0);

  ServeChild child;
  child.pid = ::fork();
  if (child.pid == 0) {
    ::dup2(c2s[0], STDIN_FILENO);
    ::dup2(s2c[1], STDOUT_FILENO);
    ::close(c2s[0]);
    ::close(c2s[1]);
    ::close(s2c[0]);
    ::close(s2c[1]);
    ::execve(kCliPath, argv.data(), envp.data());
    ::_exit(127);  // exec failed.
  }
  ::close(c2s[0]);
  ::close(s2c[1]);
  child.channel = std::make_unique<LineChannel>(s2c[0], c2s[1],
                                                /*own_fds=*/true);
  return child;
}

/// Reaps the child and returns its wait status.
int Reap(pid_t pid) {
  int wait_status = 0;
  EXPECT_EQ(::waitpid(pid, &wait_status, 0), pid);
  return wait_status;
}

// ---- the sweep --------------------------------------------------------------

std::string EdgeOp(int64_t id, bool add, int u, int v) {
  return "{\"id\": " + std::to_string(id) + ", \"op\": \"" +
         (add ? "add-edge" : "remove-edge") + "\", \"u\": " +
         std::to_string(u) + ", \"v\": " + std::to_string(v) + "}";
}

std::vector<std::pair<int, int>> AbsentEdges(size_t count) {
  const Graph& graph = TestDataset().graph;
  std::vector<std::pair<int, int>> absent;
  for (int a = 0; a < graph.num_nodes() && absent.size() < count; ++a) {
    for (int b = a + 1; b < graph.num_nodes() && absent.size() < count; ++b) {
      if (!graph.HasEdge(a, b)) absent.emplace_back(a, b);
    }
  }
  EXPECT_EQ(absent.size(), count);
  return absent;
}

std::string Exec(ServeDaemon* daemon, const std::string& line) {
  auto request = ParseServeRequest(line);
  EXPECT_TRUE(request.ok()) << line << ": " << request.status().ToString();
  if (!request.ok()) return "";
  return daemon->Execute(request.value());
}

std::unique_ptr<ServeDaemon> MakeReferenceDaemon() {
  ServeOptions options;
  options.pipeline = BaseOptions();
  return std::make_unique<ServeDaemon>(TestDataset().graph, TrainedArtifacts(),
                                       std::move(options));
}

struct Recovered {
  std::unique_ptr<LoadedServeSnapshot> snapshot;
  std::unique_ptr<ServeDaemon> daemon;
};

/// CmdServe's restart path in miniature (snapshot if committed, else the
/// --in artifacts; EnableDurability replays the WAL tail).
Recovered Recover(const std::string& state_dir) {
  Recovered out;
  ServeOptions options;
  options.pipeline = BaseOptions();
  options.state_dir = state_dir;
  auto loaded = LoadServeSnapshot(state_dir);
  if (loaded.ok()) {
    out.snapshot =
        std::make_unique<LoadedServeSnapshot>(std::move(loaded).value());
    PipelineArtifacts artifacts = std::move(out.snapshot->artifacts);
    out.daemon = std::make_unique<ServeDaemon>(
        out.snapshot->graph, std::move(artifacts), std::move(options));
  } else {
    EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound)
        << loaded.status().ToString();
    out.daemon = std::make_unique<ServeDaemon>(
        TestDataset().graph, TrainedArtifacts(), std::move(options));
  }
  const Status durable = out.daemon->EnableDurability(out.snapshot.get());
  EXPECT_TRUE(durable.ok()) << durable.ToString();
  return out;
}

void ExpectArtifactsBitwise(const PipelineArtifacts& a,
                            const PipelineArtifacts& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.anchors, b.anchors);
  EXPECT_EQ(a.candidate_groups, b.candidate_groups);
  EXPECT_EQ(a.group_scores, b.group_scores);
  ASSERT_EQ(a.scored_groups.size(), b.scored_groups.size());
  for (size_t i = 0; i < a.scored_groups.size(); ++i) {
    EXPECT_EQ(a.scored_groups[i].nodes, b.scored_groups[i].nodes);
    EXPECT_EQ(a.scored_groups[i].score, b.scored_groups[i].score) << i;
  }
  ASSERT_EQ(a.group_embeddings.rows(), b.group_embeddings.rows());
  ASSERT_EQ(a.group_embeddings.cols(), b.group_embeddings.cols());
  for (size_t r = 0; r < a.group_embeddings.rows(); ++r) {
    for (size_t c = 0; c < a.group_embeddings.cols(); ++c) {
      ASSERT_EQ(a.group_embeddings(r, c), b.group_embeddings(r, c))
          << r << "," << c;
    }
  }
}

TEST(CrashRecoveryTest, EveryKillPointRestartsBitwiseIdentical) {
  if (!fs::exists(kCliPath)) {
    GTEST_SKIP() << "grgad CLI not built next to the tests";
  }
  // A crashed child can leave this process writing into a dead pipe; that
  // must be an EPIPE write error, not a fatal signal.
  std::signal(SIGPIPE, SIG_IGN);

  const auto edges = AbsentEdges(3);
  // Churn with an applied mutation in every slot the cadence cares about:
  // op 2 is the second applied mutation, so serve.snapshot_every_mutations=2
  // triggers the snapshot (and its crash points) mid-stream.
  const std::vector<std::string> churn = {
      EdgeOp(1, true, edges[0].first, edges[0].second),
      EdgeOp(2, true, edges[1].first, edges[1].second),
      R"({"id": 3, "op": "refresh", "top": 3})",
      EdgeOp(4, true, edges[2].first, edges[2].second),
      EdgeOp(5, false, edges[0].first, edges[0].second),
  };

  struct Point {
    const char* name;
    bool in_flight_recovered;
  };
  const std::vector<Point> points = {
      {"wal/pre-append", false},
      {"wal/mid-append", false},
      {"wal/post-append-pre-ack", true},
      {"snapshot/mid", true},
      {"snapshot/post-pre-truncate", true},
  };

  for (const Point& point : points) {
    SCOPED_TRACE(point.name);
    const fs::path state_dir = TempDir(SanitizePointName(point.name));

    // Drive the child in lockstep — one request, one response — so "the
    // in-flight op" is exactly the first unanswered one.
    ServeChild child = SpawnServeChild(state_dir.string(), point.name);
    std::vector<std::string> acked;
    size_t sent = 0;
    for (const std::string& op : churn) {
      if (!child.channel->WriteLine(op).ok()) break;
      ++sent;
      std::string response;
      bool eof = false;
      if (!child.channel->ReadLine(&response, &eof).ok() || eof) break;
      acked.push_back(response);
    }
    child.channel.reset();  // Closes the pipes.
    const int wait_status = Reap(child.pid);
    ASSERT_TRUE(WIFEXITED(wait_status)) << "signal "
                                        << WTERMSIG(wait_status);
    ASSERT_EQ(WEXITSTATUS(wait_status), 137)
        << "the armed fault point never crashed the child";
    ASSERT_LT(acked.size(), churn.size());
    ASSERT_GE(sent, acked.size() + 1);

    // The reference daemon that never died: the acked prefix, plus the
    // in-flight op exactly when the point's durability ordering says it
    // survived (WAL byte or snapshot hit disk before the crash).
    auto reference = MakeReferenceDaemon();
    std::vector<std::string> expected_acks;
    for (size_t i = 0; i < acked.size(); ++i) {
      expected_acks.push_back(Exec(reference.get(), churn[i]));
    }
    EXPECT_EQ(acked, expected_acks);
    if (point.in_flight_recovered) {
      (void)Exec(reference.get(), churn[acked.size()]);
    }

    Recovered restarted = Recover(state_dir.string());
    EXPECT_EQ(restarted.daemon->dynamic_graph().num_edges(),
              reference->dynamic_graph().num_edges());
    ExpectArtifactsBitwise(restarted.daemon->artifacts(),
                           reference->artifacts());
    // Probes that consume every recovered double and every recovered dirty
    // mark must render byte-identically.
    for (const std::string& probe :
         {std::string(R"({"id": 900, "op": "refresh", "top": 5})"),
          std::string(
              R"({"id": 901, "op": "rescore", "detector": "ensemble", "top": 5})")}) {
      EXPECT_EQ(Exec(restarted.daemon.get(), probe),
                Exec(reference.get(), probe));
    }
  }
}

}  // namespace
}  // namespace grgad
