// GAE engine and the N-GAD family: training convergence, reconstruction-
// error semantics, anchor selection, and the paper's core qualitative claim
// (Fig. 3/8): vanilla-objective GAE misses group interiors that the
// multi-hop objectives catch.
#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "src/data/example_graph.h"
#include "src/gae/anchor.h"
#include "src/gae/comga.h"
#include "src/gae/deep_ae.h"
#include "src/gae/dominant.h"
#include "src/gae/gae_base.h"
#include "src/gae/mh_gae.h"
#include "src/metrics/classification.h"

namespace grgad {
namespace {

Dataset Example(uint64_t seed = 42) {
  DatasetOptions options;
  options.seed = seed;
  return GenExampleGraph(options);
}

GaeOptions QuickGae(ReconTarget target) {
  GaeOptions options;
  options.epochs = 50;
  options.hidden_dim = 32;
  options.embed_dim = 16;
  options.target = target;
  return options;
}

TEST(GaeBaseTest, ReconTargetNames) {
  EXPECT_STREQ(ToString(ReconTarget::kAdjacency), "A");
  EXPECT_STREQ(ToString(ReconTarget::kPower3), "A^3");
  EXPECT_STREQ(ToString(ReconTarget::kPower5), "A^5");
  EXPECT_STREQ(ToString(ReconTarget::kPower7), "A^7");
  EXPECT_STREQ(ToString(ReconTarget::kGraphSnn), "A~");
}

TEST(GaeBaseTest, MinMaxNormalize) {
  std::vector<double> v = {2.0, 4.0, 6.0};
  MinMaxNormalize(&v);
  EXPECT_EQ(v, (std::vector<double>{0.0, 0.5, 1.0}));
  std::vector<double> constant = {3.0, 3.0};
  MinMaxNormalize(&constant);
  EXPECT_EQ(constant, (std::vector<double>{3.0, 3.0}));
  std::vector<double> empty;
  MinMaxNormalize(&empty);  // No crash.
}

TEST(GaeBaseTest, TrainingLossDecreases) {
  const Dataset d = Example();
  GcnGae gae(QuickGae(ReconTarget::kAdjacency));
  const GaeResult result = gae.Fit(d.graph);
  ASSERT_EQ(result.loss_history.size(), 50u);
  // Average of last 5 epochs below average of first 5.
  const double head = std::accumulate(result.loss_history.begin(),
                                      result.loss_history.begin() + 5, 0.0);
  const double tail = std::accumulate(result.loss_history.end() - 5,
                                      result.loss_history.end(), 0.0);
  EXPECT_LT(tail, head);
}

TEST(GaeBaseTest, OutputShapesAndRanges) {
  const Dataset d = Example();
  GcnGae gae(QuickGae(ReconTarget::kGraphSnn));
  const GaeResult result = gae.Fit(d.graph);
  EXPECT_EQ(result.embeddings.rows(),
            static_cast<size_t>(d.graph.num_nodes()));
  EXPECT_EQ(result.embeddings.cols(), 16u);
  ASSERT_EQ(result.node_errors.size(),
            static_cast<size_t>(d.graph.num_nodes()));
  for (double e : result.node_errors) {
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

TEST(GaeBaseTest, DeterministicGivenSeed) {
  const Dataset d = Example();
  GaeOptions options = QuickGae(ReconTarget::kAdjacency);
  options.epochs = 10;
  const GaeResult a = GcnGae(options).Fit(d.graph);
  const GaeResult b = GcnGae(options).Fit(d.graph);
  EXPECT_EQ(a.node_errors, b.node_errors);
  EXPECT_TRUE(a.embeddings.ApproxEquals(b.embeddings, 1e-12));
}

// Parameterized over reconstruction targets with per-target AUC floors.
// The GraphSNN objective must be clearly discriminative; the walk-power
// objectives are weaker on this small example (their structure term can
// invert on ER-like backgrounds — which is exactly why the paper prefers Ã).
class GaeTargetTest
    : public ::testing::TestWithParam<std::pair<ReconTarget, double>> {};

TEST_P(GaeTargetTest, AnomalousNodesScoreAboveFloor) {
  const auto [target, min_auc] = GetParam();
  const Dataset d = Example();
  GcnGae gae(QuickGae(target));
  const GaeResult result = gae.Fit(d.graph);
  const double auc = RocAuc(d.NodeLabels(), result.node_errors);
  EXPECT_GT(auc, min_auc) << ToString(target);
}

INSTANTIATE_TEST_SUITE_P(
    Targets, GaeTargetTest,
    ::testing::Values(std::make_pair(ReconTarget::kAdjacency, 0.60),
                      std::make_pair(ReconTarget::kPower3, 0.60),
                      std::make_pair(ReconTarget::kPower5, 0.42),
                      std::make_pair(ReconTarget::kGraphSnn, 0.70)));

TEST(AnchorTest, SelectsTopFraction) {
  const std::vector<double> scores = {0.1, 0.9, 0.5, 0.95, 0.2};
  const auto anchors = SelectAnchors(scores, 0.4);
  EXPECT_EQ(anchors, (std::vector<int>{1, 3}));
  EXPECT_TRUE(SelectAnchors(scores, 0.0).empty());
  EXPECT_EQ(SelectAnchors(scores, 1.0).size(), 5u);
}

TEST(AnchorTest, CapBounds) {
  std::vector<double> scores(100);
  for (int i = 0; i < 100; ++i) scores[i] = i;
  const auto anchors = SelectAnchorsCapped(scores, 0.5, 10);
  EXPECT_EQ(anchors.size(), 10u);
  // The cap keeps the highest scores.
  EXPECT_EQ(anchors.front(), 90);
}

TEST(AnchorTest, TieBreakByNodeId) {
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  const auto anchors = SelectAnchors(scores, 0.5);
  EXPECT_EQ(anchors, (std::vector<int>{0, 1}));
}

TEST(MhGaeTest, AnchorsHitAnomalyGroups) {
  const Dataset d = Example();
  MhGaeOptions options;
  options.base = QuickGae(ReconTarget::kGraphSnn);
  options.anchor_fraction = 0.15;
  MhGae mh_gae(options);
  const MhGaeResult result = mh_gae.FitAnchors(d.graph);
  ASSERT_FALSE(result.anchors.empty());
  // At least a third of anchors live inside planted groups (contamination
  // is ~19%, so this requires real signal).
  const auto labels = d.NodeLabels();
  int hits = 0;
  for (int a : result.anchors) hits += labels[a];
  EXPECT_GE(hits * 3, static_cast<int>(result.anchors.size()));
}

TEST(MhGaeTest, CapturesGroupInteriorsBetterThanVanilla) {
  // The Fig. 3 / Fig. 8 claim, quantified: recall of *interior* group nodes
  // (nodes whose neighbors are all in the same group) among the top-15%
  // scored nodes must be at least as good under the multi-hop objective.
  const Dataset d = Example();
  MhGaeOptions mh_options;
  mh_options.base = QuickGae(ReconTarget::kGraphSnn);
  const auto mh_scores = MhGae(mh_options).FitNodeScores(d.graph);
  GaeOptions v_options = QuickGae(ReconTarget::kAdjacency);
  const auto vanilla_scores = Dominant(v_options).FitNodeScores(d.graph);

  std::vector<int> interior_label(d.graph.num_nodes(), 0);
  const auto labels = d.NodeLabels();
  for (const auto& group : d.anomaly_groups) {
    for (int v : group) {
      bool interior = true;
      for (int w : d.graph.Neighbors(v)) interior &= (labels[w] == 1);
      if (interior) interior_label[v] = 1;
    }
  }
  ASSERT_GT(std::accumulate(interior_label.begin(), interior_label.end(), 0),
            0);
  const double mh_auc = RocAuc(interior_label, mh_scores);
  const double vanilla_auc = RocAuc(interior_label, vanilla_scores);
  EXPECT_GE(mh_auc, vanilla_auc - 0.05);
  EXPECT_GT(mh_auc, 0.55);
}

TEST(DeepAeTest, ScoresNormalizedAndDiscriminative) {
  const Dataset d = Example();
  DeepAeOptions options;
  options.epochs = 60;
  DeepAe deep_ae(options);
  const auto scores = deep_ae.FitNodeScores(d.graph);
  ASSERT_EQ(scores.size(), static_cast<size_t>(d.graph.num_nodes()));
  EXPECT_DOUBLE_EQ(*std::min_element(scores.begin(), scores.end()), 0.0);
  EXPECT_DOUBLE_EQ(*std::max_element(scores.begin(), scores.end()), 1.0);
  EXPECT_GT(RocAuc(d.NodeLabels(), scores), 0.55);
}

TEST(ComGaTest, RunsAndDiscriminates) {
  const Dataset d = Example();
  ComGaOptions options;
  options.epochs = 50;
  options.hidden_dim = 32;
  options.embed_dim = 16;
  ComGa comga(options);
  const auto scores = comga.FitNodeScores(d.graph);
  ASSERT_EQ(scores.size(), static_cast<size_t>(d.graph.num_nodes()));
  EXPECT_GT(RocAuc(d.NodeLabels(), scores), 0.55);
}

TEST(NodeScorerTest, NamesAreStable) {
  EXPECT_EQ(Dominant().Name(), "dominant");
  EXPECT_EQ(DeepAe().Name(), "deepae");
  EXPECT_EQ(ComGa().Name(), "comga");
  EXPECT_EQ(MhGae().Name(), "mh-gae");
}

}  // namespace
}  // namespace grgad
