// Linear/GCN/MLP layers and the Adam/SGD optimizers: shapes, parameter
// registration, and actual optimization behaviour (losses must go down).
#include <cmath>

#include <gtest/gtest.h>

#include "src/nn/layers.h"
#include "src/nn/optim.h"
#include "src/util/rng.h"

namespace grgad {
namespace {

TEST(LayersTest, GlorotUniformBounds) {
  Rng rng(1);
  Matrix w = GlorotUniform(30, 20, &rng);
  const double limit = std::sqrt(6.0 / 50.0);
  EXPECT_LE(w.MaxAbs(), limit);
  EXPECT_GT(w.MaxAbs(), 0.0);
  // Not all identical.
  EXPECT_GT(w.FrobeniusNorm(), 0.1);
}

TEST(LayersTest, LinearForwardShapeAndBias) {
  Rng rng(2);
  Linear layer(4, 3, &rng);
  EXPECT_EQ(layer.in_dim(), 4u);
  EXPECT_EQ(layer.out_dim(), 3u);
  EXPECT_EQ(layer.Params().size(), 2u);  // W and b.
  Var x(Matrix(5, 4, 1.0));
  Var y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 3u);
  Linear no_bias(4, 3, &rng, /*use_bias=*/false);
  EXPECT_EQ(no_bias.Params().size(), 1u);
}

TEST(LayersTest, GcnLayerPropagates) {
  Rng rng(3);
  GcnLayer layer(2, 2, &rng, /*use_bias=*/false);
  // Operator that swaps two nodes.
  auto op = std::make_shared<const SparseMatrix>(
      SparseMatrix::FromTriplets(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}}));
  Matrix x = Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  Var out = layer.Forward(op, Var(x));
  // out = swap(X) * W: row 0 of out must equal row 1 of X*W.
  Matrix xw = MatMul(x, layer.Params()[0].value());
  EXPECT_NEAR(out.value()(0, 0), xw(1, 0), 1e-12);
  EXPECT_NEAR(out.value()(1, 1), xw(0, 1), 1e-12);
}

TEST(LayersTest, MlpShapesAndParams) {
  Rng rng(4);
  Mlp mlp({5, 8, 3}, &rng);
  EXPECT_EQ(mlp.num_layers(), 2u);
  EXPECT_EQ(mlp.Params().size(), 4u);
  Var out = mlp.Forward(Var(Matrix(7, 5, 0.5)));
  EXPECT_EQ(out.rows(), 7u);
  EXPECT_EQ(out.cols(), 3u);
}

TEST(OptimTest, AdamMinimizesQuadratic) {
  // min ||x - t||^2 from x = 0.
  Matrix target = Matrix::FromRows({{1.0, -2.0, 3.0}});
  Var x(Matrix(1, 3, 0.0), /*requires_grad=*/true);
  AdamOptions options;
  options.lr = 0.1;
  Adam adam({x}, options);
  double first_loss = 0.0, last_loss = 0.0;
  for (int i = 0; i < 200; ++i) {
    adam.ZeroGrad();
    Var loss = MseLoss(x, target);
    loss.Backward();
    adam.Step();
    if (i == 0) first_loss = loss.item();
    last_loss = loss.item();
  }
  EXPECT_LT(last_loss, first_loss * 1e-3);
  EXPECT_NEAR(x.value()(0, 0), 1.0, 0.05);
  EXPECT_NEAR(x.value()(0, 1), -2.0, 0.05);
  EXPECT_EQ(adam.step_count(), 200);
}

TEST(OptimTest, AdamSkipsParamsWithoutGrad) {
  Var used(Matrix(1, 1, 0.0), true);
  Var unused(Matrix(1, 1, 5.0), true);
  Adam adam({used, unused}, {});
  Var loss = SumSquares(used);
  loss.Backward();
  adam.Step();
  EXPECT_DOUBLE_EQ(unused.value()(0, 0), 5.0);
}

TEST(OptimTest, GradientClippingBoundsUpdate) {
  Var x(Matrix(1, 1, 0.0), true);
  AdamOptions options;
  options.lr = 1.0;
  options.clip_grad_norm = 1e-3;
  Adam adam({x}, options);
  adam.ZeroGrad();
  Var loss = Scale(x, 1e6);  // Huge gradient.
  loss.Backward();
  adam.Step();
  // Adam normalizes by sqrt(v), so the step is ~lr regardless, but the
  // clipped gradient must not produce NaN/inf.
  EXPECT_TRUE(std::isfinite(x.value()(0, 0)));
}

TEST(OptimTest, WeightDecayShrinksParams) {
  Var x(Matrix(1, 1, 10.0), true);
  AdamOptions options;
  options.lr = 0.1;
  options.weight_decay = 0.5;
  Adam adam({x}, options);
  for (int i = 0; i < 50; ++i) {
    adam.ZeroGrad();
    // Zero data loss: only decay acts — but Step() skips empty grads, so
    // provide a tiny gradient.
    Var loss = Scale(SumSquares(x), 1e-9);
    loss.Backward();
    adam.Step();
  }
  EXPECT_LT(std::fabs(x.value()(0, 0)), 10.0);
}

TEST(OptimTest, SgdDescendsQuadratic) {
  Matrix target = Matrix::FromRows({{2.0}});
  Var x(Matrix(1, 1, 0.0), true);
  Sgd sgd({x}, 0.2);
  for (int i = 0; i < 100; ++i) {
    sgd.ZeroGrad();
    Var loss = MseLoss(x, target);
    loss.Backward();
    sgd.Step();
  }
  EXPECT_NEAR(x.value()(0, 0), 2.0, 1e-6);
}

TEST(OptimTest, TrainTinyRegressionWithMlp) {
  // y = 2 a - b, learnable by a linear MLP.
  Rng rng(6);
  Matrix x_data = Matrix::Gaussian(64, 2, &rng);
  Matrix y_data(64, 1);
  for (int i = 0; i < 64; ++i) {
    y_data(i, 0) = 2.0 * x_data(i, 0) - x_data(i, 1);
  }
  Mlp mlp({2, 1}, &rng);
  AdamOptions options;
  options.lr = 0.05;
  Adam adam(mlp.Params(), options);
  double last_loss = 1e9;
  for (int epoch = 0; epoch < 300; ++epoch) {
    adam.ZeroGrad();
    Var loss = MseLoss(mlp.Forward(Var(x_data)), y_data);
    loss.Backward();
    adam.Step();
    last_loss = loss.item();
  }
  EXPECT_LT(last_loss, 1e-3);
}

}  // namespace
}  // namespace grgad
