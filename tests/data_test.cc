// Dataset generators: determinism, statistical shape (Table I), planted
// pattern mixes (Table II), label consistency, and the synthetic-commons.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/data/registry.h"
#include "src/data/synth_common.h"
#include "src/sampling/pattern_search.h"

namespace grgad {
namespace {

DatasetOptions Quick(uint64_t seed = 42, double scale = 0.25) {
  DatasetOptions options;
  options.seed = seed;
  options.scale = scale;
  options.attr_dim = 24;
  return options;
}

void CheckDatasetInvariants(const Dataset& d) {
  ASSERT_TRUE(d.graph.Validate().ok()) << d.name;
  EXPECT_TRUE(d.graph.has_attributes()) << d.name;
  EXPECT_EQ(d.anomaly_groups.size(), d.group_patterns.size()) << d.name;
  for (const auto& group : d.anomaly_groups) {
    EXPECT_GE(group.size(), 2u) << d.name;
    EXPECT_TRUE(std::is_sorted(group.begin(), group.end())) << d.name;
    for (int v : group) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, d.graph.num_nodes());
    }
  }
  // Groups are disjoint in the financial datasets (each account belongs to
  // one ring); allow overlap only through shared anchors (citation sets).
  EXPECT_GT(d.NodeContamination(), 0.0) << d.name;
  EXPECT_LT(d.NodeContamination(), 0.35) << d.name;
}

class RegistryDatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryDatasetTest, GeneratesValidDataset) {
  auto result = MakeDataset(GetParam(), Quick());
  ASSERT_TRUE(result.ok());
  CheckDatasetInvariants(result.value());
  EXPECT_EQ(result.value().name, GetParam());
}

TEST_P(RegistryDatasetTest, DeterministicForSeed) {
  auto a = MakeDataset(GetParam(), Quick(7));
  auto b = MakeDataset(GetParam(), Quick(7));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().graph.num_nodes(), b.value().graph.num_nodes());
  EXPECT_EQ(a.value().graph.Edges(), b.value().graph.Edges());
  EXPECT_TRUE(a.value().graph.attributes().ApproxEquals(
      b.value().graph.attributes(), 1e-12));
  EXPECT_EQ(a.value().anomaly_groups, b.value().anomaly_groups);
}

TEST_P(RegistryDatasetTest, DifferentSeedsDiffer) {
  auto a = MakeDataset(GetParam(), Quick(7));
  auto b = MakeDataset(GetParam(), Quick(8));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value().graph.Edges(), b.value().graph.Edges());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, RegistryDatasetTest,
                         ::testing::ValuesIn(ListDatasets()));

TEST(RegistryTest, UnknownNameIsNotFound) {
  auto result = MakeDataset("no-such-dataset", {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(DatasetStatsTest, FullScaleMatchesPaperTable1Shape) {
  // Full-size generation (only structural counts; no training).
  DatasetOptions options;
  options.seed = 1;
  auto simml = MakeDataset("simml", options);
  ASSERT_TRUE(simml.ok());
  EXPECT_NEAR(simml.value().graph.num_nodes(), 2768, 300);
  EXPECT_NEAR(simml.value().anomaly_groups.size(), 74, 10);
  EXPECT_NEAR(simml.value().AverageGroupSize(), 3.5, 1.0);

  auto eth = MakeDataset("ethereum", options);
  ASSERT_TRUE(eth.ok());
  EXPECT_NEAR(eth.value().graph.num_nodes(), 1823, 200);
  EXPECT_NEAR(eth.value().anomaly_groups.size(), 17, 3);
  EXPECT_NEAR(eth.value().AverageGroupSize(), 7.2, 2.0);

  auto aml = MakeDataset("amlpublic", options);
  ASSERT_TRUE(aml.ok());
  EXPECT_NEAR(aml.value().graph.num_nodes(), 16720, 500);
  EXPECT_NEAR(aml.value().AverageGroupSize(), 19.0, 4.0);
}

TEST(DatasetStatsTest, AmlPublicIsPathDominated) {
  // Table II: 18 of 19 AMLPublic groups are paths.
  auto aml = MakeDataset("amlpublic", Quick(3, 0.3));
  ASSERT_TRUE(aml.ok());
  int paths = 0;
  for (TopologyPattern p : aml.value().group_patterns) {
    paths += (p == TopologyPattern::kPath);
  }
  EXPECT_GE(paths, static_cast<int>(aml.value().group_patterns.size()) - 1);
}

TEST(DatasetStatsTest, EthereumIsTreeCycleDominated) {
  auto eth = MakeDataset("ethereum", Quick(3, 1.0));
  ASSERT_TRUE(eth.ok());
  int trees = 0, cycles = 0, paths = 0;
  for (TopologyPattern p : eth.value().group_patterns) {
    trees += (p == TopologyPattern::kTree);
    cycles += (p == TopologyPattern::kCycle);
    paths += (p == TopologyPattern::kPath);
  }
  EXPECT_GT(trees + cycles, paths * 3);
}

TEST(DatasetStatsTest, PlantedPatternsClassifyCorrectly) {
  // The induced subgraph of each planted group must classify to its label
  // (the group's own edges dominate; background edges may add chords, so we
  // require a strong majority rather than exactness).
  auto eth = MakeDataset("ethereum", Quick(11, 0.5));
  ASSERT_TRUE(eth.ok());
  const Dataset& d = eth.value();
  int agree = 0;
  for (size_t i = 0; i < d.anomaly_groups.size(); ++i) {
    const Graph sub = d.graph.InducedSubgraph(d.anomaly_groups[i]);
    if (ClassifyGroupPattern(sub) == d.group_patterns[i]) ++agree;
  }
  EXPECT_GE(agree * 3, static_cast<int>(d.anomaly_groups.size()) * 2);
}

TEST(DatasetTest, NodeLabelsMatchGroups) {
  auto simml = MakeDataset("simml", Quick());
  ASSERT_TRUE(simml.ok());
  const Dataset& d = simml.value();
  const auto labels = d.NodeLabels();
  std::set<int> members;
  for (const auto& g : d.anomaly_groups) members.insert(g.begin(), g.end());
  int positives = 0;
  for (int v = 0; v < d.graph.num_nodes(); ++v) {
    positives += labels[v];
    EXPECT_EQ(labels[v] == 1, members.count(v) > 0);
  }
  EXPECT_EQ(positives, static_cast<int>(members.size()));
}

TEST(SynthCommonTest, PreferentialAttachmentConnected) {
  GraphBuilder b(200);
  Rng rng(5);
  AppendPreferentialAttachment(&b, 200, 1, &rng);
  Graph g = b.Build();
  EXPECT_GE(g.num_edges(), 180);
  // Hubs exist: max degree well above the mean.
  int max_deg = 0;
  for (int v = 0; v < 200; ++v) max_deg = std::max(max_deg, g.Degree(v));
  EXPECT_GE(max_deg, 6);
}

TEST(SynthCommonTest, ErdosRenyiEdgeCount) {
  GraphBuilder b(100);
  Rng rng(6);
  AppendErdosRenyiEdges(&b, 100, 150, &rng);
  EXPECT_NEAR(b.num_edges(), 150, 10);
}

TEST(SynthCommonTest, RandomForestIsAcyclic) {
  GraphBuilder b(120);
  Rng rng(7);
  AppendRandomForest(&b, 120, 12, &rng);
  Graph g = b.Build();
  EXPECT_EQ(g.num_edges(), 120 - 12);  // |V| - #trees for a forest.
}

TEST(SynthCommonTest, PlantPatternShapes) {
  Rng rng(8);
  {
    GraphBuilder b(10);
    PlantPattern(&b, {0, 1, 2, 3, 4}, TopologyPattern::kPath, &rng);
    Graph g = b.Build();
    EXPECT_EQ(g.num_edges(), 4);
    EXPECT_EQ(g.Degree(0), 1);
    EXPECT_EQ(g.Degree(2), 2);
  }
  {
    GraphBuilder b(10);
    PlantPattern(&b, {0, 1, 2, 3, 4, 5}, TopologyPattern::kCycle, &rng);
    Graph g = b.Build();
    EXPECT_EQ(g.num_edges(), 6);
    for (int v = 0; v < 6; ++v) EXPECT_EQ(g.Degree(v), 2);
  }
  {
    GraphBuilder b(10);
    PlantPattern(&b, {0, 1, 2, 3, 4, 5, 6}, TopologyPattern::kTree, &rng);
    Graph g = b.Build();
    EXPECT_EQ(g.num_edges(), 6);  // Tree: n-1 edges.
  }
}

TEST(SynthCommonTest, TakeUnusedNodesMarksUsage) {
  std::vector<uint8_t> used(50, 0);
  Rng rng(9);
  const auto a = TakeUnusedNodes(&used, 0, 50, 20, &rng);
  const auto b = TakeUnusedNodes(&used, 0, 50, 20, &rng);
  std::set<int> all(a.begin(), a.end());
  all.insert(b.begin(), b.end());
  EXPECT_EQ(all.size(), 40u);  // No overlap between draws.
}

TEST(SynthCommonTest, ApplyGroupOffsetIsCoherent) {
  Matrix x(6, 10);
  Rng rng(10);
  ApplyGroupOffset(&x, {1, 3, 5}, 2.0, 0.5, &rng);
  // Offset rows must be similar to each other and differ from zero rows.
  double diff_13 = 0.0, norm_1 = 0.0;
  for (int j = 0; j < 10; ++j) {
    diff_13 += std::fabs(x(1, j) - x(3, j));
    norm_1 += std::fabs(x(1, j));
  }
  EXPECT_GT(norm_1, 1.0);          // Shift applied.
  EXPECT_LT(diff_13, norm_1 * 0.5);  // Shared direction.
  for (int j = 0; j < 10; ++j) EXPECT_DOUBLE_EQ(x(0, j), 0.0);
}

TEST(SynthCommonTest, SamplePatternSizeBounds) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const int s = SamplePatternSize(6.0, 4, 10, &rng);
    ASSERT_GE(s, 4);
    ASSERT_LE(s, 10);
  }
}

TEST(SynthCommonTest, CommunityBagOfWordsHomophily) {
  Rng rng(12);
  std::vector<int> comm(60);
  for (int i = 0; i < 60; ++i) comm[i] = i % 3;
  Matrix x = CommunityBagOfWords(comm, 3, 90, 12, &rng);
  // Same-community rows share more active words than cross-community rows.
  auto overlap = [&x](int a, int b) {
    int o = 0;
    for (size_t j = 0; j < x.cols(); ++j) {
      o += (x(a, j) > 0 && x(b, j) > 0);
    }
    return o;
  };
  double same = 0, cross = 0;
  int same_n = 0, cross_n = 0;
  for (int a = 0; a < 30; ++a) {
    for (int b = a + 1; b < 30; ++b) {
      if (comm[a] == comm[b]) {
        same += overlap(a, b);
        ++same_n;
      } else {
        cross += overlap(a, b);
        ++cross_n;
      }
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n);
}

}  // namespace
}  // namespace grgad
