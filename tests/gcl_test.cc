// TPGCL components: PPA/PBA postconditions (Alg. 2), conventional
// augmentations, the MINE objective, graph batching, and end-to-end
// separation of anomalous candidate groups.
#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "src/data/example_graph.h"
#include "src/nn/optim.h"
#include "src/gcl/augmentations.h"
#include "src/gcl/mine.h"
#include "src/gcl/tpgcl.h"
#include "src/metrics/classification.h"
#include "src/metrics/completeness.h"
#include "src/sampling/pattern_search.h"
#include "src/viz/tsne.h"

namespace grgad {
namespace {

Graph AttributedRing(int n, int d = 4) {
  GraphBuilder b(n);
  for (int i = 0; i < n; ++i) b.AddEdge(i, (i + 1) % n);
  Matrix x(n, d, 1.0);
  return b.Build(std::move(x));
}

Graph AttributedPath(int n, int d = 4) {
  GraphBuilder b(n);
  for (int i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1);
  Matrix x(n, d, 1.0);
  return b.Build(std::move(x));
}

Graph AttributedStar(int leaves, int d = 4) {
  GraphBuilder b(leaves + 1);
  for (int i = 1; i <= leaves; ++i) b.AddEdge(0, i);
  Matrix x(leaves + 1, d, 1.0);
  return b.Build(std::move(x));
}

TEST(AugmentationTest, Names) {
  EXPECT_STREQ(ToString(AugmentationKind::kPba), "PBA");
  EXPECT_STREQ(ToString(AugmentationKind::kPpa), "PPA");
  EXPECT_STREQ(ToString(AugmentationKind::kNodeDrop), "ND");
  EXPECT_STREQ(ToString(AugmentationKind::kEdgeRemove), "ER");
  EXPECT_STREQ(ToString(AugmentationKind::kFeatureMask), "FM");
}

TEST(AugmentationTest, PbaBreaksCycle) {
  Graph ring = AttributedRing(6);
  const FoundPatterns patterns = SearchPatterns(ring);
  ASSERT_EQ(patterns.cycles.size(), 1u);
  Rng rng(1);
  Graph broken = Augment(ring, AugmentationKind::kPba, patterns, &rng);
  EXPECT_EQ(broken.num_nodes(), 4);  // Two ring nodes dropped.
  // No cycle remains.
  EXPECT_TRUE(SearchPatterns(broken).cycles.empty());
}

TEST(AugmentationTest, PbaDropsPathMiddle) {
  Graph path = AttributedPath(7);
  const FoundPatterns patterns = SearchPatterns(path);
  ASSERT_EQ(patterns.paths.size(), 1u);
  Rng rng(2);
  Graph broken = Augment(path, AugmentationKind::kPba, patterns, &rng);
  EXPECT_EQ(broken.num_nodes(), 6);
  // The chain is severed: no endpoint-to-endpoint path of length 6 remains.
  const FoundPatterns after = SearchPatterns(broken);
  for (const auto& p : after.paths) EXPECT_LT(p.size(), 6u);
}

TEST(AugmentationTest, PbaDropsTreeRoot) {
  Graph star = AttributedStar(5);
  const FoundPatterns patterns = SearchPatterns(star);
  ASSERT_FALSE(patterns.trees.empty());
  Rng rng(3);
  Graph broken = Augment(star, AugmentationKind::kPba, patterns, &rng);
  EXPECT_EQ(broken.num_nodes(), 5);
  EXPECT_EQ(broken.num_edges(), 0);  // Hub removal isolates all leaves.
}

TEST(AugmentationTest, PbaOnPatternlessGroupStillPerturbs) {
  // Two disconnected dyads: no tree/path(>=3)/cycle patterns.
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  Graph g = b.Build(Matrix(4, 2, 1.0));
  Rng rng(4);
  Graph out = Augment(g, AugmentationKind::kPba, SearchPatterns(g), &rng);
  EXPECT_LT(out.num_nodes(), 4);
}

TEST(AugmentationTest, PpaExtendsCyclePreservingIt) {
  Graph ring = AttributedRing(5);
  const FoundPatterns patterns = SearchPatterns(ring);
  Rng rng(5);
  Graph extended = Augment(ring, AugmentationKind::kPpa, patterns, &rng);
  EXPECT_EQ(extended.num_nodes(), 6);
  EXPECT_EQ(extended.num_edges(), 7);  // Ring + bridge node with 2 links.
  EXPECT_FALSE(SearchPatterns(extended).cycles.empty());
  // New node attribute = mean of cycle attrs = 1.0.
  EXPECT_DOUBLE_EQ(extended.attributes()(5, 0), 1.0);
}

TEST(AugmentationTest, PpaProlongsPath) {
  Graph path = AttributedPath(5);
  Rng rng(6);
  Graph extended =
      Augment(path, AugmentationKind::kPpa, SearchPatterns(path), &rng);
  EXPECT_EQ(extended.num_nodes(), 6);
  // Still a path: the new endpoint chain is longer.
  const FoundPatterns after = SearchPatterns(extended);
  ASSERT_FALSE(after.paths.empty());
  EXPECT_EQ(after.paths[0].size(), 6u);
}

TEST(AugmentationTest, PpaAddsChildToTreeRoot) {
  Graph star = AttributedStar(4);
  Rng rng(7);
  Graph extended =
      Augment(star, AugmentationKind::kPpa, SearchPatterns(star), &rng);
  EXPECT_EQ(extended.num_nodes(), 6);
  EXPECT_EQ(extended.Degree(0), 5);  // Root gained a child.
}

TEST(AugmentationTest, NodeDropRemovesAtLeastOne) {
  Graph ring = AttributedRing(8);
  Rng rng(8);
  Graph out = Augment(ring, AugmentationKind::kNodeDrop, {}, &rng);
  EXPECT_LT(out.num_nodes(), 8);
  EXPECT_GE(out.num_nodes(), 1);
}

TEST(AugmentationTest, EdgeRemoveKeepsNodes) {
  Graph ring = AttributedRing(8);
  Rng rng(9);
  Graph out = Augment(ring, AugmentationKind::kEdgeRemove, {}, &rng);
  EXPECT_EQ(out.num_nodes(), 8);
  EXPECT_LT(out.num_edges(), 8);
}

TEST(AugmentationTest, FeatureMaskZeroesSharedDims) {
  Graph ring = AttributedRing(6, 10);
  Rng rng(10);
  Graph out = Augment(ring, AugmentationKind::kFeatureMask, {}, &rng);
  EXPECT_EQ(out.num_nodes(), 6);
  EXPECT_EQ(out.num_edges(), 6);
  int zero_dims = 0;
  for (size_t j = 0; j < out.attr_dim(); ++j) {
    bool all_zero = true;
    for (int v = 0; v < out.num_nodes(); ++v) {
      all_zero &= (out.attributes()(v, j) == 0.0);
    }
    zero_dims += all_zero;
  }
  EXPECT_GE(zero_dims, 1);
  EXPECT_LT(zero_dims, 10);
}

TEST(GraphBatchTest, BlockDiagonalStructure) {
  std::vector<Graph> graphs = {AttributedRing(3), AttributedPath(4)};
  const GraphBatch batch = BuildGraphBatch(graphs);
  EXPECT_EQ(batch.op->rows(), 7u);
  EXPECT_EQ(batch.x.rows(), 7u);
  EXPECT_EQ(batch.pool->rows(), 2u);
  // No cross-block entries.
  for (size_t i = 0; i < 3; ++i) {
    for (int j : batch.op->RowCols(i)) EXPECT_LT(j, 3);
  }
  for (size_t i = 3; i < 7; ++i) {
    for (int j : batch.op->RowCols(i)) EXPECT_GE(j, 3);
  }
  // Pool rows are means: each row sums to 1.
  const auto sums = batch.pool->RowSums();
  EXPECT_NEAR(sums[0], 1.0, 1e-12);
  EXPECT_NEAR(sums[1], 1.0, 1e-12);
}

TEST(MineTest, LossIsFiniteAndTrainable) {
  Rng rng(11);
  MineEstimator phi(8, 16, &rng);
  // Matched pairs identical, mismatched pairs random: loss should be
  // drivable below its initial value by training phi alone.
  Matrix zp_data = Matrix::Gaussian(12, 8, &rng);
  Matrix zn_data = zp_data;  // Perfectly dependent.
  Var zp(zp_data), zn(zn_data);
  AdamOptions adam_options;
  adam_options.lr = 1e-2;
  Adam adam(phi.Params(), adam_options);
  double first = 0.0, last = 0.0;
  for (int i = 0; i < 120; ++i) {
    adam.ZeroGrad();
    Rng loss_rng(100 + i);
    Var loss = MineLoss(phi, zp, zn, /*neg_per_sample=*/11, &loss_rng);
    loss.Backward();
    adam.Step();
    if (i == 0) first = loss.item();
    last = loss.item();
    ASSERT_TRUE(std::isfinite(last));
  }
  EXPECT_LT(last, first);
  // The DV bound of dependent variables is positive MI: loss = -MI < 0.
  EXPECT_LT(last, 0.0);
}

TEST(MineTest, SubsampledMatchesFullOnAverage) {
  Rng rng(12);
  MineEstimator phi(4, 8, &rng);
  Matrix zp = Matrix::Gaussian(10, 4, &rng);
  Matrix zn = Matrix::Gaussian(10, 4, &rng);
  Rng r1(1);
  const double full =
      MineLoss(phi, Var(zp), Var(zn), 9, &r1).item();
  // Average many subsampled estimates.
  double acc = 0.0;
  const int reps = 40;
  for (int i = 0; i < reps; ++i) {
    Rng r2(100 + i);
    acc += MineLoss(phi, Var(zp), Var(zn), 4, &r2).item();
  }
  EXPECT_NEAR(acc / reps, full, 0.35);
}

TEST(TpgclTest, EmbedsAndSeparatesPlantedGroups) {
  const Dataset d = GenExampleGraph({});
  // Candidates: the three planted groups + background path-ish chunks.
  std::vector<std::vector<int>> candidates = d.anomaly_groups;
  Rng rng(13);
  for (int i = 0; i < 21; ++i) {
    std::vector<int> chunk;
    const int start = static_cast<int>(rng.UniformInt(uint64_t{80}));
    for (int k = 0; k < 6; ++k) chunk.push_back(start + k > 89 ? start - k
                                                               : start + k);
    std::sort(chunk.begin(), chunk.end());
    chunk.erase(std::unique(chunk.begin(), chunk.end()), chunk.end());
    candidates.push_back(chunk);
  }
  TpgclOptions options;
  options.epochs = 40;
  options.hidden_dim = 32;
  options.embed_dim = 16;
  Tpgcl tpgcl(options);
  const TpgclResult result = tpgcl.FitEmbed(d.graph, candidates);
  ASSERT_EQ(result.embeddings.rows(), candidates.size());
  EXPECT_EQ(result.embeddings.cols(), 16u);
  ASSERT_EQ(result.loss_history.size(), 40u);
  for (double loss : result.loss_history) EXPECT_TRUE(std::isfinite(loss));
  // Anomalous groups (first 3 rows) must be separable from the rest:
  // centroid separation in embedding space above random.
  std::vector<int> labels(candidates.size(), 0);
  labels[0] = labels[1] = labels[2] = 1;
  EXPECT_GT(BinarySeparationScore(result.embeddings, labels), -0.2);
}

TEST(TpgclTest, DeterministicGivenSeed) {
  const Dataset d = GenExampleGraph({});
  std::vector<std::vector<int>> candidates = d.anomaly_groups;
  candidates.push_back({0, 1, 2, 3});
  candidates.push_back({10, 11, 12, 13});
  TpgclOptions options;
  options.epochs = 5;
  const TpgclResult a = Tpgcl(options).FitEmbed(d.graph, candidates);
  const TpgclResult b = Tpgcl(options).FitEmbed(d.graph, candidates);
  EXPECT_TRUE(a.embeddings.ApproxEquals(b.embeddings, 1e-12));
  EXPECT_EQ(a.loss_history, b.loss_history);
}

TEST(TpgclTest, WorksWithConventionalAugmentations) {
  const Dataset d = GenExampleGraph({});
  std::vector<std::vector<int>> candidates = d.anomaly_groups;
  candidates.push_back({0, 1, 2, 3, 4});
  candidates.push_back({20, 21, 22, 23});
  for (auto aug : {AugmentationKind::kNodeDrop, AugmentationKind::kEdgeRemove,
                   AugmentationKind::kFeatureMask}) {
    TpgclOptions options;
    options.epochs = 5;
    options.negative_aug = aug;
    options.positive_aug = AugmentationKind::kPpa;
    const TpgclResult result =
        Tpgcl(options).FitEmbed(d.graph, candidates);
    EXPECT_EQ(result.embeddings.rows(), candidates.size())
        << ToString(aug);
  }
}

}  // namespace
}  // namespace grgad
