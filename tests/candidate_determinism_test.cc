// Determinism contract of the rebuilt candidate stage (PERF.md, "Candidate
// stage"):
//   - GroupSampler::Sample output — groups, order, and the seeded
//     subsample draw — is bitwise identical between the anchor-parallel
//     fast path and the frozen serial seed path, in every path-search
//     mode;
//   - the fast path is invariant across GRGAD_THREADS and across repeated
//     runs (pooled workspaces carry no state between calls);
//   - TPGCL's view-based candidate consumption (pattern search,
//     augmentation, batch build off SubgraphViews) trains to bitwise
//     identical embeddings and losses as the InducedSubgraph seed path;
//   - the candidate stage reports candidates/* sub-stage timings under
//     profile telemetry;
//   - steady-state sampling performs zero workspace heap allocations.
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/stages.h"
#include "src/data/example_graph.h"
#include "src/gcl/tpgcl.h"
#include "src/graph/traversal_workspace.h"
#include "src/sampling/group_sampler.h"
#include "src/util/fastpath.h"
#include "tests/kernel_test_util.h"

namespace grgad {
namespace {

using testing::BitwiseEqual;
using testing::ScopedDegree;

/// Restores the candidate fast-path switch on scope exit.
class ScopedCandidateFastPath {
 public:
  explicit ScopedCandidateFastPath(bool enabled)
      : prev_(SetCandidateFastPath(enabled)) {}
  ~ScopedCandidateFastPath() { SetCandidateFastPath(prev_); }

  ScopedCandidateFastPath(const ScopedCandidateFastPath&) = delete;
  ScopedCandidateFastPath& operator=(const ScopedCandidateFastPath&) = delete;

 private:
  bool prev_;
};

/// The paper's example graph plus a dense anchor set (planted group members
/// and a sweep) — enough anchors that every search branch fires.
struct Fixture {
  Dataset dataset;
  std::vector<int> anchors;
};

Fixture MakeFixture() {
  Fixture f;
  f.dataset = GenExampleGraph({});
  std::set<int> anchors;
  for (const auto& group : f.dataset.anomaly_groups) {
    anchors.insert(group.front());
    anchors.insert(group[group.size() / 2]);
    anchors.insert(group.back());
  }
  for (int v = 0; v < f.dataset.graph.num_nodes(); v += 5) anchors.insert(v);
  f.anchors.assign(anchors.begin(), anchors.end());
  return f;
}

GroupSamplerOptions ModeOptions(PathSearchMode mode) {
  GroupSamplerOptions options;
  options.path_mode = mode;
  return options;
}

TEST(CandidateDeterminismTest, FastPathMatchesSeedInEveryMode) {
  const Fixture f = MakeFixture();
  for (PathSearchMode mode :
       {PathSearchMode::kUnweighted, PathSearchMode::kAttributeDistance,
        PathSearchMode::kGraphSnnWeighted}) {
    GroupSampler sampler(ModeOptions(mode));
    ScopedCandidateFastPath seed_path(false);
    const auto want = sampler.Sample(f.dataset.graph, f.anchors);
    SetCandidateFastPath(true);
    const auto got = sampler.Sample(f.dataset.graph, f.anchors);
    ASSERT_FALSE(want.empty());
    EXPECT_EQ(got, want) << "mode=" << static_cast<int>(mode);
  }
}

TEST(CandidateDeterminismTest, FastPathInvariantAcrossThreadsAndRuns) {
  const Fixture f = MakeFixture();
  ScopedCandidateFastPath fast_path(true);
  GroupSampler sampler(ModeOptions(PathSearchMode::kAttributeDistance));
  std::vector<std::vector<int>> reference;
  {
    ScopedDegree degree(1);
    reference = sampler.Sample(f.dataset.graph, f.anchors);
  }
  ASSERT_FALSE(reference.empty());
  for (int degree : {2, 4}) {
    ScopedDegree scoped(degree);
    EXPECT_EQ(sampler.Sample(f.dataset.graph, f.anchors), reference)
        << "degree=" << degree;
    // Repeated run with warm pooled workspaces.
    EXPECT_EQ(sampler.Sample(f.dataset.graph, f.anchors), reference);
  }
}

TEST(CandidateDeterminismTest, SubsampleDrawIsPreserved) {
  const Fixture f = MakeFixture();
  GroupSamplerOptions options;  // Default attribute-distance mode.
  options.max_groups = 7;      // Forces the seeded subsample.
  GroupSampler sampler(options);
  ScopedCandidateFastPath seed_path(false);
  const auto want = sampler.Sample(f.dataset.graph, f.anchors);
  ASSERT_EQ(want.size(), 7u);
  SetCandidateFastPath(true);
  for (int degree : {1, 4}) {
    ScopedDegree scoped(degree);
    EXPECT_EQ(sampler.Sample(f.dataset.graph, f.anchors), want);
  }
}

TEST(CandidateDeterminismTest, TelemetryDoesNotChangeOutput) {
  const Fixture f = MakeFixture();
  ScopedCandidateFastPath fast_path(true);
  GroupSampler sampler{GroupSamplerOptions{}};
  const auto want = sampler.Sample(f.dataset.graph, f.anchors);
  SampleTelemetry telemetry;
  EXPECT_EQ(sampler.Sample(f.dataset.graph, f.anchors, &telemetry), want);
  EXPECT_GE(telemetry.search_seconds, 0.0);
  EXPECT_GE(telemetry.components_seconds, 0.0);
  EXPECT_GE(telemetry.select_seconds, 0.0);
}

TEST(CandidateDeterminismTest, CandidateStageProfileSubStages) {
  const Fixture f = MakeFixture();
  TpGrGadOptions options;
  RunContext ctx;
  ctx.profile = true;
  auto result = RunCandidateStage(f.dataset.graph, f.anchors, options, &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().groups.empty());
  std::vector<std::string> stages;
  for (const StageTiming& t : ctx.stage_timings()) stages.push_back(t.stage);
  EXPECT_EQ(stages,
            (std::vector<std::string>{"candidates/search",
                                      "candidates/components",
                                      "candidates/select", "sampling"}));
  // Without profile: only the top-level stage timing.
  RunContext plain;
  auto plain_result =
      RunCandidateStage(f.dataset.graph, f.anchors, options, &plain);
  ASSERT_TRUE(plain_result.ok());
  EXPECT_EQ(plain_result.value().groups, result.value().groups);
  ASSERT_EQ(plain.stage_timings().size(), 1u);
  EXPECT_EQ(plain.stage_timings()[0].stage, "sampling");
}

TEST(CandidateDeterminismTest, SteadyStateSamplingIsWorkspaceAllocFree) {
  const Fixture f = MakeFixture();
  ScopedCandidateFastPath fast_path(true);
  ScopedDegree degree(4);
  GroupSampler sampler{GroupSamplerOptions{}};
  // Two warm-up calls grow every pooled workspace to this graph.
  sampler.Sample(f.dataset.graph, f.anchors);
  sampler.Sample(f.dataset.graph, f.anchors);
  const uint64_t before = TraversalWorkspace::TotalHeapAllocs();
  sampler.Sample(f.dataset.graph, f.anchors);
  EXPECT_EQ(TraversalWorkspace::TotalHeapAllocs(), before);
}

TEST(CandidateDeterminismTest, TrimWorkspacesRewarmsCleanly) {
  const Fixture f = MakeFixture();
  ScopedCandidateFastPath fast_path(true);
  GroupSampler sampler{GroupSamplerOptions{}};
  const auto want = sampler.Sample(f.dataset.graph, f.anchors);
  GroupSampler::TrimWorkspaces();
  EXPECT_EQ(sampler.Sample(f.dataset.graph, f.anchors), want);
}

TEST(CandidateDeterminismTest, TpgclViewPathMatchesInducedPath) {
  const Fixture f = MakeFixture();
  // A realistic candidate set: the planted groups plus sliding windows.
  std::vector<std::vector<int>> groups = f.dataset.anomaly_groups;
  for (int i = 0; i + 8 < f.dataset.graph.num_nodes() && groups.size() < 24;
       i += 9) {
    groups.push_back({i, i + 1, i + 2, i + 3, i + 4, i + 5, i + 6, i + 7});
  }
  TpgclOptions options;
  options.epochs = 4;
  options.seed = 11;
  Tpgcl tpgcl(options);
  ScopedCandidateFastPath seed_path(false);
  const TpgclResult want = tpgcl.FitEmbed(f.dataset.graph, groups);
  SetCandidateFastPath(true);
  const TpgclResult got = tpgcl.FitEmbed(f.dataset.graph, groups);
  EXPECT_EQ(got.loss_history, want.loss_history);
  EXPECT_TRUE(BitwiseEqual(got.embeddings, want.embeddings));
}

TEST(CandidateDeterminismTest, BatchFromGroupsMatchesInducedBatch) {
  const Fixture f = MakeFixture();
  std::vector<std::vector<int>> groups = f.dataset.anomaly_groups;
  std::vector<Graph> induced;
  induced.reserve(groups.size());
  for (const auto& group : groups) {
    induced.push_back(f.dataset.graph.InducedSubgraph(group));
  }
  const GraphBatch want = BuildGraphBatch(induced);
  const GraphBatch got = BuildGraphBatchFromGroups(f.dataset.graph, groups);
  EXPECT_TRUE(BitwiseEqual(got.x, want.x));
  ASSERT_EQ(got.op->nnz(), want.op->nnz());
  ASSERT_EQ(got.op->rows(), want.op->rows());
  for (size_t i = 0; i < want.op->rows(); ++i) {
    auto want_cols = want.op->RowCols(i);
    auto got_cols = got.op->RowCols(i);
    ASSERT_EQ(std::vector<int>(got_cols.begin(), got_cols.end()),
              std::vector<int>(want_cols.begin(), want_cols.end()));
    auto want_vals = want.op->RowValues(i);
    auto got_vals = got.op->RowValues(i);
    for (size_t p = 0; p < want_vals.size(); ++p) {
      ASSERT_EQ(got_vals[p], want_vals[p]) << "row " << i;
    }
  }
  ASSERT_EQ(got.pool->nnz(), want.pool->nnz());
}

}  // namespace
}  // namespace grgad
