// The serving daemon's contracts (ISSUE acceptance gates):
//   1. bitwise determinism — a batch of mixed requests produces responses
//      byte-identical to running the same requests one-by-one through the
//      stage entry points, at GRGAD_THREADS 1 and 4 and under two admission
//      orders,
//   2. failure isolation — deadline expiry and injected faults become
//      per-request error responses; the daemon keeps serving,
//   3. steady-state zero-alloc — serve.prewarm_workspaces pre-grows the
//      traversal pools so the first request allocates no workspace memory,
//   4. graceful drain — a shutdown request stops admissions but every
//      already-admitted request still answers, in order.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/artifacts.h"
#include "src/core/method_registry.h"
#include "src/core/stages.h"
#include "src/data/example_graph.h"
#include "src/graph/traversal_workspace.h"
#include "src/serve/batcher.h"
#include "src/serve/request.h"
#include "src/serve/server.h"
#include "src/tensor/matrix.h"
#include "src/util/fault.h"
#include "src/util/status.h"
#include "src/util/transport.h"
#include "tests/kernel_test_util.h"

namespace grgad {
namespace {

TpGrGadOptions QuickOptions(uint64_t seed = 42) {
  TpGrGadOptions options;
  options.seed = seed;
  options.mh_gae.base.epochs = 10;
  options.mh_gae.base.hidden_dim = 16;
  options.mh_gae.base.embed_dim = 8;
  options.mh_gae.anchor_fraction = 0.15;
  options.tpgcl.epochs = 8;
  options.tpgcl.hidden_dim = 16;
  options.tpgcl.embed_dim = 8;
  options.ReseedStages();
  return options;
}

const Dataset& TestDataset() {
  static const Dataset* dataset = new Dataset(GenExampleGraph());
  return *dataset;
}

/// Artifacts trained once with QuickOptions — the daemon's resident state
/// and the rescore/what-if reference input.
const PipelineArtifacts& TrainedArtifacts() {
  static const PipelineArtifacts* artifacts = [] {
    auto result = RunPipeline(TestDataset().graph, QuickOptions());
    if (!result.ok()) {
      ADD_FAILURE() << "seed training failed: " << result.status().ToString();
      return new PipelineArtifacts();
    }
    return new PipelineArtifacts(std::move(result).value());
  }();
  return *artifacts;
}

std::unique_ptr<ServeDaemon> MakeDaemon(TpGrGadOptions base,
                                        size_t max_queue = 64) {
  ServeOptions options;
  options.pipeline = std::move(base);
  options.max_queue = max_queue;
  return std::make_unique<ServeDaemon>(TestDataset().graph, TrainedArtifacts(),
                                       std::move(options));
}

struct SessionResult {
  Status transport = Status::Ok();
  std::vector<std::string> responses;
};

/// One full daemon session over a pipe pair: writes every line, closes the
/// request stream, collects every response until the daemon hangs up.
SessionResult RunSession(ServeDaemon* daemon,
                         const std::vector<std::string>& lines) {
  int c2s[2] = {-1, -1};
  int s2c[2] = {-1, -1};
  EXPECT_EQ(::pipe(c2s), 0);
  EXPECT_EQ(::pipe(s2c), 0);

  SessionResult result;
  CancelToken stop;
  std::thread server([daemon, &result, &stop, in = c2s[0], out = s2c[1]] {
    // The channel owns its fds; its destruction closes the response stream
    // and unblocks the client reader below.
    LineChannel channel(in, out, /*own_fds=*/true);
    result.transport = daemon->Serve(&channel, stop);
  });

  {
    LineChannel writer(c2s[1], c2s[1], /*own_fds=*/true);
    for (const std::string& line : lines) {
      EXPECT_TRUE(writer.WriteLine(line).ok());
    }
  }  // Closes the request stream: the daemon sees EOF once it catches up.

  LineChannel reader(s2c[0], s2c[0], /*own_fds=*/true);
  std::string line;
  bool eof = false;
  for (;;) {
    const Status status = reader.ReadLine(&line, &eof);
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (!status.ok() || eof) break;
    result.responses.push_back(line);
  }
  server.join();
  return result;
}

int64_t ResponseId(const std::string& response) {
  auto parsed = ParseJsonText(response);
  if (!parsed.ok()) return -1;
  const JsonValue* id = parsed.value().Find("id");
  return id != nullptr && id->kind == JsonValue::Kind::kNumber
             ? static_cast<int64_t>(id->number)
             : -1;
}

bool ResponseOk(const std::string& response) {
  auto parsed = ParseJsonText(response);
  if (!parsed.ok()) return false;
  const JsonValue* status = parsed.value().Find("status");
  return status != nullptr && status->string == "ok";
}

// ---- acceptance gate: batched == sequential, bitwise ------------------------

TEST(ServeTest, BatchedMatchesSequentialBitwise) {
  const Graph& graph = TestDataset().graph;
  const PipelineArtifacts& artifacts = TrainedArtifacts();
  const TpGrGadOptions base = QuickOptions();

  // Sequential references: the same renderers over direct stage-function
  // results, with no daemon, queue, or arena involved.
  std::map<int64_t, std::string> expected;
  {
    TpGrGadOptions options = base;
    ASSERT_TRUE(ApplyTpGrGadOverrides(&options, {"tpgcl.epochs=6"}).ok());
    auto result = RunPipeline(graph, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected[1] = RenderAnchorScoreResponse(1, result.value(), 4);
  }
  {
    auto result =
        RescoreArtifacts(artifacts, DetectorKind::kEnsemble, artifacts.seed);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected[2] = RenderScoredGroupsResponse(
        2, ServeOp::kRescore, result.value().scored_groups, 3);
  }
  {
    auto result = RescoreArtifacts(artifacts, DetectorKind::kKnn, 7);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected[3] = RenderScoredGroupsResponse(
        3, ServeOp::kRescore, result.value().scored_groups, 3);
  }
  {
    std::vector<std::vector<int>> groups;
    std::vector<size_t> rows;
    for (size_t i = 0; i < artifacts.candidate_groups.size(); ++i) {
      if (artifacts.candidate_groups[i].size() < 3) continue;
      rows.push_back(i);
      groups.push_back(artifacts.candidate_groups[i]);
    }
    ASSERT_FALSE(groups.empty());
    Matrix subset(groups.size(), artifacts.group_embeddings.cols());
    for (size_t r = 0; r < rows.size(); ++r) {
      for (size_t c = 0; c < subset.cols(); ++c) {
        subset(r, c) = artifacts.group_embeddings(rows[r], c);
      }
    }
    TpGrGadOptions options;
    options.detector = base.detector;
    options.seed = artifacts.seed;
    auto result = RunScoringStage(subset, groups, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected[4] = RenderScoredGroupsResponse(
        4, ServeOp::kWhatIf, result.value().scored_groups, 2);
  }

  const std::vector<std::string> lines = {
      R"({"id": 1, "op": "anchor-score", "set": ["tpgcl.epochs=6"], "top": 4})",
      R"({"id": 2, "op": "rescore", "detector": "ensemble", "top": 3})",
      R"({"id": 3, "op": "rescore", "detector": "knn", "seed": 7, "top": 3})",
      R"({"id": 4, "op": "what-if", "min_size": 3, "top": 2})",
  };

  for (const int degree : {1, 4}) {
    testing::ScopedDegree scoped(degree);
    for (const bool reversed : {false, true}) {
      std::vector<std::string> order = lines;
      if (reversed) std::reverse(order.begin(), order.end());
      auto daemon = MakeDaemon(base);
      const SessionResult session = RunSession(daemon.get(), order);
      EXPECT_TRUE(session.transport.ok()) << session.transport.ToString();
      ASSERT_EQ(session.responses.size(), lines.size());
      for (const std::string& response : session.responses) {
        const int64_t id = ResponseId(response);
        ASSERT_TRUE(expected.count(id)) << response;
        EXPECT_EQ(response, expected[id])
            << "degree " << degree << ", reversed " << reversed;
      }
    }
  }
}

// ---- failure isolation ------------------------------------------------------

TEST(ServeTest, DeadlineExpiryIsAPerRequestError) {
  auto daemon = MakeDaemon(QuickOptions());
  const SessionResult session = RunSession(
      daemon.get(),
      {R"({"id": 1, "op": "anchor-score", "timeout": 0.0001})",
       R"({"id": 2, "op": "rescore", "detector": "ensemble", "top": 2})"});
  EXPECT_TRUE(session.transport.ok());
  ASSERT_EQ(session.responses.size(), 2u);
  EXPECT_NE(session.responses[0].find("\"status\": \"DeadlineExceeded\""),
            std::string::npos)
      << session.responses[0];
  // The daemon outlives the expiry and still answers the next request.
  EXPECT_TRUE(ResponseOk(session.responses[1])) << session.responses[1];
}

TEST(ServeTest, InjectedFaultIsIsolatedToTheRequest) {
  auto daemon = MakeDaemon(QuickOptions());
  ASSERT_TRUE(FaultInjector::Global().Configure("serve/execute=1.0").ok());
  const SessionResult faulted = RunSession(
      daemon.get(),
      {R"({"id": 1, "op": "rescore", "detector": "ensemble"})",
       R"({"id": 2, "op": "what-if", "min_size": 3})"});
  FaultInjector::Global().Disable();
  EXPECT_TRUE(faulted.transport.ok());
  ASSERT_EQ(faulted.responses.size(), 2u);
  for (const std::string& response : faulted.responses) {
    EXPECT_NE(response.find("\"status\": \"Internal\""), std::string::npos)
        << response;
  }
  // With the injector off, the same daemon serves cleanly.
  const SessionResult clean = RunSession(
      daemon.get(), {R"({"id": 3, "op": "rescore", "detector": "ensemble"})"});
  ASSERT_EQ(clean.responses.size(), 1u);
  EXPECT_TRUE(ResponseOk(clean.responses[0])) << clean.responses[0];
}

TEST(ServeTest, SeededFaultSweepNeverKillsTheDaemon) {
  const std::vector<std::string> lines = {
      R"({"id": 1, "op": "rescore", "detector": "ensemble"})",
      R"({"id": 2, "op": "rescore", "detector": "knn"})",
      R"({"id": 3, "op": "what-if", "min_size": 3})",
      R"({"id": 4, "op": "stats"})",
  };
  for (uint64_t seed = 0; seed < 10; ++seed) {
    ASSERT_TRUE(FaultInjector::Global()
                    .Configure("seed=" + std::to_string(seed) + ",rate=0.05")
                    .ok());
    auto daemon = MakeDaemon(QuickOptions());
    const SessionResult session = RunSession(daemon.get(), lines);
    FaultInjector::Global().Disable();
    EXPECT_TRUE(session.transport.ok()) << "seed " << seed;
    // Every admitted-or-rejected request answers — ok or a typed error.
    EXPECT_EQ(session.responses.size(), lines.size()) << "seed " << seed;
  }
}

// ---- steady-state zero-alloc (serve.prewarm_workspaces) ---------------------

TEST(ServeTest, PrewarmedWorkspacesServeFirstRequestAllocFree) {
  testing::ScopedDegree scoped(4);
  TpGrGadOptions base = QuickOptions();
  ASSERT_TRUE(
      ApplyTpGrGadOverrides(&base, {"serve.prewarm_workspaces=4"}).ok());
  ASSERT_EQ(base.serve_prewarm_workspaces, 4);
  auto daemon = MakeDaemon(base);
  daemon->Prewarm();

  ServeRequest request;
  request.id = 1;
  request.op = ServeOp::kAnchorScore;
  const uint64_t allocs_before = TraversalWorkspace::TotalHeapAllocs();
  Status status;
  (void)daemon->Execute(request, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(TraversalWorkspace::TotalHeapAllocs(), allocs_before)
      << "candidate stage grew a traversal workspace after Prewarm()";

  // A second identical request must recycle the arena-held training
  // buffers (reuse counts, not byte-zero: the arena trades allocations,
  // never changes values).
  request.id = 2;
  (void)daemon->Execute(request, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto metrics = ParseJsonText(daemon->MetricsJson());
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  const JsonValue* arena = metrics.value().Find("arena");
  ASSERT_NE(arena, nullptr);
  const JsonValue* reused = arena->Find("reused");
  ASSERT_NE(reused, nullptr);
  EXPECT_GT(reused->number, 0.0);
}

// ---- graceful drain ---------------------------------------------------------

TEST(ServeTest, ShutdownStopsAdmissionsButDrainsTheBacklog) {
  auto daemon = MakeDaemon(QuickOptions());
  const SessionResult session = RunSession(
      daemon.get(),
      {R"({"id": 1, "op": "rescore", "detector": "ensemble", "top": 2})",
       R"({"id": 2, "op": "shutdown"})",
       R"({"id": 3, "op": "stats"})"});
  EXPECT_TRUE(session.transport.ok());
  // The post-shutdown line is never read; everything admitted before it
  // still answers, in admission order.
  ASSERT_EQ(session.responses.size(), 2u);
  EXPECT_EQ(ResponseId(session.responses[0]), 1);
  EXPECT_TRUE(ResponseOk(session.responses[0]));
  EXPECT_NE(session.responses[1].find("\"draining\": true"),
            std::string::npos);
  EXPECT_TRUE(daemon->shutdown_requested());
}

// ---- queue + parsing + retry classification units ---------------------------

TEST(ServeTest, RequestQueueBoundsAdmissionAndDrainsInOrder) {
  RequestQueue queue(2);
  ServeRequest request;
  request.op = ServeOp::kStats;
  request.id = 1;
  EXPECT_TRUE(queue.Admit(request));
  request.id = 2;
  EXPECT_TRUE(queue.Admit(request));
  request.id = 3;
  EXPECT_FALSE(queue.Admit(request));  // Full: capacity 2.
  EXPECT_EQ(queue.depth(), 2u);

  std::vector<PendingRequest> batch;
  ASSERT_TRUE(queue.DrainBatch(&batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request.id, 1);
  EXPECT_EQ(batch[1].request.id, 2);
  EXPECT_LT(batch[0].admit_seq, batch[1].admit_seq);

  queue.Close();
  EXPECT_FALSE(queue.Admit(request));  // Closed.
  batch.clear();
  EXPECT_FALSE(queue.DrainBatch(&batch));  // Closed and drained.
}

TEST(ServeTest, ParseServeRequestValidates) {
  auto ok = ParseServeRequest(
      R"({"id": 7, "op": "what-if", "contains": 17, "min_size": 3})");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().id, 7);
  EXPECT_EQ(ok.value().op, ServeOp::kWhatIf);
  EXPECT_EQ(ok.value().contains_node, 17);
  EXPECT_EQ(ok.value().min_size, 3);

  EXPECT_FALSE(ParseServeRequest("not json").ok());
  EXPECT_FALSE(ParseServeRequest(R"({"op": "stats"})").ok());  // No id.
  EXPECT_FALSE(ParseServeRequest(R"({"id": 1, "op": "bogus"})").ok());
  EXPECT_FALSE(  // Unknown key.
      ParseServeRequest(R"({"id": 1, "op": "stats", "bogus": 1})").ok());
  EXPECT_FALSE(  // rescore requires a detector.
      ParseServeRequest(R"({"id": 1, "op": "rescore"})").ok());
}

TEST(ServeTest, ParseServeRequestMutationOps) {
  auto add = ParseServeRequest(
      R"({"id": 3, "op": "add-edge", "u": 4, "v": 19})");
  ASSERT_TRUE(add.ok()) << add.status().ToString();
  EXPECT_EQ(add.value().op, ServeOp::kAddEdge);
  EXPECT_EQ(add.value().u, 4);
  EXPECT_EQ(add.value().v, 19);

  auto remove = ParseServeRequest(
      R"({"id": 4, "op": "remove-edge", "u": 19, "v": 4})");
  ASSERT_TRUE(remove.ok()) << remove.status().ToString();
  EXPECT_EQ(remove.value().op, ServeOp::kRemoveEdge);

  EXPECT_TRUE(ParseServeRequest(R"({"id": 5, "op": "refresh"})").ok());
  EXPECT_TRUE(ParseServeRequest(R"({"id": 6, "op": "compact"})").ok());

  // Both endpoints are required for the edge ops.
  EXPECT_FALSE(ParseServeRequest(R"({"id": 7, "op": "add-edge"})").ok());
  EXPECT_FALSE(
      ParseServeRequest(R"({"id": 8, "op": "add-edge", "u": 2})").ok());
  EXPECT_FALSE(
      ParseServeRequest(R"({"id": 9, "op": "remove-edge", "v": 2})").ok());
}

TEST(ServeTest, MutationSessionRefreshesAndReportsMetrics) {
  // QuickOptions uses the default weighted path mode, so mutations take the
  // MarkAll fallback — every refresh is full, still exact.
  auto daemon = MakeDaemon(QuickOptions());
  const int n = TestDataset().graph.num_nodes();
  int u = -1, v = -1;  // Some absent edge.
  for (int a = 0; a < n && u < 0; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (!TestDataset().graph.HasEdge(a, b)) {
        u = a;
        v = b;
        break;
      }
    }
  }
  ASSERT_GE(u, 0);

  const SessionResult session = RunSession(
      daemon.get(),
      {"{\"id\": 1, \"op\": \"add-edge\", \"u\": " + std::to_string(u) +
           ", \"v\": " + std::to_string(v) + "}",
       // Duplicate add: a structural no-op, answered applied=false.
       "{\"id\": 2, \"op\": \"add-edge\", \"u\": " + std::to_string(u) +
           ", \"v\": " + std::to_string(v) + "}",
       R"({"id": 3, "op": "refresh", "top": 3})",
       "{\"id\": 4, \"op\": \"remove-edge\", \"u\": " + std::to_string(u) +
           ", \"v\": " + std::to_string(v) + "}",
       R"({"id": 5, "op": "compact"})",
       R"({"id": 6, "op": "stats"})"});
  ASSERT_TRUE(session.transport.ok()) << session.transport.ToString();
  ASSERT_EQ(session.responses.size(), 6u);
  for (const std::string& response : session.responses) {
    EXPECT_TRUE(ResponseOk(response)) << response;
  }
  EXPECT_NE(session.responses[0].find("\"applied\": true"), std::string::npos)
      << session.responses[0];
  EXPECT_NE(session.responses[1].find("\"applied\": false"),
            std::string::npos)
      << session.responses[1];
  EXPECT_NE(session.responses[2].find("\"refreshed_anchors\""),
            std::string::npos)
      << session.responses[2];
  EXPECT_NE(session.responses[4].find("\"pending_log\": 0"),
            std::string::npos)
      << session.responses[4];
  // The metrics snapshot carries the v3 mutation + durability counters.
  EXPECT_NE(session.responses[5].find("\"grgad-serve-metrics-v3\""),
            std::string::npos);
  EXPECT_NE(session.responses[5].find("\"durability\""), std::string::npos);
  EXPECT_NE(session.responses[5].find("\"mutations\""), std::string::npos);
  EXPECT_NE(session.responses[5].find("\"refreshes\": 1"), std::string::npos)
      << session.responses[5];

  // The mutations landed in the daemon's live graph.
  EXPECT_EQ(daemon->dynamic_graph().num_edges(),
            TestDataset().graph.num_edges());
  EXPECT_EQ(daemon->dynamic_graph().stats().compactions, 1u);
}

TEST(ServeTest, ArtifactLoadRetryableClassifiesTheCommitWindow) {
  EXPECT_TRUE(ArtifactLoadRetryable(Status::IoError("transient open")));
  // The save path's two-rename commit can leave the directory briefly
  // absent; NotFound is the retryable signature of that window.
  EXPECT_TRUE(ArtifactLoadRetryable(Status::NotFound("no manifest")));
  EXPECT_FALSE(ArtifactLoadRetryable(Status::InvalidArgument("bad path")));
  EXPECT_FALSE(ArtifactLoadRetryable(Status::DataLoss("checksum mismatch")));
}

}  // namespace
}  // namespace grgad
