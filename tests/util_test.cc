// Tests for Status/Result, Rng distributions, CSV, ParallelFor, and the
// persistent thread pool behind it.
#include <atomic>
#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/atomic_io.h"
#include "src/util/csv.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"
#include "tests/kernel_test_util.h"

namespace grgad {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad shape");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad shape");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad shape");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kIoError,
        StatusCode::kNotConverged}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok_result(42);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 42);
  EXPECT_TRUE(ok_result.status().ok());

  Result<int> err_result(Status::NotFound("missing"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err_result.value_or(-1), -1);
}

TEST(ResultTest, ReturnIfErrorMacro) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    GRGAD_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicStream) {
  Rng a(123), b(123), c(124);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    if (va != c.NextU64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, UniformIntIsUnbiasedOverSmallRange) {
  Rng rng(8);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.UniformInt(uint64_t{5})];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(10);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 3.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(12);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) sum += rng.Poisson(2.5);
  EXPECT_NEAR(sum / 10000, 2.5, 0.1);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, PowerLawBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const int k = rng.PowerLaw(2, 50, 2.5);
    ASSERT_GE(k, 2);
    ASSERT_LE(k, 50);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(14);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t v : uniq) EXPECT_LT(v, 100u);
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 5).size(), 5u);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(15);
  std::vector<double> w = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[1]), 3.0, 0.3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(16);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(CsvTest, EscapingRules) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, FormatDoubleEdgeCases) {
  EXPECT_EQ(FormatDouble(std::nan("")), "nan");
  EXPECT_EQ(FormatDouble(HUGE_VAL), "inf");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
}

TEST(CsvTest, BuildsTable) {
  CsvWriter w({"name", "value"});
  w.AppendRow({"alpha", "1"});
  w.AppendNumericRow({2.5, 3.25});
  EXPECT_EQ(w.num_rows(), 2u);
  EXPECT_EQ(w.ToString(), "name,value\nalpha,1\n2.5,3.25\n");
}

TEST(CsvTest, WriteFileRoundTrip) {
  CsvWriter w({"x"});
  w.AppendRow({"1"});
  const std::string path = ::testing::TempDir() + "/grgad_csv_test.csv";
  ASSERT_TRUE(w.WriteFile(path).ok());
  EXPECT_FALSE(w.WriteFile("/nonexistent-dir/zzz.csv").ok());
}

TEST(ParallelTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, EmptyAndTinyRanges) {
  int calls = 0;
  ParallelFor(0, 8, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> total{0};
  ParallelFor(3, 100, [&](size_t begin, size_t end) {
    total += static_cast<int>(end - begin);
  });
  EXPECT_EQ(total.load(), 3);
}

using ::grgad::testing::ScopedDegree;

TEST(ParallelTest, MinGrainZeroIsClamped) {
  // Regression: the seed computed n / min_grain and died on min_grain == 0.
  ScopedDegree degree(4);
  std::vector<std::atomic<int>> hits(10);
  ParallelFor(10, 0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, OversubscribedPoolCoversTinyRange) {
  // More pool lanes than iterations: every index still runs exactly once.
  ScopedDegree degree(8);
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, NestedCallsRunInlineWithoutDeadlock) {
  ScopedDegree degree(4);
  std::atomic<int> total{0};
  ParallelFor(8, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      EXPECT_TRUE(ThreadPool::InParallelRegion());
      ParallelFor(10, 1, [&](size_t inner_begin, size_t inner_end) {
        total += static_cast<int>(inner_end - inner_begin);
      });
    }
  });
  EXPECT_EQ(total.load(), 80);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ParallelTest, PoolIsReusedAcrossManySmallCalls) {
  // The pool must survive thousands of dispatches (the seed spawned and
  // joined threads per call; the pool parks and re-wakes the same workers).
  ScopedDegree degree(4);
  for (int call = 0; call < 2000; ++call) {
    std::atomic<int> total{0};
    ParallelFor(64, 4, [&](size_t begin, size_t end) {
      total += static_cast<int>(end - begin);
    });
    ASSERT_EQ(total.load(), 64);
  }
}

TEST(ParallelTest, ConcurrentCallersFallBackSafely) {
  // Two user threads dispatching at once: one takes the pool, the other runs
  // inline. Both must cover their ranges exactly.
  ScopedDegree degree(4);
  std::atomic<int> totals[2] = {{0}, {0}};
  std::vector<std::thread> callers;
  for (int c = 0; c < 2; ++c) {
    callers.emplace_back([&, c] {
      for (int call = 0; call < 200; ++call) {
        ParallelFor(128, 1, [&](size_t begin, size_t end) {
          totals[c] += static_cast<int>(end - begin);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(totals[0].load(), 200 * 128);
  EXPECT_EQ(totals[1].load(), 200 * 128);
}

TEST(ParallelTest, DegreeOverrideAppliesAndRestores) {
  {
    ScopedDegree degree(3);
    EXPECT_EQ(ParallelismDegree(), 3);
  }
  EXPECT_GE(ParallelismDegree(), 1);
}

TEST(ParallelTest, PartitionIsDeterministicPerDegree) {
  // The chunk ranges must be a pure function of (n, min_grain, degree).
  ScopedDegree degree(4);
  auto partition = [](size_t n, size_t grain) {
    std::vector<std::pair<size_t, size_t>> chunks(64);
    std::atomic<size_t> used{0};
    ParallelFor(n, grain, [&](size_t begin, size_t end) {
      chunks[used.fetch_add(1)] = {begin, end};
    });
    chunks.resize(used.load());
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  for (int run = 0; run < 5; ++run) {
    EXPECT_EQ(partition(1000, 16), partition(1000, 16));
  }
}

TEST(TokenScannerTest, TokensKeywordsAndNumbers) {
  const std::string text = "header 42\n  -7 3.25\ttail";
  TokenScanner in(text);
  EXPECT_TRUE(in.Keyword("header"));
  long long i = 0;
  EXPECT_TRUE(in.I64(&i));
  EXPECT_EQ(i, 42);
  EXPECT_FALSE(in.AtEnd());
  EXPECT_TRUE(in.I64(&i));
  EXPECT_EQ(i, -7);
  double d = 0.0;
  EXPECT_TRUE(in.F64(&d));
  EXPECT_EQ(d, 3.25);
  std::string_view token;
  EXPECT_TRUE(in.Token(&token));
  EXPECT_EQ(token, "tail");
  EXPECT_TRUE(in.AtEnd());
  EXPECT_FALSE(in.Token(&token));
}

TEST(TokenScannerTest, RejectsPartialAndMalformedNumbers) {
  // from_chars-style strictness: a numeric token must parse COMPLETELY, so
  // "123abc" is damage, not the number 123 — the right posture for
  // checksummed machine-written state.
  long long i = 0;
  double d = 0.0;
  EXPECT_FALSE(TokenScanner(std::string_view("123abc")).I64(&i));
  EXPECT_FALSE(TokenScanner(std::string_view("1.5x")).F64(&d));
  EXPECT_FALSE(TokenScanner(std::string_view("")).I64(&i));
  EXPECT_TRUE(TokenScanner(std::string_view(" \n\t ")).AtEnd());
}

TEST(TokenScannerTest, DoubleBitsRoundTripIsExact) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.0,
                          3.141592653589793,
                          -2.2250738585072014e-308,  // Smallest normal.
                          4.9406564584124654e-324,   // Smallest subnormal.
                          1.7976931348623157e308,    // Largest finite.
                          0.1};
  for (double v : cases) {
    const std::string wire = FormatDoubleBits(v);
    ASSERT_EQ(wire.size(), 16u) << v;
    double back = 0.0;
    TokenScanner in(wire);
    ASSERT_TRUE(in.F64Bits(&back)) << wire;
    uint64_t vbits = 0, bbits = 0;
    std::memcpy(&vbits, &v, sizeof vbits);
    std::memcpy(&bbits, &back, sizeof bbits);
    EXPECT_EQ(vbits, bbits) << wire;  // Bitwise, so -0.0 and NaN-safe.
  }
}

TEST(TokenScannerTest, DoubleBitsRejectsWrongWidthAndNonHex) {
  double d = 0.0;
  EXPECT_FALSE(TokenScanner(std::string_view("3ff")).F64Bits(&d));
  EXPECT_FALSE(
      TokenScanner(std::string_view("3fg0000000000000")).F64Bits(&d));
  EXPECT_FALSE(
      TokenScanner(std::string_view("3ff00000000000001")).F64Bits(&d));
  EXPECT_TRUE(TokenScanner(std::string_view("3FF0000000000000")).F64Bits(&d));
  EXPECT_EQ(d, 1.0);  // Upper-case hex decodes too.
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(i);
  ASSERT_GT(sink, 0.0);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace grgad
