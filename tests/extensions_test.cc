// Extension features and hardening: ensemble detector, weighted path
// search, cycle-enumeration step budgets, rank-invariance properties, and
// precondition death tests.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/metrics/classification.h"
#include "src/nn/autograd.h"
#include "src/od/ecod.h"
#include "src/od/ensemble.h"
#include "src/sampling/group_sampler.h"
#include "src/util/rng.h"

namespace grgad {
namespace {

TEST(RankNormalizeTest, MapsToUnitInterval) {
  const auto r = RankNormalize({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(r[1], 0.0);
  EXPECT_DOUBLE_EQ(r[2], 0.5);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
}

TEST(RankNormalizeTest, TiesShareMeanRank) {
  const auto r = RankNormalize({1.0, 1.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(r[0], r[1]);
  EXPECT_DOUBLE_EQ(r[2], r[3]);
  EXPECT_LT(r[0], r[2]);
  // Degenerate inputs.
  EXPECT_TRUE(RankNormalize({}).empty());
  EXPECT_EQ(RankNormalize({5.0}), (std::vector<double>{0.0}));
}

TEST(EnsembleTest, DetectsPlantedOutliers) {
  Rng rng(3);
  Matrix x(120, 4);
  std::vector<int> labels(120, 0);
  for (int i = 0; i < 110; ++i) {
    for (int j = 0; j < 4; ++j) x(i, j) = rng.Normal(0.0, 1.0);
  }
  for (int i = 110; i < 120; ++i) {
    labels[i] = 1;
    for (int j = 0; j < 4; ++j) {
      x(i, j) = (rng.Bernoulli(0.5) ? 1 : -1) * rng.Uniform(7.0, 12.0);
    }
  }
  auto ensemble = EnsembleDetector::MakeDefault(5);
  EXPECT_EQ(ensemble->size(), 3u);
  EXPECT_EQ(ensemble->Name(), "ensemble");
  const auto scores = ensemble->FitScore(x);
  EXPECT_GT(RocAuc(labels, scores), 0.95);
  // Scores are averaged ranks -> within [0, 1].
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(EnsembleTest, FactoryAndParse) {
  DetectorKind kind;
  ASSERT_TRUE(ParseDetectorKind("ensemble", &kind));
  EXPECT_EQ(kind, DetectorKind::kEnsemble);
  auto detector = MakeOutlierDetector(kind, 11);
  ASSERT_NE(detector, nullptr);
  Matrix x(10, 2);
  for (int i = 0; i < 10; ++i) x(i, 0) = i;
  EXPECT_EQ(detector->FitScore(x).size(), 10u);
}

TEST(CycleBudgetTest, TruncatesDeterministically) {
  // Dense-ish graph where full enumeration would be large.
  Rng rng(4);
  GraphBuilder b(40);
  for (int e = 0; e < 200; ++e) {
    const int u = static_cast<int>(rng.UniformInt(uint64_t{40}));
    const int v = static_cast<int>(rng.UniformInt(uint64_t{40}));
    if (u != v) b.AddEdge(u, v);
  }
  Graph g = b.Build();
  const auto few = CyclesThrough(g, 0, 10, 1000, /*max_steps=*/200);
  const auto few2 = CyclesThrough(g, 0, 10, 1000, /*max_steps=*/200);
  EXPECT_EQ(few, few2);  // Deterministic truncation.
  const auto more = CyclesThrough(g, 0, 10, 1000, /*max_steps=*/20000);
  EXPECT_GE(more.size(), few.size());
}

TEST(WeightedPathTest, PrefersStructurallyTightRoute) {
  // Two routes from 0 to 3: through a triangle-reinforced pair (1a) or a
  // bare chain (2a, 2b). GraphSNN weights make the reinforced edges cheap.
  GraphBuilder b(8);
  // Tight route: 0-1-3 where 0-1, 1-3 each close triangles.
  b.AddEdge(0, 1);
  b.AddEdge(1, 3);
  b.AddEdge(0, 4);
  b.AddEdge(4, 1);  // Triangle 0-1-4.
  b.AddEdge(1, 5);
  b.AddEdge(5, 3);  // Triangle 1-3-5.
  // Loose route of equal hop count via 6: 0-6, 6-3.
  b.AddEdge(0, 6);
  b.AddEdge(6, 3);
  Graph g = b.Build();
  GroupSamplerOptions options;
  options.path_mode = PathSearchMode::kGraphSnnWeighted;
  options.min_group_size = 3;
  options.include_anchor_components = false;
  GroupSampler sampler(options);
  const auto groups = sampler.Sample(g, {0, 3});
  // The weighted path 0-1-3 must be among candidates.
  const std::vector<int> tight = {0, 1, 3};
  EXPECT_NE(std::find(groups.begin(), groups.end(), tight), groups.end());
}

TEST(WeightedPathTest, ModesAgreeOnUniformChain) {
  GraphBuilder b(6);
  for (int i = 0; i + 1 < 6; ++i) b.AddEdge(i, i + 1);
  Matrix x(6, 2, 1.0);
  Graph g = b.Build(std::move(x));
  std::vector<std::vector<std::vector<int>>> results;
  for (PathSearchMode mode :
       {PathSearchMode::kUnweighted, PathSearchMode::kAttributeDistance,
        PathSearchMode::kGraphSnnWeighted}) {
    GroupSamplerOptions options;
    options.path_mode = mode;
    results.push_back(GroupSampler(options).Sample(g, {0, 5}));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

// Property: ECOD scores are invariant under positive affine per-column
// transforms — tail probabilities are rank-based and the skewness sign
// (which picks the "auto" tail) is affine-invariant. (A general monotone
// transform can flip the skewness sign, so only affine invariance holds.)
class EcodInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(EcodInvarianceTest, AffineTransformInvariance) {
  Rng rng(100 + GetParam());
  Matrix x = Matrix::Gaussian(50, 3, &rng);
  Matrix y = x.Map([](double v) { return 2.5 * v - 7.0; });
  Ecod ecod;
  const auto sx = ecod.FitScore(x);
  const auto sy = ecod.FitScore(y);
  for (size_t i = 0; i < sx.size(); ++i) {
    EXPECT_NEAR(sx[i], sy[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcodInvarianceTest, ::testing::Range(0, 5));

// Property: ROC-AUC is invariant under strictly increasing transforms of
// the scores.
TEST(AucInvarianceTest, MonotoneTransform) {
  Rng rng(9);
  std::vector<int> labels(40);
  std::vector<double> scores(40);
  for (int i = 0; i < 40; ++i) {
    labels[i] = rng.Bernoulli(0.3);
    scores[i] = rng.Normal(labels[i], 1.0);
  }
  std::vector<double> transformed(40);
  for (int i = 0; i < 40; ++i) {
    transformed[i] = std::atan(scores[i]) * 10.0 + 100.0;
  }
  EXPECT_NEAR(RocAuc(labels, scores), RocAuc(labels, transformed), 1e-12);
}

using PreconditionDeathTest = ::testing::Test;

TEST(PreconditionDeathTest, MatrixShapeMismatchAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Matrix a(2, 2), b(3, 2);
  EXPECT_DEATH(a += b, "CHECK failed");
  EXPECT_DEATH(MatMul(a, Matrix(3, 1)), "CHECK failed");
}

TEST(PreconditionDeathTest, GraphBuilderRejectsOutOfRange) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  GraphBuilder b(3);
  EXPECT_DEATH(b.AddEdge(0, 3), "CHECK failed");
  EXPECT_DEATH(b.AddEdge(-1, 0), "CHECK failed");
}

TEST(PreconditionDeathTest, BackwardRequiresScalar) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Var v(Matrix(2, 2, 1.0), true);
  EXPECT_DEATH(v.Backward(), "CHECK failed");
}

TEST(PreconditionDeathTest, UndefinedVarAccessAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Var v;
  EXPECT_DEATH(v.value(), "CHECK failed");
}

}  // namespace
}  // namespace grgad
