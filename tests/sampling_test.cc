// Candidate-group sampling (Alg. 1) and in-group pattern search (Alg. 2
// line 4): coverage of planted structures, size caps, and classification.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/data/example_graph.h"
#include "src/sampling/group_sampler.h"
#include "src/sampling/pattern_search.h"

namespace grgad {
namespace {

Graph Ring(int n) {
  GraphBuilder b(n);
  for (int i = 0; i < n; ++i) b.AddEdge(i, (i + 1) % n);
  return b.Build();
}

Graph PathGraph(int n) {
  GraphBuilder b(n);
  for (int i = 0; i + 1 < n; ++i) b.AddEdge(i, i + 1);
  return b.Build();
}

Graph Star(int leaves) {
  GraphBuilder b(leaves + 1);
  for (int i = 1; i <= leaves; ++i) b.AddEdge(0, i);
  return b.Build();
}

TEST(GroupSamplerTest, FindsPathBetweenAnchors) {
  Graph g = PathGraph(8);
  GroupSampler sampler;
  const auto groups = sampler.Sample(g, {0, 7});
  // The whole path must be among the candidates.
  std::vector<int> full(8);
  for (int i = 0; i < 8; ++i) full[i] = i;
  EXPECT_NE(std::find(groups.begin(), groups.end(), full), groups.end());
}

TEST(GroupSamplerTest, FindsCycleThroughAnchor) {
  Graph g = Ring(6);
  GroupSampler sampler;
  const auto groups = sampler.Sample(g, {0});
  std::vector<int> ring(6);
  for (int i = 0; i < 6; ++i) ring[i] = i;
  EXPECT_NE(std::find(groups.begin(), groups.end(), ring), groups.end());
}

TEST(GroupSamplerTest, TreeSearchUnionsAnchorPaths) {
  // Star with anchors on three leaves: the tree candidate is the union of
  // hub-mediated paths between them.
  Graph g = Star(10);
  GroupSamplerOptions options;
  options.path_mode = PathSearchMode::kUnweighted;
  GroupSampler sampler(options);
  const auto groups = sampler.Sample(g, {1, 3, 5});
  const std::vector<int> star_core = {0, 1, 3, 5};
  EXPECT_NE(std::find(groups.begin(), groups.end(), star_core), groups.end());
}

TEST(GroupSamplerTest, RespectsSizeCaps) {
  Graph g = PathGraph(60);
  GroupSamplerOptions options;
  options.max_group_size = 10;
  options.min_group_size = 3;
  GroupSampler sampler(options);
  const auto groups = sampler.Sample(g, {0, 5, 59});
  for (const auto& group : groups) {
    EXPECT_GE(group.size(), 3u);
    EXPECT_LE(group.size(), 10u);
  }
}

TEST(GroupSamplerTest, MaxGroupsBudget) {
  const Dataset d = GenExampleGraph({});
  std::vector<int> anchors;
  for (int v = 0; v < d.graph.num_nodes(); v += 4) anchors.push_back(v);
  GroupSamplerOptions options;
  options.max_groups = 7;
  GroupSampler sampler(options);
  EXPECT_LE(sampler.Sample(d.graph, anchors).size(), 7u);
}

TEST(GroupSamplerTest, NoDuplicateCandidates) {
  const Dataset d = GenExampleGraph({});
  std::vector<int> anchors = {0, 5, 10, 95, 100};
  GroupSampler sampler;
  const auto groups = sampler.Sample(d.graph, anchors);
  std::set<std::vector<int>> uniq(groups.begin(), groups.end());
  EXPECT_EQ(uniq.size(), groups.size());
}

TEST(GroupSamplerTest, EmptyAnchorsGiveNoGroups) {
  Graph g = Ring(5);
  GroupSampler sampler;
  EXPECT_TRUE(sampler.Sample(g, {}).empty());
}

TEST(GroupSamplerTest, CoversPlantedGroupsFromInternalAnchors) {
  // When anchors include two members of each planted group, a candidate
  // close to the planted group must appear (high node recall).
  const Dataset d = GenExampleGraph({});
  std::vector<int> anchors;
  for (const auto& group : d.anomaly_groups) {
    anchors.push_back(group.front());
    anchors.push_back(group.back());
    anchors.push_back(group[group.size() / 2]);
  }
  std::sort(anchors.begin(), anchors.end());
  anchors.erase(std::unique(anchors.begin(), anchors.end()), anchors.end());
  GroupSampler sampler;
  const auto candidates = sampler.Sample(d.graph, anchors);
  ASSERT_FALSE(candidates.empty());
  for (const auto& gt : d.anomaly_groups) {
    double best_recall = 0.0;
    for (const auto& cand : candidates) {
      int overlap = 0;
      for (int v : cand) {
        overlap += std::binary_search(gt.begin(), gt.end(), v);
      }
      best_recall = std::max(
          best_recall, static_cast<double>(overlap) / gt.size());
    }
    EXPECT_GE(best_recall, 0.6);
  }
}

TEST(PatternSearchTest, FindsRing) {
  const FoundPatterns p = SearchPatterns(Ring(5));
  ASSERT_EQ(p.cycles.size(), 1u);
  EXPECT_EQ(p.cycles[0].size(), 5u);
  EXPECT_TRUE(p.trees.empty());
}

TEST(PatternSearchTest, FindsPathEndpoints) {
  const FoundPatterns p = SearchPatterns(PathGraph(6));
  ASSERT_EQ(p.paths.size(), 1u);
  EXPECT_EQ(p.paths[0].size(), 6u);
  EXPECT_EQ(p.paths[0].front(), 0);
  EXPECT_EQ(p.paths[0].back(), 5);
  EXPECT_TRUE(p.cycles.empty());
}

TEST(PatternSearchTest, FindsStarAsTree) {
  const FoundPatterns p = SearchPatterns(Star(4));
  ASSERT_FALSE(p.trees.empty());
  EXPECT_EQ(p.trees[0][0], 0);  // Root first.
  EXPECT_EQ(p.trees[0].size(), 5u);
}

TEST(PatternSearchTest, EmptyAndTinyGraphs) {
  EXPECT_TRUE(SearchPatterns(GraphBuilder(1).Build()).empty());
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  const FoundPatterns p = SearchPatterns(b.Build());
  EXPECT_TRUE(p.cycles.empty());
  EXPECT_TRUE(p.trees.empty());
}

TEST(ClassifyTest, Path) {
  EXPECT_EQ(ClassifyGroupPattern(PathGraph(7)), TopologyPattern::kPath);
}

TEST(ClassifyTest, Tree) {
  EXPECT_EQ(ClassifyGroupPattern(Star(5)), TopologyPattern::kTree);
  // A deeper tree.
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(1, 4);
  b.AddEdge(2, 5);
  EXPECT_EQ(ClassifyGroupPattern(b.Build()), TopologyPattern::kTree);
}

TEST(ClassifyTest, Cycle) {
  EXPECT_EQ(ClassifyGroupPattern(Ring(6)), TopologyPattern::kCycle);
  // Cycle with a small tail still cycle-dominated.
  GraphBuilder b(6);
  for (int i = 0; i < 4; ++i) b.AddEdge(i, (i + 1) % 4);
  b.AddEdge(3, 4);
  EXPECT_EQ(ClassifyGroupPattern(b.Build()), TopologyPattern::kCycle);
}

TEST(ClassifyTest, MixedWhenCycleMinor) {
  // Small triangle with a long tail: cycle covers < half the nodes.
  GraphBuilder b(9);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  for (int i = 2; i + 1 < 9; ++i) b.AddEdge(i, i + 1);
  EXPECT_EQ(ClassifyGroupPattern(b.Build()), TopologyPattern::kMixed);
}

TEST(ClassifyTest, SingleNodeIsMixed) {
  EXPECT_EQ(ClassifyGroupPattern(GraphBuilder(1).Build()),
            TopologyPattern::kMixed);
}

}  // namespace
}  // namespace grgad
