// Classification metrics (F1/AUC/thresholding) and the paper's Completeness
// Ratio (Eqn. 24-25), including its boundary behaviour.
#include <gtest/gtest.h>

#include "src/metrics/classification.h"
#include "src/metrics/completeness.h"

namespace grgad {
namespace {

TEST(ClassificationTest, ConfusionCounts) {
  const ConfusionCounts c =
      Confusion({1, 1, 0, 0, 1}, {1, 0, 0, 1, 1});
  EXPECT_EQ(c.tp, 2);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.tn, 1);
  EXPECT_DOUBLE_EQ(Precision(c), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Recall(c), 2.0 / 3.0);
}

TEST(ClassificationTest, F1PerfectAndZero) {
  EXPECT_DOUBLE_EQ(F1Score({1, 0, 1}, {1, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(F1Score({1, 1, 1}, {0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(F1Score({0, 0}, {0, 0}), 0.0);  // Degenerate: no positives.
}

TEST(ClassificationTest, RocAucPerfectRanking) {
  EXPECT_DOUBLE_EQ(RocAuc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
  EXPECT_DOUBLE_EQ(RocAuc({1, 1, 0, 0}, {0.1, 0.2, 0.8, 0.9}), 0.0);
}

TEST(ClassificationTest, RocAucTiesGiveHalfCredit) {
  EXPECT_DOUBLE_EQ(RocAuc({0, 1}, {0.5, 0.5}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0, 1, 0, 1}, {0.3, 0.3, 0.3, 0.3}), 0.5);
}

TEST(ClassificationTest, RocAucSingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({1, 1}, {0.1, 0.9}), 0.5);
  EXPECT_DOUBLE_EQ(RocAuc({0, 0}, {0.1, 0.9}), 0.5);
}

TEST(ClassificationTest, RocAucKnownMixedCase) {
  // Positives ranked 1st and 3rd of 4: AUC = (2*2 - 1) / (2*2)? Compute by
  // hand: pairs (pos, neg): (0.9 vs 0.7)=1, (0.9 vs 0.2)=1, (0.5 vs 0.7)=0,
  // (0.5 vs 0.2)=1 -> 3/4.
  EXPECT_DOUBLE_EQ(RocAuc({1, 0, 1, 0}, {0.9, 0.7, 0.5, 0.2}), 0.75);
}

TEST(ClassificationTest, LabelsAtContamination) {
  const auto labels = LabelsAtContamination({0.1, 0.9, 0.5, 0.7}, 0.5);
  EXPECT_EQ(labels, (std::vector<int>{0, 1, 0, 1}));
  EXPECT_EQ(LabelsAtContamination({0.3, 0.4}, 0.0),
            (std::vector<int>{0, 0}));
  EXPECT_EQ(LabelsAtContamination({0.3, 0.4}, 1.0),
            (std::vector<int>{1, 1}));
  EXPECT_TRUE(LabelsAtContamination({}, 0.5).empty());
}

TEST(ClassificationTest, F1AtTrueContaminationPerfect) {
  EXPECT_DOUBLE_EQ(
      F1AtTrueContamination({0, 1, 0, 1}, {0.1, 0.9, 0.2, 0.8}), 1.0);
  EXPECT_DOUBLE_EQ(F1AtTrueContamination({}, {}), 0.0);
}

TEST(ClassificationTest, MeanAndStdError) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdError({5.0}), 0.0);
  // Samples 1,3: var = 2, stderr = sqrt(2/2) = 1.
  EXPECT_DOUBLE_EQ(StdError({1.0, 3.0}), 1.0);
}

TEST(CompletenessTest, SortedIntersectionSize) {
  EXPECT_EQ(SortedIntersectionSize({1, 2, 3}, {2, 3, 4}), 2);
  EXPECT_EQ(SortedIntersectionSize({}, {1}), 0);
  EXPECT_EQ(SortedIntersectionSize({1, 5, 9}, {2, 6, 10}), 0);
}

TEST(CompletenessTest, ExactMatchScoresOne) {
  EXPECT_DOUBLE_EQ(CompletenessScore({1, 2, 3}, {{1, 2, 3}}), 1.0);
}

TEST(CompletenessTest, PartialOverlapAveragesRecallPrecision) {
  // gt {1,2,3,4}, pred {3,4,5,6}: overlap 2 -> 0.5*(2/4 + 2/4) = 0.5.
  EXPECT_DOUBLE_EQ(CompletenessScore({1, 2, 3, 4}, {{3, 4, 5, 6}}), 0.5);
}

TEST(CompletenessTest, TakesBestPrediction) {
  EXPECT_DOUBLE_EQ(
      CompletenessScore({1, 2, 3}, {{9, 10}, {1, 2, 3}, {1}}), 1.0);
  // Superset prediction penalized by precision: 0.5*(3/3 + 3/6) = 0.75.
  EXPECT_DOUBLE_EQ(CompletenessScore({1, 2, 3}, {{1, 2, 3, 4, 5, 6}}), 0.75);
}

TEST(CompletenessTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(CompletenessScore({1}, {}), 0.0);
  EXPECT_DOUBLE_EQ(CompletenessScore({}, {{1}}), 0.0);
  EXPECT_DOUBLE_EQ(CompletenessRatio({}, {{1}}), 0.0);
}

TEST(CompletenessTest, RatioAveragesGroups) {
  // One exact match, one total miss -> 0.5.
  EXPECT_DOUBLE_EQ(
      CompletenessRatio({{1, 2}, {8, 9}}, {{1, 2}, {100, 101}}), 0.5);
}

TEST(CompletenessTest, CrIsOneIffExactCover) {
  const std::vector<std::vector<int>> gt = {{1, 2, 3}, {7, 8}};
  EXPECT_DOUBLE_EQ(CompletenessRatio(gt, gt), 1.0);
  EXPECT_LT(CompletenessRatio(gt, {{1, 2, 3}, {7, 8, 9}}), 1.0);
  EXPECT_LT(CompletenessRatio(gt, {{1, 2}, {7, 8}}), 1.0);
}

TEST(CompletenessTest, GroupJaccard) {
  EXPECT_DOUBLE_EQ(GroupJaccard({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(GroupJaccard({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(GroupJaccard({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(GroupJaccard({}, {}), 0.0);
}

TEST(CompletenessTest, MatchGroupsThresholds) {
  const std::vector<std::vector<int>> gt = {{1, 2, 3, 4}};
  const std::vector<std::vector<int>> pred = {{1, 2, 3, 4},
                                              {1, 2},
                                              {50, 51}};
  const auto match = MatchGroups(gt, pred, 0.5);
  EXPECT_EQ(match[0], 0);
  EXPECT_EQ(match[1], 0);  // Jaccard 0.5 meets the threshold.
  EXPECT_EQ(match[2], -1);
  const auto strict = MatchGroups(gt, pred, 0.9);
  EXPECT_EQ(strict[1], -1);
}

TEST(CompletenessTest, MatchGroupsPicksBestOverlap) {
  const std::vector<std::vector<int>> gt = {{1, 2, 3}, {3, 4, 5, 6}};
  const std::vector<std::vector<int>> pred = {{3, 4, 5}};
  const auto match = MatchGroups(gt, pred, 0.1);
  EXPECT_EQ(match[0], 1);  // Jaccard 3/4 with gt[1] beats 1/5 with gt[0].
}

// Property: CR is monotone in prediction quality — adding the exact group
// to any prediction set can only increase CR.
class CrMonotonePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CrMonotonePropertyTest, AddingExactGroupNeverHurts) {
  const int offset = GetParam();
  std::vector<std::vector<int>> gt = {
      {offset, offset + 1, offset + 2},
      {offset + 10, offset + 11}};
  std::vector<std::vector<int>> pred = {{offset, offset + 5}};
  const double before = CompletenessRatio(gt, pred);
  pred.push_back(gt[0]);
  const double after = CompletenessRatio(gt, pred);
  EXPECT_GE(after, before);
  EXPECT_GE(after, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Offsets, CrMonotonePropertyTest,
                         ::testing::Values(0, 5, 100, 1000));

}  // namespace
}  // namespace grgad
