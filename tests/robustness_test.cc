// Fault-tolerance contracts: deadlines, stop reasons, retry backoff, arena
// budgets, ensemble degradation, deterministic fault injection, and the
// crash-safety of SaveArtifacts/LoadArtifacts (atomic replace + corruption
// detection). Companion to tests/fault_stress_test.cc, which sweeps many
// fault seeds; here each failure mode is pinned down individually.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/artifacts.h"
#include "src/core/pipeline.h"
#include "src/core/run_context.h"
#include "src/core/stages.h"
#include "src/data/example_graph.h"
#include "src/od/ecod.h"
#include "src/od/ensemble.h"
#include "src/od/iforest.h"
#include "src/od/lof.h"
#include "src/tensor/arena.h"
#include "src/tensor/matrix.h"
#include "src/util/cancel.h"
#include "src/util/fault.h"
#include "src/util/retry.h"
#include "src/util/status.h"

namespace grgad {
namespace {

namespace fs = std::filesystem;

TpGrGadOptions QuickOptions(uint64_t seed = 42) {
  TpGrGadOptions options;
  options.seed = seed;
  options.mh_gae.base.epochs = 15;
  options.mh_gae.base.hidden_dim = 32;
  options.mh_gae.base.embed_dim = 16;
  options.mh_gae.anchor_fraction = 0.15;
  options.tpgcl.epochs = 10;
  options.tpgcl.hidden_dim = 32;
  options.tpgcl.embed_dim = 16;
  options.ReseedStages();
  return options;
}

fs::path TempDir(const std::string& name) {
  const fs::path dir =
      fs::temp_directory_path() / ("grgad_robustness_test_" + name);
  fs::remove_all(dir);
  return dir;
}

PipelineArtifacts SmallArtifacts(double salt = 0.0) {
  PipelineArtifacts a;
  a.seed = 7;
  a.anchors = {1, 4, 9};
  a.candidate_groups = {{0, 1, 2}, {3, 4}, {7, 8, 9}};
  a.group_embeddings = Matrix(3, 2);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      a.group_embeddings(i, j) = 0.25 * static_cast<double>(i * 2 + j) + salt;
    }
  }
  a.group_scores = {0.5 + salt, 1.5 + salt, -0.25 + salt};
  a.scored_groups = {{{7, 8, 9}, 1.5 + salt}, {{0, 1, 2}, 0.5 + salt}};
  a.gae_node_errors = {0.1, 0.2, 0.3 + salt};
  a.tpgcl_loss_history = {2.0, 1.0, 0.5 - salt};
  return a;
}

void ExpectArtifactsEqual(const PipelineArtifacts& a,
                          const PipelineArtifacts& b) {
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.anchors, b.anchors);
  EXPECT_EQ(a.candidate_groups, b.candidate_groups);
  ASSERT_EQ(a.group_embeddings.rows(), b.group_embeddings.rows());
  ASSERT_EQ(a.group_embeddings.cols(), b.group_embeddings.cols());
  for (size_t i = 0; i < a.group_embeddings.rows(); ++i) {
    for (size_t j = 0; j < a.group_embeddings.cols(); ++j) {
      EXPECT_EQ(a.group_embeddings(i, j), b.group_embeddings(i, j));
    }
  }
  EXPECT_EQ(a.group_scores, b.group_scores);
  ASSERT_EQ(a.scored_groups.size(), b.scored_groups.size());
  for (size_t i = 0; i < a.scored_groups.size(); ++i) {
    EXPECT_EQ(a.scored_groups[i].nodes, b.scored_groups[i].nodes);
    EXPECT_EQ(a.scored_groups[i].score, b.scored_groups[i].score);
  }
  EXPECT_EQ(a.gae_node_errors, b.gae_node_errors);
  EXPECT_EQ(a.tpgcl_loss_history, b.tpgcl_loss_history);
}

/// Every test that arms the global injector inherits this so a failing
/// assertion cannot leak faults into later tests.
class FaultFixture : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disable(); }
};

// ---- status codes -----------------------------------------------------------

TEST(StatusRobustnessTest, NewCodesHaveNamesAndFactories) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DataLoss");
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
}

// ---- cancel token: deadlines and stop reasons -------------------------------

TEST(CancelTokenTest, DeadlineExpiryReportsDeadlineExceeded) {
  CancelToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.stop_reason(), StopReason::kNone);
  token.SetDeadlineAfter(3600.0);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.stop_requested());
  token.SetDeadlineAfter(-1.0);  // Already in the past: trips immediately.
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.stop_reason(), StopReason::kDeadlineExceeded);
}

TEST(CancelTokenTest, ClearDeadlineDisarms) {
  CancelToken token;
  token.SetDeadlineAfter(-1.0);
  EXPECT_TRUE(token.stop_requested());
  token.ClearDeadline();
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.stop_reason(), StopReason::kNone);
}

TEST(CancelTokenTest, FirstExplicitReasonWins) {
  CancelToken token;
  token.RequestStop(StopReason::kResourceExhausted);
  token.RequestCancel();  // Later explicit reason must not overwrite.
  token.SetDeadlineAfter(-1.0);
  EXPECT_EQ(token.stop_reason(), StopReason::kResourceExhausted);

  CancelToken cancelled;
  cancelled.SetDeadlineAfter(-1.0);  // Deadline passed, but then...
  cancelled.RequestCancel();         // ...an explicit cancel arrives.
  EXPECT_EQ(cancelled.stop_reason(), StopReason::kCancelled);
}

TEST(CancelTokenTest, CopiesAliasOneState) {
  CancelToken a;
  CancelToken b = a;
  b.RequestCancel();
  EXPECT_TRUE(a.stop_requested());
  EXPECT_TRUE(a.cancelled());  // Legacy alias covers every stop reason.
}

TEST(PipelineDeadlineTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  const Dataset d = GenExampleGraph({});
  RunContext ctx;
  ctx.SetDeadlineAfter(0.0);  // Trips at the first poll.
  const auto result = TpGrGad(QuickOptions()).TryRun(d.graph, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(ctx.stop_reason(), StopReason::kDeadlineExceeded);
}

// ---- retry ------------------------------------------------------------------

TEST(RetryTest, BackoffSequenceIsDeterministicAndCapped) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.1;
  policy.max_backoff_seconds = 0.35;
  policy.backoff_multiplier = 2.0;
  policy.jitter_fraction = 0.25;
  Rng rng_a(policy.jitter_seed);
  Rng rng_b(policy.jitter_seed);
  for (int attempt = 0; attempt < 6; ++attempt) {
    const double a = BackoffSeconds(policy, attempt, &rng_a);
    const double b = BackoffSeconds(policy, attempt, &rng_b);
    EXPECT_EQ(a, b) << "jitter stream must be seed-deterministic";
    const double base = std::min(0.1 * std::pow(2.0, attempt), 0.35);
    EXPECT_GE(a, base * 0.75);
    EXPECT_LE(a, base * 1.25);
  }
}

TEST(RetryTest, RetriesIoErrorUntilSuccess) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  Retryer retryer(policy);
  std::vector<double> sleeps;
  retryer.set_sleeper([&](double s) { sleeps.push_back(s); });
  int calls = 0;
  const Status s = retryer.Run([&] {
    ++calls;
    return calls < 3 ? Status::IoError("flaky") : Status::Ok();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(retryer.attempts(), 3);
}

TEST(RetryTest, NonRetryableErrorSurfacesImmediately) {
  Retryer retryer(RetryPolicy{});
  retryer.set_sleeper([](double) { FAIL() << "must not sleep"; });
  int calls = 0;
  const Status s = retryer.Run([&] {
    ++calls;
    return Status::DataLoss("corrupt");
  });
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, ExhaustionReturnsLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  Retryer retryer(policy);
  retryer.set_sleeper([](double) {});
  int calls = 0;
  const Status s = retryer.Run([&] {
    ++calls;
    return Status::IoError("attempt " + std::to_string(calls));
  });
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("attempt 3"), std::string::npos);
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, RunResultRetriesAndReturnsValue) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  Retryer retryer(policy);
  retryer.set_sleeper([](double) {});
  int calls = 0;
  const Result<int> r = retryer.RunResult<int>([&]() -> Result<int> {
    ++calls;
    if (calls < 2) return Status::IoError("flaky");
    return 41 + 1;
  });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(calls, 2);
}

// ---- arena byte budget ------------------------------------------------------

TEST(ArenaBudgetTest, BreachFiresResourceExhaustedOnToken) {
  MatrixArena arena;
  CancelToken token;
  arena.SetByteBudget(64);
  arena.SetStopToken(token);
  Matrix small = arena.Acquire(2, 2);  // 32 bytes: within budget.
  EXPECT_FALSE(token.stop_requested());
  EXPECT_FALSE(arena.budget_exhausted());
  Matrix big = arena.Acquire(16, 16);  // 2048 bytes: breach.
  EXPECT_EQ(big.rows(), 16u) << "breaching alloc still succeeds";
  EXPECT_TRUE(arena.budget_exhausted());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.stop_reason(), StopReason::kResourceExhausted);
}

TEST(PipelineBudgetTest, TinyArenaBudgetUnwindsAsResourceExhausted) {
  const Dataset d = GenExampleGraph({});
  TpGrGadOptions options = QuickOptions();
  options.mh_gae.base.arena_byte_budget = 1;  // Breached on the first alloc.
  RunContext ctx;
  const auto result = TpGrGad(options).TryRun(d.graph, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.stop_reason(), StopReason::kResourceExhausted);
}

// ---- ensemble degradation ---------------------------------------------------

Matrix EnsembleInput(size_t rows = 48, size_t cols = 4) {
  Matrix x(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      x(i, j) = std::sin(static_cast<double>(i * cols + j) * 0.7);
    }
  }
  x(0, 0) = 25.0;  // One blatant outlier keeps the detectors non-degenerate.
  return x;
}

TEST_F(FaultFixture, EnsembleAllMembersFailingIsAStageError) {
  ASSERT_TRUE(
      FaultInjector::Global().Configure("seed=3,od/ensemble-member=1").ok());
  const Matrix x = EnsembleInput();
  TpGrGadOptions options;
  options.detector = DetectorKind::kEnsemble;
  std::vector<std::vector<int>> groups(x.rows(), std::vector<int>{0});
  const auto result = RunScoringStage(x, groups, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("ensemble"), std::string::npos);
}

TEST_F(FaultFixture, EnsembleDropsFailedMemberAndAveragesSurvivors) {
  const Matrix x = EnsembleInput();

  // Find a fault seed where exactly one member of the three fails.
  int failed_index = -1;
  std::vector<double> degraded;
  for (uint64_t seed = 0; seed < 200 && failed_index < 0; ++seed) {
    ASSERT_TRUE(FaultInjector::Global()
                    .Configure("seed=" + std::to_string(seed) +
                               ",od/ensemble-member=0.5")
                    .ok());
    auto ensemble = EnsembleDetector::MakeDefault(7);
    degraded = ensemble->FitScore(x);
    if (ensemble->survivors() != 2) continue;
    const auto& statuses = ensemble->member_statuses();
    ASSERT_EQ(statuses.size(), 3u);
    for (int i = 0; i < 3; ++i) {
      if (!statuses[i].status.ok()) failed_index = i;
    }
  }
  FaultInjector::Global().Disable();
  ASSERT_GE(failed_index, 0) << "no seed produced exactly one failed member";

  // The degraded scores must equal a fault-free ensemble built from only
  // the two surviving members (same member order and seeds as MakeDefault).
  std::vector<std::unique_ptr<OutlierDetector>> survivors;
  if (failed_index != 0) survivors.push_back(std::make_unique<Ecod>());
  if (failed_index != 1) survivors.push_back(std::make_unique<Lof>());
  if (failed_index != 2) {
    IsolationForestOptions iforest;
    iforest.seed = 7;
    survivors.push_back(std::make_unique<IsolationForest>(iforest));
  }
  EnsembleDetector manual(std::move(survivors));
  const std::vector<double> expected = manual.FitScore(x);
  ASSERT_EQ(degraded.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(degraded[i], expected[i]) << "row " << i;
  }
}

TEST_F(FaultFixture, EnsembleNoFaultRunMatchesPlainRunBitwise) {
  const Matrix x = EnsembleInput();
  auto plain = EnsembleDetector::MakeDefault(7);
  const std::vector<double> baseline = plain->FitScore(x);

  // Injector armed but with the ensemble point at rate 0: the degradation
  // plumbing must not perturb the no-fault result.
  ASSERT_TRUE(
      FaultInjector::Global().Configure("seed=1,artifact/write=1").ok());
  auto guarded = EnsembleDetector::MakeDefault(7);
  const std::vector<double> scores = guarded->FitScore(x);
  EXPECT_EQ(guarded->survivors(), 3u);
  ASSERT_EQ(scores.size(), baseline.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_EQ(scores[i], baseline[i]);
  }
}

// ---- fault injector ---------------------------------------------------------

TEST_F(FaultFixture, SameSeedSameDecisionSequence) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("seed=9,rate=0.5").ok());
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(injector.Fires("stage/anchors"));
  ASSERT_TRUE(injector.Configure("seed=9,rate=0.5").ok());
  std::vector<bool> second;
  for (int i = 0; i < 64; ++i) {
    second.push_back(injector.Fires("stage/anchors"));
  }
  EXPECT_EQ(first, second);
  // Not a degenerate all-or-nothing stream.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(FaultFixture, PerPointRatesAreIndependent) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("seed=5,artifact/write=1").ok());
  EXPECT_TRUE(injector.Fires("artifact/write"));
  EXPECT_FALSE(injector.Fires("artifact/read"));
  const Status s = injector.Check("artifact/write", StatusCode::kIoError);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("artifact/write"), std::string::npos);
}

TEST_F(FaultFixture, SpecValidation) {
  auto& injector = FaultInjector::Global();
  EXPECT_FALSE(injector.Configure("bogus/point=0.5").ok());
  EXPECT_FALSE(injector.Configure("rate=1.5").ok());
  EXPECT_FALSE(injector.Configure("rate").ok());
  EXPECT_TRUE(injector.Configure("off").ok());
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.Configure("seed=4").ok());
  EXPECT_FALSE(injector.enabled()) << "seed-only spec arms nothing";
  EXPECT_TRUE(injector.Configure("seed=4,rate=0.1").ok());
  EXPECT_TRUE(injector.enabled());
  EXPECT_FALSE(FaultInjector::KnownPoints().empty());
}

TEST_F(FaultFixture, DisabledInjectorNeverFires) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.Configure("off").ok());
  for (const std::string& point : FaultInjector::KnownPoints()) {
    EXPECT_FALSE(injector.Fires(point.c_str()));
    EXPECT_TRUE(injector.Check(point.c_str()).ok());
  }
}

// ---- atomic artifact save ---------------------------------------------------

TEST_F(FaultFixture, FailedOverwriteLeavesOldArtifactsLoadable) {
  for (const char* fault : {"artifact/write=1", "artifact/fsync=1",
                            "artifact/rename=1"}) {
    const fs::path dir = TempDir("overwrite");
    const PipelineArtifacts original = SmallArtifacts(0.0);
    ASSERT_TRUE(SaveArtifacts(original, dir.string()).ok());

    ASSERT_TRUE(FaultInjector::Global()
                    .Configure(std::string("seed=1,") + fault)
                    .ok());
    const Status save = SaveArtifacts(SmallArtifacts(10.0), dir.string());
    FaultInjector::Global().Disable();
    EXPECT_FALSE(save.ok()) << fault;

    // The failed save must leave no staging residue and the previous
    // artifacts fully intact.
    EXPECT_FALSE(fs::exists(dir.string() + ".tmp")) << fault;
    EXPECT_FALSE(fs::exists(dir.string() + ".old")) << fault;
    const auto loaded = LoadArtifacts(dir.string());
    ASSERT_TRUE(loaded.ok()) << fault << ": " << loaded.status().ToString();
    ExpectArtifactsEqual(loaded.value(), original);
    fs::remove_all(dir);
  }
}

TEST_F(FaultFixture, FailedFreshSaveLeavesNothing) {
  const fs::path dir = TempDir("fresh_fail");
  ASSERT_TRUE(
      FaultInjector::Global().Configure("seed=1,artifact/write=1").ok());
  EXPECT_FALSE(SaveArtifacts(SmallArtifacts(), dir.string()).ok());
  FaultInjector::Global().Disable();
  EXPECT_FALSE(fs::exists(dir));
  EXPECT_FALSE(fs::exists(dir.string() + ".tmp"));
  const auto loaded = LoadArtifacts(dir.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(ArtifactAtomicityTest, SuccessfulOverwriteReplacesAndCleansUp) {
  const fs::path dir = TempDir("replace");
  ASSERT_TRUE(SaveArtifacts(SmallArtifacts(0.0), dir.string()).ok());
  const PipelineArtifacts next = SmallArtifacts(3.5);
  ASSERT_TRUE(SaveArtifacts(next, dir.string()).ok());
  EXPECT_FALSE(fs::exists(dir.string() + ".tmp"));
  EXPECT_FALSE(fs::exists(dir.string() + ".old"));
  const auto loaded = LoadArtifacts(dir.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectArtifactsEqual(loaded.value(), next);
  fs::remove_all(dir);
}

// ---- corruption detection ---------------------------------------------------

std::vector<std::string> ArtifactFileNames() {
  return {"manifest.txt",      "anchors.txt",     "groups.txt",
          "embeddings.txt",    "scores.txt",      "scored_groups.txt",
          "node_errors.txt",   "tpgcl_loss.txt"};
}

std::string ReadAll(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

TEST(ArtifactCorruptionTest, EveryFileEveryCorruptionYieldsTypedError) {
  const fs::path dir = TempDir("corruption");
  ASSERT_TRUE(SaveArtifacts(SmallArtifacts(), dir.string()).ok());

  for (const std::string& name : ArtifactFileNames()) {
    const fs::path target = dir / name;
    ASSERT_TRUE(fs::exists(target)) << name;
    const std::string pristine = ReadAll(target);
    ASSERT_GT(pristine.size(), 4u) << name;

    for (const char* mode : {"truncate", "flip", "remove"}) {
      if (std::string(mode) == "truncate") {
        WriteAll(target, pristine.substr(0, pristine.size() - 3));
      } else if (std::string(mode) == "flip") {
        std::string flipped = pristine;
        flipped[flipped.size() / 2] ^= 0x01;
        WriteAll(target, flipped);
      } else {
        fs::remove(target);
      }

      const auto loaded = LoadArtifacts(dir.string());
      ASSERT_FALSE(loaded.ok()) << name << " " << mode;
      const Status& s = loaded.status();
      if (name == "manifest.txt") {
        // Manifest damage surfaces as whatever layer notices first (missing
        // manifest, malformed header, or a stale checksum), never a crash.
        EXPECT_NE(s.code(), StatusCode::kOk) << mode;
      } else {
        EXPECT_EQ(s.code(), StatusCode::kDataLoss) << name << " " << mode;
        EXPECT_NE(s.message().find(name), std::string::npos)
            << name << " " << mode << ": " << s.ToString();
      }

      WriteAll(target, pristine);  // Restore for the next mode.
    }
  }
  // Restored directory loads again.
  EXPECT_TRUE(LoadArtifacts(dir.string()).ok());
  fs::remove_all(dir);
}

TEST(ArtifactCorruptionTest, ManifestCountMismatchIsDataLoss) {
  const fs::path dir = TempDir("count_mismatch");
  ASSERT_TRUE(SaveArtifacts(SmallArtifacts(), dir.string()).ok());
  const fs::path manifest = dir / "manifest.txt";
  std::string text = ReadAll(manifest);
  const std::string key = "num_anchors ";
  const size_t pos = text.find(key);
  ASSERT_NE(pos, std::string::npos);
  // The manifest itself is not checksummed, so an inflated count must be
  // caught by the parse-time cross-check, not the integrity sweep.
  text.replace(pos, key.size() + 1, key + "9");
  WriteAll(manifest, text);
  const auto loaded = LoadArtifacts(dir.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("num_anchors"), std::string::npos);
  fs::remove_all(dir);
}

TEST(ArtifactCorruptionTest, MissingDirectoryIsNotFound) {
  const fs::path dir = TempDir("never_created");
  const auto loaded = LoadArtifacts(dir.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// ---- full pipeline round trip under an armed-but-quiet injector -------------

TEST_F(FaultFixture, PipelineWithQuietInjectorMatchesBaseline) {
  const Dataset d = GenExampleGraph({});
  const auto baseline = TpGrGad(QuickOptions(7)).TryRun(d.graph);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // All points at rate 0 except one that this pipeline never reaches:
  // enabled() is true, so every Check runs, but nothing may fire.
  ASSERT_TRUE(
      FaultInjector::Global().Configure("seed=2,dataset/load=1").ok());
  const auto guarded = TpGrGad(QuickOptions(7)).TryRun(d.graph);
  FaultInjector::Global().Disable();
  ASSERT_TRUE(guarded.ok()) << guarded.status().ToString();
  ExpectArtifactsEqual(guarded.value(), baseline.value());
}

}  // namespace
}  // namespace grgad
