// Outlier detectors: each must rank planted outliers above inliers on
// Gaussian-cluster data; plus unit tests on internals (ECDF tails, path
// lengths, DBSCAN-free neighbor logic).
#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/od/detector.h"
#include "src/od/ecod.h"
#include "src/od/iforest.h"
#include "src/od/knn.h"
#include "src/od/lof.h"
#include "src/od/mad.h"
#include "src/metrics/classification.h"
#include "src/util/rng.h"

namespace grgad {
namespace {

/// 180 inliers around the origin + 20 outliers at distance ~8.
struct PlantedData {
  Matrix x;
  std::vector<int> labels;
};

PlantedData MakePlanted(uint64_t seed, int dim = 4) {
  Rng rng(seed);
  const int n_in = 180, n_out = 20;
  PlantedData data;
  data.x = Matrix(n_in + n_out, dim);
  data.labels.assign(n_in + n_out, 0);
  for (int i = 0; i < n_in; ++i) {
    for (int j = 0; j < dim; ++j) data.x(i, j) = rng.Normal(0.0, 1.0);
  }
  // Scattered outliers (each in its own far-away spot) rather than a second
  // cluster, so that density-based detectors (LOF) see them as outliers too.
  for (int i = n_in; i < n_in + n_out; ++i) {
    data.labels[i] = 1;
    for (int j = 0; j < dim; ++j) {
      const double direction = rng.Bernoulli(0.5) ? 1.0 : -1.0;
      data.x(i, j) = direction * rng.Uniform(6.0, 14.0);
    }
  }
  return data;
}

class DetectorRankingTest
    : public ::testing::TestWithParam<DetectorKind> {};

TEST_P(DetectorRankingTest, PlantedOutliersScoreHigh) {
  const PlantedData data = MakePlanted(33);
  auto detector = MakeOutlierDetector(GetParam(), /*seed=*/5);
  ASSERT_NE(detector, nullptr);
  const auto scores = detector->FitScore(data.x);
  ASSERT_EQ(scores.size(), data.x.rows());
  EXPECT_GT(RocAuc(data.labels, scores), 0.95) << detector->Name();
}

TEST_P(DetectorRankingTest, DeterministicGivenSeed) {
  const PlantedData data = MakePlanted(34);
  auto d1 = MakeOutlierDetector(GetParam(), 9);
  auto d2 = MakeOutlierDetector(GetParam(), 9);
  EXPECT_EQ(d1->FitScore(data.x), d2->FitScore(data.x));
}

INSTANTIATE_TEST_SUITE_P(
    AllDetectors, DetectorRankingTest,
    ::testing::Values(DetectorKind::kEcod, DetectorKind::kLof,
                      DetectorKind::kKnn, DetectorKind::kIsolationForest,
                      DetectorKind::kMad));

TEST(DetectorFactoryTest, ParseNames) {
  DetectorKind kind;
  EXPECT_TRUE(ParseDetectorKind("ecod", &kind));
  EXPECT_EQ(kind, DetectorKind::kEcod);
  EXPECT_TRUE(ParseDetectorKind("lof", &kind));
  EXPECT_TRUE(ParseDetectorKind("knn", &kind));
  EXPECT_TRUE(ParseDetectorKind("iforest", &kind));
  EXPECT_TRUE(ParseDetectorKind("mad", &kind));
  EXPECT_TRUE(ParseDetectorKind("ensemble", &kind));
  EXPECT_EQ(kind, DetectorKind::kEnsemble);
  EXPECT_FALSE(ParseDetectorKind("nope", &kind));
}

TEST(DetectorFactoryTest, NameParseRoundTripCoversEveryKind) {
  // DetectorKindName must invert ParseDetectorKind for every enum value,
  // and every kind must construct through the factory.
  const auto kinds = AllDetectorKinds();
  EXPECT_EQ(kinds.size(), 6u);
  for (DetectorKind kind : kinds) {
    const std::string name = DetectorKindName(kind);
    EXPECT_NE(name, "?");
    DetectorKind parsed;
    ASSERT_TRUE(ParseDetectorKind(name, &parsed)) << name;
    EXPECT_EQ(parsed, kind) << name;
    auto detector = MakeOutlierDetector(kind, /*seed=*/7);
    ASSERT_NE(detector, nullptr) << name;
    EXPECT_FALSE(detector->Name().empty());
  }
}

TEST(EcodTest, JointlyExtremePointScoresHighest) {
  // ECOD tail probabilities are rank-based, so in one dimension the minimum
  // and maximum are equally extreme; a point extreme in *both* dimensions
  // must out-score points extreme in only one.
  Matrix x(9, 2);
  const double vals[9] = {-0.4, -0.3, -0.1, 0.0, 0.1, 0.2, 0.3, 0.4, 9.0};
  for (int i = 0; i < 9; ++i) {
    x(i, 0) = vals[i];
    x(i, 1) = (i == 8) ? 9.0 : -vals[i];  // Row 8 extreme in both dims.
  }
  Ecod ecod;
  const auto scores = ecod.FitScore(x);
  EXPECT_EQ(std::max_element(scores.begin(), scores.end()) - scores.begin(),
            8);
}

TEST(EcodTest, ConstantColumnIsHarmless) {
  Matrix x(4, 2);
  for (int i = 0; i < 4; ++i) {
    x(i, 0) = 1.0;  // Degenerate dimension.
    x(i, 1) = i;
  }
  Ecod ecod;
  const auto scores = ecod.FitScore(x);
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(KnnTest, PairwiseDistancesSymmetricZeroDiag) {
  Rng rng(1);
  Matrix x = Matrix::Gaussian(10, 3, &rng);
  Matrix d = PairwiseDistances(x);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(d(i, i), 0.0);
    for (int j = 0; j < 10; ++j) EXPECT_DOUBLE_EQ(d(i, j), d(j, i));
  }
}

TEST(KnnTest, NeighborsSortedByDistance) {
  Matrix x(4, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 1.0;
  x(2, 0) = 3.0;
  x(3, 0) = 10.0;
  const auto nn = KNearestNeighbors(x, 2);
  EXPECT_EQ(nn[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(nn[3], (std::vector<int>{2, 1}));
}

TEST(KnnTest, KClampedToNMinusOne) {
  Matrix x(3, 1);
  x(1, 0) = 1.0;
  x(2, 0) = 2.0;
  const auto nn = KNearestNeighbors(x, 99);
  EXPECT_EQ(nn[0].size(), 2u);
  KnnDetector det(99);
  EXPECT_EQ(det.FitScore(x).size(), 3u);
  // Seed behavior: k <= 0 selects nothing (both overloads).
  const auto none = KNearestNeighbors(x, 0);
  ASSERT_EQ(none.size(), 3u);
  for (const auto& row : none) EXPECT_TRUE(row.empty());
  const auto none_d = KNearestNeighborsFromDistances(PairwiseDistances(x), 0);
  ASSERT_EQ(none_d.size(), 3u);
  for (const auto& row : none_d) EXPECT_TRUE(row.empty());
}

TEST(LofTest, InliersScoreNearOne) {
  const PlantedData data = MakePlanted(35);
  Lof lof(10);
  const auto scores = lof.FitScore(data.x);
  double inlier_sum = 0.0;
  int inlier_count = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (data.labels[i] == 0) {
      inlier_sum += scores[i];
      ++inlier_count;
    }
  }
  EXPECT_NEAR(inlier_sum / inlier_count, 1.0, 0.2);
}

TEST(LofTest, TinyInputsDoNotCrash) {
  Matrix x(2, 2, 0.5);
  Lof lof;
  const auto scores = lof.FitScore(x);
  EXPECT_EQ(scores.size(), 2u);
}

TEST(IsolationForestTest, AveragePathLength) {
  EXPECT_DOUBLE_EQ(AveragePathLength(1), 0.0);
  EXPECT_DOUBLE_EQ(AveragePathLength(2), 1.0);
  EXPECT_GT(AveragePathLength(256), AveragePathLength(64));
}

TEST(IsolationForestTest, ScoresInUnitInterval) {
  const PlantedData data = MakePlanted(36);
  IsolationForestOptions options;
  options.num_trees = 50;
  IsolationForest forest(options);
  for (double s : forest.FitScore(data.x)) {
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(MadTest, RobustToSingleOutlier) {
  Matrix x(11, 1);
  for (int i = 0; i < 10; ++i) x(i, 0) = i * 0.01;
  x(10, 0) = 1000.0;
  MadDetector mad;
  const auto scores = mad.FitScore(x);
  EXPECT_EQ(std::max_element(scores.begin(), scores.end()) - scores.begin(),
            10);
  // The outlier's robust z-score is enormous.
  EXPECT_GT(scores[10], 100.0);
}

}  // namespace
}  // namespace grgad
