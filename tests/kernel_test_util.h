// Shared helpers for the tensor-kernel determinism tests.
#ifndef GRGAD_TESTS_KERNEL_TEST_UTIL_H_
#define GRGAD_TESTS_KERNEL_TEST_UTIL_H_

#include <cstring>

#include "src/tensor/matrix.h"
#include "src/util/thread_pool.h"

namespace grgad::testing {

/// Exact (bit-for-bit) matrix equality; NaNs compare by representation.
inline bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Forces a parallelism degree for the enclosing scope and restores the
/// GRGAD_THREADS / hardware default on destruction.
class ScopedDegree {
 public:
  explicit ScopedDegree(int degree) {
    internal::SetParallelismDegreeForTest(degree);
  }
  ~ScopedDegree() { internal::SetParallelismDegreeForTest(0); }

  ScopedDegree(const ScopedDegree&) = delete;
  ScopedDegree& operator=(const ScopedDegree&) = delete;
};

}  // namespace grgad::testing

#endif  // GRGAD_TESTS_KERNEL_TEST_UTIL_H_
