// Sub-GAD baselines and the N-GAD group adapter: extraction semantics,
// DBSCAN, and end-to-end smoke on the example dataset.
#include <algorithm>

#include <gtest/gtest.h>

#include "src/baselines/as_gae.h"
#include "src/baselines/deepfd.h"
#include "src/baselines/group_extraction.h"
#include "src/data/example_graph.h"
#include "src/gae/dominant.h"

namespace grgad {
namespace {

Dataset Example() { return GenExampleGraph({}); }

TEST(GroupExtractionTest, ComponentsOfTopScoredNodes) {
  // Path 0-1-2-3-4; high scores at 0,1 and 3 -> groups {0,1} and {3}.
  GraphBuilder b(5);
  for (int i = 0; i + 1 < 5; ++i) b.AddEdge(i, i + 1);
  Graph g = b.Build();
  const std::vector<double> scores = {0.9, 0.8, 0.1, 0.95, 0.2};
  GroupExtractionOptions options;
  options.contamination = 0.6;  // Top 3 nodes.
  const auto groups = ExtractGroupsFromNodeScores(g, scores, options);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].nodes, (std::vector<int>{0, 1}));
  EXPECT_NEAR(groups[0].score, 0.85, 1e-12);
  EXPECT_EQ(groups[1].nodes, (std::vector<int>{3}));
}

TEST(GroupExtractionTest, SingletonFiltering) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.1};
  GroupExtractionOptions options;
  options.contamination = 0.75;
  options.keep_singletons = false;
  const auto groups = ExtractGroupsFromNodeScores(g, scores, options);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].nodes.size(), 2u);
}

TEST(GroupExtractionTest, OversizedComponentTruncated) {
  GraphBuilder b(20);
  for (int i = 0; i + 1 < 20; ++i) b.AddEdge(i, i + 1);
  Graph g = b.Build();
  std::vector<double> scores(20);
  for (int i = 0; i < 20; ++i) scores[i] = 1.0 - i * 0.01;
  GroupExtractionOptions options;
  options.contamination = 1.0;
  options.max_group_size = 8;
  const auto groups = ExtractGroupsFromNodeScores(g, scores, options);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].nodes.size(), 8u);
  // Keeps the highest-score nodes (0..7).
  EXPECT_EQ(groups[0].nodes.front(), 0);
  EXPECT_EQ(groups[0].nodes.back(), 7);
}

TEST(GroupExtractionTest, AdapterRunsNodeScorer) {
  const Dataset d = Example();
  GaeOptions gae;
  gae.epochs = 30;
  gae.hidden_dim = 32;
  gae.embed_dim = 16;
  NodeScorerGroupAdapter adapter(std::make_shared<Dominant>(gae));
  EXPECT_EQ(adapter.Name(), "dominant");
  const auto groups = adapter.DetectGroups(d.graph);
  EXPECT_FALSE(groups.empty());
  for (const auto& g : groups) {
    EXPECT_FALSE(g.nodes.empty());
    EXPECT_TRUE(std::is_sorted(g.nodes.begin(), g.nodes.end()));
  }
}

TEST(DbscanTest, TwoBlobsAndNoise) {
  Matrix x(7, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 0.1;
  x(2, 0) = 0.2;
  x(3, 0) = 10.0;
  x(4, 0) = 10.1;
  x(5, 0) = 10.2;
  x(6, 0) = 100.0;  // Noise.
  std::vector<int> items = {0, 1, 2, 3, 4, 5, 6};
  const auto labels = Dbscan(x, items, /*eps=*/0.3, /*min_pts=*/2);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(labels[6], -1);
}

TEST(DbscanTest, AllNoiseWhenEpsTiny) {
  Matrix x(3, 1);
  x(0, 0) = 0.0;
  x(1, 0) = 5.0;
  x(2, 0) = 9.0;
  const auto labels = Dbscan(x, {0, 1, 2}, 0.1, 2);
  for (int l : labels) EXPECT_EQ(l, -1);
}

TEST(DeepFdTest, DetectsGroupsOnExample) {
  const Dataset d = Example();
  DeepFdOptions options;
  options.epochs = 40;
  DeepFd deepfd(options);
  EXPECT_EQ(deepfd.Name(), "deepfd");
  const auto groups = deepfd.DetectGroups(d.graph);
  EXPECT_FALSE(groups.empty());
  int total_nodes = 0;
  for (const auto& g : groups) {
    EXPECT_TRUE(std::is_sorted(g.nodes.begin(), g.nodes.end()));
    total_nodes += static_cast<int>(g.nodes.size());
  }
  // Suspicious set is ~10% of nodes.
  EXPECT_NEAR(total_nodes, d.graph.num_nodes() / 10, 8);
}

TEST(AsGaeTest, DetectsGroupsOnExample) {
  const Dataset d = Example();
  AsGaeOptions options;
  options.gae.epochs = 40;
  options.gae.hidden_dim = 32;
  options.gae.embed_dim = 16;
  AsGae as_gae(options);
  EXPECT_EQ(as_gae.Name(), "as-gae");
  const auto groups = as_gae.DetectGroups(d.graph);
  EXPECT_FALSE(groups.empty());
  // One-hop closure tends to produce larger groups than plain components
  // from the same scores (Fig. 5 behaviour): just check groups are formed
  // and scores populated.
  for (const auto& g : groups) {
    EXPECT_GT(g.score, 0.0);
    EXPECT_LE(static_cast<int>(g.nodes.size()), options.max_group_size);
  }
}

}  // namespace
}  // namespace grgad
