// CSR SparseMatrix: construction semantics (dedup, sorting), SpMM kernels,
// transpose, normalizers, and sparse-sparse products against dense oracles,
// plus determinism of the parallel/cached kernels vs the serial references.
#include "src/tensor/sparse.h"

#include <cstring>

#include <gtest/gtest.h>

#include "src/tensor/reference_kernels.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"
#include "tests/kernel_test_util.h"

namespace grgad {
namespace {

SparseMatrix RandomSparse(size_t rows, size_t cols, int nnz, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  for (int i = 0; i < nnz; ++i) {
    t.push_back({static_cast<int>(rng.UniformInt(uint64_t{rows})),
                 static_cast<int>(rng.UniformInt(uint64_t{cols})),
                 rng.Normal()});
  }
  return SparseMatrix::FromTriplets(rows, cols, std::move(t));
}

TEST(SparseTest, EmptyMatrix) {
  SparseMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(SparseTest, FromTripletsSortsAndDedups) {
  SparseMatrix m = SparseMatrix::FromTriplets(
      3, 3, {{1, 2, 1.0}, {1, 0, 2.0}, {1, 2, 3.0}, {0, 0, 5.0}});
  EXPECT_EQ(m.nnz(), 3u);  // (1,2) summed.
  EXPECT_DOUBLE_EQ(m.At(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.At(2, 2), 0.0);
  auto cols = m.RowCols(1);
  EXPECT_TRUE(std::is_sorted(cols.begin(), cols.end()));
  EXPECT_EQ(m.RowNnz(1), 2u);
  EXPECT_EQ(m.RowNnz(2), 0u);
}

TEST(SparseTest, IdentitySpmm) {
  Rng rng(5);
  Matrix x = Matrix::Gaussian(4, 3, &rng);
  EXPECT_TRUE(SparseMatrix::Identity(4).Spmm(x).ApproxEquals(x, 1e-12));
}

TEST(SparseTest, SpmmMatchesDense) {
  SparseMatrix s = RandomSparse(8, 6, 20, 6);
  Rng rng(7);
  Matrix x = Matrix::Gaussian(6, 5, &rng);
  EXPECT_TRUE(s.Spmm(x).ApproxEquals(MatMul(s.ToDense(), x), 1e-10));
}

TEST(SparseTest, SpmmTransposeMatchesDense) {
  SparseMatrix s = RandomSparse(8, 6, 20, 8);
  Rng rng(9);
  Matrix x = Matrix::Gaussian(8, 4, &rng);
  EXPECT_TRUE(s.SpmmTransposeThis(x).ApproxEquals(
      MatMul(s.ToDense().Transpose(), x), 1e-10));
}

TEST(SparseTest, TransposeMatchesDense) {
  SparseMatrix s = RandomSparse(5, 9, 15, 10);
  EXPECT_TRUE(
      s.Transpose().ToDense().ApproxEquals(s.ToDense().Transpose(), 1e-12));
}

TEST(SparseTest, SpmmIntoMatchesSpmmBitwise) {
  SparseMatrix s = RandomSparse(12, 9, 30, 11);
  Rng rng(13);
  Matrix x = Matrix::Gaussian(9, 5, &rng);
  Matrix out(12, 5, /*fill=*/9.0);  // Stale contents must not leak through.
  s.SpmmInto(x, &out);
  const Matrix expected = s.Spmm(x);
  EXPECT_EQ(std::memcmp(out.data(), expected.data(),
                        expected.size() * sizeof(double)),
            0);
}

TEST(SparseTest, SpmmTransposeThisIntoMatchesBitwise) {
  SparseMatrix s = RandomSparse(12, 9, 30, 12);
  Rng rng(14);
  Matrix x = Matrix::Gaussian(12, 5, &rng);
  Matrix out(9, 5, /*fill=*/9.0);
  s.SpmmTransposeThisInto(x, &out);
  const Matrix expected = s.SpmmTransposeThis(x);
  EXPECT_EQ(std::memcmp(out.data(), expected.data(),
                        expected.size() * sizeof(double)),
            0);
}

TEST(SparseTest, RowSums) {
  SparseMatrix s = SparseMatrix::FromTriplets(
      2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, -3.0}});
  EXPECT_EQ(s.RowSums(), (std::vector<double>{3.0, -3.0}));
}

TEST(SparseTest, RowNormalized) {
  SparseMatrix s = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 3.0}, {1, 0, -2.0}});
  SparseMatrix n = s.RowNormalized();
  EXPECT_DOUBLE_EQ(n.At(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(n.At(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(n.At(1, 0), -1.0);  // |sum| normalization.
}

TEST(SparseTest, MaxNormalizedAndScaled) {
  SparseMatrix s = SparseMatrix::FromTriplets(2, 2, {{0, 0, -4.0},
                                                     {1, 1, 2.0}});
  SparseMatrix n = s.MaxNormalized();
  EXPECT_DOUBLE_EQ(n.At(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(n.At(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(s.Scaled(0.5).At(0, 0), -2.0);
  // Empty matrix: no-op.
  SparseMatrix empty;
  EXPECT_EQ(empty.MaxNormalized().nnz(), 0u);
}

TEST(SparseTest, Pruned) {
  SparseMatrix s = SparseMatrix::FromTriplets(
      2, 2, {{0, 0, 1e-9}, {0, 1, 0.5}, {1, 1, -1e-9}});
  SparseMatrix p = s.Pruned(1e-6);
  EXPECT_EQ(p.nnz(), 1u);
  EXPECT_DOUBLE_EQ(p.At(0, 1), 0.5);
}

TEST(SparseTest, ApproxEqualsHandlesExplicitZeros) {
  SparseMatrix a = SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0},
                                                     {0, 1, 0.0}});
  SparseMatrix b = SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0}});
  EXPECT_TRUE(a.ApproxEquals(b));
  SparseMatrix c = SparseMatrix::FromTriplets(2, 2, {{0, 0, 1.0},
                                                     {1, 1, 0.1}});
  EXPECT_FALSE(a.ApproxEquals(c));
}

TEST(SparseTest, MatMulSparseMatchesDense) {
  SparseMatrix a = RandomSparse(6, 5, 12, 11);
  SparseMatrix b = RandomSparse(5, 7, 14, 12);
  Matrix expected = MatMul(a.ToDense(), b.ToDense());
  EXPECT_TRUE(MatMulSparse(a, b).ToDense().ApproxEquals(expected, 1e-10));
}

TEST(SparseTest, MatMulSparsePrunes) {
  SparseMatrix a = SparseMatrix::FromTriplets(1, 1, {{0, 0, 1e-4}});
  SparseMatrix b = SparseMatrix::FromTriplets(1, 1, {{0, 0, 1e-4}});
  EXPECT_EQ(MatMulSparse(a, b, 1e-6).nnz(), 0u);
  EXPECT_EQ(MatMulSparse(a, b, 0.0).nnz(), 1u);
}

using ::grgad::testing::BitwiseEqual;
using ::grgad::testing::ScopedDegree;

TEST(SparseTest, SpmmKernelsMatchSerialReferenceBitwise) {
  SparseMatrix s = RandomSparse(60, 45, 300, 21);
  Rng rng(22);
  Matrix x = Matrix::Gaussian(45, 19, &rng);
  Matrix xt = Matrix::Gaussian(60, 19, &rng);
  Matrix ref_fwd = reference::Spmm(s, x);
  Matrix ref_bwd = reference::SpmmTransposeThis(s, xt);
  for (int threads : {1, 2, 4, 8}) {
    ScopedDegree degree(threads);
    // Both the serial scatter path (degree 1) and the cached-transpose
    // gather path (degree > 1) accumulate every output element's terms in
    // ascending source-row order: agreement is bitwise, not approximate.
    EXPECT_TRUE(BitwiseEqual(s.Spmm(x), ref_fwd)) << threads << " threads";
    EXPECT_TRUE(BitwiseEqual(s.SpmmTransposeThis(xt), ref_bwd))
        << threads << " threads";
    // Repeated calls (now served by the transpose cache) stay stable.
    EXPECT_TRUE(BitwiseEqual(s.SpmmTransposeThis(xt), ref_bwd))
        << threads << " threads, cached";
  }
}

TEST(SparseTest, TransposeCacheSurvivesCopiesCorrectly) {
  ScopedDegree degree(4);
  SparseMatrix s = RandomSparse(30, 40, 150, 23);
  Rng rng(24);
  Matrix x = Matrix::Gaussian(30, 8, &rng);
  Matrix base = s.SpmmTransposeThis(x);  // Populates s's transpose cache.
  // A value-scaled copy must not inherit the stale cached transpose.
  SparseMatrix doubled = s.Scaled(2.0);
  EXPECT_TRUE(doubled.SpmmTransposeThis(x).ApproxEquals(base * 2.0, 1e-12));
  SparseMatrix assigned;
  assigned = s;
  SparseMatrix halved = assigned.Scaled(0.5);
  EXPECT_TRUE(halved.SpmmTransposeThis(x).ApproxEquals(base * 0.5, 1e-12));
  // Moves may keep the cache: results must be identical before/after.
  SparseMatrix moved = std::move(assigned);
  EXPECT_TRUE(BitwiseEqual(moved.SpmmTransposeThis(x), base));
}

TEST(SparseTest, TransposeTwiceRoundTrips) {
  SparseMatrix s = RandomSparse(13, 29, 80, 25);
  EXPECT_TRUE(s.Transpose().Transpose().ApproxEquals(s, 0.0));
  // Column indices inside each transposed row must be sorted (CSR contract).
  SparseMatrix t = s.Transpose();
  for (size_t i = 0; i < t.rows(); ++i) {
    auto cols = t.RowCols(i);
    EXPECT_TRUE(std::is_sorted(cols.begin(), cols.end()));
  }
}

TEST(SparseTest, MatMulSparseHandlesTransientCancellation) {
  // Row 0 of a*b accumulates +1 then -1 then +1 into column 0: the partial
  // sum passes through exact 0.0 mid-row, which made the seed's
  // acc[j] == 0.0 touch-test re-push the column and emit it twice.
  SparseMatrix a = SparseMatrix::FromTriplets(
      1, 3, {{0, 0, 1.0}, {0, 1, 1.0}, {0, 2, 1.0}});
  SparseMatrix b = SparseMatrix::FromTriplets(
      3, 1, {{0, 0, 1.0}, {1, 0, -1.0}, {2, 0, 1.0}});
  SparseMatrix product = MatMulSparse(a, b);
  EXPECT_EQ(product.nnz(), 1u);
  EXPECT_DOUBLE_EQ(product.At(0, 0), 1.0);
  EXPECT_TRUE(product.ToDense().ApproxEquals(
      MatMul(a.ToDense(), b.ToDense()), 1e-12));
}

// Property: (A B)^T == B^T A^T for sparse products.
class SparseProductPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseProductPropertyTest, TransposeOfProduct) {
  const int seed = GetParam();
  SparseMatrix a = RandomSparse(7, 6, 18, seed);
  SparseMatrix b = RandomSparse(6, 8, 18, seed + 1000);
  SparseMatrix left = MatMulSparse(a, b).Transpose();
  SparseMatrix right = MatMulSparse(b.Transpose(), a.Transpose());
  EXPECT_TRUE(left.ApproxEquals(right, 1e-10)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseProductPropertyTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace grgad
