// End-to-end training determinism: the arena-backed autograd, fused
// bias+ReLU, and fused optimizer paths must produce training outputs (loss
// history, embeddings, per-node errors) byte-identical to the seed
// implementation, invariant across thread counts, and invariant to the
// fast-path switch. The AVX-512 golden hashes below pin today's exact bytes
// so a future change that silently shifts training numerics fails loudly.
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/example_graph.h"
#include "src/gae/deep_ae.h"
#include "src/gae/gae_base.h"
#include "src/gcl/tpgcl.h"
#include "src/nn/layers.h"
#include "src/nn/optim.h"
#include "src/tensor/arena.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace grgad {
namespace {

uint64_t Fnv1a(const void* data, size_t bytes, uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t HashDoubles(const std::vector<double>& v, uint64_t h) {
  return Fnv1a(v.data(), v.size() * sizeof(double), h);
}

uint64_t HashMatrix(const Matrix& m, uint64_t h) {
  return Fnv1a(m.data(), m.size() * sizeof(double), h);
}

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;

/// One byte-exact fingerprint over every training output of a GAE fit.
uint64_t GaeFingerprint() {
  DatasetOptions data_options;
  data_options.seed = 7;
  const Dataset d = GenExampleGraph(data_options);
  GaeOptions options;
  options.epochs = 12;
  options.hidden_dim = 16;
  options.embed_dim = 8;
  options.target = ReconTarget::kGraphSnn;
  options.seed = 3;
  const GaeResult r = GcnGae(options).Fit(d.graph);
  uint64_t h = kFnvOffset;
  h = HashDoubles(r.loss_history, h);
  h = HashDoubles(r.node_errors, h);
  h = HashDoubles(r.structure_errors, h);
  h = HashDoubles(r.attribute_errors, h);
  h = HashMatrix(r.embeddings, h);
  return h;
}

uint64_t TpgclFingerprint() {
  DatasetOptions data_options;
  data_options.seed = 7;
  const Dataset d = GenExampleGraph(data_options);
  std::vector<std::vector<int>> candidates = d.anomaly_groups;
  for (int i = 0; i < 8; ++i) candidates.push_back({i, i + 1, i + 2, i + 3});
  TpgclOptions options;
  options.epochs = 8;
  options.hidden_dim = 16;
  options.embed_dim = 8;
  options.seed = 5;
  const TpgclResult r = Tpgcl(options).FitEmbed(d.graph, candidates);
  uint64_t h = kFnvOffset;
  h = HashDoubles(r.loss_history, h);
  h = HashMatrix(r.embeddings, h);
  return h;
}

uint64_t DeepAeFingerprint() {
  DatasetOptions data_options;
  data_options.seed = 7;
  const Dataset d = GenExampleGraph(data_options);
  DeepAeOptions options;
  options.epochs = 10;
  options.seed = 9;
  return HashDoubles(DeepAe(options).FitNodeScores(d.graph), kFnvOffset);
}

/// Restores the default parallelism degree on scope exit.
struct DegreeGuard {
  ~DegreeGuard() { internal::SetParallelismDegreeForTest(0); }
};

TEST(TrainingDeterminismTest, OutputsInvariantAcrossThreadCounts) {
  DegreeGuard guard;
  internal::SetParallelismDegreeForTest(1);
  const uint64_t gae1 = GaeFingerprint();
  const uint64_t tpgcl1 = TpgclFingerprint();
  const uint64_t deepae1 = DeepAeFingerprint();
  internal::SetParallelismDegreeForTest(4);
  EXPECT_EQ(GaeFingerprint(), gae1);
  EXPECT_EQ(TpgclFingerprint(), tpgcl1);
  EXPECT_EQ(DeepAeFingerprint(), deepae1);
}

TEST(TrainingDeterminismTest, FastPathMatchesSeedPathBitwise) {
  // Fast path off = the seed behavior: fresh heap matrices every epoch,
  // unfused bias+ReLU, serial optimizer loops, gradient buffers freed by
  // ZeroGrad. Outputs must not change by a single byte either way.
  const uint64_t fast_gae = GaeFingerprint();
  const uint64_t fast_tpgcl = TpgclFingerprint();
  const uint64_t fast_deepae = DeepAeFingerprint();
  ASSERT_TRUE(SetTrainingFastPath(false));
  const uint64_t seed_gae = GaeFingerprint();
  const uint64_t seed_tpgcl = TpgclFingerprint();
  const uint64_t seed_deepae = DeepAeFingerprint();
  SetTrainingFastPath(true);
  EXPECT_EQ(fast_gae, seed_gae);
  EXPECT_EQ(fast_tpgcl, seed_tpgcl);
  EXPECT_EQ(fast_deepae, seed_deepae);
}

// Golden values captured from the pre-arena implementation (PR 2 tree) on
// the reference container, identical at GRGAD_THREADS=1 and 4. They pin the
// exact training bytes: any numerics change — reordered accumulation,
// different fusion, altered sampling — trips these. Two sets:
//  - Without FMA (e.g. the CI build, GRGAD_NATIVE_ARCH=OFF): every double
//    op rounds individually, so results are bitwise stable across
//    compilers and vector widths — these literals hold on any x86-64.
//  - AVX-512 (-march=native -mprefer-vector-width=512, the default local
//    build): FMA contraction changes the bytes; these literals assume the
//    reference container's GCC. On other FMA ISAs (plain AVX2) the exact
//    literal check is skipped; the cross-thread and fast-path tests above
//    still cover every build.
#if defined(__AVX512F__) || !defined(__FMA__)
TEST(TrainingDeterminismTest, MatchesPreArenaGoldenBytes) {
#if defined(__AVX512F__)
  constexpr uint64_t kGae = 11324091491406326405ULL;
  constexpr uint64_t kTpgcl = 9587620223045283099ULL;
  constexpr uint64_t kDeepAe = 12170585791305109379ULL;
#else
  constexpr uint64_t kGae = 10501552124811263427ULL;
  constexpr uint64_t kTpgcl = 8423733046468069617ULL;
  constexpr uint64_t kDeepAe = 10359397975250250476ULL;
#endif
  DegreeGuard guard;
  for (int degree : {1, 4}) {
    internal::SetParallelismDegreeForTest(degree);
    EXPECT_EQ(GaeFingerprint(), kGae) << degree;
    EXPECT_EQ(TpgclFingerprint(), kTpgcl) << degree;
    EXPECT_EQ(DeepAeFingerprint(), kDeepAe) << degree;
  }
}
#endif  // __AVX512F__ || !__FMA__

TEST(TrainingDeterminismTest, BiasReluFusedMatchesUnfusedBitwise) {
  Rng rng(123);
  const Matrix a_init = Matrix::Gaussian(17, 9, &rng);
  const Matrix bias_init = Matrix::Gaussian(1, 9, &rng);
  const Matrix upstream = Matrix::Gaussian(17, 9, &rng);

  auto run = [&](bool fused, Matrix* ga, Matrix* gb) {
    Var a(a_init, /*requires_grad=*/true);
    Var bias(bias_init, /*requires_grad=*/true);
    Var out = fused ? BiasReluFused(a, bias)
                    : Relu(AddRowBroadcast(a, bias));
    // Reduce with fixed upstream weights so every output element's
    // gradient is exercised with a distinct value.
    Var loss = SumAll(Mul(out, Var(upstream)));
    loss.Backward();
    *ga = a.grad();
    *gb = bias.grad();
    return out.value();
  };
  Matrix ga_fused, gb_fused, ga_ref, gb_ref;
  const Matrix out_fused = run(true, &ga_fused, &gb_fused);
  const Matrix out_ref = run(false, &ga_ref, &gb_ref);
  ASSERT_EQ(out_fused.size(), out_ref.size());
  EXPECT_EQ(std::memcmp(out_fused.data(), out_ref.data(),
                        out_ref.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(ga_fused.data(), ga_ref.data(),
                        ga_ref.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(gb_fused.data(), gb_ref.data(),
                        gb_ref.size() * sizeof(double)),
            0);
}

TEST(TrainingDeterminismTest, AddScalarForwardAndGradient) {
  Var a(Matrix::FromRows({{1.0, -2.0}, {0.5, 3.0}}), /*requires_grad=*/true);
  Var out = AddScalar(a, 2.5);
  EXPECT_DOUBLE_EQ(out.value()(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(out.value()(0, 1), 0.5);
  Var loss = SumAll(out);
  loss.Backward();
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(a.grad()(i, j), 1.0);
  }
}

}  // namespace
}  // namespace grgad
