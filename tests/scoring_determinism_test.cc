// Determinism contract of the rebuilt scoring stage (see PERF.md, "Scoring
// stage"):
//   - every detector's scores are bitwise identical across GRGAD_THREADS
//     and across repeated runs with the fast path on;
//   - fast path vs seed path agree at the score-rank level for the
//     GEMM-distance detectors (kNN, LOF) and bitwise for ECOD,
//     IsolationForest, and GraphSNN;
//   - kNN and LOF perform exactly ONE pairwise-distance sweep per FitScore
//     on either path (the seed computed the full matrix twice);
//   - sharing one NeighborIndex across ensemble members changes nothing.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/stages.h"
#include "src/data/example_graph.h"
#include "src/graph/graphsnn.h"
#include "src/od/detector.h"
#include "src/od/ecod.h"
#include "src/od/ensemble.h"
#include "src/od/iforest.h"
#include "src/od/knn.h"
#include "src/od/lof.h"
#include "src/od/neighbor_index.h"
#include "src/od/reference_detectors.h"
#include "src/util/fastpath.h"
#include "src/util/rng.h"
#include "tests/kernel_test_util.h"

namespace grgad {
namespace {

using testing::ScopedDegree;

/// Restores the scoring fast-path switch on scope exit.
class ScopedScoringFastPath {
 public:
  explicit ScopedScoringFastPath(bool enabled)
      : prev_(SetScoringFastPath(enabled)) {}
  ~ScopedScoringFastPath() { SetScoringFastPath(prev_); }

  ScopedScoringFastPath(const ScopedScoringFastPath&) = delete;
  ScopedScoringFastPath& operator=(const ScopedScoringFastPath&) = delete;

 private:
  bool prev_;
};

/// Gaussian inliers + scattered far-away outliers, sized past one distance
/// panel (256 rows) so the panel loop's seams are exercised.
Matrix PlantedEmbeddings(uint64_t seed, int n_in = 300, int n_out = 40,
                         int dim = 8) {
  Rng rng(seed);
  Matrix x(n_in + n_out, dim);
  for (int i = 0; i < n_in; ++i) {
    for (int j = 0; j < dim; ++j) x(i, j) = rng.Normal(0.0, 1.0);
  }
  for (int i = n_in; i < n_in + n_out; ++i) {
    for (int j = 0; j < dim; ++j) {
      const double direction = rng.Bernoulli(0.5) ? 1.0 : -1.0;
      x(i, j) = direction * rng.Uniform(6.0, 14.0);
    }
  }
  return x;
}

std::vector<double> Scores(DetectorKind kind, const Matrix& x,
                           uint64_t seed = 5) {
  auto detector = MakeOutlierDetector(kind, seed);
  return detector->FitScore(x);
}

TEST(ScoringDeterminismTest, BitwiseIdenticalAcrossThreadDegreesAndRuns) {
  const Matrix x = PlantedEmbeddings(101);
  ScopedScoringFastPath fast(true);
  for (DetectorKind kind : AllDetectorKinds()) {
    std::vector<double> at_one, at_four, again;
    {
      ScopedDegree degree(1);
      at_one = Scores(kind, x);
    }
    {
      ScopedDegree degree(4);
      at_four = Scores(kind, x);
      again = Scores(kind, x);
    }
    EXPECT_EQ(at_one, at_four) << DetectorKindName(kind);
    EXPECT_EQ(at_four, again) << DetectorKindName(kind);
  }
}

TEST(ScoringDeterminismTest, FastPathMatchesSeedPathAtRankLevel) {
  const Matrix x = PlantedEmbeddings(102);
  for (DetectorKind kind :
       {DetectorKind::kKnn, DetectorKind::kLof, DetectorKind::kEcod,
        DetectorKind::kIsolationForest, DetectorKind::kEnsemble}) {
    std::vector<double> fast, seed;
    {
      ScopedScoringFastPath on(true);
      fast = Scores(kind, x);
    }
    {
      ScopedScoringFastPath off(false);
      seed = Scores(kind, x);
    }
    EXPECT_EQ(RankNormalize(fast), RankNormalize(seed))
        << DetectorKindName(kind);
  }
}

TEST(ScoringDeterminismTest, EcodFastPathBitwiseEqualsSeedPath) {
  // ECOD's fast path reduces per-column contributions in ascending column
  // order — the seed's exact accumulation — so it is bitwise, not merely
  // rank, identical (the pipeline's default detector must not move).
  const Matrix x = PlantedEmbeddings(103);
  Ecod ecod;
  ScopedScoringFastPath on(true);
  const auto fast = ecod.FitScore(x);
  SetScoringFastPath(false);
  const auto seed = ecod.FitScore(x);
  EXPECT_EQ(fast, seed);
  EXPECT_EQ(fast, reference::EcodFitScore(x));
}

TEST(ScoringDeterminismTest, IForestFastPathBitwiseEqualsSeedPath) {
  // Per-tree RNG streams make the forest identical whether trees are built
  // serially or across the pool.
  const Matrix x = PlantedEmbeddings(104);
  IsolationForestOptions options;
  options.num_trees = 60;
  options.seed = 9;
  IsolationForest forest(options);
  ScopedScoringFastPath on(true);
  const auto fast = forest.FitScore(x);
  SetScoringFastPath(false);
  const auto seed = forest.FitScore(x);
  EXPECT_EQ(fast, seed);
}

TEST(ScoringDeterminismTest, KnnAndLofComputeDistancesExactlyOnce) {
  const Matrix x = PlantedEmbeddings(105, 60, 8, 4);
  for (bool fast : {true, false}) {
    ScopedScoringFastPath path(fast);
    internal::ResetDistanceSweeps();
    KnnDetector(5).FitScore(x);
    EXPECT_EQ(internal::DistanceSweeps(), 1u) << "knn fast=" << fast;
    internal::ResetDistanceSweeps();
    Lof(10).FitScore(x);
    EXPECT_EQ(internal::DistanceSweeps(), 1u) << "lof fast=" << fast;
    // The shared-index ensemble adds no sweeps beyond its single build.
    internal::ResetDistanceSweeps();
    EnsembleDetector::MakeDefault(5)->FitScore(x);
    EXPECT_EQ(internal::DistanceSweeps(), 1u) << "ensemble fast=" << fast;
  }
}

TEST(ScoringDeterminismTest, FastIndexSelectsSeedNeighbors) {
  // GEMM distances differ from scalar distances only in FP contraction, so
  // on generic data the selected neighbor ids (and their order) match the
  // seed selection exactly.
  const Matrix x = PlantedEmbeddings(106);
  const int k = 10;
  ScopedScoringFastPath on(true);
  const NeighborIndex fast = BuildNeighborIndex(x, k);
  const Matrix seed_dists = reference::PairwiseDistances(x);
  const NeighborIndex seed = NeighborIndexFromDistances(seed_dists, k);
  EXPECT_EQ(fast.ids, seed.ids);
  // The precomputed-distances overload (no sweep of its own) agrees with
  // both the index and the seed double-sweep KNearestNeighbors.
  internal::ResetDistanceSweeps();
  const auto from_dists = KNearestNeighborsFromDistances(seed_dists, k);
  EXPECT_EQ(internal::DistanceSweeps(), 0u);
  const auto seed_lists = reference::KNearestNeighbors(x, k);
  ASSERT_EQ(from_dists.size(), seed_lists.size());
  EXPECT_EQ(from_dists, seed_lists);
  // A k-consumer reading a prefix of a larger shared index sees exactly its
  // own index.
  const NeighborIndex wide = BuildNeighborIndex(x, 2 * k);
  for (int i = 0; i < fast.n; ++i) {
    for (int pos = 0; pos < k; ++pos) {
      EXPECT_EQ(wide.Neighbor(i, pos), fast.Neighbor(i, pos));
      EXPECT_EQ(wide.Distance(i, pos), fast.Distance(i, pos));
    }
  }
}

TEST(ScoringDeterminismTest, PairwiseDistancesFastPathSymmetricZeroDiag) {
  const Matrix x = PlantedEmbeddings(107);
  ScopedScoringFastPath on(true);
  const Matrix d = PairwiseDistances(x);
  for (size_t i = 0; i < x.rows(); i += 37) {
    EXPECT_EQ(d(i, i), 0.0);
    for (size_t j = 0; j < x.rows(); j += 11) {
      EXPECT_EQ(d(i, j), d(j, i));
    }
  }
  // Within FP-contraction tolerance of the scalar seed distances.
  EXPECT_TRUE(d.ApproxEquals(reference::PairwiseDistances(x), 1e-9));
}

TEST(ScoringDeterminismTest, SharedIndexMatchesStandaloneMembers) {
  // An ensemble scoring every member through one shared index must combine
  // exactly the scores the members produce standalone (each building its
  // own index).
  const Matrix x = PlantedEmbeddings(108, 150, 20, 6);
  ScopedScoringFastPath on(true);
  std::vector<std::unique_ptr<OutlierDetector>> members;
  members.push_back(std::make_unique<KnnDetector>(5));
  members.push_back(std::make_unique<Lof>(10));
  EnsembleDetector ensemble(std::move(members));
  const auto combined = ensemble.FitScore(x);

  const auto knn_ranks = RankNormalize(KnnDetector(5).FitScore(x));
  const auto lof_ranks = RankNormalize(Lof(10).FitScore(x));
  ASSERT_EQ(combined.size(), knn_ranks.size());
  for (size_t i = 0; i < combined.size(); ++i) {
    EXPECT_EQ(combined[i], 0.5 * (knn_ranks[i] + lof_ranks[i])) << i;
  }
}

TEST(ScoringDeterminismTest, GraphSnnOptMatchesSeedOnExampleGraph) {
  const Dataset d = GenExampleGraph({});
  std::vector<double> fast, seed;
  {
    ScopedScoringFastPath on(true);
    ScopedDegree degree(4);
    fast = GraphSnnEdgeWeights(d.graph, 1.0);
  }
  {
    ScopedScoringFastPath off(false);
    seed = GraphSnnEdgeWeights(d.graph, 1.0);
  }
  EXPECT_EQ(fast, seed);
  EXPECT_EQ(fast, reference::GraphSnnEdgeWeights(d.graph, 1.0));
}

TEST(ScoringDeterminismTest, ScoringStageProfileEmitsSubStageTimings) {
  Rng rng(7);
  const Matrix embeddings = Matrix::Gaussian(24, 4, &rng);
  std::vector<std::vector<int>> groups(24);
  for (int i = 0; i < 24; ++i) groups[i] = {i};
  TpGrGadOptions options;
  options.detector = DetectorKind::kLof;

  RunContext plain;
  ASSERT_TRUE(RunScoringStage(embeddings, groups, options, &plain).ok());
  ASSERT_EQ(plain.stage_timings().size(), 1u);
  EXPECT_EQ(plain.stage_timings()[0].stage, "scoring");

  RunContext profiled;
  profiled.profile = true;
  ASSERT_TRUE(RunScoringStage(embeddings, groups, options, &profiled).ok());
  std::vector<std::string> stages;
  for (const StageTiming& t : profiled.stage_timings()) {
    stages.push_back(t.stage);
  }
  EXPECT_EQ(stages, (std::vector<std::string>{"scoring/neighbors",
                                              "scoring/detect", "scoring"}));
}

}  // namespace
}  // namespace grgad
