// The evaluation protocol in depth: τ selection (mean + z·std), Jaccard
// matching strictness, CR monotonicity under the protocol, and stability
// across prediction orderings.
#include <algorithm>

#include <gtest/gtest.h>

#include "src/core/evaluation.h"
#include "src/data/example_graph.h"
#include "src/util/rng.h"

namespace grgad {
namespace {

Dataset TinyDataset() {
  Dataset d;
  d.name = "tiny";
  GraphBuilder b(20);
  for (int i = 0; i + 1 < 20; ++i) b.AddEdge(i, i + 1);
  d.graph = b.Build();
  d.anomaly_groups = {{2, 3, 4, 5}, {10, 11, 12}};
  d.group_patterns = {TopologyPattern::kPath, TopologyPattern::kPath};
  return d;
}

TEST(EvaluationProtocolTest, TauSelectsHighScorers) {
  const Dataset d = TinyDataset();
  std::vector<ScoredGroup> preds = {
      {{2, 3, 4, 5}, 10.0},   // True group, high score.
      {{10, 11, 12}, 9.0},    // True group, high score.
      {{0, 1}, 1.0},          // Distractors, low scores.
      {{6, 7}, 1.1},
      {{14, 15}, 0.9},
      {{16, 17}, 1.2},
  };
  const GroupEvaluation eval = EvaluateGroups(d, preds);
  EXPECT_EQ(eval.num_predicted_anomalous, 2);
  EXPECT_DOUBLE_EQ(eval.cr, 1.0);
  EXPECT_DOUBLE_EQ(eval.auc, 1.0);
  EXPECT_DOUBLE_EQ(eval.f1, 1.0);
  EXPECT_NEAR(eval.avg_predicted_size, 3.5, 1e-12);
}

TEST(EvaluationProtocolTest, ZThresholdControlsSelectivity) {
  const Dataset d = TinyDataset();
  std::vector<ScoredGroup> preds;
  // Linearly spread scores over 10 groups.
  for (int i = 0; i < 10; ++i) {
    preds.push_back({{i, i + 1, i + 2}, static_cast<double>(i)});
  }
  EvaluationOptions loose;
  loose.z_threshold = 0.0;  // Above the mean: ~half the groups.
  EvaluationOptions strict;
  strict.z_threshold = 1.4;
  const GroupEvaluation eval_loose = EvaluateGroups(d, preds, loose);
  const GroupEvaluation eval_strict = EvaluateGroups(d, preds, strict);
  EXPECT_GT(eval_loose.num_predicted_anomalous,
            eval_strict.num_predicted_anomalous);
  EXPECT_GT(eval_strict.num_predicted_anomalous, 0);
}

TEST(EvaluationProtocolTest, MatchJaccardStrictness) {
  const Dataset d = TinyDataset();
  // Candidate overlaps gt {2,3,4,5} with J = 3/5.
  std::vector<ScoredGroup> preds = {{{3, 4, 5, 6}, 5.0}, {{0, 1}, 0.1},
                                    {{14, 15}, 0.2}};
  EvaluationOptions loose;
  loose.match_jaccard = 0.5;
  EvaluationOptions strict;
  strict.match_jaccard = 0.9;
  EXPECT_GT(EvaluateGroups(d, preds, loose).f1, 0.0);
  EXPECT_DOUBLE_EQ(EvaluateGroups(d, preds, strict).f1, 0.0);
}

TEST(EvaluationProtocolTest, OrderInvariance) {
  const Dataset d = TinyDataset();
  std::vector<ScoredGroup> preds = {
      {{2, 3, 4, 5}, 3.0}, {{10, 11, 12}, 2.5}, {{0, 1, 2}, 0.5},
      {{7, 8, 9}, 0.4},    {{15, 16}, 0.6},
  };
  const GroupEvaluation a = EvaluateGroups(d, preds);
  Rng rng(3);
  rng.Shuffle(&preds);
  const GroupEvaluation b = EvaluateGroups(d, preds);
  EXPECT_DOUBLE_EQ(a.cr, b.cr);
  EXPECT_DOUBLE_EQ(a.f1, b.f1);
  EXPECT_DOUBLE_EQ(a.auc, b.auc);
  EXPECT_EQ(a.num_predicted_anomalous, b.num_predicted_anomalous);
}

TEST(EvaluationProtocolTest, ConstantScoresFallBackToAllCandidates) {
  const Dataset d = TinyDataset();
  std::vector<ScoredGroup> preds = {
      {{2, 3, 4, 5}, 1.0}, {{10, 11, 12}, 1.0}, {{0, 1, 2}, 1.0}};
  const GroupEvaluation eval = EvaluateGroups(d, preds);
  // mean + z*0 std = 1.0, nothing strictly above -> fallback to all.
  EXPECT_EQ(eval.num_predicted_anomalous, 0);
  EXPECT_DOUBLE_EQ(eval.cr, 1.0);  // Both gt groups present in the set.
}

TEST(EvaluationProtocolTest, CrMonotoneInPredictedSetQuality) {
  const Dataset d = TinyDataset();
  std::vector<ScoredGroup> weak = {{{2, 3}, 2.0}, {{0, 1}, 0.1},
                                   {{14, 15}, 0.1}};
  std::vector<ScoredGroup> strong = weak;
  strong[0] = {{2, 3, 4, 5}, 2.0};  // Exact group at the same score.
  EXPECT_GE(EvaluateGroups(d, strong).cr, EvaluateGroups(d, weak).cr);
}

// Parameterized: the protocol never produces out-of-range metrics for
// random prediction sets.
class ProtocolFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolFuzzTest, MetricsAlwaysInRange) {
  const Dataset d = GenExampleGraph({});
  Rng rng(500 + GetParam());
  std::vector<ScoredGroup> preds;
  const int m = 2 + static_cast<int>(rng.UniformInt(uint64_t{40}));
  for (int i = 0; i < m; ++i) {
    std::vector<int> nodes;
    const int size = 1 + static_cast<int>(rng.UniformInt(uint64_t{12}));
    for (int k = 0; k < size; ++k) {
      nodes.push_back(static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(d.graph.num_nodes()))));
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    preds.push_back({std::move(nodes), rng.Normal()});
  }
  const GroupEvaluation eval = EvaluateGroups(d, preds);
  EXPECT_GE(eval.cr, 0.0);
  EXPECT_LE(eval.cr, 1.0);
  EXPECT_GE(eval.f1, 0.0);
  EXPECT_LE(eval.f1, 1.0);
  EXPECT_GE(eval.auc, 0.0);
  EXPECT_LE(eval.auc, 1.0);
  EXPECT_GE(eval.avg_predicted_size, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, ProtocolFuzzTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace grgad
