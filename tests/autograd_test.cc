// Gradient correctness of every autograd op, checked against central finite
// differences, plus tape-mechanics tests (accumulation, reuse, topology).
#include "src/nn/autograd.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace grgad {
namespace {

/// Central-difference gradient of scalar_fn w.r.t. entry (i, j) of `at`.
double NumericalGrad(const std::function<double(const Matrix&)>& scalar_fn,
                     Matrix at, size_t i, size_t j, double h = 1e-6) {
  at(i, j) += h;
  const double up = scalar_fn(at);
  at(i, j) -= 2 * h;
  const double down = scalar_fn(at);
  return (up - down) / (2 * h);
}

/// Checks autograd gradient of `builder` (maps leaf Var -> scalar Var)
/// against finite differences at every coordinate of `x0`.
void CheckGradient(const std::function<Var(const Var&)>& builder,
                   const Matrix& x0, double tol = 1e-4) {
  Var leaf(x0, /*requires_grad=*/true);
  Var loss = builder(leaf);
  ASSERT_EQ(loss.rows(), 1u);
  ASSERT_EQ(loss.cols(), 1u);
  loss.Backward();
  const Matrix& analytic = leaf.grad();
  ASSERT_FALSE(analytic.empty());
  auto scalar_fn = [&builder](const Matrix& m) {
    Var v(m, /*requires_grad=*/false);
    return builder(v).item();
  };
  for (size_t i = 0; i < x0.rows(); ++i) {
    for (size_t j = 0; j < x0.cols(); ++j) {
      const double numeric = NumericalGrad(scalar_fn, x0, i, j);
      EXPECT_NEAR(analytic(i, j), numeric, tol)
          << "at (" << i << "," << j << ")";
    }
  }
}

Matrix RandomMatrix(size_t r, size_t c, uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  return Matrix::Gaussian(r, c, &rng, 0.0, scale);
}

TEST(AutogradBasics, LeafProperties) {
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  Var v(m, /*requires_grad=*/true);
  EXPECT_TRUE(v.defined());
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.rows(), 2u);
  EXPECT_EQ(v.cols(), 2u);
  EXPECT_TRUE(v.grad().empty());
  Var c2(m);
  EXPECT_FALSE(c2.requires_grad());
}

TEST(AutogradBasics, ItemRequiresScalar) {
  Var v(Matrix(1, 1, 3.5));
  EXPECT_DOUBLE_EQ(v.item(), 3.5);
}

TEST(AutogradBasics, BackwardSeedsWithOne) {
  Var v(Matrix(1, 1, 2.0), true);
  Var loss = Scale(v, 3.0);
  loss.Backward();
  EXPECT_DOUBLE_EQ(v.grad()(0, 0), 3.0);
}

TEST(AutogradBasics, GradAccumulatesAcrossBackwardCalls) {
  Var v(Matrix(1, 1, 2.0), true);
  for (int rep = 0; rep < 3; ++rep) {
    Var loss = Scale(v, 1.0);
    loss.Backward();
  }
  EXPECT_DOUBLE_EQ(v.grad()(0, 0), 3.0);
  v.ZeroGrad();
  EXPECT_TRUE(v.grad().empty());
}

TEST(AutogradBasics, DiamondGraphAccumulates) {
  // loss = sum(x) + sum(x) should give gradient 2 everywhere.
  Var x(Matrix(2, 2, 1.0), true);
  Var loss = Add(SumAll(x), SumAll(x));
  loss.Backward();
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) EXPECT_DOUBLE_EQ(x.grad()(i, j), 2.0);
  }
}

TEST(AutogradBasics, ConstantLeafGetsNoGrad) {
  Var c(Matrix(2, 2, 1.0), false);
  Var x(Matrix(2, 2, 1.0), true);
  Var loss = SumAll(Mul(c, x));
  loss.Backward();
  EXPECT_TRUE(c.grad().empty());
  EXPECT_FALSE(x.grad().empty());
}

TEST(AutogradGradients, MatMulLeft) {
  Matrix b = RandomMatrix(3, 2, 7);
  CheckGradient(
      [&b](const Var& x) {
        return SumSquares(MatMul(x, Var(b)));
      },
      RandomMatrix(4, 3, 1));
}

TEST(AutogradGradients, MatMulRight) {
  Matrix a = RandomMatrix(4, 3, 8);
  CheckGradient(
      [&a](const Var& x) {
        return SumSquares(MatMul(Var(a), x));
      },
      RandomMatrix(3, 2, 2));
}

TEST(AutogradGradients, Spmm) {
  auto s = std::make_shared<const SparseMatrix>(SparseMatrix::FromTriplets(
      3, 3, {{0, 1, 2.0}, {1, 0, -1.0}, {2, 2, 0.5}, {0, 0, 1.0}}));
  CheckGradient(
      [&s](const Var& x) { return SumSquares(Spmm(s, x)); },
      RandomMatrix(3, 2, 3));
}

TEST(AutogradGradients, AddSubMul) {
  Matrix other = RandomMatrix(3, 3, 9);
  CheckGradient(
      [&other](const Var& x) {
        Var o(other);
        return SumSquares(Mul(Add(x, o), Sub(x, o)));
      },
      RandomMatrix(3, 3, 4));
}

TEST(AutogradGradients, ScaleAndBias) {
  Matrix bias = RandomMatrix(1, 3, 10);
  CheckGradient(
      [&bias](const Var& x) {
        return SumSquares(AddRowBroadcast(Scale(x, -1.7), Var(bias)));
      },
      RandomMatrix(4, 3, 5));
}

TEST(AutogradGradients, BiasItself) {
  Matrix a = RandomMatrix(4, 3, 11);
  CheckGradient(
      [&a](const Var& b) {
        return SumSquares(AddRowBroadcast(Var(a), b));
      },
      RandomMatrix(1, 3, 6));
}

TEST(AutogradGradients, Relu) {
  CheckGradient([](const Var& x) { return SumSquares(Relu(x)); },
                RandomMatrix(3, 4, 12));
}

TEST(AutogradGradients, Sigmoid) {
  CheckGradient([](const Var& x) { return SumSquares(Sigmoid(x)); },
                RandomMatrix(3, 3, 13));
}

TEST(AutogradGradients, TanhOp) {
  CheckGradient([](const Var& x) { return SumSquares(Tanh(x)); },
                RandomMatrix(3, 3, 14));
}

TEST(AutogradGradients, ExpLog) {
  CheckGradient(
      [](const Var& x) { return SumAll(Log(Exp(x), 0.0)); },
      RandomMatrix(2, 3, 15, 0.3));
}

TEST(AutogradGradients, TransposeOp) {
  Matrix a = RandomMatrix(2, 3, 16);
  CheckGradient(
      [&a](const Var& x) {
        return SumSquares(MatMul(Var(a), Transpose(x)));
      },
      RandomMatrix(2, 3, 17));
}

TEST(AutogradGradients, MeanAllAndSumAll) {
  CheckGradient([](const Var& x) { return MeanAll(Mul(x, x)); },
                RandomMatrix(3, 5, 18));
}

TEST(AutogradGradients, MseLoss) {
  Matrix target = RandomMatrix(3, 3, 19);
  CheckGradient(
      [&target](const Var& x) { return MseLoss(Sigmoid(x), target); },
      RandomMatrix(3, 3, 20));
}

TEST(AutogradGradients, WeightedMseLoss) {
  Matrix target = RandomMatrix(3, 3, 21);
  Matrix weights = RandomMatrix(3, 3, 22).Map(
      [](double v) { return std::fabs(v) + 0.1; });
  CheckGradient(
      [&](const Var& x) { return WeightedMseLoss(x, target, weights); },
      RandomMatrix(3, 3, 23));
}

TEST(AutogradGradients, GatherRowsWithDuplicates) {
  CheckGradient(
      [](const Var& x) {
        return SumSquares(GatherRows(x, {0, 2, 2, 1}));
      },
      RandomMatrix(3, 3, 24));
}

TEST(AutogradGradients, MeanRowsReadout) {
  CheckGradient([](const Var& x) { return SumSquares(MeanRows(x)); },
                RandomMatrix(4, 3, 25));
}

TEST(AutogradGradients, StackRowsSplitsGradient) {
  Matrix m0 = RandomMatrix(1, 3, 26);
  CheckGradient(
      [&m0](const Var& x) {
        std::vector<Var> rows = {Var(m0), x, x};
        return SumSquares(StackRows(rows));
      },
      RandomMatrix(1, 3, 27));
}

TEST(AutogradGradients, ConcatColsBothSides) {
  Matrix other = RandomMatrix(3, 2, 28);
  CheckGradient(
      [&other](const Var& x) {
        return SumSquares(ConcatCols(x, Var(other)));
      },
      RandomMatrix(3, 2, 29));
  CheckGradient(
      [&other](const Var& x) {
        return SumSquares(ConcatCols(Var(other), x));
      },
      RandomMatrix(3, 4, 30));
}

TEST(AutogradGradients, ReshapeOp) {
  CheckGradient(
      [](const Var& x) {
        return SumSquares(Reshape(x, 2, 6));
      },
      RandomMatrix(3, 4, 31));
}

TEST(AutogradGradients, PairInnerProduct) {
  std::vector<std::pair<int, int>> pairs = {{0, 1}, {1, 2}, {0, 3}, {2, 2}};
  CheckGradient(
      [&pairs](const Var& z) {
        return SumSquares(Sigmoid(PairInnerProduct(z, pairs)));
      },
      RandomMatrix(4, 3, 32));
}

TEST(AutogradGradients, DiagMeanOp) {
  CheckGradient([](const Var& x) { return DiagMean(Mul(x, x)); },
                RandomMatrix(4, 4, 33));
}

TEST(AutogradGradients, MaskedLogSumExp) {
  std::vector<uint8_t> mask = {1, 0, 1, 1, 0, 1, 1, 0, 1};
  CheckGradient(
      [&mask](const Var& x) { return MaskedLogSumExp(x, mask); },
      RandomMatrix(3, 3, 34));
}

TEST(AutogradGradients, MaskedLogSumExpIsStableForLargeValues) {
  Matrix big(1, 3);
  big(0, 0) = 500.0;
  big(0, 1) = 501.0;
  big(0, 2) = 499.0;
  Var v(big, true);
  Var out = MaskedLogSumExp(v, {1, 1, 1});
  EXPECT_TRUE(std::isfinite(out.item()));
  EXPECT_NEAR(out.item(), 501.0 + std::log(std::exp(-1.0) + 1 +
                                            std::exp(-2.0)),
              1e-9);
  out.Backward();
  double grad_sum = 0.0;
  for (size_t j = 0; j < 3; ++j) grad_sum += v.grad()(0, j);
  EXPECT_NEAR(grad_sum, 1.0, 1e-9);  // Softmax weights sum to 1.
}

TEST(AutogradGradients, ComposedGcnLikeNetwork) {
  // A miniature GCN+readout+estimator stack, end to end.
  auto s = std::make_shared<const SparseMatrix>(SparseMatrix::FromTriplets(
      4, 4, {{0, 1, 0.5}, {1, 0, 0.5}, {2, 3, 0.7}, {3, 2, 0.7},
             {0, 0, 0.5}, {1, 1, 0.5}, {2, 2, 0.3}, {3, 3, 0.3}}));
  Matrix x = RandomMatrix(4, 3, 35);
  CheckGradient(
      [&](const Var& w) {
        Var h = Relu(Spmm(s, MatMul(Var(x), w)));
        Var pooled = MeanRows(h);
        return SumSquares(pooled);
      },
      RandomMatrix(3, 2, 36), 2e-4);
}

// Property sweep: SumSquares gradient == 2x for random shapes.
class SumSquaresParamTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SumSquaresParamTest, GradientIsTwiceInput) {
  const auto [r, c] = GetParam();
  Matrix m = RandomMatrix(r, c, 100 + r * 13 + c);
  Var v(m, true);
  SumSquares(v).Backward();
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) {
      EXPECT_NEAR(v.grad()(i, j), 2.0 * m(i, j), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SumSquaresParamTest,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(1, 7),
                      std::make_pair(5, 1), std::make_pair(3, 4),
                      std::make_pair(8, 8)));

}  // namespace
}  // namespace grgad
