// Ethereum phishing rings: tree- and cycle-shaped scam groups in an
// account-transaction graph, with a detector swap (LOF instead of ECOD) and
// a look at the topology-pattern evidence TPGCL exploits.
//
//   $ ./build/examples/ethereum_phishing
#include <algorithm>
#include <cstdio>

#include "src/core/evaluation.h"
#include "src/core/pipeline.h"
#include "src/data/ethereum.h"
#include "src/data/io.h"
#include "src/sampling/pattern_search.h"

int main() {
  using namespace grgad;

  DatasetOptions data_options;
  data_options.seed = 99;
  const Dataset dataset = GenEthereum(data_options);
  std::printf("ethereum subgraph: %d accounts, %d transactions, "
              "%zu phishing groups\n",
              dataset.graph.num_nodes(), dataset.graph.num_edges(),
              dataset.anomaly_groups.size());

  // Ground-truth pattern mix (the Table II observation the method relies on).
  int pattern_counts[4] = {0, 0, 0, 0};
  for (const auto& group : dataset.anomaly_groups) {
    const Graph sub = dataset.graph.InducedSubgraph(group);
    pattern_counts[static_cast<int>(ClassifyGroupPattern(sub))]++;
  }
  std::printf("ground-truth pattern mix: %d paths, %d trees, %d cycles, "
              "%d mixed\n",
              pattern_counts[0], pattern_counts[1], pattern_counts[2],
              pattern_counts[3]);

  // Run the pipeline twice, swapping only the outlier detector: the group
  // embeddings are detector-agnostic.
  for (DetectorKind kind : {DetectorKind::kEcod, DetectorKind::kLof}) {
    TpGrGadOptions options;
    options.seed = 3;
    options.mh_gae.base.epochs = 50;
    options.tpgcl.epochs = 40;
    options.detector = kind;
    options.ReseedStages();
    TpGrGad detector(options);
    const GroupEvaluation eval =
        EvaluateGroups(dataset, detector.DetectGroups(dataset.graph));
    std::printf("detector=%-7s -> CR %.3f | F1 %.3f | AUC %.3f\n",
                kind == DetectorKind::kEcod ? "ecod" : "lof", eval.cr,
                eval.f1, eval.auc);
  }

  // Persist the graph so the rings can be inspected with external tooling.
  const Status s = SaveDataset(dataset, "ethereum_snapshot");
  std::printf("%s\n", s.ok()
                          ? "wrote ethereum_snapshot.{edges,attrs,groups}"
                          : s.ToString().c_str());
  return 0;
}
