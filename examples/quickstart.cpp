// Quickstart: run TP-GrGAD end to end on a small synthetic graph with three
// planted anomaly groups and print what it finds.
//
//   $ ./build/example_quickstart
//
// Walks through the public API in the order a new user meets it: build (or
// load) an attributed Graph, configure TpGrGadOptions, run the pipeline
// through a RunContext (progress + per-stage timing + cancellation), and
// inspect the scored groups and intermediate artifacts.
#include <algorithm>
#include <cstdio>

#include "src/core/evaluation.h"
#include "src/core/pipeline.h"
#include "src/data/example_graph.h"

int main() {
  using namespace grgad;

  // 1. A dataset: 110-node graph, three planted groups (path/tree/cycle).
  //    Swap in data::LoadDataset(...) to run on your own edge lists.
  DatasetOptions data_options;
  data_options.seed = 42;
  const Dataset dataset = GenExampleGraph(data_options);
  std::printf("graph: %d nodes / %d edges / %zu-d attributes\n",
              dataset.graph.num_nodes(), dataset.graph.num_edges(),
              dataset.graph.attr_dim());

  // 2. Configure the pipeline. Defaults follow the paper (2-layer GCNs,
  //    64-d embeddings, top-10%% anchors, ECOD detector); we shrink the
  //    network a little for this toy graph. Setting `seed` is enough —
  //    TpGrGad's constructor propagates it into every stage.
  TpGrGadOptions options;
  options.seed = 7;
  options.mh_gae.base.hidden_dim = 32;
  options.mh_gae.base.embed_dim = 16;
  options.mh_gae.anchor_fraction = 0.15;
  options.tpgcl.hidden_dim = 32;
  options.tpgcl.embed_dim = 16;

  // 3. Run through a RunContext: progress events as each stage starts and
  //    finishes, per-stage wall times afterwards, and ctx.RequestCancel()
  //    (e.g. from a signal handler) stops the run cooperatively. TryRun
  //    reports bad input as a Status; DetectGroups() returns just the
  //    scored groups when none of this is needed.
  TpGrGad detector(options);
  RunContext ctx;
  // Timings go to stderr so stdout stays byte-identical across runs.
  ctx.on_progress = [](const StageEvent& event) {
    if (event.finished) {
      std::fprintf(stderr, "  [%s stage: %.2fs]\n", event.stage.c_str(),
                   event.seconds);
    }
  };
  auto result = detector.TryRun(dataset.graph, &ctx);
  if (!result.ok()) {
    std::printf("pipeline failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  const PipelineArtifacts& artifacts = result.value();
  std::printf("stage 1: %zu anchor nodes\n", artifacts.anchors.size());
  std::printf("stage 2: %zu candidate groups\n",
              artifacts.candidate_groups.size());
  std::printf("stage 3: %zux%zu group embeddings\n",
              artifacts.group_embeddings.rows(),
              artifacts.group_embeddings.cols());

  // 4. Top-scored groups.
  std::vector<ScoredGroup> groups = artifacts.scored_groups;
  std::sort(groups.begin(), groups.end(),
            [](const ScoredGroup& a, const ScoredGroup& b) {
              return a.score > b.score;
            });
  std::printf("\ntop 5 groups by anomaly score:\n");
  for (size_t i = 0; i < std::min<size_t>(5, groups.size()); ++i) {
    std::printf("  score %7.3f  nodes {", groups[i].score);
    for (size_t k = 0; k < groups[i].nodes.size(); ++k) {
      std::printf("%s%d", k ? "," : "", groups[i].nodes[k]);
    }
    std::printf("}\n");
  }

  // 5. Since this dataset has ground truth, evaluate like the paper does.
  const GroupEvaluation eval = EvaluateGroups(dataset, artifacts.scored_groups);
  std::printf("\nevaluation: CR %.3f | F1 %.3f | AUC %.3f\n", eval.cr,
              eval.f1, eval.auc);
  return 0;
}
