// Bring-your-own-graph: run TP-GrGAD on data loaded from disk.
//
//   $ ./build/examples/custom_data [prefix]
//
// With no argument, writes a small demo dataset to /tmp and reloads it —
// exactly the flow a user follows with their own edge list + attribute CSV:
//
//   my_graph.edges   "u v" per line
//   my_graph.attrs   one CSV row of doubles per node
//   my_graph.groups  (optional, for evaluation) "pattern: id id ..." lines
#include <cstdio>
#include <string>

#include "src/core/evaluation.h"
#include "src/core/pipeline.h"
#include "src/data/io.h"
#include "src/data/simml.h"

int main(int argc, char** argv) {
  using namespace grgad;
  std::string prefix;
  if (argc > 1) {
    prefix = argv[1];
  } else {
    // Demo: persist a small simML instance and pretend it is user data.
    prefix = "/tmp/grgad_custom_demo";
    DatasetOptions demo;
    demo.seed = 5;
    demo.scale = 0.25;
    const Status s = SaveDataset(GenSimMl(demo), prefix);
    if (!s.ok()) {
      std::printf("could not write demo data: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("(no prefix given; wrote demo data to %s.*)\n",
                prefix.c_str());
  }

  Result<Dataset> loaded = LoadDataset(prefix, "custom");
  if (!loaded.ok()) {
    std::printf("failed to load %s.*: %s\n", prefix.c_str(),
                loaded.status().ToString().c_str());
    return 1;
  }
  Dataset& dataset = loaded.value();
  if (!dataset.graph.has_attributes()) {
    std::printf("no %s.attrs found — TP-GrGAD needs node attributes\n",
                prefix.c_str());
    return 1;
  }
  std::printf("loaded: %d nodes, %d edges, %zu-d attributes, %zu labeled "
              "groups\n",
              dataset.graph.num_nodes(), dataset.graph.num_edges(),
              dataset.graph.attr_dim(), dataset.anomaly_groups.size());

  TpGrGadOptions options;
  options.seed = 11;
  options.mh_gae.base.epochs = 50;
  options.tpgcl.epochs = 40;
  options.ReseedStages();
  TpGrGad detector(options);
  const auto groups = detector.DetectGroups(dataset.graph);
  std::printf("detected %zu candidate groups\n", groups.size());

  if (!dataset.anomaly_groups.empty()) {
    const GroupEvaluation eval = EvaluateGroups(dataset, groups);
    std::printf("against provided labels: CR %.3f | F1 %.3f | AUC %.3f\n",
                eval.cr, eval.f1, eval.auc);
  } else {
    double best = 0.0;
    for (const auto& g : groups) best = std::max(best, g.score);
    std::printf("no labels provided; highest anomaly score %.3f\n", best);
  }
  return 0;
}
