// AML investigation: detect money-laundering chains in a bank transaction
// graph (the paper's motivating scenario, Fig. 1).
//
//   $ ./build/examples/aml_investigation [scale]
//
// Runs TP-GrGAD against an AMLPublic-style graph whose laundering rings are
// long transaction paths, contrasts it with a node-level detector piped
// through connected components (what an off-the-shelf N-GAD deployment
// does), and writes the flagged rings to aml_flagged_groups.csv for a case
// management system.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/baselines/group_extraction.h"
#include "src/core/evaluation.h"
#include "src/core/pipeline.h"
#include "src/data/aml_public.h"
#include "src/gae/dominant.h"
#include "src/sampling/pattern_search.h"
#include "src/util/csv.h"

int main(int argc, char** argv) {
  using namespace grgad;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.5;

  DatasetOptions data_options;
  data_options.seed = 2024;
  data_options.scale = scale;
  const Dataset dataset = GenAmlPublic(data_options);
  std::printf("transaction graph: %d accounts, %d transfers, "
              "%zu laundering rings (avg %.1f accounts each)\n",
              dataset.graph.num_nodes(), dataset.graph.num_edges(),
              dataset.anomaly_groups.size(), dataset.AverageGroupSize());

  // --- TP-GrGAD, tuned for chain-shaped groups: deeper path budget. ---
  TpGrGadOptions options;
  options.seed = 1;
  options.mh_gae.base.epochs = 50;
  options.sampler.max_group_size = 32;  // Rings run ~19 accounts long.
  options.tpgcl.epochs = 40;
  options.ReseedStages();
  TpGrGad detector(options);
  const auto groups = detector.DetectGroups(dataset.graph);
  const GroupEvaluation ours = EvaluateGroups(dataset, groups);

  // --- What a node-level deployment would find. ---
  GaeOptions gae;
  gae.epochs = 50;
  NodeScorerGroupAdapter node_level(std::make_shared<Dominant>(gae));
  const GroupEvaluation theirs =
      EvaluateGroups(dataset, node_level.DetectGroups(dataset.graph));

  std::printf("\n%-22s %8s %8s %8s %10s\n", "method", "CR", "F1", "AUC",
              "avg size");
  std::printf("%-22s %8.3f %8.3f %8.3f %10.2f\n", "tp-grgad", ours.cr,
              ours.f1, ours.auc, ours.avg_predicted_size);
  std::printf("%-22s %8.3f %8.3f %8.3f %10.2f\n", "dominant+components",
              theirs.cr, theirs.f1, theirs.auc, theirs.avg_predicted_size);

  // --- Export the top flagged rings with their topology classification. ---
  std::vector<ScoredGroup> ranked = groups;
  std::sort(ranked.begin(), ranked.end(),
            [](const ScoredGroup& a, const ScoredGroup& b) {
              return a.score > b.score;
            });
  CsvWriter csv({"rank", "score", "pattern", "num_accounts", "accounts"});
  const size_t top_k = std::min<size_t>(20, ranked.size());
  std::printf("\ntop flagged rings:\n");
  for (size_t i = 0; i < top_k; ++i) {
    const Graph sub = dataset.graph.InducedSubgraph(ranked[i].nodes);
    const char* pattern = ToString(ClassifyGroupPattern(sub));
    if (i < 5) {
      std::printf("  #%zu score %.3f  %s of %zu accounts\n", i + 1,
                  ranked[i].score, pattern, ranked[i].nodes.size());
    }
    std::string accounts;
    for (int v : ranked[i].nodes) {
      if (!accounts.empty()) accounts += ' ';
      accounts += std::to_string(v);
    }
    csv.AppendRow({std::to_string(i + 1), FormatDouble(ranked[i].score),
                   pattern, std::to_string(ranked[i].nodes.size()),
                   accounts});
  }
  const Status s = csv.WriteFile("aml_flagged_groups.csv");
  std::printf("\n%s\n", s.ok() ? "wrote aml_flagged_groups.csv"
                               : s.ToString().c_str());
  return 0;
}
