// Table V reproduction: TPGCL ablation. F1 of the full pipeline vs the
// pipeline with TPGCL removed (candidate groups represented by their mean
// attribute vector, fed directly to ECOD). Paper shape: removing TPGCL
// collapses F1 on every dataset.
#include "bench/bench_common.h"

namespace grgad::bench {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  Banner("Table V: TPGCL ablation (F1)");
  std::printf("%-16s %18s %14s\n", "Dataset", "w/o TPGCL", "TP-GrGAD");
  CsvWriter csv({"dataset", "variant", "f1", "cr", "auc"});
  for (const std::string& dataset_name : BenchDatasets()) {
    Dataset dataset;
    if (!LoadBenchDataset(dataset_name, &dataset)) return 1;
    double f1[2] = {0.0, 0.0};
    for (int variant = 0; variant < 2; ++variant) {
      TpGrGadOptions options = MakeTpGrGadOptions(config, 1000);
      options.disable_tpgcl = (variant == 0);
      TpGrGad method(options);
      const GroupEvaluation eval =
          EvaluateGroups(dataset, method.DetectGroups(dataset.graph));
      f1[variant] = eval.f1;
      csv.AppendRow({dataset_name, variant == 0 ? "without_tpgcl" : "full",
                     FormatDouble(eval.f1), FormatDouble(eval.cr),
                     FormatDouble(eval.auc)});
    }
    std::printf("%-16s %18.3f %14.3f\n", dataset_name.c_str(), f1[0], f1[1]);
  }
  EmitCsv(csv, "table5_tpgcl.csv");
  return 0;
}

}  // namespace
}  // namespace grgad::bench

int main() { return grgad::bench::Run(); }
