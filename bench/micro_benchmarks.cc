// google-benchmark microbenchmarks for the substrates: dense/sparse linear
// algebra, graph algorithms, GraphSNN weighting, detectors, and one TPGCL
// training epoch. These are throughput references, not paper figures.
#include <benchmark/benchmark.h>

#include "src/data/example_graph.h"
#include "src/gcl/tpgcl.h"
#include "src/graph/algorithms.h"
#include "src/graph/graphsnn.h"
#include "src/graph/operators.h"
#include "src/od/ecod.h"
#include "src/od/iforest.h"
#include "src/sampling/pattern_search.h"
#include "src/tensor/matrix.h"
#include "src/util/rng.h"
#include "src/viz/tsne.h"

namespace grgad {
namespace {

Matrix RandomMatrix(size_t r, size_t c, uint64_t seed) {
  Rng rng(seed);
  return Matrix::Gaussian(r, c, &rng);
}

Graph BenchGraph(int n, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (int v = 1; v < n; ++v) {
    b.AddEdge(v, static_cast<int>(rng.UniformInt(static_cast<uint64_t>(v))));
  }
  for (int e = 0; e < n; ++e) {
    const int u = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    if (u != v) b.AddEdge(u, v);
  }
  Matrix x = Matrix::Gaussian(n, 16, &rng);
  return b.Build(std::move(x));
}

void BM_DenseMatMul(benchmark::State& state) {
  const size_t n = state.range(0);
  Matrix a = RandomMatrix(n, n, 1);
  Matrix b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_DenseMatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_TallSkinnyMatMul(benchmark::State& state) {
  // The GCN shape: (n x d) * (d x h).
  Matrix a = RandomMatrix(4096, 256, 3);
  Matrix b = RandomMatrix(256, 64, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
}
BENCHMARK(BM_TallSkinnyMatMul);

void BM_Spmm(benchmark::State& state) {
  const int n = state.range(0);
  Graph g = BenchGraph(n, 5);
  auto op = NormalizedAdjacency(g);
  Matrix x = RandomMatrix(n, 64, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Spmm(x));
  }
  state.SetItemsProcessed(state.iterations() * op->nnz() * 64);
}
BENCHMARK(BM_Spmm)->Arg(1000)->Arg(10000);

void BM_BfsDistances(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BfsDistances(g, 0));
  }
}
BENCHMARK(BM_BfsDistances)->Arg(1000)->Arg(10000);

void BM_CyclesThrough(benchmark::State& state) {
  Graph g = BenchGraph(2000, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CyclesThrough(g, 0, 8, 32));
  }
}
BENCHMARK(BM_CyclesThrough);

void BM_GraphSnnWeights(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GraphSnnAdjacency(g));
  }
}
BENCHMARK(BM_GraphSnnWeights)->Arg(1000)->Arg(5000);

void BM_StandardizedPower(benchmark::State& state) {
  Graph g = BenchGraph(2000, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(StandardizedPower(g, state.range(0)));
  }
}
BENCHMARK(BM_StandardizedPower)->Arg(3)->Arg(5)->Arg(7);

void BM_PatternSearch(benchmark::State& state) {
  Graph g = BenchGraph(200, 11);
  std::vector<int> group;
  for (int v = 0; v < 24; ++v) group.push_back(v);
  Graph sub = g.InducedSubgraph(group);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SearchPatterns(sub));
  }
}
BENCHMARK(BM_PatternSearch);

void BM_Ecod(benchmark::State& state) {
  Matrix x = RandomMatrix(state.range(0), 64, 12);
  Ecod ecod;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecod.FitScore(x));
  }
}
BENCHMARK(BM_Ecod)->Arg(256)->Arg(1024);

void BM_IsolationForest(benchmark::State& state) {
  Matrix x = RandomMatrix(512, 64, 13);
  IsolationForestOptions options;
  options.num_trees = 50;
  IsolationForest forest(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.FitScore(x));
  }
}
BENCHMARK(BM_IsolationForest);

void BM_TsneIterations(benchmark::State& state) {
  Matrix x = RandomMatrix(128, 32, 14);
  TsneOptions options;
  options.iterations = 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tsne(x, options));
  }
}
BENCHMARK(BM_TsneIterations);

void BM_TpgclEpoch(benchmark::State& state) {
  DatasetOptions data_options;
  data_options.seed = 1;
  const Dataset d = GenExampleGraph(data_options);
  std::vector<std::vector<int>> candidates = d.anomaly_groups;
  for (int i = 0; i < 20; ++i) {
    candidates.push_back({i, i + 1, i + 2, i + 3});
  }
  for (auto _ : state) {
    TpgclOptions options;
    options.epochs = 1;
    Tpgcl tpgcl(options);
    benchmark::DoNotOptimize(tpgcl.FitEmbed(d.graph, candidates));
  }
}
BENCHMARK(BM_TpgclEpoch);

}  // namespace
}  // namespace grgad

BENCHMARK_MAIN();
