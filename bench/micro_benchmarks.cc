// google-benchmark microbenchmarks for the substrates: dense/sparse linear
// algebra, graph algorithms, GraphSNN weighting, detectors, and one TPGCL
// training epoch. These are throughput references, not paper figures.
//
// Before the google-benchmark suites run, main() times the optimized tensor
// kernels against the seed serial reference kernels on the training-hot
// shapes and writes the results to bench_results/micro.json (schema in
// PERF.md), giving every PR a machine-readable before/after perf trajectory.
// Set GRGAD_MICRO_JSON=0 to skip that phase, and GRGAD_MICRO_JSON_ONLY=1 to
// run only it.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "src/data/example_graph.h"
#include "src/gcl/tpgcl.h"
#include "src/graph/algorithms.h"
#include "src/graph/graphsnn.h"
#include "src/graph/operators.h"
#include "src/od/ecod.h"
#include "src/od/iforest.h"
#include "src/sampling/pattern_search.h"
#include "src/tensor/matrix.h"
#include "src/tensor/reference_kernels.h"
#include "src/tensor/sparse.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"
#include "src/util/timer.h"
#include "src/viz/tsne.h"

namespace grgad {
namespace {

Matrix RandomMatrix(size_t r, size_t c, uint64_t seed) {
  Rng rng(seed);
  return Matrix::Gaussian(r, c, &rng);
}

Graph BenchGraph(int n, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (int v = 1; v < n; ++v) {
    b.AddEdge(v, static_cast<int>(rng.UniformInt(static_cast<uint64_t>(v))));
  }
  for (int e = 0; e < n; ++e) {
    const int u = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    if (u != v) b.AddEdge(u, v);
  }
  Matrix x = Matrix::Gaussian(n, 16, &rng);
  return b.Build(std::move(x));
}

void BM_DenseMatMul(benchmark::State& state) {
  const size_t n = state.range(0);
  Matrix a = RandomMatrix(n, n, 1);
  Matrix b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_DenseMatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_TallSkinnyMatMul(benchmark::State& state) {
  // The GCN shape: (n x d) * (d x h).
  Matrix a = RandomMatrix(4096, 256, 3);
  Matrix b = RandomMatrix(256, 64, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
}
BENCHMARK(BM_TallSkinnyMatMul);

void BM_Spmm(benchmark::State& state) {
  const int n = state.range(0);
  Graph g = BenchGraph(n, 5);
  auto op = NormalizedAdjacency(g);
  Matrix x = RandomMatrix(n, 64, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Spmm(x));
  }
  state.SetItemsProcessed(state.iterations() * op->nnz() * 64);
}
BENCHMARK(BM_Spmm)->Arg(1000)->Arg(10000);

void BM_BfsDistances(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BfsDistances(g, 0));
  }
}
BENCHMARK(BM_BfsDistances)->Arg(1000)->Arg(10000);

void BM_CyclesThrough(benchmark::State& state) {
  Graph g = BenchGraph(2000, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CyclesThrough(g, 0, 8, 32));
  }
}
BENCHMARK(BM_CyclesThrough);

void BM_GraphSnnWeights(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GraphSnnAdjacency(g));
  }
}
BENCHMARK(BM_GraphSnnWeights)->Arg(1000)->Arg(5000);

void BM_StandardizedPower(benchmark::State& state) {
  Graph g = BenchGraph(2000, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(StandardizedPower(g, state.range(0)));
  }
}
BENCHMARK(BM_StandardizedPower)->Arg(3)->Arg(5)->Arg(7);

void BM_PatternSearch(benchmark::State& state) {
  Graph g = BenchGraph(200, 11);
  std::vector<int> group;
  for (int v = 0; v < 24; ++v) group.push_back(v);
  Graph sub = g.InducedSubgraph(group);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SearchPatterns(sub));
  }
}
BENCHMARK(BM_PatternSearch);

void BM_Ecod(benchmark::State& state) {
  Matrix x = RandomMatrix(state.range(0), 64, 12);
  Ecod ecod;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecod.FitScore(x));
  }
}
BENCHMARK(BM_Ecod)->Arg(256)->Arg(1024);

void BM_IsolationForest(benchmark::State& state) {
  Matrix x = RandomMatrix(512, 64, 13);
  IsolationForestOptions options;
  options.num_trees = 50;
  IsolationForest forest(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.FitScore(x));
  }
}
BENCHMARK(BM_IsolationForest);

void BM_TsneIterations(benchmark::State& state) {
  Matrix x = RandomMatrix(128, 32, 14);
  TsneOptions options;
  options.iterations = 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tsne(x, options));
  }
}
BENCHMARK(BM_TsneIterations);

void BM_TpgclEpoch(benchmark::State& state) {
  DatasetOptions data_options;
  data_options.seed = 1;
  const Dataset d = GenExampleGraph(data_options);
  std::vector<std::vector<int>> candidates = d.anomaly_groups;
  for (int i = 0; i < 20; ++i) {
    candidates.push_back({i, i + 1, i + 2, i + 3});
  }
  for (auto _ : state) {
    TpgclOptions options;
    options.epochs = 1;
    Tpgcl tpgcl(options);
    benchmark::DoNotOptimize(tpgcl.FitEmbed(d.graph, candidates));
  }
}
BENCHMARK(BM_TpgclEpoch);

// ---------------------------------------------------------------------------
// Seed-vs-optimized kernel comparison -> bench_results/micro.json.
// ---------------------------------------------------------------------------

struct KernelResult {
  std::string name;
  std::string shape;
  double seed_ms = 0.0;
  double opt_ms = 0.0;
};

/// Median-of-reps wall-clock milliseconds for one call of f (after a warmup
/// call, which also populates caches like the SpmmTransposeThis transpose).
template <typename F>
double MedianMs(F&& f) {
  f();  // Warmup.
  std::vector<double> samples;
  Timer total;
  // At least 5 samples; keep sampling up to ~0.6 s for stable medians.
  while (samples.size() < 5 ||
         (total.ElapsedMillis() < 600.0 && samples.size() < 25)) {
    Timer t;
    f();
    samples.push_back(t.ElapsedMillis());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

SparseMatrix BenchAdjacency(int n, int avg_degree, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  t.reserve(static_cast<size_t>(n) * avg_degree);
  for (int e = 0; e < n * avg_degree; ++e) {
    const int u = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    t.push_back({u, v, 1.0});
  }
  return SparseMatrix::FromTriplets(n, n, std::move(t));
}

std::vector<KernelResult> CompareKernels() {
  std::vector<KernelResult> results;
  auto add = [&](std::string name, std::string shape, auto&& seed_fn,
                 auto&& opt_fn) {
    KernelResult r;
    r.name = std::move(name);
    r.shape = std::move(shape);
    r.seed_ms = MedianMs(seed_fn);
    r.opt_ms = MedianMs(opt_fn);
    std::printf("  %-24s %-24s seed %8.3f ms   opt %8.3f ms   %.2fx\n",
                r.name.c_str(), r.shape.c_str(), r.seed_ms, r.opt_ms,
                r.seed_ms / r.opt_ms);
    results.push_back(std::move(r));
  };

  // Dense kernels on the acceptance shape and the GCN tall-skinny shape.
  {
    Matrix a = RandomMatrix(512, 512, 21);
    Matrix b = RandomMatrix(512, 512, 22);
    add(
        "matmul", "512x512x512",
        [&] { benchmark::DoNotOptimize(reference::MatMul(a, b)); },
        [&] { benchmark::DoNotOptimize(MatMul(a, b)); });
    add(
        "matmul_transpose_b", "512x512x512",
        [&] { benchmark::DoNotOptimize(reference::MatMulTransposeB(a, b)); },
        [&] { benchmark::DoNotOptimize(MatMulTransposeB(a, b)); });
    add(
        "matmul_transpose_a", "512x512x512",
        [&] { benchmark::DoNotOptimize(reference::MatMulTransposeA(a, b)); },
        [&] { benchmark::DoNotOptimize(MatMulTransposeA(a, b)); });
    add(
        "transpose", "512x512",
        [&] { benchmark::DoNotOptimize(reference::Transpose(a)); },
        [&] { benchmark::DoNotOptimize(a.Transpose()); });
  }
  {
    Matrix a = RandomMatrix(4096, 256, 23);
    Matrix b = RandomMatrix(256, 64, 24);
    add(
        "matmul", "4096x256x64",
        [&] { benchmark::DoNotOptimize(reference::MatMul(a, b)); },
        [&] { benchmark::DoNotOptimize(MatMul(a, b)); });
  }

  // Sparse kernels on a 10k-node adjacency with 64-wide features (the GCN
  // message-passing shape) — forward and the autograd backward.
  {
    SparseMatrix s = BenchAdjacency(10000, 4, 25);
    Matrix x = RandomMatrix(10000, 64, 26);
    add(
        "spmm", "10000x10000(nnz~40k)x64",
        [&] { benchmark::DoNotOptimize(reference::Spmm(s, x)); },
        [&] { benchmark::DoNotOptimize(s.Spmm(x)); });
    add(
        "spmm_transpose_this", "10000x10000(nnz~40k)x64",
        [&] { benchmark::DoNotOptimize(reference::SpmmTransposeThis(s, x)); },
        [&] { benchmark::DoNotOptimize(s.SpmmTransposeThis(x)); });
  }

  // Elementwise map: the seed's per-element std::function dispatch vs the
  // inlined MapFn fast path used by autograd's ReLU/Sigmoid/Tanh.
  {
    Matrix x = RandomMatrix(2048, 256, 27);
    const std::function<double(double)> relu = [](double v) {
      return v > 0.0 ? v : 0.0;
    };
    add(
        "map_relu", "2048x256",
        [&] { benchmark::DoNotOptimize(reference::Map(x, relu)); },
        [&] {
          benchmark::DoNotOptimize(
              x.MapFn([](double v) { return v > 0.0 ? v : 0.0; }));
        });
  }
  return results;
}

void WriteMicroJson() {
  std::printf("Kernel comparison (seed serial reference vs optimized), "
              "GRGAD_THREADS=%d\n", ParallelismDegree());
  const std::vector<KernelResult> results = CompareKernels();
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  const char* path = "bench_results/micro.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("  !! could not write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"grgad-micro-v1\",\n");
  std::fprintf(f, "  \"threads\": %d,\n", ParallelismDegree());
  std::fprintf(f, "  \"kernels\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"shape\": \"%s\", "
                 "\"seed_ms\": %.6f, \"opt_ms\": %.6f, \"speedup\": %.3f}%s\n",
                 r.name.c_str(), r.shape.c_str(), r.seed_ms, r.opt_ms,
                 r.seed_ms / r.opt_ms, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  -> wrote %s\n", path);
}

}  // namespace
}  // namespace grgad

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* json_env = std::getenv("GRGAD_MICRO_JSON");
  if (json_env == nullptr || json_env[0] != '0') {
    grgad::WriteMicroJson();
  }
  const char* only_env = std::getenv("GRGAD_MICRO_JSON_ONLY");
  if (only_env != nullptr && only_env[0] == '1') return 0;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
