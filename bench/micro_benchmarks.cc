// google-benchmark microbenchmarks for the substrates: dense/sparse linear
// algebra, graph algorithms, GraphSNN weighting, detectors, and one TPGCL
// training epoch. These are throughput references, not paper figures.
//
// Before the google-benchmark suites run, main() compares seed vs optimized
// on six axes — end-to-end training epochs, the candidate stage (frozen
// serial sampler/pattern/augment paths vs the workspace/view fast path),
// the scoring stage (frozen seed detectors vs the GEMM/parallel fast path),
// the tensor kernels on the training-hot shapes, the resident daemon's
// round-trip latency, and the mutation fast path (slack-CSR apply, ball
// invalidation, dirty-anchor incremental refresh vs full recompute) — and
// writes the results to bench_results/micro.json (schema in PERF.md),
// giving every PR a machine-readable before/after perf trajectory.
// Set GRGAD_MICRO_JSON=0 to skip that phase, and GRGAD_MICRO_JSON_ONLY=1 to
// run only it.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/refresh.h"
#include "src/data/example_graph.h"
#include "src/gae/gae_base.h"
#include "src/graph/dynamic_graph.h"
#include "src/gcl/augmentations.h"
#include "src/gcl/tpgcl.h"
#include "src/graph/algorithms.h"
#include "src/graph/graphsnn.h"
#include "src/graph/operators.h"
#include "src/graph/subgraph_view.h"
#include "src/graph/traversal_workspace.h"
#include "src/sampling/dirty_tracker.h"
#include "src/sampling/group_sampler.h"
#include "src/od/ecod.h"
#include "src/od/iforest.h"
#include "src/od/knn.h"
#include "src/od/lof.h"
#include "src/od/reference_detectors.h"
#include "src/sampling/pattern_search.h"
#include "src/serve/server.h"
#include "src/serve/wal.h"
#include "src/tensor/arena.h"
#include "src/tensor/matrix.h"
#include "src/tensor/reference_kernels.h"
#include "src/tensor/sparse.h"
#include "src/util/fastpath.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"
#include "src/util/timer.h"
#include "src/viz/tsne.h"

namespace grgad {
namespace {

Matrix RandomMatrix(size_t r, size_t c, uint64_t seed) {
  Rng rng(seed);
  return Matrix::Gaussian(r, c, &rng);
}

Graph BenchGraph(int n, uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (int v = 1; v < n; ++v) {
    b.AddEdge(v, static_cast<int>(rng.UniformInt(static_cast<uint64_t>(v))));
  }
  for (int e = 0; e < n; ++e) {
    const int u = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    if (u != v) b.AddEdge(u, v);
  }
  Matrix x = Matrix::Gaussian(n, 16, &rng);
  return b.Build(std::move(x));
}

void BM_DenseMatMul(benchmark::State& state) {
  const size_t n = state.range(0);
  Matrix a = RandomMatrix(n, n, 1);
  Matrix b = RandomMatrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_DenseMatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_TallSkinnyMatMul(benchmark::State& state) {
  // The GCN shape: (n x d) * (d x h).
  Matrix a = RandomMatrix(4096, 256, 3);
  Matrix b = RandomMatrix(256, 64, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
}
BENCHMARK(BM_TallSkinnyMatMul);

void BM_Spmm(benchmark::State& state) {
  const int n = state.range(0);
  Graph g = BenchGraph(n, 5);
  auto op = NormalizedAdjacency(g);
  Matrix x = RandomMatrix(n, 64, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Spmm(x));
  }
  state.SetItemsProcessed(state.iterations() * op->nnz() * 64);
}
BENCHMARK(BM_Spmm)->Arg(1000)->Arg(10000);

void BM_BfsDistances(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BfsDistances(g, 0));
  }
}
BENCHMARK(BM_BfsDistances)->Arg(1000)->Arg(10000);

void BM_CyclesThrough(benchmark::State& state) {
  Graph g = BenchGraph(2000, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CyclesThrough(g, 0, 8, 32));
  }
}
BENCHMARK(BM_CyclesThrough);

void BM_GraphSnnWeights(benchmark::State& state) {
  Graph g = BenchGraph(state.range(0), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GraphSnnAdjacency(g));
  }
}
BENCHMARK(BM_GraphSnnWeights)->Arg(1000)->Arg(5000);

void BM_StandardizedPower(benchmark::State& state) {
  Graph g = BenchGraph(2000, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(StandardizedPower(g, state.range(0)));
  }
}
BENCHMARK(BM_StandardizedPower)->Arg(3)->Arg(5)->Arg(7);

void BM_PatternSearch(benchmark::State& state) {
  Graph g = BenchGraph(200, 11);
  std::vector<int> group;
  for (int v = 0; v < 24; ++v) group.push_back(v);
  Graph sub = g.InducedSubgraph(group);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SearchPatterns(sub));
  }
}
BENCHMARK(BM_PatternSearch);

void BM_Ecod(benchmark::State& state) {
  Matrix x = RandomMatrix(state.range(0), 64, 12);
  Ecod ecod;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecod.FitScore(x));
  }
}
BENCHMARK(BM_Ecod)->Arg(256)->Arg(1024);

void BM_IsolationForest(benchmark::State& state) {
  Matrix x = RandomMatrix(512, 64, 13);
  IsolationForestOptions options;
  options.num_trees = 50;
  IsolationForest forest(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest.FitScore(x));
  }
}
BENCHMARK(BM_IsolationForest);

void BM_TsneIterations(benchmark::State& state) {
  Matrix x = RandomMatrix(128, 32, 14);
  TsneOptions options;
  options.iterations = 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Tsne(x, options));
  }
}
BENCHMARK(BM_TsneIterations);

void BM_TpgclEpoch(benchmark::State& state) {
  DatasetOptions data_options;
  data_options.seed = 1;
  const Dataset d = GenExampleGraph(data_options);
  std::vector<std::vector<int>> candidates = d.anomaly_groups;
  for (int i = 0; i < 20; ++i) {
    candidates.push_back({i, i + 1, i + 2, i + 3});
  }
  for (auto _ : state) {
    TpgclOptions options;
    options.epochs = 1;
    Tpgcl tpgcl(options);
    benchmark::DoNotOptimize(tpgcl.FitEmbed(d.graph, candidates));
  }
}
BENCHMARK(BM_TpgclEpoch);

// ---------------------------------------------------------------------------
// Seed-vs-optimized kernel comparison -> bench_results/micro.json.
// ---------------------------------------------------------------------------

struct KernelResult {
  std::string name;
  std::string shape;
  double seed_ms = 0.0;
  double opt_ms = 0.0;
};

/// Median-of-reps wall-clock milliseconds for one call of f (after a warmup
/// call, which also populates caches like the SpmmTransposeThis transpose).
template <typename F>
double MedianMs(F&& f) {
  f();  // Warmup.
  std::vector<double> samples;
  Timer total;
  // At least 5 samples; keep sampling up to ~0.6 s for stable medians.
  while (samples.size() < 5 ||
         (total.ElapsedMillis() < 600.0 && samples.size() < 25)) {
    Timer t;
    f();
    samples.push_back(t.ElapsedMillis());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

SparseMatrix BenchAdjacency(int n, int avg_degree, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  t.reserve(static_cast<size_t>(n) * avg_degree);
  for (int e = 0; e < n * avg_degree; ++e) {
    const int u = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    t.push_back({u, v, 1.0});
  }
  return SparseMatrix::FromTriplets(n, n, std::move(t));
}

std::vector<KernelResult> CompareKernels() {
  std::vector<KernelResult> results;
  auto add = [&](std::string name, std::string shape, auto&& seed_fn,
                 auto&& opt_fn) {
    KernelResult r;
    r.name = std::move(name);
    r.shape = std::move(shape);
    r.seed_ms = MedianMs(seed_fn);
    r.opt_ms = MedianMs(opt_fn);
    std::printf("  %-24s %-24s seed %8.3f ms   opt %8.3f ms   %.2fx\n",
                r.name.c_str(), r.shape.c_str(), r.seed_ms, r.opt_ms,
                r.seed_ms / r.opt_ms);
    results.push_back(std::move(r));
  };

  // Dense kernels on the acceptance shape and the GCN tall-skinny shape.
  {
    Matrix a = RandomMatrix(512, 512, 21);
    Matrix b = RandomMatrix(512, 512, 22);
    add(
        "matmul", "512x512x512",
        [&] { benchmark::DoNotOptimize(reference::MatMul(a, b)); },
        [&] { benchmark::DoNotOptimize(MatMul(a, b)); });
    add(
        "matmul_transpose_b", "512x512x512",
        [&] { benchmark::DoNotOptimize(reference::MatMulTransposeB(a, b)); },
        [&] { benchmark::DoNotOptimize(MatMulTransposeB(a, b)); });
    add(
        "matmul_transpose_a", "512x512x512",
        [&] { benchmark::DoNotOptimize(reference::MatMulTransposeA(a, b)); },
        [&] { benchmark::DoNotOptimize(MatMulTransposeA(a, b)); });
    add(
        "transpose", "512x512",
        [&] { benchmark::DoNotOptimize(reference::Transpose(a)); },
        [&] { benchmark::DoNotOptimize(a.Transpose()); });
  }
  {
    Matrix a = RandomMatrix(4096, 256, 23);
    Matrix b = RandomMatrix(256, 64, 24);
    add(
        "matmul", "4096x256x64",
        [&] { benchmark::DoNotOptimize(reference::MatMul(a, b)); },
        [&] { benchmark::DoNotOptimize(MatMul(a, b)); });
  }

  // Sparse kernels on a 10k-node adjacency with 64-wide features (the GCN
  // message-passing shape) — forward and the autograd backward.
  {
    SparseMatrix s = BenchAdjacency(10000, 4, 25);
    Matrix x = RandomMatrix(10000, 64, 26);
    add(
        "spmm", "10000x10000(nnz~40k)x64",
        [&] { benchmark::DoNotOptimize(reference::Spmm(s, x)); },
        [&] { benchmark::DoNotOptimize(s.Spmm(x)); });
    add(
        "spmm_transpose_this", "10000x10000(nnz~40k)x64",
        [&] { benchmark::DoNotOptimize(reference::SpmmTransposeThis(s, x)); },
        [&] { benchmark::DoNotOptimize(s.SpmmTransposeThis(x)); });
  }

  // Elementwise map: the seed's per-element std::function dispatch vs the
  // inlined MapFn fast path used by autograd's ReLU/Sigmoid/Tanh.
  {
    Matrix x = RandomMatrix(2048, 256, 27);
    const std::function<double(double)> relu = [](double v) {
      return v > 0.0 ? v : 0.0;
    };
    add(
        "map_relu", "2048x256",
        [&] { benchmark::DoNotOptimize(reference::Map(x, relu)); },
        [&] {
          benchmark::DoNotOptimize(
              x.MapFn([](double v) { return v > 0.0 ? v : 0.0; }));
        });
  }
  return results;
}

// ---------------------------------------------------------------------------
// Candidate-stage comparison (frozen serial Alg. 1/Alg. 2 paths vs the
// anchor-parallel workspace/view fast path) -> the grgad-micro-v7
// "candidates" table.
// ---------------------------------------------------------------------------

struct CandidateResult {
  std::string name;
  std::string shape;
  double seed_ms = 0.0;  ///< Candidate fast path off (seed-shaped serial).
  double opt_ms = 0.0;   ///< Workspace/view fast path on.
  /// Sampler only: TraversalWorkspace buffer growths across one steady-state
  /// Sample call (must be 0 — pooled workspaces fully warm after the timed
  /// runs). -1 for entries that do not use workspaces.
  int64_t steady_workspace_allocs = -1;
};

std::vector<CandidateResult> CompareCandidateKernels() {
  std::vector<CandidateResult> results;
  results.reserve(3);  // add() returns a reference into this vector.
  const bool prev = SetCandidateFastPath(true);
  auto add = [&](std::string name, std::string shape, auto&& seed_fn,
                 auto&& opt_fn) -> CandidateResult& {
    CandidateResult r;
    r.name = std::move(name);
    r.shape = std::move(shape);
    SetCandidateFastPath(false);
    r.seed_ms = MedianMs(seed_fn);
    SetCandidateFastPath(true);
    r.opt_ms = MedianMs(opt_fn);
    std::printf("  %-24s %-24s seed %8.3f ms   opt %8.3f ms   %.2fx\n",
                r.name.c_str(), r.shape.c_str(), r.seed_ms, r.opt_ms,
                r.seed_ms / r.opt_ms);
    results.push_back(std::move(r));
    return results.back();
  };

  // The acceptance shape: Alg. 1 over a transaction-scale random graph with
  // an anchor set dense enough that path/tree/cycle search all fire.
  {
    Graph g = BenchGraph(8000, 33);
    std::vector<int> anchors;
    for (int v = 0; v < g.num_nodes(); v += 125) anchors.push_back(v);
    GroupSampler sampler{GroupSamplerOptions{}};
    CandidateResult& r = add(
        "sampler", "n=8000,anchors=64",
        [&] { benchmark::DoNotOptimize(sampler.Sample(g, anchors)); },
        [&] { benchmark::DoNotOptimize(sampler.Sample(g, anchors)); });
    // Steady-state workspace accounting: the timed opt runs above warmed
    // every pooled workspace; one more call must not grow anything.
    const uint64_t before = TraversalWorkspace::TotalHeapAllocs();
    benchmark::DoNotOptimize(sampler.Sample(g, anchors));
    r.steady_workspace_allocs =
        static_cast<int64_t>(TraversalWorkspace::TotalHeapAllocs() - before);
    std::printf("  %-24s steady workspace heap allocs: %lld\n", "",
                static_cast<long long>(r.steady_workspace_allocs));
  }

  // Alg. 2 consumers on one candidate group: materialized InducedSubgraph
  // (seed) vs a retargeted SubgraphView (opt).
  {
    Graph g = BenchGraph(200, 11);
    std::vector<int> group;
    for (int v = 0; v < 24; ++v) group.push_back(v);
    SubgraphView view;
    add(
        "pattern_search", "group=24",
        [&] {
          const Graph sub = g.InducedSubgraph(group);
          benchmark::DoNotOptimize(SearchPatterns(sub));
        },
        [&] {
          view.Reset(g, group);
          benchmark::DoNotOptimize(SearchPatterns(view));
        });
    const Graph sub = g.InducedSubgraph(group);
    const FoundPatterns patterns = SearchPatterns(sub);
    add(
        "augment", "group=24,PPA+PBA",
        [&] {
          Rng rng(5);
          const Graph seed_sub = g.InducedSubgraph(group);
          benchmark::DoNotOptimize(
              Augment(seed_sub, AugmentationKind::kPpa, patterns, &rng));
          benchmark::DoNotOptimize(
              Augment(seed_sub, AugmentationKind::kPba, patterns, &rng));
        },
        [&] {
          Rng rng(5);
          view.Reset(g, group);
          benchmark::DoNotOptimize(
              Augment(view, AugmentationKind::kPpa, patterns, &rng));
          benchmark::DoNotOptimize(
              Augment(view, AugmentationKind::kPba, patterns, &rng));
        });
  }
  SetCandidateFastPath(prev);
  return results;
}

// ---------------------------------------------------------------------------
// Scoring-stage comparison (frozen seed detectors vs the blocked/parallel
// scoring fast path) -> the grgad-micro-v3 "scoring" table.
// ---------------------------------------------------------------------------

struct ScoringResult {
  std::string name;
  std::string shape;
  double seed_ms = 0.0;  ///< Frozen seed implementation (reference_detectors).
  double opt_ms = 0.0;   ///< Product code with the scoring fast path on.
};

std::vector<ScoringResult> CompareScoringKernels() {
  std::vector<ScoringResult> results;
  const bool prev = SetScoringFastPath(true);
  auto add = [&](std::string name, std::string shape, auto&& seed_fn,
                 auto&& opt_fn) {
    ScoringResult r;
    r.name = std::move(name);
    r.shape = std::move(shape);
    r.seed_ms = MedianMs(seed_fn);
    r.opt_ms = MedianMs(opt_fn);
    std::printf("  %-24s %-24s seed %8.3f ms   opt %8.3f ms   %.2fx\n",
                r.name.c_str(), r.shape.c_str(), r.seed_ms, r.opt_ms,
                r.seed_ms / r.opt_ms);
    results.push_back(std::move(r));
  };

  // The acceptance shape: group embeddings at serving scale (n groups x
  // 64-d TPGCL embeddings).
  Matrix x = RandomMatrix(2048, 64, 41);
  add(
      "pairwise", "2048x64",
      [&] { benchmark::DoNotOptimize(reference::PairwiseDistances(x)); },
      [&] { benchmark::DoNotOptimize(PairwiseDistances(x)); });
  add(
      "knn", "2048x64,k=5",
      [&] { benchmark::DoNotOptimize(reference::KnnFitScore(x, 5)); },
      [&] { benchmark::DoNotOptimize(KnnDetector(5).FitScore(x)); });
  add(
      "lof", "2048x64,k=10",
      [&] { benchmark::DoNotOptimize(reference::LofFitScore(x, 10)); },
      [&] { benchmark::DoNotOptimize(Lof(10).FitScore(x)); });
  add(
      "ecod", "2048x64",
      [&] { benchmark::DoNotOptimize(reference::EcodFitScore(x)); },
      [&] { benchmark::DoNotOptimize(Ecod().FitScore(x)); });
  {
    IsolationForestOptions options;
    options.num_trees = 100;
    options.seed = 7;
    add(
        "iforest", "2048x64,trees=100",
        [&] {
          benchmark::DoNotOptimize(
              reference::IsolationForestFitScore(x, options));
        },
        [&] {
          benchmark::DoNotOptimize(IsolationForest(options).FitScore(x));
        });
  }
  {
    Graph g = BenchGraph(5000, 9);
    add(
        "graphsnn", "n=5000",
        [&] {
          benchmark::DoNotOptimize(reference::GraphSnnEdgeWeights(g, 1.0));
        },
        [&] { benchmark::DoNotOptimize(GraphSnnEdgeWeights(g, 1.0)); });
  }
  SetScoringFastPath(prev);
  return results;
}

// ---------------------------------------------------------------------------
// End-to-end training-epoch comparison (seed path vs fast path).
// ---------------------------------------------------------------------------

struct EpochResult {
  std::string name;
  std::string shape;
  double seed_ms = 0.0;  ///< Per-epoch ms, fast path off (seed behavior).
  double opt_ms = 0.0;   ///< Per-epoch ms, arena + fused kernels.
  // Arena accounting from the fast path.
  uint64_t warmup_heap_allocs = 0;  ///< Buffers the warmup fit allocated.
  /// Heap allocations across the ENTIRE steady-state fit (not per epoch):
  /// 0 means every post-warmup epoch was served from the free lists.
  uint64_t steady_heap_allocs = 0;
  uint64_t steady_reused = 0;        ///< Buffers recycled per epoch.
  uint64_t steady_bytes_served = 0;  ///< Bytes recycled per epoch.
};

/// Runs one seed-vs-opt epoch comparison and collects arena stats from a
/// dedicated warm-arena run (one warmup fit, stats reset, one measured fit
/// whose epochs are all steady-state).
///
/// Per-epoch wall time is isolated from the fixed setup cost (operator
/// building, pair sampling, pattern search) by differencing two epoch
/// counts: (T(hi) - T(lo)) / (hi - lo). The seed and fast-path fits are
/// sampled INTERLEAVED, one pair per round, with the per-round differences
/// medianed: on a shared box the allocator/CPU state drifts over seconds,
/// and sequential difference-of-medians measurements let that drift
/// masquerade as (or cancel out) a speedup.
template <typename MakeFit>
EpochResult CompareEpochs(std::string name, std::string shape,
                          MakeFit&& make_fit) {
  constexpr int kLo = 2, kHi = 12, kRounds = 7;
  EpochResult r;
  r.name = std::move(name);
  r.shape = std::move(shape);

  MatrixArena arena;
  auto seed_fit = make_fit(nullptr);
  auto opt_fit = make_fit(&arena);
  // Warm up both paths (and the arena free lists) before sampling.
  SetTrainingFastPath(false);
  seed_fit(kLo);
  SetTrainingFastPath(true);
  opt_fit(kLo);
  std::vector<double> seed_epoch_ms, opt_epoch_ms;
  for (int round = 0; round < kRounds; ++round) {
    SetTrainingFastPath(false);
    Timer seed_lo;
    seed_fit(kLo);
    const double t_seed_lo = seed_lo.ElapsedMillis();
    Timer seed_hi;
    seed_fit(kHi);
    const double t_seed_hi = seed_hi.ElapsedMillis();
    SetTrainingFastPath(true);
    Timer opt_lo;
    opt_fit(kLo);
    const double t_opt_lo = opt_lo.ElapsedMillis();
    Timer opt_hi;
    opt_fit(kHi);
    const double t_opt_hi = opt_hi.ElapsedMillis();
    seed_epoch_ms.push_back((t_seed_hi - t_seed_lo) / (kHi - kLo));
    opt_epoch_ms.push_back((t_opt_hi - t_opt_lo) / (kHi - kLo));
  }
  std::sort(seed_epoch_ms.begin(), seed_epoch_ms.end());
  std::sort(opt_epoch_ms.begin(), opt_epoch_ms.end());
  r.seed_ms = seed_epoch_ms[kRounds / 2];
  r.opt_ms = opt_epoch_ms[kRounds / 2];

  // Steady-state accounting on a fresh arena: epoch 1 of the first fit is
  // the warmup; every epoch of the second fit reuses its buffers.
  MatrixArena fresh;
  auto fit = make_fit(&fresh);
  fit(1);
  r.warmup_heap_allocs = fresh.stats().heap_allocs;
  fresh.ResetStats();
  fit(kLo);
  const MatrixArena::Stats steady = fresh.stats();
  r.steady_heap_allocs = steady.heap_allocs;
  r.steady_reused = steady.reused / kLo;
  r.steady_bytes_served = steady.bytes_served / kLo;

  std::printf("  %-24s %-24s seed %8.3f ms   opt %8.3f ms   %.2fx   "
              "steady heap allocs %llu\n",
              r.name.c_str(), r.shape.c_str(), r.seed_ms, r.opt_ms,
              r.seed_ms / r.opt_ms,
              static_cast<unsigned long long>(r.steady_heap_allocs));
  return r;
}

std::vector<EpochResult> CompareTrainingEpochs() {
  std::vector<EpochResult> results;

  // TPGCL epoch on the paper's example graph with a realistic candidate
  // set (anomaly groups + sliding 8-node windows): two batched GCN passes
  // + MINE + Adam per epoch.
  {
    DatasetOptions data_options;
    data_options.seed = 1;
    const Dataset dataset = GenExampleGraph(data_options);
    std::vector<std::vector<int>> candidates = dataset.anomaly_groups;
    for (int i = 0; i + 8 < dataset.graph.num_nodes() &&
                    candidates.size() < 32;
         i += 4) {
      candidates.push_back({i, i + 1, i + 2, i + 3, i + 4, i + 5, i + 6,
                            i + 7});
    }
    results.push_back(CompareEpochs(
        "tpgcl_epoch", "example,groups=32",
        [&dataset, &candidates](MatrixArena* arena) {
          return [&dataset, &candidates, arena](int epochs) {
            TpgclOptions options;
            options.epochs = epochs;
            options.seed = 17;
            options.arena = arena;
            benchmark::DoNotOptimize(
                Tpgcl(options).FitEmbed(dataset.graph, candidates));
          };
        }));
  }
  // GAE epoch on a mid-sized random graph with the default architecture:
  // the MH-GAE / DOMINANT hot loop (2-layer GCN + two decoders + Adam).
  {
    Rng rng(31);
    const int n = 3000, d = 32;
    GraphBuilder b(n);
    for (int v = 1; v < n; ++v) {
      b.AddEdge(v, static_cast<int>(rng.UniformInt(static_cast<uint64_t>(v))));
    }
    for (int e = 0; e < 3 * n; ++e) {
      const int u = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
      const int v = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
      if (u != v) b.AddEdge(u, v);
    }
    Graph g = b.Build(Matrix::Gaussian(n, d, &rng));
    results.push_back(CompareEpochs(
        "gae_epoch", "n=3000,d=32,h=64,e=64", [&g](MatrixArena* arena) {
          return [&g, arena](int epochs) {
            GaeOptions options;
            options.epochs = epochs;
            options.seed = 17;
            options.arena = arena;
            benchmark::DoNotOptimize(GcnGae(options).Fit(g));
          };
        }));
  }

  return results;
}

// ---------------------------------------------------------------------------
// Serve round-trip: one rescore request through a resident, prewarmed
// ServeDaemon over a local pipe pair — the steady-state latency a
// `grgad serve` client pays, transport included -> the "serve" table.
// ---------------------------------------------------------------------------

struct ServeResult {
  std::string name;
  double mean_ms = 0.0;
  double min_ms = 0.0;
  int round_trips = 0;
};

std::vector<ServeResult> MeasureServeRoundTrip() {
  std::vector<ServeResult> results;
  Dataset dataset = GenExampleGraph();
  TpGrGadOptions options;
  options.seed = 42;
  options.mh_gae.base.epochs = 10;
  options.mh_gae.base.hidden_dim = 16;
  options.mh_gae.base.embed_dim = 8;
  options.mh_gae.anchor_fraction = 0.15;
  options.tpgcl.epochs = 8;
  options.tpgcl.hidden_dim = 16;
  options.tpgcl.embed_dim = 8;
  options.serve_prewarm_workspaces = 4;
  options.ReseedStages();
  auto trained = RunPipeline(dataset.graph, options);
  if (!trained.ok()) {
    std::printf("  !! serve bench training failed: %s\n",
                trained.status().ToString().c_str());
    return results;
  }
  ServeOptions serve_options;
  serve_options.pipeline = options;
  ServeDaemon daemon(dataset.graph, std::move(trained).value(),
                     serve_options);
  daemon.Prewarm();

  int c2s[2] = {-1, -1};
  int s2c[2] = {-1, -1};
  if (::pipe(c2s) != 0 || ::pipe(s2c) != 0) {
    std::printf("  !! serve bench: pipe() failed\n");
    return results;
  }
  CancelToken stop;
  std::thread server([&daemon, &stop, in = c2s[0], out = s2c[1]] {
    LineChannel channel(in, out, /*own_fds=*/true);
    (void)daemon.Serve(&channel, stop);
  });
  {
    LineChannel client(s2c[0], c2s[1], /*own_fds=*/true);
    const std::string request =
        R"({"id": 1, "op": "rescore", "detector": "ensemble", "top": 3})";
    std::string response;
    bool eof = false;
    auto round_trip = [&]() -> bool {
      if (!client.WriteLine(request).ok()) return false;
      return client.ReadLine(&response, &eof).ok() && !eof;
    };
    constexpr int kWarmup = 2;
    constexpr int kRoundTrips = 20;
    bool ok = true;
    for (int i = 0; i < kWarmup && ok; ++i) ok = round_trip();
    ServeResult r;
    r.name = "round_trip";
    r.min_ms = 0.0;
    double total_ms = 0.0;
    for (int i = 0; i < kRoundTrips && ok; ++i) {
      Timer timer;
      ok = round_trip();
      const double ms = timer.ElapsedSeconds() * 1000.0;
      total_ms += ms;
      r.min_ms = i == 0 ? ms : std::min(r.min_ms, ms);
      ++r.round_trips;
    }
    if (ok && r.round_trips > 0) {
      r.mean_ms = total_ms / r.round_trips;
      std::printf("  serve %-15s mean %9.3f ms   min %9.3f ms   (%d trips)\n",
                  r.name.c_str(), r.mean_ms, r.min_ms, r.round_trips);
      results.push_back(std::move(r));
    } else {
      std::printf("  !! serve bench: round trip failed\n");
    }
  }  // Client hangs up; the daemon drains and Serve() returns.
  server.join();
  return results;
}

// ---------------------------------------------------------------------------
// Mutation fast path: apply / invalidate / incremental refresh on a live
// DynamicGraph vs what serving paid before it (a from-scratch CSR rebuild
// per mutation; a full-anchor resample + embed + score per refresh) -> the
// "mutations" table. Radius-local sampler options (hop-count search,
// pair_radius = cycle_max_len = 4) so ball invalidation is sound and a
// single-edge mutation dirties a small anchor subset.
// ---------------------------------------------------------------------------

struct MutationResult {
  std::string name;
  std::string shape;
  double seed_ms = 0.0;  ///< Pre-PR path; 0 = no seed comparison (no gate).
  double opt_ms = 0.0;
  double fanout = -1.0;  ///< Mean dirty anchors per mutation; -1 = n/a.
};

std::vector<MutationResult> MeasureMutations() {
  std::vector<MutationResult> results;
  const Graph g = BenchGraph(8000, 33);
  // Serving-shaped refresh configuration: every node is an anchor (per-node
  // anomaly coverage, the dense end of what a daemon hosts), candidate
  // search is radius-3 local, and the scored group set is capped. This is
  // the regime the dirty-anchor machinery exists for — a full recompute
  // resamples all 8000 anchors while one edge flip dirties only the ~190
  // anchors whose radius-3 ball the edge touches.
  std::vector<int> anchors(g.num_nodes());
  std::iota(anchors.begin(), anchors.end(), 0);
  TpGrGadOptions options;
  options.seed = 29;
  options.sampler.path_mode = PathSearchMode::kUnweighted;
  options.sampler.pair_radius = 3;
  options.sampler.cycle_max_len = 3;
  options.sampler.max_paths_per_anchor = 4;
  options.sampler.max_cycles_per_anchor = 4;
  options.sampler.max_group_size = 16;
  options.sampler.max_groups = 128;
  options.ReseedStages();
  const int radius = InvalidationRadius(options.sampler);

  // A deterministic absent edge to churn throughout.
  Rng rng(3);
  int mu = -1, mv = -1;
  while (mu < 0) {
    const int a = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(g.num_nodes())));
    const int b = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(g.num_nodes())));
    if (a != b && !g.HasEdge(a, b)) {
      mu = std::min(a, b);
      mv = std::max(a, b);
    }
  }

  auto print = [](const MutationResult& r) {
    if (r.seed_ms > 0.0) {
      std::printf("  %-24s %-24s seed %8.3f ms   opt %8.3f ms   %.2fx\n",
                  r.name.c_str(), r.shape.c_str(), r.seed_ms, r.opt_ms,
                  r.seed_ms / (r.opt_ms > 0.0 ? r.opt_ms : 1e-9));
    } else {
      std::printf("  %-24s %-24s                  opt %8.3f ms\n",
                  r.name.c_str(), r.shape.c_str(), r.opt_ms);
    }
  };

  // apply_edge: one add+remove round trip on the slack CSR vs the pre-PR
  // equivalent, a from-scratch GraphBuilder rebuild of the mutated graph.
  {
    DynamicGraph dg(g);
    MutationResult r;
    r.name = "apply_edge";
    r.shape = "n=8000";
    r.seed_ms = MedianMs([&] {
      GraphBuilder b(g.num_nodes());
      g.ForEachEdge([&b](int u, int v) { b.AddEdge(u, v); });
      b.AddEdge(mu, mv);
      benchmark::DoNotOptimize(b.Build(g.attributes()));
    });
    r.opt_ms = MedianMs([&] {
      dg.AddEdge(mu, mv);
      dg.RemoveEdge(mu, mv);
    });
    print(r);
    results.push_back(std::move(r));
  }

  // invalidate: one radius-R ball mark from the mutated edge.
  {
    DynamicGraph dg(g);
    dg.AddEdge(mu, mv);
    AnchorDirtyTracker tracker;
    tracker.Reset(anchors, radius, g.num_nodes());
    MutationResult r;
    r.name = "invalidate";
    r.shape = "n=8000,anchors=8000,r=3";
    int fanout = 0;
    r.opt_ms = MedianMs([&] {
      fanout = tracker.MarkFromEdge(dg, mu, mv);
      benchmark::DoNotOptimize(fanout);
    });
    r.fanout = static_cast<double>(fanout);
    print(r);
    std::printf("  %-24s invalidation fanout: %d of %zu anchors\n", "",
                fanout, anchors.size());
    results.push_back(std::move(r));
  }

  // refresh: apply + invalidate + dirty-subset refresh on a primed state vs
  // the pre-PR cost of the same request — a full-anchor resample + pooled
  // embed + score of the mutated graph (RefreshArtifacts on an unprimed
  // state; conservative, since pre-PR serving also re-trained TPGCL).
  {
    DynamicGraph dg(g);
    RefreshState state;
    PipelineArtifacts artifacts;
    artifacts.seed = options.seed;
    artifacts.anchors = anchors;
    const Status primed = RefreshArtifacts(g, options, {}, &state, &artifacts);
    if (!primed.ok()) {
      std::printf("  !! mutation bench priming failed: %s\n",
                  primed.ToString().c_str());
      return results;
    }
    AnchorDirtyTracker tracker;
    tracker.Reset(anchors, radius, g.num_nodes());

    MutationResult r;
    r.name = "refresh";
    r.shape = "n=8000,anchors=8000,r=3";
    bool add_next = true;
    double fanout_total = 0.0;
    int refreshes = 0;
    r.opt_ms = MedianMs([&] {
      // Toggle the edge so every sample mutates (adds mark after applying,
      // removes before — the tracker's soundness contract).
      if (add_next) {
        dg.AddEdge(mu, mv);
        tracker.MarkFromEdge(dg, mu, mv);
      } else {
        tracker.MarkFromEdge(dg, mu, mv);
        dg.RemoveEdge(mu, mv);
      }
      add_next = !add_next;
      const std::vector<int> dirty = tracker.TakeDirtyIndices();
      fanout_total += static_cast<double>(dirty.size());
      ++refreshes;
      const Status status =
          RefreshArtifacts(dg.PackedView(), options, dirty, &state,
                           &artifacts);
      if (!status.ok()) {
        std::printf("  !! incremental refresh failed: %s\n",
                    status.ToString().c_str());
      }
    });
    r.fanout = refreshes > 0 ? fanout_total / refreshes : -1.0;
    r.seed_ms = MedianMs([&] {
      RefreshState full_state;
      PipelineArtifacts full;
      full.seed = options.seed;
      full.anchors = anchors;
      const Status status =
          RefreshArtifacts(dg.PackedView(), options, {}, &full_state, &full);
      if (!status.ok()) {
        std::printf("  !! full refresh failed: %s\n",
                    status.ToString().c_str());
      }
    });
    print(r);
    results.push_back(std::move(r));
  }
  return results;
}

// ---------------------------------------------------------------------------
// Durability: WAL append / state snapshot / crash recovery on the same
// serving-dense shape as the mutation table (n=8000, every node an anchor,
// radius-3 invalidation) -> the "durability" table. The gated comparison is
// replay: restarting from snapshot + WAL tail must beat the pre-durability
// alternative — retraining the serving state from scratch (an unprimed full
// RefreshArtifacts) — by >= 5x (tools/check_micro.py).
// ---------------------------------------------------------------------------

std::vector<MutationResult> MeasureDurability() {
  std::vector<MutationResult> results;
  const Graph g = BenchGraph(8000, 33);
  std::vector<int> anchors(g.num_nodes());
  std::iota(anchors.begin(), anchors.end(), 0);
  TpGrGadOptions options;
  options.seed = 29;
  options.sampler.path_mode = PathSearchMode::kUnweighted;
  options.sampler.pair_radius = 3;
  options.sampler.cycle_max_len = 3;
  options.sampler.max_paths_per_anchor = 4;
  options.sampler.max_cycles_per_anchor = 4;
  options.sampler.max_group_size = 16;
  options.sampler.max_groups = 128;
  options.serve_wal_sync_every = 16;
  options.ReseedStages();

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "grgad_micro_durability";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  std::filesystem::create_directories(dir, ec);

  // A deterministic absent edge to churn (same scheme as the mutation
  // table).
  Rng rng(3);
  int mu = -1, mv = -1;
  while (mu < 0) {
    const int a = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(g.num_nodes())));
    const int b = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(g.num_nodes())));
    if (a != b && !g.HasEdge(a, b)) {
      mu = std::min(a, b);
      mv = std::max(a, b);
    }
  }

  auto print = [](const MutationResult& r) {
    if (r.seed_ms > 0.0) {
      std::printf("  %-24s %-24s seed %8.3f ms   opt %8.3f ms   %.2fx\n",
                  r.name.c_str(), r.shape.c_str(), r.seed_ms, r.opt_ms,
                  r.seed_ms / (r.opt_ms > 0.0 ? r.opt_ms : 1e-9));
    } else {
      std::printf("  %-24s %-24s                  opt %8.3f ms\n",
                  r.name.c_str(), r.shape.c_str(), r.opt_ms);
    }
  };

  // wal_append: one checksummed record framed + written under the batched
  // fsync policy (every 16th append pays the sync).
  {
    auto wal = WriteAheadLog::Open((dir / "bench.log").string(),
                                   options.serve_wal_sync_every);
    if (!wal.ok()) {
      std::printf("  !! wal bench open failed: %s\n",
                  wal.status().ToString().c_str());
      return results;
    }
    GraphMutation m;
    m.kind = GraphMutation::Kind::kAddEdge;
    m.u = mu;
    m.v = mv;
    MutationResult r;
    r.name = "wal_append";
    r.shape = "sync_every=16";
    r.opt_ms = MedianMs([&] {
      const Status status = wal.value()->Append(WalRecord::Kind::kMutation, m);
      if (!status.ok()) {
        std::printf("  !! wal append failed: %s\n", status.ToString().c_str());
      }
    });
    print(r);
    results.push_back(std::move(r));
  }

  // Prime the serving-dense resident state once (shared by the snapshot and
  // replay measurements).
  RefreshState refresh_state;
  PipelineArtifacts artifacts;
  artifacts.seed = options.seed;
  artifacts.anchors = anchors;
  const Status primed =
      RefreshArtifacts(g, options, {}, &refresh_state, &artifacts);
  if (!primed.ok()) {
    std::printf("  !! durability bench priming failed: %s\n",
                primed.ToString().c_str());
    return results;
  }
  ServeStateSnapshot serve_state;
  serve_state.refresh_primed = refresh_state.primed;
  serve_state.refresh_per_anchor = refresh_state.per_anchor;

  // snapshot: one atomic SaveServeSnapshot of the full serving state
  // (packed CSR + artifacts + refresh cache), staged + fsynced + renamed.
  {
    const std::string state_dir = (dir / "snapshot_bench").string();
    MutationResult r;
    r.name = "snapshot";
    r.shape = "n=8000,anchors=8000";
    r.opt_ms = MedianMs([&] {
      const Status status =
          SaveServeSnapshot(state_dir, g, artifacts, serve_state, 0);
      if (!status.ok()) {
        std::printf("  !! snapshot bench failed: %s\n",
                    status.ToString().c_str());
      }
    });
    print(r);
    results.push_back(std::move(r));
  }

  // replay: the daemon's actual restart path — load the snapshot, construct
  // the daemon, replay a 17-record WAL tail (16 edge toggles + the refresh
  // that folds them into the artifacts) — vs the pre-durability restart, a
  // from-scratch rebuild of the serving state (unprimed full
  // RefreshArtifacts over all 8000 anchors).
  {
    const std::string state_dir = (dir / "replay_bench").string();
    const Status saved =
        SaveServeSnapshot(state_dir, g, artifacts, serve_state, 0);
    if (!saved.ok()) {
      std::printf("  !! replay bench staging failed: %s\n",
                  saved.ToString().c_str());
      return results;
    }
    {
      auto wal = WriteAheadLog::Open(state_dir + "/wal.log", 16);
      if (!wal.ok()) {
        std::printf("  !! replay bench wal failed: %s\n",
                    wal.status().ToString().c_str());
        return results;
      }
      GraphMutation m;
      m.u = mu;
      m.v = mv;
      for (int i = 0; i < 16; ++i) {
        m.kind = i % 2 == 0 ? GraphMutation::Kind::kAddEdge
                            : GraphMutation::Kind::kRemoveEdge;
        (void)wal.value()->Append(WalRecord::Kind::kMutation, m);
      }
      (void)wal.value()->Append(WalRecord::Kind::kRefresh);
      (void)wal.value()->Sync();
    }
    MutationResult r;
    r.name = "replay";
    r.shape = "n=8000,anchors=8000,records=17";
    r.opt_ms = MedianMs([&] {
      auto loaded = LoadServeSnapshot(state_dir);
      if (!loaded.ok()) {
        std::printf("  !! replay bench load failed: %s\n",
                    loaded.status().ToString().c_str());
        return;
      }
      ServeOptions serve_options;
      serve_options.pipeline = options;
      serve_options.state_dir = state_dir;
      ServeDaemon daemon(loaded.value().graph,
                         std::move(loaded.value().artifacts), serve_options);
      const Status recovered = daemon.EnableDurability(&loaded.value());
      if (!recovered.ok()) {
        std::printf("  !! replay bench recovery failed: %s\n",
                    recovered.ToString().c_str());
      }
      benchmark::DoNotOptimize(daemon.artifacts());
    });
    r.seed_ms = MedianMs([&] {
      RefreshState full_state;
      PipelineArtifacts full;
      full.seed = options.seed;
      full.anchors = anchors;
      const Status status =
          RefreshArtifacts(g, options, {}, &full_state, &full);
      if (!status.ok()) {
        std::printf("  !! full rebuild failed: %s\n",
                    status.ToString().c_str());
      }
    });
    print(r);
    results.push_back(std::move(r));
  }
  std::filesystem::remove_all(dir, ec);
  return results;
}

void WriteMicroJson() {
  // Epochs are measured FIRST, on a cold allocator: glibc's trim/mmap
  // thresholds ratchet up under the kernel benchmarks' large blocks, after
  // which the seed path's per-epoch malloc/free stops hitting the OS and
  // the comparison stops reflecting what a fresh training process pays.
  std::printf("Training-epoch comparison (seed path vs arena+fused fast "
              "path)\n");
  const std::vector<EpochResult> epochs = CompareTrainingEpochs();
  // Candidates also run before the kernel phase: the seed sampler's
  // per-anchor allocation cost is visible only while the allocator is cold
  // (same glibc trim/mmap-threshold argument as the epochs).
  std::printf("Candidate-stage comparison (frozen serial sampler/patterns "
              "vs workspace/view fast path), GRGAD_THREADS=%d\n",
              ParallelismDegree());
  const std::vector<CandidateResult> candidates = CompareCandidateKernels();
  std::printf("Scoring comparison (frozen seed detectors vs GEMM/parallel "
              "fast path), GRGAD_THREADS=%d\n", ParallelismDegree());
  const std::vector<ScoringResult> scoring = CompareScoringKernels();
  std::printf("Kernel comparison (seed serial reference vs optimized), "
              "GRGAD_THREADS=%d\n", ParallelismDegree());
  const std::vector<KernelResult> results = CompareKernels();
  std::printf("Serve round-trip (resident daemon, rescore over a local "
              "pipe), GRGAD_THREADS=%d\n", ParallelismDegree());
  const std::vector<ServeResult> serve = MeasureServeRoundTrip();
  std::printf("Mutation fast path (slack-CSR apply / ball invalidation / "
              "incremental refresh vs full recompute), GRGAD_THREADS=%d\n",
              ParallelismDegree());
  const std::vector<MutationResult> mutations = MeasureMutations();
  std::printf("Durability (WAL append / snapshot / crash recovery vs "
              "from-scratch rebuild), GRGAD_THREADS=%d\n",
              ParallelismDegree());
  const std::vector<MutationResult> durability = MeasureDurability();
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  const char* path = "bench_results/micro.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("  !! could not write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"grgad-micro-v7\",\n");
  std::fprintf(f, "  \"threads\": %d,\n", ParallelismDegree());
  std::fprintf(f, "  \"candidates\": [\n");
  for (size_t i = 0; i < candidates.size(); ++i) {
    const CandidateResult& r = candidates[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"shape\": \"%s\", "
                 "\"seed_ms\": %.6f, \"opt_ms\": %.6f, \"speedup\": %.3f",
                 r.name.c_str(), r.shape.c_str(), r.seed_ms, r.opt_ms,
                 r.seed_ms / (r.opt_ms > 0.0 ? r.opt_ms : 1e-9));
    if (r.steady_workspace_allocs >= 0) {
      std::fprintf(f,
                   ", \"workspace\": {\"steady_heap_allocs\": %lld}",
                   static_cast<long long>(r.steady_workspace_allocs));
    }
    std::fprintf(f, "}%s\n", i + 1 < candidates.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"kernels\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"shape\": \"%s\", "
                 "\"seed_ms\": %.6f, \"opt_ms\": %.6f, \"speedup\": %.3f}%s\n",
                 r.name.c_str(), r.shape.c_str(), r.seed_ms, r.opt_ms,
                 r.seed_ms / r.opt_ms, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"scoring\": [\n");
  for (size_t i = 0; i < scoring.size(); ++i) {
    const ScoringResult& r = scoring[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"shape\": \"%s\", "
                 "\"seed_ms\": %.6f, \"opt_ms\": %.6f, \"speedup\": %.3f}%s\n",
                 r.name.c_str(), r.shape.c_str(), r.seed_ms, r.opt_ms,
                 r.seed_ms / (r.opt_ms > 0.0 ? r.opt_ms : 1e-9),
                 i + 1 < scoring.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"epochs\": [\n");
  for (size_t i = 0; i < epochs.size(); ++i) {
    const EpochResult& r = epochs[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"shape\": \"%s\", "
        "\"seed_ms\": %.6f, \"opt_ms\": %.6f, \"speedup\": %.3f, "
        "\"arena\": {\"warmup_heap_allocs\": %llu, "
        "\"steady_fit_heap_allocs\": %llu, "
        "\"steady_reused_per_epoch\": %llu, "
        "\"steady_bytes_served_per_epoch\": %llu}}%s\n",
        r.name.c_str(), r.shape.c_str(), r.seed_ms, r.opt_ms,
        r.seed_ms / (r.opt_ms > 0.0 ? r.opt_ms : 1e-9),
        static_cast<unsigned long long>(r.warmup_heap_allocs),
        static_cast<unsigned long long>(r.steady_heap_allocs),
        static_cast<unsigned long long>(r.steady_reused),
        static_cast<unsigned long long>(r.steady_bytes_served),
        i + 1 < epochs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"serve\": [\n");
  for (size_t i = 0; i < serve.size(); ++i) {
    const ServeResult& r = serve[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"mean_ms\": %.6f, "
                 "\"min_ms\": %.6f, \"round_trips\": %d}%s\n",
                 r.name.c_str(), r.mean_ms, r.min_ms, r.round_trips,
                 i + 1 < serve.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"mutations\": [\n");
  for (size_t i = 0; i < mutations.size(); ++i) {
    const MutationResult& r = mutations[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"shape\": \"%s\"",
                 r.name.c_str(), r.shape.c_str());
    if (r.seed_ms > 0.0) {
      std::fprintf(f, ", \"seed_ms\": %.6f", r.seed_ms);
    }
    std::fprintf(f, ", \"opt_ms\": %.6f", r.opt_ms);
    if (r.seed_ms > 0.0) {
      std::fprintf(f, ", \"speedup\": %.3f",
                   r.seed_ms / (r.opt_ms > 0.0 ? r.opt_ms : 1e-9));
    }
    if (r.fanout >= 0.0) std::fprintf(f, ", \"fanout\": %.2f", r.fanout);
    std::fprintf(f, "}%s\n", i + 1 < mutations.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"durability\": [\n");
  for (size_t i = 0; i < durability.size(); ++i) {
    const MutationResult& r = durability[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"shape\": \"%s\"",
                 r.name.c_str(), r.shape.c_str());
    if (r.seed_ms > 0.0) {
      std::fprintf(f, ", \"seed_ms\": %.6f", r.seed_ms);
    }
    std::fprintf(f, ", \"opt_ms\": %.6f", r.opt_ms);
    if (r.seed_ms > 0.0) {
      std::fprintf(f, ", \"speedup\": %.3f",
                   r.seed_ms / (r.opt_ms > 0.0 ? r.opt_ms : 1e-9));
    }
    std::fprintf(f, "}%s\n", i + 1 < durability.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  -> wrote %s\n", path);
}

}  // namespace
}  // namespace grgad

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const char* json_env = std::getenv("GRGAD_MICRO_JSON");
  if (json_env == nullptr || json_env[0] != '0') {
    grgad::WriteMicroJson();
  }
  const char* only_env = std::getenv("GRGAD_MICRO_JSON_ONLY");
  if (only_env != nullptr && only_env[0] == '1') return 0;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
