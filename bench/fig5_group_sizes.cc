// Fig. 5 reproduction: average size of the identified anomalous groups per
// method per dataset, against the ground-truth average. Paper shape: N-GAD
// adapters produce fragments (size <= 3), AS-GAE over-grows, TP-GrGAD lands
// closest to the ground-truth size.
#include "bench/bench_common.h"

namespace grgad::bench {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  Banner("Fig. 5: average identified-group size per method");
  CsvWriter csv({"dataset", "method", "avg_size", "ground_truth_avg"});
  for (const std::string& dataset_name : BenchDatasets()) {
    Dataset dataset;
    if (!LoadBenchDataset(dataset_name, &dataset)) return 1;
    const double gt_size = dataset.AverageGroupSize();
    std::printf("\n%s (ground truth avg size %.2f)\n", dataset_name.c_str(),
                gt_size);
    auto methods = MakeAllMethods(config, 2000);
    for (auto& method : methods) {
      const GroupEvaluation eval =
          EvaluateGroups(dataset, method->DetectGroups(dataset.graph));
      std::printf("  %-10s avg size %6.2f   ", method->Name().c_str(),
                  eval.avg_predicted_size);
      // ASCII bar chart, one '#' per node, capped at 40.
      const int bars = std::min(40, static_cast<int>(
                                        eval.avg_predicted_size + 0.5));
      for (int i = 0; i < bars; ++i) std::printf("#");
      std::printf("\n");
      csv.AppendRow({dataset_name, method->Name(),
                     FormatDouble(eval.avg_predicted_size),
                     FormatDouble(gt_size)});
    }
  }
  EmitCsv(csv, "fig5_group_sizes.csv");
  return 0;
}

}  // namespace
}  // namespace grgad::bench

int main() { return grgad::bench::Run(); }
