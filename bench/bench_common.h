// Shared harness for the table/figure reproduction benches.
//
// Every bench binary prints the same rows/series its paper counterpart
// reports and writes a CSV under ./bench_results/. Two modes:
//   quick (default): 1 seed, reduced epochs/candidate budgets — minutes.
//   full (GRGAD_BENCH_FULL=1): 3 seeds, paper-scale settings.
// Absolute values differ from the paper's testbed (synthetic data, CPU
// simulator); the *shape* — method ranking, CR gap, ablation ordering — is
// what these benches reproduce (see EXPERIMENTS.md).
#ifndef GRGAD_BENCH_BENCH_COMMON_H_
#define GRGAD_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/core/evaluation.h"
#include "src/core/method_registry.h"
#include "src/core/pipeline.h"
#include "src/data/registry.h"
#include "src/util/check.h"
#include "src/util/csv.h"
#include "src/util/timer.h"

namespace grgad::bench {

/// Global bench configuration derived from the environment.
struct BenchConfig {
  bool full = false;
  int seeds = 1;
  int gae_epochs = 40;
  int tpgcl_epochs = 30;
  int max_candidate_groups = 800;

  static BenchConfig FromEnv() {
    BenchConfig config;
    const char* env = std::getenv("GRGAD_BENCH_FULL");
    config.full = (env != nullptr && env[0] == '1');
    if (config.full) {
      config.seeds = 3;
      config.gae_epochs = 80;
      config.tpgcl_epochs = 60;
      config.max_candidate_groups = 1600;
    }
    return config;
  }
};

/// The five evaluation datasets in Table I order.
inline std::vector<std::string> BenchDatasets() {
  return {"simml", "cora-group", "citeseer-group", "amlpublic", "ethereum"};
}

/// Builds a bench dataset instance (seeded 42 + offset per bench seed).
/// Prints the failure and returns false for unknown names.
inline bool LoadBenchDataset(const std::string& name, Dataset* out,
                             uint64_t seed = 42) {
  DatasetOptions options;
  options.seed = seed;
  auto result = MakeDataset(name, options);
  if (!result.ok()) {
    std::printf("failed to build %s: %s\n", name.c_str(),
                result.status().ToString().c_str());
    return false;
  }
  *out = std::move(result).value();
  return true;
}

/// The registry override strings configuring one method for this bench
/// config ("tpgcl.epochs=30"-style; see core/method_registry.h).
inline std::vector<std::string> MethodOverrides(const BenchConfig& config,
                                                const std::string& name) {
  if (name == "tp-grgad") {
    return {"mh_gae.epochs=" + std::to_string(config.gae_epochs),
            "tpgcl.epochs=" + std::to_string(config.tpgcl_epochs),
            "tpgcl.neg_per_sample=16",
            "sampler.max_groups=" +
                std::to_string(config.max_candidate_groups)};
  }
  // Every baseline trains its underlying autoencoder for the same budget.
  return {"epochs=" + std::to_string(config.gae_epochs)};
}

/// Builds the configured TP-GrGAD options for one (config, seed) pair.
inline TpGrGadOptions MakeTpGrGadOptions(const BenchConfig& config,
                                         uint64_t seed) {
  auto options =
      BuildTpGrGadOptions(seed, MethodOverrides(config, "tp-grgad"));
  GRGAD_CHECK(options.ok());
  return std::move(options).value();
}

/// All six Table III methods, freshly constructed per seed through the
/// method registry (which applies the historical per-method seed XORs).
inline std::vector<std::unique_ptr<GroupDetector>> MakeAllMethods(
    const BenchConfig& config, uint64_t seed) {
  std::vector<std::unique_ptr<GroupDetector>> methods;
  for (const std::string& name : ListMethods()) {
    MethodOptions method_options;
    method_options.seed = seed;
    method_options.overrides = MethodOverrides(config, name);
    auto method = MakeGroupDetector(name, method_options);
    GRGAD_CHECK(method.ok());
    methods.push_back(std::move(method).value());
  }
  return methods;
}

/// Ensures ./bench_results exists and returns "bench_results/<name>".
inline std::string ResultPath(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  return "bench_results/" + name;
}

/// Writes the CSV and reports where it went.
inline void EmitCsv(const CsvWriter& csv, const std::string& name) {
  const std::string path = ResultPath(name);
  const Status s = csv.WriteFile(path);
  if (s.ok()) {
    std::printf("  -> wrote %s\n", path.c_str());
  } else {
    std::printf("  !! could not write %s: %s\n", path.c_str(),
                s.ToString().c_str());
  }
}

/// Section banner.
inline void Banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace grgad::bench

#endif  // GRGAD_BENCH_BENCH_COMMON_H_
