// Shared harness for the table/figure reproduction benches.
//
// Every bench binary prints the same rows/series its paper counterpart
// reports and writes a CSV under ./bench_results/. Two modes:
//   quick (default): 1 seed, reduced epochs/candidate budgets — minutes.
//   full (GRGAD_BENCH_FULL=1): 3 seeds, paper-scale settings.
// Absolute values differ from the paper's testbed (synthetic data, CPU
// simulator); the *shape* — method ranking, CR gap, ablation ordering — is
// what these benches reproduce (see EXPERIMENTS.md).
#ifndef GRGAD_BENCH_BENCH_COMMON_H_
#define GRGAD_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/as_gae.h"
#include "src/baselines/deepfd.h"
#include "src/baselines/group_extraction.h"
#include "src/core/evaluation.h"
#include "src/core/pipeline.h"
#include "src/data/registry.h"
#include "src/gae/comga.h"
#include "src/gae/deep_ae.h"
#include "src/gae/dominant.h"
#include "src/util/csv.h"
#include "src/util/timer.h"

namespace grgad::bench {

/// Global bench configuration derived from the environment.
struct BenchConfig {
  bool full = false;
  int seeds = 1;
  int gae_epochs = 40;
  int tpgcl_epochs = 30;
  int max_candidate_groups = 800;

  static BenchConfig FromEnv() {
    BenchConfig config;
    const char* env = std::getenv("GRGAD_BENCH_FULL");
    config.full = (env != nullptr && env[0] == '1');
    if (config.full) {
      config.seeds = 3;
      config.gae_epochs = 80;
      config.tpgcl_epochs = 60;
      config.max_candidate_groups = 1600;
    }
    return config;
  }
};

/// The five evaluation datasets in Table I order.
inline std::vector<std::string> BenchDatasets() {
  return {"simml", "cora-group", "citeseer-group", "amlpublic", "ethereum"};
}

/// Builds the configured TP-GrGAD options for one (config, seed) pair.
inline TpGrGadOptions MakeTpGrGadOptions(const BenchConfig& config,
                                         uint64_t seed) {
  TpGrGadOptions options;
  options.seed = seed;
  options.mh_gae.base.epochs = config.gae_epochs;
  options.tpgcl.epochs = config.tpgcl_epochs;
  options.tpgcl.neg_per_sample = 16;
  options.sampler.max_groups = config.max_candidate_groups;
  options.ReseedStages();
  return options;
}

/// All six Table III methods, freshly constructed per seed.
inline std::vector<std::unique_ptr<GroupDetector>> MakeAllMethods(
    const BenchConfig& config, uint64_t seed) {
  std::vector<std::unique_ptr<GroupDetector>> methods;
  GaeOptions gae;
  gae.epochs = config.gae_epochs;
  gae.seed = seed;
  GroupExtractionOptions extraction;  // N-GAD -> group adapter, 10% nodes.
  methods.push_back(std::make_unique<NodeScorerGroupAdapter>(
      std::make_shared<Dominant>(gae), extraction));
  DeepAeOptions deep_ae;
  deep_ae.epochs = config.gae_epochs;
  deep_ae.seed = seed ^ 0x10;
  methods.push_back(std::make_unique<NodeScorerGroupAdapter>(
      std::make_shared<DeepAe>(deep_ae), extraction));
  ComGaOptions comga;
  comga.epochs = config.gae_epochs;
  comga.seed = seed ^ 0x20;
  methods.push_back(std::make_unique<NodeScorerGroupAdapter>(
      std::make_shared<ComGa>(comga), extraction));
  DeepFdOptions deepfd;
  deepfd.epochs = config.gae_epochs;
  deepfd.seed = seed ^ 0x30;
  methods.push_back(std::make_unique<DeepFd>(deepfd));
  AsGaeOptions as_gae;
  as_gae.gae.epochs = config.gae_epochs;
  as_gae.gae.seed = seed ^ 0x40;
  methods.push_back(std::make_unique<AsGae>(as_gae));
  methods.push_back(
      std::make_unique<TpGrGad>(MakeTpGrGadOptions(config, seed)));
  return methods;
}

/// Ensures ./bench_results exists and returns "bench_results/<name>".
inline std::string ResultPath(const std::string& name) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  return "bench_results/" + name;
}

/// Writes the CSV and reports where it went.
inline void EmitCsv(const CsvWriter& csv, const std::string& name) {
  const std::string path = ResultPath(name);
  const Status s = csv.WriteFile(path);
  if (s.ok()) {
    std::printf("  -> wrote %s\n", path.c_str());
  } else {
    std::printf("  !! could not write %s: %s\n", path.c_str(),
                s.ToString().c_str());
  }
}

/// Section banner.
inline void Banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace grgad::bench

#endif  // GRGAD_BENCH_BENCH_COMMON_H_
