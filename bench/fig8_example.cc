// Fig. 3 / Fig. 8 reproduction: the qualitative example graph. Four
// GAE-style detectors (DOMINANT, DeepAE, ComGA, MH-GAE) score the nodes of
// a graph with three planted anomaly groups; we report, per method, the
// detected-node mask, group coverage, interior recall (the nodes "deep in
// the group" that the paper shows vanilla methods missing), and the
// connected-component fragment sizes — the data behind the red-node plots.
#include <numeric>

#include "bench/bench_common.h"
#include "src/gae/comga.h"
#include "src/gae/deep_ae.h"
#include "src/gae/dominant.h"
#include "src/gae/mh_gae.h"
#include "src/graph/algorithms.h"
#include "src/metrics/classification.h"

namespace grgad::bench {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  Banner("Fig. 8: GAE-based detectors on the example graph");
  Dataset d;
  if (!LoadBenchDataset("example", &d)) return 1;
  const auto labels = d.NodeLabels();
  const int num_anomalous = std::accumulate(labels.begin(), labels.end(), 0);
  std::printf("example graph: %d nodes, %d edges, %zu planted groups "
              "(%d anomalous nodes)\n",
              d.graph.num_nodes(), d.graph.num_edges(),
              d.anomaly_groups.size(), num_anomalous);

  // Interior nodes: all neighbors inside the same group (Fig. 3's "deep
  // inside" nodes).
  std::vector<int> interior(d.graph.num_nodes(), 0);
  for (const auto& group : d.anomaly_groups) {
    for (int v : group) {
      bool deep = true;
      for (int w : d.graph.Neighbors(v)) deep &= (labels[w] == 1);
      if (deep) interior[v] = 1;
    }
  }
  const int num_interior = std::accumulate(interior.begin(), interior.end(),
                                           0);

  GaeOptions gae;
  gae.epochs = config.gae_epochs;
  std::vector<std::pair<std::string, std::shared_ptr<NodeScorer>>> scorers;
  scorers.emplace_back("dominant", std::make_shared<Dominant>(gae));
  DeepAeOptions deep_ae;
  deep_ae.epochs = config.gae_epochs;
  scorers.emplace_back("deepae", std::make_shared<DeepAe>(deep_ae));
  ComGaOptions comga;
  comga.epochs = config.gae_epochs;
  scorers.emplace_back("comga", std::make_shared<ComGa>(comga));
  MhGaeOptions mh;
  mh.base.epochs = config.gae_epochs;
  scorers.emplace_back("mh-gae", std::make_shared<MhGae>(mh));

  CsvWriter csv({"method", "node_auc", "detected", "group_recall",
                 "interior_recall", "num_fragments", "largest_fragment"});
  std::printf("\n%-10s %9s %9s %13s %16s %11s %9s\n", "method", "node_auc",
              "detected", "group_recall", "interior_recall", "fragments",
              "largest");
  for (const auto& [name, scorer] : scorers) {
    const auto scores = scorer->FitNodeScores(d.graph);
    // Flag the same number of nodes as there are anomalous ones.
    const auto flagged = LabelsAtContamination(
        scores, static_cast<double>(num_anomalous) / d.graph.num_nodes());
    std::vector<int> flagged_nodes;
    int hit = 0, interior_hit = 0;
    for (int v = 0; v < d.graph.num_nodes(); ++v) {
      if (flagged[v] == 1) {
        flagged_nodes.push_back(v);
        hit += labels[v];
        interior_hit += interior[v];
      }
    }
    const auto fragments = ComponentsOfSubset(d.graph, flagged_nodes);
    size_t largest = 0;
    for (const auto& f : fragments) largest = std::max(largest, f.size());
    const double auc = RocAuc(labels, scores);
    const double recall = static_cast<double>(hit) / num_anomalous;
    const double interior_recall =
        num_interior > 0 ? static_cast<double>(interior_hit) / num_interior
                         : 0.0;
    std::printf("%-10s %9.3f %6zu/%-2d %13.3f %16.3f %11zu %9zu\n",
                name.c_str(), auc, flagged_nodes.size(), num_anomalous,
                recall, interior_recall, fragments.size(), largest);
    csv.AppendRow({name, FormatDouble(auc),
                   std::to_string(flagged_nodes.size()),
                   FormatDouble(recall), FormatDouble(interior_recall),
                   std::to_string(fragments.size()),
                   std::to_string(largest)});
  }
  std::printf("\nShape to observe (paper Fig. 8): mh-gae leads group recall\n"
              "and interior recall; the vanilla methods' detections\n"
              "fragment into many small components.\n");
  EmitCsv(csv, "fig8_example.csv");
  return 0;
}

}  // namespace
}  // namespace grgad::bench

int main() { return grgad::bench::Run(); }
