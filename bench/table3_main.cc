// Table III reproduction: CR / F1 / AUC of all six methods on all five
// datasets (mean ± standard error over seeds). This is the paper's headline
// comparison; the shape to reproduce is TP-GrGAD dominating CR everywhere
// and leading or matching F1/AUC.
#include "bench/bench_common.h"

namespace grgad::bench {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  Banner(std::string("Table III: main results (") +
         (config.full ? "full" : "quick") + " mode, " +
         std::to_string(config.seeds) + " seed(s))");
  CsvWriter csv({"dataset", "method", "cr_mean", "cr_stderr", "f1_mean",
                 "f1_stderr", "auc_mean", "auc_stderr", "avg_group_size",
                 "seconds"});
  for (const std::string& dataset_name : BenchDatasets()) {
    std::printf("\n--- %s ---\n", dataset_name.c_str());
    std::printf("%-10s %13s %13s %13s %8s %8s\n", "method", "CR", "F1", "AUC",
                "size", "sec");
    // Method count is fixed; evaluate seed-by-seed, aggregate per method.
    const size_t num_methods = MakeAllMethods(config, 1).size();
    std::vector<std::vector<GroupEvaluation>> evals(num_methods);
    std::vector<std::string> names(num_methods);
    std::vector<double> seconds(num_methods, 0.0);
    for (int s = 0; s < config.seeds; ++s) {
      Dataset dataset;
      if (!LoadBenchDataset(dataset_name, &dataset, 42 + s)) return 1;
      auto methods = MakeAllMethods(config, 1000 + s * 17);
      for (size_t m = 0; m < methods.size(); ++m) {
        Timer timer;
        const auto groups = methods[m]->DetectGroups(dataset.graph);
        seconds[m] += timer.ElapsedSeconds();
        evals[m].push_back(EvaluateGroups(dataset, groups));
        names[m] = methods[m]->Name();
      }
    }
    for (size_t m = 0; m < num_methods; ++m) {
      const AggregatedEvaluation agg = Aggregate(evals[m]);
      std::printf("%-10s %13s %13s %13s %8.2f %8.1f\n", names[m].c_str(),
                  FormatCell(agg.cr_mean, agg.cr_stderr).c_str(),
                  FormatCell(agg.f1_mean, agg.f1_stderr).c_str(),
                  FormatCell(agg.auc_mean, agg.auc_stderr).c_str(),
                  agg.size_mean, seconds[m] / config.seeds);
      csv.AppendRow({dataset_name, names[m], FormatDouble(agg.cr_mean),
                     FormatDouble(agg.cr_stderr), FormatDouble(agg.f1_mean),
                     FormatDouble(agg.f1_stderr), FormatDouble(agg.auc_mean),
                     FormatDouble(agg.auc_stderr),
                     FormatDouble(agg.size_mean),
                     FormatDouble(seconds[m] / config.seeds)});
    }
  }
  EmitCsv(csv, "table3_main.csv");
  return 0;
}

}  // namespace
}  // namespace grgad::bench

int main() { return grgad::bench::Run(); }
