// Table I reproduction: statistical details of the five datasets.
// Prints #Node / #Edge / #Attr / #AnomalyGroup / Avg.size for our generated
// instances next to the paper's reported values.
#include "bench/bench_common.h"

namespace grgad::bench {
namespace {

struct PaperRow {
  const char* name;
  int nodes, edges, attrs, groups;
  double avg_size;
};

// The paper's Table I (edges there count the raw directed/multigraph dumps;
// ours are simple undirected — shape, not equality, is the target).
constexpr PaperRow kPaperRows[] = {
    {"simml", 2768, 4226, 3123, 74, 3.52},
    {"cora-group", 2847, 10792, 1433, 22, 6.32},
    {"citeseer-group", 3463, 9334, 3703, 22, 6.18},
    {"amlpublic", 16720, 17238, 16, 19, 19.05},
    {"ethereum", 1823, 3254, 13, 17, 7.23},
};

int Run() {
  Banner("Table I: statistical details of the datasets (ours vs paper)");
  std::printf("%-16s %22s %22s %8s %14s %18s\n", "Dataset", "#Node (paper)",
              "#Edge (paper)", "#Attr", "#Groups (paper)",
              "Avg.size (paper)");
  CsvWriter csv({"dataset", "nodes", "edges", "attr_dim", "groups",
                 "avg_size", "paper_nodes", "paper_edges", "paper_groups",
                 "paper_avg_size"});
  for (const PaperRow& row : kPaperRows) {
    Dataset d;
    if (!LoadBenchDataset(row.name, &d)) return 1;
    std::printf("%-16s %9d (%6d) %9d (%6d) %8zu %6zu (%3d) %10.2f (%5.2f)\n",
                row.name, d.graph.num_nodes(), row.nodes, d.graph.num_edges(),
                row.edges, d.graph.attr_dim(), d.anomaly_groups.size(),
                row.groups, d.AverageGroupSize(), row.avg_size);
    csv.AppendRow({row.name, std::to_string(d.graph.num_nodes()),
                   std::to_string(d.graph.num_edges()),
                   std::to_string(d.graph.attr_dim()),
                   std::to_string(d.anomaly_groups.size()),
                   FormatDouble(d.AverageGroupSize()),
                   std::to_string(row.nodes), std::to_string(row.edges),
                   std::to_string(row.groups), FormatDouble(row.avg_size)});
  }
  std::printf("\nNote: #Attr is configurable (DatasetOptions::attr_dim); the\n"
              "paper's raw bag-of-words widths are narrowed by default for\n"
              "2-core runtime (DESIGN.md section 3).\n");
  EmitCsv(csv, "table1_datasets.csv");
  return 0;
}

}  // namespace
}  // namespace grgad::bench

int main() { return grgad::bench::Run(); }
