// Table II reproduction: topology-pattern statistics of the anomaly groups
// in the two real-world-style datasets, classified by ClassifyGroupPattern
// on each ground-truth group's induced subgraph.
#include "bench/bench_common.h"
#include "src/sampling/pattern_search.h"

namespace grgad::bench {
namespace {

struct PaperRow {
  const char* name;
  int paths, trees, cycles, total;
};

constexpr PaperRow kPaperRows[] = {
    {"amlpublic", 18, 1, 0, 19},
    {"ethereum", 1, 9, 7, 17},
};

int Run() {
  Banner("Table II: topology pattern statistics (ours vs paper)");
  std::printf("%-12s %14s %14s %14s %14s\n", "Dataset", "#Path (paper)",
              "#Tree (paper)", "#Cycle (paper)", "#Total (paper)");
  CsvWriter csv({"dataset", "paths", "trees", "cycles", "mixed", "total",
                 "paper_paths", "paper_trees", "paper_cycles"});
  for (const PaperRow& row : kPaperRows) {
    Dataset d;
    if (!LoadBenchDataset(row.name, &d)) return 1;
    int counts[4] = {0, 0, 0, 0};
    for (const auto& group : d.anomaly_groups) {
      const Graph sub = d.graph.InducedSubgraph(group);
      counts[static_cast<int>(ClassifyGroupPattern(sub))]++;
    }
    std::printf("%-12s %6d (%4d) %6d (%4d) %6d (%4d) %6zu (%4d)\n", row.name,
                counts[0], row.paths, counts[1], row.trees, counts[2],
                row.cycles, d.anomaly_groups.size(), row.total);
    if (counts[3] > 0) {
      std::printf("  (%d groups classified as mixed: background chords on "
                  "planted patterns)\n",
                  counts[3]);
    }
    csv.AppendRow({row.name, std::to_string(counts[0]),
                   std::to_string(counts[1]), std::to_string(counts[2]),
                   std::to_string(counts[3]),
                   std::to_string(d.anomaly_groups.size()),
                   std::to_string(row.paths), std::to_string(row.trees),
                   std::to_string(row.cycles)});
  }
  EmitCsv(csv, "table2_patterns.csv");
  return 0;
}

}  // namespace
}  // namespace grgad::bench

int main() { return grgad::bench::Run(); }
