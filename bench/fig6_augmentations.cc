// Fig. 6 reproduction: 5x5 augmentation-combination heatmaps. Rows are the
// negative-view augmentation, columns the positive-view augmentation; each
// cell is the pipeline F1 when TPGCL trains with that pair. Paper shape:
// the (PBA, PPA) cell is at or near the maximum of every heatmap.
//
// Anchor localization and group sampling run once per dataset; only TPGCL +
// scoring re-run per cell. Quick mode covers the two financial datasets;
// GRGAD_BENCH_FULL=1 covers all five.
#include "bench/bench_common.h"
#include "src/gcl/tpgcl.h"
#include "src/metrics/classification.h"
#include "src/metrics/completeness.h"
#include "src/sampling/group_sampler.h"

namespace grgad::bench {
namespace {

constexpr AugmentationKind kAugs[] = {
    AugmentationKind::kPba, AugmentationKind::kPpa,
    AugmentationKind::kNodeDrop, AugmentationKind::kEdgeRemove,
    AugmentationKind::kFeatureMask};

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  Banner("Fig. 6: augmentation-combination heatmaps (F1)");
  const std::vector<std::string> datasets =
      config.full ? BenchDatasets()
                  : std::vector<std::string>{"simml", "ethereum"};
  CsvWriter csv({"dataset", "negative_aug", "positive_aug", "f1"});
  for (const std::string& dataset_name : datasets) {
    Dataset dataset;
    if (!LoadBenchDataset(dataset_name, &dataset)) return 1;
    const Graph& g = dataset.graph;

    // Stage 1+2 once: anchors and candidate groups are augmentation-free.
    TpGrGadOptions base = MakeTpGrGadOptions(config, 1000);
    auto anchors = RunAnchorStage(g, base);
    if (!anchors.ok()) return 1;
    auto sampled = RunCandidateStage(g, anchors.value().anchors, base);
    if (!sampled.ok()) return 1;
    const auto& candidates = sampled.value().groups;
    if (candidates.size() < 2) {
      std::printf("%s: not enough candidates, skipping\n",
                  dataset_name.c_str());
      continue;
    }
    // Group-wise ground-truth labels, shared by all cells (same 0.5 Jaccard
    // threshold as EvaluateGroups).
    const auto match = MatchGroups(dataset.anomaly_groups, candidates, 0.5);

    std::printf("\n%s (%zu candidates)\n        ", dataset_name.c_str(),
                candidates.size());
    for (AugmentationKind pos : kAugs) std::printf("%8s", ToString(pos));
    std::printf("   <- positive aug\n");
    for (AugmentationKind neg : kAugs) {
      std::printf("%6s |", ToString(neg));
      for (AugmentationKind pos : kAugs) {
        TpgclOptions tpgcl_options = base.tpgcl;
        tpgcl_options.negative_aug = neg;
        tpgcl_options.positive_aug = pos;
        Tpgcl tpgcl(tpgcl_options);
        const TpgclResult embed = tpgcl.FitEmbed(g, candidates);
        auto detector = MakeOutlierDetector(base.detector, base.seed);
        const auto scores = detector->FitScore(embed.embeddings);
        std::vector<int> y_true(candidates.size(), 0);
        for (size_t i = 0; i < candidates.size(); ++i) {
          y_true[i] = match[i] >= 0;
        }
        const double f1 = F1AtTrueContamination(y_true, scores);
        std::printf("%8.3f", f1);
        std::fflush(stdout);
        csv.AppendRow({dataset_name, ToString(neg), ToString(pos),
                       FormatDouble(f1)});
      }
      std::printf("\n");
    }
  }
  EmitCsv(csv, "fig6_augmentations.csv");
  return 0;
}

}  // namespace
}  // namespace grgad::bench

int main() { return grgad::bench::Run(); }
