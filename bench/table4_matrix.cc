// Table IV reproduction: CR of TP-GrGAD under each MH-GAE reconstruction
// objective (A, A^3, A^5, A^7, Ã). Paper shape: A and A^3 worst, the
// longer-range objectives (A^5, A^7, Ã) best, with Ã winning on most rows.
#include "bench/bench_common.h"

namespace grgad::bench {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  Banner("Table IV: reconstruction-objective ablation (CR)");
  const std::vector<ReconTarget> targets = {
      ReconTarget::kAdjacency, ReconTarget::kPower3, ReconTarget::kPower5,
      ReconTarget::kPower7, ReconTarget::kGraphSnn};
  std::printf("%-16s", "Dataset");
  for (ReconTarget t : targets) std::printf("%9s", ToString(t));
  std::printf("\n");
  CsvWriter csv({"dataset", "target", "cr"});
  for (const std::string& dataset_name : BenchDatasets()) {
    Dataset dataset;
    if (!LoadBenchDataset(dataset_name, &dataset)) return 1;
    std::printf("%-16s", dataset_name.c_str());
    std::fflush(stdout);
    for (ReconTarget target : targets) {
      TpGrGadOptions options = MakeTpGrGadOptions(config, 1000);
      options.mh_gae.base.target = target;
      TpGrGad method(options);
      const GroupEvaluation eval =
          EvaluateGroups(dataset, method.DetectGroups(dataset.graph));
      std::printf("%9.3f", eval.cr);
      std::fflush(stdout);
      csv.AppendRow({dataset_name, ToString(target), FormatDouble(eval.cr)});
    }
    std::printf("\n");
  }
  EmitCsv(csv, "table4_matrix.csv");
  return 0;
}

}  // namespace
}  // namespace grgad::bench

int main() { return grgad::bench::Run(); }
