// Fig. 7 reproduction: t-SNE visualization of TPGCL group embeddings.
// Emits one CSV of 2-d points per dataset (columns: dim1, dim2, label) —
// the exact data behind the paper's scatter plots — plus a quantitative
// separation score so the clustering claim is checkable without a plot.
#include "bench/bench_common.h"
#include "src/metrics/completeness.h"
#include "src/viz/tsne.h"

namespace grgad::bench {
namespace {

int Run() {
  const BenchConfig config = BenchConfig::FromEnv();
  Banner("Fig. 7: t-SNE of TPGCL group embeddings");
  const std::vector<std::string> datasets =
      config.full ? BenchDatasets()
                  : std::vector<std::string>{"simml", "cora-group",
                                             "ethereum"};
  CsvWriter summary({"dataset", "num_groups", "num_anomalous",
                     "separation_score"});
  for (const std::string& dataset_name : datasets) {
    Dataset dataset;
    if (!LoadBenchDataset(dataset_name, &dataset)) return 1;
    TpGrGad method(MakeTpGrGadOptions(config, 1000));
    const PipelineArtifacts artifacts = method.Run(dataset.graph);
    if (artifacts.candidate_groups.size() < 4) {
      std::printf("%s: too few candidates, skipping\n", dataset_name.c_str());
      continue;
    }
    const auto match =
        MatchGroups(dataset.anomaly_groups, artifacts.candidate_groups, 0.5);
    std::vector<int> labels(artifacts.candidate_groups.size(), 0);
    int anomalous = 0;
    for (size_t i = 0; i < labels.size(); ++i) {
      labels[i] = match[i] >= 0;
      anomalous += labels[i];
    }
    TsneOptions tsne_options;
    tsne_options.iterations = config.full ? 500 : 250;
    const Matrix points = Tsne(artifacts.group_embeddings, tsne_options);
    const double separation = BinarySeparationScore(points, labels);
    std::printf("%-16s %4zu groups (%3d anomalous)  separation %.3f\n",
                dataset_name.c_str(), labels.size(), anomalous, separation);
    CsvWriter cloud({"dim1", "dim2", "label"});
    for (size_t i = 0; i < points.rows(); ++i) {
      cloud.AppendNumericRow({points(i, 0), points(i, 1),
                              static_cast<double>(labels[i])});
    }
    EmitCsv(cloud, "fig7_tsne_" + dataset_name + ".csv");
    summary.AppendRow({dataset_name, std::to_string(labels.size()),
                       std::to_string(anomalous), FormatDouble(separation)});
  }
  EmitCsv(summary, "fig7_tsne_summary.csv");
  return 0;
}

}  // namespace
}  // namespace grgad::bench

int main() { return grgad::bench::Run(); }
