// MINE-style mutual-information objective (paper Eqn. (8), after Belghazi
// et al.): a trainable statistic Φ (an MLP over concatenated embeddings)
// plugged into the Donsker–Varadhan form,
//
//   L = -(1/m) Σ_i Φ(zp_i, zn_i) + log (1/m) Σ_i Σ_{j≠i} e^{Φ(zp_i, zn_j)}.
//
// TPGCL minimizes L jointly over the encoder f_theta and Φ. For large m the
// off-diagonal sum is subsampled (K mismatched pairs per i) with the
// corresponding log-count correction.
#ifndef GRGAD_GCL_MINE_H_
#define GRGAD_GCL_MINE_H_

#include <vector>

#include "src/nn/layers.h"

namespace grgad {

/// The trainable statistic Φ: MLP([z_a || z_b]) -> scalar.
class MineEstimator {
 public:
  /// Both inputs are `embed_dim` wide; hidden layer is `hidden_dim`.
  MineEstimator(int embed_dim, int hidden_dim, Rng* rng);

  /// Evaluates Φ on row pairs (idx_a[p] of za, idx_b[p] of zb) -> p x 1.
  Var Forward(const Var& za, const Var& zb, const std::vector<int>& idx_a,
              const std::vector<int>& idx_b) const;

  std::vector<Var> Params() const { return mlp_.Params(); }

 private:
  Mlp mlp_;
};

/// Builds the Eqn. (8) loss from positive-view and negative-view embedding
/// matrices (both m x d). `neg_per_sample` mismatched pairs are drawn per
/// sample (clamped to m-1; m-1 gives the exact double sum). 1x1 output.
Var MineLoss(const MineEstimator& phi, const Var& z_pos, const Var& z_neg,
             int neg_per_sample, Rng* rng);

}  // namespace grgad

#endif  // GRGAD_GCL_MINE_H_
