#include "src/gcl/tpgcl.h"

#include <cstring>

#include "src/graph/operators.h"
#include "src/nn/layers.h"
#include "src/nn/optim.h"
#include "src/gcl/mine.h"
#include "src/util/logging.h"

namespace grgad {

GraphBatch BuildGraphBatch(const std::vector<Graph>& graphs) {
  GRGAD_CHECK(!graphs.empty());
  const size_t d = graphs[0].attr_dim();
  size_t total = 0;
  // Normalize each member adjacency up front: the nnz totals size the
  // triplet buffers exactly (no reallocation), and the emission order below
  // is (row, col)-sorted — block-diagonal blocks in ascending row order,
  // CSR rows already sorted within — so FromTriplets takes its no-sort
  // fast path.
  std::vector<std::shared_ptr<const SparseMatrix>> a_norms;
  a_norms.reserve(graphs.size());
  size_t total_nnz = 0;
  for (const Graph& g : graphs) {
    GRGAD_CHECK_EQ(g.attr_dim(), d);
    GRGAD_CHECK_GT(g.num_nodes(), 0);
    total += static_cast<size_t>(g.num_nodes());
    a_norms.push_back(NormalizedAdjacency(g));
    total_nnz += a_norms.back()->nnz();
  }
  GraphBatch batch;
  batch.x = Matrix(total, d);
  std::vector<Triplet> op_triplets;
  op_triplets.reserve(total_nnz);
  std::vector<Triplet> pool_triplets;
  pool_triplets.reserve(total);
  size_t offset = 0;
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    const Graph& g = graphs[gi];
    const SparseMatrix& a_norm = *a_norms[gi];
    for (size_t i = 0; i < a_norm.rows(); ++i) {
      auto cols = a_norm.RowCols(i);
      auto vals = a_norm.RowValues(i);
      for (size_t p = 0; p < cols.size(); ++p) {
        op_triplets.push_back({static_cast<int>(offset + i),
                               static_cast<int>(offset + cols[p]), vals[p]});
      }
    }
    const double inv = 1.0 / static_cast<double>(g.num_nodes());
    for (int v = 0; v < g.num_nodes(); ++v) {
      pool_triplets.push_back(
          {static_cast<int>(gi), static_cast<int>(offset + v), inv});
      std::memcpy(batch.x.RowPtr(offset + v), g.attributes().RowPtr(v),
                  d * sizeof(double));
    }
    offset += static_cast<size_t>(g.num_nodes());
  }
  batch.op = std::make_shared<const SparseMatrix>(
      SparseMatrix::FromTriplets(total, total, std::move(op_triplets)));
  batch.pool = std::make_shared<const SparseMatrix>(SparseMatrix::FromTriplets(
      graphs.size(), total, std::move(pool_triplets)));
  return batch;
}

Tpgcl::Tpgcl(TpgclOptions options) : options_(options) {}

TpgclResult Tpgcl::FitEmbed(
    const Graph& host, const std::vector<std::vector<int>>& groups) const {
  GRGAD_CHECK(host.has_attributes());
  GRGAD_CHECK_GE(groups.size(), 2u);
  const int m = static_cast<int>(groups.size());
  const int d = static_cast<int>(host.attr_dim());
  Rng rng(options_.seed ^ 0x7470676cULL);

  // Declared before any Var; see GcnGae::Fit.
  MatrixArena local_arena;
  MatrixArena* arena = options_.arena != nullptr ? options_.arena
                       : TrainingFastPathEnabled() ? &local_arena
                                                   : nullptr;
  ArenaScope arena_scope(arena);

  // --- Views: pattern search + one PPA and one PBA view per group. ---
  std::vector<Graph> originals, positives, negatives;
  originals.reserve(m);
  positives.reserve(m);
  negatives.reserve(m);
  for (const auto& group : groups) {
    Graph induced = host.InducedSubgraph(group);
    const FoundPatterns patterns =
        SearchPatterns(induced, options_.pattern_options);
    positives.push_back(
        Augment(induced, options_.positive_aug, patterns, &rng));
    negatives.push_back(
        Augment(induced, options_.negative_aug, patterns, &rng));
    originals.push_back(std::move(induced));
  }
  const GraphBatch orig_batch = BuildGraphBatch(originals);
  const GraphBatch pos_batch = BuildGraphBatch(positives);
  const GraphBatch neg_batch = BuildGraphBatch(negatives);

  // --- Shared encoder f_theta and statistic Φ. ---
  GcnLayer enc1(d, options_.hidden_dim, &rng);
  GcnLayer enc2(options_.hidden_dim, options_.embed_dim, &rng);
  MineEstimator phi(options_.embed_dim, options_.mine_hidden, &rng);
  std::vector<Var> params;
  for (const auto& layer_params :
       {enc1.Params(), enc2.Params(), phi.Params()}) {
    params.insert(params.end(), layer_params.begin(), layer_params.end());
  }
  AdamOptions adam_options;
  adam_options.lr = options_.lr;
  adam_options.clip_grad_norm = 5.0;
  Adam adam(params, adam_options);

  auto encode = [&](const GraphBatch& batch) {
    Var x(batch.x, /*requires_grad=*/false);
    Var h = Relu(enc1.Forward(batch.op, x));
    Var node_embed = enc2.Forward(batch.op, h);
    return Spmm(batch.pool, node_embed);  // m x embed readout.
  };

  TpgclResult result;
  result.loss_history.reserve(options_.epochs);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    if (options_.cancel.cancelled()) return result;
    adam.ZeroGrad();
    Var z_pos = encode(pos_batch);
    Var z_neg = encode(neg_batch);
    Var loss = MineLoss(phi, z_pos, z_neg, options_.neg_per_sample, &rng);
    loss.Backward();
    adam.Step();
    result.loss_history.push_back(loss.item());
  }
  // Final embeddings of the *original* candidate groups.
  result.embeddings = encode(orig_batch).value();
  GRGAD_LOG(kDebug) << "TPGCL trained on " << m << " groups, final loss="
                    << (result.loss_history.empty()
                            ? 0.0
                            : result.loss_history.back());
  return result;
}

}  // namespace grgad
