#include "src/gcl/tpgcl.h"

#include <cmath>
#include <cstring>

#include "src/graph/operators.h"
#include "src/graph/subgraph_view.h"
#include "src/nn/layers.h"
#include "src/nn/optim.h"
#include "src/gcl/mine.h"
#include "src/util/fastpath.h"
#include "src/util/logging.h"

namespace grgad {

GraphBatch BuildGraphBatch(const std::vector<Graph>& graphs) {
  GRGAD_CHECK(!graphs.empty());
  const size_t d = graphs[0].attr_dim();
  size_t total = 0;
  // Normalize each member adjacency up front: the nnz totals size the
  // triplet buffers exactly (no reallocation), and the emission order below
  // is (row, col)-sorted — block-diagonal blocks in ascending row order,
  // CSR rows already sorted within — so FromTriplets takes its no-sort
  // fast path.
  std::vector<std::shared_ptr<const SparseMatrix>> a_norms;
  a_norms.reserve(graphs.size());
  size_t total_nnz = 0;
  for (const Graph& g : graphs) {
    GRGAD_CHECK_EQ(g.attr_dim(), d);
    GRGAD_CHECK_GT(g.num_nodes(), 0);
    total += static_cast<size_t>(g.num_nodes());
    a_norms.push_back(NormalizedAdjacency(g));
    total_nnz += a_norms.back()->nnz();
  }
  GraphBatch batch;
  batch.x = Matrix(total, d);
  std::vector<Triplet> op_triplets;
  op_triplets.reserve(total_nnz);
  std::vector<Triplet> pool_triplets;
  pool_triplets.reserve(total);
  size_t offset = 0;
  for (size_t gi = 0; gi < graphs.size(); ++gi) {
    const Graph& g = graphs[gi];
    const SparseMatrix& a_norm = *a_norms[gi];
    for (size_t i = 0; i < a_norm.rows(); ++i) {
      auto cols = a_norm.RowCols(i);
      auto vals = a_norm.RowValues(i);
      for (size_t p = 0; p < cols.size(); ++p) {
        op_triplets.push_back({static_cast<int>(offset + i),
                               static_cast<int>(offset + cols[p]), vals[p]});
      }
    }
    const double inv = 1.0 / static_cast<double>(g.num_nodes());
    for (int v = 0; v < g.num_nodes(); ++v) {
      pool_triplets.push_back(
          {static_cast<int>(gi), static_cast<int>(offset + v), inv});
      std::memcpy(batch.x.RowPtr(offset + v), g.attributes().RowPtr(v),
                  d * sizeof(double));
    }
    offset += static_cast<size_t>(g.num_nodes());
  }
  batch.op = std::make_shared<const SparseMatrix>(
      SparseMatrix::FromTriplets(total, total, std::move(op_triplets)));
  batch.pool = std::make_shared<const SparseMatrix>(SparseMatrix::FromTriplets(
      graphs.size(), total, std::move(pool_triplets)));
  return batch;
}

GraphBatch BuildGraphBatchFromGroups(
    const Graph& host, const std::vector<std::vector<int>>& groups) {
  GRGAD_CHECK(!groups.empty());
  GRGAD_CHECK_GT(host.num_nodes(), 0);
  const size_t d = host.attr_dim();
  SubgraphView view;
  // Sizing pass: exact node and nnz totals per group (the view dedups node
  // lists the way InducedSubgraph would).
  std::vector<int> group_nodes(groups.size());
  size_t total = 0;
  size_t total_nnz = 0;
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    GRGAD_CHECK(!groups[gi].empty());
    view.Reset(host, groups[gi]);
    group_nodes[gi] = view.num_nodes();
    total += static_cast<size_t>(view.num_nodes());
    // Normalized adjacency nnz: both edge directions plus self loops.
    total_nnz += 2 * static_cast<size_t>(view.num_edges()) +
                 static_cast<size_t>(view.num_nodes());
  }
  GraphBatch batch;
  batch.x = Matrix(total, d);
  std::vector<Triplet> op_triplets;
  op_triplets.reserve(total_nnz);
  std::vector<Triplet> pool_triplets;
  pool_triplets.reserve(total);
  std::vector<double> inv_sqrt;
  size_t offset = 0;
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    view.Reset(host, groups[gi]);
    const int n = view.num_nodes();
    GRGAD_CHECK_EQ(n, group_nodes[gi]);
    // Symmetric normalization with self loops, exactly as
    // SymmetricNormalize(AdjacencyMatrix(g), true) computes it: the
    // self-looped degree is a small exact integer in double, and each entry
    // is 1.0 * inv_sqrt[i] * inv_sqrt[j].
    inv_sqrt.resize(n);
    for (int i = 0; i < n; ++i) {
      inv_sqrt[i] = 1.0 / std::sqrt(static_cast<double>(view.Degree(i) + 1));
    }
    for (int i = 0; i < n; ++i) {
      // Row i's columns are the sorted union of {i} and its neighbors —
      // emit the merge in ascending column order so the final FromTriplets
      // takes its no-sort fast path (and matches the seed's per-group
      // normalized CSR rows bit for bit).
      bool self_emitted = false;
      for (int w : view.Neighbors(i)) {
        if (!self_emitted && i < w) {
          op_triplets.push_back({static_cast<int>(offset + i),
                                 static_cast<int>(offset + i),
                                 1.0 * inv_sqrt[i] * inv_sqrt[i]});
          self_emitted = true;
        }
        op_triplets.push_back({static_cast<int>(offset + i),
                               static_cast<int>(offset + w),
                               1.0 * inv_sqrt[i] * inv_sqrt[w]});
      }
      if (!self_emitted) {
        op_triplets.push_back({static_cast<int>(offset + i),
                               static_cast<int>(offset + i),
                               1.0 * inv_sqrt[i] * inv_sqrt[i]});
      }
    }
    const double inv = 1.0 / static_cast<double>(n);
    for (int v = 0; v < n; ++v) {
      pool_triplets.push_back(
          {static_cast<int>(gi), static_cast<int>(offset + v), inv});
      if (d > 0) {
        std::memcpy(batch.x.RowPtr(offset + v), view.AttrRow(v),
                    d * sizeof(double));
      }
    }
    offset += static_cast<size_t>(n);
  }
  batch.op = std::make_shared<const SparseMatrix>(
      SparseMatrix::FromTriplets(total, total, std::move(op_triplets)));
  batch.pool = std::make_shared<const SparseMatrix>(SparseMatrix::FromTriplets(
      groups.size(), total, std::move(pool_triplets)));
  return batch;
}

Tpgcl::Tpgcl(TpgclOptions options) : options_(options) {}

TpgclResult Tpgcl::FitEmbed(
    const Graph& host, const std::vector<std::vector<int>>& groups) const {
  GRGAD_CHECK(host.has_attributes());
  GRGAD_CHECK_GE(groups.size(), 2u);
  const int m = static_cast<int>(groups.size());
  const int d = static_cast<int>(host.attr_dim());
  Rng rng(options_.seed ^ 0x7470676cULL);

  // Declared before any Var; see GcnGae::Fit.
  MatrixArena local_arena;
  MatrixArena* arena = options_.arena != nullptr ? options_.arena
                       : TrainingFastPathEnabled() ? &local_arena
                                                   : nullptr;
  ArenaScope arena_scope(arena);
  if (arena != nullptr) {
    if (options_.arena_byte_budget > 0) {
      arena->SetByteBudget(options_.arena_byte_budget);
    }
    arena->SetStopToken(options_.cancel);
  }

  // --- Views: pattern search + one PPA and one PBA view per group. On the
  // candidate fast path a single retargeted SubgraphView replaces the
  // per-group InducedSubgraph copies (identical patterns, identical rng
  // stream, bitwise identical batches — tests pin this). The augmented
  // views are real graphs either way: PPA/PBA add and remove nodes. ---
  std::vector<Graph> positives, negatives;
  positives.reserve(m);
  negatives.reserve(m);
  GraphBatch orig_batch;
  if (CandidateFastPathEnabled()) {
    SubgraphView view;
    for (const auto& group : groups) {
      view.Reset(host, group);
      const FoundPatterns patterns =
          SearchPatterns(view, options_.pattern_options);
      positives.push_back(
          Augment(view, options_.positive_aug, patterns, &rng));
      negatives.push_back(
          Augment(view, options_.negative_aug, patterns, &rng));
    }
    orig_batch = BuildGraphBatchFromGroups(host, groups);
  } else {
    std::vector<Graph> originals;
    originals.reserve(m);
    for (const auto& group : groups) {
      Graph induced = host.InducedSubgraph(group);
      const FoundPatterns patterns =
          SearchPatterns(induced, options_.pattern_options);
      positives.push_back(
          Augment(induced, options_.positive_aug, patterns, &rng));
      negatives.push_back(
          Augment(induced, options_.negative_aug, patterns, &rng));
      originals.push_back(std::move(induced));
    }
    orig_batch = BuildGraphBatch(originals);
  }
  const GraphBatch pos_batch = BuildGraphBatch(positives);
  const GraphBatch neg_batch = BuildGraphBatch(negatives);

  // --- Shared encoder f_theta and statistic Φ. ---
  GcnLayer enc1(d, options_.hidden_dim, &rng);
  GcnLayer enc2(options_.hidden_dim, options_.embed_dim, &rng);
  MineEstimator phi(options_.embed_dim, options_.mine_hidden, &rng);
  std::vector<Var> params;
  for (const auto& layer_params :
       {enc1.Params(), enc2.Params(), phi.Params()}) {
    params.insert(params.end(), layer_params.begin(), layer_params.end());
  }
  AdamOptions adam_options;
  adam_options.lr = options_.lr;
  adam_options.clip_grad_norm = 5.0;
  Adam adam(params, adam_options);

  auto encode = [&](const GraphBatch& batch) {
    Var x(batch.x, /*requires_grad=*/false);
    Var h = Relu(enc1.Forward(batch.op, x));
    Var node_embed = enc2.Forward(batch.op, h);
    return Spmm(batch.pool, node_embed);  // m x embed readout.
  };

  TpgclResult result;
  result.loss_history.reserve(options_.epochs);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    if (options_.cancel.stop_requested()) return result;
    adam.ZeroGrad();
    Var z_pos = encode(pos_batch);
    Var z_neg = encode(neg_batch);
    Var loss = MineLoss(phi, z_pos, z_neg, options_.neg_per_sample, &rng);
    loss.Backward();
    adam.Step();
    result.loss_history.push_back(loss.item());
  }
  // Final embeddings of the *original* candidate groups.
  result.embeddings = encode(orig_batch).value();
  GRGAD_LOG(kDebug) << "TPGCL trained on " << m << " groups, final loss="
                    << (result.loss_history.empty()
                            ? 0.0
                            : result.loss_history.back());
  return result;
}

}  // namespace grgad
