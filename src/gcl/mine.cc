#include "src/gcl/mine.h"

#include <cmath>

#include "src/util/rng.h"

namespace grgad {

MineEstimator::MineEstimator(int embed_dim, int hidden_dim, Rng* rng)
    : mlp_({static_cast<size_t>(2 * embed_dim),
            static_cast<size_t>(hidden_dim), 1},
           rng) {}

Var MineEstimator::Forward(const Var& za, const Var& zb,
                           const std::vector<int>& idx_a,
                           const std::vector<int>& idx_b) const {
  GRGAD_CHECK_EQ(idx_a.size(), idx_b.size());
  Var pairs = ConcatCols(GatherRows(za, idx_a), GatherRows(zb, idx_b));
  return mlp_.Forward(pairs);
}

Var MineLoss(const MineEstimator& phi, const Var& z_pos, const Var& z_neg,
             int neg_per_sample, Rng* rng) {
  GRGAD_CHECK(rng != nullptr);
  const int m = static_cast<int>(z_pos.rows());
  GRGAD_CHECK_EQ(z_neg.rows(), static_cast<size_t>(m));
  GRGAD_CHECK_GE(m, 2);
  const int k = std::min(neg_per_sample, m - 1);
  // Pair layout: first m rows are the matched (i, i) pairs, then k
  // mismatched (i, j != i) pairs per i.
  std::vector<int> idx_a, idx_b;
  idx_a.reserve(m + static_cast<size_t>(m) * k);
  idx_b.reserve(idx_a.capacity());
  for (int i = 0; i < m; ++i) {
    idx_a.push_back(i);
    idx_b.push_back(i);
  }
  for (int i = 0; i < m; ++i) {
    if (k == m - 1) {
      for (int j = 0; j < m; ++j) {
        if (j != i) {
          idx_a.push_back(i);
          idx_b.push_back(j);
        }
      }
    } else {
      for (int c = 0; c < k; ++c) {
        int j = static_cast<int>(rng->UniformInt(
            static_cast<uint64_t>(m - 1)));
        if (j >= i) ++j;  // Uniform over {0..m-1} \ {i}.
        idx_a.push_back(i);
        idx_b.push_back(j);
      }
    }
  }
  Var t = phi.Forward(z_pos, z_neg, idx_a, idx_b);
  // term1 = mean of the matched pairs (first m entries).
  std::vector<int> diag_rows(m);
  for (int i = 0; i < m; ++i) diag_rows[i] = i;
  Var term1 = MeanAll(GatherRows(t, diag_rows));
  // term2 = log (1/m) sum over mismatched pairs of e^T, with a count
  // correction when subsampled: each i contributes k of its m-1 terms.
  std::vector<uint8_t> mask(idx_a.size(), 0);
  for (size_t p = m; p < idx_a.size(); ++p) mask[p] = 1;
  Var lse = MaskedLogSumExp(t, mask);
  const double correction =
      std::log(static_cast<double>(m - 1) / static_cast<double>(k)) -
      std::log(static_cast<double>(m));
  // L = -term1 + (lse + correction). AddScalar folds the constant without
  // materializing a per-epoch leaf node (same addition, bitwise).
  Var loss = Add(Scale(term1, -1.0), lse);
  return AddScalar(loss, correction);
}

}  // namespace grgad
