// Topology-pattern-aware augmentations (paper Alg. 2) plus the three
// conventional GCL augmentations they are compared against in Fig. 6.
//
// PPA (Pattern Preserving Augmentation) expands every found pattern without
// breaking it: trees gain a child under the root, paths are prolonged at an
// endpoint, cycles are extended through a new node bridging two members —
// new-node attributes are the average of the pattern's members. PBA
// (Pattern Breaking Augmentation) destroys each pattern minimally: tree
// roots and path middles are dropped, cycles lose two random nodes. ND/ER/FM
// are the usual random node-drop / edge-removal / feature-mask baselines.
#ifndef GRGAD_GCL_AUGMENTATIONS_H_
#define GRGAD_GCL_AUGMENTATIONS_H_

#include <string>

#include "src/graph/graph.h"
#include "src/graph/subgraph_view.h"
#include "src/sampling/pattern_search.h"
#include "src/util/rng.h"

namespace grgad {

/// Augmentations available to TPGCL (Fig. 6 rows/columns).
enum class AugmentationKind {
  kPba,          ///< Pattern Breaking Augmentation (paper; negative views)
  kPpa,          ///< Pattern Preserving Augmentation (paper; positive views)
  kNodeDrop,     ///< ND: drop random nodes
  kEdgeRemove,   ///< ER: remove random edges
  kFeatureMask,  ///< FM: zero random feature dimensions
};

/// "PBA" | "PPA" | "ND" | "ER" | "FM".
const char* ToString(AugmentationKind kind);

/// Inverse of ToString(AugmentationKind); false for unknown names.
bool ParseAugmentationKind(const std::string& name, AugmentationKind* out);

/// Applies an augmentation to a candidate group's induced attributed graph.
///
/// `patterns` are the group's found topology patterns (only consulted by
/// PPA/PBA; pass the SearchPatterns result). The returned graph always has
/// at least one node. Randomness comes from `rng` only.
Graph Augment(const Graph& group, AugmentationKind kind,
              const FoundPatterns& patterns, Rng* rng);

/// Same augmentation, straight off a subgraph view (candidate fast path) —
/// identical output and identical `rng` consumption for the view of the
/// same group, so the two forms are interchangeable mid-stream.
Graph Augment(const SubgraphView& group, AugmentationKind kind,
              const FoundPatterns& patterns, Rng* rng);

}  // namespace grgad

#endif  // GRGAD_GCL_AUGMENTATIONS_H_
