#include "src/gcl/augmentations.h"

#include <algorithm>
#include <set>

namespace grgad {

const char* ToString(AugmentationKind kind) {
  switch (kind) {
    case AugmentationKind::kPba: return "PBA";
    case AugmentationKind::kPpa: return "PPA";
    case AugmentationKind::kNodeDrop: return "ND";
    case AugmentationKind::kEdgeRemove: return "ER";
    case AugmentationKind::kFeatureMask: return "FM";
  }
  return "?";
}

bool ParseAugmentationKind(const std::string& name, AugmentationKind* out) {
  for (AugmentationKind kind :
       {AugmentationKind::kPba, AugmentationKind::kPpa,
        AugmentationKind::kNodeDrop, AugmentationKind::kEdgeRemove,
        AugmentationKind::kFeatureMask}) {
    if (name == ToString(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

namespace {

// The augmentation bodies are generic over the group representation: a
// materialized Graph (the seed shape) or a borrowed SubgraphView (the
// candidate fast path). Both expose num_nodes/Neighbors/ForEachEdge/
// attr_dim; only attribute-row access differs.
const double* AttrRowOf(const Graph& g, int v) {
  return g.attributes().RowPtr(v);
}
const double* AttrRowOf(const SubgraphView& g, int v) { return g.AttrRow(v); }

/// Editable copy of a small attributed graph.
struct MutableGroup {
  int n = 0;
  std::vector<std::vector<double>> attrs;      // n rows
  std::vector<std::pair<int, int>> edges;      // u < v

  template <typename G>
  static MutableGroup From(const G& g) {
    MutableGroup m;
    m.n = g.num_nodes();
    m.attrs.resize(m.n);
    const int d = static_cast<int>(g.attr_dim());
    for (int v = 0; v < m.n; ++v) {
      m.attrs[v].resize(d);
      if (d == 0) continue;
      const double* row = AttrRowOf(g, v);
      for (int j = 0; j < d; ++j) m.attrs[v][j] = row[j];
    }
    // Streamed off the CSR in Edges() order — no O(E) intermediate vector.
    m.edges.reserve(g.num_edges());
    g.ForEachEdge([&m](int u, int v) { m.edges.emplace_back(u, v); });
    return m;
  }

  /// Adds a node with the given attributes, connected to `neighbors`.
  int AddNode(std::vector<double> attr, const std::vector<int>& neighbors) {
    const int id = n++;
    attrs.push_back(std::move(attr));
    for (int w : neighbors) {
      edges.emplace_back(std::min(id, w), std::max(id, w));
    }
    return id;
  }

  /// Removes the given nodes (and incident edges), compacting ids. Keeps at
  /// least one node: if everything would vanish, node 0 survives.
  void RemoveNodes(const std::set<int>& drop_in) {
    std::set<int> drop = drop_in;
    if (static_cast<int>(drop.size()) >= n) drop.erase(drop.begin());
    std::vector<int> remap(n, -1);
    int next = 0;
    std::vector<std::vector<double>> new_attrs;
    for (int v = 0; v < n; ++v) {
      if (drop.count(v)) continue;
      remap[v] = next++;
      new_attrs.push_back(std::move(attrs[v]));
    }
    std::vector<std::pair<int, int>> new_edges;
    for (const auto& [u, v] : edges) {
      if (remap[u] >= 0 && remap[v] >= 0) {
        new_edges.emplace_back(remap[u], remap[v]);
      }
    }
    n = next;
    attrs = std::move(new_attrs);
    edges = std::move(new_edges);
  }

  Graph Build() const {
    GraphBuilder builder(n);
    for (const auto& [u, v] : edges) builder.AddEdge(u, v);
    const size_t d = attrs.empty() ? 0 : attrs[0].size();
    Matrix x(n, d);
    for (int v = 0; v < n; ++v) x.SetRow(v, attrs[v]);
    return builder.Build(std::move(x));
  }
};

/// Mean attribute vector over `nodes` of `g`.
template <typename G>
std::vector<double> MeanAttr(const G& g, const std::vector<int>& nodes) {
  const int d = static_cast<int>(g.attr_dim());
  std::vector<double> out(d, 0.0);
  if (nodes.empty() || d == 0) return out;
  for (int v : nodes) {
    const double* row = AttrRowOf(g, v);
    for (int j = 0; j < d; ++j) out[j] += row[j];
  }
  for (double& x : out) x /= static_cast<double>(nodes.size());
  return out;
}

template <typename G>
Graph AugmentPba(const G& group, const FoundPatterns& patterns, Rng* rng) {
  MutableGroup m = MutableGroup::From(group);
  std::set<int> drop;
  // Trees: drop the root (Alg. 2 line 7).
  for (const auto& tree : patterns.trees) drop.insert(tree[0]);
  // Paths: drop the middle node (line 12).
  for (const auto& path : patterns.paths) drop.insert(path[path.size() / 2]);
  // Cycles: drop two random nodes (line 17).
  for (const auto& cycle : patterns.cycles) {
    const auto picks = rng->SampleWithoutReplacement(cycle.size(), 2);
    drop.insert(cycle[picks[0]]);
    drop.insert(cycle[picks[1]]);
  }
  if (drop.empty() && group.num_nodes() > 1) {
    // Patternless group: break it by dropping a random node anyway, so the
    // negative view is never the identity.
    drop.insert(static_cast<int>(rng->UniformInt(
        static_cast<uint64_t>(group.num_nodes()))));
  }
  m.RemoveNodes(drop);
  return m.Build();
}

template <typename G>
Graph AugmentPpa(const G& group, const FoundPatterns& patterns, Rng* rng) {
  MutableGroup m = MutableGroup::From(group);
  // Trees: add a child to the root whose attributes average the existing
  // children (line 8).
  for (const auto& tree : patterns.trees) {
    const int root = tree[0];
    std::vector<int> children;
    for (int w : group.Neighbors(root)) children.push_back(w);
    m.AddNode(MeanAttr(group, children.empty()
                                  ? std::vector<int>{root}
                                  : children),
              {root});
  }
  // Paths: prolong at an endpoint with the path-average attributes (l. 13).
  for (const auto& path : patterns.paths) {
    const int endpoint = rng->Bernoulli(0.5) ? path.front() : path.back();
    m.AddNode(MeanAttr(group, path), {endpoint});
  }
  // Cycles: bridge two random members through a new node (line 18).
  for (const auto& cycle : patterns.cycles) {
    const auto picks = rng->SampleWithoutReplacement(cycle.size(), 2);
    m.AddNode(MeanAttr(group, cycle),
              {cycle[picks[0]], cycle[picks[1]]});
  }
  return m.Build();
}

template <typename G>
Graph AugmentNodeDrop(const G& group, Rng* rng) {
  MutableGroup m = MutableGroup::From(group);
  const int k = std::max(1, static_cast<int>(0.15 * group.num_nodes()));
  std::set<int> drop;
  const auto picks = rng->SampleWithoutReplacement(
      static_cast<size_t>(group.num_nodes()),
      std::min<size_t>(k, group.num_nodes()));
  drop.insert(picks.begin(), picks.end());
  m.RemoveNodes(drop);
  return m.Build();
}

template <typename G>
Graph AugmentEdgeRemove(const G& group, Rng* rng) {
  MutableGroup m = MutableGroup::From(group);
  if (m.edges.empty()) return m.Build();
  const int k = std::max(1, static_cast<int>(0.15 * m.edges.size()));
  const auto picks = rng->SampleWithoutReplacement(
      m.edges.size(), std::min<size_t>(k, m.edges.size()));
  std::set<size_t> drop(picks.begin(), picks.end());
  std::vector<std::pair<int, int>> kept;
  for (size_t e = 0; e < m.edges.size(); ++e) {
    if (!drop.count(e)) kept.push_back(m.edges[e]);
  }
  m.edges = std::move(kept);
  return m.Build();
}

template <typename G>
Graph AugmentFeatureMask(const G& group, Rng* rng) {
  MutableGroup m = MutableGroup::From(group);
  const int d = static_cast<int>(group.attr_dim());
  if (d == 0) return m.Build();
  const int k = std::max(1, static_cast<int>(0.2 * d));
  const auto dims = rng->SampleWithoutReplacement(
      static_cast<size_t>(d), std::min<size_t>(k, d));
  for (auto& row : m.attrs) {
    for (size_t j : dims) row[j] = 0.0;
  }
  return m.Build();
}

template <typename G>
Graph AugmentImpl(const G& group, AugmentationKind kind,
                  const FoundPatterns& patterns, Rng* rng) {
  GRGAD_CHECK(rng != nullptr);
  GRGAD_CHECK_GT(group.num_nodes(), 0);
  switch (kind) {
    case AugmentationKind::kPba:
      return AugmentPba(group, patterns, rng);
    case AugmentationKind::kPpa:
      return AugmentPpa(group, patterns, rng);
    case AugmentationKind::kNodeDrop:
      return AugmentNodeDrop(group, rng);
    case AugmentationKind::kEdgeRemove:
      return AugmentEdgeRemove(group, rng);
    case AugmentationKind::kFeatureMask:
      return AugmentFeatureMask(group, rng);
  }
  GRGAD_CHECK(false);
  return Graph();
}

}  // namespace

Graph Augment(const Graph& group, AugmentationKind kind,
              const FoundPatterns& patterns, Rng* rng) {
  return AugmentImpl(group, kind, patterns, rng);
}

Graph Augment(const SubgraphView& group, AugmentationKind kind,
              const FoundPatterns& patterns, Rng* rng) {
  return AugmentImpl(group, kind, patterns, rng);
}

}  // namespace grgad
