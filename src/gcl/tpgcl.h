// TPGCL: Topology Pattern-based Graph Contrastive Learning (paper §V-D).
//
// Pipeline per candidate group g: find its topology patterns (Alg. 2 line
// 4), generate a positive view with PPA and a negative view with PBA, encode
// all three graphs with a shared 2-layer GCN f_theta + mean-pool readout,
// and train f_theta jointly with the MINE statistic Φ on the Eqn. (8)
// objective. After convergence the *original* group embeddings z_G carry
// the topology-pattern signal and are handed to an outlier detector.
//
// Implementation note: the m candidate groups (and their views) are batched
// as one disjoint-union graph per view set — a single block-diagonal
// normalized adjacency, stacked attributes, and a sparse mean-pool matrix —
// so each epoch costs three GCN passes regardless of m.
#ifndef GRGAD_GCL_TPGCL_H_
#define GRGAD_GCL_TPGCL_H_

#include <memory>
#include <vector>

#include "src/gcl/augmentations.h"
#include "src/graph/graph.h"
#include "src/tensor/arena.h"
#include "src/tensor/matrix.h"
#include "src/tensor/sparse.h"
#include "src/util/cancel.h"

namespace grgad {

/// TPGCL hyperparameters (§VII-A4: 2-layer GCN, 64-d embeddings).
struct TpgclOptions {
  int hidden_dim = 64;
  int embed_dim = 64;
  int mine_hidden = 64;
  int epochs = 60;
  double lr = 5e-3;
  /// Mismatched pairs per sample in the Eqn. (8) double sum (m-1 = exact).
  int neg_per_sample = 32;
  /// View-generating augmentations (Fig. 6 swaps these).
  AugmentationKind positive_aug = AugmentationKind::kPpa;
  AugmentationKind negative_aug = AugmentationKind::kPba;
  PatternSearchOptions pattern_options;
  uint64_t seed = 5;
  /// Cooperative stop token (cancellation, deadline, resource budget),
  /// polled once per epoch. When it fires, FitEmbed() abandons training and
  /// returns a partial TpgclResult (empty embeddings); callers that handed
  /// out the token must check its stop_reason() before consuming the
  /// result.
  CancelToken cancel;
  /// Soft byte budget for the training arena (0 = unlimited); see
  /// GaeOptions::arena_byte_budget.
  uint64_t arena_byte_budget = 0;
  /// Optional caller-owned buffer arena (must outlive FitEmbed); see
  /// GaeOptions::arena.
  MatrixArena* arena = nullptr;
};

/// Fit output: per-group embeddings (row i = groups[i]) + loss curve.
struct TpgclResult {
  Matrix embeddings;
  std::vector<double> loss_history;
};

/// A disjoint-union batch of small graphs: one GCN operator, stacked
/// attributes, and a mean-pool matrix (one row per member graph). Exposed
/// for tests and for the ablation harness.
struct GraphBatch {
  std::shared_ptr<const SparseMatrix> op;    ///< Block-diag Â (N x N).
  Matrix x;                                  ///< Stacked attributes (N x d).
  std::shared_ptr<const SparseMatrix> pool;  ///< m x N mean-pool.
};

/// Builds the union batch; all graphs must share the attribute width.
GraphBatch BuildGraphBatch(const std::vector<Graph>& graphs);

/// Builds the union batch of the subgraphs of `host` induced by `groups`
/// WITHOUT materializing them: one SubgraphView is retargeted per group and
/// the block-diagonal normalized adjacency, stacked attributes, and pool
/// matrix are emitted straight off it. Bitwise identical to
/// BuildGraphBatch({host.InducedSubgraph(group)...}) — the candidate fast
/// path routes FitEmbed's original-group batch through this.
GraphBatch BuildGraphBatchFromGroups(
    const Graph& host, const std::vector<std::vector<int>>& groups);

/// The TPGCL trainer.
class Tpgcl {
 public:
  explicit Tpgcl(TpgclOptions options = {});

  /// Trains on the candidate groups of `host` and returns their embeddings.
  /// Requires >= 2 groups; each group is a node-id list into `host`.
  TpgclResult FitEmbed(const Graph& host,
                       const std::vector<std::vector<int>>& groups) const;

 private:
  TpgclOptions options_;
};

}  // namespace grgad

#endif  // GRGAD_GCL_TPGCL_H_
