// Generalizing node-level detectors to Gr-GAD (paper §VII-A3): threshold
// node scores at a contamination rate, then emit the connected components of
// the anomalous node set as groups (the AS-GAE-style adapter the paper
// applies to DOMINANT / DeepAE / ComGA).
#ifndef GRGAD_BASELINES_GROUP_EXTRACTION_H_
#define GRGAD_BASELINES_GROUP_EXTRACTION_H_

#include <memory>

#include "src/core/group_detector.h"
#include "src/gae/gae_base.h"

namespace grgad {

/// Extraction knobs.
struct GroupExtractionOptions {
  /// Fraction of nodes labeled anomalous before component extraction.
  double contamination = 0.10;
  /// Keep single-node components as (degenerate) groups — N-GAD methods
  /// genuinely produce these, which is what Fig. 5 measures.
  bool keep_singletons = true;
  /// Oversized components are truncated to this many highest-score nodes.
  int max_group_size = 64;
};

/// Thresholds scores, extracts components, scores each group by the mean
/// node score of its members.
std::vector<ScoredGroup> ExtractGroupsFromNodeScores(
    const Graph& g, const std::vector<double>& node_scores,
    const GroupExtractionOptions& options = {});

/// Adapts any NodeScorer (DOMINANT, DeepAE, ComGA, MH-GAE) into a
/// GroupDetector via ExtractGroupsFromNodeScores.
class NodeScorerGroupAdapter : public GroupDetector {
 public:
  NodeScorerGroupAdapter(std::shared_ptr<const NodeScorer> scorer,
                         GroupExtractionOptions options = {});

  std::vector<ScoredGroup> DetectGroups(const Graph& g) const override;
  std::string Name() const override { return scorer_->Name(); }

 private:
  std::shared_ptr<const NodeScorer> scorer_;
  GroupExtractionOptions options_;
};

}  // namespace grgad

#endif  // GRGAD_BASELINES_GROUP_EXTRACTION_H_
