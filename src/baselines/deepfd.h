// DeepFD (Wang et al., ICDM 2018): deep structure learning for fraud
// detection. Learns node embeddings by reconstructing pairwise similarity
// (autoencoder + pairwise term), flags suspicious nodes by reconstruction
// error, and clusters their embeddings with DBSCAN to form fraud groups.
#ifndef GRGAD_BASELINES_DEEPFD_H_
#define GRGAD_BASELINES_DEEPFD_H_

#include "src/core/group_detector.h"

namespace grgad {

/// DeepFD hyperparameters.
struct DeepFdOptions {
  int hidden_dim = 64;
  int embed_dim = 32;
  int epochs = 80;
  double lr = 5e-3;
  /// Weight of the pairwise similarity loss vs the attribute AE loss.
  double pairwise_weight = 0.6;
  int neg_per_pos = 1;
  size_t max_pairs = 200000;
  /// Fraction of highest-error nodes fed into DBSCAN.
  double contamination = 0.10;
  /// DBSCAN minPts; eps is set to the median 3-NN distance among suspects.
  int dbscan_min_pts = 2;
  int max_group_size = 64;
  uint64_t seed = 4;
};

/// DeepFD group detector.
class DeepFd : public GroupDetector {
 public:
  explicit DeepFd(DeepFdOptions options = {});

  std::vector<ScoredGroup> DetectGroups(const Graph& g) const override;
  std::string Name() const override { return "deepfd"; }

 private:
  DeepFdOptions options_;
};

/// DBSCAN over rows of `x` restricted to `items`: returns cluster labels per
/// item (−1 = noise). Exposed for tests.
std::vector<int> Dbscan(const Matrix& x, const std::vector<int>& items,
                        double eps, int min_pts);

}  // namespace grgad

#endif  // GRGAD_BASELINES_DEEPFD_H_
