#include "src/baselines/group_extraction.h"

#include <algorithm>

#include "src/graph/algorithms.h"
#include "src/graph/traversal_workspace.h"
#include "src/metrics/classification.h"
#include "src/util/fastpath.h"

namespace grgad {

std::vector<ScoredGroup> ExtractGroupsFromNodeScores(
    const Graph& g, const std::vector<double>& node_scores,
    const GroupExtractionOptions& options) {
  GRGAD_CHECK_EQ(node_scores.size(), static_cast<size_t>(g.num_nodes()));
  const std::vector<int> labels =
      LabelsAtContamination(node_scores, options.contamination);
  std::vector<int> anomalous;
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (labels[v] == 1) anomalous.push_back(v);
  }
  // Workspace-backed component extraction on the candidate fast path
  // (identical groups; the stamped marks replace the per-call hash set +
  // O(n) seen vector).
  TraversalWorkspacePool::Lease ws;
  if (CandidateFastPathEnabled()) {
    ws = TraversalWorkspacePool::Global().Acquire();
  }
  std::vector<ScoredGroup> out;
  for (auto& component : ws.get() != nullptr
                             ? ComponentsOfSubset(g, anomalous, ws.get())
                             : ComponentsOfSubset(g, anomalous)) {
    if (!options.keep_singletons && component.size() < 2) continue;
    if (static_cast<int>(component.size()) > options.max_group_size) {
      std::sort(component.begin(), component.end(),
                [&node_scores](int a, int b) {
                  return node_scores[a] > node_scores[b];
                });
      component.resize(options.max_group_size);
      std::sort(component.begin(), component.end());
    }
    double mean_score = 0.0;
    for (int v : component) mean_score += node_scores[v];
    mean_score /= static_cast<double>(component.size());
    out.push_back({std::move(component), mean_score});
  }
  return out;
}

NodeScorerGroupAdapter::NodeScorerGroupAdapter(
    std::shared_ptr<const NodeScorer> scorer, GroupExtractionOptions options)
    : scorer_(std::move(scorer)), options_(options) {
  GRGAD_CHECK(scorer_ != nullptr);
}

std::vector<ScoredGroup> NodeScorerGroupAdapter::DetectGroups(
    const Graph& g) const {
  return ExtractGroupsFromNodeScores(g, scorer_->FitNodeScores(g), options_);
}

}  // namespace grgad
