#include "src/baselines/deepfd.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "src/metrics/classification.h"
#include "src/nn/layers.h"
#include "src/nn/optim.h"
#include "src/tensor/arena.h"
#include "src/util/rng.h"

namespace grgad {

namespace {

double RowDistance(const Matrix& x, int a, int b) {
  double s = 0.0;
  const double* ra = x.RowPtr(a);
  const double* rb = x.RowPtr(b);
  for (size_t j = 0; j < x.cols(); ++j) {
    const double d = ra[j] - rb[j];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace

std::vector<int> Dbscan(const Matrix& x, const std::vector<int>& items,
                        double eps, int min_pts) {
  const int k = static_cast<int>(items.size());
  // Neighbor lists within the item set (O(k^2), fine at suspect-set sizes).
  std::vector<std::vector<int>> neighbors(k);
  for (int a = 0; a < k; ++a) {
    for (int b = a + 1; b < k; ++b) {
      if (RowDistance(x, items[a], items[b]) <= eps) {
        neighbors[a].push_back(b);
        neighbors[b].push_back(a);
      }
    }
  }
  std::vector<int> label(k, -2);  // -2 unvisited, -1 noise, >=0 cluster.
  int next_cluster = 0;
  for (int a = 0; a < k; ++a) {
    if (label[a] != -2) continue;
    if (static_cast<int>(neighbors[a].size()) + 1 < min_pts) {
      label[a] = -1;
      continue;
    }
    const int cluster = next_cluster++;
    label[a] = cluster;
    std::deque<int> frontier(neighbors[a].begin(), neighbors[a].end());
    while (!frontier.empty()) {
      const int b = frontier.front();
      frontier.pop_front();
      if (label[b] == -1) label[b] = cluster;  // Border point.
      if (label[b] != -2) continue;
      label[b] = cluster;
      if (static_cast<int>(neighbors[b].size()) + 1 >= min_pts) {
        frontier.insert(frontier.end(), neighbors[b].begin(),
                        neighbors[b].end());
      }
    }
  }
  return label;
}

DeepFd::DeepFd(DeepFdOptions options) : options_(options) {}

std::vector<ScoredGroup> DeepFd::DetectGroups(const Graph& g) const {
  GRGAD_CHECK(g.has_attributes());
  const int n = g.num_nodes();
  const int d = static_cast<int>(g.attr_dim());
  Rng rng(options_.seed ^ 0x64656664ULL);

  // Declared before any Var; see GcnGae::Fit.
  MatrixArena local_arena;
  ArenaScope arena_scope(TrainingFastPathEnabled() ? &local_arena : nullptr);

  // --- Embedding model: MLP encoder + decoder (no graph propagation; the
  // structure enters through the pairwise similarity loss). ---
  Mlp encoder({static_cast<size_t>(d), static_cast<size_t>(options_.hidden_dim),
               static_cast<size_t>(options_.embed_dim)},
              &rng);
  Mlp decoder({static_cast<size_t>(options_.embed_dim),
               static_cast<size_t>(options_.hidden_dim),
               static_cast<size_t>(d)},
              &rng);
  std::vector<Var> params;
  for (const auto& layer_params : {encoder.Params(), decoder.Params()}) {
    params.insert(params.end(), layer_params.begin(), layer_params.end());
  }
  AdamOptions adam_options;
  adam_options.lr = options_.lr;
  adam_options.clip_grad_norm = 5.0;
  Adam adam(params, adam_options);

  // Pairs: edges (similar) + sampled non-edges (dissimilar).
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<size_t>(g.num_edges()));
  g.ForEachEdge([&pairs](int u, int v) { pairs.emplace_back(u, v); });
  if (pairs.size() > options_.max_pairs / 2) {
    pairs.resize(options_.max_pairs / 2);
  }
  const size_t num_pos = pairs.size();
  size_t added = 0, guard = 0;
  const size_t num_neg = num_pos * options_.neg_per_pos;
  while (added < num_neg && guard < num_neg * 30 + 100) {
    ++guard;
    const int u = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    if (u >= v || g.HasEdge(u, v)) continue;
    pairs.emplace_back(u, v);
    ++added;
  }
  Matrix pair_targets(pairs.size(), 1);
  for (size_t p = 0; p < num_pos; ++p) pair_targets(p, 0) = 1.0;
  const auto shared_pairs =
      std::make_shared<const std::vector<std::pair<int, int>>>(
          std::move(pairs));

  const Var x(g.attributes(), /*requires_grad=*/false);
  Matrix final_embed, final_recon, final_pred;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    adam.ZeroGrad();
    Var z = encoder.Forward(x);
    Var recon = decoder.Forward(z);
    Var loss_attr = MseLoss(recon, g.attributes());
    Var pred = Sigmoid(PairInnerProduct(z, shared_pairs));
    Var loss_pair = MseLoss(pred, pair_targets);
    Var loss = Add(Scale(loss_pair, options_.pairwise_weight),
                   Scale(loss_attr, 1.0 - options_.pairwise_weight));
    loss.Backward();
    adam.Step();
    if (epoch + 1 == options_.epochs) {
      final_embed = z.value();
      final_recon = recon.value();
      final_pred = pred.value();
    }
  }

  // Suspiciousness: attribute + pairwise reconstruction error.
  std::vector<double> score(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double s = 0.0;
    for (int j = 0; j < d; ++j) {
      const double diff = final_recon(i, j) - g.attributes()(i, j);
      s += diff * diff;
    }
    score[i] = std::sqrt(s);
  }
  std::vector<double> pair_err(n, 0.0);
  std::vector<int> pair_count(n, 0);
  for (size_t p = 0; p < shared_pairs->size(); ++p) {
    const auto [i, j] = (*shared_pairs)[p];
    const double err = std::fabs(final_pred(p, 0) - pair_targets(p, 0));
    pair_err[i] += err;
    pair_err[j] += err;
    ++pair_count[i];
    ++pair_count[j];
  }
  for (int i = 0; i < n; ++i) {
    if (pair_count[i] > 0) score[i] += pair_err[i] / pair_count[i];
  }

  // Suspicious set -> DBSCAN over embeddings -> groups.
  const std::vector<int> labels =
      LabelsAtContamination(score, options_.contamination);
  std::vector<int> suspects;
  for (int v = 0; v < n; ++v) {
    if (labels[v] == 1) suspects.push_back(v);
  }
  if (suspects.size() < 2) {
    std::vector<ScoredGroup> out;
    for (int v : suspects) out.push_back({{v}, score[v]});
    return out;
  }
  // eps = median 3-NN distance among suspects.
  std::vector<double> knn3;
  for (size_t a = 0; a < suspects.size(); ++a) {
    std::vector<double> dists;
    for (size_t b = 0; b < suspects.size(); ++b) {
      if (a != b) {
        dists.push_back(RowDistance(final_embed, suspects[a], suspects[b]));
      }
    }
    const size_t kth = std::min<size_t>(2, dists.size() - 1);
    std::nth_element(dists.begin(), dists.begin() + kth, dists.end());
    knn3.push_back(dists[kth]);
  }
  std::nth_element(knn3.begin(), knn3.begin() + knn3.size() / 2, knn3.end());
  const double eps = std::max(knn3[knn3.size() / 2], 1e-9);
  const std::vector<int> cluster =
      Dbscan(final_embed, suspects, eps, options_.dbscan_min_pts);

  int num_clusters = 0;
  for (int c : cluster) num_clusters = std::max(num_clusters, c + 1);
  std::vector<std::vector<int>> groups(num_clusters);
  std::vector<ScoredGroup> out;
  for (size_t a = 0; a < suspects.size(); ++a) {
    if (cluster[a] >= 0) {
      groups[cluster[a]].push_back(suspects[a]);
    } else {
      out.push_back({{suspects[a]}, score[suspects[a]]});  // Noise.
    }
  }
  for (auto& members : groups) {
    if (members.empty()) continue;
    if (static_cast<int>(members.size()) > options_.max_group_size) {
      std::sort(members.begin(), members.end(),
                [&score](int a, int b) { return score[a] > score[b]; });
      members.resize(options_.max_group_size);
    }
    std::sort(members.begin(), members.end());
    double mean_score = 0.0;
    for (int v : members) mean_score += score[v];
    mean_score /= static_cast<double>(members.size());
    out.push_back({std::move(members), mean_score});
  }
  return out;
}

}  // namespace grgad
