// AS-GAE (Zhang & Zhao, ICDM 2022): unsupervised deep subgraph anomaly
// detection. A GAE localizes anomalous nodes; anomalous subgraphs are then
// extracted as connected components *closed under one hop* (their subgraph
// completion step), scored by aggregated node anomaly scores. The Sub-GAD
// baseline with the larger (but noisier) groups in Fig. 5.
#ifndef GRGAD_BASELINES_AS_GAE_H_
#define GRGAD_BASELINES_AS_GAE_H_

#include "src/core/group_detector.h"
#include "src/gae/gae_base.h"

namespace grgad {

/// AS-GAE hyperparameters.
struct AsGaeOptions {
  GaeOptions gae;  ///< Underlying autoencoder (adjacency objective).
  /// Nodes scoring above mean + z_threshold * std are anomalous.
  double z_threshold = 1.3;
  /// One-hop closure: neighbors of anomalous nodes whose score exceeds this
  /// quantile of all scores are absorbed into the subgraph.
  double closure_quantile = 0.6;
  int max_group_size = 64;

  AsGaeOptions() { gae.target = ReconTarget::kAdjacency; }
};

/// AS-GAE group detector.
class AsGae : public GroupDetector {
 public:
  explicit AsGae(AsGaeOptions options = {});

  std::vector<ScoredGroup> DetectGroups(const Graph& g) const override;
  std::string Name() const override { return "as-gae"; }

 private:
  AsGaeOptions options_;
};

}  // namespace grgad

#endif  // GRGAD_BASELINES_AS_GAE_H_
