#include "src/baselines/as_gae.h"

#include <algorithm>
#include <cmath>

#include "src/graph/algorithms.h"

namespace grgad {

AsGae::AsGae(AsGaeOptions options) : options_(options) {}

std::vector<ScoredGroup> AsGae::DetectGroups(const Graph& g) const {
  GcnGae engine(options_.gae);
  const std::vector<double> scores = engine.Fit(g).node_errors;
  const int n = g.num_nodes();
  // Mean + z * std threshold.
  double mean = 0.0;
  for (double s : scores) mean += s;
  mean /= std::max(1, n);
  double var = 0.0;
  for (double s : scores) var += (s - mean) * (s - mean);
  const double stddev = std::sqrt(var / std::max(1, n));
  const double threshold = mean + options_.z_threshold * stddev;
  std::vector<int> anomalous;
  for (int v = 0; v < n; ++v) {
    if (scores[v] > threshold) anomalous.push_back(v);
  }
  // One-hop closure: absorb moderately suspicious neighbors.
  std::vector<double> sorted_scores = scores;
  std::sort(sorted_scores.begin(), sorted_scores.end());
  const double closure_cut =
      sorted_scores[static_cast<size_t>(options_.closure_quantile *
                                        (n - 1))];
  std::vector<uint8_t> in_set(n, 0);
  for (int v : anomalous) in_set[v] = 1;
  std::vector<int> closure = anomalous;
  for (int v : anomalous) {
    for (int w : g.Neighbors(v)) {
      if (!in_set[w] && scores[w] >= closure_cut) {
        in_set[w] = 1;
        closure.push_back(w);
      }
    }
  }
  std::sort(closure.begin(), closure.end());
  std::vector<ScoredGroup> out;
  for (auto& component : ComponentsOfSubset(g, closure)) {
    if (static_cast<int>(component.size()) > options_.max_group_size) {
      std::sort(component.begin(), component.end(),
                [&scores](int a, int b) { return scores[a] > scores[b]; });
      component.resize(options_.max_group_size);
      std::sort(component.begin(), component.end());
    }
    double mean_score = 0.0;
    for (int v : component) mean_score += scores[v];
    mean_score /= static_cast<double>(component.size());
    out.push_back({std::move(component), mean_score});
  }
  return out;
}

}  // namespace grgad
