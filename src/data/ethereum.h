// Ethereum-TSGN: synthetic stand-in for the paper's Ethereum phishing
// subgraph crawl — 1.8k accounts, 3.3k transactions, 17 phishing groups of
// average size ~7.2, predominantly tree- and cycle-shaped (Table II:
// 1 path / 9 trees / 7 cycles).
#ifndef GRGAD_DATA_ETHEREUM_H_
#define GRGAD_DATA_ETHEREUM_H_

#include "src/data/dataset.h"

namespace grgad {

/// Generates the Ethereum-TSGN benchmark instance.
Dataset GenEthereum(const DatasetOptions& options = {});

}  // namespace grgad

#endif  // GRGAD_DATA_ETHEREUM_H_
