#include "src/data/dataset.h"

namespace grgad {

std::vector<int> Dataset::NodeLabels() const {
  std::vector<int> labels(graph.num_nodes(), 0);
  for (const auto& group : anomaly_groups) {
    for (int v : group) {
      GRGAD_CHECK(v >= 0 && v < graph.num_nodes());
      labels[v] = 1;
    }
  }
  return labels;
}

double Dataset::NodeContamination() const {
  if (graph.num_nodes() == 0) return 0.0;
  const std::vector<int> labels = NodeLabels();
  int pos = 0;
  for (int y : labels) pos += y;
  return static_cast<double>(pos) / graph.num_nodes();
}

double Dataset::AverageGroupSize() const {
  if (anomaly_groups.empty()) return 0.0;
  double total = 0.0;
  for (const auto& g : anomaly_groups) total += static_cast<double>(g.size());
  return total / static_cast<double>(anomaly_groups.size());
}

}  // namespace grgad
