#include "src/data/citation_group.h"

#include <algorithm>

#include "src/data/synth_common.h"

namespace grgad {

namespace {

struct Profile {
  const char* name;
  int base_nodes;
  int base_edges;
  int num_comms;
  int default_attr_dim;
  int words_per_node;
  int num_groups;
  double mean_group_size;
};

constexpr Profile kCoraProfile = {"cora-group", 2708, 5300, 7, 128, 18,
                                  22, 6.3};
constexpr Profile kCiteseerProfile = {"citeseer-group", 3312, 4600, 6, 160,
                                      22, 22, 6.2};

}  // namespace

Dataset GenCitationGroup(CitationProfile profile,
                         const DatasetOptions& options) {
  const Profile& p = profile == CitationProfile::kCora ? kCoraProfile
                                                       : kCiteseerProfile;
  Rng rng(options.seed ^ (profile == CitationProfile::kCora
                              ? 0x636f7261ULL
                              : 0x63697465ULL));
  const double scale = options.scale > 0.0 ? options.scale : 1.0;
  const int n_base = std::max(64, static_cast<int>(p.base_nodes * scale));
  const int e_base = std::max(96, static_cast<int>(p.base_edges * scale));
  const int num_groups = std::max(2, static_cast<int>(p.num_groups * scale));
  const int attr_dim =
      options.attr_dim > 0 ? options.attr_dim : p.default_attr_dim;

  // --- Plan groups first so the total node count is known up front. ---
  struct GroupPlan {
    TopologyPattern pattern;
    int size;
  };
  std::vector<GroupPlan> plans;
  plans.reserve(num_groups);
  int extra_nodes = 0;
  for (int gidx = 0; gidx < num_groups; ++gidx) {
    const double roll = rng.Uniform();
    TopologyPattern pattern = roll < 0.4   ? TopologyPattern::kPath
                              : roll < 0.7 ? TopologyPattern::kTree
                                           : TopologyPattern::kCycle;
    const int size = SamplePatternSize(p.mean_group_size, 4, 10, &rng);
    plans.push_back({pattern, size});
    extra_nodes += size - 2;  // 2 anchors reuse existing nodes.
  }
  const int n_total = n_base + extra_nodes;
  GraphBuilder builder(n_total);

  // --- Stochastic block model background over [0, n_base). ---
  std::vector<int> community(n_total, 0);
  for (int v = 0; v < n_base; ++v) {
    community[v] = static_cast<int>(rng.UniformInt(
        static_cast<uint64_t>(p.num_comms)));
  }
  // Group base nodes by community for intra-community edge sampling.
  std::vector<std::vector<int>> comm_members(p.num_comms);
  for (int v = 0; v < n_base; ++v) comm_members[community[v]].push_back(v);
  int added = 0;
  int attempts = 0;
  while (added < e_base && attempts < e_base * 30) {
    ++attempts;
    int u, v;
    if (rng.Bernoulli(0.81)) {  // Homophily ratio of citation graphs.
      const auto& members = comm_members[rng.UniformInt(
          static_cast<uint64_t>(p.num_comms))];
      if (members.size() < 2) continue;
      u = members[rng.UniformInt(members.size())];
      v = members[rng.UniformInt(members.size())];
    } else {
      u = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n_base)));
      v = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n_base)));
    }
    if (u == v || builder.HasEdge(u, v)) continue;
    builder.AddEdge(u, v);
    ++added;
  }

  // --- Attributes for base nodes; injected nodes filled below. ---
  std::vector<int> base_comm(community.begin(), community.begin() + n_base);
  Matrix x_base = CommunityBagOfWords(base_comm, p.num_comms, attr_dim,
                                      p.words_per_node, &rng);
  Matrix x(n_total, attr_dim);
  for (int v = 0; v < n_base; ++v) {
    for (int j = 0; j < attr_dim; ++j) x(v, j) = x_base(v, j);
  }

  // --- Inject groups: anchors from the base graph, new nodes appended. ---
  std::vector<uint8_t> used(n_total, 0);
  std::vector<std::vector<int>> groups;
  std::vector<TopologyPattern> patterns;
  int next_new = n_base;
  for (const GroupPlan& plan : plans) {
    const std::vector<int> anchors = TakeUnusedNodes(&used, 0, n_base, 2,
                                                     &rng);
    std::vector<int> members;
    members.reserve(plan.size);
    // Pattern order: anchor, new..., anchor — anchors sit at the ends of a
    // path, on the ring of a cycle, or at root/leaf of a tree.
    members.push_back(anchors[0]);
    for (int i = 0; i < plan.size - 2; ++i) members.push_back(next_new++);
    members.push_back(anchors[1]);
    PlantPattern(&builder, members, plan.pattern, &rng);
    // New-node attributes: anchor attributes + Gaussian noise (paper).
    for (int i = 1; i + 1 < static_cast<int>(members.size()); ++i) {
      const int src = anchors[rng.UniformInt(2u)];
      for (int j = 0; j < attr_dim; ++j) {
        x(members[i], j) = x(src, j) + rng.Normal(0.0, 0.3);
      }
      community[members[i]] = community[src];
    }
    std::sort(members.begin(), members.end());
    groups.push_back(std::move(members));
    patterns.push_back(plan.pattern);
  }
  GRGAD_CHECK_EQ(next_new, n_total);

  Dataset out;
  out.name = p.name;
  out.graph = builder.Build(std::move(x));
  out.anomaly_groups = std::move(groups);
  out.group_patterns = std::move(patterns);
  return out;
}

}  // namespace grgad
