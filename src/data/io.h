// Dataset serialization: edge lists, attribute CSVs, and group files, so
// users can run grgad on their own graphs and round-trip the synthetic ones.
#ifndef GRGAD_DATA_IO_H_
#define GRGAD_DATA_IO_H_

#include <string>

#include "src/data/dataset.h"
#include "src/util/status.h"

namespace grgad {

/// Writes "u v" lines (undirected, one per edge).
Status SaveEdgeList(const Graph& g, const std::string& path);

/// Reads an edge list. Node count is 1 + max id unless `num_nodes` > 0.
/// Lines starting with '#' are comments; blank lines are skipped.
Result<Graph> LoadEdgeList(const std::string& path, int num_nodes = 0);

/// Writes node attributes as CSV without header (one row per node).
Status SaveAttributes(const Matrix& x, const std::string& path);

/// Reads a headerless numeric CSV into a Matrix.
Result<Matrix> LoadAttributes(const std::string& path);

/// Writes one group per line: "pattern_name: id id id ...".
Status SaveGroups(const Dataset& dataset, const std::string& path);

/// Parses the SaveGroups format into (groups, patterns).
Status LoadGroups(const std::string& path,
                  std::vector<std::vector<int>>* groups,
                  std::vector<TopologyPattern>* patterns);

/// Saves graph + attributes + groups under `prefix` (.edges/.attrs/.groups).
Status SaveDataset(const Dataset& dataset, const std::string& prefix);

/// Loads a dataset saved by SaveDataset.
Result<Dataset> LoadDataset(const std::string& prefix,
                            const std::string& name);

}  // namespace grgad

#endif  // GRGAD_DATA_IO_H_
