#include "src/data/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace grgad {

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f.is_open()) return Status::IoError("cannot open: " + path);
  f << "# grgad edge list: " << g.num_nodes() << " nodes, " << g.num_edges()
    << " edges\n";
  g.ForEachEdge([&f](int u, int v) { f << u << " " << v << "\n"; });
  if (!f.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Graph> LoadEdgeList(const std::string& path, int num_nodes) {
  std::ifstream f(path);
  if (!f.is_open()) return Status::IoError("cannot open: " + path);
  std::vector<std::pair<int, int>> edges;
  int max_id = -1;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    int u, v;
    if (!(ss >> u >> v)) {
      return Status::InvalidArgument("bad edge line: " + line);
    }
    if (u < 0 || v < 0) {
      return Status::InvalidArgument("negative node id: " + line);
    }
    edges.emplace_back(u, v);
    max_id = std::max({max_id, u, v});
  }
  const int n = num_nodes > 0 ? num_nodes : max_id + 1;
  if (max_id >= n) {
    return Status::InvalidArgument("node id exceeds declared num_nodes");
  }
  GraphBuilder builder(std::max(n, 0));
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

Status SaveAttributes(const Matrix& x, const std::string& path) {
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f.is_open()) return Status::IoError("cannot open: " + path);
  f.precision(10);
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = 0; j < x.cols(); ++j) {
      if (j > 0) f << ",";
      f << x(i, j);
    }
    f << "\n";
  }
  if (!f.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<Matrix> LoadAttributes(const std::string& path) {
  std::ifstream f(path);
  if (!f.is_open()) return Status::IoError("cannot open: " + path);
  std::vector<std::vector<double>> rows;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    std::istringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      try {
        row.push_back(std::stod(cell));
      } catch (...) {
        return Status::InvalidArgument("bad numeric cell: " + cell);
      }
    }
    if (!rows.empty() && row.size() != rows[0].size()) {
      return Status::InvalidArgument("ragged attribute rows");
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) return Matrix();
  Matrix x(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) x.SetRow(i, rows[i]);
  return x;
}

namespace {

bool ParsePattern(const std::string& s, TopologyPattern* out) {
  if (s == "path") *out = TopologyPattern::kPath;
  else if (s == "tree") *out = TopologyPattern::kTree;
  else if (s == "cycle") *out = TopologyPattern::kCycle;
  else if (s == "mixed") *out = TopologyPattern::kMixed;
  else return false;
  return true;
}

}  // namespace

Status SaveGroups(const Dataset& dataset, const std::string& path) {
  if (dataset.group_patterns.size() != dataset.anomaly_groups.size()) {
    return Status::InvalidArgument("pattern/group count mismatch");
  }
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f.is_open()) return Status::IoError("cannot open: " + path);
  for (size_t g = 0; g < dataset.anomaly_groups.size(); ++g) {
    f << ToString(dataset.group_patterns[g]) << ":";
    for (int v : dataset.anomaly_groups[g]) f << " " << v;
    f << "\n";
  }
  if (!f.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status LoadGroups(const std::string& path,
                  std::vector<std::vector<int>>* groups,
                  std::vector<TopologyPattern>* patterns) {
  GRGAD_CHECK(groups != nullptr && patterns != nullptr);
  std::ifstream f(path);
  if (!f.is_open()) return Status::IoError("cannot open: " + path);
  groups->clear();
  patterns->clear();
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("missing pattern tag: " + line);
    }
    TopologyPattern pattern;
    if (!ParsePattern(line.substr(0, colon), &pattern)) {
      return Status::InvalidArgument("unknown pattern: " +
                                     line.substr(0, colon));
    }
    std::vector<int> group;
    std::istringstream ss(line.substr(colon + 1));
    int v;
    while (ss >> v) group.push_back(v);
    if (group.empty()) {
      return Status::InvalidArgument("empty group line: " + line);
    }
    std::sort(group.begin(), group.end());
    groups->push_back(std::move(group));
    patterns->push_back(pattern);
  }
  return Status::Ok();
}

Status SaveDataset(const Dataset& dataset, const std::string& prefix) {
  GRGAD_RETURN_IF_ERROR(SaveEdgeList(dataset.graph, prefix + ".edges"));
  if (dataset.graph.has_attributes()) {
    GRGAD_RETURN_IF_ERROR(
        SaveAttributes(dataset.graph.attributes(), prefix + ".attrs"));
  }
  return SaveGroups(dataset, prefix + ".groups");
}

Result<Dataset> LoadDataset(const std::string& prefix,
                            const std::string& name) {
  Result<Graph> graph = LoadEdgeList(prefix + ".edges");
  if (!graph.ok()) return graph.status();
  Dataset out;
  out.name = name;
  out.graph = std::move(graph.value());
  Result<Matrix> attrs = LoadAttributes(prefix + ".attrs");
  if (attrs.ok() && !attrs.value().empty()) {
    if (attrs.value().rows() !=
        static_cast<size_t>(out.graph.num_nodes())) {
      return Status::InvalidArgument("attribute rows != node count");
    }
    out.graph.SetAttributes(std::move(attrs.value()));
  }
  const Status s =
      LoadGroups(prefix + ".groups", &out.anomaly_groups,
                 &out.group_patterns);
  if (!s.ok()) return s;
  return out;
}

}  // namespace grgad
