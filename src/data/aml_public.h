// AMLPublic: synthetic stand-in for the paper's cleaned Kaggle AML bank
// graph — 16.7k accounts, 17.2k transactions (near-tree sparsity), and 19
// laundering groups of average size ~19 of which 18 are long *paths*
// (Table II: money-laundering flows are chain shaped).
#ifndef GRGAD_DATA_AML_PUBLIC_H_
#define GRGAD_DATA_AML_PUBLIC_H_

#include "src/data/dataset.h"

namespace grgad {

/// Generates the AMLPublic benchmark instance.
Dataset GenAmlPublic(const DatasetOptions& options = {});

}  // namespace grgad

#endif  // GRGAD_DATA_AML_PUBLIC_H_
