#include "src/data/ethereum.h"

#include <algorithm>

#include "src/data/synth_common.h"

namespace grgad {

Dataset GenEthereum(const DatasetOptions& options) {
  Rng rng(options.seed ^ 0x65746820ULL);
  const double scale = options.scale > 0.0 ? options.scale : 1.0;
  const int n = std::max(128, static_cast<int>(1823 * scale));
  const int extra_edges = std::max(48, static_cast<int>(1250 * scale));
  const int num_groups = std::max(3, static_cast<int>(17 * scale));
  const int attr_dim = options.attr_dim > 0 ? options.attr_dim : 13;
  const int num_clusters = 5;

  GraphBuilder builder(n);
  AppendPreferentialAttachment(&builder, n, /*edges_per_node=*/1, &rng);
  AppendErdosRenyiEdges(&builder, n, extra_edges, &rng);

  std::vector<int> cluster(n);
  for (int v = 0; v < n; ++v) {
    cluster[v] = static_cast<int>(rng.UniformInt(
        static_cast<uint64_t>(num_clusters)));
  }
  Matrix x = ClusteredGaussianFeatures(cluster, num_clusters, attr_dim, &rng);

  // Pattern mix per Table II: 1 path, then trees and cycles alternating to
  // roughly a 9:7 ratio.
  std::vector<uint8_t> used(n, 0);
  std::vector<std::vector<int>> groups;
  std::vector<TopologyPattern> patterns;
  for (int gidx = 0; gidx < num_groups; ++gidx) {
    TopologyPattern pattern;
    if (gidx == 0) {
      pattern = TopologyPattern::kPath;
    } else if (gidx % 2 == 1) {
      pattern = TopologyPattern::kTree;
    } else {
      pattern = TopologyPattern::kCycle;
    }
    const int size = SamplePatternSize(7.2, 4, 12, &rng);
    std::vector<int> members = TakeUnusedNodes(&used, 0, n, size, &rng);
    PlantPattern(&builder, members, pattern, &rng);
    ApplyGroupOffset(&x, members, /*magnitude=*/1.5, /*frac_dims=*/0.5, &rng);
    std::sort(members.begin(), members.end());
    groups.push_back(std::move(members));
    patterns.push_back(pattern);
  }

  Dataset out;
  out.name = "ethereum";
  out.graph = builder.Build(std::move(x));
  out.anomaly_groups = std::move(groups);
  out.group_patterns = std::move(patterns);
  return out;
}

}  // namespace grgad
