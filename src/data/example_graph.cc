#include "src/data/example_graph.h"

#include <algorithm>

#include "src/data/synth_common.h"

namespace grgad {

Dataset GenExampleGraph(const DatasetOptions& options) {
  Rng rng(options.seed ^ 0x65786d70ULL);
  const int n_background = 90;
  const int attr_dim = options.attr_dim > 0 ? options.attr_dim : 16;
  // Three planted groups: path(7), tree(8), cycle(6).
  const std::vector<std::pair<TopologyPattern, int>> plan = {
      {TopologyPattern::kPath, 7},
      {TopologyPattern::kTree, 8},
      {TopologyPattern::kCycle, 6},
  };
  int n = n_background;
  for (const auto& [_, size] : plan) n += size;

  GraphBuilder builder(n);
  // Two-community background over [0, n_background).
  std::vector<int> cluster(n, 0);
  for (int v = 0; v < n_background; ++v) cluster[v] = v % 2;
  int added = 0;
  while (added < 190) {
    const int u = static_cast<int>(rng.UniformInt(
        static_cast<uint64_t>(n_background)));
    const int v = static_cast<int>(rng.UniformInt(
        static_cast<uint64_t>(n_background)));
    if (u == v || builder.HasEdge(u, v)) continue;
    if (cluster[u] != cluster[v] && !rng.Bernoulli(0.15)) continue;
    builder.AddEdge(u, v);
    ++added;
  }

  Matrix x = ClusteredGaussianFeatures(cluster, 2, attr_dim, &rng);

  std::vector<std::vector<int>> groups;
  std::vector<TopologyPattern> patterns;
  int next = n_background;
  for (const auto& [pattern, size] : plan) {
    std::vector<int> members;
    for (int i = 0; i < size; ++i) members.push_back(next++);
    PlantPattern(&builder, members, pattern, &rng);
    // Tether the group to the background through its two "boundary" nodes so
    // interiors are several hops from any normal node.
    builder.AddEdge(members.front(),
                    static_cast<int>(rng.UniformInt(
                        static_cast<uint64_t>(n_background))));
    builder.AddEdge(members.back(),
                    static_cast<int>(rng.UniformInt(
                        static_cast<uint64_t>(n_background))));
    ApplyGroupOffset(&x, members, /*magnitude=*/1.6, /*frac_dims=*/0.5, &rng);
    std::sort(members.begin(), members.end());
    groups.push_back(std::move(members));
    patterns.push_back(pattern);
  }
  GRGAD_CHECK_EQ(next, n);

  Dataset out;
  out.name = "example";
  out.graph = builder.Build(std::move(x));
  out.anomaly_groups = std::move(groups);
  out.group_patterns = std::move(patterns);
  return out;
}

}  // namespace grgad
