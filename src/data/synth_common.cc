#include "src/data/synth_common.h"

#include <algorithm>
#include <cmath>

namespace grgad {

void AppendPreferentialAttachment(GraphBuilder* builder, int n,
                                  int edges_per_node, Rng* rng) {
  GRGAD_CHECK(builder != nullptr && rng != nullptr);
  GRGAD_CHECK_GE(n, 2);
  // Repeated-endpoint list implements degree-proportional sampling.
  std::vector<int> endpoints;
  endpoints.reserve(static_cast<size_t>(n) * edges_per_node * 2);
  builder->AddEdge(0, 1);
  endpoints.push_back(0);
  endpoints.push_back(1);
  for (int v = 2; v < n; ++v) {
    const int m = std::min(edges_per_node, v);
    std::vector<int> chosen;
    for (int e = 0; e < m; ++e) {
      int target;
      int guard = 0;
      do {
        target = endpoints[rng->UniformInt(endpoints.size())];
      } while (std::find(chosen.begin(), chosen.end(), target) !=
                   chosen.end() &&
               ++guard < 16);
      if (std::find(chosen.begin(), chosen.end(), target) != chosen.end()) {
        continue;
      }
      chosen.push_back(target);
      builder->AddEdge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
    if (chosen.empty()) {
      // Degenerate guard: attach somewhere.
      const int target = static_cast<int>(rng->UniformInt(
          static_cast<uint64_t>(v)));
      builder->AddEdge(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
}

void AppendErdosRenyiEdges(GraphBuilder* builder, int n, int target_edges,
                           Rng* rng) {
  GRGAD_CHECK(builder != nullptr && rng != nullptr);
  GRGAD_CHECK_GE(n, 2);
  int added = 0;
  int attempts = 0;
  const int max_attempts = target_edges * 20 + 100;
  while (added < target_edges && attempts < max_attempts) {
    ++attempts;
    const int u = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
    if (u == v || builder->HasEdge(u, v)) continue;
    builder->AddEdge(u, v);
    ++added;
  }
}

void AppendRandomForest(GraphBuilder* builder, int n, int num_trees,
                        Rng* rng) {
  GRGAD_CHECK(builder != nullptr && rng != nullptr);
  GRGAD_CHECK_GE(num_trees, 1);
  GRGAD_CHECK_GE(n, num_trees);
  // Nodes [0, num_trees) are roots; node v >= num_trees attaches to a random
  // earlier node of the tree it is assigned to (round-robin assignment keeps
  // tree sizes balanced without extra state).
  std::vector<std::vector<int>> members(num_trees);
  for (int t = 0; t < num_trees; ++t) members[t].push_back(t);
  for (int v = num_trees; v < n; ++v) {
    const int t = v % num_trees;
    const int parent = members[t][rng->UniformInt(members[t].size())];
    builder->AddEdge(v, parent);
    members[t].push_back(v);
  }
}

void PlantPattern(GraphBuilder* builder, const std::vector<int>& nodes,
                  TopologyPattern pattern, Rng* rng) {
  GRGAD_CHECK(builder != nullptr && rng != nullptr);
  switch (pattern) {
    case TopologyPattern::kPath: {
      GRGAD_CHECK_GE(nodes.size(), 2u);
      for (size_t i = 0; i + 1 < nodes.size(); ++i) {
        builder->AddEdge(nodes[i], nodes[i + 1]);
      }
      break;
    }
    case TopologyPattern::kTree: {
      GRGAD_CHECK_GE(nodes.size(), 2u);
      // Bounded fan-out: parents are drawn from the most recent window so
      // the tree gains depth as well as breadth.
      for (size_t i = 1; i < nodes.size(); ++i) {
        const size_t window = std::max<size_t>(1, i / 2);
        const size_t lo = i - std::min(i, window + 1);
        const size_t parent_idx =
            lo + static_cast<size_t>(rng->UniformInt(
                     static_cast<uint64_t>(i - lo)));
        builder->AddEdge(nodes[i], nodes[parent_idx]);
      }
      break;
    }
    case TopologyPattern::kCycle: {
      GRGAD_CHECK_GE(nodes.size(), 3u);
      for (size_t i = 0; i < nodes.size(); ++i) {
        builder->AddEdge(nodes[i], nodes[(i + 1) % nodes.size()]);
      }
      break;
    }
    case TopologyPattern::kMixed: {
      GRGAD_CHECK_GE(nodes.size(), 3u);
      for (size_t i = 0; i + 1 < nodes.size(); ++i) {
        builder->AddEdge(nodes[i], nodes[i + 1]);
      }
      const size_t a = static_cast<size_t>(
          rng->UniformInt(static_cast<uint64_t>(nodes.size() - 2)));
      builder->AddEdge(nodes[a], nodes[nodes.size() - 1]);
      break;
    }
  }
}

std::vector<int> TakeUnusedNodes(std::vector<uint8_t>* used, int lo, int hi,
                                 int count, Rng* rng) {
  GRGAD_CHECK(used != nullptr && rng != nullptr);
  GRGAD_CHECK(lo >= 0 && hi <= static_cast<int>(used->size()) && lo < hi);
  std::vector<int> out;
  out.reserve(count);
  int guard = 0;
  const int max_guard = (hi - lo) * 50 + 1000;
  while (static_cast<int>(out.size()) < count) {
    GRGAD_CHECK_LT(++guard, max_guard);  // Pool exhausted.
    const int v = lo + static_cast<int>(rng->UniformInt(
                           static_cast<uint64_t>(hi - lo)));
    if ((*used)[v]) continue;
    (*used)[v] = 1;
    out.push_back(v);
  }
  return out;
}

Matrix CommunityBagOfWords(const std::vector<int>& community, int num_comms,
                           int attr_dim, int words_per_node, Rng* rng) {
  GRGAD_CHECK(rng != nullptr);
  GRGAD_CHECK_GT(num_comms, 0);
  GRGAD_CHECK_GT(attr_dim, 0);
  const int n = static_cast<int>(community.size());
  // Each community owns a topic: a subset of ~attr_dim / num_comms words
  // plus a shared common pool.
  const int topic_size = std::max(4, attr_dim / std::max(1, num_comms));
  std::vector<std::vector<int>> topics(num_comms);
  for (int c = 0; c < num_comms; ++c) {
    auto idx = rng->SampleWithoutReplacement(attr_dim, topic_size);
    topics[c].assign(idx.begin(), idx.end());
  }
  Matrix x(n, attr_dim);
  for (int i = 0; i < n; ++i) {
    const int c = community[i];
    GRGAD_CHECK(c >= 0 && c < num_comms);
    for (int w = 0; w < words_per_node; ++w) {
      int word;
      if (rng->Bernoulli(0.8)) {
        word = topics[c][rng->UniformInt(topics[c].size())];
      } else {
        word = static_cast<int>(rng->UniformInt(
            static_cast<uint64_t>(attr_dim)));
      }
      x(i, word) = 1.0;
    }
  }
  return x;
}

Matrix ClusteredGaussianFeatures(const std::vector<int>& cluster,
                                 int num_clusters, int attr_dim, Rng* rng) {
  GRGAD_CHECK(rng != nullptr);
  GRGAD_CHECK_GT(num_clusters, 0);
  GRGAD_CHECK_GT(attr_dim, 0);
  const int n = static_cast<int>(cluster.size());
  Matrix means(num_clusters, attr_dim);
  for (int c = 0; c < num_clusters; ++c) {
    for (int j = 0; j < attr_dim; ++j) means(c, j) = rng->Normal(0.0, 1.0);
  }
  Matrix x(n, attr_dim);
  for (int i = 0; i < n; ++i) {
    const int c = cluster[i];
    GRGAD_CHECK(c >= 0 && c < num_clusters);
    for (int j = 0; j < attr_dim; ++j) {
      x(i, j) = means(c, j) + rng->Normal(0.0, 0.5);
    }
  }
  return x;
}

void ApplyGroupOffset(Matrix* x, const std::vector<int>& rows,
                      double magnitude, double frac_dims, Rng* rng) {
  GRGAD_CHECK(x != nullptr && rng != nullptr);
  const int d = static_cast<int>(x->cols());
  const int k = std::max(1, static_cast<int>(frac_dims * d));
  const auto dims = rng->SampleWithoutReplacement(d, k);
  std::vector<double> offset(k);
  for (int j = 0; j < k; ++j) {
    offset[j] = (rng->Bernoulli(0.5) ? 1.0 : -1.0) * magnitude;
  }
  // Per-node jitter on top of the shared offset: the paper's own injection
  // (Cora-group) adds Gaussian noise per new node, which is what makes the
  // anomalies visible to one-hop reconstruction at the group boundary while
  // the shared component carries the long-range signal.
  for (int row : rows) {
    GRGAD_CHECK(row >= 0 && static_cast<size_t>(row) < x->rows());
    for (int j = 0; j < k; ++j) {
      (*x)(row, dims[j]) += offset[j] + rng->Normal(0.0, 0.35 * magnitude);
    }
  }
}

int SamplePatternSize(double mean, int min_size, int max_size, Rng* rng) {
  GRGAD_CHECK(rng != nullptr);
  GRGAD_CHECK_LE(min_size, max_size);
  const int spread = std::max(1, static_cast<int>(mean * 0.4));
  int size = static_cast<int>(mean) +
             static_cast<int>(rng->UniformInt(-spread, spread));
  return std::clamp(size, min_size, max_size);
}

}  // namespace grgad
