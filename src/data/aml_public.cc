#include "src/data/aml_public.h"

#include <algorithm>

#include "src/data/synth_common.h"

namespace grgad {

Dataset GenAmlPublic(const DatasetOptions& options) {
  Rng rng(options.seed ^ 0x616d6c70ULL);
  const double scale = options.scale > 0.0 ? options.scale : 1.0;
  const int n = std::max(256, static_cast<int>(16720 * scale));
  const int num_trees = std::max(8, n / 8);  // Forest density of the dump.
  const int extra_edges = std::max(16, static_cast<int>(2300 * scale));
  const int num_groups = std::max(3, static_cast<int>(19 * scale));
  const int attr_dim = options.attr_dim > 0 ? options.attr_dim : 16;
  const int num_clusters = 6;

  GraphBuilder builder(n);
  AppendRandomForest(&builder, n, num_trees, &rng);
  AppendErdosRenyiEdges(&builder, n, extra_edges, &rng);

  std::vector<int> cluster(n);
  for (int v = 0; v < n; ++v) {
    cluster[v] = static_cast<int>(rng.UniformInt(
        static_cast<uint64_t>(num_clusters)));
  }
  Matrix x = ClusteredGaussianFeatures(cluster, num_clusters, attr_dim, &rng);

  // 18 path groups + 1 tree group (Table II pattern mix).
  std::vector<uint8_t> used(n, 0);
  std::vector<std::vector<int>> groups;
  std::vector<TopologyPattern> patterns;
  for (int gidx = 0; gidx < num_groups; ++gidx) {
    const TopologyPattern pattern =
        gidx == num_groups - 1 ? TopologyPattern::kTree
                               : TopologyPattern::kPath;
    const int size = SamplePatternSize(19.0, 12, 26, &rng);
    std::vector<int> members = TakeUnusedNodes(&used, 0, n, size, &rng);
    PlantPattern(&builder, members, pattern, &rng);
    ApplyGroupOffset(&x, members, /*magnitude=*/1.5, /*frac_dims=*/0.5, &rng);
    std::sort(members.begin(), members.end());
    groups.push_back(std::move(members));
    patterns.push_back(pattern);
  }

  Dataset out;
  out.name = "amlpublic";
  out.graph = builder.Build(std::move(x));
  out.anomaly_groups = std::move(groups);
  out.group_patterns = std::move(patterns);
  return out;
}

}  // namespace grgad
