// The evaluation dataset container: an attributed graph plus ground-truth
// anomaly groups (with their planted topology patterns).
#ifndef GRGAD_DATA_DATASET_H_
#define GRGAD_DATA_DATASET_H_

#include <string>
#include <vector>

#include "src/core/types.h"
#include "src/graph/graph.h"

namespace grgad {

/// A benchmark instance mirroring the paper's Table I rows.
struct Dataset {
  std::string name;
  Graph graph;
  /// Ground-truth anomaly groups; each is a sorted node-id list.
  std::vector<std::vector<int>> anomaly_groups;
  /// Planted pattern per group (aligned with anomaly_groups).
  std::vector<TopologyPattern> group_patterns;

  /// Per-node 0/1 labels derived from group membership.
  std::vector<int> NodeLabels() const;

  /// Fraction of nodes that belong to some anomaly group.
  double NodeContamination() const;

  /// Mean ground-truth group size (the paper's "Avg. size").
  double AverageGroupSize() const;
};

/// Generation knobs common to all generators. Every generator is fully
/// deterministic given the seed.
struct DatasetOptions {
  uint64_t seed = 42;
  /// Attribute width; 0 keeps each generator's default. The paper's raw
  /// bag-of-words widths (1433/3703/3123) are intentionally narrowed by
  /// default for 2-core runtime; see DESIGN.md §3.
  int attr_dim = 0;
  /// Uniform scale on node counts (1.0 = paper-matched sizes). Values < 1
  /// shrink datasets proportionally (quick tests / CI).
  double scale = 1.0;
};

}  // namespace grgad

#endif  // GRGAD_DATA_DATASET_H_
