// Name-based dataset factory used by benches, examples, and tests.
#ifndef GRGAD_DATA_REGISTRY_H_
#define GRGAD_DATA_REGISTRY_H_

#include <string>
#include <vector>

#include "src/data/dataset.h"
#include "src/util/status.h"

namespace grgad {

/// Dataset names accepted by MakeDataset, in the paper's Table I order
/// ("simml", "cora-group", "citeseer-group", "amlpublic", "ethereum") plus
/// the qualitative "example" instance of Fig. 8.
std::vector<std::string> ListDatasets();

/// Builds the named dataset; NotFound for unknown names.
Result<Dataset> MakeDataset(const std::string& name,
                            const DatasetOptions& options = {});

}  // namespace grgad

#endif  // GRGAD_DATA_REGISTRY_H_
