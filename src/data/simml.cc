#include "src/data/simml.h"

#include <algorithm>

#include "src/data/synth_common.h"

namespace grgad {

Dataset GenSimMl(const DatasetOptions& options) {
  Rng rng(options.seed ^ 0x73696d6dULL);
  const double scale = options.scale > 0.0 ? options.scale : 1.0;
  const int n = std::max(128, static_cast<int>(2768 * scale));
  const int extra_edges = std::max(32, static_cast<int>(1300 * scale));
  const int num_groups = std::max(4, static_cast<int>(74 * scale));
  const int attr_dim = options.attr_dim > 0 ? options.attr_dim : 32;
  const int num_clusters = 8;  // Account archetypes (retail, merchant, ...).

  GraphBuilder builder(n);
  // Scale-free transaction background: hubs are payment processors.
  AppendPreferentialAttachment(&builder, n, /*edges_per_node=*/1, &rng);
  AppendErdosRenyiEdges(&builder, n, extra_edges, &rng);

  // Account features per archetype.
  std::vector<int> cluster(n);
  for (int v = 0; v < n; ++v) {
    cluster[v] = static_cast<int>(rng.UniformInt(
        static_cast<uint64_t>(num_clusters)));
  }
  Matrix x = ClusteredGaussianFeatures(cluster, num_clusters, attr_dim, &rng);

  // Laundering groups: AMLSim pattern taxonomy.
  std::vector<uint8_t> used(n, 0);
  std::vector<std::vector<int>> groups;
  std::vector<TopologyPattern> patterns;
  for (int gidx = 0; gidx < num_groups; ++gidx) {
    const double roll = rng.Uniform();
    TopologyPattern pattern = roll < 0.35  ? TopologyPattern::kPath
                              : roll < 0.75 ? TopologyPattern::kTree
                                            : TopologyPattern::kCycle;
    const int size = SamplePatternSize(3.5, 3, 6, &rng);
    std::vector<int> members = TakeUnusedNodes(&used, 0, n, size, &rng);
    PlantPattern(&builder, members, pattern, &rng);
    ApplyGroupOffset(&x, members, /*magnitude=*/1.5, /*frac_dims=*/0.5, &rng);
    std::sort(members.begin(), members.end());
    groups.push_back(std::move(members));
    patterns.push_back(pattern);
  }

  Dataset out;
  out.name = "simml";
  out.graph = builder.Build(std::move(x));
  out.anomaly_groups = std::move(groups);
  out.group_patterns = std::move(patterns);
  return out;
}

}  // namespace grgad
