// The qualitative example graph of the paper's Fig. 3 / Fig. 8: a small
// two-community background with three planted anomaly groups (one path, one
// tree, one cycle) whose interiors are locally consistent — the graph on
// which vanilla GAE detectors miss group interiors and MH-GAE does not.
#ifndef GRGAD_DATA_EXAMPLE_GRAPH_H_
#define GRGAD_DATA_EXAMPLE_GRAPH_H_

#include "src/data/dataset.h"

namespace grgad {

/// Generates the Fig. 8 example instance (~110 nodes, 3 anomaly groups).
Dataset GenExampleGraph(const DatasetOptions& options = {});

}  // namespace grgad

#endif  // GRGAD_DATA_EXAMPLE_GRAPH_H_
