// simML: AMLSim-style synthetic money-laundering transaction graph
// (IBM AMLSim is itself a synthetic simulator; this generator re-implements
// its pattern taxonomy at the statistics of the paper's simML snapshot:
// ~2.8k accounts, ~4.2k transactions, 74 laundering groups of avg size 3.5).
//
// Laundering groups are planted as fan-in/fan-out trees, short cycles, and
// transfer paths over otherwise-normal accounts, with a coherent feature
// offset per group (same accounts suddenly share velocity/volume quirks) —
// the group-coherence is what creates long-range inconsistency.
#ifndef GRGAD_DATA_SIMML_H_
#define GRGAD_DATA_SIMML_H_

#include "src/data/dataset.h"

namespace grgad {

/// Generates the simML benchmark instance.
Dataset GenSimMl(const DatasetOptions& options = {});

}  // namespace grgad

#endif  // GRGAD_DATA_SIMML_H_
