// Cora-group / CiteSeer-group: synthetic Gr-GAD datasets built the way the
// paper builds them from Cora and CiteSeer (§VII-A1): take a community-
// structured citation graph with bag-of-words attributes, pick anchor nodes,
// and add new nodes that wire the anchors into a topology pattern; new-node
// attributes are an anchor's attributes plus Gaussian noise.
//
// Because the real Cora/CiteSeer downloads are unavailable offline, the
// carrier graph is a stochastic block model matched to their size, density,
// community count, and attribute sparsity (see DESIGN.md §3); the injection
// procedure itself follows the paper verbatim.
#ifndef GRGAD_DATA_CITATION_GROUP_H_
#define GRGAD_DATA_CITATION_GROUP_H_

#include "src/data/dataset.h"

namespace grgad {

/// Which citation-network profile to synthesize.
enum class CitationProfile { kCora, kCiteseer };

/// Generates Cora-group (22 groups, avg size ~6.3) or CiteSeer-group
/// (22 groups, avg size ~6.2) per the paper's injection procedure.
Dataset GenCitationGroup(CitationProfile profile,
                         const DatasetOptions& options = {});

}  // namespace grgad

#endif  // GRGAD_DATA_CITATION_GROUP_H_
