#include "src/data/registry.h"

#include "src/data/aml_public.h"
#include "src/data/citation_group.h"
#include "src/data/ethereum.h"
#include "src/data/example_graph.h"
#include "src/data/simml.h"
#include "src/util/fault.h"

namespace grgad {

std::vector<std::string> ListDatasets() {
  return {"simml", "cora-group", "citeseer-group", "amlpublic", "ethereum",
          "example"};
}

Result<Dataset> MakeDataset(const std::string& name,
                            const DatasetOptions& options) {
  // Fault point for exercising the CLI's retry wrapper: a retryable
  // kIoError, as a flaky on-disk loader would return.
  GRGAD_RETURN_IF_ERROR(FaultInjector::Global().Check("dataset/load"));
  if (name == "simml") return GenSimMl(options);
  if (name == "cora-group") {
    return GenCitationGroup(CitationProfile::kCora, options);
  }
  if (name == "citeseer-group") {
    return GenCitationGroup(CitationProfile::kCiteseer, options);
  }
  if (name == "amlpublic") return GenAmlPublic(options);
  if (name == "ethereum") return GenEthereum(options);
  if (name == "example") return GenExampleGraph(options);
  return Status::NotFound("unknown dataset: " + name);
}

}  // namespace grgad
