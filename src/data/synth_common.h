// Shared building blocks for the synthetic dataset generators: background
// graph models (preferential attachment, Erdős–Rényi, random forests),
// pattern planting (wiring a node set into a path / tree / cycle), and
// attribute machinery (community bag-of-words, Gaussian features, coherent
// group offsets).
//
// The planting helpers are what make the benchmark exhibit the paper's
// "long-range inconsistency": group members receive a *shared* attribute
// offset, so interior nodes agree with their one-hop neighbors (fooling
// vanilla GAE) while disagreeing with the surrounding region.
#ifndef GRGAD_DATA_SYNTH_COMMON_H_
#define GRGAD_DATA_SYNTH_COMMON_H_

#include <vector>

#include "src/core/types.h"
#include "src/graph/graph.h"
#include "src/util/rng.h"

namespace grgad {

/// Barabási–Albert-style preferential attachment over nodes [0, n): each new
/// node attaches to `edges_per_node` existing nodes (degree-weighted).
void AppendPreferentialAttachment(GraphBuilder* builder, int n,
                                  int edges_per_node, Rng* rng);

/// Adds ~target_edges uniformly random distinct edges among nodes [0, n).
void AppendErdosRenyiEdges(GraphBuilder* builder, int n, int target_edges,
                           Rng* rng);

/// Random spanning forest over [0, n) with `num_trees` roots: every non-root
/// node attaches to a uniformly random earlier node of its tree. Produces
/// the near-tree sparsity of the AMLPublic transaction graph.
void AppendRandomForest(GraphBuilder* builder, int n, int num_trees,
                        Rng* rng);

/// Wires `nodes` (>= 2 for path/tree, >= 3 for cycle) into the given
/// pattern, adding edges to `builder`:
///  - kPath:  nodes[0] - nodes[1] - ... - nodes.back()
///  - kTree:  nodes[0] is the root; each later node attaches to a random
///            earlier node (bounded fan-out for realistic hierarchies).
///  - kCycle: ring over `nodes` in order.
///  - kMixed: path plus one random chord.
void PlantPattern(GraphBuilder* builder, const std::vector<int>& nodes,
                  TopologyPattern pattern, Rng* rng);

/// Draws `count` distinct node ids from [lo, hi) that are not yet used;
/// marks them used. CHECK-fails if the pool is exhausted.
std::vector<int> TakeUnusedNodes(std::vector<uint8_t>* used, int lo, int hi,
                                 int count, Rng* rng);

/// Community bag-of-words attributes: each community draws topic words; each
/// node activates ~words_per_node words mostly from its community topic
/// (binary features, like Cora/CiteSeer).
Matrix CommunityBagOfWords(const std::vector<int>& community, int num_comms,
                           int attr_dim, int words_per_node, Rng* rng);

/// Dense Gaussian features with per-cluster means (financial datasets).
Matrix ClusteredGaussianFeatures(const std::vector<int>& cluster,
                                 int num_clusters, int attr_dim, Rng* rng);

/// Adds a shared offset to the given rows: the same `magnitude`-sized shift
/// on a random `frac_dims` subset of dimensions, identical for all rows
/// (group-coherent long-range inconsistency), plus small per-node jitter.
void ApplyGroupOffset(Matrix* x, const std::vector<int>& rows,
                      double magnitude, double frac_dims, Rng* rng);

/// Picks a pattern size: path/cycle lengths and tree sizes around `mean`
/// (min 3), geometric-ish spread.
int SamplePatternSize(double mean, int min_size, int max_size, Rng* rng);

}  // namespace grgad

#endif  // GRGAD_DATA_SYNTH_COMMON_H_
