#include "src/metrics/completeness.h"

#include <algorithm>

#include "src/util/check.h"

namespace grgad {

int SortedIntersectionSize(const std::vector<int>& a,
                           const std::vector<int>& b) {
  GRGAD_DCHECK(std::is_sorted(a.begin(), a.end()));
  GRGAD_DCHECK(std::is_sorted(b.begin(), b.end()));
  int count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

double CompletenessScore(const std::vector<int>& ground_truth,
                         const std::vector<std::vector<int>>& predicted) {
  if (ground_truth.empty()) return 0.0;
  double best = 0.0;
  for (const auto& pred : predicted) {
    if (pred.empty()) continue;
    const int overlap = SortedIntersectionSize(ground_truth, pred);
    const double recall =
        static_cast<double>(overlap) / static_cast<double>(ground_truth.size());
    const double precision =
        static_cast<double>(overlap) / static_cast<double>(pred.size());
    best = std::max(best, 0.5 * (recall + precision));
  }
  return best;
}

double CompletenessRatio(const std::vector<std::vector<int>>& ground_truth,
                         const std::vector<std::vector<int>>& predicted) {
  if (ground_truth.empty()) return 0.0;
  double total = 0.0;
  for (const auto& gt : ground_truth) {
    total += CompletenessScore(gt, predicted);
  }
  return total / static_cast<double>(ground_truth.size());
}

double GroupJaccard(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.empty() && b.empty()) return 0.0;
  const int inter = SortedIntersectionSize(a, b);
  const double uni = static_cast<double>(a.size() + b.size() - inter);
  return uni <= 0.0 ? 0.0 : inter / uni;
}

std::vector<int> MatchGroups(const std::vector<std::vector<int>>& ground_truth,
                             const std::vector<std::vector<int>>& predicted,
                             double min_jaccard) {
  std::vector<int> match(predicted.size(), -1);
  // Greedy: highest-overlap pairs first, one predicted group per gt group is
  // NOT enforced — multiple predictions may match the same gt group (the
  // sampler intentionally produces overlapping candidates).
  for (size_t p = 0; p < predicted.size(); ++p) {
    double best = min_jaccard;
    for (size_t g = 0; g < ground_truth.size(); ++g) {
      const double j = GroupJaccard(predicted[p], ground_truth[g]);
      if (j >= best) {
        best = j;
        match[p] = static_cast<int>(g);
      }
    }
  }
  return match;
}

}  // namespace grgad
