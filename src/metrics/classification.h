// Binary-classification metrics computed group-wise, as defined in the
// paper's §VII-A2: F1 and ROC-AUC over candidate groups, plus threshold
// helpers for converting continuous anomaly scores into labels.
#ifndef GRGAD_METRICS_CLASSIFICATION_H_
#define GRGAD_METRICS_CLASSIFICATION_H_

#include <cstdint>
#include <vector>

namespace grgad {

/// Confusion counts for binary labels.
struct ConfusionCounts {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t tn = 0;
  int64_t fn = 0;
};

/// Counts tp/fp/tn/fn; vectors must be equal length, entries in {0,1}.
ConfusionCounts Confusion(const std::vector<int>& y_true,
                          const std::vector<int>& y_pred);

/// Precision = tp / (tp + fp); 0 when undefined.
double Precision(const ConfusionCounts& c);
/// Recall = tp / (tp + fn); 0 when undefined.
double Recall(const ConfusionCounts& c);
/// F1 = harmonic mean of precision and recall; 0 when undefined.
double F1Score(const std::vector<int>& y_true, const std::vector<int>& y_pred);

/// ROC-AUC from continuous scores via the rank (Mann–Whitney) formulation;
/// ties contribute 1/2. Returns 0.5 when one class is absent.
double RocAuc(const std::vector<int>& y_true,
              const std::vector<double>& scores);

/// Labels the top ceil(rate * n) scores as positive (contamination-rate
/// thresholding, the standard unsupervised-AD protocol). rate in [0, 1].
std::vector<int> LabelsAtContamination(const std::vector<double>& scores,
                                       double rate);

/// F1 with contamination-rate thresholding at the true positive rate.
double F1AtTrueContamination(const std::vector<int>& y_true,
                             const std::vector<double>& scores);

/// Mean of a sample.
double Mean(const std::vector<double>& xs);
/// Standard error of the mean (0 for fewer than 2 samples).
double StdError(const std::vector<double>& xs);

}  // namespace grgad

#endif  // GRGAD_METRICS_CLASSIFICATION_H_
