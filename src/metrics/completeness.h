// Completeness Ratio (CR), the paper's new group-level metric (Eqn. 24–25).
//
// For a ground-truth group c_g and predicted group set Ĉ, the completeness
// score of c_g is the best, over predicted groups, average of node-level
// recall and precision of the overlap:
//
//   s_g = max_i 1/2 ( |V̂_i ∩ V_g| / |V_g|  +  |V̂_i ∩ V_g| / |V̂_i| ),
//
// and CR is the mean of s_g over all ground-truth groups. CR == 1 iff every
// ground-truth group is predicted exactly (no missing, no redundant nodes).
#ifndef GRGAD_METRICS_COMPLETENESS_H_
#define GRGAD_METRICS_COMPLETENESS_H_

#include <vector>

namespace grgad {

/// Number of common elements between two sorted int vectors.
int SortedIntersectionSize(const std::vector<int>& a,
                           const std::vector<int>& b);

/// Completeness score s_g of one ground-truth group against all predicted
/// groups (Eqn. 24). Groups must be sorted node-id lists. Returns 0 when
/// `predicted` is empty.
double CompletenessScore(const std::vector<int>& ground_truth,
                         const std::vector<std::vector<int>>& predicted);

/// Completeness Ratio over all ground-truth groups (Eqn. 25). Returns 0
/// when `ground_truth` is empty.
double CompletenessRatio(const std::vector<std::vector<int>>& ground_truth,
                         const std::vector<std::vector<int>>& predicted);

/// Greedy 1:1 matching of predicted groups to ground-truth groups by overlap
/// (Jaccard), used to derive group-wise binary labels for F1/AUC: a ground
/// truth group counts as detected when some predicted group overlaps it with
/// Jaccard >= min_jaccard. Returns, for each predicted group, the matched
/// ground-truth index or -1.
std::vector<int> MatchGroups(const std::vector<std::vector<int>>& ground_truth,
                             const std::vector<std::vector<int>>& predicted,
                             double min_jaccard = 0.1);

/// Jaccard overlap of two sorted groups.
double GroupJaccard(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace grgad

#endif  // GRGAD_METRICS_COMPLETENESS_H_
