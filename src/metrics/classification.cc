#include "src/metrics/classification.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace grgad {

ConfusionCounts Confusion(const std::vector<int>& y_true,
                          const std::vector<int>& y_pred) {
  GRGAD_CHECK_EQ(y_true.size(), y_pred.size());
  ConfusionCounts c;
  for (size_t i = 0; i < y_true.size(); ++i) {
    GRGAD_DCHECK(y_true[i] == 0 || y_true[i] == 1);
    GRGAD_DCHECK(y_pred[i] == 0 || y_pred[i] == 1);
    if (y_true[i] == 1) {
      y_pred[i] == 1 ? ++c.tp : ++c.fn;
    } else {
      y_pred[i] == 1 ? ++c.fp : ++c.tn;
    }
  }
  return c;
}

double Precision(const ConfusionCounts& c) {
  const int64_t denom = c.tp + c.fp;
  return denom == 0 ? 0.0 : static_cast<double>(c.tp) / denom;
}

double Recall(const ConfusionCounts& c) {
  const int64_t denom = c.tp + c.fn;
  return denom == 0 ? 0.0 : static_cast<double>(c.tp) / denom;
}

double F1Score(const std::vector<int>& y_true,
               const std::vector<int>& y_pred) {
  const ConfusionCounts c = Confusion(y_true, y_pred);
  const double p = Precision(c);
  const double r = Recall(c);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double RocAuc(const std::vector<int>& y_true,
              const std::vector<double>& scores) {
  GRGAD_CHECK_EQ(y_true.size(), scores.size());
  const size_t n = y_true.size();
  size_t num_pos = 0;
  for (int y : y_true) num_pos += (y == 1);
  const size_t num_neg = n - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;
  // Average ranks with tie correction.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> rank(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i) + j) + 1.0;
    for (size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (y_true[k] == 1) pos_rank_sum += rank[k];
  }
  const double u = pos_rank_sum -
                   static_cast<double>(num_pos) * (num_pos + 1) / 2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

std::vector<int> LabelsAtContamination(const std::vector<double>& scores,
                                       double rate) {
  GRGAD_CHECK(rate >= 0.0 && rate <= 1.0);
  const size_t n = scores.size();
  std::vector<int> labels(n, 0);
  const size_t k = static_cast<size_t>(
      std::ceil(rate * static_cast<double>(n)));
  if (k == 0 || n == 0) return labels;
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  for (size_t i = 0; i < std::min(k, n); ++i) labels[order[i]] = 1;
  return labels;
}

double F1AtTrueContamination(const std::vector<int>& y_true,
                             const std::vector<double>& scores) {
  GRGAD_CHECK_EQ(y_true.size(), scores.size());
  if (y_true.empty()) return 0.0;
  size_t num_pos = 0;
  for (int y : y_true) num_pos += (y == 1);
  const double rate =
      static_cast<double>(num_pos) / static_cast<double>(y_true.size());
  return F1Score(y_true, LabelsAtContamination(scores, rate));
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double StdError(const std::vector<double>& xs) {
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  const double var = ss / static_cast<double>(n - 1);
  return std::sqrt(var / static_cast<double>(n));
}

}  // namespace grgad
