#include "src/nn/layers.h"

#include <cmath>

#include "src/tensor/arena.h"
#include "src/util/check.h"
#include "src/util/rng.h"

namespace grgad {

Var BiasReluFused(const Var& a, const Var& bias) {
  GRGAD_CHECK_EQ(bias.rows(), 1u);
  GRGAD_CHECK_EQ(a.cols(), bias.cols());
  const size_t rows = a.rows(), cols = a.cols();
  Matrix out = arena::Uninit(rows, cols);
  {
    // Row-chunked over the pool (disjoint rows, so bitwise identical to
    // the serial loop), matching the other elementwise kernels.
    const Matrix& av = a.value();
    const double* brow = bias.value().RowPtr(0);
    const size_t row_grain = kElementwiseParallelGrain / cols + 1;
    ParallelFor(rows, row_grain, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const double* src = av.RowPtr(i);
        double* dst = out.RowPtr(i);
        for (size_t j = 0; j < cols; ++j) {
          const double v = src[j] + brow[j];
          dst[j] = v > 0.0 ? v : 0.0;
        }
      }
    });
  }
  auto an = AutogradOps::node(a);
  auto bn = AutogradOps::node(bias);
  auto n = internal::NewInteriorNode(std::move(out), {a, bias});
  if (n->requires_grad) {
    internal::VarNode* self = n.get();
    n->backward_fn = [an, bn, self](const Matrix& g) {
      // Mask by output > 0 (== pre-activation > 0); the masked gradient is
      // shared by the input path and the bias column sums, matching the
      // unfused Relu-then-AddRowBroadcast backward order exactly.
      Matrix gm = arena::CopyOf(g);
      double* __restrict gd = gm.data();
      const double* __restrict od = self->value.data();
      const size_t size = gm.size();
      if (size < 2 * kElementwiseParallelGrain) {
        for (size_t i = 0; i < size; ++i) {
          if (od[i] <= 0.0) gd[i] = 0.0;
        }
      } else {
        ParallelFor(size, kElementwiseParallelGrain,
                    [&](size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) {
                        if (od[i] <= 0.0) gd[i] = 0.0;
                      }
                    });
      }
      if (bn->requires_grad) {
        // Serial ascending-row reduction, same order as the unfused
        // AddRowBroadcast backward (a 1 x cols output; not worth chunking).
        Matrix bg = arena::Zeroed(1, gm.cols());
        for (size_t i = 0; i < gm.rows(); ++i) {
          const double* row = gm.RowPtr(i);
          for (size_t j = 0; j < gm.cols(); ++j) bg(0, j) += row[j];
        }
        bn->AccumulateGrad(std::move(bg));
        arena::Recycle(std::move(bg));
      }
      if (an->requires_grad) an->AccumulateGrad(std::move(gm));
      arena::Recycle(std::move(gm));
    };
  }
  return AutogradOps::Wrap(std::move(n));
}

Matrix GlorotUniform(size_t in_dim, size_t out_dim, Rng* rng) {
  GRGAD_CHECK(rng != nullptr);
  const double limit = std::sqrt(6.0 / static_cast<double>(in_dim + out_dim));
  Matrix w(in_dim, out_dim);
  for (size_t i = 0; i < in_dim; ++i) {
    for (size_t j = 0; j < out_dim; ++j) {
      w(i, j) = rng->Uniform(-limit, limit);
    }
  }
  return w;
}

Linear::Linear(size_t in_dim, size_t out_dim, Rng* rng, bool use_bias)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_(GlorotUniform(in_dim, out_dim, rng), /*requires_grad=*/true) {
  if (use_bias) {
    bias_ = Var(Matrix(1, out_dim), /*requires_grad=*/true);
  }
}

Var Linear::Forward(const Var& x) const {
  GRGAD_CHECK_EQ(x.cols(), in_dim_);
  Var out = MatMul(x, weight_);
  if (bias_.defined()) out = AddRowBroadcast(out, bias_);
  return out;
}

Var Linear::ForwardNoBias(const Var& x) const {
  GRGAD_CHECK_EQ(x.cols(), in_dim_);
  return MatMul(x, weight_);
}

std::vector<Var> Linear::Params() const {
  std::vector<Var> out = {weight_};
  if (bias_.defined()) out.push_back(bias_);
  return out;
}

GcnLayer::GcnLayer(size_t in_dim, size_t out_dim, Rng* rng, bool use_bias)
    : linear_(in_dim, out_dim, rng, use_bias) {}

Var GcnLayer::Forward(const std::shared_ptr<const SparseMatrix>& op,
                      const Var& x) const {
  GRGAD_CHECK(op != nullptr);
  GRGAD_CHECK_EQ(op->cols(), x.rows());
  // (op X) W == op (X W); the right association is cheaper because W is thin.
  return Spmm(op, linear_.Forward(x));
}

Mlp::Mlp(const std::vector<size_t>& dims, Rng* rng, bool use_bias) {
  GRGAD_CHECK_GE(dims.size(), 2u);
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng, use_bias);
  }
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  const bool fuse = TrainingFastPathEnabled();
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool interior = i + 1 < layers_.size();
    if (interior && fuse && layers_[i].has_bias()) {
      // Fused bias+ReLU: bitwise identical to the unfused pair below.
      h = BiasReluFused(layers_[i].ForwardNoBias(h), layers_[i].bias());
    } else {
      h = layers_[i].Forward(h);
      if (interior) h = Relu(h);
    }
  }
  return h;
}

std::vector<Var> Mlp::Params() const {
  std::vector<Var> out;
  for (const Linear& l : layers_) {
    for (const Var& p : l.Params()) out.push_back(p);
  }
  return out;
}

}  // namespace grgad
