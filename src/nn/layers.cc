#include "src/nn/layers.h"

#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace grgad {

Matrix GlorotUniform(size_t in_dim, size_t out_dim, Rng* rng) {
  GRGAD_CHECK(rng != nullptr);
  const double limit = std::sqrt(6.0 / static_cast<double>(in_dim + out_dim));
  Matrix w(in_dim, out_dim);
  for (size_t i = 0; i < in_dim; ++i) {
    for (size_t j = 0; j < out_dim; ++j) {
      w(i, j) = rng->Uniform(-limit, limit);
    }
  }
  return w;
}

Linear::Linear(size_t in_dim, size_t out_dim, Rng* rng, bool use_bias)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      weight_(GlorotUniform(in_dim, out_dim, rng), /*requires_grad=*/true) {
  if (use_bias) {
    bias_ = Var(Matrix(1, out_dim), /*requires_grad=*/true);
  }
}

Var Linear::Forward(const Var& x) const {
  GRGAD_CHECK_EQ(x.cols(), in_dim_);
  Var out = MatMul(x, weight_);
  if (bias_.defined()) out = AddRowBroadcast(out, bias_);
  return out;
}

std::vector<Var> Linear::Params() const {
  std::vector<Var> out = {weight_};
  if (bias_.defined()) out.push_back(bias_);
  return out;
}

GcnLayer::GcnLayer(size_t in_dim, size_t out_dim, Rng* rng, bool use_bias)
    : linear_(in_dim, out_dim, rng, use_bias) {}

Var GcnLayer::Forward(const std::shared_ptr<const SparseMatrix>& op,
                      const Var& x) const {
  GRGAD_CHECK(op != nullptr);
  GRGAD_CHECK_EQ(op->cols(), x.rows());
  // (op X) W == op (X W); the right association is cheaper because W is thin.
  return Spmm(op, linear_.Forward(x));
}

Mlp::Mlp(const std::vector<size_t>& dims, Rng* rng, bool use_bias) {
  GRGAD_CHECK_GE(dims.size(), 2u);
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng, use_bias);
  }
}

Var Mlp::Forward(const Var& x) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = Relu(h);
  }
  return h;
}

std::vector<Var> Mlp::Params() const {
  std::vector<Var> out;
  for (const Linear& l : layers_) {
    for (const Var& p : l.Params()) out.push_back(p);
  }
  return out;
}

}  // namespace grgad
