#include "src/nn/optim.h"

#include <cmath>

#include "src/util/check.h"

namespace grgad {

Adam::Adam(std::vector<Var> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    GRGAD_CHECK(p.defined() && p.requires_grad());
    m_.emplace_back(p.rows(), p.cols());
    v_.emplace_back(p.rows(), p.cols());
  }
}

void Adam::Step() {
  ++t_;
  // Optional global-norm clipping across all parameter gradients.
  double scale = 1.0;
  if (options_.clip_grad_norm > 0.0) {
    double total_sq = 0.0;
    for (const Var& p : params_) {
      if (p.grad().empty()) continue;
      const double n = p.grad().FrobeniusNorm();
      total_sq += n * n;
    }
    const double total = std::sqrt(total_sq);
    if (total > options_.clip_grad_norm) {
      scale = options_.clip_grad_norm / total;
    }
  }
  const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    Var& p = params_[k];
    if (p.grad().empty()) continue;
    Matrix& value = p.mutable_value();
    const Matrix& g = p.grad();
    Matrix& m = m_[k];
    Matrix& v = v_[k];
    for (size_t i = 0; i < value.size(); ++i) {
      const double gi = g.data()[i] * scale;
      m.data()[i] = options_.beta1 * m.data()[i] + (1.0 - options_.beta1) * gi;
      v.data()[i] =
          options_.beta2 * v.data()[i] + (1.0 - options_.beta2) * gi * gi;
      const double m_hat = m.data()[i] / bc1;
      const double v_hat = v.data()[i] / bc2;
      double update = options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
      if (options_.weight_decay > 0.0) {
        update += options_.lr * options_.weight_decay * value.data()[i];
      }
      value.data()[i] -= update;
    }
  }
}

void Adam::ZeroGrad() {
  for (Var& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Var> params, double lr)
    : params_(std::move(params)), lr_(lr) {
  for (const Var& p : params_) {
    GRGAD_CHECK(p.defined() && p.requires_grad());
  }
}

void Sgd::Step() {
  for (Var& p : params_) {
    if (p.grad().empty()) continue;
    Matrix& value = p.mutable_value();
    const Matrix& g = p.grad();
    for (size_t i = 0; i < value.size(); ++i) {
      value.data()[i] -= lr_ * g.data()[i];
    }
  }
}

void Sgd::ZeroGrad() {
  for (Var& p : params_) p.ZeroGrad();
}

}  // namespace grgad
