#include "src/nn/optim.h"

#include <cmath>

#include "src/tensor/arena.h"
#include "src/util/check.h"
#include "src/util/parallel.h"

namespace grgad {

Adam::Adam(std::vector<Var> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    GRGAD_CHECK(p.defined() && p.requires_grad());
    m_.emplace_back(p.rows(), p.cols());
    v_.emplace_back(p.rows(), p.cols());
  }
}

void Adam::Step() {
  ++t_;
  // Optional global-norm clipping across all parameter gradients. Kept in
  // the seed's exact form (per-parameter FrobeniusNorm, then re-squared)
  // so the clip scale is bitwise reproducible.
  double scale = 1.0;
  if (options_.clip_grad_norm > 0.0) {
    double total_sq = 0.0;
    for (const Var& p : params_) {
      if (p.grad().empty()) continue;
      const double n = p.grad().FrobeniusNorm();
      total_sq += n * n;
    }
    const double total = std::sqrt(total_sq);
    if (total > options_.clip_grad_norm) {
      scale = options_.clip_grad_norm / total;
    }
  }
  const double bc1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  const double beta1 = options_.beta1;
  const double beta2 = options_.beta2;
  const double lr = options_.lr;
  const double eps = options_.eps;
  const double weight_decay = options_.weight_decay;
  const bool fast = TrainingFastPathEnabled();
  for (size_t k = 0; k < params_.size(); ++k) {
    Var& p = params_[k];
    if (p.grad().empty()) continue;
    // Single fused pass: clip scale, moment updates, bias correction, and
    // the (optionally weight-decayed) parameter update per element, chunked
    // over the pool. Chunking splits only the flat index range and every
    // element's arithmetic is independent, so the result is bitwise
    // identical to the seed's serial loop.
    double* __restrict value = p.mutable_value().data();
    const double* __restrict g = p.grad().data();
    double* __restrict m = m_[k].data();
    double* __restrict v = v_[k].data();
    const size_t size = p.mutable_value().size();
    auto update_range = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const double gi = g[i] * scale;
        m[i] = beta1 * m[i] + (1.0 - beta1) * gi;
        v[i] = beta2 * v[i] + (1.0 - beta2) * gi * gi;
        const double m_hat = m[i] / bc1;
        const double v_hat = v[i] / bc2;
        double update = lr * m_hat / (std::sqrt(v_hat) + eps);
        if (weight_decay > 0.0) {
          update += lr * weight_decay * value[i];
        }
        value[i] -= update;
      }
    };
    if (fast) {
      ParallelFor(size, kElementwiseParallelGrain, update_range);
    } else {
      update_range(0, size);
    }
  }
}

void Adam::ZeroGrad() {
  for (Var& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Var> params, double lr)
    : params_(std::move(params)), lr_(lr) {
  for (const Var& p : params_) {
    GRGAD_CHECK(p.defined() && p.requires_grad());
  }
}

void Sgd::Step() {
  const bool fast = TrainingFastPathEnabled();
  for (Var& p : params_) {
    if (p.grad().empty()) continue;
    double* __restrict value = p.mutable_value().data();
    const double* __restrict g = p.grad().data();
    const size_t size = p.mutable_value().size();
    const double lr = lr_;
    auto update_range = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) value[i] -= lr * g[i];
    };
    if (fast) {
      ParallelFor(size, kElementwiseParallelGrain, update_range);
    } else {
      update_range(0, size);
    }
  }
}

void Sgd::ZeroGrad() {
  for (Var& p : params_) p.ZeroGrad();
}

}  // namespace grgad
