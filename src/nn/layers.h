// Neural-network building blocks used by every model in the paper:
// Linear / Mlp (decoders, the MINE estimator Phi) and GcnLayer (the 2-layer
// GCN encoders of MH-GAE, DOMINANT, ComGA, and TPGCL's f_theta).
#ifndef GRGAD_NN_LAYERS_H_
#define GRGAD_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "src/nn/autograd.h"
#include "src/tensor/sparse.h"

namespace grgad {

class Rng;

/// Glorot/Xavier uniform initialization: U(-sqrt(6/(in+out)), +...).
Matrix GlorotUniform(size_t in_dim, size_t out_dim, Rng* rng);

/// Fused bias-broadcast + ReLU: out = max(0, a + bias) with `bias` a
/// 1 x a.cols() row vector, as a single tape node. One pass over the
/// activations forward and backward instead of the AddRowBroadcast + Relu
/// pair (which materialized the pre-activation and a second gradient
/// buffer every epoch). Bitwise identical to Relu(AddRowBroadcast(a, bias))
/// in both directions: the forward applies the same add-then-clamp per
/// element, and the backward masks the incoming gradient by output > 0 —
/// exactly the pre-activation > 0 test, since relu(x) > 0 iff x > 0.
Var BiasReluFused(const Var& a, const Var& bias);

/// Fully connected layer: y = x W + b.
class Linear {
 public:
  /// Initializes W with Glorot-uniform and b (if used) with zeros.
  Linear(size_t in_dim, size_t out_dim, Rng* rng, bool use_bias = true);

  /// x: n x in_dim -> n x out_dim.
  Var Forward(const Var& x) const;

  /// x W without the bias term; callers (e.g. Mlp's fused bias+ReLU path)
  /// apply the bias themselves.
  Var ForwardNoBias(const Var& x) const;

  /// Trainable parameter handles (shared with the optimizer).
  std::vector<Var> Params() const;

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  bool has_bias() const { return bias_.defined(); }
  /// The 1 x out_dim bias parameter; must only be called when has_bias().
  const Var& bias() const { return bias_; }

 private:
  size_t in_dim_;
  size_t out_dim_;
  Var weight_;
  Var bias_;  // Undefined when use_bias == false.
};

/// Graph convolution (Kipf & Welling): H' = op (H W) + b, where `op` is a
/// fixed message-passing operator (normalized adjacency, GraphSNN weights,
/// or a standardized power). The activation is applied by the caller.
class GcnLayer {
 public:
  GcnLayer(size_t in_dim, size_t out_dim, Rng* rng, bool use_bias = true);

  /// op: n x n sparse operator; x: n x in_dim -> n x out_dim.
  Var Forward(const std::shared_ptr<const SparseMatrix>& op,
              const Var& x) const;

  std::vector<Var> Params() const { return linear_.Params(); }

 private:
  Linear linear_;
};

/// Multi-layer perceptron with ReLU between layers and a linear final layer.
class Mlp {
 public:
  /// dims = {in, hidden..., out}; must have >= 2 entries.
  Mlp(const std::vector<size_t>& dims, Rng* rng, bool use_bias = true);

  Var Forward(const Var& x) const;

  std::vector<Var> Params() const;

  size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<Linear> layers_;
};

}  // namespace grgad

#endif  // GRGAD_NN_LAYERS_H_
