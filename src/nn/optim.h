// First-order optimizers over Var parameter handles.
#ifndef GRGAD_NN_OPTIM_H_
#define GRGAD_NN_OPTIM_H_

#include <vector>

#include "src/nn/autograd.h"

namespace grgad {

/// Adam hyperparameters; defaults follow the original paper and the common
/// settings of the reference GAD implementations (lr 5e-3).
struct AdamOptions {
  double lr = 5e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;   ///< Decoupled (AdamW-style) when > 0.
  double clip_grad_norm = 0.0; ///< Global-norm clip when > 0.
};

/// Adam optimizer with optional decoupled weight decay and gradient clipping.
class Adam {
 public:
  Adam(std::vector<Var> params, AdamOptions options = {});

  /// Applies one update from the accumulated gradients. Parameters with no
  /// accumulated gradient are skipped.
  void Step();

  /// Clears gradients of all managed parameters.
  void ZeroGrad();

  int64_t step_count() const { return t_; }

 private:
  std::vector<Var> params_;
  AdamOptions options_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  int64_t t_ = 0;
};

/// Plain SGD (used in tests as a reference).
class Sgd {
 public:
  Sgd(std::vector<Var> params, double lr);

  void Step();
  void ZeroGrad();

 private:
  std::vector<Var> params_;
  double lr_;
};

}  // namespace grgad

#endif  // GRGAD_NN_OPTIM_H_
