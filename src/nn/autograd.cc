#include "src/nn/autograd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <unordered_set>

#include "src/tensor/arena.h"

// Allocation discipline: every op output, every gradient, and every backward
// temporary goes through the Acquire*/ReleaseScratch helpers below, which
// draw from the thread's current MatrixArena when one is installed (training
// loops install one per run) and fall back to plain heap matrices otherwise.
// Node values and gradients return to the arena on tape teardown
// (~VarNode); scratch returns immediately after its accumulate. Every
// arena-backed computation runs the same kernels in the same accumulation
// order as the allocating path, so results are bitwise identical either way.

namespace grgad {

namespace internal {

namespace {
std::atomic<uint64_t> g_next_node_id{1};
}  // namespace

VarNode::~VarNode() {
  if (arena == nullptr) return;
  arena->Release(std::move(value));
  arena->Release(std::move(grad));
}

void VarNode::AccumulateGrad(const Matrix& g) {
  GRGAD_CHECK(g.rows() == value.rows() && g.cols() == value.cols());
  if (grad.empty()) {
    grad = arena != nullptr ? arena->AcquireCopy(g) : g;
    grad_zero = false;
  } else if (grad_zero) {
    grad.CopyFrom(g);
    grad_zero = false;
  } else {
    grad.AddInPlace(g);
  }
}

void VarNode::AccumulateGrad(Matrix&& g) {
  GRGAD_CHECK(g.rows() == value.rows() && g.cols() == value.cols());
  if (grad.empty()) {
    grad = std::move(g);  // Adopt the scratch buffer; identical bytes.
    grad_zero = false;
  } else {
    AccumulateGrad(static_cast<const Matrix&>(g));
  }
}

}  // namespace internal

using internal::VarNode;

namespace {

std::shared_ptr<VarNode> NewNode(Matrix value, bool requires_grad) {
  auto n = std::make_shared<VarNode>();
  n->value = std::move(value);
  n->requires_grad = requires_grad;
  n->id = internal::g_next_node_id.fetch_add(1);
  n->arena = CurrentArena();
  return n;
}

bool AnyRequiresGrad(const std::vector<Var>& parents) {
  for (const Var& p : parents) {
    if (p.requires_grad()) return true;
  }
  return false;
}

/// Creates an interior node with the given parents and backward closure.
/// The closure receives the output gradient and must accumulate into the
/// parent nodes it captured (checking requires_grad itself).
Var MakeOpNode(Matrix value, const std::vector<Var>& parents,
               std::function<void(const Matrix&)> backward_fn) {
  auto n = internal::NewInteriorNode(std::move(value), parents);
  if (n->requires_grad) n->backward_fn = std::move(backward_fn);
  return AutogradOps::Wrap(std::move(n));
}

// Arena-aware allocation helpers (see the file comment); short local names
// for the shared arena:: helpers.

Matrix AcquireZeroed(size_t r, size_t c) { return arena::Zeroed(r, c); }

/// Caller must overwrite every element before reading any.
Matrix AcquireUninit(size_t r, size_t c) { return arena::Uninit(r, c); }

Matrix AcquireCopyOf(const Matrix& src) { return arena::CopyOf(src); }

/// Returns a finished scratch buffer to the current arena (frees it when
/// none is installed).
void ReleaseScratch(Matrix&& m) { arena::Recycle(std::move(m)); }

}  // namespace

namespace internal {

std::shared_ptr<VarNode> NewInteriorNode(Matrix value,
                                         const std::vector<Var>& parents) {
  auto n = NewNode(std::move(value), AnyRequiresGrad(parents));
  if (n->requires_grad) {
    n->parents.reserve(parents.size());
    for (const Var& p : parents) n->parents.push_back(AutogradOps::node(p));
  }
  return n;
}

}  // namespace internal

Var::Var(Matrix value, bool requires_grad)
    : node_(NewNode(std::move(value), requires_grad)) {}

const Matrix& Var::value() const {
  GRGAD_CHECK(defined());
  return node_->value;
}

Matrix& Var::mutable_value() {
  GRGAD_CHECK(defined());
  return node_->value;
}

const Matrix& Var::grad() const {
  GRGAD_CHECK(defined());
  static const Matrix kEmpty;
  return node_->has_grad() ? node_->grad : kEmpty;
}

bool Var::requires_grad() const { return defined() && node_->requires_grad; }

void Var::ZeroGrad() {
  GRGAD_CHECK(defined());
  if (TrainingFastPathEnabled() && !node_->grad.empty()) {
    // Keep the buffer; the next accumulation overwrites it in place. No
    // zero fill is needed — grad() already reports empty via grad_zero.
    node_->grad_zero = true;
  } else {
    node_->grad = Matrix();
    node_->grad_zero = false;
  }
}

double Var::item() const {
  GRGAD_CHECK(defined());
  GRGAD_CHECK(node_->value.rows() == 1 && node_->value.cols() == 1);
  return node_->value(0, 0);
}

void Var::Backward() const {
  GRGAD_CHECK(defined());
  GRGAD_CHECK(node_->value.rows() == 1 && node_->value.cols() == 1);
  // Collect all reachable ancestors (iterative DFS to bound stack depth).
  std::vector<VarNode*> order;
  std::unordered_set<VarNode*> seen;
  std::vector<VarNode*> stack = {node_.get()};
  seen.insert(node_.get());
  while (!stack.empty()) {
    VarNode* n = stack.back();
    stack.pop_back();
    order.push_back(n);
    for (const auto& p : n->parents) {
      if (seen.insert(p.get()).second) stack.push_back(p.get());
    }
  }
  // Reverse creation order is a valid topological order: an op node is
  // always created after all of its parents.
  std::sort(order.begin(), order.end(),
            [](const VarNode* a, const VarNode* b) { return a->id > b->id; });
  Matrix seed = AcquireUninit(1, 1);
  seed(0, 0) = 1.0;
  node_->AccumulateGrad(std::move(seed));
  ReleaseScratch(std::move(seed));
  for (VarNode* n : order) {
    if (!n->requires_grad || !n->backward_fn || !n->has_grad()) continue;
    n->backward_fn(n->grad);
  }
}

namespace {

/// Accumulates `g` into `p`'s node when it participates in the tape.
void Acc(const std::shared_ptr<VarNode>& p, const Matrix& g) {
  if (p->requires_grad) p->AccumulateGrad(g);
}

}  // namespace

Var MatMul(const Var& a, const Var& b) {
  Matrix out = AcquireUninit(a.rows(), b.cols());
  MatMulInto(a.value(), b.value(), &out);
  auto an = AutogradOps::node(a);
  auto bn = AutogradOps::node(b);
  return MakeOpNode(std::move(out), {a, b}, [an, bn](const Matrix& g) {
    // d/dA (A B) = g B^T ; d/dB = A^T g.
    if (an->requires_grad) {
      Matrix ga = AcquireUninit(an->value.rows(), an->value.cols());
      MatMulTransposeBInto(g, bn->value, &ga);
      an->AccumulateGrad(std::move(ga));
      ReleaseScratch(std::move(ga));
    }
    if (bn->requires_grad) {
      Matrix gb = AcquireUninit(bn->value.rows(), bn->value.cols());
      MatMulTransposeAInto(an->value, g, &gb);
      bn->AccumulateGrad(std::move(gb));
      ReleaseScratch(std::move(gb));
    }
  });
}

Var Spmm(std::shared_ptr<const SparseMatrix> s, const Var& x) {
  GRGAD_CHECK(s != nullptr);
  Matrix out = AcquireUninit(s->rows(), x.cols());
  s->SpmmInto(x.value(), &out);
  auto xn = AutogradOps::node(x);
  return MakeOpNode(std::move(out), {x}, [s, xn](const Matrix& g) {
    // d/dX (S X) = S^T g.
    if (!xn->requires_grad) return;
    Matrix gx = AcquireUninit(s->cols(), g.cols());
    s->SpmmTransposeThisInto(g, &gx);
    xn->AccumulateGrad(std::move(gx));
    ReleaseScratch(std::move(gx));
  });
}

Var Add(const Var& a, const Var& b) {
  Matrix out = AcquireUninit(a.rows(), a.cols());
  AddInto(a.value(), b.value(), &out);
  auto an = AutogradOps::node(a);
  auto bn = AutogradOps::node(b);
  return MakeOpNode(std::move(out), {a, b}, [an, bn](const Matrix& g) {
    Acc(an, g);
    Acc(bn, g);
  });
}

Var Sub(const Var& a, const Var& b) {
  Matrix out = AcquireUninit(a.rows(), a.cols());
  SubInto(a.value(), b.value(), &out);
  auto an = AutogradOps::node(a);
  auto bn = AutogradOps::node(b);
  return MakeOpNode(std::move(out), {a, b}, [an, bn](const Matrix& g) {
    Acc(an, g);
    if (bn->requires_grad) {
      Matrix ng = AcquireUninit(g.rows(), g.cols());
      ScaledInto(g, -1.0, &ng);
      bn->AccumulateGrad(std::move(ng));
      ReleaseScratch(std::move(ng));
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  Matrix out = AcquireUninit(a.rows(), a.cols());
  HadamardInto(a.value(), b.value(), &out);
  auto an = AutogradOps::node(a);
  auto bn = AutogradOps::node(b);
  return MakeOpNode(std::move(out), {a, b}, [an, bn](const Matrix& g) {
    if (an->requires_grad) {
      Matrix ga = AcquireUninit(g.rows(), g.cols());
      HadamardInto(g, bn->value, &ga);
      an->AccumulateGrad(std::move(ga));
      ReleaseScratch(std::move(ga));
    }
    if (bn->requires_grad) {
      Matrix gb = AcquireUninit(g.rows(), g.cols());
      HadamardInto(g, an->value, &gb);
      bn->AccumulateGrad(std::move(gb));
      ReleaseScratch(std::move(gb));
    }
  });
}

Var Scale(const Var& a, double s) {
  Matrix out = AcquireUninit(a.rows(), a.cols());
  ScaledInto(a.value(), s, &out);
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an, s](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix ga = AcquireUninit(g.rows(), g.cols());
    ScaledInto(g, s, &ga);
    an->AccumulateGrad(std::move(ga));
    ReleaseScratch(std::move(ga));
  });
}

Var AddScalar(const Var& a, double s) {
  Matrix out = AcquireUninit(a.rows(), a.cols());
  a.value().MapToFn(&out, [s](double v) { return v + s; });
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a},
                    [an](const Matrix& g) { Acc(an, g); });
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  GRGAD_CHECK_EQ(bias.rows(), 1u);
  GRGAD_CHECK_EQ(a.cols(), bias.cols());
  Matrix out = AcquireCopyOf(a.value());
  const double* brow = bias.value().RowPtr(0);
  for (size_t i = 0; i < out.rows(); ++i) {
    double* row = out.RowPtr(i);
    for (size_t j = 0; j < out.cols(); ++j) row[j] += brow[j];
  }
  auto an = AutogradOps::node(a);
  auto bn = AutogradOps::node(bias);
  return MakeOpNode(std::move(out), {a, bias}, [an, bn](const Matrix& g) {
    Acc(an, g);
    if (bn->requires_grad) {
      Matrix bg = AcquireZeroed(1, g.cols());
      for (size_t i = 0; i < g.rows(); ++i) {
        const double* row = g.RowPtr(i);
        for (size_t j = 0; j < g.cols(); ++j) bg(0, j) += row[j];
      }
      bn->AccumulateGrad(std::move(bg));
      ReleaseScratch(std::move(bg));
    }
  });
}

// The elementwise ops below use Matrix::MapToFn / flat loops over data()
// rather than the std::function Map: these run every epoch over n_nodes x
// hidden activations and an indirect call per element is measurable.
// Sigmoid/Tanh/Exp backward closures read the op output straight off their
// own node (raw self pointer; the closure is owned by the node and only
// runs while it is alive) instead of capturing a per-epoch copy.

Var Relu(const Var& a) {
  Matrix out = AcquireUninit(a.rows(), a.cols());
  a.value().MapToFn(&out, [](double v) { return v > 0.0 ? v : 0.0; });
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix gg = AcquireCopyOf(g);
    double* __restrict gd = gg.data();
    const double* __restrict xd = an->value.data();
    const size_t size = gg.size();
    for (size_t i = 0; i < size; ++i) {
      if (xd[i] <= 0.0) gd[i] = 0.0;
    }
    an->AccumulateGrad(std::move(gg));
    ReleaseScratch(std::move(gg));
  });
}

Var Sigmoid(const Var& a) {
  Matrix out = AcquireUninit(a.rows(), a.cols());
  a.value().MapToFn(&out,
                    [](double v) { return 1.0 / (1.0 + std::exp(-v)); });
  auto an = AutogradOps::node(a);
  auto n = internal::NewInteriorNode(std::move(out), {a});
  if (n->requires_grad) {
    // s' = s (1 - s), with s read from the node's own value.
    VarNode* self = n.get();
    n->backward_fn = [an, self](const Matrix& g) {
      if (!an->requires_grad) return;
      Matrix gg = AcquireCopyOf(g);
      double* __restrict gd = gg.data();
      const double* __restrict sd = self->value.data();
      const size_t size = gg.size();
      for (size_t i = 0; i < size; ++i) {
        gd[i] *= sd[i] * (1.0 - sd[i]);
      }
      an->AccumulateGrad(std::move(gg));
      ReleaseScratch(std::move(gg));
    };
  }
  return AutogradOps::Wrap(std::move(n));
}

Var Tanh(const Var& a) {
  Matrix out = AcquireUninit(a.rows(), a.cols());
  a.value().MapToFn(&out, [](double v) { return std::tanh(v); });
  auto an = AutogradOps::node(a);
  auto n = internal::NewInteriorNode(std::move(out), {a});
  if (n->requires_grad) {
    VarNode* self = n.get();
    n->backward_fn = [an, self](const Matrix& g) {
      if (!an->requires_grad) return;
      Matrix gg = AcquireCopyOf(g);
      double* __restrict gd = gg.data();
      const double* __restrict td = self->value.data();
      const size_t size = gg.size();
      for (size_t i = 0; i < size; ++i) {
        gd[i] *= 1.0 - td[i] * td[i];
      }
      an->AccumulateGrad(std::move(gg));
      ReleaseScratch(std::move(gg));
    };
  }
  return AutogradOps::Wrap(std::move(n));
}

Var Exp(const Var& a) {
  Matrix out = AcquireUninit(a.rows(), a.cols());
  a.value().MapToFn(&out, [](double v) { return std::exp(v); });
  auto an = AutogradOps::node(a);
  auto n = internal::NewInteriorNode(std::move(out), {a});
  if (n->requires_grad) {
    VarNode* self = n.get();
    n->backward_fn = [an, self](const Matrix& g) {
      if (!an->requires_grad) return;
      Matrix gg = AcquireUninit(g.rows(), g.cols());
      HadamardInto(g, self->value, &gg);
      an->AccumulateGrad(std::move(gg));
      ReleaseScratch(std::move(gg));
    };
  }
  return AutogradOps::Wrap(std::move(n));
}

Var Log(const Var& a, double eps) {
  Matrix out = AcquireUninit(a.rows(), a.cols());
  a.value().MapToFn(&out, [eps](double v) { return std::log(v + eps); });
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an, eps](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix gg = AcquireCopyOf(g);
    double* __restrict gd = gg.data();
    const double* __restrict xd = an->value.data();
    const size_t size = gg.size();
    for (size_t i = 0; i < size; ++i) gd[i] /= (xd[i] + eps);
    an->AccumulateGrad(std::move(gg));
    ReleaseScratch(std::move(gg));
  });
}

Var Transpose(const Var& a) {
  Matrix out = AcquireUninit(a.cols(), a.rows());
  TransposeInto(a.value(), &out);
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix gg = AcquireUninit(g.cols(), g.rows());
    TransposeInto(g, &gg);
    an->AccumulateGrad(std::move(gg));
    ReleaseScratch(std::move(gg));
  });
}

Var SumAll(const Var& a) {
  Matrix out = AcquireUninit(1, 1);
  out(0, 0) = a.value().Sum();
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix gg = AcquireUninit(an->value.rows(), an->value.cols());
    gg.Fill(g(0, 0));
    an->AccumulateGrad(std::move(gg));
    ReleaseScratch(std::move(gg));
  });
}

Var MeanAll(const Var& a) {
  const double n = static_cast<double>(a.value().size());
  GRGAD_CHECK_GT(n, 0.0);
  return Scale(SumAll(a), 1.0 / n);
}

Var SumSquares(const Var& a) {
  Matrix out = AcquireUninit(1, 1);
  double s = 0.0;
  const Matrix& x = a.value();
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.RowPtr(i);
    for (size_t j = 0; j < x.cols(); ++j) s += row[j] * row[j];
  }
  out(0, 0) = s;
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix gg = AcquireUninit(an->value.rows(), an->value.cols());
    ScaledInto(an->value, 2.0 * g(0, 0), &gg);
    an->AccumulateGrad(std::move(gg));
    ReleaseScratch(std::move(gg));
  });
}

Var MseLoss(const Var& pred, const Matrix& target) {
  GRGAD_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols());
  const Matrix& p = pred.value();
  double s = 0.0;
  for (size_t i = 0; i < p.rows(); ++i) {
    const double* prow = p.RowPtr(i);
    const double* trow = target.RowPtr(i);
    for (size_t j = 0; j < p.cols(); ++j) {
      const double d = prow[j] - trow[j];
      s += d * d;
    }
  }
  const double n = static_cast<double>(p.size());
  Matrix out = AcquireUninit(1, 1);
  out(0, 0) = s / n;
  auto pn = AutogradOps::node(pred);
  // `target` captured by pointer: callers keep it alive through Backward()
  // (see the header), which keeps the epoch loop free of per-epoch copies.
  const Matrix* tp = &target;
  return MakeOpNode(std::move(out), {pred}, [pn, tp, n](const Matrix& g) {
    if (!pn->requires_grad) return;
    Matrix gg = AcquireCopyOf(pn->value);
    gg.SubInPlace(*tp);
    gg *= 2.0 * g(0, 0) / n;
    pn->AccumulateGrad(std::move(gg));
    ReleaseScratch(std::move(gg));
  });
}

Var WeightedMseLoss(const Var& pred, const Matrix& target,
                    const Matrix& weights) {
  GRGAD_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols());
  GRGAD_CHECK(pred.rows() == weights.rows() && pred.cols() == weights.cols());
  const Matrix& p = pred.value();
  double s = 0.0;
  for (size_t i = 0; i < p.rows(); ++i) {
    const double* prow = p.RowPtr(i);
    const double* trow = target.RowPtr(i);
    const double* wrow = weights.RowPtr(i);
    for (size_t j = 0; j < p.cols(); ++j) {
      const double d = prow[j] - trow[j];
      s += wrow[j] * d * d;
    }
  }
  const double n = static_cast<double>(p.size());
  Matrix out = AcquireUninit(1, 1);
  out(0, 0) = s / n;
  auto pn = AutogradOps::node(pred);
  const Matrix* tp = &target;   // Lifetime contract in the header.
  const Matrix* wp = &weights;
  return MakeOpNode(std::move(out), {pred},
                    [pn, tp, wp, n](const Matrix& g) {
                      if (!pn->requires_grad) return;
                      Matrix gg = AcquireCopyOf(pn->value);
                      gg.SubInPlace(*tp);
                      gg.MulInPlace(*wp);
                      gg *= 2.0 * g(0, 0) / n;
                      pn->AccumulateGrad(std::move(gg));
                      ReleaseScratch(std::move(gg));
                    });
}

Var GatherRows(const Var& a, std::vector<int> rows) {
  Matrix out = AcquireUninit(rows.size(), a.cols());
  a.value().GatherRowsInto(rows, &out);
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a},
                    [an, rows = std::move(rows)](const Matrix& g) {
                      if (!an->requires_grad) return;
                      Matrix gg =
                          AcquireZeroed(an->value.rows(), an->value.cols());
                      for (size_t i = 0; i < rows.size(); ++i) {
                        double* dst = gg.RowPtr(rows[i]);
                        const double* src = g.RowPtr(i);
                        for (size_t j = 0; j < g.cols(); ++j) dst[j] += src[j];
                      }
                      an->AccumulateGrad(std::move(gg));
                      ReleaseScratch(std::move(gg));
                    });
}

Var MeanRows(const Var& a) {
  GRGAD_CHECK_GT(a.rows(), 0u);
  const size_t r = a.rows(), c = a.cols();
  Matrix out = AcquireZeroed(1, c);
  for (size_t i = 0; i < r; ++i) {
    const double* row = a.value().RowPtr(i);
    for (size_t j = 0; j < c; ++j) out(0, j) += row[j];
  }
  out *= 1.0 / static_cast<double>(r);
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an, r, c](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix gg = AcquireUninit(r, c);
    const double inv = 1.0 / static_cast<double>(r);
    for (size_t i = 0; i < r; ++i) {
      double* row = gg.RowPtr(i);
      for (size_t j = 0; j < c; ++j) row[j] = g(0, j) * inv;
    }
    an->AccumulateGrad(std::move(gg));
    ReleaseScratch(std::move(gg));
  });
}

Var StackRows(const std::vector<Var>& rows) {
  GRGAD_CHECK(!rows.empty());
  const size_t c = rows[0].cols();
  Matrix out = AcquireUninit(rows.size(), c);
  for (size_t i = 0; i < rows.size(); ++i) {
    GRGAD_CHECK_EQ(rows[i].rows(), 1u);
    GRGAD_CHECK_EQ(rows[i].cols(), c);
    std::memcpy(out.RowPtr(i), rows[i].value().RowPtr(0), c * sizeof(double));
  }
  std::vector<std::shared_ptr<VarNode>> nodes;
  nodes.reserve(rows.size());
  for (const Var& v : rows) nodes.push_back(AutogradOps::node(v));
  return MakeOpNode(std::move(out), rows,
                    [nodes = std::move(nodes), c](const Matrix& g) {
                      for (size_t i = 0; i < nodes.size(); ++i) {
                        if (!nodes[i]->requires_grad) continue;
                        Matrix gi = AcquireUninit(1, c);
                        std::memcpy(gi.RowPtr(0), g.RowPtr(i),
                                    c * sizeof(double));
                        nodes[i]->AccumulateGrad(std::move(gi));
                        ReleaseScratch(std::move(gi));
                      }
                    });
}

Var ConcatCols(const Var& a, const Var& b) {
  GRGAD_CHECK_EQ(a.rows(), b.rows());
  const size_t r = a.rows(), ca = a.cols(), cb = b.cols();
  Matrix out = AcquireUninit(r, ca + cb);
  for (size_t i = 0; i < r; ++i) {
    std::memcpy(out.RowPtr(i), a.value().RowPtr(i), ca * sizeof(double));
    std::memcpy(out.RowPtr(i) + ca, b.value().RowPtr(i), cb * sizeof(double));
  }
  auto an = AutogradOps::node(a);
  auto bn = AutogradOps::node(b);
  return MakeOpNode(std::move(out), {a, b},
                    [an, bn, r, ca, cb](const Matrix& g) {
                      if (an->requires_grad) {
                        Matrix ga = AcquireUninit(r, ca);
                        for (size_t i = 0; i < r; ++i) {
                          std::memcpy(ga.RowPtr(i), g.RowPtr(i),
                                      ca * sizeof(double));
                        }
                        an->AccumulateGrad(std::move(ga));
                        ReleaseScratch(std::move(ga));
                      }
                      if (bn->requires_grad) {
                        Matrix gb = AcquireUninit(r, cb);
                        for (size_t i = 0; i < r; ++i) {
                          std::memcpy(gb.RowPtr(i), g.RowPtr(i) + ca,
                                      cb * sizeof(double));
                        }
                        bn->AccumulateGrad(std::move(gb));
                        ReleaseScratch(std::move(gb));
                      }
                    });
}

Var Reshape(const Var& a, size_t r, size_t c) {
  GRGAD_CHECK_EQ(a.value().size(), r * c);
  Matrix out = AcquireUninit(r, c);
  std::memcpy(out.data(), a.value().data(),
              a.value().size() * sizeof(double));
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix gg = AcquireUninit(an->value.rows(), an->value.cols());
    std::memcpy(gg.data(), g.data(), g.size() * sizeof(double));
    an->AccumulateGrad(std::move(gg));
    ReleaseScratch(std::move(gg));
  });
}

namespace {

using PairList = std::vector<std::pair<int, int>>;

Var PairInnerProductImpl(const Var& z,
                         std::shared_ptr<const PairList> pairs) {
  const PairList& pl = *pairs;
  const Matrix& zv = z.value();
  Matrix out = AcquireUninit(pl.size(), 1);
  for (size_t p = 0; p < pl.size(); ++p) {
    const auto [i, j] = pl[p];
    GRGAD_CHECK(i >= 0 && static_cast<size_t>(i) < zv.rows());
    GRGAD_CHECK(j >= 0 && static_cast<size_t>(j) < zv.rows());
    const double* zi = zv.RowPtr(i);
    const double* zj = zv.RowPtr(j);
    double s = 0.0;
    for (size_t k = 0; k < zv.cols(); ++k) s += zi[k] * zj[k];
    out(p, 0) = s;
  }
  auto zn = AutogradOps::node(z);
  return MakeOpNode(std::move(out), {z},
                    [zn, pairs = std::move(pairs)](const Matrix& g) {
                      if (!zn->requires_grad) return;
                      const Matrix& zv = zn->value;
                      Matrix gg = AcquireZeroed(zv.rows(), zv.cols());
                      const PairList& pl = *pairs;
                      for (size_t p = 0; p < pl.size(); ++p) {
                        const auto [i, j] = pl[p];
                        const double gp = g(p, 0);
                        const double* zi = zv.RowPtr(i);
                        const double* zj = zv.RowPtr(j);
                        double* gi = gg.RowPtr(i);
                        double* gj = gg.RowPtr(j);
                        for (size_t k = 0; k < zv.cols(); ++k) {
                          gi[k] += gp * zj[k];
                          gj[k] += gp * zi[k];
                        }
                      }
                      zn->AccumulateGrad(std::move(gg));
                      ReleaseScratch(std::move(gg));
                    });
}

}  // namespace

Var PairInnerProduct(const Var& z, std::vector<std::pair<int, int>> pairs) {
  return PairInnerProductImpl(
      z, std::make_shared<const PairList>(std::move(pairs)));
}

Var PairInnerProduct(const Var& z,
                     std::shared_ptr<const PairList> pairs) {
  GRGAD_CHECK(pairs != nullptr);
  return PairInnerProductImpl(z, std::move(pairs));
}

Var DiagMean(const Var& a) {
  GRGAD_CHECK_EQ(a.rows(), a.cols());
  const size_t n = a.rows();
  GRGAD_CHECK_GT(n, 0u);
  Matrix out = AcquireUninit(1, 1);
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a.value()(i, i);
  out(0, 0) = s / static_cast<double>(n);
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an, n](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix gg = AcquireZeroed(n, n);
    const double gv = g(0, 0) / static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) gg(i, i) = gv;
    an->AccumulateGrad(std::move(gg));
    ReleaseScratch(std::move(gg));
  });
}

Var MaskedLogSumExp(const Var& a, const std::vector<uint8_t>& mask) {
  const Matrix& x = a.value();
  GRGAD_CHECK_EQ(mask.size(), x.size());
  double max_v = -HUGE_VAL;
  for (size_t i = 0; i < x.size(); ++i) {
    if (mask[i]) max_v = std::max(max_v, x.data()[i]);
  }
  GRGAD_CHECK(max_v > -HUGE_VAL);  // At least one masked-in entry.
  double sum_e = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (mask[i]) sum_e += std::exp(x.data()[i] - max_v);
  }
  Matrix out = AcquireUninit(1, 1);
  out(0, 0) = max_v + std::log(sum_e);
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a},
                    [an, mask, max_v, sum_e](const Matrix& g) {
                      if (!an->requires_grad) return;
                      const Matrix& x = an->value;
                      Matrix gg = AcquireZeroed(x.rows(), x.cols());
                      const double gv = g(0, 0);
                      for (size_t i = 0; i < x.size(); ++i) {
                        if (!mask[i]) continue;
                        gg.data()[i] =
                            gv * std::exp(x.data()[i] - max_v) / sum_e;
                      }
                      an->AccumulateGrad(std::move(gg));
                      ReleaseScratch(std::move(gg));
                    });
}

}  // namespace grgad
