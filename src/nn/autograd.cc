#include "src/nn/autograd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <unordered_set>

namespace grgad {

namespace internal {

namespace {
std::atomic<uint64_t> g_next_node_id{1};
}  // namespace

void VarNode::AccumulateGrad(const Matrix& g) {
  GRGAD_CHECK(g.rows() == value.rows() && g.cols() == value.cols());
  if (grad.empty()) {
    grad = g;
  } else {
    grad += g;
  }
}

}  // namespace internal

using internal::VarNode;

namespace {

std::shared_ptr<VarNode> NewNode(Matrix value, bool requires_grad) {
  auto n = std::make_shared<VarNode>();
  n->value = std::move(value);
  n->requires_grad = requires_grad;
  n->id = internal::g_next_node_id.fetch_add(1);
  return n;
}

bool AnyRequiresGrad(const std::vector<Var>& parents) {
  for (const Var& p : parents) {
    if (p.requires_grad()) return true;
  }
  return false;
}

/// Creates an interior node with the given parents and backward closure.
/// The closure receives the output gradient and must accumulate into the
/// parent nodes it captured (checking requires_grad itself).
Var MakeOpNode(Matrix value, const std::vector<Var>& parents,
               std::function<void(const Matrix&)> backward_fn) {
  auto n = NewNode(std::move(value), AnyRequiresGrad(parents));
  if (n->requires_grad) {
    n->parents.reserve(parents.size());
    for (const Var& p : parents) n->parents.push_back(AutogradOps::node(p));
    n->backward_fn = std::move(backward_fn);
  }
  return AutogradOps::Wrap(std::move(n));
}

}  // namespace

Var::Var(Matrix value, bool requires_grad)
    : node_(NewNode(std::move(value), requires_grad)) {}

const Matrix& Var::value() const {
  GRGAD_CHECK(defined());
  return node_->value;
}

Matrix& Var::mutable_value() {
  GRGAD_CHECK(defined());
  return node_->value;
}

const Matrix& Var::grad() const {
  GRGAD_CHECK(defined());
  return node_->grad;
}

bool Var::requires_grad() const { return defined() && node_->requires_grad; }

void Var::ZeroGrad() {
  GRGAD_CHECK(defined());
  node_->grad = Matrix();
}

double Var::item() const {
  GRGAD_CHECK(defined());
  GRGAD_CHECK(node_->value.rows() == 1 && node_->value.cols() == 1);
  return node_->value(0, 0);
}

void Var::Backward() const {
  GRGAD_CHECK(defined());
  GRGAD_CHECK(node_->value.rows() == 1 && node_->value.cols() == 1);
  // Collect all reachable ancestors (iterative DFS to bound stack depth).
  std::vector<VarNode*> order;
  std::unordered_set<VarNode*> seen;
  std::vector<VarNode*> stack = {node_.get()};
  seen.insert(node_.get());
  while (!stack.empty()) {
    VarNode* n = stack.back();
    stack.pop_back();
    order.push_back(n);
    for (const auto& p : n->parents) {
      if (seen.insert(p.get()).second) stack.push_back(p.get());
    }
  }
  // Reverse creation order is a valid topological order: an op node is
  // always created after all of its parents.
  std::sort(order.begin(), order.end(),
            [](const VarNode* a, const VarNode* b) { return a->id > b->id; });
  Matrix seed(1, 1);
  seed(0, 0) = 1.0;
  node_->AccumulateGrad(seed);
  for (VarNode* n : order) {
    if (!n->requires_grad || !n->backward_fn || n->grad.empty()) continue;
    n->backward_fn(n->grad);
  }
}

namespace {

/// Accumulates `g` into `p`'s node when it participates in the tape.
void Acc(const std::shared_ptr<VarNode>& p, const Matrix& g) {
  if (p->requires_grad) p->AccumulateGrad(g);
}

}  // namespace

Var MatMul(const Var& a, const Var& b) {
  Matrix out = MatMul(a.value(), b.value());
  auto an = AutogradOps::node(a);
  auto bn = AutogradOps::node(b);
  return MakeOpNode(std::move(out), {a, b}, [an, bn](const Matrix& g) {
    // d/dA (A B) = g B^T ; d/dB = A^T g.
    if (an->requires_grad) an->AccumulateGrad(MatMulTransposeB(g, bn->value));
    if (bn->requires_grad) bn->AccumulateGrad(MatMulTransposeA(an->value, g));
  });
}

Var Spmm(std::shared_ptr<const SparseMatrix> s, const Var& x) {
  GRGAD_CHECK(s != nullptr);
  Matrix out = s->Spmm(x.value());
  auto xn = AutogradOps::node(x);
  return MakeOpNode(std::move(out), {x}, [s, xn](const Matrix& g) {
    // d/dX (S X) = S^T g.
    Acc(xn, s->SpmmTransposeThis(g));
  });
}

Var Add(const Var& a, const Var& b) {
  Matrix out = a.value() + b.value();
  auto an = AutogradOps::node(a);
  auto bn = AutogradOps::node(b);
  return MakeOpNode(std::move(out), {a, b}, [an, bn](const Matrix& g) {
    Acc(an, g);
    Acc(bn, g);
  });
}

Var Sub(const Var& a, const Var& b) {
  Matrix out = a.value() - b.value();
  auto an = AutogradOps::node(a);
  auto bn = AutogradOps::node(b);
  return MakeOpNode(std::move(out), {a, b}, [an, bn](const Matrix& g) {
    Acc(an, g);
    if (bn->requires_grad) {
      Matrix ng = g;
      ng *= -1.0;
      bn->AccumulateGrad(ng);
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  Matrix out = a.value().Hadamard(b.value());
  auto an = AutogradOps::node(a);
  auto bn = AutogradOps::node(b);
  return MakeOpNode(std::move(out), {a, b}, [an, bn](const Matrix& g) {
    if (an->requires_grad) an->AccumulateGrad(g.Hadamard(bn->value));
    if (bn->requires_grad) bn->AccumulateGrad(g.Hadamard(an->value));
  });
}

Var Scale(const Var& a, double s) {
  Matrix out = a.value() * s;
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an, s](const Matrix& g) {
    if (an->requires_grad) an->AccumulateGrad(g * s);
  });
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  GRGAD_CHECK_EQ(bias.rows(), 1u);
  GRGAD_CHECK_EQ(a.cols(), bias.cols());
  Matrix out = a.value();
  const double* brow = bias.value().RowPtr(0);
  for (size_t i = 0; i < out.rows(); ++i) {
    double* row = out.RowPtr(i);
    for (size_t j = 0; j < out.cols(); ++j) row[j] += brow[j];
  }
  auto an = AutogradOps::node(a);
  auto bn = AutogradOps::node(bias);
  return MakeOpNode(std::move(out), {a, bias}, [an, bn](const Matrix& g) {
    Acc(an, g);
    if (bn->requires_grad) {
      Matrix bg(1, g.cols());
      for (size_t i = 0; i < g.rows(); ++i) {
        const double* row = g.RowPtr(i);
        for (size_t j = 0; j < g.cols(); ++j) bg(0, j) += row[j];
      }
      bn->AccumulateGrad(bg);
    }
  });
}

// The elementwise ops below use Matrix::MapFn / flat loops over data()
// rather than the std::function Map: these run every epoch over n_nodes x
// hidden activations and an indirect call per element is measurable.

Var Relu(const Var& a) {
  Matrix out = a.value().MapFn([](double v) { return v > 0.0 ? v : 0.0; });
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix gg = g;
    double* __restrict gd = gg.data();
    const double* __restrict xd = an->value.data();
    const size_t size = gg.size();
    for (size_t i = 0; i < size; ++i) {
      if (xd[i] <= 0.0) gd[i] = 0.0;
    }
    an->AccumulateGrad(gg);
  });
}

Var Sigmoid(const Var& a) {
  Matrix out =
      a.value().MapFn([](double v) { return 1.0 / (1.0 + std::exp(-v)); });
  auto an = AutogradOps::node(a);
  // Capture the output value for the gradient: s' = s (1 - s).
  Matrix out_copy = out;
  return MakeOpNode(std::move(out), {a},
                    [an, s = std::move(out_copy)](const Matrix& g) {
                      if (!an->requires_grad) return;
                      Matrix gg = g;
                      double* __restrict gd = gg.data();
                      const double* __restrict sd = s.data();
                      const size_t size = gg.size();
                      for (size_t i = 0; i < size; ++i) {
                        gd[i] *= sd[i] * (1.0 - sd[i]);
                      }
                      an->AccumulateGrad(gg);
                    });
}

Var Tanh(const Var& a) {
  Matrix out = a.value().MapFn([](double v) { return std::tanh(v); });
  auto an = AutogradOps::node(a);
  Matrix out_copy = out;
  return MakeOpNode(std::move(out), {a},
                    [an, t = std::move(out_copy)](const Matrix& g) {
                      if (!an->requires_grad) return;
                      Matrix gg = g;
                      double* __restrict gd = gg.data();
                      const double* __restrict td = t.data();
                      const size_t size = gg.size();
                      for (size_t i = 0; i < size; ++i) {
                        gd[i] *= 1.0 - td[i] * td[i];
                      }
                      an->AccumulateGrad(gg);
                    });
}

Var Exp(const Var& a) {
  Matrix out = a.value().MapFn([](double v) { return std::exp(v); });
  auto an = AutogradOps::node(a);
  Matrix out_copy = out;
  return MakeOpNode(std::move(out), {a},
                    [an, e = std::move(out_copy)](const Matrix& g) {
                      if (an->requires_grad) an->AccumulateGrad(g.Hadamard(e));
                    });
}

Var Log(const Var& a, double eps) {
  Matrix out = a.value().MapFn([eps](double v) { return std::log(v + eps); });
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an, eps](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix gg = g;
    double* __restrict gd = gg.data();
    const double* __restrict xd = an->value.data();
    const size_t size = gg.size();
    for (size_t i = 0; i < size; ++i) gd[i] /= (xd[i] + eps);
    an->AccumulateGrad(gg);
  });
}

Var Transpose(const Var& a) {
  Matrix out = a.value().Transpose();
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an](const Matrix& g) {
    if (an->requires_grad) an->AccumulateGrad(g.Transpose());
  });
}

Var SumAll(const Var& a) {
  Matrix out(1, 1);
  out(0, 0) = a.value().Sum();
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix gg(an->value.rows(), an->value.cols(), g(0, 0));
    an->AccumulateGrad(gg);
  });
}

Var MeanAll(const Var& a) {
  const double n = static_cast<double>(a.value().size());
  GRGAD_CHECK_GT(n, 0.0);
  return Scale(SumAll(a), 1.0 / n);
}

Var SumSquares(const Var& a) {
  Matrix out(1, 1);
  double s = 0.0;
  const Matrix& x = a.value();
  for (size_t i = 0; i < x.rows(); ++i) {
    const double* row = x.RowPtr(i);
    for (size_t j = 0; j < x.cols(); ++j) s += row[j] * row[j];
  }
  out(0, 0) = s;
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix gg = an->value * (2.0 * g(0, 0));
    an->AccumulateGrad(gg);
  });
}

Var MseLoss(const Var& pred, const Matrix& target) {
  GRGAD_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols());
  const Matrix& p = pred.value();
  double s = 0.0;
  for (size_t i = 0; i < p.rows(); ++i) {
    const double* prow = p.RowPtr(i);
    const double* trow = target.RowPtr(i);
    for (size_t j = 0; j < p.cols(); ++j) {
      const double d = prow[j] - trow[j];
      s += d * d;
    }
  }
  const double n = static_cast<double>(p.size());
  Matrix out(1, 1);
  out(0, 0) = s / n;
  auto pn = AutogradOps::node(pred);
  return MakeOpNode(std::move(out), {pred}, [pn, target, n](const Matrix& g) {
    if (!pn->requires_grad) return;
    Matrix gg = pn->value;
    gg -= target;
    gg *= 2.0 * g(0, 0) / n;
    pn->AccumulateGrad(gg);
  });
}

Var WeightedMseLoss(const Var& pred, const Matrix& target,
                    const Matrix& weights) {
  GRGAD_CHECK(pred.rows() == target.rows() && pred.cols() == target.cols());
  GRGAD_CHECK(pred.rows() == weights.rows() && pred.cols() == weights.cols());
  const Matrix& p = pred.value();
  double s = 0.0;
  for (size_t i = 0; i < p.rows(); ++i) {
    const double* prow = p.RowPtr(i);
    const double* trow = target.RowPtr(i);
    const double* wrow = weights.RowPtr(i);
    for (size_t j = 0; j < p.cols(); ++j) {
      const double d = prow[j] - trow[j];
      s += wrow[j] * d * d;
    }
  }
  const double n = static_cast<double>(p.size());
  Matrix out(1, 1);
  out(0, 0) = s / n;
  auto pn = AutogradOps::node(pred);
  return MakeOpNode(std::move(out), {pred},
                    [pn, target, weights, n](const Matrix& g) {
                      if (!pn->requires_grad) return;
                      Matrix gg = pn->value;
                      gg -= target;
                      gg = gg.Hadamard(weights);
                      gg *= 2.0 * g(0, 0) / n;
                      pn->AccumulateGrad(gg);
                    });
}

Var GatherRows(const Var& a, std::vector<int> rows) {
  Matrix out = a.value().GatherRows(rows);
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a},
                    [an, rows = std::move(rows)](const Matrix& g) {
                      if (!an->requires_grad) return;
                      Matrix gg(an->value.rows(), an->value.cols());
                      for (size_t i = 0; i < rows.size(); ++i) {
                        double* dst = gg.RowPtr(rows[i]);
                        const double* src = g.RowPtr(i);
                        for (size_t j = 0; j < g.cols(); ++j) dst[j] += src[j];
                      }
                      an->AccumulateGrad(gg);
                    });
}

Var MeanRows(const Var& a) {
  GRGAD_CHECK_GT(a.rows(), 0u);
  const size_t r = a.rows(), c = a.cols();
  Matrix out(1, c);
  for (size_t i = 0; i < r; ++i) {
    const double* row = a.value().RowPtr(i);
    for (size_t j = 0; j < c; ++j) out(0, j) += row[j];
  }
  out *= 1.0 / static_cast<double>(r);
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an, r, c](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix gg(r, c);
    const double inv = 1.0 / static_cast<double>(r);
    for (size_t i = 0; i < r; ++i) {
      double* row = gg.RowPtr(i);
      for (size_t j = 0; j < c; ++j) row[j] = g(0, j) * inv;
    }
    an->AccumulateGrad(gg);
  });
}

Var StackRows(const std::vector<Var>& rows) {
  GRGAD_CHECK(!rows.empty());
  const size_t c = rows[0].cols();
  Matrix out(rows.size(), c);
  for (size_t i = 0; i < rows.size(); ++i) {
    GRGAD_CHECK_EQ(rows[i].rows(), 1u);
    GRGAD_CHECK_EQ(rows[i].cols(), c);
    std::memcpy(out.RowPtr(i), rows[i].value().RowPtr(0), c * sizeof(double));
  }
  std::vector<std::shared_ptr<VarNode>> nodes;
  nodes.reserve(rows.size());
  for (const Var& v : rows) nodes.push_back(AutogradOps::node(v));
  return MakeOpNode(std::move(out), rows,
                    [nodes = std::move(nodes), c](const Matrix& g) {
                      for (size_t i = 0; i < nodes.size(); ++i) {
                        if (!nodes[i]->requires_grad) continue;
                        Matrix gi(1, c);
                        std::memcpy(gi.RowPtr(0), g.RowPtr(i),
                                    c * sizeof(double));
                        nodes[i]->AccumulateGrad(gi);
                      }
                    });
}

Var ConcatCols(const Var& a, const Var& b) {
  GRGAD_CHECK_EQ(a.rows(), b.rows());
  const size_t r = a.rows(), ca = a.cols(), cb = b.cols();
  Matrix out(r, ca + cb);
  for (size_t i = 0; i < r; ++i) {
    std::memcpy(out.RowPtr(i), a.value().RowPtr(i), ca * sizeof(double));
    std::memcpy(out.RowPtr(i) + ca, b.value().RowPtr(i), cb * sizeof(double));
  }
  auto an = AutogradOps::node(a);
  auto bn = AutogradOps::node(b);
  return MakeOpNode(std::move(out), {a, b},
                    [an, bn, r, ca, cb](const Matrix& g) {
                      if (an->requires_grad) {
                        Matrix ga(r, ca);
                        for (size_t i = 0; i < r; ++i) {
                          std::memcpy(ga.RowPtr(i), g.RowPtr(i),
                                      ca * sizeof(double));
                        }
                        an->AccumulateGrad(ga);
                      }
                      if (bn->requires_grad) {
                        Matrix gb(r, cb);
                        for (size_t i = 0; i < r; ++i) {
                          std::memcpy(gb.RowPtr(i), g.RowPtr(i) + ca,
                                      cb * sizeof(double));
                        }
                        bn->AccumulateGrad(gb);
                      }
                    });
}

Var Reshape(const Var& a, size_t r, size_t c) {
  GRGAD_CHECK_EQ(a.value().size(), r * c);
  Matrix out(r, c);
  std::memcpy(out.data(), a.value().data(),
              a.value().size() * sizeof(double));
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix gg(an->value.rows(), an->value.cols());
    std::memcpy(gg.data(), g.data(), g.size() * sizeof(double));
    an->AccumulateGrad(gg);
  });
}

Var PairInnerProduct(const Var& z, std::vector<std::pair<int, int>> pairs) {
  const Matrix& zv = z.value();
  Matrix out(pairs.size(), 1);
  for (size_t p = 0; p < pairs.size(); ++p) {
    const auto [i, j] = pairs[p];
    GRGAD_CHECK(i >= 0 && static_cast<size_t>(i) < zv.rows());
    GRGAD_CHECK(j >= 0 && static_cast<size_t>(j) < zv.rows());
    const double* zi = zv.RowPtr(i);
    const double* zj = zv.RowPtr(j);
    double s = 0.0;
    for (size_t k = 0; k < zv.cols(); ++k) s += zi[k] * zj[k];
    out(p, 0) = s;
  }
  auto zn = AutogradOps::node(z);
  return MakeOpNode(std::move(out), {z},
                    [zn, pairs = std::move(pairs)](const Matrix& g) {
                      if (!zn->requires_grad) return;
                      const Matrix& zv = zn->value;
                      Matrix gg(zv.rows(), zv.cols());
                      for (size_t p = 0; p < pairs.size(); ++p) {
                        const auto [i, j] = pairs[p];
                        const double gp = g(p, 0);
                        const double* zi = zv.RowPtr(i);
                        const double* zj = zv.RowPtr(j);
                        double* gi = gg.RowPtr(i);
                        double* gj = gg.RowPtr(j);
                        for (size_t k = 0; k < zv.cols(); ++k) {
                          gi[k] += gp * zj[k];
                          gj[k] += gp * zi[k];
                        }
                      }
                      zn->AccumulateGrad(gg);
                    });
}

Var DiagMean(const Var& a) {
  GRGAD_CHECK_EQ(a.rows(), a.cols());
  const size_t n = a.rows();
  GRGAD_CHECK_GT(n, 0u);
  Matrix out(1, 1);
  for (size_t i = 0; i < n; ++i) out(0, 0) += a.value()(i, i);
  out(0, 0) /= static_cast<double>(n);
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a}, [an, n](const Matrix& g) {
    if (!an->requires_grad) return;
    Matrix gg(n, n);
    const double gv = g(0, 0) / static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) gg(i, i) = gv;
    an->AccumulateGrad(gg);
  });
}

Var MaskedLogSumExp(const Var& a, const std::vector<uint8_t>& mask) {
  const Matrix& x = a.value();
  GRGAD_CHECK_EQ(mask.size(), x.size());
  double max_v = -HUGE_VAL;
  for (size_t i = 0; i < x.size(); ++i) {
    if (mask[i]) max_v = std::max(max_v, x.data()[i]);
  }
  GRGAD_CHECK(max_v > -HUGE_VAL);  // At least one masked-in entry.
  double sum_e = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (mask[i]) sum_e += std::exp(x.data()[i] - max_v);
  }
  Matrix out(1, 1);
  out(0, 0) = max_v + std::log(sum_e);
  auto an = AutogradOps::node(a);
  return MakeOpNode(std::move(out), {a},
                    [an, mask, max_v, sum_e](const Matrix& g) {
                      if (!an->requires_grad) return;
                      const Matrix& x = an->value;
                      Matrix gg(x.rows(), x.cols());
                      const double gv = g(0, 0);
                      for (size_t i = 0; i < x.size(); ++i) {
                        if (!mask[i]) continue;
                        gg.data()[i] =
                            gv * std::exp(x.data()[i] - max_v) / sum_e;
                      }
                      an->AccumulateGrad(gg);
                    });
}

}  // namespace grgad
