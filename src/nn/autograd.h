// Reverse-mode automatic differentiation over dense matrices.
//
// A Var is a shared handle to a node in a dynamically built tape
// (define-by-run, like PyTorch): every op records its parents and a backward
// closure. Var::Backward() on a 1x1 loss runs the tape in reverse creation
// order and accumulates gradients into every node with requires_grad set.
//
// The op set is exactly what the paper's models need: GCN layers
// (Spmm/MatMul/bias/ReLU), autoencoder losses (Sigmoid/MSE/pairwise inner
// products), TPGCL readout (GatherRows/MeanRows/StackRows), and the MINE
// objective of Eqn. (8) (ConcatCols/Reshape/DiagMean/MaskedLogSumExp). Every
// op's gradient is validated against finite differences in
// tests/nn/autograd_test.cc.
#ifndef GRGAD_NN_AUTOGRAD_H_
#define GRGAD_NN_AUTOGRAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/tensor/sparse.h"

namespace grgad {

namespace internal {

/// Tape node: value, accumulated gradient, and the backward closure.
struct VarNode {
  Matrix value;
  Matrix grad;  // Empty until first accumulation.
  bool requires_grad = false;
  uint64_t id = 0;  // Monotonic creation index; defines topological order.
  std::vector<std::shared_ptr<VarNode>> parents;
  // Invoked with this node's output gradient; accumulates into parents.
  std::function<void(const Matrix&)> backward_fn;

  /// Adds g into grad (allocating on first use). Shape-checked.
  void AccumulateGrad(const Matrix& g);
};

}  // namespace internal

/// Shared handle to an autograd tape node.
///
/// Copying a Var aliases the underlying node (like a torch.Tensor handle).
/// Leaf Vars wrap a constant (requires_grad=false) or a trainable parameter
/// (requires_grad=true); ops produce interior nodes.
class Var {
 public:
  /// Undefined handle.
  Var() = default;

  /// Leaf node wrapping `value`.
  explicit Var(Matrix value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const;
  /// Mutable access to the value; used by optimizers for in-place updates.
  Matrix& mutable_value();
  /// Accumulated gradient; empty Matrix if none was propagated.
  const Matrix& grad() const;
  bool requires_grad() const;

  size_t rows() const { return value().rows(); }
  size_t cols() const { return value().cols(); }

  /// Clears the accumulated gradient (deallocates).
  void ZeroGrad();

  /// Runs reverse-mode differentiation from this node, which must hold a
  /// 1x1 value; seeds with d(loss)/d(loss) = 1.
  void Backward() const;

  /// Scalar convenience for 1x1 Vars.
  double item() const;

 private:
  explicit Var(std::shared_ptr<internal::VarNode> node)
      : node_(std::move(node)) {}

  std::shared_ptr<internal::VarNode> node_;

  friend class AutogradOps;
};

/// Grants the op free-functions access to Var's node (implementation detail).
class AutogradOps {
 public:
  static std::shared_ptr<internal::VarNode> node(const Var& v) {
    return v.node_;
  }
  static Var Wrap(std::shared_ptr<internal::VarNode> n) {
    return Var(std::move(n));
  }
};

// ---------------------------------------------------------------------------
// Ops. All shape preconditions are CHECKed.
// ---------------------------------------------------------------------------

/// a(m x k) * b(k x n).
Var MatMul(const Var& a, const Var& b);

/// Constant sparse s(m x k) * dense x(k x n). `s` must outlive backward; it
/// is held by shared_ptr.
Var Spmm(std::shared_ptr<const SparseMatrix> s, const Var& x);

/// Elementwise a + b (same shape).
Var Add(const Var& a, const Var& b);
/// Elementwise a - b (same shape).
Var Sub(const Var& a, const Var& b);
/// Elementwise a * b (same shape).
Var Mul(const Var& a, const Var& b);
/// a * scalar.
Var Scale(const Var& a, double s);
/// Adds the 1 x cols row vector `bias` to every row of a.
Var AddRowBroadcast(const Var& a, const Var& bias);

/// Elementwise max(0, x).
Var Relu(const Var& a);
/// Elementwise logistic sigmoid.
Var Sigmoid(const Var& a);
/// Elementwise tanh.
Var Tanh(const Var& a);
/// Elementwise exp.
Var Exp(const Var& a);
/// Elementwise log(x + eps); eps guards against log(0).
Var Log(const Var& a, double eps = 1e-12);

/// Transposed copy.
Var Transpose(const Var& a);

/// Sum of all entries -> 1x1.
Var SumAll(const Var& a);
/// Mean of all entries -> 1x1.
Var MeanAll(const Var& a);
/// Sum of squared entries -> 1x1 (L2 penalty building block).
Var SumSquares(const Var& a);

/// Mean squared error against a constant target -> 1x1.
Var MseLoss(const Var& pred, const Matrix& target);
/// Per-entry weighted MSE against a constant target -> 1x1:
/// mean(w .* (pred - target)^2). `weights` must match pred's shape.
Var WeightedMseLoss(const Var& pred, const Matrix& target,
                    const Matrix& weights);

/// Gathers rows (duplicates allowed); backward scatter-adds.
Var GatherRows(const Var& a, std::vector<int> rows);

/// Column-wise mean over rows -> 1 x cols (graph readout).
Var MeanRows(const Var& a);

/// Stacks m Vars of shape 1 x d into an m x d matrix.
Var StackRows(const std::vector<Var>& rows);

/// Horizontal concatenation [a | b]; row counts must match.
Var ConcatCols(const Var& a, const Var& b);

/// Reinterprets the (row-major) data as r x c; element count must match.
Var Reshape(const Var& a, size_t r, size_t c);

/// out_p = dot(z[i_p], z[j_p]) for each pair -> p x 1. The inner-product
/// structure decoder of GAE, evaluated only on sampled pairs.
Var PairInnerProduct(const Var& z, std::vector<std::pair<int, int>> pairs);

/// Mean of the main diagonal of a square matrix -> 1x1.
Var DiagMean(const Var& a);

/// log(sum over entries with mask != 0 of exp(a_ij)) -> 1x1, computed
/// stably. At least one entry must be masked in.
Var MaskedLogSumExp(const Var& a, const std::vector<uint8_t>& mask);

}  // namespace grgad

#endif  // GRGAD_NN_AUTOGRAD_H_
