// Reverse-mode automatic differentiation over dense matrices.
//
// A Var is a shared handle to a node in a dynamically built tape
// (define-by-run, like PyTorch): every op records its parents and a backward
// closure. Var::Backward() on a 1x1 loss runs the tape in reverse creation
// order and accumulates gradients into every node with requires_grad set.
//
// The op set is exactly what the paper's models need: GCN layers
// (Spmm/MatMul/bias/ReLU), autoencoder losses (Sigmoid/MSE/pairwise inner
// products), TPGCL readout (GatherRows/MeanRows/StackRows), and the MINE
// objective of Eqn. (8) (ConcatCols/Reshape/DiagMean/MaskedLogSumExp). Every
// op's gradient is validated against finite differences in
// tests/nn/autograd_test.cc.
#ifndef GRGAD_NN_AUTOGRAD_H_
#define GRGAD_NN_AUTOGRAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/tensor/sparse.h"

namespace grgad {

class MatrixArena;
class Var;

namespace internal {

/// Tape node: value, accumulated gradient, and the backward closure.
///
/// Nodes created while an ArenaScope is installed remember the arena and
/// return their value and gradient buffers to it on destruction (graph
/// teardown at the end of an epoch), which is what makes steady-state
/// training epochs heap-allocation-free. Such nodes must not outlive the
/// arena; training loops guarantee this by declaring the arena before any
/// Vars.
struct VarNode {
  Matrix value;
  Matrix grad;  // Empty until first accumulation.
  bool requires_grad = false;
  // ZeroGrad with the fast path on keeps the gradient buffer and sets this
  // instead of freeing; the next AccumulateGrad overwrites in place.
  bool grad_zero = false;
  uint64_t id = 0;  // Monotonic creation index; defines topological order.
  MatrixArena* arena = nullptr;  // Recycles value/grad on teardown when set.
  std::vector<std::shared_ptr<VarNode>> parents;
  // Invoked with this node's output gradient; accumulates into parents.
  std::function<void(const Matrix&)> backward_fn;

  ~VarNode();

  /// True when a gradient has been accumulated since the last ZeroGrad.
  bool has_grad() const { return !grad.empty() && !grad_zero; }

  /// Adds g into grad: first accumulation copies (arena-backed when the
  /// node has an arena), later ones run the in-place AXPY kernel.
  /// Shape-checked.
  void AccumulateGrad(const Matrix& g);
  /// Move form for single-use scratch: a first accumulation adopts g's
  /// buffer outright (no copy); otherwise falls back to the const-ref path
  /// and leaves g intact. Callers release g afterwards either way — an
  /// adopted (moved-from) matrix is empty and the release is a no-op.
  void AccumulateGrad(Matrix&& g);
};

/// Creates an interior (op-output) node: requires_grad is the OR over
/// parents, and parent links are recorded only when it is set. The caller
/// attaches backward_fn afterwards (this is what lets closures capture the
/// node's own pointer, e.g. to read the op output in backward without
/// copying it). Exposed so layers.cc can define fused ops.
std::shared_ptr<VarNode> NewInteriorNode(Matrix value,
                                         const std::vector<Var>& parents);

}  // namespace internal

/// Shared handle to an autograd tape node.
///
/// Copying a Var aliases the underlying node (like a torch.Tensor handle).
/// Leaf Vars wrap a constant (requires_grad=false) or a trainable parameter
/// (requires_grad=true); ops produce interior nodes.
class Var {
 public:
  /// Undefined handle.
  Var() = default;

  /// Leaf node wrapping `value`.
  explicit Var(Matrix value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const;
  /// Mutable access to the value; used by optimizers for in-place updates.
  Matrix& mutable_value();
  /// Accumulated gradient; a reference to an empty Matrix if none was
  /// propagated since the last ZeroGrad (the cleared buffer itself may be
  /// retained internally for reuse — see ZeroGrad).
  const Matrix& grad() const;
  bool requires_grad() const;

  size_t rows() const { return value().rows(); }
  size_t cols() const { return value().cols(); }

  /// Clears the accumulated gradient. With the training fast path on (the
  /// default) the buffer is kept and marked cleared so the next epoch's
  /// first accumulation overwrites it in place; otherwise it is freed, as
  /// the seed did. grad() reports empty either way.
  void ZeroGrad();

  /// Runs reverse-mode differentiation from this node, which must hold a
  /// 1x1 value; seeds with d(loss)/d(loss) = 1.
  void Backward() const;

  /// Scalar convenience for 1x1 Vars.
  double item() const;

 private:
  explicit Var(std::shared_ptr<internal::VarNode> node)
      : node_(std::move(node)) {}

  std::shared_ptr<internal::VarNode> node_;

  friend class AutogradOps;
};

/// Grants the op free-functions access to Var's node (implementation detail).
class AutogradOps {
 public:
  static std::shared_ptr<internal::VarNode> node(const Var& v) {
    return v.node_;
  }
  static Var Wrap(std::shared_ptr<internal::VarNode> n) {
    return Var(std::move(n));
  }
};

// ---------------------------------------------------------------------------
// Ops. All shape preconditions are CHECKed.
// ---------------------------------------------------------------------------

/// a(m x k) * b(k x n).
Var MatMul(const Var& a, const Var& b);

/// Constant sparse s(m x k) * dense x(k x n). `s` must outlive backward; it
/// is held by shared_ptr.
Var Spmm(std::shared_ptr<const SparseMatrix> s, const Var& x);

/// Elementwise a + b (same shape).
Var Add(const Var& a, const Var& b);
/// Elementwise a - b (same shape).
Var Sub(const Var& a, const Var& b);
/// Elementwise a * b (same shape).
Var Mul(const Var& a, const Var& b);
/// a * scalar.
Var Scale(const Var& a, double s);
/// a + scalar, elementwise (gradient passes through unchanged).
Var AddScalar(const Var& a, double s);
/// Adds the 1 x cols row vector `bias` to every row of a.
Var AddRowBroadcast(const Var& a, const Var& bias);

/// Elementwise max(0, x).
Var Relu(const Var& a);
/// Elementwise logistic sigmoid.
Var Sigmoid(const Var& a);
/// Elementwise tanh.
Var Tanh(const Var& a);
/// Elementwise exp.
Var Exp(const Var& a);
/// Elementwise log(x + eps); eps guards against log(0).
Var Log(const Var& a, double eps = 1e-12);

/// Transposed copy.
Var Transpose(const Var& a);

/// Sum of all entries -> 1x1.
Var SumAll(const Var& a);
/// Mean of all entries -> 1x1.
Var MeanAll(const Var& a);
/// Sum of squared entries -> 1x1 (L2 penalty building block).
Var SumSquares(const Var& a);

/// Mean squared error against a constant target -> 1x1. `target` is
/// captured by reference and must outlive Backward() (training loops hold
/// their targets across all epochs; capturing a copy per epoch was the
/// single largest non-arena allocation of the epoch loop). The deleted
/// rvalue overload rejects temporaries at compile time.
Var MseLoss(const Var& pred, const Matrix& target);
Var MseLoss(const Var& pred, Matrix&& target) = delete;
/// Per-entry weighted MSE against a constant target -> 1x1:
/// mean(w .* (pred - target)^2). `weights` must match pred's shape.
/// `target` and `weights` must outlive Backward() (see MseLoss;
/// temporaries are rejected at compile time).
Var WeightedMseLoss(const Var& pred, const Matrix& target,
                    const Matrix& weights);
Var WeightedMseLoss(const Var& pred, Matrix&& target,
                    const Matrix& weights) = delete;
Var WeightedMseLoss(const Var& pred, const Matrix& target,
                    Matrix&& weights) = delete;
Var WeightedMseLoss(const Var& pred, Matrix&& target, Matrix&& weights) =
    delete;

/// Gathers rows (duplicates allowed); backward scatter-adds.
Var GatherRows(const Var& a, std::vector<int> rows);

/// Column-wise mean over rows -> 1 x cols (graph readout).
Var MeanRows(const Var& a);

/// Stacks m Vars of shape 1 x d into an m x d matrix.
Var StackRows(const std::vector<Var>& rows);

/// Horizontal concatenation [a | b]; row counts must match.
Var ConcatCols(const Var& a, const Var& b);

/// Reinterprets the (row-major) data as r x c; element count must match.
Var Reshape(const Var& a, size_t r, size_t c);

/// out_p = dot(z[i_p], z[j_p]) for each pair -> p x 1. The inner-product
/// structure decoder of GAE, evaluated only on sampled pairs.
Var PairInnerProduct(const Var& z, std::vector<std::pair<int, int>> pairs);
/// Shared-ownership overload: epoch loops that reuse one fixed pair list
/// should build the shared_ptr once — the by-value overload copies the
/// list into the tape on every call.
Var PairInnerProduct(
    const Var& z,
    std::shared_ptr<const std::vector<std::pair<int, int>>> pairs);

/// Mean of the main diagonal of a square matrix -> 1x1.
Var DiagMean(const Var& a);

/// log(sum over entries with mask != 0 of exp(a_ij)) -> 1x1, computed
/// stably. At least one entry must be masked in.
Var MaskedLogSumExp(const Var& a, const std::vector<uint8_t>& mask);

}  // namespace grgad

#endif  // GRGAD_NN_AUTOGRAD_H_
