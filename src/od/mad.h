// Median-absolute-deviation robust z-score detector (per-dimension robust
// z, aggregated by mean). Cheap, deterministic reference detector.
#ifndef GRGAD_OD_MAD_H_
#define GRGAD_OD_MAD_H_

#include "src/od/detector.h"

namespace grgad {

/// Robust z-score detector: score_i = mean_j |x_ij - med_j| / (1.4826 MAD_j).
class MadDetector : public OutlierDetector {
 public:
  std::vector<double> FitScore(const Matrix& x) override;
  std::string Name() const override { return "mad"; }
};

}  // namespace grgad

#endif  // GRGAD_OD_MAD_H_
