#include "src/od/detector.h"

#include "src/od/ecod.h"
#include "src/od/ensemble.h"
#include "src/od/iforest.h"
#include "src/od/knn.h"
#include "src/od/lof.h"
#include "src/od/mad.h"

namespace grgad {

std::unique_ptr<OutlierDetector> MakeOutlierDetector(DetectorKind kind,
                                                     uint64_t seed) {
  switch (kind) {
    case DetectorKind::kEcod:
      return std::make_unique<Ecod>();
    case DetectorKind::kLof:
      return std::make_unique<Lof>();
    case DetectorKind::kKnn:
      return std::make_unique<KnnDetector>();
    case DetectorKind::kIsolationForest: {
      IsolationForestOptions options;
      options.seed = seed;
      return std::make_unique<IsolationForest>(options);
    }
    case DetectorKind::kMad:
      return std::make_unique<MadDetector>();
    case DetectorKind::kEnsemble:
      return EnsembleDetector::MakeDefault(seed);
  }
  return nullptr;
}

std::vector<DetectorKind> AllDetectorKinds() {
  return {DetectorKind::kEcod, DetectorKind::kLof, DetectorKind::kKnn,
          DetectorKind::kIsolationForest, DetectorKind::kMad,
          DetectorKind::kEnsemble};
}

const char* DetectorKindName(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kEcod: return "ecod";
    case DetectorKind::kLof: return "lof";
    case DetectorKind::kKnn: return "knn";
    case DetectorKind::kIsolationForest: return "iforest";
    case DetectorKind::kMad: return "mad";
    case DetectorKind::kEnsemble: return "ensemble";
  }
  return "?";
}

bool ParseDetectorKind(const std::string& name, DetectorKind* out) {
  for (DetectorKind kind : AllDetectorKinds()) {
    if (name == DetectorKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace grgad
