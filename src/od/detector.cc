#include "src/od/detector.h"

#include "src/od/ecod.h"
#include "src/od/ensemble.h"
#include "src/od/iforest.h"
#include "src/od/knn.h"
#include "src/od/lof.h"
#include "src/od/mad.h"

namespace grgad {

std::unique_ptr<OutlierDetector> MakeOutlierDetector(DetectorKind kind,
                                                     uint64_t seed) {
  switch (kind) {
    case DetectorKind::kEcod:
      return std::make_unique<Ecod>();
    case DetectorKind::kLof:
      return std::make_unique<Lof>();
    case DetectorKind::kKnn:
      return std::make_unique<KnnDetector>();
    case DetectorKind::kIsolationForest: {
      IsolationForestOptions options;
      options.seed = seed;
      return std::make_unique<IsolationForest>(options);
    }
    case DetectorKind::kMad:
      return std::make_unique<MadDetector>();
    case DetectorKind::kEnsemble:
      return EnsembleDetector::MakeDefault(seed);
  }
  return nullptr;
}

bool ParseDetectorKind(const std::string& name, DetectorKind* out) {
  if (name == "ecod") *out = DetectorKind::kEcod;
  else if (name == "lof") *out = DetectorKind::kLof;
  else if (name == "knn") *out = DetectorKind::kKnn;
  else if (name == "iforest") *out = DetectorKind::kIsolationForest;
  else if (name == "mad") *out = DetectorKind::kMad;
  else if (name == "ensemble") *out = DetectorKind::kEnsemble;
  else return false;
  return true;
}

}  // namespace grgad
