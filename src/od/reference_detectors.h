// Frozen seed scoring implementations: the pre-scoring-stage detector and
// GraphSNN loops, serial and unshared, kept verbatim as the "before" side
// of bench/micro_benchmarks' grgad-micro-v3 `scoring` table and as
// correctness oracles in tests/scoring_determinism_test.cc. The kNN and
// LOF references deliberately keep the seed's duplicated PairwiseDistances
// computation (that duplication is part of what the scoring stage rebuild
// removed), and the IsolationForest reference keeps the seed's single
// sequential RNG stream threaded through every tree. Never call these from
// product code. (Companion to src/tensor/reference_kernels.h.)
#ifndef GRGAD_OD_REFERENCE_DETECTORS_H_
#define GRGAD_OD_REFERENCE_DETECTORS_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/od/iforest.h"
#include "src/tensor/matrix.h"

namespace grgad::reference {

/// Serial scalar diff-square pairwise Euclidean distances (upper triangle
/// mirrored); the seed PairwiseDistances.
Matrix PairwiseDistances(const Matrix& x);

/// Seed KNearestNeighbors: computes its own distance matrix, per-row
/// partial_sort with the (distance, id) tie-break.
std::vector<std::vector<int>> KNearestNeighbors(const Matrix& x, int k);

/// Seed KnnDetector::FitScore — one distance sweep inside
/// KNearestNeighbors plus a SECOND full sweep for the k-th distances.
std::vector<double> KnnFitScore(const Matrix& x, int k);

/// Seed Lof::FitScore — one sweep for the distance matrix plus a second
/// inside KNearestNeighbors.
std::vector<double> LofFitScore(const Matrix& x, int k);

/// Seed Ecod::FitScore — serial column loop.
std::vector<double> EcodFitScore(const Matrix& x);

/// Seed IsolationForest::FitScore — one sequential RNG stream through all
/// trees (tree t+1's draws depend on tree t's), serial build and score.
std::vector<double> IsolationForestFitScore(
    const Matrix& x, const IsolationForestOptions& options);

/// Seed GraphSnnEdgeWeights — serial edge loop with per-edge scratch
/// allocations.
std::vector<double> GraphSnnEdgeWeights(const Graph& g, double lambda);

}  // namespace grgad::reference

#endif  // GRGAD_OD_REFERENCE_DETECTORS_H_
