#include "src/od/knn.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/util/check.h"
#include "src/util/fastpath.h"

namespace grgad {

Matrix PairwiseDistances(const Matrix& x) {
  internal::CountDistanceSweep();
  const size_t n = x.rows();
  Matrix d(n, n);
  if (ScoringFastPathEnabled()) {
    // GEMM identity, panel-streamed straight into the output rows. The
    // tiled MatMul accumulates each Gram element over columns in ascending
    // order, so d is bitwise symmetric and the diagonal is exactly zero
    // (and explicitly zeroed by the panel machinery regardless).
    internal::ForEachDistancePanel(
        x, [&d, n](size_t i0, size_t rows, const Matrix& panel) {
          std::memcpy(d.RowPtr(i0), panel.RowPtr(0),
                      rows * n * sizeof(double));
        });
    return d;
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double* a = x.RowPtr(i);
      const double* b = x.RowPtr(j);
      double s = 0.0;
      for (size_t k = 0; k < x.cols(); ++k) {
        const double diff = a[k] - b[k];
        s += diff * diff;
      }
      const double dist = std::sqrt(s);
      d(i, j) = dist;
      d(j, i) = dist;
    }
  }
  return d;
}

namespace {

std::vector<std::vector<int>> NeighborListsFromIndex(
    const NeighborIndex& index) {
  std::vector<std::vector<int>> out(index.n);
  for (int i = 0; i < index.n; ++i) {
    const int* ids = index.ids.data() + static_cast<size_t>(i) * index.k;
    out[i].assign(ids, ids + index.k);
  }
  return out;
}

}  // namespace

std::vector<std::vector<int>> KNearestNeighbors(const Matrix& x, int k) {
  const int n = static_cast<int>(x.rows());
  GRGAD_CHECK_GT(n, 1);
  k = std::min(k, n - 1);
  // Seed behavior: k <= 0 selects nothing (n empty lists), no sweep.
  if (k <= 0) return std::vector<std::vector<int>>(n);
  return NeighborListsFromIndex(BuildNeighborIndex(x, k));
}

std::vector<std::vector<int>> KNearestNeighborsFromDistances(const Matrix& d,
                                                             int k) {
  const int n = static_cast<int>(d.rows());
  k = std::min(k, n - 1);
  // Mirror KNearestNeighbors: k <= 0 selects nothing.
  if (k <= 0) return std::vector<std::vector<int>>(n);
  return NeighborListsFromIndex(NeighborIndexFromDistances(d, k));
}

int KnnDetector::NeighborsNeeded(int n) const {
  return n > 1 ? std::min(k_, n - 1) : 0;
}

std::vector<double> KnnDetector::FitScore(const Matrix& x) {
  const int n = static_cast<int>(x.rows());
  GRGAD_CHECK_GT(n, 0);
  if (n == 1) return {0.0};
  return FitScoreWithIndex(x, BuildNeighborIndex(x, NeighborsNeeded(n)));
}

std::vector<double> KnnDetector::FitScoreWithIndex(const Matrix& x,
                                                   const NeighborIndex& index) {
  const int n = static_cast<int>(x.rows());
  GRGAD_CHECK_GT(n, 0);
  if (n == 1) return {0.0};
  const int k = std::min(k_, n - 1);
  GRGAD_CHECK(index.n == n && index.k >= k);
  std::vector<double> score(n);
  for (int i = 0; i < n; ++i) score[i] = index.Distance(i, k - 1);
  return score;
}

}  // namespace grgad
