#include "src/od/knn.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace grgad {

Matrix PairwiseDistances(const Matrix& x) {
  const size_t n = x.rows();
  Matrix d(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double* a = x.RowPtr(i);
      const double* b = x.RowPtr(j);
      double s = 0.0;
      for (size_t k = 0; k < x.cols(); ++k) {
        const double diff = a[k] - b[k];
        s += diff * diff;
      }
      const double dist = std::sqrt(s);
      d(i, j) = dist;
      d(j, i) = dist;
    }
  }
  return d;
}

std::vector<std::vector<int>> KNearestNeighbors(const Matrix& x, int k) {
  const int n = static_cast<int>(x.rows());
  GRGAD_CHECK_GT(n, 1);
  k = std::min(k, n - 1);
  const Matrix d = PairwiseDistances(x);
  std::vector<std::vector<int>> out(n);
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) {
    idx.clear();
    for (int j = 0; j < n; ++j) {
      if (j != i) idx.push_back(j);
    }
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [&d, i](int a, int b) {
                        if (d(i, a) != d(i, b)) return d(i, a) < d(i, b);
                        return a < b;
                      });
    out[i].assign(idx.begin(), idx.begin() + k);
  }
  return out;
}

std::vector<double> KnnDetector::FitScore(const Matrix& x) {
  const int n = static_cast<int>(x.rows());
  GRGAD_CHECK_GT(n, 0);
  if (n == 1) return {0.0};
  const int k = std::min(k_, n - 1);
  const auto nn = KNearestNeighbors(x, k);
  const Matrix d = PairwiseDistances(x);
  std::vector<double> score(n);
  for (int i = 0; i < n; ++i) score[i] = d(i, nn[i].back());
  return score;
}

}  // namespace grgad
