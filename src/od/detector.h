// Common interface for unsupervised outlier detectors.
//
// TPGCL hands its 64-d group embeddings to one of these (the paper uses
// ECOD; LOF / kNN / IsolationForest / MAD are interchangeable alternatives
// behind the same interface). Scores are "higher = more anomalous" and are
// only meaningful relative to each other within a single FitScore call.
#ifndef GRGAD_OD_DETECTOR_H_
#define GRGAD_OD_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/cancel.h"

namespace grgad {

struct NeighborIndex;

/// Unsupervised detector: fit on x (rows = samples) and return one anomaly
/// score per row.
class OutlierDetector {
 public:
  virtual ~OutlierDetector() = default;

  /// Fits on `x` and returns per-row anomaly scores (size x.rows()).
  virtual std::vector<double> FitScore(const Matrix& x) = 0;

  /// Short identifier for logs and bench tables (e.g. "ecod").
  virtual std::string Name() const = 0;

  /// How many nearest neighbors per row this detector consumes for an
  /// n-row input (0 = none). Callers scoring with several detectors build
  /// ONE NeighborIndex with the max over all of them and pass it to
  /// FitScoreWithIndex; rows of the shared index are (distance, id)-sorted,
  /// so a k-consumer reads a prefix of a k'-index for any k' >= k.
  virtual int NeighborsNeeded(int /*n*/) const { return 0; }

  /// FitScore with a precomputed neighbor index over the same x, with
  /// index.k >= NeighborsNeeded(x.rows()). Detectors that need no
  /// neighbors ignore the index. Produces exactly the scores FitScore
  /// would: FitScore == FitScoreWithIndex(BuildNeighborIndex(x, k)).
  virtual std::vector<double> FitScoreWithIndex(const Matrix& x,
                                                const NeighborIndex&) {
    return FitScore(x);
  }

  /// Installs a cooperative stop token. Detectors that honor it (currently
  /// the ensemble, between member fits) abandon remaining work once it
  /// fires; single-member detectors may ignore it — their fits are short.
  void SetStopToken(const CancelToken& token) { stop_ = token; }

 protected:
  const CancelToken& stop_token() const { return stop_; }

 private:
  CancelToken stop_;
};

/// Detector ids accepted by MakeOutlierDetector. kEnsemble is the
/// SUOD-style rank-averaged combination of ECOD + LOF + IsolationForest.
enum class DetectorKind { kEcod, kLof, kKnn, kIsolationForest, kMad,
                          kEnsemble };

/// Factory. `seed` only matters for stochastic detectors (IsolationForest).
std::unique_ptr<OutlierDetector> MakeOutlierDetector(DetectorKind kind,
                                                     uint64_t seed = 7);

/// Every DetectorKind, in enum order. Iterate this instead of hard-coding
/// kinds so new detectors reach benches/CLI/tests automatically.
std::vector<DetectorKind> AllDetectorKinds();

/// "ecod" | "lof" | "knn" | "iforest" | "mad" | "ensemble" — the names
/// ParseDetectorKind accepts.
const char* DetectorKindName(DetectorKind kind);

/// Inverse of DetectorKindName; false for unknown names.
bool ParseDetectorKind(const std::string& name, DetectorKind* out);

}  // namespace grgad

#endif  // GRGAD_OD_DETECTOR_H_
