#include "src/od/lof.h"

#include <algorithm>

#include "src/od/knn.h"
#include "src/util/check.h"

namespace grgad {

std::vector<double> Lof::FitScore(const Matrix& x) {
  const int n = static_cast<int>(x.rows());
  GRGAD_CHECK_GT(n, 0);
  if (n <= 2) return std::vector<double>(n, 1.0);
  const int k = std::min(k_, n - 1);
  const Matrix d = PairwiseDistances(x);
  const auto nn = KNearestNeighbors(x, k);
  // k-distance of each point = distance to its k-th neighbor.
  std::vector<double> kdist(n);
  for (int i = 0; i < n; ++i) kdist[i] = d(i, nn[i].back());
  // Local reachability density.
  std::vector<double> lrd(n);
  for (int i = 0; i < n; ++i) {
    double sum_reach = 0.0;
    for (int j : nn[i]) {
      sum_reach += std::max(kdist[j], d(i, j));
    }
    lrd[i] = sum_reach > 0.0 ? static_cast<double>(nn[i].size()) / sum_reach
                             : 1e12;  // Duplicated points: huge density.
  }
  std::vector<double> lof(n);
  for (int i = 0; i < n; ++i) {
    double s = 0.0;
    for (int j : nn[i]) s += lrd[j];
    lof[i] = lrd[i] > 0.0
                 ? s / (static_cast<double>(nn[i].size()) * lrd[i])
                 : 0.0;
  }
  return lof;
}

}  // namespace grgad
