#include "src/od/lof.h"

#include <algorithm>

#include "src/util/check.h"

namespace grgad {

int Lof::NeighborsNeeded(int n) const {
  return n > 2 ? std::min(k_, n - 1) : 0;
}

std::vector<double> Lof::FitScore(const Matrix& x) {
  const int n = static_cast<int>(x.rows());
  GRGAD_CHECK_GT(n, 0);
  if (n <= 2) return std::vector<double>(n, 1.0);
  return FitScoreWithIndex(x, BuildNeighborIndex(x, NeighborsNeeded(n)));
}

std::vector<double> Lof::FitScoreWithIndex(const Matrix& x,
                                           const NeighborIndex& index) {
  const int n = static_cast<int>(x.rows());
  GRGAD_CHECK_GT(n, 0);
  if (n <= 2) return std::vector<double>(n, 1.0);
  const int k = std::min(k_, n - 1);
  GRGAD_CHECK(index.n == n && index.k >= k);
  // k-distance of each point = distance to its k-th neighbor. Index rows
  // are ascending by distance, matching the seed's neighbor order, so every
  // accumulation below runs in the seed's exact order.
  std::vector<double> kdist(n);
  for (int i = 0; i < n; ++i) kdist[i] = index.Distance(i, k - 1);
  // Local reachability density.
  std::vector<double> lrd(n);
  for (int i = 0; i < n; ++i) {
    double sum_reach = 0.0;
    for (int pos = 0; pos < k; ++pos) {
      sum_reach += std::max(kdist[index.Neighbor(i, pos)],
                            index.Distance(i, pos));
    }
    lrd[i] = sum_reach > 0.0 ? static_cast<double>(k) / sum_reach
                             : 1e12;  // Duplicated points: huge density.
  }
  std::vector<double> lof(n);
  for (int i = 0; i < n; ++i) {
    double s = 0.0;
    for (int pos = 0; pos < k; ++pos) s += lrd[index.Neighbor(i, pos)];
    lof[i] = lrd[i] > 0.0 ? s / (static_cast<double>(k) * lrd[i]) : 0.0;
  }
  return lof;
}

}  // namespace grgad
