#include "src/od/neighbor_index.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#include "src/od/knn.h"
#include "src/util/check.h"
#include "src/util/fastpath.h"
#include "src/util/parallel.h"

namespace grgad {

namespace internal {

namespace {
std::atomic<uint64_t> g_distance_sweeps{0};
}  // namespace

uint64_t DistanceSweeps() {
  return g_distance_sweeps.load(std::memory_order_relaxed);
}

void ResetDistanceSweeps() {
  g_distance_sweeps.store(0, std::memory_order_relaxed);
}

void CountDistanceSweep() {
  g_distance_sweeps.fetch_add(1, std::memory_order_relaxed);
}

void ForEachDistancePanel(
    const Matrix& x,
    const std::function<void(size_t, size_t, const Matrix&)>& sink) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  // Squared row norms, accumulated ascending over columns — the exact order
  // the tiled MatMul uses per output element, so ‖xᵢ‖² − xᵢ·xᵢ cancels to
  // exactly 0 and the diagonal needs no fixup beyond the defensive clamp.
  std::vector<double> norms(n);
  ParallelFor(n, 256, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const double* row = x.RowPtr(i);
      double s = 0.0;
      for (size_t j = 0; j < d; ++j) s += row[j] * row[j];
      norms[i] = s;
    }
  });
  const Matrix xt = x.Transpose();

  // Row panels: the Gram panel G = A_panel · xᵀ is the only O(panel·n)
  // buffer; large n never materializes the full n×n matrix here.
  constexpr size_t kPanelRows = 256;
  Matrix panel_a;
  Matrix gram;
  for (size_t i0 = 0; i0 < n; i0 += kPanelRows) {
    const size_t rows = std::min(kPanelRows, n - i0);
    if (panel_a.rows() != rows) {
      panel_a = Matrix(rows, d);
      gram = Matrix(rows, n);
    }
    // Row-major rows are contiguous, so a row panel is one memcpy.
    std::memcpy(panel_a.data(), x.RowPtr(i0), rows * d * sizeof(double));
    MatMulInto(panel_a, xt, &gram);
    ParallelFor(rows, 1, [&](size_t begin, size_t end) {
      for (size_t r = begin; r < end; ++r) {
        double* row = gram.RowPtr(r);
        const double ni = norms[i0 + r];
        for (size_t j = 0; j < n; ++j) {
          // Clamp: FP cancellation can leave a tiny negative residual.
          row[j] = std::sqrt(std::max(0.0, ni + norms[j] - 2.0 * row[j]));
        }
        row[i0 + r] = 0.0;
      }
    });
    sink(i0, rows, gram);
  }
}

}  // namespace internal

namespace {

/// Selects the k nearest neighbors of row `i` from its distance row `drow`
/// (length n) into the index, using the seed's deterministic tie-break:
/// ascending distance, ties by ascending id. `cand` is caller scratch.
void SelectRow(const double* drow, size_t n, size_t i, int k,
               std::vector<int>* cand, NeighborIndex* out) {
  cand->clear();
  for (size_t j = 0; j < n; ++j) {
    if (j != i) cand->push_back(static_cast<int>(j));
  }
  std::partial_sort(cand->begin(), cand->begin() + k, cand->end(),
                    [drow](int a, int b) {
                      if (drow[a] != drow[b]) return drow[a] < drow[b];
                      return a < b;
                    });
  int* ids = out->ids.data() + i * static_cast<size_t>(k);
  double* dists = out->dists.data() + i * static_cast<size_t>(k);
  for (int pos = 0; pos < k; ++pos) {
    ids[pos] = (*cand)[pos];
    dists[pos] = drow[(*cand)[pos]];
  }
}

}  // namespace

NeighborIndex NeighborIndexFromDistances(const Matrix& d, int k) {
  const size_t n = d.rows();
  GRGAD_CHECK(d.cols() == n);
  GRGAD_CHECK_GT(n, 1u);
  k = std::min(k, static_cast<int>(n) - 1);
  GRGAD_CHECK_GT(k, 0);
  NeighborIndex out;
  out.n = static_cast<int>(n);
  out.k = k;
  out.ids.resize(n * static_cast<size_t>(k));
  out.dists.resize(n * static_cast<size_t>(k));
  std::vector<int> cand;
  cand.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SelectRow(d.RowPtr(i), n, i, k, &cand, &out);
  }
  return out;
}

NeighborIndex BuildNeighborIndex(const Matrix& x, int k) {
  const size_t n = x.rows();
  GRGAD_CHECK_GT(n, 1u);
  k = std::min(k, static_cast<int>(n) - 1);
  GRGAD_CHECK_GT(k, 0);
  if (!ScoringFastPathEnabled()) {
    // Seed path: one scalar distance matrix (counted by PairwiseDistances),
    // then the shared selection.
    return NeighborIndexFromDistances(PairwiseDistances(x), k);
  }
  internal::CountDistanceSweep();
  NeighborIndex out;
  out.n = static_cast<int>(n);
  out.k = k;
  out.ids.resize(n * static_cast<size_t>(k));
  out.dists.resize(n * static_cast<size_t>(k));
  internal::ForEachDistancePanel(
      x, [&](size_t i0, size_t rows, const Matrix& panel) {
        ParallelFor(rows, 1, [&](size_t begin, size_t end) {
          std::vector<int> cand;
          cand.reserve(n);
          for (size_t r = begin; r < end; ++r) {
            SelectRow(panel.RowPtr(r), n, i0 + r, k, &cand, &out);
          }
        });
      });
  return out;
}

}  // namespace grgad
