#include "src/od/ecod.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/fastpath.h"
#include "src/util/parallel.h"

namespace grgad {

namespace {

/// Sample skewness of a column (0 for degenerate columns).
double Skewness(const std::vector<double>& col) {
  const size_t n = col.size();
  if (n < 2) return 0.0;
  double mean = 0.0;
  for (double v : col) mean += v;
  mean /= static_cast<double>(n);
  double m2 = 0.0, m3 = 0.0;
  for (double v : col) {
    const double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 1e-300) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

/// One column's ECDF tail contributions: nl/nr/na get column j's
/// -log tail probabilities per sample (na = skewness-selected tail).
/// The seed loop body, factored so the fast path can run columns in
/// parallel with identical per-column arithmetic.
void ColumnContributions(const Matrix& x, size_t j, std::vector<double>* col,
                         std::vector<double>* sorted, double* nl, double* nr,
                         double* na) {
  const size_t n = x.rows();
  for (size_t i = 0; i < n; ++i) (*col)[i] = x(i, j);
  *sorted = *col;
  std::sort(sorted->begin(), sorted->end());
  const double skew = Skewness(*col);
  for (size_t i = 0; i < n; ++i) {
    // Left tail: P(X <= x_i) with the sample included -> rank/(n).
    const auto hi = std::upper_bound(sorted->begin(), sorted->end(), (*col)[i]);
    const double p_left =
        static_cast<double>(hi - sorted->begin()) / static_cast<double>(n);
    // Right tail: P(X >= x_i).
    const auto lo = std::lower_bound(sorted->begin(), sorted->end(), (*col)[i]);
    const double p_right =
        static_cast<double>(sorted->end() - lo) / static_cast<double>(n);
    nl[i] = -std::log(std::max(p_left, 1e-12));
    nr[i] = -std::log(std::max(p_right, 1e-12));
    // Skewness-corrected: negative skew -> left tail carries anomalies.
    na[i] = (skew < 0.0) ? nl[i] : nr[i];
  }
}

}  // namespace

std::vector<double> Ecod::FitScore(const Matrix& x) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  GRGAD_CHECK_GT(n, 0u);
  std::vector<double> o_left(n, 0.0), o_right(n, 0.0), o_auto(n, 0.0);
  if (ScoringFastPathEnabled() && n >= 2 && d >= 2) {
    // Columns are independent until the final per-sample accumulation, so
    // the sort + ECDF work (the hot part) fans out over the pool: each
    // column in a block writes its contributions to its own slice, then the
    // block reduces in ascending column order per sample — the seed's exact
    // accumulation order, so the result is bitwise identical to the serial
    // loop and invariant across GRGAD_THREADS. Blocks bound the
    // contribution buffers to ~3 * kBlockBudget doubles.
    constexpr size_t kBlockBudget = 1 << 20;
    const size_t block =
        std::max<size_t>(1, std::min<size_t>(32, kBlockBudget / n));
    std::vector<double> cl(block * n), cr(block * n), ca(block * n);
    for (size_t j0 = 0; j0 < d; j0 += block) {
      const size_t bw = std::min(block, d - j0);
      ParallelFor(bw, 1, [&](size_t begin, size_t end) {
        std::vector<double> col(n), sorted(n);
        for (size_t jj = begin; jj < end; ++jj) {
          ColumnContributions(x, j0 + jj, &col, &sorted, cl.data() + jj * n,
                              cr.data() + jj * n, ca.data() + jj * n);
        }
      });
      ParallelFor(n, 1 << 14, [&](size_t begin, size_t end) {
        for (size_t jj = 0; jj < bw; ++jj) {
          const double* l = cl.data() + jj * n;
          const double* r = cr.data() + jj * n;
          const double* a = ca.data() + jj * n;
          for (size_t i = begin; i < end; ++i) {
            o_left[i] += l[i];
            o_right[i] += r[i];
            o_auto[i] += a[i];
          }
        }
      });
    }
  } else {
    std::vector<double> col(n), sorted(n), nl(n), nr(n), na(n);
    for (size_t j = 0; j < d; ++j) {
      ColumnContributions(x, j, &col, &sorted, nl.data(), nr.data(),
                          na.data());
      for (size_t i = 0; i < n; ++i) {
        o_left[i] += nl[i];
        o_right[i] += nr[i];
        o_auto[i] += na[i];
      }
    }
  }
  std::vector<double> score(n);
  for (size_t i = 0; i < n; ++i) {
    score[i] = std::max({o_left[i], o_right[i], o_auto[i]});
  }
  return score;
}

}  // namespace grgad
