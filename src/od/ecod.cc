#include "src/od/ecod.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace grgad {

namespace {

/// Sample skewness of a column (0 for degenerate columns).
double Skewness(const std::vector<double>& col) {
  const size_t n = col.size();
  if (n < 2) return 0.0;
  double mean = 0.0;
  for (double v : col) mean += v;
  mean /= static_cast<double>(n);
  double m2 = 0.0, m3 = 0.0;
  for (double v : col) {
    const double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 1e-300) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

}  // namespace

std::vector<double> Ecod::FitScore(const Matrix& x) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  GRGAD_CHECK_GT(n, 0u);
  std::vector<double> o_left(n, 0.0), o_right(n, 0.0), o_auto(n, 0.0);
  std::vector<double> col(n);
  std::vector<double> sorted(n);
  for (size_t j = 0; j < d; ++j) {
    for (size_t i = 0; i < n; ++i) col[i] = x(i, j);
    sorted = col;
    std::sort(sorted.begin(), sorted.end());
    const double skew = Skewness(col);
    for (size_t i = 0; i < n; ++i) {
      // Left tail: P(X <= x_i) with the sample included -> rank/(n).
      const auto hi =
          std::upper_bound(sorted.begin(), sorted.end(), col[i]);
      const double p_left =
          static_cast<double>(hi - sorted.begin()) / static_cast<double>(n);
      // Right tail: P(X >= x_i).
      const auto lo = std::lower_bound(sorted.begin(), sorted.end(), col[i]);
      const double p_right =
          static_cast<double>(sorted.end() - lo) / static_cast<double>(n);
      const double nl = -std::log(std::max(p_left, 1e-12));
      const double nr = -std::log(std::max(p_right, 1e-12));
      o_left[i] += nl;
      o_right[i] += nr;
      // Skewness-corrected: negative skew -> left tail carries anomalies.
      o_auto[i] += (skew < 0.0) ? nl : nr;
    }
  }
  std::vector<double> score(n);
  for (size_t i = 0; i < n; ++i) {
    score[i] = std::max({o_left[i], o_right[i], o_auto[i]});
  }
  return score;
}

}  // namespace grgad
