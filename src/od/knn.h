// Distance-based detectors: exact k-nearest-neighbor utilities plus the
// classic kNN outlier score (distance to the k-th neighbor).
#ifndef GRGAD_OD_KNN_H_
#define GRGAD_OD_KNN_H_

#include "src/od/detector.h"

namespace grgad {

/// Pairwise Euclidean distance matrix (n x n, zero diagonal).
Matrix PairwiseDistances(const Matrix& x);

/// For each row, indices of its k nearest other rows (ascending distance;
/// ties broken by index). k is clamped to n-1.
std::vector<std::vector<int>> KNearestNeighbors(const Matrix& x, int k);

/// kNN outlier detector: score = distance to the k-th nearest neighbor.
class KnnDetector : public OutlierDetector {
 public:
  explicit KnnDetector(int k = 5) : k_(k) {}
  std::vector<double> FitScore(const Matrix& x) override;
  std::string Name() const override { return "knn"; }

 private:
  int k_;
};

}  // namespace grgad

#endif  // GRGAD_OD_KNN_H_
