// Distance-based detectors: exact k-nearest-neighbor utilities plus the
// classic kNN outlier score (distance to the k-th neighbor).
//
// The distance work routes through src/od/neighbor_index.h: one distance
// sweep per FitScore (GEMM panels on the scoring fast path, the seed scalar
// matrix otherwise) feeding a shared per-row selection.
#ifndef GRGAD_OD_KNN_H_
#define GRGAD_OD_KNN_H_

#include "src/od/detector.h"
#include "src/od/neighbor_index.h"

namespace grgad {

/// Pairwise Euclidean distance matrix (n x n, zero diagonal). On the
/// scoring fast path this is the GEMM identity ‖xᵢ‖²+‖xⱼ‖²−2·xᵢ·xⱼ
/// (panel-streamed into the output, still bitwise symmetric with an exactly
/// zero diagonal); otherwise the seed scalar diff-square loop.
Matrix PairwiseDistances(const Matrix& x);

/// For each row, indices of its k nearest other rows (ascending distance;
/// ties broken by index). k is clamped to n-1. One distance sweep.
std::vector<std::vector<int>> KNearestNeighbors(const Matrix& x, int k);

/// KNearestNeighbors from a precomputed distance matrix (n x n, zero
/// diagonal) — callers that already hold distances pay no second sweep.
std::vector<std::vector<int>> KNearestNeighborsFromDistances(const Matrix& d,
                                                             int k);

/// kNN outlier detector: score = distance to the k-th nearest neighbor.
class KnnDetector : public OutlierDetector {
 public:
  explicit KnnDetector(int k = 5) : k_(k) {}
  std::vector<double> FitScore(const Matrix& x) override;
  std::vector<double> FitScoreWithIndex(const Matrix& x,
                                        const NeighborIndex& index) override;
  int NeighborsNeeded(int n) const override;
  std::string Name() const override { return "knn"; }

 private:
  int k_;
};

}  // namespace grgad

#endif  // GRGAD_OD_KNN_H_
