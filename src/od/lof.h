// Local Outlier Factor (Breunig et al., 2000).
#ifndef GRGAD_OD_LOF_H_
#define GRGAD_OD_LOF_H_

#include "src/od/detector.h"
#include "src/od/neighbor_index.h"

namespace grgad {

/// LOF detector: ratio of the average local reachability density of a
/// point's neighbors to its own (≈1 for inliers, >1 for outliers). Needs
/// only the k-nearest-neighbor ids and distances — one NeighborIndex (one
/// distance sweep), shared with the other scoring-stage detectors when
/// scored through FitScoreWithIndex.
class Lof : public OutlierDetector {
 public:
  explicit Lof(int k = 10) : k_(k) {}
  std::vector<double> FitScore(const Matrix& x) override;
  std::vector<double> FitScoreWithIndex(const Matrix& x,
                                        const NeighborIndex& index) override;
  int NeighborsNeeded(int n) const override;
  std::string Name() const override { return "lof"; }

 private:
  int k_;
};

}  // namespace grgad

#endif  // GRGAD_OD_LOF_H_
