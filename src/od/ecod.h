// ECOD: unsupervised outlier detection via empirical cumulative distribution
// functions (Li et al., TKDE 2022) — the detector the paper plugs in after
// TPGCL.
//
// For every dimension j, tail probabilities are estimated from the empirical
// CDF on both sides; a sample's dimension contribution is the negative log
// tail probability, and the per-dimension skewness decides which tail is
// used by the "automatic" aggregate. The final score is
// max(O_left, O_right, O_auto), exactly as in the reference implementation.
#ifndef GRGAD_OD_ECOD_H_
#define GRGAD_OD_ECOD_H_

#include "src/od/detector.h"

namespace grgad {

/// ECOD detector; parameter free and deterministic.
class Ecod : public OutlierDetector {
 public:
  std::vector<double> FitScore(const Matrix& x) override;
  std::string Name() const override { return "ecod"; }
};

}  // namespace grgad

#endif  // GRGAD_OD_ECOD_H_
