#include "src/od/mad.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace grgad {

namespace {

double Median(std::vector<double> v) {
  GRGAD_CHECK(!v.empty());
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    std::nth_element(v.begin(), v.begin() + mid - 1, v.end());
    m = 0.5 * (m + v[mid - 1]);
  }
  return m;
}

}  // namespace

std::vector<double> MadDetector::FitScore(const Matrix& x) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  GRGAD_CHECK_GT(n, 0u);
  std::vector<double> score(n, 0.0);
  std::vector<double> col(n);
  for (size_t j = 0; j < d; ++j) {
    for (size_t i = 0; i < n; ++i) col[i] = x(i, j);
    const double med = Median(col);
    std::vector<double> dev(n);
    for (size_t i = 0; i < n; ++i) dev[i] = std::fabs(col[i] - med);
    const double mad = Median(dev);
    const double denom = std::max(1.4826 * mad, 1e-9);
    for (size_t i = 0; i < n; ++i) score[i] += dev[i] / denom;
  }
  if (d > 0) {
    for (double& s : score) s /= static_cast<double>(d);
  }
  return score;
}

}  // namespace grgad
