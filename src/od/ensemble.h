// Ensemble detector in the spirit of SUOD (the paper's other suggested
// scorer): run several base detectors and average their rank-normalized
// scores. Rank normalization makes heterogeneous score scales (ECOD's
// -log tail probabilities vs LOF's density ratios vs IForest's [0,1])
// directly comparable.
//
// Neighbor-based members share ONE NeighborIndex (built with the max k any
// member needs) instead of each re-deriving neighbors from scratch — index
// rows are (distance, id)-sorted, so a k-consumer reads a prefix of the
// shared k_max index and scores exactly as it would standalone.
#ifndef GRGAD_OD_ENSEMBLE_H_
#define GRGAD_OD_ENSEMBLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/od/detector.h"
#include "src/od/neighbor_index.h"
#include "src/util/status.h"

namespace grgad {

/// Outcome of one ensemble member's fit in the last FitScore call.
struct EnsembleMemberStatus {
  std::string name;  ///< Member's Name().
  Status status;     ///< OkStatus, or why the member was dropped.
};

/// Averages rank-normalized scores of the given base detectors.
class EnsembleDetector : public OutlierDetector {
 public:
  /// Takes ownership of the base detectors; at least one is required.
  explicit EnsembleDetector(
      std::vector<std::unique_ptr<OutlierDetector>> members);

  /// Default paper-flavored ensemble: ECOD + LOF + IsolationForest.
  static std::unique_ptr<EnsembleDetector> MakeDefault(uint64_t seed = 7);

  std::vector<double> FitScore(const Matrix& x) override;
  std::vector<double> FitScoreWithIndex(const Matrix& x,
                                        const NeighborIndex& index) override;
  /// Max over the members, so one shared index serves all of them.
  int NeighborsNeeded(int n) const override;
  std::string Name() const override { return "ensemble"; }

  size_t size() const { return members_.size(); }

  /// Graceful degradation: a member whose fit fails (throws, or is hit by
  /// the `od/ensemble-member` fault point) is dropped and the average is
  /// taken over the SURVIVORS — bitwise identical to the full ensemble when
  /// nothing fails. Per-member outcomes of the last FitScore /
  /// FitScoreWithIndex call, in member order:
  const std::vector<EnsembleMemberStatus>& member_statuses() const {
    return member_statuses_;
  }
  /// Members that scored successfully in the last fit. 0 means the combined
  /// scores are all zero and must not be consumed (the scoring stage turns
  /// that into an error).
  size_t survivors() const { return survivors_; }

 private:
  std::vector<double> Combine(const Matrix& x, const NeighborIndex* index);

  std::vector<std::unique_ptr<OutlierDetector>> members_;
  std::vector<EnsembleMemberStatus> member_statuses_;
  size_t survivors_ = 0;
};

/// Maps scores to average ranks scaled into [0, 1] (ties share their mean
/// rank). Exposed for tests.
std::vector<double> RankNormalize(const std::vector<double>& scores);

}  // namespace grgad

#endif  // GRGAD_OD_ENSEMBLE_H_
