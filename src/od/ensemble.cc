#include "src/od/ensemble.h"

#include <algorithm>
#include <exception>

#include "src/od/ecod.h"
#include "src/od/iforest.h"
#include "src/od/lof.h"
#include "src/util/check.h"
#include "src/util/fault.h"

namespace grgad {

std::vector<double> RankNormalize(const std::vector<double>& scores) {
  const size_t n = scores.size();
  std::vector<double> out(n, 0.0);
  if (n <= 1) return out;
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double mean_rank = 0.5 * (static_cast<double>(i) + j);
    for (size_t k = i; k <= j; ++k) {
      out[order[k]] = mean_rank / static_cast<double>(n - 1);
    }
    i = j + 1;
  }
  return out;
}

EnsembleDetector::EnsembleDetector(
    std::vector<std::unique_ptr<OutlierDetector>> members)
    : members_(std::move(members)) {
  GRGAD_CHECK(!members_.empty());
  for (const auto& m : members_) GRGAD_CHECK(m != nullptr);
}

std::unique_ptr<EnsembleDetector> EnsembleDetector::MakeDefault(
    uint64_t seed) {
  std::vector<std::unique_ptr<OutlierDetector>> members;
  members.push_back(std::make_unique<Ecod>());
  members.push_back(std::make_unique<Lof>());
  IsolationForestOptions iforest;
  iforest.seed = seed;
  members.push_back(std::make_unique<IsolationForest>(iforest));
  return std::make_unique<EnsembleDetector>(std::move(members));
}

int EnsembleDetector::NeighborsNeeded(int n) const {
  int k = 0;
  for (const auto& m : members_) k = std::max(k, m->NeighborsNeeded(n));
  return k;
}

std::vector<double> EnsembleDetector::Combine(const Matrix& x,
                                              const NeighborIndex* index) {
  std::vector<double> combined(x.rows(), 0.0);
  member_statuses_.clear();
  member_statuses_.reserve(members_.size());
  survivors_ = 0;
  for (auto& member : members_) {
    // Stop poll between member fits: once the token fires the partial
    // scores are dead anyway (the caller unwinds), so skip the rest.
    if (stop_token().stop_requested()) {
      member_statuses_.push_back(
          {member->Name(), Status::Cancelled("ensemble stopped before " +
                                             member->Name())});
      continue;
    }
    Status member_status =
        FaultInjector::Global().Check("od/ensemble-member",
                                      StatusCode::kInternal);
    if (member_status.ok()) {
      try {
        const std::vector<double> ranks =
            RankNormalize(index != nullptr
                              ? member->FitScoreWithIndex(x, *index)
                              : member->FitScore(x));
        for (size_t i = 0; i < combined.size(); ++i) combined[i] += ranks[i];
      } catch (const std::exception& e) {
        member_status = Status::Internal(member->Name() +
                                         " member failed: " + e.what());
      }
    }
    if (member_status.ok()) ++survivors_;
    member_statuses_.push_back({member->Name(), std::move(member_status)});
  }
  // Average over the survivors: with none failed this divides by
  // members_.size() exactly as before (bitwise identical); with none
  // surviving the zeros stay zero and the caller must check survivors().
  if (survivors_ > 0) {
    for (double& v : combined) v /= static_cast<double>(survivors_);
  }
  return combined;
}

std::vector<double> EnsembleDetector::FitScore(const Matrix& x) {
  const int k = NeighborsNeeded(static_cast<int>(x.rows()));
  if (k > 0) {
    const NeighborIndex index = BuildNeighborIndex(x, k);
    return Combine(x, &index);
  }
  return Combine(x, nullptr);
}

std::vector<double> EnsembleDetector::FitScoreWithIndex(
    const Matrix& x, const NeighborIndex& index) {
  return Combine(x, &index);
}

}  // namespace grgad
