// Verbatim copies of the seed scoring loops (see header). Deliberately not
// refactored onto the shared helpers: these freeze the seed's exact
// computation shape, duplicated work included.
#include "src/od/reference_detectors.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace grgad::reference {

Matrix PairwiseDistances(const Matrix& x) {
  const size_t n = x.rows();
  Matrix d(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double* a = x.RowPtr(i);
      const double* b = x.RowPtr(j);
      double s = 0.0;
      for (size_t k = 0; k < x.cols(); ++k) {
        const double diff = a[k] - b[k];
        s += diff * diff;
      }
      const double dist = std::sqrt(s);
      d(i, j) = dist;
      d(j, i) = dist;
    }
  }
  return d;
}

std::vector<std::vector<int>> KNearestNeighbors(const Matrix& x, int k) {
  const int n = static_cast<int>(x.rows());
  GRGAD_CHECK_GT(n, 1);
  k = std::min(k, n - 1);
  const Matrix d = PairwiseDistances(x);
  std::vector<std::vector<int>> out(n);
  std::vector<int> idx(n);
  for (int i = 0; i < n; ++i) {
    idx.clear();
    for (int j = 0; j < n; ++j) {
      if (j != i) idx.push_back(j);
    }
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [&d, i](int a, int b) {
                        if (d(i, a) != d(i, b)) return d(i, a) < d(i, b);
                        return a < b;
                      });
    out[i].assign(idx.begin(), idx.begin() + k);
  }
  return out;
}

std::vector<double> KnnFitScore(const Matrix& x, int k) {
  const int n = static_cast<int>(x.rows());
  GRGAD_CHECK_GT(n, 0);
  if (n == 1) return {0.0};
  k = std::min(k, n - 1);
  const auto nn = KNearestNeighbors(x, k);
  const Matrix d = PairwiseDistances(x);
  std::vector<double> score(n);
  for (int i = 0; i < n; ++i) score[i] = d(i, nn[i].back());
  return score;
}

std::vector<double> LofFitScore(const Matrix& x, int k) {
  const int n = static_cast<int>(x.rows());
  GRGAD_CHECK_GT(n, 0);
  if (n <= 2) return std::vector<double>(n, 1.0);
  k = std::min(k, n - 1);
  const Matrix d = PairwiseDistances(x);
  const auto nn = KNearestNeighbors(x, k);
  // k-distance of each point = distance to its k-th neighbor.
  std::vector<double> kdist(n);
  for (int i = 0; i < n; ++i) kdist[i] = d(i, nn[i].back());
  // Local reachability density.
  std::vector<double> lrd(n);
  for (int i = 0; i < n; ++i) {
    double sum_reach = 0.0;
    for (int j : nn[i]) {
      sum_reach += std::max(kdist[j], d(i, j));
    }
    lrd[i] = sum_reach > 0.0 ? static_cast<double>(nn[i].size()) / sum_reach
                             : 1e12;  // Duplicated points: huge density.
  }
  std::vector<double> lof(n);
  for (int i = 0; i < n; ++i) {
    double s = 0.0;
    for (int j : nn[i]) s += lrd[j];
    lof[i] = lrd[i] > 0.0
                 ? s / (static_cast<double>(nn[i].size()) * lrd[i])
                 : 0.0;
  }
  return lof;
}

namespace {

/// Sample skewness of a column (0 for degenerate columns).
double Skewness(const std::vector<double>& col) {
  const size_t n = col.size();
  if (n < 2) return 0.0;
  double mean = 0.0;
  for (double v : col) mean += v;
  mean /= static_cast<double>(n);
  double m2 = 0.0, m3 = 0.0;
  for (double v : col) {
    const double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 1e-300) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

}  // namespace

std::vector<double> EcodFitScore(const Matrix& x) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  GRGAD_CHECK_GT(n, 0u);
  std::vector<double> o_left(n, 0.0), o_right(n, 0.0), o_auto(n, 0.0);
  std::vector<double> col(n);
  std::vector<double> sorted(n);
  for (size_t j = 0; j < d; ++j) {
    for (size_t i = 0; i < n; ++i) col[i] = x(i, j);
    sorted = col;
    std::sort(sorted.begin(), sorted.end());
    const double skew = Skewness(col);
    for (size_t i = 0; i < n; ++i) {
      // Left tail: P(X <= x_i) with the sample included -> rank/(n).
      const auto hi =
          std::upper_bound(sorted.begin(), sorted.end(), col[i]);
      const double p_left =
          static_cast<double>(hi - sorted.begin()) / static_cast<double>(n);
      // Right tail: P(X >= x_i).
      const auto lo = std::lower_bound(sorted.begin(), sorted.end(), col[i]);
      const double p_right =
          static_cast<double>(sorted.end() - lo) / static_cast<double>(n);
      const double nl = -std::log(std::max(p_left, 1e-12));
      const double nr = -std::log(std::max(p_right, 1e-12));
      o_left[i] += nl;
      o_right[i] += nr;
      // Skewness-corrected: negative skew -> left tail carries anomalies.
      o_auto[i] += (skew < 0.0) ? nl : nr;
    }
  }
  std::vector<double> score(n);
  for (size_t i = 0; i < n; ++i) {
    score[i] = std::max({o_left[i], o_right[i], o_auto[i]});
  }
  return score;
}

namespace {

struct IsoNode {
  int feature = -1;       // -1 marks a leaf.
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  int size = 0;           // Samples reaching this node (leaves only).
};

/// One isolation tree over the rows of x listed in `items`.
class IsoTree {
 public:
  IsoTree(const Matrix& x, std::vector<int> items, int max_depth, Rng* rng) {
    root_ = BuildNode(x, std::move(items), 0, max_depth, rng);
  }

  double PathLength(const Matrix& x, int row) const {
    int node = root_;
    double depth = 0.0;
    while (nodes_[node].feature >= 0) {
      node = x(row, nodes_[node].feature) < nodes_[node].threshold
                 ? nodes_[node].left
                 : nodes_[node].right;
      depth += 1.0;
    }
    return depth + AveragePathLength(nodes_[node].size);
  }

 private:
  int BuildNode(const Matrix& x, std::vector<int> items, int depth,
                int max_depth, Rng* rng) {
    const int id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    if (depth >= max_depth || items.size() <= 1) {
      nodes_[id].size = static_cast<int>(items.size());
      return id;
    }
    // Pick a feature with spread; give up after a few tries (constant data).
    const int d = static_cast<int>(x.cols());
    int feature = -1;
    double lo = 0.0, hi = 0.0;
    for (int attempt = 0; attempt < 8 && feature < 0; ++attempt) {
      const int f = static_cast<int>(rng->UniformInt(
          static_cast<uint64_t>(d)));
      lo = hi = x(items[0], f);
      for (int row : items) {
        lo = std::min(lo, x(row, f));
        hi = std::max(hi, x(row, f));
      }
      if (hi > lo) feature = f;
    }
    if (feature < 0) {
      nodes_[id].size = static_cast<int>(items.size());
      return id;
    }
    const double threshold = rng->Uniform(lo, hi);
    std::vector<int> left_items, right_items;
    for (int row : items) {
      (x(row, feature) < threshold ? left_items : right_items).push_back(row);
    }
    if (left_items.empty() || right_items.empty()) {
      nodes_[id].size = static_cast<int>(items.size());
      return id;
    }
    nodes_[id].feature = feature;
    nodes_[id].threshold = threshold;
    const int left = BuildNode(x, std::move(left_items), depth + 1, max_depth,
                               rng);
    const int right = BuildNode(x, std::move(right_items), depth + 1,
                                max_depth, rng);
    nodes_[id].left = left;
    nodes_[id].right = right;
    return id;
  }

  std::vector<IsoNode> nodes_;
  int root_ = 0;
};

}  // namespace

std::vector<double> IsolationForestFitScore(
    const Matrix& x, const IsolationForestOptions& options) {
  const int n = static_cast<int>(x.rows());
  GRGAD_CHECK_GT(n, 0);
  const int psi = std::min(options.subsample, n);
  const int max_depth =
      static_cast<int>(std::ceil(std::log2(std::max(2, psi))));
  Rng rng(options.seed);
  std::vector<double> total_path(n, 0.0);
  for (int t = 0; t < options.num_trees; ++t) {
    std::vector<size_t> sample =
        rng.SampleWithoutReplacement(static_cast<size_t>(n),
                                     static_cast<size_t>(psi));
    std::vector<int> items(sample.begin(), sample.end());
    IsoTree tree(x, std::move(items), max_depth, &rng);
    for (int i = 0; i < n; ++i) total_path[i] += tree.PathLength(x, i);
  }
  const double c = AveragePathLength(psi);
  std::vector<double> score(n);
  for (int i = 0; i < n; ++i) {
    const double mean_path = total_path[i] / options.num_trees;
    score[i] = std::pow(2.0, -mean_path / std::max(c, 1e-12));
  }
  return score;
}

namespace {

/// Sorted intersection of the closed neighborhoods of u and v.
std::vector<int> ClosedNeighborhoodOverlap(const Graph& g, int u, int v) {
  auto nu = g.Neighbors(u);
  auto nv = g.Neighbors(v);
  std::vector<int> cu(nu.begin(), nu.end());
  std::vector<int> cv(nv.begin(), nv.end());
  cu.insert(std::lower_bound(cu.begin(), cu.end(), u), u);
  cv.insert(std::lower_bound(cv.begin(), cv.end(), v), v);
  std::vector<int> overlap;
  std::set_intersection(cu.begin(), cu.end(), cv.begin(), cv.end(),
                        std::back_inserter(overlap));
  return overlap;
}

/// Number of edges of g inside `nodes` (sorted).
int EdgesWithin(const Graph& g, const std::vector<int>& nodes) {
  int count = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    auto nb = g.Neighbors(nodes[i]);
    for (int w : nb) {
      if (w > nodes[i] &&
          std::binary_search(nodes.begin(), nodes.end(), w)) {
        ++count;
      }
    }
  }
  return count;
}

}  // namespace

std::vector<double> GraphSnnEdgeWeights(const Graph& g, double lambda) {
  const auto edges = g.Edges();
  std::vector<double> weights(edges.size(), 0.0);
  for (size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    const std::vector<int> overlap = ClosedNeighborhoodOverlap(g, u, v);
    const double nv = static_cast<double>(overlap.size());
    if (nv < 2.0) continue;  // Denominator |V|*(|V|-1) undefined/zero.
    const double ne = EdgesWithin(g, overlap);
    weights[e] = ne / (nv * (nv - 1.0)) * std::pow(nv, lambda);
  }
  return weights;
}

}  // namespace grgad::reference
