// Isolation Forest (Liu, Ting & Zhou, 2008).
#ifndef GRGAD_OD_IFOREST_H_
#define GRGAD_OD_IFOREST_H_

#include "src/od/detector.h"

namespace grgad {

/// Isolation-forest hyperparameters.
struct IsolationForestOptions {
  int num_trees = 100;
  int subsample = 256;  ///< Clamped to the sample count.
  uint64_t seed = 7;
};

/// Isolation-forest detector. Score = 2^(-E[path length]/c(psi)), in (0, 1),
/// higher = easier to isolate = more anomalous.
class IsolationForest : public OutlierDetector {
 public:
  explicit IsolationForest(IsolationForestOptions options = {})
      : options_(options) {}
  std::vector<double> FitScore(const Matrix& x) override;
  std::string Name() const override { return "iforest"; }

 private:
  IsolationForestOptions options_;
};

/// Average unsuccessful-search path length c(n) of a BST (normalizer).
double AveragePathLength(int n);

}  // namespace grgad

#endif  // GRGAD_OD_IFOREST_H_
