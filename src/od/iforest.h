// Isolation Forest (Liu, Ting & Zhou, 2008).
//
// Trees are grown from independent per-tree RNG streams derived from
// options.seed (a SplitMix64-style mix of seed and tree id), so tree
// construction is embarrassingly parallel and the result is identical
// whether trees are built serially (scoring fast path off) or across the
// pool (fast path on). Scoring accumulates each sample's path lengths over
// trees in ascending tree order, so it too is bitwise reproducible across
// runs and GRGAD_THREADS. Note: the per-tree streams change the forest (and
// therefore the scores) relative to the pre-scoring-stage implementation,
// which threaded ONE sequential stream through all trees and could not
// parallelize; that original is frozen verbatim in
// src/od/reference_detectors.h as the benchmark baseline.
#ifndef GRGAD_OD_IFOREST_H_
#define GRGAD_OD_IFOREST_H_

#include "src/od/detector.h"

namespace grgad {

/// Isolation-forest hyperparameters.
struct IsolationForestOptions {
  int num_trees = 100;
  int subsample = 256;  ///< Clamped to the sample count.
  uint64_t seed = 7;
};

/// Isolation-forest detector. Score = 2^(-E[path length]/c(psi)), in (0, 1),
/// higher = easier to isolate = more anomalous.
class IsolationForest : public OutlierDetector {
 public:
  explicit IsolationForest(IsolationForestOptions options = {})
      : options_(options) {}
  std::vector<double> FitScore(const Matrix& x) override;
  std::string Name() const override { return "iforest"; }

 private:
  IsolationForestOptions options_;
};

/// Average unsuccessful-search path length c(n) of a BST (normalizer).
double AveragePathLength(int n);

}  // namespace grgad

#endif  // GRGAD_OD_IFOREST_H_
