// Shared k-nearest-neighbor index for the scoring stage.
//
// Every distance-based detector (kNN, LOF) and the rank-average ensemble
// need the same thing from the group embeddings: each row's k nearest other
// rows with their distances. The seed implementations each recomputed the
// full O(n²·d) pairwise matrix from scratch — twice per kNN/LOF FitScore,
// paid again by the ensemble through its LOF member — instead of sharing
// one computation. A NeighborIndex is built once per scoring call and
// shared: detectors that need k' <= k neighbors read a prefix of each row
// (rows are sorted ascending by (distance, id), so the first k' entries of
// a k-index are exactly the k'-index).
//
// Construction is the scoring tentpole's hot path. With the scoring fast
// path enabled (src/util/fastpath.h), distances come from the identity
// ‖xᵢ−xⱼ‖² = ‖xᵢ‖² + ‖xⱼ‖² − 2·xᵢ·xⱼ via the register-tiled MatMul,
// streamed in row panels so large n never materializes an n×n matrix, with
// per-row partial selection parallelized over the pool. With it disabled,
// the seed-shaped scalar distance matrix feeds the same selection. Both
// paths use the seed's deterministic tie-break (distance, then id) and are
// bitwise reproducible across runs and GRGAD_THREADS; fast-path distances
// differ from seed-path distances only in FP contraction (rank-level
// contract, see PERF.md "Scoring stage").
#ifndef GRGAD_OD_NEIGHBOR_INDEX_H_
#define GRGAD_OD_NEIGHBOR_INDEX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/tensor/matrix.h"

namespace grgad {

/// k nearest other rows per row, ascending (distance, id). Flat n×k layout.
struct NeighborIndex {
  int n = 0;  ///< Rows indexed.
  int k = 0;  ///< Neighbors stored per row (>= every consumer's k).
  std::vector<int> ids;       ///< n*k neighbor row ids.
  std::vector<double> dists;  ///< n*k Euclidean distances, ascending per row.

  /// pos-th nearest neighbor of row i (pos in [0, k)).
  int Neighbor(int i, int pos) const { return ids[static_cast<size_t>(i) * k + pos]; }
  /// Distance to the pos-th nearest neighbor of row i.
  double Distance(int i, int pos) const {
    return dists[static_cast<size_t>(i) * k + pos];
  }
  bool empty() const { return n == 0; }
};

/// Builds the index over the rows of x (n >= 2; k clamped to n-1). Routes
/// through the GEMM panel path or the seed scalar path per the scoring
/// fast-path switch. Exactly one distance sweep either way.
NeighborIndex BuildNeighborIndex(const Matrix& x, int k);

/// Selection-only constructor from a precomputed full distance matrix
/// (n x n, zero diagonal) — the seed path, and the overload that lets
/// callers holding a distance matrix avoid recomputing it. Serial; performs
/// no distance sweep.
NeighborIndex NeighborIndexFromDistances(const Matrix& d, int k);

namespace internal {

/// Streams the pairwise-distance matrix of x in row panels: sink(i0, rows,
/// panel) receives distances for rows [i0, i0+rows) as the first `rows`
/// rows of `panel` (each row length n, sqrt'ed, diagonal zeroed). Fast-path
/// machinery shared by BuildNeighborIndex and PairwiseDistances; does not
/// touch the sweep counter.
void ForEachDistancePanel(
    const Matrix& x,
    const std::function<void(size_t i0, size_t rows, const Matrix& panel)>&
        sink);

/// Number of full pairwise-distance computations (full-matrix or panel
/// sweep) since the last reset. kNN and LOF must perform exactly one per
/// FitScore on either path; tests/scoring_determinism_test.cc enforces it.
uint64_t DistanceSweeps();
void ResetDistanceSweeps();
void CountDistanceSweep();

}  // namespace internal

}  // namespace grgad

#endif  // GRGAD_OD_NEIGHBOR_INDEX_H_
