#include "src/od/iforest.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/rng.h"

namespace grgad {

double AveragePathLength(int n) {
  if (n <= 1) return 0.0;
  if (n == 2) return 1.0;
  const double h = std::log(n - 1.0) + 0.5772156649015329;  // Harmonic approx.
  return 2.0 * h - 2.0 * (n - 1.0) / n;
}

namespace {

struct IsoNode {
  int feature = -1;       // -1 marks a leaf.
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  int size = 0;           // Samples reaching this node (leaves only).
};

/// One isolation tree over the rows of x listed in `items`.
class IsoTree {
 public:
  IsoTree(const Matrix& x, std::vector<int> items, int max_depth, Rng* rng) {
    root_ = BuildNode(x, std::move(items), 0, max_depth, rng);
  }

  double PathLength(const Matrix& x, int row) const {
    int node = root_;
    double depth = 0.0;
    while (nodes_[node].feature >= 0) {
      node = x(row, nodes_[node].feature) < nodes_[node].threshold
                 ? nodes_[node].left
                 : nodes_[node].right;
      depth += 1.0;
    }
    return depth + AveragePathLength(nodes_[node].size);
  }

 private:
  int BuildNode(const Matrix& x, std::vector<int> items, int depth,
                int max_depth, Rng* rng) {
    const int id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    if (depth >= max_depth || items.size() <= 1) {
      nodes_[id].size = static_cast<int>(items.size());
      return id;
    }
    // Pick a feature with spread; give up after a few tries (constant data).
    const int d = static_cast<int>(x.cols());
    int feature = -1;
    double lo = 0.0, hi = 0.0;
    for (int attempt = 0; attempt < 8 && feature < 0; ++attempt) {
      const int f = static_cast<int>(rng->UniformInt(
          static_cast<uint64_t>(d)));
      lo = hi = x(items[0], f);
      for (int row : items) {
        lo = std::min(lo, x(row, f));
        hi = std::max(hi, x(row, f));
      }
      if (hi > lo) feature = f;
    }
    if (feature < 0) {
      nodes_[id].size = static_cast<int>(items.size());
      return id;
    }
    const double threshold = rng->Uniform(lo, hi);
    std::vector<int> left_items, right_items;
    for (int row : items) {
      (x(row, feature) < threshold ? left_items : right_items).push_back(row);
    }
    if (left_items.empty() || right_items.empty()) {
      nodes_[id].size = static_cast<int>(items.size());
      return id;
    }
    nodes_[id].feature = feature;
    nodes_[id].threshold = threshold;
    const int left = BuildNode(x, std::move(left_items), depth + 1, max_depth,
                               rng);
    const int right = BuildNode(x, std::move(right_items), depth + 1,
                                max_depth, rng);
    nodes_[id].left = left;
    nodes_[id].right = right;
    return id;
  }

  std::vector<IsoNode> nodes_;
  int root_ = 0;
};

}  // namespace

std::vector<double> IsolationForest::FitScore(const Matrix& x) {
  const int n = static_cast<int>(x.rows());
  GRGAD_CHECK_GT(n, 0);
  const int psi = std::min(options_.subsample, n);
  const int max_depth =
      static_cast<int>(std::ceil(std::log2(std::max(2, psi))));
  Rng rng(options_.seed);
  std::vector<double> total_path(n, 0.0);
  for (int t = 0; t < options_.num_trees; ++t) {
    std::vector<size_t> sample =
        rng.SampleWithoutReplacement(static_cast<size_t>(n),
                                     static_cast<size_t>(psi));
    std::vector<int> items(sample.begin(), sample.end());
    IsoTree tree(x, std::move(items), max_depth, &rng);
    for (int i = 0; i < n; ++i) total_path[i] += tree.PathLength(x, i);
  }
  const double c = AveragePathLength(psi);
  std::vector<double> score(n);
  for (int i = 0; i < n; ++i) {
    const double mean_path = total_path[i] / options_.num_trees;
    score[i] = std::pow(2.0, -mean_path / std::max(c, 1e-12));
  }
  return score;
}

}  // namespace grgad
