#include "src/od/iforest.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/util/check.h"
#include "src/util/fastpath.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace grgad {

double AveragePathLength(int n) {
  if (n <= 1) return 0.0;
  if (n == 2) return 1.0;
  const double h = std::log(n - 1.0) + 0.5772156649015329;  // Harmonic approx.
  return 2.0 * h - 2.0 * (n - 1.0) / n;
}

namespace {

struct IsoNode {
  int feature = -1;       // -1 marks a leaf.
  double threshold = 0.0;
  int left = -1;
  int right = -1;
  int size = 0;           // Samples reaching this node (leaves only).
};

/// One isolation tree over the rows of x listed in `items`.
class IsoTree {
 public:
  IsoTree(const Matrix& x, std::vector<int> items, int max_depth, Rng* rng) {
    root_ = BuildNode(x, std::move(items), 0, max_depth, rng);
  }

  double PathLength(const Matrix& x, int row) const {
    int node = root_;
    double depth = 0.0;
    while (nodes_[node].feature >= 0) {
      node = x(row, nodes_[node].feature) < nodes_[node].threshold
                 ? nodes_[node].left
                 : nodes_[node].right;
      depth += 1.0;
    }
    return depth + AveragePathLength(nodes_[node].size);
  }

 private:
  int BuildNode(const Matrix& x, std::vector<int> items, int depth,
                int max_depth, Rng* rng) {
    const int id = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    if (depth >= max_depth || items.size() <= 1) {
      nodes_[id].size = static_cast<int>(items.size());
      return id;
    }
    // Pick a feature with spread; give up after a few tries (constant data).
    const int d = static_cast<int>(x.cols());
    int feature = -1;
    double lo = 0.0, hi = 0.0;
    for (int attempt = 0; attempt < 8 && feature < 0; ++attempt) {
      const int f = static_cast<int>(rng->UniformInt(
          static_cast<uint64_t>(d)));
      lo = hi = x(items[0], f);
      for (int row : items) {
        lo = std::min(lo, x(row, f));
        hi = std::max(hi, x(row, f));
      }
      if (hi > lo) feature = f;
    }
    if (feature < 0) {
      nodes_[id].size = static_cast<int>(items.size());
      return id;
    }
    const double threshold = rng->Uniform(lo, hi);
    std::vector<int> left_items, right_items;
    for (int row : items) {
      (x(row, feature) < threshold ? left_items : right_items).push_back(row);
    }
    if (left_items.empty() || right_items.empty()) {
      nodes_[id].size = static_cast<int>(items.size());
      return id;
    }
    nodes_[id].feature = feature;
    nodes_[id].threshold = threshold;
    const int left = BuildNode(x, std::move(left_items), depth + 1, max_depth,
                               rng);
    const int right = BuildNode(x, std::move(right_items), depth + 1,
                                max_depth, rng);
    nodes_[id].left = left;
    nodes_[id].right = right;
    return id;
  }

  std::vector<IsoNode> nodes_;
  int root_ = 0;
};

/// Independent per-tree stream: a fixed odd-multiplier mix of (seed, t),
/// expanded by the Rng's own SplitMix64 seeding. Tree t's draws never
/// depend on how many draws tree t-1 consumed, which is what makes the
/// build order (serial or pool-parallel) irrelevant to the result.
uint64_t TreeSeed(uint64_t seed, int t) {
  return seed + 0x9E3779B97F4A7C15ull * static_cast<uint64_t>(t + 1);
}

}  // namespace

std::vector<double> IsolationForest::FitScore(const Matrix& x) {
  const int n = static_cast<int>(x.rows());
  GRGAD_CHECK_GT(n, 0);
  const int psi = std::min(options_.subsample, n);
  const int max_depth =
      static_cast<int>(std::ceil(std::log2(std::max(2, psi))));
  const int num_trees = options_.num_trees;
  std::vector<std::unique_ptr<IsoTree>> trees(num_trees);
  auto build_tree = [&](int t) {
    Rng rng(TreeSeed(options_.seed, t));
    std::vector<size_t> sample =
        rng.SampleWithoutReplacement(static_cast<size_t>(n),
                                     static_cast<size_t>(psi));
    std::vector<int> items(sample.begin(), sample.end());
    trees[t] = std::make_unique<IsoTree>(x, std::move(items), max_depth,
                                         &rng);
  };
  // Per-sample path sums. Tree-outer within each row chunk keeps one tree's
  // nodes cache-resident across the chunk (row-outer cycles every tree
  // through cache per row and measures ~25% slower); each sample still
  // accumulates its terms in ascending tree order whatever the chunking, so
  // scores are bitwise reproducible across GRGAD_THREADS and match the
  // serial loop.
  std::vector<double> total_path(n, 0.0);
  auto score_rows = [&](size_t begin, size_t end) {
    for (int t = 0; t < num_trees; ++t) {
      const IsoTree& tree = *trees[t];
      for (size_t i = begin; i < end; ++i) {
        total_path[i] += tree.PathLength(x, static_cast<int>(i));
      }
    }
  };
  if (ScoringFastPathEnabled()) {
    ParallelFor(num_trees, 1, [&](size_t begin, size_t end) {
      for (size_t t = begin; t < end; ++t) build_tree(static_cast<int>(t));
    });
    ParallelFor(n, 16, score_rows);
  } else {
    for (int t = 0; t < num_trees; ++t) build_tree(t);
    score_rows(0, static_cast<size_t>(n));
  }
  const double c = AveragePathLength(psi);
  std::vector<double> score(n);
  for (int i = 0; i < n; ++i) {
    const double mean_path = total_path[i] / num_trees;
    score[i] = std::pow(2.0, -mean_path / std::max(c, 1e-12));
  }
  return score;
}

}  // namespace grgad
