// Compressed-sparse-row matrix.
//
// Graph operators (normalized adjacency, standardized powers, GraphSNN
// weights, modularity projections) are all CSR SparseMatrix instances; the
// GCN layers consume them through Spmm. Construction goes through triplets
// (sorted and duplicate-summed), after which the matrix is immutable except
// for value-scaling helpers used by the normalizers.
#ifndef GRGAD_TENSOR_SPARSE_H_
#define GRGAD_TENSOR_SPARSE_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/tensor/matrix.h"

namespace grgad {

/// One (row, col, value) entry used to build a SparseMatrix.
struct Triplet {
  int row = 0;
  int col = 0;
  double value = 0.0;
};

/// Immutable CSR matrix of doubles.
class SparseMatrix {
 public:
  /// Empty 0x0 matrix.
  SparseMatrix() : rows_(0), cols_(0), row_ptr_(1, 0) {}

  // Copies share no state; the lazily built transpose cache stays behind
  // (value-scaling helpers mutate the copy right after copying, which would
  // invalidate it). Moves keep the cache: the source is abandoned.
  SparseMatrix(const SparseMatrix& other)
      : rows_(other.rows_),
        cols_(other.cols_),
        row_ptr_(other.row_ptr_),
        col_idx_(other.col_idx_),
        values_(other.values_) {}
  SparseMatrix& operator=(const SparseMatrix& other);
  SparseMatrix(SparseMatrix&& other) noexcept
      : rows_(other.rows_),
        cols_(other.cols_),
        row_ptr_(std::move(other.row_ptr_)),
        col_idx_(std::move(other.col_idx_)),
        values_(std::move(other.values_)),
        transpose_cache_(std::move(other.transpose_cache_)) {}
  SparseMatrix& operator=(SparseMatrix&& other) noexcept;

  /// Builds from triplets; duplicates are summed, zeros (after summing) are
  /// kept (callers that care can Prune). Indices must be in range.
  static SparseMatrix FromTriplets(size_t rows, size_t cols,
                                   std::vector<Triplet> triplets);

  /// n x n identity.
  static SparseMatrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// Column indices of row i, ascending.
  std::span<const int> RowCols(size_t i) const {
    GRGAD_DCHECK(i < rows_);
    return {col_idx_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }
  /// Values of row i, aligned with RowCols(i).
  std::span<const double> RowValues(size_t i) const {
    GRGAD_DCHECK(i < rows_);
    return {values_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }
  /// Number of stored entries in row i.
  size_t RowNnz(size_t i) const {
    GRGAD_DCHECK(i < rows_);
    return row_ptr_[i + 1] - row_ptr_[i];
  }

  /// Value at (i, j); 0 if not stored. O(log nnz(row)).
  double At(size_t i, size_t j) const;

  /// Sparse * dense -> dense (rows x dense.cols()); parallel over rows.
  Matrix Spmm(const Matrix& dense) const;

  /// Destination-passing Spmm: writes this * dense into `out` (must be
  /// rows() x dense.cols(); stale contents are cleared first). Bitwise
  /// identical to Spmm; lets arena-backed callers reuse the output buffer.
  void SpmmInto(const Matrix& dense, Matrix* out) const;

  /// this^T * dense -> dense (cols x dense.cols()); used by autograd backward
  /// of Spmm. Runs as a row-parallel gather over a transposed copy of this
  /// matrix that is built once (thread-safely) on first call and reused —
  /// graph operators are fixed across training, so every epoch after the
  /// first pays only the Spmm. The gather visits source rows in ascending
  /// order per output row, exactly the seed scatter's accumulation order, so
  /// results are bitwise identical to the serial reference kernel.
  Matrix SpmmTransposeThis(const Matrix& dense) const;

  /// Destination-passing SpmmTransposeThis: writes this^T * dense into
  /// `out` (must be cols() x dense.cols(); stale contents are cleared
  /// first). Bitwise identical to SpmmTransposeThis.
  void SpmmTransposeThisInto(const Matrix& dense, Matrix* out) const;

  /// Transposed copy (CSR of the transpose); O(nnz + rows + cols) counting
  /// sort, no triplet round-trip.
  SparseMatrix Transpose() const;

  /// Dense copy; intended for tests and small matrices.
  Matrix ToDense() const;

  /// Sum of each row, length rows().
  std::vector<double> RowSums() const;

  /// Returns a copy whose rows are L1-normalized (zero rows left as zero).
  SparseMatrix RowNormalized() const;

  /// Returns a copy scaled so the largest |value| is 1 (no-op when empty).
  SparseMatrix MaxNormalized() const;

  /// Returns a copy with entries |v| <= eps removed.
  SparseMatrix Pruned(double eps) const;

  /// Returns a copy with every stored value multiplied by s.
  SparseMatrix Scaled(double s) const;

  bool ApproxEquals(const SparseMatrix& other, double tol = 1e-9) const;

 private:
  /// Returns the cached transpose, building it under cache_mu_ if absent.
  const SparseMatrix& TransposedView() const;

  /// Gather kernels accumulating into an already-zeroed output.
  void SpmmIntoPrezeroed(const Matrix& dense, Matrix* out) const;
  void SpmmTransposeThisIntoPrezeroed(const Matrix& dense, Matrix* out) const;

  size_t rows_;
  size_t cols_;
  std::vector<size_t> row_ptr_;  // length rows_ + 1
  std::vector<int> col_idx_;     // length nnz
  std::vector<double> values_;   // length nnz

  // Lazily built CSR of the transpose, serving SpmmTransposeThis. Guarded by
  // cache_mu_; never copied (see copy constructor).
  mutable std::mutex cache_mu_;
  mutable std::shared_ptr<const SparseMatrix> transpose_cache_;

  friend SparseMatrix MatMulSparse(const SparseMatrix&, const SparseMatrix&,
                                   double);
};

/// Sparse a(m x k) * b(k x n) -> sparse, dropping |v| <= prune_eps results.
/// Used to form standardized adjacency powers A^k.
SparseMatrix MatMulSparse(const SparseMatrix& a, const SparseMatrix& b,
                          double prune_eps = 0.0);

}  // namespace grgad

#endif  // GRGAD_TENSOR_SPARSE_H_
