#include "src/tensor/sparse.h"

#include <algorithm>
#include <cmath>

#include "src/util/parallel.h"

namespace grgad {

SparseMatrix SparseMatrix::FromTriplets(size_t rows, size_t cols,
                                        std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    GRGAD_CHECK(t.row >= 0 && static_cast<size_t>(t.row) < rows);
    GRGAD_CHECK(t.col >= 0 && static_cast<size_t>(t.col) < cols);
  }
  const auto row_col_less = [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  };
  // Producers like MatMulSparse and Transpose emit in (row, col) order
  // already; skip the O(nnz log nnz) sort for them.
  if (!std::is_sorted(triplets.begin(), triplets.end(), row_col_less)) {
    std::sort(triplets.begin(), triplets.end(), row_col_less);
  }
  SparseMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.row_ptr_.assign(rows + 1, 0);
  out.col_idx_.reserve(triplets.size());
  out.values_.reserve(triplets.size());
  size_t i = 0;
  while (i < triplets.size()) {
    const int r = triplets[i].row;
    const int c = triplets[i].col;
    double v = 0.0;
    while (i < triplets.size() && triplets[i].row == r &&
           triplets[i].col == c) {
      v += triplets[i].value;
      ++i;
    }
    out.col_idx_.push_back(c);
    out.values_.push_back(v);
    out.row_ptr_[r + 1] = out.col_idx_.size();
  }
  // row_ptr entries for empty trailing rows: make cumulative.
  for (size_t r = 1; r <= rows; ++r) {
    out.row_ptr_[r] = std::max(out.row_ptr_[r], out.row_ptr_[r - 1]);
  }
  return out;
}

SparseMatrix& SparseMatrix::operator=(const SparseMatrix& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_ptr_ = other.row_ptr_;
  col_idx_ = other.col_idx_;
  values_ = other.values_;
  transpose_cache_.reset();  // See the copy constructor.
  return *this;
}

SparseMatrix& SparseMatrix::operator=(SparseMatrix&& other) noexcept {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  row_ptr_ = std::move(other.row_ptr_);
  col_idx_ = std::move(other.col_idx_);
  values_ = std::move(other.values_);
  transpose_cache_ = std::move(other.transpose_cache_);
  return *this;
}

SparseMatrix SparseMatrix::Identity(size_t n) {
  std::vector<Triplet> t;
  t.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    t.push_back({static_cast<int>(i), static_cast<int>(i), 1.0});
  }
  return FromTriplets(n, n, std::move(t));
}

double SparseMatrix::At(size_t i, size_t j) const {
  GRGAD_DCHECK(i < rows_ && j < cols_);
  auto cols = RowCols(i);
  auto it = std::lower_bound(cols.begin(), cols.end(), static_cast<int>(j));
  if (it == cols.end() || *it != static_cast<int>(j)) return 0.0;
  return values_[row_ptr_[i] + (it - cols.begin())];
}

Matrix SparseMatrix::Spmm(const Matrix& dense) const {
  GRGAD_CHECK_EQ(cols_, dense.rows());
  Matrix out(rows_, dense.cols());
  SpmmIntoPrezeroed(dense, &out);
  return out;
}

void SparseMatrix::SpmmInto(const Matrix& dense, Matrix* out) const {
  GRGAD_CHECK_EQ(cols_, dense.rows());
  GRGAD_CHECK(out != nullptr && out->rows() == rows_ &&
              out->cols() == dense.cols());
  out->Fill(0.0);
  SpmmIntoPrezeroed(dense, out);
}

/// Row-parallel CSR gather accumulating into a zeroed `out`.
void SparseMatrix::SpmmIntoPrezeroed(const Matrix& dense, Matrix* out) const {
  const size_t n = dense.cols();
  ParallelFor(rows_, 256, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double* __restrict orow = out->RowPtr(i);
      for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
        const double v = values_[p];
        const double* __restrict drow = dense.RowPtr(col_idx_[p]);
        for (size_t j = 0; j < n; ++j) orow[j] += v * drow[j];
      }
    }
  });
}

const SparseMatrix& SparseMatrix::TransposedView() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (!transpose_cache_) {
    transpose_cache_ = std::make_shared<const SparseMatrix>(Transpose());
  }
  return *transpose_cache_;
}

Matrix SparseMatrix::SpmmTransposeThis(const Matrix& dense) const {
  GRGAD_CHECK_EQ(rows_, dense.rows());
  // Two kernels, one accumulation order. With parallelism available, gather
  // over the cached transpose: output rows partition across the pool (the
  // scatter direction cannot parallelize without atomics) and the transpose
  // builds once per operator, then amortizes across training epochs. With a
  // single lane, the seed's serial scatter wins: its random accesses are
  // stores, which the store buffer retires off the critical path, while the
  // gather's random loads stall the FMA chain. Both visit each output
  // element's terms in ascending source-row order, so the choice (and the
  // thread count) never changes results bitwise.
  Matrix out(cols_, dense.cols());
  SpmmTransposeThisIntoPrezeroed(dense, &out);
  return out;
}

void SparseMatrix::SpmmTransposeThisInto(const Matrix& dense,
                                         Matrix* out) const {
  GRGAD_CHECK_EQ(rows_, dense.rows());
  GRGAD_CHECK(out != nullptr && out->rows() == cols_ &&
              out->cols() == dense.cols());
  out->Fill(0.0);
  SpmmTransposeThisIntoPrezeroed(dense, out);
}

/// Kernel choice and accumulation order documented at SpmmTransposeThis.
void SparseMatrix::SpmmTransposeThisIntoPrezeroed(const Matrix& dense,
                                                  Matrix* out) const {
  if (ParallelismDegree() > 1) {
    TransposedView().SpmmIntoPrezeroed(dense, out);
    return;
  }
  const size_t n = dense.cols();
  for (size_t i = 0; i < rows_; ++i) {
    const double* __restrict drow = dense.RowPtr(i);
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      const double v = values_[p];
      double* __restrict orow = out->RowPtr(col_idx_[p]);
      for (size_t j = 0; j < n; ++j) orow[j] += v * drow[j];
    }
  }
}

SparseMatrix SparseMatrix::Transpose() const {
  SparseMatrix out;
  out.rows_ = cols_;
  out.cols_ = rows_;
  out.row_ptr_.assign(cols_ + 1, 0);
  out.col_idx_.resize(nnz());
  out.values_.resize(nnz());
  // Counting sort by destination row. Source entries are visited in (row,
  // col) order, so each destination row receives its columns (= source rows)
  // in ascending order — a valid CSR without any sort or duplicate merge.
  for (int c : col_idx_) ++out.row_ptr_[c + 1];
  for (size_t r = 1; r <= cols_; ++r) out.row_ptr_[r] += out.row_ptr_[r - 1];
  std::vector<size_t> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      const size_t q = cursor[col_idx_[p]]++;
      out.col_idx_[q] = static_cast<int>(i);
      out.values_[q] = values_[p];
    }
  }
  return out;
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      out(i, col_idx_[p]) += values_[p];
    }
  }
  return out;
}

std::vector<double> SparseMatrix::RowSums() const {
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      out[i] += values_[p];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::RowNormalized() const {
  SparseMatrix out = *this;
  for (size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      s += std::fabs(values_[p]);
    }
    if (s <= 0.0) continue;
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      out.values_[p] /= s;
    }
  }
  return out;
}

SparseMatrix SparseMatrix::MaxNormalized() const {
  double m = 0.0;
  for (double v : values_) m = std::max(m, std::fabs(v));
  if (m <= 0.0) return *this;
  return Scaled(1.0 / m);
}

SparseMatrix SparseMatrix::Pruned(double eps) const {
  std::vector<Triplet> t;
  t.reserve(nnz());
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      if (std::fabs(values_[p]) > eps) {
        t.push_back({static_cast<int>(i), col_idx_[p], values_[p]});
      }
    }
  }
  return FromTriplets(rows_, cols_, std::move(t));
}

SparseMatrix SparseMatrix::Scaled(double s) const {
  SparseMatrix out = *this;
  for (double& v : out.values_) v *= s;
  return out;
}

bool SparseMatrix::ApproxEquals(const SparseMatrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  // Compare as dense logic without materializing: both are sorted CSR, but
  // may differ in explicit zeros; walk rows merging indices.
  for (size_t i = 0; i < rows_; ++i) {
    auto ac = RowCols(i);
    auto av = RowValues(i);
    auto bc = other.RowCols(i);
    auto bv = other.RowValues(i);
    size_t pa = 0, pb = 0;
    while (pa < ac.size() || pb < bc.size()) {
      int ca = pa < ac.size() ? ac[pa] : INT32_MAX;
      int cb = pb < bc.size() ? bc[pb] : INT32_MAX;
      double va = 0.0, vb = 0.0;
      if (ca <= cb) va = av[pa++];
      if (cb <= ca) vb = bv[pb++];
      if (std::fabs(va - vb) > tol) return false;
    }
  }
  return true;
}

SparseMatrix MatMulSparse(const SparseMatrix& a, const SparseMatrix& b,
                          double prune_eps) {
  GRGAD_CHECK_EQ(a.cols(), b.rows());
  // Gustavson's algorithm with a dense accumulator per row. An explicit
  // `seen` mask marks touched columns: the seed keyed on acc[j] == 0.0, which
  // re-pushed a column whose partial sum transiently cancelled to zero and
  // emitted it twice. Sorting `touched` per row yields globally (row, col)
  // sorted triplets, so FromTriplets skips its sort.
  std::vector<Triplet> out;
  out.reserve(a.nnz() + b.nnz());
  std::vector<double> acc(b.cols(), 0.0);
  std::vector<uint8_t> seen(b.cols(), 0);
  std::vector<int> touched;
  for (size_t i = 0; i < a.rows(); ++i) {
    touched.clear();
    auto acols = a.RowCols(i);
    auto avals = a.RowValues(i);
    for (size_t p = 0; p < acols.size(); ++p) {
      const int k = acols[p];
      const double av = avals[p];
      auto bcols = b.RowCols(k);
      auto bvals = b.RowValues(k);
      for (size_t q = 0; q < bcols.size(); ++q) {
        const int j = bcols[q];
        if (!seen[j]) {
          seen[j] = 1;
          touched.push_back(j);
        }
        acc[j] += av * bvals[q];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (int j : touched) {
      if (std::fabs(acc[j]) > prune_eps) {
        out.push_back({static_cast<int>(i), j, acc[j]});
      }
      acc[j] = 0.0;
      seen[j] = 0;
    }
  }
  return SparseMatrix::FromTriplets(a.rows(), b.cols(), std::move(out));
}

}  // namespace grgad
