#include "src/tensor/sparse.h"

#include <algorithm>
#include <cmath>

#include "src/util/parallel.h"

namespace grgad {

SparseMatrix SparseMatrix::FromTriplets(size_t rows, size_t cols,
                                        std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    GRGAD_CHECK(t.row >= 0 && static_cast<size_t>(t.row) < rows);
    GRGAD_CHECK(t.col >= 0 && static_cast<size_t>(t.col) < cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  SparseMatrix out;
  out.rows_ = rows;
  out.cols_ = cols;
  out.row_ptr_.assign(rows + 1, 0);
  out.col_idx_.reserve(triplets.size());
  out.values_.reserve(triplets.size());
  size_t i = 0;
  while (i < triplets.size()) {
    const int r = triplets[i].row;
    const int c = triplets[i].col;
    double v = 0.0;
    while (i < triplets.size() && triplets[i].row == r &&
           triplets[i].col == c) {
      v += triplets[i].value;
      ++i;
    }
    out.col_idx_.push_back(c);
    out.values_.push_back(v);
    out.row_ptr_[r + 1] = out.col_idx_.size();
  }
  // row_ptr entries for empty trailing rows: make cumulative.
  for (size_t r = 1; r <= rows; ++r) {
    out.row_ptr_[r] = std::max(out.row_ptr_[r], out.row_ptr_[r - 1]);
  }
  return out;
}

SparseMatrix SparseMatrix::Identity(size_t n) {
  std::vector<Triplet> t;
  t.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    t.push_back({static_cast<int>(i), static_cast<int>(i), 1.0});
  }
  return FromTriplets(n, n, std::move(t));
}

double SparseMatrix::At(size_t i, size_t j) const {
  GRGAD_DCHECK(i < rows_ && j < cols_);
  auto cols = RowCols(i);
  auto it = std::lower_bound(cols.begin(), cols.end(), static_cast<int>(j));
  if (it == cols.end() || *it != static_cast<int>(j)) return 0.0;
  return values_[row_ptr_[i] + (it - cols.begin())];
}

Matrix SparseMatrix::Spmm(const Matrix& dense) const {
  GRGAD_CHECK_EQ(cols_, dense.rows());
  const size_t n = dense.cols();
  Matrix out(rows_, n);
  ParallelFor(rows_, 256, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double* orow = out.RowPtr(i);
      for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
        const double v = values_[p];
        const double* drow = dense.RowPtr(col_idx_[p]);
        for (size_t j = 0; j < n; ++j) orow[j] += v * drow[j];
      }
    }
  });
  return out;
}

Matrix SparseMatrix::SpmmTransposeThis(const Matrix& dense) const {
  GRGAD_CHECK_EQ(rows_, dense.rows());
  const size_t n = dense.cols();
  Matrix out(cols_, n);
  for (size_t i = 0; i < rows_; ++i) {
    const double* drow = dense.RowPtr(i);
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      const double v = values_[p];
      double* orow = out.RowPtr(col_idx_[p]);
      for (size_t j = 0; j < n; ++j) orow[j] += v * drow[j];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::Transpose() const {
  std::vector<Triplet> t;
  t.reserve(nnz());
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      t.push_back({col_idx_[p], static_cast<int>(i), values_[p]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(t));
}

Matrix SparseMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      out(i, col_idx_[p]) += values_[p];
    }
  }
  return out;
}

std::vector<double> SparseMatrix::RowSums() const {
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      out[i] += values_[p];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::RowNormalized() const {
  SparseMatrix out = *this;
  for (size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      s += std::fabs(values_[p]);
    }
    if (s <= 0.0) continue;
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      out.values_[p] /= s;
    }
  }
  return out;
}

SparseMatrix SparseMatrix::MaxNormalized() const {
  double m = 0.0;
  for (double v : values_) m = std::max(m, std::fabs(v));
  if (m <= 0.0) return *this;
  return Scaled(1.0 / m);
}

SparseMatrix SparseMatrix::Pruned(double eps) const {
  std::vector<Triplet> t;
  t.reserve(nnz());
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      if (std::fabs(values_[p]) > eps) {
        t.push_back({static_cast<int>(i), col_idx_[p], values_[p]});
      }
    }
  }
  return FromTriplets(rows_, cols_, std::move(t));
}

SparseMatrix SparseMatrix::Scaled(double s) const {
  SparseMatrix out = *this;
  for (double& v : out.values_) v *= s;
  return out;
}

bool SparseMatrix::ApproxEquals(const SparseMatrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  // Compare as dense logic without materializing: both are sorted CSR, but
  // may differ in explicit zeros; walk rows merging indices.
  for (size_t i = 0; i < rows_; ++i) {
    auto ac = RowCols(i);
    auto av = RowValues(i);
    auto bc = other.RowCols(i);
    auto bv = other.RowValues(i);
    size_t pa = 0, pb = 0;
    while (pa < ac.size() || pb < bc.size()) {
      int ca = pa < ac.size() ? ac[pa] : INT32_MAX;
      int cb = pb < bc.size() ? bc[pb] : INT32_MAX;
      double va = 0.0, vb = 0.0;
      if (ca <= cb) va = av[pa++];
      if (cb <= ca) vb = bv[pb++];
      if (std::fabs(va - vb) > tol) return false;
    }
  }
  return true;
}

SparseMatrix MatMulSparse(const SparseMatrix& a, const SparseMatrix& b,
                          double prune_eps) {
  GRGAD_CHECK_EQ(a.cols(), b.rows());
  // Gustavson's algorithm with a dense accumulator per row.
  std::vector<Triplet> out;
  std::vector<double> acc(b.cols(), 0.0);
  std::vector<int> touched;
  for (size_t i = 0; i < a.rows(); ++i) {
    touched.clear();
    auto acols = a.RowCols(i);
    auto avals = a.RowValues(i);
    for (size_t p = 0; p < acols.size(); ++p) {
      const int k = acols[p];
      const double av = avals[p];
      auto bcols = b.RowCols(k);
      auto bvals = b.RowValues(k);
      for (size_t q = 0; q < bcols.size(); ++q) {
        const int j = bcols[q];
        if (acc[j] == 0.0) touched.push_back(j);
        acc[j] += av * bvals[q];
      }
    }
    for (int j : touched) {
      if (std::fabs(acc[j]) > prune_eps) {
        out.push_back({static_cast<int>(i), j, acc[j]});
      }
      acc[j] = 0.0;
    }
  }
  return SparseMatrix::FromTriplets(a.rows(), b.cols(), std::move(out));
}

}  // namespace grgad
