#include "src/tensor/arena.h"

#include <atomic>
#include <cstring>
#include <utility>

#include "src/util/fault.h"

namespace grgad {

namespace {

uint64_t ShapeKey(size_t rows, size_t cols) {
  return (static_cast<uint64_t>(rows) << 32) | static_cast<uint64_t>(cols);
}

thread_local MatrixArena* g_current_arena = nullptr;

std::atomic<bool> g_fast_path{true};

}  // namespace

Matrix MatrixArena::AcquireInternal(size_t rows, size_t cols,
                                    bool zero_fill) {
  const size_t bytes = rows * cols * sizeof(double);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.acquired++;
    stats_.bytes_served += bytes;
    auto it = free_.find(ShapeKey(rows, cols));
    if (it != free_.end() && !it->second.empty()) {
      stats_.reused++;
      Matrix out = std::move(it->second.back());
      it->second.pop_back();
      if (zero_fill) out.Fill(0.0);
      return out;
    }
    stats_.heap_allocs++;
    stats_.heap_bytes += bytes;
    // Budget governor: a breach (or an injected arena/alloc fault) does not
    // fail this allocation — it fires the stop token so the training loop
    // unwinds cleanly at its next poll instead of ever reaching real OOM.
    const bool over_budget =
        byte_budget_ > 0 && stats_.heap_bytes > byte_budget_;
    if ((over_budget || FaultInjector::Global().Fires("arena/alloc")) &&
        !budget_exhausted_) {
      budget_exhausted_ = true;
      if (stop_.has_value()) {
        stop_->RequestStop(StopReason::kResourceExhausted);
      }
    }
  }
  return Matrix(rows, cols);  // Zero-initialized by construction.
}

Matrix MatrixArena::Acquire(size_t rows, size_t cols) {
  return AcquireInternal(rows, cols, /*zero_fill=*/true);
}

Matrix MatrixArena::AcquireUninit(size_t rows, size_t cols) {
  return AcquireInternal(rows, cols, /*zero_fill=*/false);
}

Matrix MatrixArena::AcquireCopy(const Matrix& src) {
  Matrix out = AcquireInternal(src.rows(), src.cols(), /*zero_fill=*/false);
  if (!src.empty()) {
    std::memcpy(out.data(), src.data(), src.size() * sizeof(double));
  }
  return out;
}

void MatrixArena::Release(Matrix&& m) {
  if (m.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  stats_.released++;
  free_[ShapeKey(m.rows(), m.cols())].push_back(std::move(m));
}

void MatrixArena::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  free_.clear();
}

MatrixArena::Stats MatrixArena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MatrixArena::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats();
}

void MatrixArena::SetByteBudget(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_budget_ = bytes;
  budget_exhausted_ = false;
}

uint64_t MatrixArena::byte_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return byte_budget_;
}

void MatrixArena::SetStopToken(CancelToken token) {
  std::lock_guard<std::mutex> lock(mu_);
  stop_ = std::move(token);
}

bool MatrixArena::budget_exhausted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_exhausted_;
}

size_t MatrixArena::free_buffers() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [key, list] : free_) total += list.size();
  return total;
}

int64_t MatrixArena::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(stats_.acquired) -
         static_cast<int64_t>(stats_.released);
}

ArenaScope::ArenaScope(MatrixArena* arena) : prev_(g_current_arena) {
  g_current_arena = arena;
}

ArenaScope::~ArenaScope() { g_current_arena = prev_; }

MatrixArena* CurrentArena() { return g_current_arena; }

namespace arena {

Matrix Zeroed(size_t rows, size_t cols) {
  MatrixArena* a = CurrentArena();
  return a != nullptr ? a->Acquire(rows, cols) : Matrix(rows, cols);
}

Matrix Uninit(size_t rows, size_t cols) {
  MatrixArena* a = CurrentArena();
  return a != nullptr ? a->AcquireUninit(rows, cols) : Matrix(rows, cols);
}

Matrix CopyOf(const Matrix& src) {
  MatrixArena* a = CurrentArena();
  return a != nullptr ? a->AcquireCopy(src) : src;
}

void Recycle(Matrix&& m) {
  MatrixArena* a = CurrentArena();
  if (a != nullptr) a->Release(std::move(m));
}

}  // namespace arena

bool TrainingFastPathEnabled() {
  return g_fast_path.load(std::memory_order_relaxed);
}

bool SetTrainingFastPath(bool enabled) {
  return g_fast_path.exchange(enabled, std::memory_order_relaxed);
}

}  // namespace grgad
