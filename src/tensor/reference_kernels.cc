#include "src/tensor/reference_kernels.h"

namespace grgad::reference {

Matrix MatMul(const Matrix& a, const Matrix& b) {
  GRGAD_CHECK_EQ(a.cols(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix out(m, n);
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a.RowPtr(i);
    double* orow = out.RowPtr(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const double av = arow[kk];
      if (av == 0.0) continue;
      const double* brow = b.RowPtr(kk);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  GRGAD_CHECK_EQ(a.cols(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix out(m, n);
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a.RowPtr(i);
    double* orow = out.RowPtr(i);
    for (size_t j = 0; j < n; ++j) {
      const double* brow = b.RowPtr(j);
      double s = 0.0;
      for (size_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      orow[j] = s;
    }
  }
  return out;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  GRGAD_CHECK_EQ(a.rows(), b.rows());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  Matrix out(m, n);
  for (size_t kk = 0; kk < k; ++kk) {
    const double* arow = a.RowPtr(kk);
    const double* brow = b.RowPtr(kk);
    for (size_t i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out.RowPtr(i);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Matrix Transpose(const Matrix& a) {
  Matrix out(a.cols(), a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const double* src = a.RowPtr(i);
    for (size_t j = 0; j < a.cols(); ++j) out(j, i) = src[j];
  }
  return out;
}

Matrix Spmm(const SparseMatrix& s, const Matrix& dense) {
  GRGAD_CHECK_EQ(s.cols(), dense.rows());
  const size_t n = dense.cols();
  Matrix out(s.rows(), n);
  for (size_t i = 0; i < s.rows(); ++i) {
    double* orow = out.RowPtr(i);
    auto cols = s.RowCols(i);
    auto vals = s.RowValues(i);
    for (size_t p = 0; p < cols.size(); ++p) {
      const double v = vals[p];
      const double* drow = dense.RowPtr(cols[p]);
      for (size_t j = 0; j < n; ++j) orow[j] += v * drow[j];
    }
  }
  return out;
}

Matrix SpmmTransposeThis(const SparseMatrix& s, const Matrix& dense) {
  GRGAD_CHECK_EQ(s.rows(), dense.rows());
  const size_t n = dense.cols();
  Matrix out(s.cols(), n);
  for (size_t i = 0; i < s.rows(); ++i) {
    const double* drow = dense.RowPtr(i);
    auto cols = s.RowCols(i);
    auto vals = s.RowValues(i);
    for (size_t p = 0; p < cols.size(); ++p) {
      const double v = vals[p];
      double* orow = out.RowPtr(cols[p]);
      for (size_t j = 0; j < n; ++j) orow[j] += v * drow[j];
    }
  }
  return out;
}

Matrix Map(const Matrix& a, const std::function<double(double)>& f) {
  Matrix out(a.rows(), a.cols());
  const double* src = a.data();
  double* dst = out.data();
  for (size_t i = 0; i < a.size(); ++i) dst[i] = f(src[i]);
  return out;
}

}  // namespace grgad::reference
