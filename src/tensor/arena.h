// Shape-keyed recycling arena for Matrix buffers.
//
// Training rebuilds a structurally identical autograd tape every epoch, so
// every forward value, gradient, and backward temporary has the same shape
// in epoch k+1 as the buffer that was torn down at the end of epoch k. A
// MatrixArena keeps those torn-down buffers on per-shape free lists and
// hands them back on the next Acquire, making steady-state epochs heap-
// allocation-free: after a short warmup (the first epoch, plus one stray
// buffer in the second as parameter-gradient buffers settle onto their leaf
// nodes) every Acquire is served from a free list.
//
// Threading model: one arena per training run, installed for the training
// thread with an ArenaScope. All members are mutex-guarded, so buffers may
// be acquired/released from any thread, but the intended pattern is a
// single training thread per arena (the tape is built and walked serially;
// only the kernels underneath fan out to the pool, and they never touch the
// arena).
//
// The arena only recycles memory — it never changes values. Acquire()
// returns a zero-filled matrix, exactly like the Matrix(rows, cols)
// constructor it replaces, and AcquireUninit() is reserved for destinations
// that every kernel fully overwrites. Results are therefore bitwise
// identical with and without an arena installed (see PERF.md, "Determinism
// contract").
#ifndef GRGAD_TENSOR_ARENA_H_
#define GRGAD_TENSOR_ARENA_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/cancel.h"

namespace grgad {

/// Recycles Matrix heap buffers across structurally identical training
/// epochs. Free lists are keyed by exact (rows, cols) shape.
class MatrixArena {
 public:
  /// Allocation counters. `heap_allocs` is the figure of merit: in steady
  /// state (every epoch after warmup) it must not grow.
  struct Stats {
    uint64_t acquired = 0;     ///< Total Acquire/AcquireUninit/AcquireCopy.
    uint64_t reused = 0;       ///< Acquires served from a free list.
    uint64_t heap_allocs = 0;  ///< Acquires that had to allocate fresh.
    uint64_t released = 0;     ///< Buffers returned to the arena.
    uint64_t bytes_served = 0; ///< Bytes handed out (fresh + reused).
    uint64_t heap_bytes = 0;   ///< Bytes of fresh heap allocations.
  };

  MatrixArena() = default;
  MatrixArena(const MatrixArena&) = delete;
  MatrixArena& operator=(const MatrixArena&) = delete;

  /// Returns a zero-filled rows x cols matrix, reusing a free buffer of the
  /// same shape when one is available.
  Matrix Acquire(size_t rows, size_t cols);

  /// Like Acquire but without the zero fill; the caller must overwrite
  /// every element before reading any (reused buffers hold stale values).
  Matrix AcquireUninit(size_t rows, size_t cols);

  /// Returns a copy of `src` backed by arena storage.
  Matrix AcquireCopy(const Matrix& src);

  /// Takes ownership of `m`'s buffer for future Acquires of its shape.
  /// Empty matrices are ignored.
  void Release(Matrix&& m);

  /// Frees every parked buffer (stats are kept). Long-lived arenas shared
  /// across fits of differently-shaped graphs should Clear() between
  /// workloads: free lists are keyed by exact shape, so buffers from a
  /// stale graph size are never reused and would otherwise be held until
  /// arena destruction.
  void Clear();

  Stats stats() const;
  void ResetStats();

  /// Arms a soft byte budget over fresh heap allocations (0 disarms). The
  /// breaching Acquire still succeeds — the budget is a control-plane limit,
  /// not a hard OOM — but the arena marks itself exhausted and fires the
  /// stop token (StopReason::kResourceExhausted), so the training loop
  /// unwinds at its next per-epoch poll through exactly the cancelled-fit
  /// teardown path. The pipeline then reports kResourceExhausted instead of
  /// aborting. The "arena/alloc" fault point (src/util/fault.h) triggers
  /// the same path regardless of budget.
  void SetByteBudget(uint64_t bytes);
  uint64_t byte_budget() const;

  /// The token fired on budget breach; typically the run's CancelToken so
  /// existing epoch polls see the stop.
  void SetStopToken(CancelToken token);

  /// True once a fresh allocation breached the budget (or an arena/alloc
  /// fault fired). Cleared by SetByteBudget.
  bool budget_exhausted() const;

  /// Buffers currently parked on free lists.
  size_t free_buffers() const;
  /// Acquired minus released. <= 0 means every buffer this arena handed
  /// out has come back; negative values mean it also adopted buffers it
  /// never served (leaf-node values allocated before their tape entered
  /// the arena — tape teardown returns those too, which only grows the
  /// free lists).
  int64_t outstanding() const;

 private:
  Matrix AcquireInternal(size_t rows, size_t cols, bool zero_fill);

  mutable std::mutex mu_;
  // Shape key (rows << 32 | cols) -> parked buffers of that exact shape.
  std::unordered_map<uint64_t, std::vector<Matrix>> free_;
  Stats stats_;
  uint64_t byte_budget_ = 0;  // 0 = unlimited.
  bool budget_exhausted_ = false;
  std::optional<CancelToken> stop_;
};

/// Installs `arena` as the calling thread's current arena for the lifetime
/// of the scope (nullptr uninstalls; scopes nest and restore on exit).
/// Autograd node values, gradients, and backward temporaries are drawn from
/// the current arena when one is installed, and fall back to plain heap
/// matrices otherwise.
class ArenaScope {
 public:
  explicit ArenaScope(MatrixArena* arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  MatrixArena* prev_;
};

/// The calling thread's installed arena, or nullptr.
MatrixArena* CurrentArena();

namespace arena {

// Current-arena allocation helpers: one shared implementation of the
// "arena if installed, plain heap Matrix otherwise" pattern used by every
// autograd op and fused-layer kernel for outputs and backward scratch.

/// Zero-filled rows x cols matrix.
Matrix Zeroed(size_t rows, size_t cols);
/// No zero fill; the caller must overwrite every element before reading
/// any (reused buffers hold stale values).
Matrix Uninit(size_t rows, size_t cols);
/// Copy of `src`.
Matrix CopyOf(const Matrix& src);
/// Returns finished scratch to the current arena (frees it when none is
/// installed).
void Recycle(Matrix&& m);

}  // namespace arena

// ---------------------------------------------------------------------------
// Training fast-path switch.
// ---------------------------------------------------------------------------

/// When true (the default), training loops install arenas, Mlp fuses
/// bias+ReLU, and the optimizers run their chunked single-pass updates.
/// When false, every one of those paths falls back to the seed behavior
/// (fresh heap matrices, unfused ops, serial optimizer loops). Both
/// settings produce bitwise identical training outputs; the switch exists
/// so `micro_benchmarks` can measure seed-vs-optimized *epochs* and so
/// tests can assert the two paths agree byte for byte.
bool TrainingFastPathEnabled();

/// Flips the fast path globally; returns the previous setting. Not
/// intended for concurrent toggling while training runs.
bool SetTrainingFastPath(bool enabled);

}  // namespace grgad

#endif  // GRGAD_TENSOR_ARENA_H_
