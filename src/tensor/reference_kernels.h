// Serial reference kernels: the seed implementations, unblocked and
// single-threaded, kept verbatim as the correctness/determinism oracle for
// the optimized kernels in matrix.cc / sparse.cc and as the "before" side of
// bench/micro_benchmarks' JSON report. Never call these from product code.
#ifndef GRGAD_TENSOR_REFERENCE_KERNELS_H_
#define GRGAD_TENSOR_REFERENCE_KERNELS_H_

#include <functional>

#include "src/tensor/matrix.h"
#include "src/tensor/sparse.h"

namespace grgad::reference {

/// Serial i-k-j product a(m x k) * b(k x n); the seed MatMul loop.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// Serial a(m x k) * b(n x k)^T via per-element dot products.
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);

/// Serial a(k x m)^T * b(k x n) via rank-1 accumulation over k.
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);

/// Serial unblocked transpose.
Matrix Transpose(const Matrix& a);

/// Serial CSR row-gather s * dense.
Matrix Spmm(const SparseMatrix& s, const Matrix& dense);

/// Serial CSR scatter s^T * dense; the seed autograd backward kernel.
Matrix SpmmTransposeThis(const SparseMatrix& s, const Matrix& dense);

/// Serial elementwise map through std::function — the seed Matrix::Map with
/// its per-element indirect call, frozen as the bench baseline.
Matrix Map(const Matrix& a, const std::function<double(double)>& f);

}  // namespace grgad::reference

#endif  // GRGAD_TENSOR_REFERENCE_KERNELS_H_
