// Dense row-major matrix of doubles.
//
// This is the numeric workhorse under the autograd layer (src/nn) and the
// detectors (src/od). It favours a small, predictable API over genericity:
// double precision only, explicit shapes, bounds-checked element access in
// debug builds, and a blocked parallel matmul tuned for the tall-skinny
// products (n x attr_dim times attr_dim x hidden) that dominate GCN training.
#ifndef GRGAD_TENSOR_MATRIX_H_
#define GRGAD_TENSOR_MATRIX_H_

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/util/check.h"
#include "src/util/parallel.h"

namespace grgad {

class Rng;

// Elementwise kernels only go parallel above 2x this many elements; below it
// the dispatch (one std::function capture + pool notify) would dominate.
inline constexpr size_t kElementwiseParallelGrain = 1 << 14;

/// Dense rows x cols matrix, row-major, zero-initialized by default.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix filled with `fill` (default 0).
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; all rows must have equal width.
  static Matrix FromRows(
      std::initializer_list<std::initializer_list<double>> rows);

  /// n x n identity.
  static Matrix Identity(size_t n);

  /// I.i.d. Gaussian entries drawn from `rng`.
  static Matrix Gaussian(size_t rows, size_t cols, Rng* rng,
                         double mean = 0.0, double stddev = 1.0);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t i, size_t j) {
    GRGAD_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    GRGAD_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Raw pointer to row i (contiguous `cols()` doubles).
  double* RowPtr(size_t i) {
    GRGAD_DCHECK(i < rows_);
    return data_.data() + i * cols_;
  }
  const double* RowPtr(size_t i) const {
    GRGAD_DCHECK(i < rows_);
    return data_.data() + i * cols_;
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// In-place elementwise arithmetic; shapes must match. operator+= runs the
  /// chunked AddInPlace kernel below.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  /// In-place scalar multiply.
  Matrix& operator*=(double s);

  /// this += other, as a pool-chunked AXPY over the flat data (bitwise
  /// identical to the serial loop — chunking only splits the index range).
  /// This is the gradient-accumulation kernel of autograd. `other` may
  /// alias this (e.g. `m += m`).
  void AddInPlace(const Matrix& other);
  /// this -= other (chunked like AddInPlace; aliasing allowed).
  void SubInPlace(const Matrix& other);
  /// this = this .* other, elementwise in place (chunked like AddInPlace;
  /// aliasing allowed).
  void MulInPlace(const Matrix& other);

  /// Overwrites this (same shape required) with other's entries.
  void CopyFrom(const Matrix& other);

  /// Elementwise (Hadamard) product; shapes must match.
  Matrix Hadamard(const Matrix& other) const;

  /// Returns a transposed copy.
  Matrix Transpose() const;

  /// Returns f applied elementwise.
  ///
  /// Prefer MapFn when f is a lambda: the std::function overload costs an
  /// indirect call per element in the training hot path.
  Matrix Map(const std::function<double(double)>& f) const;
  /// Applies f elementwise in place (see Map about MapInPlaceFn).
  void MapInPlace(const std::function<double(double)>& f);

  /// Returns f applied elementwise, with f inlined into the loop (and the
  /// loop chunked over the thread pool for large matrices). Chunking only
  /// splits the flat index range, so results match the serial loop bitwise.
  template <typename F>
  Matrix MapFn(F&& f) const {
    Matrix out(rows_, cols_);
    const double* __restrict src = data_.data();
    double* __restrict dst = out.data_.data();
    const size_t size = data_.size();
    if (size < 2 * kMapParallelGrain) {
      for (size_t i = 0; i < size; ++i) dst[i] = f(src[i]);
    } else {
      ParallelFor(size, kMapParallelGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) dst[i] = f(src[i]);
      });
    }
    return out;
  }

  /// In-place MapFn.
  template <typename F>
  void MapInPlaceFn(F&& f) {
    double* __restrict d = data_.data();
    const size_t size = data_.size();
    if (size < 2 * kMapParallelGrain) {
      for (size_t i = 0; i < size; ++i) d[i] = f(d[i]);
    } else {
      ParallelFor(size, kMapParallelGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) d[i] = f(d[i]);
      });
    }
  }

  /// Destination-passing MapFn: writes f applied elementwise into `out`,
  /// which must already have this matrix's shape (every element is
  /// overwritten). Chunking matches MapFn, so results are bitwise equal.
  template <typename F>
  void MapToFn(Matrix* out, F&& f) const {
    GRGAD_CHECK(out != nullptr && out->rows_ == rows_ && out->cols_ == cols_);
    const double* __restrict src = data_.data();
    double* __restrict dst = out->data_.data();
    const size_t size = data_.size();
    if (size < 2 * kMapParallelGrain) {
      for (size_t i = 0; i < size; ++i) dst[i] = f(src[i]);
    } else {
      ParallelFor(size, kMapParallelGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) dst[i] = f(src[i]);
      });
    }
  }

  /// Fills all entries with `v`.
  void Fill(double v);

  /// Sum over all entries.
  double Sum() const;
  /// Mean over all entries (0 for an empty matrix).
  double Mean() const;
  /// max_ij |a_ij| (0 for an empty matrix).
  double MaxAbs() const;
  /// sqrt(sum of squares).
  double FrobeniusNorm() const;

  /// Per-row sums / means, length rows().
  std::vector<double> RowSums() const;
  std::vector<double> RowMeans() const;
  /// Per-column means, length cols().
  std::vector<double> ColMeans() const;

  /// Euclidean norm of row i.
  double RowNorm(size_t i) const;

  /// Gathers the given rows (duplicates allowed) into a new matrix.
  Matrix GatherRows(const std::vector<int>& rows) const;
  /// Destination-passing GatherRows; out must be rows.size() x cols() and
  /// is fully overwritten. Row indices are bounds-checked.
  void GatherRowsInto(const std::vector<int>& rows, Matrix* out) const;

  /// Copies `row` (length cols()) into row i.
  void SetRow(size_t i, const std::vector<double>& row);

  /// True if shapes match and entries agree within `tol` absolutely.
  bool ApproxEquals(const Matrix& other, double tol = 1e-9) const;

  /// Compact human-readable dump (small matrices; tests and debugging).
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  static constexpr size_t kMapParallelGrain = kElementwiseParallelGrain;

  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// out = a + b (shapes must match).
Matrix operator+(const Matrix& a, const Matrix& b);
/// out = a - b (shapes must match).
Matrix operator-(const Matrix& a, const Matrix& b);
/// out = a * s.
Matrix operator*(const Matrix& a, double s);

/// Dense product a(m x k) * b(k x n); parallel blocked i-k-j kernel.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// a(m x k) * b(n x k)^T -> m x n. Avoids materializing b^T.
Matrix MatMulTransposeB(const Matrix& a, const Matrix& b);

/// a(k x m)^T * b(k x n) -> m x n. Avoids materializing a^T.
Matrix MatMulTransposeA(const Matrix& a, const Matrix& b);

// ---------------------------------------------------------------------------
// Destination-passing kernels.
//
// These write into a caller-provided, correctly shaped output instead of
// allocating one, so arena-backed callers (src/nn/autograd.cc) can reuse
// buffers across training epochs. Every kernel fully defines its output
// (stale contents are overwritten or zeroed first) and runs the exact same
// accumulation order as its allocating twin, so results are bitwise equal.
// ---------------------------------------------------------------------------

/// out = a * b; out must be a.rows() x b.cols().
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out);
/// out = a * b^T; out must be a.rows() x b.rows(). Scratch for the
/// materialized transpose comes from the current arena when one is
/// installed.
void MatMulTransposeBInto(const Matrix& a, const Matrix& b, Matrix* out);
/// out = a^T * b; out must be a.cols() x b.cols().
void MatMulTransposeAInto(const Matrix& a, const Matrix& b, Matrix* out);
/// out = a^T; out must be a.cols() x a.rows().
void TransposeInto(const Matrix& a, Matrix* out);
/// out = a + b (all three the same shape; out may not alias a or b).
void AddInto(const Matrix& a, const Matrix& b, Matrix* out);
/// out = a - b (all three the same shape; out may not alias a or b).
void SubInto(const Matrix& a, const Matrix& b, Matrix* out);
/// out = a .* b (all three the same shape; out may not alias a or b).
void HadamardInto(const Matrix& a, const Matrix& b, Matrix* out);
/// out = a * s (same shape; out may not alias a).
void ScaledInto(const Matrix& a, double s, Matrix* out);

}  // namespace grgad

#endif  // GRGAD_TENSOR_MATRIX_H_
