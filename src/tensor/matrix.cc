#include "src/tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/tensor/arena.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace grgad {

Matrix Matrix::FromRows(
    std::initializer_list<std::initializer_list<double>> rows) {
  const size_t r = rows.size();
  const size_t c = r == 0 ? 0 : rows.begin()->size();
  Matrix out(r, c);
  size_t i = 0;
  for (const auto& row : rows) {
    GRGAD_CHECK_EQ(row.size(), c);
    size_t j = 0;
    for (double v : row) out(i, j++) = v;
    ++i;
  }
  return out;
}

Matrix Matrix::Identity(size_t n) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix Matrix::Gaussian(size_t rows, size_t cols, Rng* rng, double mean,
                        double stddev) {
  GRGAD_CHECK(rng != nullptr);
  Matrix out(rows, cols);
  for (double& v : out.data_) v = rng->Normal(mean, stddev);
  return out;
}

namespace {

/// Chunked elementwise combine: dst[i] = f(dst[i], src[i]). Chunking only
/// splits the flat index range, so results match the serial loop bitwise.
/// No __restrict: self-application (`m += m`) is legal, exactly as it was
/// for the seed's plain loops (per-element load-then-store is well defined
/// under full aliasing).
template <typename F>
void ElementwiseInPlace(double* dst, const double* src, size_t size, F&& f) {
  if (size < 2 * kElementwiseParallelGrain) {
    for (size_t i = 0; i < size; ++i) dst[i] = f(dst[i], src[i]);
  } else {
    ParallelFor(size, kElementwiseParallelGrain,
                [&](size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) {
                    dst[i] = f(dst[i], src[i]);
                  }
                });
  }
}

/// Chunked elementwise binary kernel: out[i] = f(a[i], b[i]).
template <typename F>
void ElementwiseInto(const double* __restrict a, const double* __restrict b,
                     double* __restrict out, size_t size, F&& f) {
  if (size < 2 * kElementwiseParallelGrain) {
    for (size_t i = 0; i < size; ++i) out[i] = f(a[i], b[i]);
  } else {
    ParallelFor(size, kElementwiseParallelGrain,
                [&](size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) out[i] = f(a[i], b[i]);
                });
  }
}

}  // namespace

void Matrix::AddInPlace(const Matrix& other) {
  GRGAD_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  ElementwiseInPlace(data_.data(), other.data_.data(), data_.size(),
                     [](double x, double y) { return x + y; });
}

void Matrix::SubInPlace(const Matrix& other) {
  GRGAD_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  ElementwiseInPlace(data_.data(), other.data_.data(), data_.size(),
                     [](double x, double y) { return x - y; });
}

void Matrix::MulInPlace(const Matrix& other) {
  GRGAD_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  ElementwiseInPlace(data_.data(), other.data_.data(), data_.size(),
                     [](double x, double y) { return x * y; });
}

void Matrix::CopyFrom(const Matrix& other) {
  GRGAD_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  if (!data_.empty()) {
    std::memcpy(data_.data(), other.data_.data(),
                data_.size() * sizeof(double));
  }
}

Matrix& Matrix::operator+=(const Matrix& other) {
  AddInPlace(other);
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  SubInPlace(other);
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  GRGAD_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] * other.data_[i];
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  TransposeInto(*this, &out);
  return out;
}

void TransposeInto(const Matrix& a, Matrix* out) {
  GRGAD_CHECK(out != nullptr && out->rows() == a.cols() &&
              out->cols() == a.rows());
  // 32x32 tiles: both the source rows and the (strided) destination columns
  // of a tile stay cache-resident, instead of striding through the full
  // destination once per source row. Tiles write disjoint output, so the
  // parallel version is bitwise identical to the serial one.
  constexpr size_t kTile = 32;
  const size_t rows = a.rows(), cols = a.cols();
  const size_t row_tiles = (rows + kTile - 1) / kTile;
  double* od = out->data();
  ParallelFor(row_tiles, 4, [&](size_t tile_begin, size_t tile_end) {
    for (size_t t = tile_begin; t < tile_end; ++t) {
      const size_t i0 = t * kTile;
      const size_t in = std::min(kTile, rows - i0);
      for (size_t j0 = 0; j0 < cols; j0 += kTile) {
        const size_t jn = std::min(kTile, cols - j0);
        for (size_t i = 0; i < in; ++i) {
          const double* src = a.RowPtr(i0 + i) + j0;
          for (size_t j = 0; j < jn; ++j) {
            od[(j0 + j) * rows + i0 + i] = src[j];
          }
        }
      }
    }
  });
}

Matrix Matrix::Map(const std::function<double(double)>& f) const {
  return MapFn(f);
}

void Matrix::MapInPlace(const std::function<double(double)>& f) {
  MapInPlaceFn(f);
}

void Matrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::Mean() const { return data_.empty() ? 0.0 : Sum() / data_.size(); }

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

std::vector<double> Matrix::RowSums() const {
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double s = 0.0;
    for (size_t j = 0; j < cols_; ++j) s += row[j];
    out[i] = s;
  }
  return out;
}

std::vector<double> Matrix::RowMeans() const {
  std::vector<double> out = RowSums();
  if (cols_ > 0) {
    for (double& v : out) v /= static_cast<double>(cols_);
  }
  return out;
}

std::vector<double> Matrix::ColMeans() const {
  std::vector<double> out(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) out[j] += row[j];
  }
  if (rows_ > 0) {
    for (double& v : out) v /= static_cast<double>(rows_);
  }
  return out;
}

double Matrix::RowNorm(size_t i) const {
  const double* row = RowPtr(i);
  double s = 0.0;
  for (size_t j = 0; j < cols_; ++j) s += row[j] * row[j];
  return std::sqrt(s);
}

Matrix Matrix::GatherRows(const std::vector<int>& rows) const {
  Matrix out(rows.size(), cols_);
  GatherRowsInto(rows, &out);
  return out;
}

void Matrix::GatherRowsInto(const std::vector<int>& rows, Matrix* out) const {
  GRGAD_CHECK(out != nullptr && out->rows_ == rows.size() &&
              out->cols_ == cols_);
  for (size_t i = 0; i < rows.size(); ++i) {
    GRGAD_CHECK(rows[i] >= 0 && static_cast<size_t>(rows[i]) < rows_);
    std::memcpy(out->RowPtr(i), RowPtr(rows[i]), cols_ * sizeof(double));
  }
}

void Matrix::SetRow(size_t i, const std::vector<double>& row) {
  GRGAD_CHECK_EQ(row.size(), cols_);
  std::memcpy(RowPtr(i), row.data(), cols_ * sizeof(double));
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::string out = "Matrix(" + std::to_string(rows_) + "x" +
                    std::to_string(cols_) + ")";
  const size_t r = std::min<size_t>(rows_, max_rows);
  const size_t c = std::min<size_t>(cols_, max_cols);
  char buf[48];
  for (size_t i = 0; i < r; ++i) {
    out += "\n  ";
    for (size_t j = 0; j < c; ++j) {
      std::snprintf(buf, sizeof(buf), "% .4g ", (*this)(i, j));
      out += buf;
    }
    if (c < cols_) out += "...";
  }
  if (r < rows_) out += "\n  ...";
  return out;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix operator*(const Matrix& a, double s) {
  Matrix out = a;
  out *= s;
  return out;
}

namespace {

// Register-blocked MatMul panel (see PERF.md).
//
// The inner kernel holds a 4-row x 2-vector tile of out in eight NAMED
// vector variables (GCC/Clang vector extensions), accumulating across the
// whole k loop and storing each output element exactly once — the seed's
// i-k-j loop re-loaded and re-stored every output element k times and was
// store-port bound. Explicit vector variables instead of a double[4][N]
// array matter: with runtime strides GCC's auto-vectorizer either picks the
// k loop (strided loads) or spills the accumulator array to the stack on
// every FMA, both measured 2-4x SLOWER than the seed loop. The vector width
// tracks the ISA so eight accumulators plus two B vectors fit the register
// file (zmm on AVX-512, ymm on AVX, xmm otherwise).
#if defined(__AVX512F__)
typedef double vd __attribute__((vector_size(64), aligned(8), may_alias));
#elif defined(__AVX__)
typedef double vd __attribute__((vector_size(32), aligned(8), may_alias));
#else
typedef double vd __attribute__((vector_size(16), aligned(8), may_alias));
#endif
constexpr size_t kVecWidth = sizeof(vd) / sizeof(double);
constexpr size_t kTileRows = 4;
constexpr size_t kTileCols = 2 * kVecWidth;

// Tail kernel for rows/column ranges not covered by full register tiles:
// the seed's single-row i-k-j loop restricted to columns [j0, j0+jn). Same
// ascending-k accumulation order as the register-tiled path.
void MatMulRowTail(const double* ad, const double* bd, double* od, size_t i,
                   size_t j0, size_t jn, size_t k, size_t n) {
  const double* arow = ad + i * k;
  double* __restrict orow = od + i * n + j0;
  for (size_t kk = 0; kk < k; ++kk) {
    const double* __restrict brow = bd + kk * n + j0;
    const double av = arow[kk];
    for (size_t j = 0; j < jn; ++j) orow[j] += av * brow[j];
  }
}

// Multiplies rows [row_begin, row_end) of a into out (full k reduction) as
// register tiles plus seed-shaped tails. Every output element accumulates
// its k products in ascending kk order, so the result is bitwise identical
// to the serial reference kernel, independent of tiling, tails, and the row
// partition (hence of GRGAD_THREADS).
void MatMulPanel(const double* __restrict ad, const double* __restrict bd,
                 double* __restrict od, size_t row_begin, size_t row_end,
                 size_t k, size_t n) {
  const size_t n_tiled = n - n % kTileCols;
  size_t i = row_begin;
  for (; i + kTileRows <= row_end; i += kTileRows) {
    const double* a0 = ad + (i + 0) * k;
    const double* a1 = ad + (i + 1) * k;
    const double* a2 = ad + (i + 2) * k;
    const double* a3 = ad + (i + 3) * k;
    for (size_t j0 = 0; j0 < n_tiled; j0 += kTileCols) {
      vd c00{}, c01{}, c10{}, c11{}, c20{}, c21{}, c30{}, c31{};
      const double* bp = bd + j0;
      for (size_t kk = 0; kk < k; ++kk, bp += n) {
        const vd b0 = *reinterpret_cast<const vd*>(bp);
        const vd b1 = *reinterpret_cast<const vd*>(bp + kVecWidth);
        const double v0 = a0[kk], v1 = a1[kk], v2 = a2[kk], v3 = a3[kk];
        c00 += b0 * v0;
        c01 += b1 * v0;
        c10 += b0 * v1;
        c11 += b1 * v1;
        c20 += b0 * v2;
        c21 += b1 * v2;
        c30 += b0 * v3;
        c31 += b1 * v3;
      }
      double* o0 = od + (i + 0) * n + j0;
      double* o1 = od + (i + 1) * n + j0;
      double* o2 = od + (i + 2) * n + j0;
      double* o3 = od + (i + 3) * n + j0;
      *reinterpret_cast<vd*>(o0) = c00;
      *reinterpret_cast<vd*>(o0 + kVecWidth) = c01;
      *reinterpret_cast<vd*>(o1) = c10;
      *reinterpret_cast<vd*>(o1 + kVecWidth) = c11;
      *reinterpret_cast<vd*>(o2) = c20;
      *reinterpret_cast<vd*>(o2 + kVecWidth) = c21;
      *reinterpret_cast<vd*>(o3) = c30;
      *reinterpret_cast<vd*>(o3 + kVecWidth) = c31;
    }
    if (n_tiled < n) {
      for (size_t r = 0; r < kTileRows; ++r) {
        MatMulRowTail(ad, bd, od, i + r, n_tiled, n - n_tiled, k, n);
      }
    }
  }
  for (; i < row_end; ++i) MatMulRowTail(ad, bd, od, i, 0, n, k, n);
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  GRGAD_CHECK_EQ(a.cols(), b.rows());
  Matrix out(a.rows(), b.cols());
  // A fresh Matrix is already zeroed; run the panels directly.
  const size_t k = a.cols(), n = b.cols();
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out.data();
  ParallelFor(a.rows(), 2 * kTileRows, [&](size_t begin, size_t end) {
    MatMulPanel(ad, bd, od, begin, end, k, n);
  });
  return out;
}

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out) {
  GRGAD_CHECK_EQ(a.cols(), b.rows());
  GRGAD_CHECK(out != nullptr && out->rows() == a.rows() &&
              out->cols() == b.cols());
  // The tail kernels accumulate into the output, so clear stale contents
  // first; full register tiles overwrite regardless. Bitwise identical to
  // the allocating MatMul, whose fresh output is zeroed the same way.
  out->Fill(0.0);
  const size_t k = a.cols(), n = b.cols();
  const double* ad = a.data();
  const double* bd = b.data();
  double* od = out->data();
  ParallelFor(a.rows(), 2 * kTileRows, [&](size_t begin, size_t end) {
    MatMulPanel(ad, bd, od, begin, end, k, n);
  });
}

namespace {

/// Materializes `m`'s transpose in an arena-backed scratch when an arena is
/// installed (the transpose is fully overwritten, so stale contents are
/// fine) and hands it to `fn`, returning the scratch afterwards.
template <typename Fn>
void WithTransposed(const Matrix& m, Fn&& fn) {
  Matrix mt = arena::Uninit(m.cols(), m.rows());
  TransposeInto(m, &mt);
  fn(mt);
  arena::Recycle(std::move(mt));
}

}  // namespace

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  GRGAD_CHECK_EQ(a.cols(), b.cols());
  // Transposing b once and reusing the blocked MatMul beats the seed's
  // per-element dot products by a wide margin: the dots re-streamed all of b
  // per output row and (without -ffast-math) could not vectorize their
  // reductions. Accumulation order per out element is ascending k in both,
  // but the compiler may contract FMAs differently in the two loop shapes,
  // so agreement with the reference kernel is ~1e-13, not bitwise (results
  // ARE bitwise stable across thread counts and runs).
  Matrix out(a.rows(), b.rows());
  MatMulTransposeBInto(a, b, &out);
  return out;
}

void MatMulTransposeBInto(const Matrix& a, const Matrix& b, Matrix* out) {
  GRGAD_CHECK_EQ(a.cols(), b.cols());
  GRGAD_CHECK(out != nullptr && out->rows() == a.rows() &&
              out->cols() == b.rows());
  WithTransposed(b, [&](const Matrix& bt) { MatMulInto(a, bt, out); });
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  GRGAD_CHECK_EQ(a.rows(), b.rows());
  // Same trick as MatMulTransposeB: one blocked transpose converts the seed's
  // serial rank-1 accumulation into the parallel blocked MatMul, whose row
  // partition needs no cross-thread accumulator merging and keeps ascending-k
  // accumulation per element (agreement with the reference kernel within
  // ~1e-13 — see MatMulTransposeB about FMA contraction).
  Matrix out(a.cols(), b.cols());
  MatMulTransposeAInto(a, b, &out);
  return out;
}

void MatMulTransposeAInto(const Matrix& a, const Matrix& b, Matrix* out) {
  GRGAD_CHECK_EQ(a.rows(), b.rows());
  GRGAD_CHECK(out != nullptr && out->rows() == a.cols() &&
              out->cols() == b.cols());
  WithTransposed(a, [&](const Matrix& at) { MatMulInto(at, b, out); });
}

void AddInto(const Matrix& a, const Matrix& b, Matrix* out) {
  GRGAD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  GRGAD_CHECK(out != nullptr && out->rows() == a.rows() &&
              out->cols() == a.cols());
  ElementwiseInto(a.data(), b.data(), out->data(), a.size(),
                  [](double x, double y) { return x + y; });
}

void SubInto(const Matrix& a, const Matrix& b, Matrix* out) {
  GRGAD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  GRGAD_CHECK(out != nullptr && out->rows() == a.rows() &&
              out->cols() == a.cols());
  ElementwiseInto(a.data(), b.data(), out->data(), a.size(),
                  [](double x, double y) { return x - y; });
}

void HadamardInto(const Matrix& a, const Matrix& b, Matrix* out) {
  GRGAD_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  GRGAD_CHECK(out != nullptr && out->rows() == a.rows() &&
              out->cols() == a.cols());
  ElementwiseInto(a.data(), b.data(), out->data(), a.size(),
                  [](double x, double y) { return x * y; });
}

void ScaledInto(const Matrix& a, double s, Matrix* out) {
  a.MapToFn(out, [s](double v) { return v * s; });
}

}  // namespace grgad
