#include "src/tensor/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace grgad {

Matrix Matrix::FromRows(
    std::initializer_list<std::initializer_list<double>> rows) {
  const size_t r = rows.size();
  const size_t c = r == 0 ? 0 : rows.begin()->size();
  Matrix out(r, c);
  size_t i = 0;
  for (const auto& row : rows) {
    GRGAD_CHECK_EQ(row.size(), c);
    size_t j = 0;
    for (double v : row) out(i, j++) = v;
    ++i;
  }
  return out;
}

Matrix Matrix::Identity(size_t n) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix Matrix::Gaussian(size_t rows, size_t cols, Rng* rng, double mean,
                        double stddev) {
  GRGAD_CHECK(rng != nullptr);
  Matrix out(rows, cols);
  for (double& v : out.data_) v = rng->Normal(mean, stddev);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  GRGAD_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  GRGAD_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::Hadamard(const Matrix& other) const {
  GRGAD_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] * other.data_[i];
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* src = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) out(j, i) = src[j];
  }
  return out;
}

Matrix Matrix::Map(const std::function<double(double)>& f) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = f(data_[i]);
  return out;
}

void Matrix::MapInPlace(const std::function<double(double)>& f) {
  for (double& v : data_) v = f(v);
}

void Matrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::Mean() const { return data_.empty() ? 0.0 : Sum() / data_.size(); }

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

std::vector<double> Matrix::RowSums() const {
  std::vector<double> out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    double s = 0.0;
    for (size_t j = 0; j < cols_; ++j) s += row[j];
    out[i] = s;
  }
  return out;
}

std::vector<double> Matrix::RowMeans() const {
  std::vector<double> out = RowSums();
  if (cols_ > 0) {
    for (double& v : out) v /= static_cast<double>(cols_);
  }
  return out;
}

std::vector<double> Matrix::ColMeans() const {
  std::vector<double> out(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) out[j] += row[j];
  }
  if (rows_ > 0) {
    for (double& v : out) v /= static_cast<double>(rows_);
  }
  return out;
}

double Matrix::RowNorm(size_t i) const {
  const double* row = RowPtr(i);
  double s = 0.0;
  for (size_t j = 0; j < cols_; ++j) s += row[j] * row[j];
  return std::sqrt(s);
}

Matrix Matrix::GatherRows(const std::vector<int>& rows) const {
  Matrix out(rows.size(), cols_);
  for (size_t i = 0; i < rows.size(); ++i) {
    GRGAD_CHECK(rows[i] >= 0 && static_cast<size_t>(rows[i]) < rows_);
    std::memcpy(out.RowPtr(i), RowPtr(rows[i]), cols_ * sizeof(double));
  }
  return out;
}

void Matrix::SetRow(size_t i, const std::vector<double>& row) {
  GRGAD_CHECK_EQ(row.size(), cols_);
  std::memcpy(RowPtr(i), row.data(), cols_ * sizeof(double));
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::string out = "Matrix(" + std::to_string(rows_) + "x" +
                    std::to_string(cols_) + ")";
  const size_t r = std::min<size_t>(rows_, max_rows);
  const size_t c = std::min<size_t>(cols_, max_cols);
  char buf[48];
  for (size_t i = 0; i < r; ++i) {
    out += "\n  ";
    for (size_t j = 0; j < c; ++j) {
      std::snprintf(buf, sizeof(buf), "% .4g ", (*this)(i, j));
      out += buf;
    }
    if (c < cols_) out += "...";
  }
  if (r < rows_) out += "\n  ...";
  return out;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix operator*(const Matrix& a, double s) {
  Matrix out = a;
  out *= s;
  return out;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  GRGAD_CHECK_EQ(a.cols(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix out(m, n);
  // i-k-j loop: the inner j-loop streams over contiguous rows of b and out,
  // which vectorizes well; parallelized over disjoint output row ranges.
  ParallelFor(m, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const double* arow = a.RowPtr(i);
      double* orow = out.RowPtr(i);
      for (size_t kk = 0; kk < k; ++kk) {
        const double av = arow[kk];
        if (av == 0.0) continue;
        const double* brow = b.RowPtr(kk);
        for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
  return out;
}

Matrix MatMulTransposeB(const Matrix& a, const Matrix& b) {
  GRGAD_CHECK_EQ(a.cols(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix out(m, n);
  ParallelFor(m, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const double* arow = a.RowPtr(i);
      double* orow = out.RowPtr(i);
      for (size_t j = 0; j < n; ++j) {
        const double* brow = b.RowPtr(j);
        double s = 0.0;
        for (size_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
        orow[j] = s;
      }
    }
  });
  return out;
}

Matrix MatMulTransposeA(const Matrix& a, const Matrix& b) {
  GRGAD_CHECK_EQ(a.rows(), b.rows());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  Matrix out(m, n);
  // Accumulate rank-1 updates; serial over k, fine for the thin matrices
  // (parameter gradients) this is used for.
  for (size_t kk = 0; kk < k; ++kk) {
    const double* arow = a.RowPtr(kk);
    const double* brow = b.RowPtr(kk);
    for (size_t i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out.RowPtr(i);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

}  // namespace grgad
