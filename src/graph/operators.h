// Message-passing operators and reconstruction targets derived from a graph.
//
// MH-GAE's ablation (Table IV) swaps the reconstruction objective between the
// plain adjacency A, standardized powers A^k (k = 3, 5, 7), and the GraphSNN
// weighted adjacency Ã (src/graph/graphsnn.h); GCN encoders always propagate
// with the symmetric normalized operator Â.
#ifndef GRGAD_GRAPH_OPERATORS_H_
#define GRGAD_GRAPH_OPERATORS_H_

#include <memory>

#include "src/graph/graph.h"
#include "src/tensor/sparse.h"

namespace grgad {

class Rng;

/// Binary adjacency matrix A (symmetric, zero diagonal).
SparseMatrix AdjacencyMatrix(const Graph& g);

/// Kipf–Welling operator Â = D̂^{-1/2} (A + I) D̂^{-1/2}.
std::shared_ptr<const SparseMatrix> NormalizedAdjacency(const Graph& g);

/// Symmetric normalization D^{-1/2} M D^{-1/2} of an arbitrary non-negative
/// square matrix (zero rows left untouched), with optional self-loops.
SparseMatrix SymmetricNormalize(const SparseMatrix& m, bool add_self_loops);

/// Standardized k-th power of A (paper Eqn. (3) objective): powers of the
/// row-stochastic walk matrix D^{-1}A, with per-row top-`row_cap` pruning to
/// keep the result sparse, finally max-normalized to [0, 1].
/// row_cap <= 0 disables pruning.
SparseMatrix StandardizedPower(const Graph& g, int k, int row_cap = 64);

/// Modularity features for ComGA without materializing B = A - d d^T / 2m:
/// returns the n x k projection B R for a Gaussian random R (seeded), i.e.
/// A R - d (d^T R) / 2m. Rows act as community fingerprints.
Matrix ModularityProjection(const Graph& g, int k, uint64_t seed);

}  // namespace grgad

#endif  // GRGAD_GRAPH_OPERATORS_H_
