#include "src/graph/algorithms.h"

#include <deque>
#include <queue>
#include <unordered_set>

namespace grgad {

std::vector<int> BfsDistances(const Graph& g, int src, int max_depth) {
  GRGAD_CHECK(src >= 0 && src < g.num_nodes());
  std::vector<int> dist(g.num_nodes(), kUnreachable);
  dist[src] = 0;
  std::deque<int> queue = {src};
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    if (max_depth >= 0 && dist[u] >= max_depth) continue;
    for (int w : g.Neighbors(u)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

void BfsDistances(const Graph& g, int src, int max_depth,
                  TraversalWorkspace* ws) {
  GRGAD_CHECK(src >= 0 && src < g.num_nodes());
  GRGAD_CHECK(ws != nullptr);
  ws->Begin(g.num_nodes());
  ws->Mark(src);
  ws->hop[src] = 0;
  ws->order.push_back(src);
  for (size_t head = 0; head < ws->order.size(); ++head) {
    const int u = ws->order[head];
    if (max_depth >= 0 && ws->hop[u] >= max_depth) continue;
    for (int w : g.Neighbors(u)) {
      if (!ws->Seen(w)) {
        ws->Mark(w);
        ws->hop[w] = ws->hop[u] + 1;
        ws->order.push_back(w);
      }
    }
  }
}

bool BellmanFord(const Graph& g, int src, const std::vector<double>& weights,
                 std::vector<double>* dist, std::vector<int>* parent) {
  GRGAD_CHECK(src >= 0 && src < g.num_nodes());
  GRGAD_CHECK(dist != nullptr && parent != nullptr);
  GRGAD_CHECK_EQ(weights.size(), static_cast<size_t>(g.num_edges()));
  constexpr double kInf = std::numeric_limits<double>::infinity();
  dist->assign(g.num_nodes(), kInf);
  parent->assign(g.num_nodes(), -1);
  (*dist)[src] = 0.0;
  (*parent)[src] = src;
  bool changed = true;
  // Edges stream straight out of the CSR in Edges() order (the weight
  // index order) — the seed materialized an O(E) vector<pair> per call,
  // which the per-pair weighted path search paid per anchor pair.
  for (int round = 0; round < g.num_nodes() && changed; ++round) {
    changed = false;
    size_t e = 0;
    g.ForEachEdge([&](int u, int v) {
      const double w = weights[e++];
      if ((*dist)[u] + w < (*dist)[v]) {
        (*dist)[v] = (*dist)[u] + w;
        (*parent)[v] = u;
        changed = true;
      }
      if ((*dist)[v] + w < (*dist)[u]) {
        (*dist)[u] = (*dist)[v] + w;
        (*parent)[u] = v;
        changed = true;
      }
    });
  }
  // One more pass: any improvement means a negative cycle.
  bool negative_cycle = false;
  size_t e = 0;
  g.ForEachEdge([&](int u, int v) {
    const double w = weights[e++];
    if ((*dist)[u] + w < (*dist)[v] || (*dist)[v] + w < (*dist)[u]) {
      negative_cycle = true;
    }
  });
  return !negative_cycle;
}

bool BellmanFord(const Graph& g, int src, const std::vector<double>& weights,
                 TraversalWorkspace* ws) {
  GRGAD_CHECK(src >= 0 && src < g.num_nodes());
  GRGAD_CHECK(ws != nullptr);
  GRGAD_CHECK_EQ(weights.size(), static_cast<size_t>(g.num_edges()));
  ws->Begin(g.num_nodes());
  ws->Mark(src);
  ws->dist[src] = 0.0;
  ws->parent[src] = src;
  bool changed = true;
  for (int round = 0; round < g.num_nodes() && changed; ++round) {
    changed = false;
    size_t e = 0;
    g.ForEachEdge([&](int u, int v) {
      const double w = weights[e++];
      // ws->Dist reads +inf for nodes not yet reached this epoch — the
      // same semantics as the seed's assign(n, inf) without the O(n) fill.
      // Both relaxations re-read, exactly like the seed: with negative
      // weights the second test must see the first one's update.
      if (ws->Dist(u) + w < ws->Dist(v)) {
        ws->Mark(v);
        ws->dist[v] = ws->Dist(u) + w;
        ws->parent[v] = u;
        changed = true;
      }
      if (ws->Dist(v) + w < ws->Dist(u)) {
        ws->Mark(u);
        ws->dist[u] = ws->Dist(v) + w;
        ws->parent[u] = v;
        changed = true;
      }
    });
  }
  bool negative_cycle = false;
  size_t e = 0;
  g.ForEachEdge([&](int u, int v) {
    const double w = weights[e++];
    if (ws->Dist(u) + w < ws->Dist(v) || ws->Dist(v) + w < ws->Dist(u)) {
      negative_cycle = true;
    }
  });
  return !negative_cycle;
}

std::vector<int> BellmanFordPath(const Graph& g, int src, int dst,
                                 const std::vector<double>& weights) {
  std::vector<double> dist;
  std::vector<int> parent;
  if (!BellmanFord(g, src, weights, &dist, &parent)) return {};
  if (parent[dst] == -1) return {};
  std::vector<int> path = {dst};
  for (int v = dst; v != src; v = parent[v]) {
    path.push_back(parent[v]);
    if (path.size() > static_cast<size_t>(g.num_nodes())) return {};
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void Dijkstra(const Graph& g, int src,
              const std::function<double(int, int)>& cost,
              std::vector<double>* dist, std::vector<int>* parent,
              double max_cost) {
  GRGAD_CHECK(src >= 0 && src < g.num_nodes());
  GRGAD_CHECK(dist != nullptr && parent != nullptr);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  dist->assign(g.num_nodes(), kInf);
  parent->assign(g.num_nodes(), -1);
  (*dist)[src] = 0.0;
  (*parent)[src] = src;
  using Entry = std::pair<double, int>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  queue.emplace(0.0, src);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > (*dist)[u]) continue;  // Stale entry.
    for (int w : g.Neighbors(u)) {
      const double c = cost(u, w);
      GRGAD_DCHECK(c >= 0.0);
      const double nd = d + c;
      if (max_cost > 0.0 && nd > max_cost) continue;
      if (nd < (*dist)[w]) {
        (*dist)[w] = nd;
        (*parent)[w] = u;
        queue.emplace(nd, w);
      }
    }
  }
}

void Dijkstra(const Graph& g, int src, std::span<const double> slot_costs,
              double max_cost, TraversalWorkspace* ws) {
  GRGAD_CHECK(src >= 0 && src < g.num_nodes());
  GRGAD_CHECK(ws != nullptr);
  GRGAD_CHECK_EQ(slot_costs.size(), static_cast<size_t>(g.num_adj_slots()));
  ws->Begin(g.num_nodes());
  // Total pushes are bounded by 1 + one per successful relaxation, and each
  // directed slot can relax at most once per improvement chain; reserving
  // the bound keeps steady-state traversals growth-free.
  ws->ReserveHeap(static_cast<size_t>(g.num_adj_slots()) + 1);
  ws->Mark(src);
  ws->dist[src] = 0.0;
  ws->parent[src] = src;
  ws->PushHeap(0.0, src);
  const std::greater<std::pair<double, int>> cmp;
  while (!ws->heap.empty()) {
    const auto [d, u] = ws->heap.front();
    std::pop_heap(ws->heap.begin(), ws->heap.end(), cmp);
    ws->heap.pop_back();
    if (d > ws->dist[u]) continue;  // Stale entry (u is marked: it was pushed).
    auto nb = g.Neighbors(u);
    const double* costs = slot_costs.data() + g.AdjOffset(u);
    for (size_t i = 0; i < nb.size(); ++i) {
      const int w = nb[i];
      const double c = costs[i];
      GRGAD_DCHECK(c >= 0.0);
      const double nd = d + c;
      if (max_cost > 0.0 && nd > max_cost) continue;
      if (nd < ws->Dist(w)) {
        ws->Mark(w);
        ws->dist[w] = nd;
        ws->parent[w] = u;
        ws->PushHeap(nd, w);
      }
    }
  }
}

std::vector<int> ConnectedComponents(const Graph& g) {
  std::vector<int> comp(g.num_nodes(), -1);
  int next = 0;
  std::deque<int> queue;
  for (int s = 0; s < g.num_nodes(); ++s) {
    if (comp[s] != -1) continue;
    comp[s] = next;
    queue.push_back(s);
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (int w : g.Neighbors(u)) {
        if (comp[w] == -1) {
          comp[w] = next;
          queue.push_back(w);
        }
      }
    }
    ++next;
  }
  return comp;
}

std::span<const int> ConnectedComponents(const Graph& g,
                                         TraversalWorkspace* ws) {
  GRGAD_CHECK(ws != nullptr);
  ws->Begin(g.num_nodes());
  int next = 0;
  for (int s = 0; s < g.num_nodes(); ++s) {
    if (ws->Seen(s)) continue;
    ws->Mark(s);
    ws->comp[s] = next;
    ws->order.clear();
    ws->order.push_back(s);
    for (size_t head = 0; head < ws->order.size(); ++head) {
      const int u = ws->order[head];
      for (int w : g.Neighbors(u)) {
        if (!ws->Seen(w)) {
          ws->Mark(w);
          ws->comp[w] = next;
          ws->order.push_back(w);
        }
      }
    }
    ++next;
  }
  return {ws->comp.data(), static_cast<size_t>(g.num_nodes())};
}

std::vector<std::vector<int>> ComponentsOfSubset(
    const Graph& g, const std::vector<int>& nodes) {
  std::unordered_set<int> in_set(nodes.begin(), nodes.end());
  for (int v : nodes) GRGAD_CHECK(v >= 0 && v < g.num_nodes());
  std::vector<std::vector<int>> groups;
  // Deterministic iteration: walk `nodes` order, BFS within the subset.
  std::vector<int> seen_group(g.num_nodes(), -1);
  for (int start : nodes) {
    if (seen_group[start] != -1) continue;
    std::vector<int> group;
    std::deque<int> queue = {start};
    seen_group[start] = static_cast<int>(groups.size());
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      group.push_back(u);
      for (int w : g.Neighbors(u)) {
        if (seen_group[w] == -1 && in_set.count(w) > 0) {
          seen_group[w] = static_cast<int>(groups.size());
          queue.push_back(w);
        }
      }
    }
    std::sort(group.begin(), group.end());
    groups.push_back(std::move(group));
  }
  return groups;
}

std::vector<std::vector<int>> ComponentsOfSubset(const Graph& g,
                                                 const std::vector<int>& nodes,
                                                 TraversalWorkspace* ws) {
  GRGAD_CHECK(ws != nullptr);
  ws->Begin(g.num_nodes());
  // Subset membership on the secondary marks, group-visited on the primary.
  for (int v : nodes) {
    GRGAD_CHECK(v >= 0 && v < g.num_nodes());
    ws->Mark2(v);
  }
  std::vector<std::vector<int>> groups;
  for (int start : nodes) {
    if (ws->Seen(start)) continue;
    std::vector<int> group;
    ws->order.clear();
    ws->order.push_back(start);
    ws->Mark(start);
    for (size_t head = 0; head < ws->order.size(); ++head) {
      const int u = ws->order[head];
      group.push_back(u);
      for (int w : g.Neighbors(u)) {
        if (!ws->Seen(w) && ws->Seen2(w)) {
          ws->Mark(w);
          ws->order.push_back(w);
        }
      }
    }
    std::sort(group.begin(), group.end());
    groups.push_back(std::move(group));
  }
  return groups;
}

std::vector<int> KHopNeighborhood(const Graph& g, int v, int k) {
  const std::vector<int> dist = BfsDistances(g, v, k);
  std::vector<int> out;
  for (int u = 0; u < g.num_nodes(); ++u) {
    if (dist[u] != kUnreachable) out.push_back(u);
  }
  return out;
}

double ClusteringCoefficient(const Graph& g, int v) {
  auto nb = g.Neighbors(v);
  const int d = static_cast<int>(nb.size());
  if (d < 2) return 0.0;
  int links = 0;
  for (size_t i = 0; i < nb.size(); ++i) {
    for (size_t j = i + 1; j < nb.size(); ++j) {
      if (g.HasEdge(nb[i], nb[j])) ++links;
    }
  }
  return 2.0 * links / (static_cast<double>(d) * (d - 1));
}

double MeanNeighborDegree(const Graph& g, int v) {
  auto nb = g.Neighbors(v);
  if (nb.empty()) return 0.0;
  double s = 0.0;
  for (int w : nb) s += g.Degree(w);
  return s / static_cast<double>(nb.size());
}

}  // namespace grgad
