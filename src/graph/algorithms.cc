#include "src/graph/algorithms.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <unordered_set>

namespace grgad {

std::vector<int> BfsDistances(const Graph& g, int src, int max_depth) {
  GRGAD_CHECK(src >= 0 && src < g.num_nodes());
  std::vector<int> dist(g.num_nodes(), kUnreachable);
  dist[src] = 0;
  std::deque<int> queue = {src};
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    if (max_depth >= 0 && dist[u] >= max_depth) continue;
    for (int w : g.Neighbors(u)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

std::vector<int> ShortestPath(const Graph& g, int src, int dst) {
  GRGAD_CHECK(src >= 0 && src < g.num_nodes());
  GRGAD_CHECK(dst >= 0 && dst < g.num_nodes());
  if (src == dst) return {src};
  std::vector<int> parent(g.num_nodes(), -1);
  std::deque<int> queue = {src};
  parent[src] = src;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int w : g.Neighbors(u)) {
      if (parent[w] != -1) continue;
      parent[w] = u;
      if (w == dst) {
        std::vector<int> path = {dst};
        for (int v = dst; v != src; v = parent[v]) path.push_back(parent[v]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(w);
    }
  }
  return {};
}

bool BellmanFord(const Graph& g, int src, const std::vector<double>& weights,
                 std::vector<double>* dist, std::vector<int>* parent) {
  GRGAD_CHECK(src >= 0 && src < g.num_nodes());
  GRGAD_CHECK(dist != nullptr && parent != nullptr);
  const auto edges = g.Edges();
  GRGAD_CHECK_EQ(weights.size(), edges.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  dist->assign(g.num_nodes(), kInf);
  parent->assign(g.num_nodes(), -1);
  (*dist)[src] = 0.0;
  (*parent)[src] = src;
  bool changed = true;
  for (int round = 0; round < g.num_nodes() && changed; ++round) {
    changed = false;
    for (size_t e = 0; e < edges.size(); ++e) {
      const auto [u, v] = edges[e];
      const double w = weights[e];
      if ((*dist)[u] + w < (*dist)[v]) {
        (*dist)[v] = (*dist)[u] + w;
        (*parent)[v] = u;
        changed = true;
      }
      if ((*dist)[v] + w < (*dist)[u]) {
        (*dist)[u] = (*dist)[v] + w;
        (*parent)[u] = v;
        changed = true;
      }
    }
  }
  // One more pass: any improvement means a negative cycle.
  for (size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    const double w = weights[e];
    if ((*dist)[u] + w < (*dist)[v] || (*dist)[v] + w < (*dist)[u]) {
      return false;
    }
  }
  return true;
}

std::vector<int> BellmanFordPath(const Graph& g, int src, int dst,
                                 const std::vector<double>& weights) {
  std::vector<double> dist;
  std::vector<int> parent;
  if (!BellmanFord(g, src, weights, &dist, &parent)) return {};
  if (parent[dst] == -1) return {};
  std::vector<int> path = {dst};
  for (int v = dst; v != src; v = parent[v]) {
    path.push_back(parent[v]);
    if (path.size() > static_cast<size_t>(g.num_nodes())) return {};
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void Dijkstra(const Graph& g, int src,
              const std::function<double(int, int)>& cost,
              std::vector<double>* dist, std::vector<int>* parent,
              double max_cost) {
  GRGAD_CHECK(src >= 0 && src < g.num_nodes());
  GRGAD_CHECK(dist != nullptr && parent != nullptr);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  dist->assign(g.num_nodes(), kInf);
  parent->assign(g.num_nodes(), -1);
  (*dist)[src] = 0.0;
  (*parent)[src] = src;
  using Entry = std::pair<double, int>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  queue.emplace(0.0, src);
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > (*dist)[u]) continue;  // Stale entry.
    for (int w : g.Neighbors(u)) {
      const double c = cost(u, w);
      GRGAD_DCHECK(c >= 0.0);
      const double nd = d + c;
      if (max_cost > 0.0 && nd > max_cost) continue;
      if (nd < (*dist)[w]) {
        (*dist)[w] = nd;
        (*parent)[w] = u;
        queue.emplace(nd, w);
      }
    }
  }
}

BfsTree BuildBfsTree(const Graph& g, int root, int max_depth) {
  GRGAD_CHECK(root >= 0 && root < g.num_nodes());
  BfsTree tree;
  tree.parent.assign(g.num_nodes(), -1);
  tree.depth.assign(g.num_nodes(), kUnreachable);
  tree.parent[root] = root;
  tree.depth[root] = 0;
  tree.order.push_back(root);
  std::deque<int> queue = {root};
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    if (max_depth >= 0 && tree.depth[u] >= max_depth) continue;
    for (int w : g.Neighbors(u)) {
      if (tree.parent[w] != -1) continue;
      tree.parent[w] = u;
      tree.depth[w] = tree.depth[u] + 1;
      tree.order.push_back(w);
      queue.push_back(w);
    }
  }
  return tree;
}

std::vector<int> ConnectedComponents(const Graph& g) {
  std::vector<int> comp(g.num_nodes(), -1);
  int next = 0;
  std::deque<int> queue;
  for (int s = 0; s < g.num_nodes(); ++s) {
    if (comp[s] != -1) continue;
    comp[s] = next;
    queue.push_back(s);
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (int w : g.Neighbors(u)) {
        if (comp[w] == -1) {
          comp[w] = next;
          queue.push_back(w);
        }
      }
    }
    ++next;
  }
  return comp;
}

std::vector<std::vector<int>> ComponentsOfSubset(
    const Graph& g, const std::vector<int>& nodes) {
  std::unordered_set<int> in_set(nodes.begin(), nodes.end());
  for (int v : nodes) GRGAD_CHECK(v >= 0 && v < g.num_nodes());
  std::vector<std::vector<int>> groups;
  // Deterministic iteration: walk `nodes` order, BFS within the subset.
  std::vector<int> seen_group(g.num_nodes(), -1);
  for (int start : nodes) {
    if (seen_group[start] != -1) continue;
    std::vector<int> group;
    std::deque<int> queue = {start};
    seen_group[start] = static_cast<int>(groups.size());
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      group.push_back(u);
      for (int w : g.Neighbors(u)) {
        if (seen_group[w] == -1 && in_set.count(w) > 0) {
          seen_group[w] = static_cast<int>(groups.size());
          queue.push_back(w);
        }
      }
    }
    std::sort(group.begin(), group.end());
    groups.push_back(std::move(group));
  }
  return groups;
}

std::vector<int> KHopNeighborhood(const Graph& g, int v, int k) {
  const std::vector<int> dist = BfsDistances(g, v, k);
  std::vector<int> out;
  for (int u = 0; u < g.num_nodes(); ++u) {
    if (dist[u] != kUnreachable) out.push_back(u);
  }
  return out;
}

namespace {

/// Canonical form of a cycle through v: rotate so v is first, then pick the
/// lexicographically smaller of the two directions.
std::vector<int> CanonicalCycle(std::vector<int> cycle) {
  // cycle[0] is already v by construction of the DFS.
  std::vector<int> reversed = {cycle[0]};
  reversed.insert(reversed.end(), cycle.rbegin(), cycle.rend() - 1);
  return std::min(cycle, reversed);
}

}  // namespace

std::vector<std::vector<int>> CyclesThrough(const Graph& g, int v, int max_len,
                                            int max_cycles,
                                            int64_t max_steps) {
  GRGAD_CHECK(v >= 0 && v < g.num_nodes());
  GRGAD_CHECK_GE(max_len, 3);
  std::vector<std::vector<int>> out;
  std::vector<uint8_t> on_path(g.num_nodes(), 0);
  std::vector<int> path = {v};
  on_path[v] = 1;
  // Iterative DFS with explicit neighbor cursors. Only expand nodes > v
  // cannot be required (cycles may pass through smaller ids), so dedupe via
  // canonical forms instead.
  std::vector<std::vector<int>> seen;
  std::vector<size_t> cursor = {0};
  int64_t steps = 0;
  while (!path.empty() && ++steps <= max_steps &&
         out.size() < static_cast<size_t>(max_cycles)) {
    const int u = path.back();
    auto nb = g.Neighbors(u);
    if (cursor.back() >= nb.size()) {
      on_path[u] = 0;
      path.pop_back();
      cursor.pop_back();
      continue;
    }
    const int w = nb[cursor.back()++];
    if (w == v && path.size() >= 3) {
      std::vector<int> cyc = CanonicalCycle(path);
      if (std::find(seen.begin(), seen.end(), cyc) == seen.end()) {
        seen.push_back(cyc);
        out.push_back(std::move(cyc));
      }
      continue;
    }
    if (on_path[w] || path.size() >= static_cast<size_t>(max_len)) continue;
    path.push_back(w);
    on_path[w] = 1;
    cursor.push_back(0);
  }
  return out;
}

double ClusteringCoefficient(const Graph& g, int v) {
  auto nb = g.Neighbors(v);
  const int d = static_cast<int>(nb.size());
  if (d < 2) return 0.0;
  int links = 0;
  for (size_t i = 0; i < nb.size(); ++i) {
    for (size_t j = i + 1; j < nb.size(); ++j) {
      if (g.HasEdge(nb[i], nb[j])) ++links;
    }
  }
  return 2.0 * links / (static_cast<double>(d) * (d - 1));
}

double MeanNeighborDegree(const Graph& g, int v) {
  auto nb = g.Neighbors(v);
  if (nb.empty()) return 0.0;
  double s = 0.0;
  for (int w : nb) s += g.Degree(w);
  return s / static_cast<double>(nb.size());
}

}  // namespace grgad
