// Classic graph algorithms backing candidate-group sampling (Alg. 1),
// topology-pattern search (Alg. 2), and the baselines' group extraction.
//
// Two families live here:
//  - the allocating seed implementations (fresh O(n) dist/parent/visited
//    buffers per call) — the reference shapes the equivalence tests pin;
//  - workspace-backed variants that accept a TraversalWorkspace and are
//    allocation-free at steady state (epoch-stamped marks instead of O(n)
//    clears, reusable frontier/heap/stack buffers). Their results are
//    element-for-element identical to the seed variants.
//
// The traversals consumed by pattern search (ShortestPath, BuildBfsTree,
// CyclesThrough) are templates over any Graph-shaped type so they run on
// both `Graph` and the non-materializing `SubgraphView`.
#ifndef GRGAD_GRAPH_ALGORITHMS_H_
#define GRGAD_GRAPH_ALGORITHMS_H_

#include <algorithm>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/traversal_workspace.h"

namespace grgad {

// kUnreachable (unreachable marker in distance vectors) historically lived
// here; it is now defined in traversal_workspace.h and re-exported.

/// BFS hop distances from src; kUnreachable where not reachable within
/// max_depth (max_depth < 0 means unbounded).
std::vector<int> BfsDistances(const Graph& g, int src, int max_depth = -1);

/// Workspace-backed BfsDistances: results via ws->Hop(v), visit order in
/// ws->Order(); valid until the workspace's next traversal.
void BfsDistances(const Graph& g, int src, int max_depth,
                  TraversalWorkspace* ws);

/// Shortest path src -> dst as a node sequence (inclusive), empty when
/// unreachable. Unweighted graphs: BFS back-pointers. Works on Graph and
/// SubgraphView.
template <typename G>
std::vector<int> ShortestPath(const G& g, int src, int dst) {
  GRGAD_CHECK(src >= 0 && src < g.num_nodes());
  GRGAD_CHECK(dst >= 0 && dst < g.num_nodes());
  if (src == dst) return {src};
  std::vector<int> parent(g.num_nodes(), -1);
  std::vector<int> queue = {src};
  parent[src] = src;
  for (size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    for (int w : g.Neighbors(u)) {
      if (parent[w] != -1) continue;
      parent[w] = u;
      if (w == dst) {
        std::vector<int> path = {dst};
        for (int v = dst; v != src; v = parent[v]) path.push_back(parent[v]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(w);
    }
  }
  return {};
}

/// Bellman–Ford single-source distances with per-edge weights (indexed as
/// g.Edges() order, applied symmetrically; enumerated via ForEachEdge, so
/// no O(E) edge vector is materialized). Used for weighted path search; on
/// unit weights it reduces to BFS distances. Returns false on a negative
/// cycle (distances then undefined).
bool BellmanFord(const Graph& g, int src, const std::vector<double>& weights,
                 std::vector<double>* dist, std::vector<int>* parent);

/// Workspace-backed Bellman–Ford: dist/parent via ws->Dist(v)/ws->Parent(v).
bool BellmanFord(const Graph& g, int src, const std::vector<double>& weights,
                 TraversalWorkspace* ws);

/// Weighted shortest path via Bellman–Ford; empty when unreachable or a
/// negative cycle exists.
std::vector<int> BellmanFordPath(const Graph& g, int src, int dst,
                                 const std::vector<double>& weights);

/// Dijkstra single-source shortest paths with non-negative per-edge costs
/// given by `cost(u, v)` (must be symmetric). dist is +inf where
/// unreachable; parent[src] == src, -1 where unreachable. `max_cost`
/// (if > 0) prunes expansion beyond that distance.
void Dijkstra(const Graph& g, int src,
              const std::function<double(int, int)>& cost,
              std::vector<double>* dist, std::vector<int>* parent,
              double max_cost = 0.0);

/// Workspace-backed Dijkstra with precomputed per-adjacency-slot costs:
/// slot_costs[g.AdjOffset(u) + i] is the cost of the directed traversal
/// u -> Neighbors(u)[i] (size g.num_adj_slots()). Precomputing the slots
/// once per sampling call replaces the seed's cost-functor re-evaluation on
/// every relaxation attempt of every anchor. dist/parent via
/// ws->Dist(v)/ws->Parent(v).
void Dijkstra(const Graph& g, int src, std::span<const double> slot_costs,
              double max_cost, TraversalWorkspace* ws);

/// BFS tree of depth <= depth rooted at root: parent[v] for every reached v
/// (parent[root] == root), kUnreachable distances elsewhere.
struct BfsTree {
  std::vector<int> parent;  ///< -1 where unreached, root maps to itself.
  std::vector<int> depth;   ///< kUnreachable where unreached.
  std::vector<int> order;   ///< Visit order (root first).
};
template <typename G>
BfsTree BuildBfsTree(const G& g, int root, int max_depth) {
  GRGAD_CHECK(root >= 0 && root < g.num_nodes());
  BfsTree tree;
  tree.parent.assign(g.num_nodes(), -1);
  tree.depth.assign(g.num_nodes(), kUnreachable);
  tree.parent[root] = root;
  tree.depth[root] = 0;
  tree.order.push_back(root);
  for (size_t head = 0; head < tree.order.size(); ++head) {
    const int u = tree.order[head];
    if (max_depth >= 0 && tree.depth[u] >= max_depth) continue;
    for (int w : g.Neighbors(u)) {
      if (tree.parent[w] != -1) continue;
      tree.parent[w] = u;
      tree.depth[w] = tree.depth[u] + 1;
      tree.order.push_back(w);
    }
  }
  return tree;
}

/// Workspace-backed BFS tree: parent/depth via ws->Parent(v)/ws->Hop(v),
/// visit order (root first) in ws->Order().
template <typename G>
void BuildBfsTree(const G& g, int root, int max_depth,
                  TraversalWorkspace* ws) {
  GRGAD_CHECK(root >= 0 && root < g.num_nodes());
  ws->Begin(g.num_nodes());
  ws->Mark(root);
  ws->parent[root] = root;
  ws->hop[root] = 0;
  ws->order.push_back(root);
  for (size_t head = 0; head < ws->order.size(); ++head) {
    const int u = ws->order[head];
    if (max_depth >= 0 && ws->hop[u] >= max_depth) continue;
    for (int w : g.Neighbors(u)) {
      if (ws->Seen(w)) continue;
      ws->Mark(w);
      ws->parent[w] = u;
      ws->hop[w] = ws->hop[u] + 1;
      ws->order.push_back(w);
    }
  }
}

/// Connected-component labels in [0, #components).
std::vector<int> ConnectedComponents(const Graph& g);

/// Workspace-backed ConnectedComponents: labels (same values) in ws->comp;
/// the returned span is valid until the workspace's next traversal.
std::span<const int> ConnectedComponents(const Graph& g,
                                         TraversalWorkspace* ws);

/// Partitions `nodes` into the connected components of the subgraph they
/// induce; each returned group is sorted.
std::vector<std::vector<int>> ComponentsOfSubset(const Graph& g,
                                                 const std::vector<int>& nodes);

/// Workspace-backed ComponentsOfSubset (identical output): subset membership
/// uses the secondary mark set instead of a per-call hash set.
std::vector<std::vector<int>> ComponentsOfSubset(const Graph& g,
                                                 const std::vector<int>& nodes,
                                                 TraversalWorkspace* ws);

/// All nodes within k hops of v (including v).
std::vector<int> KHopNeighborhood(const Graph& g, int v, int k);

namespace internal {

/// Canonical form of a cycle through v: rotate so v is first, then pick the
/// lexicographically smaller of the two directions.
inline std::vector<int> CanonicalCycle(std::vector<int> cycle) {
  // cycle[0] is already v by construction of the DFS.
  std::vector<int> reversed = {cycle[0]};
  reversed.insert(reversed.end(), cycle.rbegin(), cycle.rend() - 1);
  return std::min(cycle, reversed);
}

}  // namespace internal

/// Enumerates simple cycles through `v` with length in [3, max_len], up to
/// max_cycles. Cycles are canonicalized (start at v, lexicographically
/// smaller direction) and deduplicated. DFS with path-blocking: output
/// sensitive, matching the role of Birmelé et al.'s optimal cycle listing in
/// the paper at the small cycle counts of these graphs. `max_steps` bounds
/// the DFS expansions (simple-path counts grow exponentially with max_len on
/// dense regions); enumeration is truncated deterministically when hit.
/// Works on Graph and SubgraphView.
template <typename G>
std::vector<std::vector<int>> CyclesThrough(const G& g, int v, int max_len,
                                            int max_cycles = 64,
                                            int64_t max_steps = 200000) {
  GRGAD_CHECK(v >= 0 && v < g.num_nodes());
  GRGAD_CHECK_GE(max_len, 3);
  std::vector<std::vector<int>> out;
  std::vector<uint8_t> on_path(g.num_nodes(), 0);
  std::vector<int> path = {v};
  on_path[v] = 1;
  // Iterative DFS with explicit neighbor cursors. Only expand nodes > v
  // cannot be required (cycles may pass through smaller ids), so dedupe via
  // canonical forms instead.
  std::vector<std::vector<int>> seen;
  std::vector<size_t> cursor = {0};
  int64_t steps = 0;
  while (!path.empty() && ++steps <= max_steps &&
         out.size() < static_cast<size_t>(max_cycles)) {
    const int u = path.back();
    auto nb = g.Neighbors(u);
    if (cursor.back() >= nb.size()) {
      on_path[u] = 0;
      path.pop_back();
      cursor.pop_back();
      continue;
    }
    const int w = nb[cursor.back()++];
    if (w == v && path.size() >= 3) {
      std::vector<int> cyc = internal::CanonicalCycle(path);
      if (std::find(seen.begin(), seen.end(), cyc) == seen.end()) {
        seen.push_back(cyc);
        out.push_back(std::move(cyc));
      }
      continue;
    }
    if (on_path[w] || path.size() >= static_cast<size_t>(max_len)) continue;
    path.push_back(w);
    on_path[w] = 1;
    cursor.push_back(0);
  }
  return out;
}

/// Workspace-backed cycle enumeration: identical cycles, returned as a view
/// of workspace-owned storage (valid until the next traversal on `ws`). The
/// DFS stack, on-path marks, and output slots are all reused.
template <typename G>
std::span<const std::vector<int>> CyclesThrough(const G& g, int v, int max_len,
                                                int max_cycles,
                                                int64_t max_steps,
                                                TraversalWorkspace* ws) {
  GRGAD_CHECK(v >= 0 && v < g.num_nodes());
  GRGAD_CHECK_GE(max_len, 3);
  ws->Begin(g.num_nodes());
  ws->ReserveDepth(static_cast<size_t>(max_len) + 1);
  ws->path.clear();
  ws->cursor.clear();
  ws->path.push_back(v);
  ws->Mark2(v);  // On-path flags live in the secondary mark set.
  ws->cursor.push_back(0);
  int64_t steps = 0;
  while (!ws->path.empty() && ++steps <= max_steps &&
         ws->num_cycles < static_cast<size_t>(max_cycles)) {
    const int u = ws->path.back();
    auto nb = g.Neighbors(u);
    if (ws->cursor.back() >= nb.size()) {
      ws->Unmark2(u);
      ws->path.pop_back();
      ws->cursor.pop_back();
      continue;
    }
    const int w = nb[ws->cursor.back()++];
    if (w == v && ws->path.size() >= 3) {
      std::vector<int> cyc = internal::CanonicalCycle(ws->path);
      const auto found = ws->Cycles();
      if (std::find(found.begin(), found.end(), cyc) == found.end()) {
        ws->AcquireCycleSlot() = std::move(cyc);
      }
      continue;
    }
    if (ws->Seen2(w) || ws->path.size() >= static_cast<size_t>(max_len)) {
      continue;
    }
    ws->path.push_back(w);
    ws->Mark2(w);
    ws->cursor.push_back(0);
  }
  return ws->Cycles();
}

/// Local clustering coefficient of v (0 when deg < 2).
double ClusteringCoefficient(const Graph& g, int v);

/// Mean degree of v's neighbors (0 for isolated nodes).
double MeanNeighborDegree(const Graph& g, int v);

}  // namespace grgad

#endif  // GRGAD_GRAPH_ALGORITHMS_H_
