// Classic graph algorithms backing candidate-group sampling (Alg. 1),
// topology-pattern search (Alg. 2), and the baselines' group extraction.
#ifndef GRGAD_GRAPH_ALGORITHMS_H_
#define GRGAD_GRAPH_ALGORITHMS_H_

#include <functional>
#include <limits>
#include <vector>

#include "src/graph/graph.h"

namespace grgad {

/// Marker for unreachable nodes in distance vectors.
inline constexpr int kUnreachable = std::numeric_limits<int>::max();

/// BFS hop distances from src; kUnreachable where not reachable within
/// max_depth (max_depth < 0 means unbounded).
std::vector<int> BfsDistances(const Graph& g, int src, int max_depth = -1);

/// Shortest path src -> dst as a node sequence (inclusive), empty when
/// unreachable. Unweighted graphs: BFS back-pointers.
std::vector<int> ShortestPath(const Graph& g, int src, int dst);

/// Bellman–Ford single-source distances with per-edge weights (indexed as
/// g.Edges() order, applied symmetrically). Used for weighted path search;
/// on unit weights it reduces to BFS distances. Returns false on a negative
/// cycle (distances then undefined).
bool BellmanFord(const Graph& g, int src, const std::vector<double>& weights,
                 std::vector<double>* dist, std::vector<int>* parent);

/// Weighted shortest path via Bellman–Ford; empty when unreachable or a
/// negative cycle exists.
std::vector<int> BellmanFordPath(const Graph& g, int src, int dst,
                                 const std::vector<double>& weights);

/// Dijkstra single-source shortest paths with non-negative per-edge costs
/// given by `cost(u, v)` (must be symmetric). dist is +inf where
/// unreachable; parent[src] == src, -1 where unreachable. `max_cost`
/// (if > 0) prunes expansion beyond that distance.
void Dijkstra(const Graph& g, int src,
              const std::function<double(int, int)>& cost,
              std::vector<double>* dist, std::vector<int>* parent,
              double max_cost = 0.0);

/// BFS tree of depth <= depth rooted at root: parent[v] for every reached v
/// (parent[root] == root), kUnreachable distances elsewhere.
struct BfsTree {
  std::vector<int> parent;  ///< -1 where unreached, root maps to itself.
  std::vector<int> depth;   ///< kUnreachable where unreached.
  std::vector<int> order;   ///< Visit order (root first).
};
BfsTree BuildBfsTree(const Graph& g, int root, int max_depth);

/// Connected-component labels in [0, #components).
std::vector<int> ConnectedComponents(const Graph& g);

/// Partitions `nodes` into the connected components of the subgraph they
/// induce; each returned group is sorted.
std::vector<std::vector<int>> ComponentsOfSubset(const Graph& g,
                                                 const std::vector<int>& nodes);

/// All nodes within k hops of v (including v).
std::vector<int> KHopNeighborhood(const Graph& g, int v, int k);

/// Enumerates simple cycles through `v` with length in [3, max_len], up to
/// max_cycles. Cycles are canonicalized (start at v, lexicographically
/// smaller direction) and deduplicated. DFS with path-blocking: output
/// sensitive, matching the role of Birmelé et al.'s optimal cycle listing in
/// the paper at the small cycle counts of these graphs. `max_steps` bounds
/// the DFS expansions (simple-path counts grow exponentially with max_len on
/// dense regions); enumeration is truncated deterministically when hit.
std::vector<std::vector<int>> CyclesThrough(const Graph& g, int v,
                                            int max_len, int max_cycles = 64,
                                            int64_t max_steps = 200000);

/// Local clustering coefficient of v (0 when deg < 2).
double ClusteringCoefficient(const Graph& g, int v);

/// Mean degree of v's neighbors (0 for isolated nodes).
double MeanNeighborDegree(const Graph& g, int v);

}  // namespace grgad

#endif  // GRGAD_GRAPH_ALGORITHMS_H_
