// Non-materializing induced-subgraph view (candidate groups, Alg. 2 input).
//
// The seed pipeline materialized every candidate group through
// Graph::InducedSubgraph — a GraphBuilder run (edge sort + CSR build) plus a
// gathered attribute Matrix per group, repeated for every pattern search,
// augmentation, and TPGCL batch build. A SubgraphView exposes the same local
// graph (identical local-id assignment, identical sorted neighbor rows,
// identical edge enumeration order) directly over the host's CSR: Reset()
// re-targets the view at a new node list reusing all internal scratch, the
// global→local remap is epoch-stamped so re-targeting costs O(group), not
// O(host), and attributes are read through the host rows instead of copied.
// SearchPatterns / ClassifyGroupPattern / Augment / the TPGCL batch builder
// accept views in place of induced copies (the candidate fast path);
// tests/traversal_equivalence_test.cc pins view ≡ InducedSubgraph.
#ifndef GRGAD_GRAPH_SUBGRAPH_VIEW_H_
#define GRGAD_GRAPH_SUBGRAPH_VIEW_H_

#include <span>
#include <vector>

#include "src/graph/graph.h"

namespace grgad {

/// A borrowed view of the subgraph of `host` induced by a node list.
///
/// Valid while the host outlives it and until the next Reset(). Local node
/// ids follow the first-occurrence order of the node list (exactly
/// Graph::InducedSubgraph's assignment); neighbor rows are sorted by local
/// id, matching the materialized CSR.
class SubgraphView {
 public:
  SubgraphView() = default;
  SubgraphView(const SubgraphView&) = delete;
  SubgraphView& operator=(const SubgraphView&) = delete;

  /// Re-targets the view at the subgraph of `host` induced by `nodes`
  /// (deduplicated, order preserved). Reuses internal scratch; O(sum of
  /// in-group degrees) after the remap table has grown to the host size.
  void Reset(const Graph& host, std::span<const int> nodes);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  /// Undirected edges inside the group.
  int num_edges() const { return static_cast<int>(adj_.size() / 2); }

  /// Local-id neighbors of local node v, ascending.
  std::span<const int> Neighbors(int v) const {
    GRGAD_DCHECK(v >= 0 && v < num_nodes());
    return {adj_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }

  int Degree(int v) const {
    GRGAD_DCHECK(v >= 0 && v < num_nodes());
    return offsets_[v + 1] - offsets_[v];
  }

  /// True iff the local edge {u, v} exists. O(log deg(u)).
  bool HasEdge(int u, int v) const;

  /// Host node id of a local id (the mapping() of the materialized graph).
  int GlobalId(int local) const {
    GRGAD_DCHECK(local >= 0 && local < num_nodes());
    return nodes_[local];
  }
  std::span<const int> GlobalIds() const { return nodes_; }

  /// Local id of a host node, -1 when outside the view.
  int LocalId(int global) const {
    GRGAD_DCHECK(host_ != nullptr);
    GRGAD_DCHECK(global >= 0 && global < host_->num_nodes());
    return remap_stamp_[global] == remap_epoch_ ? remap_[global] : -1;
  }

  const Graph& host() const {
    GRGAD_DCHECK(host_ != nullptr);
    return *host_;
  }

  bool has_attributes() const {
    return host_ != nullptr && host_->has_attributes();
  }
  size_t attr_dim() const { return host_ == nullptr ? 0 : host_->attr_dim(); }
  /// Host attribute row of local node v (no copy).
  const double* AttrRow(int v) const {
    return host().attributes().RowPtr(GlobalId(v));
  }

  /// Visits every local undirected edge as visitor(u, v) with u < v, in
  /// exactly the order Materialize().Edges() would report.
  template <typename Visitor>
  void ForEachEdge(Visitor&& visitor) const {
    for (int u = 0; u < num_nodes(); ++u) {
      for (int i = offsets_[u]; i < offsets_[u + 1]; ++i) {
        const int v = adj_[i];
        if (v > u) visitor(u, v);
      }
    }
  }

  /// The equivalent materialized graph (host.InducedSubgraph of the node
  /// list) — for tests and callers that need an owning Graph.
  Graph Materialize() const;

 private:
  const Graph* host_ = nullptr;
  std::vector<int> nodes_;    ///< local -> host id, first-occurrence order.
  std::vector<int> offsets_;  ///< CSR offsets into adj_, length n+1.
  std::vector<int> adj_;      ///< Local-id rows, sorted ascending.
  // Epoch-stamped host->local remap: sized to the host once, reset in O(1).
  std::vector<int> remap_;
  std::vector<uint32_t> remap_stamp_;
  uint32_t remap_epoch_ = 0;
};

}  // namespace grgad

#endif  // GRGAD_GRAPH_SUBGRAPH_VIEW_H_
