// Mutable graph layer for serving under live traffic.
//
// `Graph` is deliberately immutable: every consumer (traversals, the
// sampler, GraphSNN, the GCN operators) assumes frozen sorted CSR rows. A
// DynamicGraph keeps that world intact while absorbing edge/node
// insertions and deletions from a running daemon:
//
//  - Mutations apply to a slack CSR: each row owns a capacity range in one
//    flat adjacency array, entries stay sorted, and inserts/erases memmove
//    within the row's slack. When a row overflows its slack the whole CSR
//    regrows with fresh headroom (an amortized compaction event, counted in
//    stats). Neighbors/Degree/HasEdge/ForEachEdge expose exactly the
//    immutable Graph's contract — sorted spans, u < v edge streaming in
//    Edges() order — so the templated algorithms (BuildBfsTree,
//    CyclesThrough, ShortestPath) run on a DynamicGraph unmodified.
//  - Every applied mutation is appended to a delta log, the record a
//    dirty-region tracker or replication consumer replays; Compact()
//    rebuilds uniform slack and truncates the log.
//  - PackedView() lazily compacts into a canonical immutable Graph —
//    bitwise identical (offsets, adjacency, attributes) to what
//    GraphBuilder would build from the current edge set — and caches it
//    until the next mutation. Consumers that demand a `const Graph&`
//    (GroupSampler, the training stages, SubgraphView) run on the view.
//
// Node semantics: AddNode appends a fresh isolated id (with an attribute
// row); RemoveNode detaches every incident edge but keeps the id as an
// isolated node. Ids are stable handles held by resident artifacts and
// remote clients — renumbering on removal would corrupt both.
//
// Not thread-safe: the serving daemon mutates from its single executor
// thread, matching the one-request-at-a-time execution model.
#ifndef GRGAD_GRAPH_DYNAMIC_GRAPH_H_
#define GRGAD_GRAPH_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/matrix.h"
#include "src/util/status.h"

namespace grgad {

/// One applied mutation, in application order (the delta log entry).
struct GraphMutation {
  enum class Kind { kAddEdge, kRemoveEdge, kAddNode, kRemoveNode };
  Kind kind = Kind::kAddEdge;
  int u = -1;  ///< Edge endpoint / the node id for node ops.
  int v = -1;  ///< Second endpoint (-1 for node ops).
};

/// Wire form of one mutation: `<kind> <u> <v>` with kind one of add-edge,
/// remove-edge, add-node, remove-node (the WAL record payload).
std::string FormatGraphMutation(const GraphMutation& m);

/// Parses FormatGraphMutation output; false on any malformed input (extra
/// tokens, unknown kind, non-integer endpoints).
bool ParseGraphMutation(const std::string& text, GraphMutation* out);

/// Durable text form of a packed CSR: header (version, node/edge counts,
/// attr_dim), the edge list in Edges() order, then one exact-double
/// attribute row per node. ParseGraphSnapshot rebuilds through GraphBuilder,
/// so the round trip is bitwise identical (offsets, adjacency, attributes)
/// to the serialized graph.
std::string SerializeGraphSnapshot(const Graph& g);
Result<Graph> ParseGraphSnapshot(const std::string& text);

/// Mutation/compaction counters (monotonic except pending_log).
struct DynamicGraphStats {
  uint64_t edges_added = 0;
  uint64_t edges_removed = 0;
  uint64_t nodes_added = 0;
  uint64_t nodes_removed = 0;
  uint64_t regrows = 0;       ///< Slack overflows that forced a CSR rebuild.
  uint64_t compactions = 0;   ///< Explicit Compact() calls.
  size_t pending_log = 0;     ///< Delta-log entries since the last Compact().
};

class DynamicGraph {
 public:
  /// Per-row slack reserved on regrow/compaction; absorbs that many inserts
  /// per row before the next rebuild.
  static constexpr int kRowSlack = 4;

  DynamicGraph() = default;
  /// Starts from `base`; PackedView() before any mutation is bitwise
  /// identical to it (modulo the subgraph mapping, which a mutable host
  /// graph does not carry).
  explicit DynamicGraph(const Graph& base);

  // ---- the immutable Graph's read contract ----------------------------------

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return num_edges_; }

  /// Neighbors of v, ascending, no self-loops (live view — invalidated by
  /// the next mutation).
  std::span<const int> Neighbors(int v) const {
    GRGAD_DCHECK(v >= 0 && v < num_nodes_);
    return {adj_.data() + row_start_[v], static_cast<size_t>(degree_[v])};
  }

  int Degree(int v) const {
    GRGAD_DCHECK(v >= 0 && v < num_nodes_);
    return degree_[v];
  }

  /// True iff the undirected edge {u, v} exists. O(log deg(u)).
  bool HasEdge(int u, int v) const;

  /// Visits every undirected edge as visitor(u, v) with u < v, in exactly
  /// the packed Graph's Edges() order.
  template <typename Visitor>
  void ForEachEdge(Visitor&& visitor) const {
    for (int u = 0; u < num_nodes_; ++u) {
      const int* row = adj_.data() + row_start_[u];
      for (int i = 0; i < degree_[u]; ++i) {
        if (row[i] > u) visitor(u, row[i]);
      }
    }
  }

  /// Node attributes (num_nodes x attr_dim); rebuilt on AddNode.
  const Matrix& attributes() const { return attributes_; }
  size_t attr_dim() const { return attributes_.cols(); }
  bool has_attributes() const { return !attributes_.empty(); }

  // ---- mutations ------------------------------------------------------------

  /// Inserts the undirected edge {u, v}. False (and no log entry) for
  /// self-loops, out-of-range ids, or an edge already present.
  bool AddEdge(int u, int v);

  /// Removes the undirected edge {u, v}; false when absent or invalid.
  bool RemoveEdge(int u, int v);

  /// Appends a fresh isolated node and returns its id. `attrs` must carry
  /// attr_dim() values when the graph has attributes (extra values are an
  /// error, missing attributes on an attributed graph zero-fill is NOT done
  /// silently — pass the row).
  int AddNode(std::span<const double> attrs);

  /// Detaches every edge incident to v (the id survives as an isolated
  /// node). False for out-of-range ids or already-isolated nodes.
  bool RemoveNode(int v);

  // ---- compaction + packed view ---------------------------------------------

  /// Rebuilds the slack CSR with uniform kRowSlack headroom, truncates the
  /// delta log, and refreshes the packed view. Cheap O(n + E).
  void Compact();

  /// Canonical immutable view of the current edge set — bitwise identical
  /// to GraphBuilder::Build over the same edges and attributes. Lazily
  /// maintained: pending edge mutations are spliced into the cached packed
  /// CSR in O(E) memmoves per mutation (node mutations force one full
  /// canonical rebuild); the reference is invalidated by the next mutation
  /// or Compact().
  const Graph& PackedView() const;

  /// Delta log since the last Compact(), in application order.
  const std::vector<GraphMutation>& DeltaLog() const { return log_; }

  DynamicGraphStats stats() const {
    DynamicGraphStats s = stats_;
    s.pending_log = log_.size();
    return s;
  }

  /// Structural sanity check over the slack CSR (sorted rows, symmetry,
  /// degree/capacity consistency).
  Status Validate() const;

 private:
  /// Row capacity (degree + slack) of v.
  int RowCapacity(int v) const { return row_start_[v + 1] - row_start_[v]; }

  /// Inserts w into v's sorted row; regrows the CSR when the row is full.
  void InsertHalfEdge(int v, int w);
  /// Erases w from v's sorted row (must be present).
  void EraseHalfEdge(int v, int w);
  /// Rebuilds adj_/row_start_ with `slack` extra slots per row.
  void Regrow(int slack);
  /// Splices one logged edge mutation into the cached packed CSR.
  void ApplyPackedEdgeDelta(const GraphMutation& m) const;

  int num_nodes_ = 0;
  int num_edges_ = 0;
  std::vector<int> row_start_;  ///< Length num_nodes_+1: row capacity starts.
  std::vector<int> degree_;     ///< Live entries per row.
  std::vector<int> adj_;        ///< Capacity slots; live prefix sorted per row.
  Matrix attributes_;
  std::vector<GraphMutation> log_;
  DynamicGraphStats stats_;

  mutable Graph packed_;          ///< Cached canonical view.
  mutable size_t packed_applied_ = 0;  ///< log_ entries reflected in packed_.
};

}  // namespace grgad

#endif  // GRGAD_GRAPH_DYNAMIC_GRAPH_H_
