#include "src/graph/dynamic_graph.h"

#include <algorithm>
#include <utility>

namespace grgad {

DynamicGraph::DynamicGraph(const Graph& base) {
  num_nodes_ = base.num_nodes();
  num_edges_ = base.num_edges();
  degree_.resize(num_nodes_);
  row_start_.resize(num_nodes_ + 1);
  row_start_[0] = 0;
  for (int v = 0; v < num_nodes_; ++v) {
    degree_[v] = base.Degree(v);
    row_start_[v + 1] = row_start_[v] + degree_[v] + kRowSlack;
  }
  adj_.assign(row_start_[num_nodes_], 0);
  for (int v = 0; v < num_nodes_; ++v) {
    auto nb = base.Neighbors(v);
    std::copy(nb.begin(), nb.end(), adj_.begin() + row_start_[v]);
  }
  attributes_ = base.attributes();
  packed_ = base;
  packed_applied_ = 0;
}

bool DynamicGraph::HasEdge(int u, int v) const {
  if (u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_) return false;
  auto nb = Neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

void DynamicGraph::Regrow(int slack) {
  std::vector<int> new_start(num_nodes_ + 1);
  new_start[0] = 0;
  for (int v = 0; v < num_nodes_; ++v) {
    new_start[v + 1] = new_start[v] + degree_[v] + slack;
  }
  std::vector<int> new_adj(new_start[num_nodes_], 0);
  for (int v = 0; v < num_nodes_; ++v) {
    std::copy(adj_.begin() + row_start_[v],
              adj_.begin() + row_start_[v] + degree_[v],
              new_adj.begin() + new_start[v]);
  }
  row_start_ = std::move(new_start);
  adj_ = std::move(new_adj);
  ++stats_.regrows;
}

void DynamicGraph::InsertHalfEdge(int v, int w) {
  if (degree_[v] == RowCapacity(v)) Regrow(kRowSlack);
  int* row = adj_.data() + row_start_[v];
  int* end = row + degree_[v];
  int* pos = std::lower_bound(row, end, w);
  std::copy_backward(pos, end, end + 1);
  *pos = w;
  ++degree_[v];
}

void DynamicGraph::EraseHalfEdge(int v, int w) {
  int* row = adj_.data() + row_start_[v];
  int* end = row + degree_[v];
  int* pos = std::lower_bound(row, end, w);
  GRGAD_DCHECK(pos != end && *pos == w);
  std::copy(pos + 1, end, pos);
  --degree_[v];
}

bool DynamicGraph::AddEdge(int u, int v) {
  if (u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_ || u == v) {
    return false;
  }
  if (HasEdge(u, v)) return false;
  InsertHalfEdge(u, v);
  InsertHalfEdge(v, u);
  ++num_edges_;
  log_.push_back({GraphMutation::Kind::kAddEdge, std::min(u, v),
                  std::max(u, v)});
  ++stats_.edges_added;
  return true;
}

bool DynamicGraph::RemoveEdge(int u, int v) {
  if (!HasEdge(u, v)) return false;
  EraseHalfEdge(u, v);
  EraseHalfEdge(v, u);
  --num_edges_;
  log_.push_back({GraphMutation::Kind::kRemoveEdge, std::min(u, v),
                  std::max(u, v)});
  ++stats_.edges_removed;
  return true;
}

int DynamicGraph::AddNode(std::span<const double> attrs) {
  GRGAD_CHECK_EQ(attrs.size(), attr_dim());
  const int id = num_nodes_;
  ++num_nodes_;
  degree_.push_back(0);
  row_start_.push_back(row_start_.back() + kRowSlack);
  adj_.resize(row_start_.back(), 0);
  if (!attrs.empty()) {
    Matrix grown(num_nodes_, attr_dim());
    for (int r = 0; r < id; ++r) {
      const double* src = attributes_.RowPtr(r);
      double* dst = grown.RowPtr(r);
      std::copy(src, src + attr_dim(), dst);
    }
    std::copy(attrs.begin(), attrs.end(), grown.RowPtr(id));
    attributes_ = std::move(grown);
  }
  log_.push_back({GraphMutation::Kind::kAddNode, id, -1});
  ++stats_.nodes_added;
  return id;
}

bool DynamicGraph::RemoveNode(int v) {
  if (v < 0 || v >= num_nodes_ || degree_[v] == 0) return false;
  // Detach via the row snapshot: EraseHalfEdge(v, w) shifts v's row, so
  // copy the neighbor list first.
  const std::vector<int> neighbors(Neighbors(v).begin(), Neighbors(v).end());
  for (int w : neighbors) {
    EraseHalfEdge(w, v);
    --num_edges_;
  }
  degree_[v] = 0;
  log_.push_back({GraphMutation::Kind::kRemoveNode, v, -1});
  ++stats_.nodes_removed;
  return true;
}

void DynamicGraph::Compact() {
  Regrow(kRowSlack);
  --stats_.regrows;  // Regrow() counted it; bill it as a compaction instead.
  ++stats_.compactions;
  (void)PackedView();  // Fold the pending delta into the cached view first.
  log_.clear();
  packed_applied_ = 0;
}

void DynamicGraph::ApplyPackedEdgeDelta(const GraphMutation& m) const {
  std::vector<int>& offsets = packed_.offsets_;
  std::vector<int>& adj = packed_.adj_;
  auto insert_half = [&](int a, int b) {
    auto pos = std::lower_bound(adj.begin() + offsets[a],
                                adj.begin() + offsets[a + 1], b);
    adj.insert(pos, b);
    for (size_t w = a + 1; w < offsets.size(); ++w) ++offsets[w];
  };
  auto erase_half = [&](int a, int b) {
    auto pos = std::lower_bound(adj.begin() + offsets[a],
                                adj.begin() + offsets[a + 1], b);
    GRGAD_DCHECK(pos != adj.begin() + offsets[a + 1] && *pos == b);
    adj.erase(pos);
    for (size_t w = a + 1; w < offsets.size(); ++w) --offsets[w];
  };
  if (m.kind == GraphMutation::Kind::kAddEdge) {
    insert_half(m.u, m.v);
    insert_half(m.v, m.u);
  } else {
    erase_half(m.u, m.v);
    erase_half(m.v, m.u);
  }
}

const Graph& DynamicGraph::PackedView() const {
  if (packed_applied_ == log_.size()) return packed_;
  // Node mutations resize rows and the attribute matrix (and kRemoveNode
  // does not log the edges it detached): full canonical rebuild. Pure edge
  // churn replays the pending log as sorted splices into the cached CSR —
  // O(E) memmoves per mutation instead of an O(E log E) builder pass, and
  // bitwise the same Graph because a packed CSR is uniquely determined by
  // its edge set.
  bool node_mutation = false;
  for (size_t i = packed_applied_; i < log_.size() && !node_mutation; ++i) {
    node_mutation = log_[i].kind == GraphMutation::Kind::kAddNode ||
                    log_[i].kind == GraphMutation::Kind::kRemoveNode;
  }
  if (node_mutation) {
    GraphBuilder builder(num_nodes_);
    // ForEachEdge streams (u, v) pairs already in GraphBuilder's normalized
    // sorted order, so Build()'s sort+unique pass is a near-no-op and the
    // result is canonical: bitwise identical to building from scratch.
    ForEachEdge([&builder](int u, int v) { builder.AddEdge(u, v); });
    packed_ = builder.Build(attributes_);
  } else {
    for (size_t i = packed_applied_; i < log_.size(); ++i) {
      ApplyPackedEdgeDelta(log_[i]);
    }
  }
  packed_applied_ = log_.size();
  return packed_;
}

Status DynamicGraph::Validate() const {
  if (row_start_.size() != static_cast<size_t>(num_nodes_) + 1 ||
      degree_.size() != static_cast<size_t>(num_nodes_)) {
    return Status::Internal("dynamic graph: offset/degree size mismatch");
  }
  int64_t half_edges = 0;
  for (int v = 0; v < num_nodes_; ++v) {
    if (degree_[v] < 0 || degree_[v] > RowCapacity(v)) {
      return Status::Internal("dynamic graph: degree exceeds row capacity");
    }
    auto nb = Neighbors(v);
    for (size_t i = 0; i < nb.size(); ++i) {
      if (nb[i] < 0 || nb[i] >= num_nodes_) {
        return Status::Internal("dynamic graph: neighbor id out of range");
      }
      if (nb[i] == v) return Status::Internal("dynamic graph: self-loop");
      if (i > 0 && nb[i] <= nb[i - 1]) {
        return Status::Internal("dynamic graph: row not strictly sorted");
      }
      if (!HasEdge(nb[i], v)) {
        return Status::Internal("dynamic graph: asymmetric edge");
      }
    }
    half_edges += degree_[v];
  }
  if (half_edges != 2 * static_cast<int64_t>(num_edges_)) {
    return Status::Internal("dynamic graph: edge count mismatch");
  }
  if (has_attributes() &&
      attributes_.rows() != static_cast<size_t>(num_nodes_)) {
    return Status::Internal("dynamic graph: attribute row count mismatch");
  }
  return Status::Ok();
}

}  // namespace grgad
