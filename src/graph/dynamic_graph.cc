#include "src/graph/dynamic_graph.h"

#include <algorithm>
#include <atomic>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/atomic_io.h"
#include "src/util/parallel.h"

namespace grgad {
namespace {

const char* MutationKindName(GraphMutation::Kind kind) {
  switch (kind) {
    case GraphMutation::Kind::kAddEdge:
      return "add-edge";
    case GraphMutation::Kind::kRemoveEdge:
      return "remove-edge";
    case GraphMutation::Kind::kAddNode:
      return "add-node";
    case GraphMutation::Kind::kRemoveNode:
      return "remove-node";
  }
  return "add-edge";
}

bool ParseMutationKind(const std::string& name, GraphMutation::Kind* out) {
  if (name == "add-edge") {
    *out = GraphMutation::Kind::kAddEdge;
  } else if (name == "remove-edge") {
    *out = GraphMutation::Kind::kRemoveEdge;
  } else if (name == "add-node") {
    *out = GraphMutation::Kind::kAddNode;
  } else if (name == "remove-node") {
    *out = GraphMutation::Kind::kRemoveNode;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::string FormatGraphMutation(const GraphMutation& m) {
  return std::string(MutationKindName(m.kind)) + " " + std::to_string(m.u) +
         " " + std::to_string(m.v);
}

bool ParseGraphMutation(const std::string& text, GraphMutation* out) {
  std::istringstream in(text);
  std::string kind_name;
  long long u = 0;
  long long v = 0;
  if (!(in >> kind_name >> u >> v)) return false;
  std::string extra;
  if (in >> extra) return false;
  GraphMutation m;
  if (!ParseMutationKind(kind_name, &m.kind)) return false;
  if (u < INT_MIN || u > INT_MAX || v < INT_MIN || v > INT_MAX) return false;
  m.u = static_cast<int>(u);
  m.v = static_cast<int>(v);
  *out = m;
  return true;
}

std::string SerializeGraphSnapshot(const Graph& g) {
  std::string out;
  out += "grgad_graph_version 1\n";
  out += "nodes " + std::to_string(g.num_nodes()) + "\n";
  out += "edges " + std::to_string(g.num_edges()) + "\n";
  out += "attr_dim " + std::to_string(g.attr_dim()) + "\n";
  g.ForEachEdge([&out](int u, int v) {
    out += "e " + std::to_string(u) + " " + std::to_string(v) + "\n";
  });
  if (g.has_attributes()) {
    // Raw-bit cells: trivially bit-exact and table-parsed on recovery
    // (decimal round-tripping needs a base-10 correction loop per cell),
    // and this block is most of the snapshot's bytes.
    const Matrix& attrs = g.attributes();
    for (size_t r = 0; r < attrs.rows(); ++r) {
      const double* row = attrs.RowPtr(r);
      for (size_t c = 0; c < attrs.cols(); ++c) {
        if (c > 0) out += ' ';
        out += FormatDoubleBits(row[c]);
      }
      out += '\n';
    }
  }
  return out;
}

Result<Graph> ParseGraphSnapshot(const std::string& text) {
  // TokenScanner, not istringstream: recovery parses one numeric token per
  // attribute cell, and stream extraction made the 8000-node serving
  // snapshot load slower than its incremental-refresh replay.
  TokenScanner in(text);
  long long version = 0;
  if (!in.Keyword("grgad_graph_version") || !in.I64(&version) ||
      version != 1) {
    return Status::DataLoss("graph snapshot: bad or missing version header");
  }
  long long nodes = 0;
  long long edges = 0;
  long long attr_dim = 0;
  if (!in.Keyword("nodes") || !in.I64(&nodes) || nodes < 0 ||
      nodes > INT_MAX) {
    return Status::DataLoss("graph snapshot: bad node count");
  }
  if (!in.Keyword("edges") || !in.I64(&edges) || edges < 0) {
    return Status::DataLoss("graph snapshot: bad edge count");
  }
  if (!in.Keyword("attr_dim") || !in.I64(&attr_dim) || attr_dim < 0) {
    return Status::DataLoss("graph snapshot: bad attr_dim");
  }
  GraphBuilder builder(static_cast<int>(nodes));
  for (long long i = 0; i < edges; ++i) {
    long long u = 0;
    long long v = 0;
    if (!in.Keyword("e") || !in.I64(&u) || !in.I64(&v)) {
      return Status::DataLoss("graph snapshot: truncated edge list");
    }
    if (u < 0 || v < 0 || u >= nodes || v >= nodes || u == v) {
      return Status::DataLoss("graph snapshot: edge endpoint out of range");
    }
    builder.AddEdge(static_cast<int>(u), static_cast<int>(v));
  }
  if (builder.num_edges() != edges) {
    return Status::DataLoss("graph snapshot: duplicate edges in edge list");
  }
  Matrix attrs;
  if (attr_dim > 0) {
    attrs = Matrix(static_cast<size_t>(nodes), static_cast<size_t>(attr_dim));
    // The attribute block is fixed-width by construction: FormatDoubleBits
    // cells are exactly 16 digits, so every cell lives at a computable
    // offset and the rows split across the worker pool with no scanning
    // pass (each worker writes only its own Matrix rows). These cells are
    // the bulk of the snapshot text, and recovery time is this parse at
    // GRGAD_THREADS=1 — token scanning here cost ~6x the decode itself.
    std::string_view rest = in.Remaining();
    if (!rest.empty() && rest.front() == '\n') rest.remove_prefix(1);
    const size_t row_width = static_cast<size_t>(attr_dim) * 17;
    const size_t need = row_width * static_cast<size_t>(nodes);
    if (rest.size() < need) {
      return Status::DataLoss("graph snapshot: truncated attribute rows");
    }
    std::atomic<bool> damaged{false};
    ParallelFor(static_cast<size_t>(nodes), 64, [&](size_t begin, size_t end) {
      for (size_t r = begin; r < end; ++r) {
        const char* p = rest.data() + r * row_width;
        double* row = attrs.RowPtr(r);
        for (long long c = 0; c < attr_dim; ++c) {
          uint64_t bits = 0;
          int bad = 0;
          for (int k = 0; k < 16; ++k) {
            const int d = HexNibble(p[k]);
            bad |= d;
            bits = (bits << 4) | static_cast<uint64_t>(d & 0xf);
          }
          const char sep = c + 1 == attr_dim ? '\n' : ' ';
          if (bad < 0 || p[16] != sep) {
            damaged.store(true, std::memory_order_relaxed);
            return;
          }
          std::memcpy(&row[c], &bits, sizeof(double));
          p += 17;
        }
      }
    });
    if (damaged.load()) {
      return Status::DataLoss("graph snapshot: truncated attribute rows");
    }
    TokenScanner tail(rest.substr(need));
    if (!tail.AtEnd()) {
      return Status::DataLoss("graph snapshot: trailing data after payload");
    }
  } else if (!in.AtEnd()) {
    return Status::DataLoss("graph snapshot: trailing data after payload");
  }
  return builder.Build(std::move(attrs));
}

DynamicGraph::DynamicGraph(const Graph& base) {
  num_nodes_ = base.num_nodes();
  num_edges_ = base.num_edges();
  degree_.resize(num_nodes_);
  row_start_.resize(num_nodes_ + 1);
  row_start_[0] = 0;
  for (int v = 0; v < num_nodes_; ++v) {
    degree_[v] = base.Degree(v);
    row_start_[v + 1] = row_start_[v] + degree_[v] + kRowSlack;
  }
  adj_.assign(row_start_[num_nodes_], 0);
  for (int v = 0; v < num_nodes_; ++v) {
    auto nb = base.Neighbors(v);
    std::copy(nb.begin(), nb.end(), adj_.begin() + row_start_[v]);
  }
  attributes_ = base.attributes();
  packed_ = base;
  packed_applied_ = 0;
}

bool DynamicGraph::HasEdge(int u, int v) const {
  if (u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_) return false;
  auto nb = Neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

void DynamicGraph::Regrow(int slack) {
  std::vector<int> new_start(num_nodes_ + 1);
  new_start[0] = 0;
  for (int v = 0; v < num_nodes_; ++v) {
    new_start[v + 1] = new_start[v] + degree_[v] + slack;
  }
  std::vector<int> new_adj(new_start[num_nodes_], 0);
  for (int v = 0; v < num_nodes_; ++v) {
    std::copy(adj_.begin() + row_start_[v],
              adj_.begin() + row_start_[v] + degree_[v],
              new_adj.begin() + new_start[v]);
  }
  row_start_ = std::move(new_start);
  adj_ = std::move(new_adj);
  ++stats_.regrows;
}

void DynamicGraph::InsertHalfEdge(int v, int w) {
  if (degree_[v] == RowCapacity(v)) Regrow(kRowSlack);
  int* row = adj_.data() + row_start_[v];
  int* end = row + degree_[v];
  int* pos = std::lower_bound(row, end, w);
  std::copy_backward(pos, end, end + 1);
  *pos = w;
  ++degree_[v];
}

void DynamicGraph::EraseHalfEdge(int v, int w) {
  int* row = adj_.data() + row_start_[v];
  int* end = row + degree_[v];
  int* pos = std::lower_bound(row, end, w);
  GRGAD_DCHECK(pos != end && *pos == w);
  std::copy(pos + 1, end, pos);
  --degree_[v];
}

bool DynamicGraph::AddEdge(int u, int v) {
  if (u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_ || u == v) {
    return false;
  }
  if (HasEdge(u, v)) return false;
  InsertHalfEdge(u, v);
  InsertHalfEdge(v, u);
  ++num_edges_;
  log_.push_back({GraphMutation::Kind::kAddEdge, std::min(u, v),
                  std::max(u, v)});
  ++stats_.edges_added;
  return true;
}

bool DynamicGraph::RemoveEdge(int u, int v) {
  if (!HasEdge(u, v)) return false;
  EraseHalfEdge(u, v);
  EraseHalfEdge(v, u);
  --num_edges_;
  log_.push_back({GraphMutation::Kind::kRemoveEdge, std::min(u, v),
                  std::max(u, v)});
  ++stats_.edges_removed;
  return true;
}

int DynamicGraph::AddNode(std::span<const double> attrs) {
  GRGAD_CHECK_EQ(attrs.size(), attr_dim());
  const int id = num_nodes_;
  ++num_nodes_;
  degree_.push_back(0);
  row_start_.push_back(row_start_.back() + kRowSlack);
  adj_.resize(row_start_.back(), 0);
  if (!attrs.empty()) {
    Matrix grown(num_nodes_, attr_dim());
    for (int r = 0; r < id; ++r) {
      const double* src = attributes_.RowPtr(r);
      double* dst = grown.RowPtr(r);
      std::copy(src, src + attr_dim(), dst);
    }
    std::copy(attrs.begin(), attrs.end(), grown.RowPtr(id));
    attributes_ = std::move(grown);
  }
  log_.push_back({GraphMutation::Kind::kAddNode, id, -1});
  ++stats_.nodes_added;
  return id;
}

bool DynamicGraph::RemoveNode(int v) {
  if (v < 0 || v >= num_nodes_ || degree_[v] == 0) return false;
  // Detach via the row snapshot: EraseHalfEdge(v, w) shifts v's row, so
  // copy the neighbor list first.
  const std::vector<int> neighbors(Neighbors(v).begin(), Neighbors(v).end());
  for (int w : neighbors) {
    EraseHalfEdge(w, v);
    --num_edges_;
  }
  degree_[v] = 0;
  log_.push_back({GraphMutation::Kind::kRemoveNode, v, -1});
  ++stats_.nodes_removed;
  return true;
}

void DynamicGraph::Compact() {
  Regrow(kRowSlack);
  --stats_.regrows;  // Regrow() counted it; bill it as a compaction instead.
  ++stats_.compactions;
  (void)PackedView();  // Fold the pending delta into the cached view first.
  log_.clear();
  packed_applied_ = 0;
}

void DynamicGraph::ApplyPackedEdgeDelta(const GraphMutation& m) const {
  std::vector<int>& offsets = packed_.offsets_;
  std::vector<int>& adj = packed_.adj_;
  auto insert_half = [&](int a, int b) {
    auto pos = std::lower_bound(adj.begin() + offsets[a],
                                adj.begin() + offsets[a + 1], b);
    adj.insert(pos, b);
    for (size_t w = a + 1; w < offsets.size(); ++w) ++offsets[w];
  };
  auto erase_half = [&](int a, int b) {
    auto pos = std::lower_bound(adj.begin() + offsets[a],
                                adj.begin() + offsets[a + 1], b);
    GRGAD_DCHECK(pos != adj.begin() + offsets[a + 1] && *pos == b);
    adj.erase(pos);
    for (size_t w = a + 1; w < offsets.size(); ++w) --offsets[w];
  };
  if (m.kind == GraphMutation::Kind::kAddEdge) {
    insert_half(m.u, m.v);
    insert_half(m.v, m.u);
  } else {
    erase_half(m.u, m.v);
    erase_half(m.v, m.u);
  }
}

const Graph& DynamicGraph::PackedView() const {
  if (packed_applied_ == log_.size()) return packed_;
  // Node mutations resize rows and the attribute matrix (and kRemoveNode
  // does not log the edges it detached): full canonical rebuild. Pure edge
  // churn replays the pending log as sorted splices into the cached CSR —
  // O(E) memmoves per mutation instead of an O(E log E) builder pass, and
  // bitwise the same Graph because a packed CSR is uniquely determined by
  // its edge set.
  bool node_mutation = false;
  for (size_t i = packed_applied_; i < log_.size() && !node_mutation; ++i) {
    node_mutation = log_[i].kind == GraphMutation::Kind::kAddNode ||
                    log_[i].kind == GraphMutation::Kind::kRemoveNode;
  }
  if (node_mutation) {
    GraphBuilder builder(num_nodes_);
    // ForEachEdge streams (u, v) pairs already in GraphBuilder's normalized
    // sorted order, so Build()'s sort+unique pass is a near-no-op and the
    // result is canonical: bitwise identical to building from scratch.
    ForEachEdge([&builder](int u, int v) { builder.AddEdge(u, v); });
    packed_ = builder.Build(attributes_);
  } else {
    for (size_t i = packed_applied_; i < log_.size(); ++i) {
      ApplyPackedEdgeDelta(log_[i]);
    }
  }
  packed_applied_ = log_.size();
  return packed_;
}

Status DynamicGraph::Validate() const {
  if (row_start_.size() != static_cast<size_t>(num_nodes_) + 1 ||
      degree_.size() != static_cast<size_t>(num_nodes_)) {
    return Status::Internal("dynamic graph: offset/degree size mismatch");
  }
  int64_t half_edges = 0;
  for (int v = 0; v < num_nodes_; ++v) {
    if (degree_[v] < 0 || degree_[v] > RowCapacity(v)) {
      return Status::Internal("dynamic graph: degree exceeds row capacity");
    }
    auto nb = Neighbors(v);
    for (size_t i = 0; i < nb.size(); ++i) {
      if (nb[i] < 0 || nb[i] >= num_nodes_) {
        return Status::Internal("dynamic graph: neighbor id out of range");
      }
      if (nb[i] == v) return Status::Internal("dynamic graph: self-loop");
      if (i > 0 && nb[i] <= nb[i - 1]) {
        return Status::Internal("dynamic graph: row not strictly sorted");
      }
      if (!HasEdge(nb[i], v)) {
        return Status::Internal("dynamic graph: asymmetric edge");
      }
    }
    half_edges += degree_[v];
  }
  if (half_edges != 2 * static_cast<int64_t>(num_edges_)) {
    return Status::Internal("dynamic graph: edge count mismatch");
  }
  if (has_attributes() &&
      attributes_.rows() != static_cast<size_t>(num_nodes_)) {
    return Status::Internal("dynamic graph: attribute row count mismatch");
  }
  return Status::Ok();
}

}  // namespace grgad
