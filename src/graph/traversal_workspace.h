// Per-worker traversal workspace for the candidate stage (Alg. 1 / Alg. 2).
//
// The seed graph algorithms allocate fresh O(n) dist/parent/visited vectors
// on every call — per anchor, per pair, per cycle search. A
// TraversalWorkspace owns those buffers once and replaces the O(n) clears
// with an epoch stamp: Begin() bumps a 32-bit epoch, and a node counts as
// visited only when its stamp equals the current epoch, so starting a new
// traversal is O(1) no matter how large the graph is. The workspace-backed
// algorithm variants in src/graph/algorithms.h produce element-for-element
// identical results to the allocating seed implementations
// (tests/traversal_equivalence_test.cc pins this on random graphs).
//
// Workspaces are reused across calls through TraversalWorkspacePool: the
// parallel GroupSampler leases one set per worker chunk and returns it, so
// after Prewarm() a steady-state sampling call performs zero workspace heap
// allocations (TotalHeapAllocs() counts buffer growth; micro_benchmarks
// asserts the steady-state delta is 0).
#ifndef GRGAD_GRAPH_TRAVERSAL_WORKSPACE_H_
#define GRGAD_GRAPH_TRAVERSAL_WORKSPACE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "src/util/check.h"

namespace grgad {

/// Marker for unreachable nodes in hop-distance results (also re-exported
/// through src/graph/algorithms.h, its historical home).
inline constexpr int kUnreachable = std::numeric_limits<int>::max();

/// Reusable per-worker buffers for one graph traversal at a time.
///
/// Contract: Begin(n) starts a traversal over an n-node graph and
/// invalidates every result of the previous one (marks, Hop/Dist/Parent,
/// Order, Cycles). The raw buffers are public because the workspace-backed
/// algorithms in algorithms.h write them directly; read results through the
/// stamped accessors, which report unreached defaults for unvisited nodes.
class TraversalWorkspace {
 public:
  TraversalWorkspace() = default;
  TraversalWorkspace(const TraversalWorkspace&) = delete;
  TraversalWorkspace& operator=(const TraversalWorkspace&) = delete;

  /// Grows every per-node buffer for an n-node graph without starting a
  /// traversal (resets the stamps when it actually grows). O(n) when
  /// growing, O(1) otherwise.
  void EnsureSize(int n);

  /// Prepares for one traversal over an n-node graph: sizes buffers, starts
  /// a fresh visited epoch, clears Order()/Cycles(). Amortized O(1).
  void Begin(int n);

  /// Node count of the traversal started by the last Begin().
  int size() const { return n_; }

  // --- Epoch-stamped visited marks (primary + a secondary set, e.g. the
  // cycle DFS's on-path flags or subset membership). ---
  bool Seen(int v) const { return stamp_[v] == epoch_; }
  void Mark(int v) { stamp_[v] = epoch_; }
  bool Seen2(int v) const { return stamp2_[v] == epoch_; }
  void Mark2(int v) { stamp2_[v] = epoch_; }
  void Unmark2(int v) { stamp2_[v] = epoch_ - 1; }

  // --- Stamped per-node results (valid only where Seen()). ---
  int Hop(int v) const { return Seen(v) ? hop[v] : kUnreachable; }
  double Dist(int v) const {
    return Seen(v) ? dist[v] : std::numeric_limits<double>::infinity();
  }
  int Parent(int v) const { return Seen(v) ? parent[v] : -1; }

  /// Visit order of the last BFS-tree traversal (root first).
  std::span<const int> Order() const { return {order.data(), order.size()}; }

  /// Cycle-enumeration output of the last CyclesThrough traversal; inner
  /// vectors keep their capacity across traversals.
  std::span<const std::vector<int>> Cycles() const {
    return {cycles.data(), num_cycles};
  }
  /// Next reusable cycle slot (cleared); bumps num_cycles.
  std::vector<int>& AcquireCycleSlot();

  /// Min-heap push for Dijkstra (tracks buffer growth for the alloc stats).
  void PushHeap(double d, int v);

  /// Pre-reserves the Dijkstra heap (an upper bound on total pushes is
  /// 1 + num_adj_slots) so steady-state runs never grow it mid-traversal.
  void ReserveHeap(size_t cap);

  /// Pre-reserves the cycle-DFS stack buffers for paths up to `depth`.
  void ReserveDepth(size_t depth);

  // Raw buffers. Per-node arrays are sized by EnsureSize/Begin; the DFS
  // stack buffers (path/cursor) grow on demand via the algorithms.
  std::vector<int> hop;                     ///< BFS depths / hop distances.
  std::vector<int> parent;                  ///< Traversal back-pointers.
  std::vector<int> order;                   ///< BFS queue == visit order.
  std::vector<int> comp;                    ///< Component labels.
  std::vector<double> dist;                 ///< Weighted distances.
  std::vector<std::pair<double, int>> heap; ///< Dijkstra priority queue.
  std::vector<int> path;                    ///< Cycle-DFS node stack.
  std::vector<size_t> cursor;               ///< Cycle-DFS neighbor cursors.
  std::vector<std::vector<int>> cycles;     ///< Cycle output slots.
  size_t num_cycles = 0;

  /// Process-wide count of workspace buffer-growth events (any instance).
  /// Steady-state traversals over already-seen graph sizes add nothing;
  /// micro_benchmarks reports the steady-state delta (must be 0).
  static uint64_t TotalHeapAllocs();

 private:
  static void NoteGrow();

  int n_ = 0;    ///< Current traversal size.
  int cap_ = 0;  ///< Buffer capacity (max n ever seen).
  uint32_t epoch_ = 0;
  std::vector<uint32_t> stamp_;
  std::vector<uint32_t> stamp2_;
};

/// Mutex-guarded free list of TraversalWorkspaces shared by parallel
/// workers. Leases return their workspace on destruction, so pooled buffers
/// persist across sampling calls. Prewarm (with no leases outstanding)
/// bounds the pool and pre-grows every instance, making steady-state
/// acquisition allocation-free and deterministic regardless of how chunks
/// land on pool threads.
class TraversalWorkspacePool {
 public:
  /// Move-only handle to a pooled workspace.
  class Lease {
   public:
    Lease() = default;
    Lease(TraversalWorkspacePool* pool,
          std::unique_ptr<TraversalWorkspace> ws)
        : pool_(pool), ws_(std::move(ws)) {}
    ~Lease() { Release(); }
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), ws_(std::move(other.ws_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        ws_ = std::move(other.ws_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    TraversalWorkspace* get() const { return ws_.get(); }
    TraversalWorkspace& operator*() const { return *ws_; }
    TraversalWorkspace* operator->() const { return ws_.get(); }

   private:
    void Release();
    TraversalWorkspacePool* pool_ = nullptr;
    std::unique_ptr<TraversalWorkspace> ws_;
  };

  /// Takes a workspace from the free list (creating one only when the pool
  /// is empty — never after a sufficient Prewarm).
  Lease Acquire();

  /// Ensures at least `count` workspaces exist in total, each grown for
  /// n-node graphs (and, when heap_slots > 0, with that much Dijkstra-heap
  /// capacity). Call with no leases outstanding (e.g. at the top of a
  /// sampling call, before fanning out) — it makes the steady state
  /// deterministic regardless of which worker leases which workspace.
  void Prewarm(int count, int n, size_t heap_slots = 0);

  /// Frees every pooled (non-leased) workspace, releasing buffers retained
  /// from the largest graph sampled so far — pools otherwise hold their
  /// high-water capacity for the process lifetime. For long-lived callers
  /// (e.g. a serving layer) switching to much smaller graphs.
  void Trim();

  /// Process-wide pool (workspaces survive across sampling calls).
  static TraversalWorkspacePool& Global();

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<TraversalWorkspace>> free_;
  int total_ = 0;
};

}  // namespace grgad

#endif  // GRGAD_GRAPH_TRAVERSAL_WORKSPACE_H_
