#include "src/graph/operators.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"

namespace grgad {

SparseMatrix AdjacencyMatrix(const Graph& g) {
  std::vector<Triplet> t;
  t.reserve(static_cast<size_t>(g.num_edges()) * 2);
  for (int u = 0; u < g.num_nodes(); ++u) {
    for (int v : g.Neighbors(u)) {
      t.push_back({u, v, 1.0});
    }
  }
  return SparseMatrix::FromTriplets(g.num_nodes(), g.num_nodes(),
                                    std::move(t));
}

std::shared_ptr<const SparseMatrix> NormalizedAdjacency(const Graph& g) {
  return std::make_shared<const SparseMatrix>(
      SymmetricNormalize(AdjacencyMatrix(g), /*add_self_loops=*/true));
}

SparseMatrix SymmetricNormalize(const SparseMatrix& m, bool add_self_loops) {
  GRGAD_CHECK_EQ(m.rows(), m.cols());
  const size_t n = m.rows();
  std::vector<Triplet> t;
  t.reserve(m.nnz() + (add_self_loops ? n : 0));
  for (size_t i = 0; i < n; ++i) {
    auto cols = m.RowCols(i);
    auto vals = m.RowValues(i);
    for (size_t p = 0; p < cols.size(); ++p) {
      t.push_back({static_cast<int>(i), cols[p], vals[p]});
    }
  }
  if (add_self_loops) {
    for (size_t i = 0; i < n; ++i) {
      t.push_back({static_cast<int>(i), static_cast<int>(i), 1.0});
    }
  }
  SparseMatrix with_loops = SparseMatrix::FromTriplets(n, n, std::move(t));
  std::vector<double> deg = with_loops.RowSums();
  std::vector<double> inv_sqrt(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (deg[i] > 0.0) inv_sqrt[i] = 1.0 / std::sqrt(deg[i]);
  }
  std::vector<Triplet> out;
  out.reserve(with_loops.nnz());
  for (size_t i = 0; i < n; ++i) {
    auto cols = with_loops.RowCols(i);
    auto vals = with_loops.RowValues(i);
    for (size_t p = 0; p < cols.size(); ++p) {
      out.push_back({static_cast<int>(i), cols[p],
                     vals[p] * inv_sqrt[i] * inv_sqrt[cols[p]]});
    }
  }
  return SparseMatrix::FromTriplets(n, n, std::move(out));
}

namespace {

/// Keeps the `cap` largest-magnitude entries of each row.
SparseMatrix RowTopK(const SparseMatrix& m, int cap) {
  if (cap <= 0) return m;
  std::vector<Triplet> out;
  for (size_t i = 0; i < m.rows(); ++i) {
    auto cols = m.RowCols(i);
    auto vals = m.RowValues(i);
    if (static_cast<int>(cols.size()) <= cap) {
      for (size_t p = 0; p < cols.size(); ++p) {
        out.push_back({static_cast<int>(i), cols[p], vals[p]});
      }
      continue;
    }
    std::vector<size_t> idx(cols.size());
    for (size_t p = 0; p < idx.size(); ++p) idx[p] = p;
    std::nth_element(idx.begin(), idx.begin() + cap - 1, idx.end(),
                     [&vals](size_t a, size_t b) {
                       return std::fabs(vals[a]) > std::fabs(vals[b]);
                     });
    for (int p = 0; p < cap; ++p) {
      out.push_back({static_cast<int>(i), cols[idx[p]], vals[idx[p]]});
    }
  }
  return SparseMatrix::FromTriplets(m.rows(), m.cols(), std::move(out));
}

}  // namespace

SparseMatrix StandardizedPower(const Graph& g, int k, int row_cap) {
  GRGAD_CHECK_GE(k, 1);
  // Row-stochastic walk matrix W = D^{-1} A.
  SparseMatrix walk = AdjacencyMatrix(g).RowNormalized();
  SparseMatrix power = walk;
  for (int i = 1; i < k; ++i) {
    power = MatMulSparse(power, walk, /*prune_eps=*/1e-6);
    power = RowTopK(power, row_cap);
  }
  return power.MaxNormalized();
}

Matrix ModularityProjection(const Graph& g, int k, uint64_t seed) {
  GRGAD_CHECK_GT(k, 0);
  const int n = g.num_nodes();
  Rng rng(seed);
  Matrix r = Matrix::Gaussian(n, k, &rng, 0.0, 1.0 / std::sqrt(k));
  // A R via sparse rows.
  Matrix ar(n, k);
  for (int u = 0; u < n; ++u) {
    double* orow = ar.RowPtr(u);
    for (int v : g.Neighbors(u)) {
      const double* rrow = r.RowPtr(v);
      for (int j = 0; j < k; ++j) orow[j] += rrow[j];
    }
  }
  const double two_m = 2.0 * std::max(1, g.num_edges());
  // d^T R: 1 x k.
  std::vector<double> dtr(k, 0.0);
  for (int u = 0; u < n; ++u) {
    const double du = g.Degree(u);
    const double* rrow = r.RowPtr(u);
    for (int j = 0; j < k; ++j) dtr[j] += du * rrow[j];
  }
  for (int u = 0; u < n; ++u) {
    const double du = g.Degree(u);
    double* orow = ar.RowPtr(u);
    for (int j = 0; j < k; ++j) orow[j] -= du * dtr[j] / two_m;
  }
  return ar;
}

}  // namespace grgad
