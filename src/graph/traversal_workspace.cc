#include "src/graph/traversal_workspace.h"

#include <algorithm>
#include <atomic>

namespace grgad {

namespace {
std::atomic<uint64_t> g_workspace_heap_allocs{0};
}  // namespace

void TraversalWorkspace::NoteGrow() {
  g_workspace_heap_allocs.fetch_add(1, std::memory_order_relaxed);
}

uint64_t TraversalWorkspace::TotalHeapAllocs() {
  return g_workspace_heap_allocs.load(std::memory_order_relaxed);
}

void TraversalWorkspace::EnsureSize(int n) {
  GRGAD_CHECK_GE(n, 0);
  if (n <= cap_) return;
  NoteGrow();
  // Growing restarts the stamps (every prior result is invalidated anyway).
  stamp_.assign(n, 0);
  stamp2_.assign(n, 0);
  epoch_ = 0;
  hop.resize(n);
  parent.resize(n);
  dist.resize(n);
  comp.resize(n);
  order.reserve(n);
  heap.reserve(n);
  // Pre-create a default complement of cycle slots and DFS-stack capacity
  // so steady-state cycle searches at the default budgets never grow these
  // buffers, no matter which pooled workspace a chunk happens to lease.
  constexpr size_t kDefaultCycleSlots = 64;
  if (cycles.size() < kDefaultCycleSlots) cycles.resize(kDefaultCycleSlots);
  constexpr size_t kDefaultDepth = 65;  // Cycle lengths <= 64 plus the root.
  if (path.capacity() < kDefaultDepth) {
    path.reserve(kDefaultDepth);
    cursor.reserve(kDefaultDepth);
  }
  cap_ = n;
}

void TraversalWorkspace::Begin(int n) {
  EnsureSize(n);
  n_ = n;
  if (++epoch_ == 0) {
    // The 32-bit epoch wrapped (once per 2^32 traversals): hard-reset the
    // stamps so stale marks from 2^32 calls ago cannot alias.
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    std::fill(stamp2_.begin(), stamp2_.end(), 0u);
    epoch_ = 1;
  }
  order.clear();
  heap.clear();
  num_cycles = 0;
}

std::vector<int>& TraversalWorkspace::AcquireCycleSlot() {
  if (num_cycles == cycles.size()) {
    NoteGrow();
    cycles.emplace_back();
  }
  std::vector<int>& slot = cycles[num_cycles++];
  slot.clear();
  return slot;
}

void TraversalWorkspace::PushHeap(double d, int v) {
  if (heap.size() == heap.capacity()) NoteGrow();
  heap.emplace_back(d, v);
  std::push_heap(heap.begin(), heap.end(),
                 std::greater<std::pair<double, int>>());
}

void TraversalWorkspace::ReserveHeap(size_t cap) {
  if (cap <= heap.capacity()) return;
  NoteGrow();
  heap.reserve(cap);
}

void TraversalWorkspace::ReserveDepth(size_t depth) {
  if (depth > path.capacity() || depth > cursor.capacity()) {
    NoteGrow();
    path.reserve(depth);
    cursor.reserve(depth);
  }
}

void TraversalWorkspacePool::Lease::Release() {
  if (pool_ != nullptr && ws_ != nullptr) {
    std::lock_guard<std::mutex> lock(pool_->mu_);
    pool_->free_.push_back(std::move(ws_));
  }
  pool_ = nullptr;
  ws_.reset();
}

TraversalWorkspacePool::Lease TraversalWorkspacePool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      std::unique_ptr<TraversalWorkspace> ws = std::move(free_.back());
      free_.pop_back();
      return Lease(this, std::move(ws));
    }
    ++total_;
  }
  return Lease(this, std::make_unique<TraversalWorkspace>());
}

void TraversalWorkspacePool::Prewarm(int count, int n, size_t heap_slots) {
  std::lock_guard<std::mutex> lock(mu_);
  while (total_ < count) {
    free_.push_back(std::make_unique<TraversalWorkspace>());
    ++total_;
  }
  for (auto& ws : free_) {
    ws->EnsureSize(n);
    if (heap_slots > 0) ws->ReserveHeap(heap_slots);
  }
}

void TraversalWorkspacePool::Trim() {
  std::lock_guard<std::mutex> lock(mu_);
  total_ -= static_cast<int>(free_.size());
  free_.clear();
}

TraversalWorkspacePool& TraversalWorkspacePool::Global() {
  static TraversalWorkspacePool* pool = new TraversalWorkspacePool();
  return *pool;
}

}  // namespace grgad
