// GraphSNN weighted adjacency Ã (paper Eqn. (4), after Wijesinghe & Wang).
//
// For every edge (v, u), the overlap subgraph S_vu = S_v ∩ S_u of the two
// closed neighborhood subgraphs determines a structural weight
//
//   Ã_vu = |E_vu| / (|V_vu| * (|V_vu| - 1)) * |V_vu|^λ,
//
// which scores how strongly the edge is embedded in shared local structure.
// MH-GAE uses the (max-normalized) Ã as its reconstruction objective so the
// autoencoder must explain structure beyond one-hop adjacency — this is the
// paper's preferred way of capturing long-range inconsistency.
#ifndef GRGAD_GRAPH_GRAPHSNN_H_
#define GRGAD_GRAPH_GRAPHSNN_H_

#include "src/graph/graph.h"
#include "src/tensor/sparse.h"

namespace grgad {

/// Options for the Ã computation.
struct GraphSnnOptions {
  /// Exponent λ on the overlap size (paper leaves it a hyperparameter; the
  /// GraphSNN reference uses 1).
  double lambda = 1.0;
  /// When true, the result is scaled so the maximum weight is 1 (the form
  /// used as a reconstruction target).
  bool max_normalize = true;
};

/// Computes the GraphSNN weighted adjacency Ã of `g`. Symmetric; zero
/// diagonal; edges whose overlap has fewer than 2 vertices receive weight 0
/// but are kept as explicit entries so the sparsity pattern still matches A.
SparseMatrix GraphSnnAdjacency(const Graph& g,
                               const GraphSnnOptions& options = {});

/// Structural coefficients per edge in g.Edges() order (testing hook).
/// Edge-parallel with per-worker scratch on the scoring fast path
/// (src/util/fastpath.h); bitwise identical to the serial seed loop either
/// way and across GRGAD_THREADS.
std::vector<double> GraphSnnEdgeWeights(const Graph& g, double lambda);

}  // namespace grgad

#endif  // GRGAD_GRAPH_GRAPHSNN_H_
