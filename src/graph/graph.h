// Attributed undirected graph in CSR form.
//
// All of grgad operates on simple undirected attributed graphs (transaction
// direction is dropped, as in the paper's symmetric-GCN pipelines). A Graph
// is immutable after construction through GraphBuilder; node attributes live
// in a dense n x d Matrix. Induced subgraphs (candidate groups, augmented
// views) carry a mapping back to original node ids.
#ifndef GRGAD_GRAPH_GRAPH_H_
#define GRGAD_GRAPH_GRAPH_H_

#include <span>
#include <utility>
#include <vector>

#include "src/tensor/matrix.h"
#include "src/util/status.h"

namespace grgad {

/// Immutable simple undirected graph with optional node attributes.
class Graph {
 public:
  /// Empty graph.
  Graph() = default;

  int num_nodes() const { return num_nodes_; }
  /// Number of undirected edges (each stored in both directions internally).
  int num_edges() const { return static_cast<int>(adj_.size() / 2); }

  /// Neighbors of v, ascending, no self-loops.
  std::span<const int> Neighbors(int v) const {
    GRGAD_DCHECK(v >= 0 && v < num_nodes_);
    return {adj_.data() + offsets_[v],
            static_cast<size_t>(offsets_[v + 1] - offsets_[v])};
  }

  int Degree(int v) const {
    GRGAD_DCHECK(v >= 0 && v < num_nodes_);
    return offsets_[v + 1] - offsets_[v];
  }

  /// True iff the undirected edge {u, v} exists. O(log deg(u)).
  bool HasEdge(int u, int v) const;

  /// All undirected edges as (u, v) with u < v.
  std::vector<std::pair<int, int>> Edges() const;

  /// Visits every undirected edge as visitor(u, v) with u < v, in exactly
  /// the Edges() order, without materializing the O(E) vector — callers
  /// that index per-edge data (e.g. Bellman–Ford weights) keep their own
  /// running edge counter. Hot-path replacement for Edges().
  template <typename Visitor>
  void ForEachEdge(Visitor&& visitor) const {
    for (int u = 0; u < num_nodes_; ++u) {
      for (int i = offsets_[u]; i < offsets_[u + 1]; ++i) {
        const int v = adj_[i];
        if (v > u) visitor(u, v);
      }
    }
  }

  /// First adjacency-slot index of v's neighbor row: Neighbors(v)[i] lives
  /// in slot AdjOffset(v) + i of the flat [0, num_adj_slots()) slot space.
  /// Lets per-directed-edge side tables (e.g. precomputed traversal costs)
  /// be indexed in O(1) while walking a neighbor row.
  int AdjOffset(int v) const {
    GRGAD_DCHECK(v >= 0 && v < num_nodes_);
    return offsets_[v];
  }
  /// Total directed adjacency slots (2 * num_edges()).
  int num_adj_slots() const { return static_cast<int>(adj_.size()); }

  /// Node attribute matrix (num_nodes x attr_dim); empty if unset.
  const Matrix& attributes() const { return attributes_; }
  size_t attr_dim() const { return attributes_.cols(); }
  bool has_attributes() const { return !attributes_.empty(); }

  /// Replaces the attribute matrix; row count must equal num_nodes().
  void SetAttributes(Matrix attributes);

  /// Subgraph induced by `nodes` (deduplicated, order preserved). The i-th
  /// node of the result corresponds to original id mapping()[i]; attributes
  /// are gathered when present.
  Graph InducedSubgraph(const std::vector<int>& nodes) const;

  /// For graphs produced by InducedSubgraph: original node id per local id.
  /// Empty for graphs built directly.
  const std::vector<int>& mapping() const { return mapping_; }

  /// Structural sanity check (CSR symmetry, sortedness, attr shape).
  Status Validate() const;

 private:
  friend class GraphBuilder;
  /// DynamicGraph splices edge deltas into its cached packed view in place
  /// (src/graph/dynamic_graph.cc) instead of paying a full rebuild.
  friend class DynamicGraph;

  int num_nodes_ = 0;
  std::vector<int> offsets_;  // length num_nodes_+1
  std::vector<int> adj_;      // both directions, sorted per row
  Matrix attributes_;
  std::vector<int> mapping_;
};

/// Accumulates edges and produces a Graph. Self-loops and duplicate edges
/// are silently dropped.
class GraphBuilder {
 public:
  /// Fixed node count; ids are [0, num_nodes).
  explicit GraphBuilder(int num_nodes);

  /// Adds the undirected edge {u, v}. Out-of-range ids are CHECK failures.
  void AddEdge(int u, int v);

  /// Number of distinct undirected edges added so far.
  int num_edges() const {
    EnsureSorted();
    return static_cast<int>(edges_.size());
  }
  int num_nodes() const { return num_nodes_; }

  /// True iff {u,v} was already added (O(log E)); convenience for builders
  /// that must avoid colliding injected edges.
  bool HasEdge(int u, int v) const;

  /// Finalizes into an immutable Graph; the builder may be reused afterwards.
  Graph Build(Matrix attributes = Matrix()) const;

 private:
  int num_nodes_;
  // Normalized (min, max) pairs in a sorted set-like vector.
  std::vector<std::pair<int, int>> edges_;
  mutable bool sorted_ = true;
  void EnsureSorted() const;
};

}  // namespace grgad

#endif  // GRGAD_GRAPH_GRAPH_H_
