#include "src/graph/graph.h"

#include <algorithm>
#include <unordered_map>

namespace grgad {

bool Graph::HasEdge(int u, int v) const {
  if (u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_) return false;
  auto nb = Neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<std::pair<int, int>> Graph::Edges() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(adj_.size() / 2);
  for (int u = 0; u < num_nodes_; ++u) {
    for (int v : Neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

void Graph::SetAttributes(Matrix attributes) {
  GRGAD_CHECK_EQ(attributes.rows(), static_cast<size_t>(num_nodes_));
  attributes_ = std::move(attributes);
}

Graph Graph::InducedSubgraph(const std::vector<int>& nodes) const {
  // Deduplicate preserving first-occurrence order.
  std::vector<int> uniq;
  uniq.reserve(nodes.size());
  std::unordered_map<int, int> local;
  local.reserve(nodes.size());
  for (int v : nodes) {
    GRGAD_CHECK(v >= 0 && v < num_nodes_);
    if (local.emplace(v, static_cast<int>(uniq.size())).second) {
      uniq.push_back(v);
    }
  }
  GraphBuilder builder(static_cast<int>(uniq.size()));
  for (size_t i = 0; i < uniq.size(); ++i) {
    for (int w : Neighbors(uniq[i])) {
      auto it = local.find(w);
      if (it != local.end() && static_cast<int>(i) < it->second) {
        builder.AddEdge(static_cast<int>(i), it->second);
      }
    }
  }
  Matrix sub_attr;
  if (has_attributes()) sub_attr = attributes_.GatherRows(uniq);
  Graph out = builder.Build(std::move(sub_attr));
  // Compose mappings so nested induced subgraphs still refer to the root ids.
  if (mapping_.empty()) {
    out.mapping_ = std::move(uniq);
  } else {
    out.mapping_.reserve(uniq.size());
    for (int v : uniq) out.mapping_.push_back(mapping_[v]);
  }
  return out;
}

Status Graph::Validate() const {
  if (offsets_.size() != static_cast<size_t>(num_nodes_) + 1) {
    return Status::Internal("offsets size mismatch");
  }
  for (int v = 0; v < num_nodes_; ++v) {
    auto nb = Neighbors(v);
    for (size_t i = 0; i < nb.size(); ++i) {
      if (nb[i] < 0 || nb[i] >= num_nodes_) {
        return Status::Internal("neighbor id out of range");
      }
      if (nb[i] == v) return Status::Internal("self-loop present");
      if (i > 0 && nb[i] <= nb[i - 1]) {
        return Status::Internal("row not strictly sorted");
      }
      if (!HasEdge(nb[i], v)) return Status::Internal("asymmetric edge");
    }
  }
  if (has_attributes() &&
      attributes_.rows() != static_cast<size_t>(num_nodes_)) {
    return Status::Internal("attribute row count mismatch");
  }
  return Status::Ok();
}

GraphBuilder::GraphBuilder(int num_nodes) : num_nodes_(num_nodes) {
  GRGAD_CHECK_GE(num_nodes, 0);
}

void GraphBuilder::AddEdge(int u, int v) {
  GRGAD_CHECK(u >= 0 && u < num_nodes_);
  GRGAD_CHECK(v >= 0 && v < num_nodes_);
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
  sorted_ = false;
}

void GraphBuilder::EnsureSorted() const {
  if (sorted_) return;
  auto& edges = const_cast<std::vector<std::pair<int, int>>&>(edges_);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  sorted_ = true;
}

bool GraphBuilder::HasEdge(int u, int v) const {
  if (u == v) return false;
  if (u > v) std::swap(u, v);
  EnsureSorted();
  return std::binary_search(edges_.begin(), edges_.end(),
                            std::make_pair(u, v));
}

Graph GraphBuilder::Build(Matrix attributes) const {
  EnsureSorted();
  Graph g;
  g.num_nodes_ = num_nodes_;
  g.offsets_.assign(num_nodes_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (int i = 0; i < num_nodes_; ++i) g.offsets_[i + 1] += g.offsets_[i];
  g.adj_.resize(edges_.size() * 2);
  std::vector<int> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    g.adj_[cursor[u]++] = v;
    g.adj_[cursor[v]++] = u;
  }
  for (int v = 0; v < num_nodes_; ++v) {
    std::sort(g.adj_.begin() + g.offsets_[v], g.adj_.begin() + g.offsets_[v + 1]);
  }
  if (!attributes.empty()) {
    GRGAD_CHECK_EQ(attributes.rows(), static_cast<size_t>(num_nodes_));
    g.attributes_ = std::move(attributes);
  }
  return g;
}

}  // namespace grgad
