#include "src/graph/subgraph_view.h"

#include <algorithm>

namespace grgad {

void SubgraphView::Reset(const Graph& host, std::span<const int> nodes) {
  host_ = &host;
  if (remap_stamp_.size() < static_cast<size_t>(host.num_nodes())) {
    remap_stamp_.assign(host.num_nodes(), 0);
    remap_.resize(host.num_nodes());
    remap_epoch_ = 0;
  }
  if (++remap_epoch_ == 0) {
    std::fill(remap_stamp_.begin(), remap_stamp_.end(), 0u);
    remap_epoch_ = 1;
  }
  // Deduplicate preserving first-occurrence order — the exact local-id
  // assignment of Graph::InducedSubgraph.
  nodes_.clear();
  for (int v : nodes) {
    GRGAD_CHECK(v >= 0 && v < host.num_nodes());
    if (remap_stamp_[v] != remap_epoch_) {
      remap_stamp_[v] = remap_epoch_;
      remap_[v] = static_cast<int>(nodes_.size());
      nodes_.push_back(v);
    }
  }
  const int n = static_cast<int>(nodes_.size());
  offsets_.resize(n + 1);
  adj_.clear();
  for (int i = 0; i < n; ++i) {
    offsets_[i] = static_cast<int>(adj_.size());
    for (int w : host.Neighbors(nodes_[i])) {
      if (remap_stamp_[w] == remap_epoch_) adj_.push_back(remap_[w]);
    }
    // Host rows ascend by global id; the materialized CSR sorts by local
    // id. The two agree when the node list is sorted (every sampler
    // candidate is); otherwise sort the row to match.
    const auto row_begin = adj_.begin() + offsets_[i];
    if (!std::is_sorted(row_begin, adj_.end())) {
      std::sort(row_begin, adj_.end());
    }
  }
  offsets_[n] = static_cast<int>(adj_.size());
}

bool SubgraphView::HasEdge(int u, int v) const {
  if (u < 0 || v < 0 || u >= num_nodes() || v >= num_nodes()) return false;
  auto nb = Neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

Graph SubgraphView::Materialize() const {
  GRGAD_CHECK(host_ != nullptr);
  return host_->InducedSubgraph(nodes_);
}

}  // namespace grgad
