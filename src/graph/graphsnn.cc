#include "src/graph/graphsnn.h"

#include <algorithm>
#include <cmath>

namespace grgad {

namespace {

/// Sorted intersection of the closed neighborhoods of u and v.
std::vector<int> ClosedNeighborhoodOverlap(const Graph& g, int u, int v) {
  auto nu = g.Neighbors(u);
  auto nv = g.Neighbors(v);
  std::vector<int> cu(nu.begin(), nu.end());
  std::vector<int> cv(nv.begin(), nv.end());
  cu.insert(std::lower_bound(cu.begin(), cu.end(), u), u);
  cv.insert(std::lower_bound(cv.begin(), cv.end(), v), v);
  std::vector<int> overlap;
  std::set_intersection(cu.begin(), cu.end(), cv.begin(), cv.end(),
                        std::back_inserter(overlap));
  return overlap;
}

/// Number of edges of g inside `nodes` (sorted).
int EdgesWithin(const Graph& g, const std::vector<int>& nodes) {
  int count = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    auto nb = g.Neighbors(nodes[i]);
    for (int w : nb) {
      if (w > nodes[i] &&
          std::binary_search(nodes.begin(), nodes.end(), w)) {
        ++count;
      }
    }
  }
  return count;
}

}  // namespace

std::vector<double> GraphSnnEdgeWeights(const Graph& g, double lambda) {
  const auto edges = g.Edges();
  std::vector<double> weights(edges.size(), 0.0);
  for (size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    const std::vector<int> overlap = ClosedNeighborhoodOverlap(g, u, v);
    const double nv = static_cast<double>(overlap.size());
    if (nv < 2.0) continue;  // Denominator |V|*(|V|-1) undefined/zero.
    const double ne = EdgesWithin(g, overlap);
    weights[e] = ne / (nv * (nv - 1.0)) * std::pow(nv, lambda);
  }
  return weights;
}

SparseMatrix GraphSnnAdjacency(const Graph& g,
                               const GraphSnnOptions& options) {
  const auto edges = g.Edges();
  const std::vector<double> weights =
      GraphSnnEdgeWeights(g, options.lambda);
  std::vector<Triplet> t;
  t.reserve(edges.size() * 2);
  for (size_t e = 0; e < edges.size(); ++e) {
    const auto [u, v] = edges[e];
    t.push_back({u, v, weights[e]});
    t.push_back({v, u, weights[e]});
  }
  SparseMatrix out =
      SparseMatrix::FromTriplets(g.num_nodes(), g.num_nodes(), std::move(t));
  if (options.max_normalize) out = out.MaxNormalized();
  return out;
}

}  // namespace grgad
