#include "src/graph/graphsnn.h"

#include <algorithm>
#include <cmath>

#include "src/util/fastpath.h"
#include "src/util/parallel.h"

namespace grgad {

namespace {

/// Scratch buffers for one edge-weight worker: reused across every edge a
/// chunk processes instead of the seed's three fresh vectors per edge.
struct OverlapScratch {
  std::vector<int> cu;
  std::vector<int> cv;
  std::vector<int> overlap;
};

/// Fills scratch->overlap with the sorted intersection of the closed
/// neighborhoods of u and v. Same merge as the seed loop, allocation-free
/// once the scratch has grown to the max degree.
void ClosedNeighborhoodOverlap(const Graph& g, int u, int v,
                               OverlapScratch* scratch) {
  auto nu = g.Neighbors(u);
  auto nv = g.Neighbors(v);
  scratch->cu.assign(nu.begin(), nu.end());
  scratch->cv.assign(nv.begin(), nv.end());
  scratch->cu.insert(
      std::lower_bound(scratch->cu.begin(), scratch->cu.end(), u), u);
  scratch->cv.insert(
      std::lower_bound(scratch->cv.begin(), scratch->cv.end(), v), v);
  scratch->overlap.clear();
  std::set_intersection(scratch->cu.begin(), scratch->cu.end(),
                        scratch->cv.begin(), scratch->cv.end(),
                        std::back_inserter(scratch->overlap));
}

/// Number of edges of g inside `nodes` (sorted).
int EdgesWithin(const Graph& g, const std::vector<int>& nodes) {
  int count = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    auto nb = g.Neighbors(nodes[i]);
    for (int w : nb) {
      if (w > nodes[i] &&
          std::binary_search(nodes.begin(), nodes.end(), w)) {
        ++count;
      }
    }
  }
  return count;
}

}  // namespace

std::vector<double> GraphSnnEdgeWeights(const Graph& g, double lambda) {
  std::vector<double> weights(g.num_edges(), 0.0);
  // Each edge's weight is a pure function of the graph, so edges partition
  // freely across the pool; per-chunk scratch keeps the hot loop free of
  // per-edge vector allocations. Per-edge arithmetic is identical to the
  // seed loop, so weights are bitwise equal on both paths and at any
  // GRGAD_THREADS (MH-GAE trains against this matrix — training goldens
  // depend on that equality).
  auto weigh_edge = [&](size_t e, int u, int v, OverlapScratch* scratch) {
    ClosedNeighborhoodOverlap(g, u, v, scratch);
    const double nv = static_cast<double>(scratch->overlap.size());
    if (nv < 2.0) return;  // Denominator |V|*(|V|-1) undefined/zero.
    const double ne = EdgesWithin(g, scratch->overlap);
    weights[e] = ne / (nv * (nv - 1.0)) * std::pow(nv, lambda);
  };
  if (ScoringFastPathEnabled()) {
    // Chunked pool loop keyed by node: node u's up-edges (v > u) occupy a
    // consecutive index range in Edges() order, so an O(n) prefix sum over
    // per-node up-degrees replaces the materialized O(E) pair vector —
    // each worker streams its nodes' rows straight off the CSR. Writes go
    // to distinct weights[e] slots and the per-edge arithmetic is
    // untouched, so the bitwise contract above still holds.
    std::vector<size_t> up_offset(static_cast<size_t>(g.num_nodes()) + 1, 0);
    for (int u = 0; u < g.num_nodes(); ++u) {
      auto nb = g.Neighbors(u);
      up_offset[u + 1] =
          up_offset[u] +
          static_cast<size_t>(nb.end() -
                              std::upper_bound(nb.begin(), nb.end(), u));
    }
    ParallelFor(static_cast<size_t>(g.num_nodes()), 8,
                [&](size_t begin, size_t end) {
                  OverlapScratch scratch;
                  for (size_t un = begin; un < end; ++un) {
                    const int u = static_cast<int>(un);
                    size_t e = up_offset[un];
                    for (int v : g.Neighbors(u)) {
                      if (v > u) weigh_edge(e++, u, v, &scratch);
                    }
                  }
                });
  } else {
    // Serial: stream edges straight off the CSR (Edges() order).
    OverlapScratch scratch;
    size_t e = 0;
    g.ForEachEdge(
        [&](int u, int v) { weigh_edge(e++, u, v, &scratch); });
  }
  return weights;
}

SparseMatrix GraphSnnAdjacency(const Graph& g,
                               const GraphSnnOptions& options) {
  const std::vector<double> weights =
      GraphSnnEdgeWeights(g, options.lambda);
  std::vector<Triplet> t;
  t.reserve(weights.size() * 2);
  size_t e = 0;
  g.ForEachEdge([&](int u, int v) {
    t.push_back({u, v, weights[e]});
    t.push_back({v, u, weights[e]});
    ++e;
  });
  SparseMatrix out =
      SparseMatrix::FromTriplets(g.num_nodes(), g.num_nodes(), std::move(t));
  if (options.max_normalize) out = out.MaxNormalized();
  return out;
}

}  // namespace grgad
