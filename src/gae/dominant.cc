#include "src/gae/dominant.h"

namespace grgad {

Dominant::Dominant(GaeOptions options) : options_(options) {
  options_.target = ReconTarget::kAdjacency;  // Definitional for DOMINANT.
}

std::vector<double> Dominant::FitNodeScores(const Graph& g) const {
  GcnGae engine(options_);
  return engine.Fit(g).node_errors;
}

}  // namespace grgad
