#include "src/gae/anchor.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace grgad {

std::vector<int> SelectAnchors(const std::vector<double>& node_scores,
                               double fraction) {
  return SelectAnchorsCapped(node_scores, fraction,
                             static_cast<int>(node_scores.size()));
}

std::vector<int> SelectAnchorsCapped(const std::vector<double>& node_scores,
                                     double fraction, int max_anchors) {
  GRGAD_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const int n = static_cast<int>(node_scores.size());
  int k = static_cast<int>(std::ceil(fraction * n));
  k = std::min({k, n, std::max(0, max_anchors)});
  if (k == 0) return {};
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&node_scores](int a, int b) {
                      if (node_scores[a] != node_scores[b]) {
                        return node_scores[a] > node_scores[b];
                      }
                      return a < b;
                    });
  std::vector<int> anchors(order.begin(), order.begin() + k);
  std::sort(anchors.begin(), anchors.end());
  return anchors;
}

}  // namespace grgad
