#include "src/gae/deep_ae.h"

#include <cmath>

#include "src/graph/operators.h"
#include "src/nn/layers.h"
#include "src/nn/optim.h"
#include "src/tensor/arena.h"
#include "src/util/rng.h"

namespace grgad {

DeepAe::DeepAe(DeepAeOptions options) : options_(options) {}

std::vector<double> DeepAe::FitNodeScores(const Graph& g) const {
  GRGAD_CHECK(g.has_attributes());
  const int n = g.num_nodes();
  const int d = static_cast<int>(g.attr_dim());
  Rng rng(options_.seed ^ 0x64616521ULL);

  // Structure context: random projection of adjacency rows, A R, computed
  // sparsely. Fixed (non-trainable) so the AE must explain it.
  const int sp = options_.struct_proj_dim;
  Matrix r = Matrix::Gaussian(n, sp, &rng, 0.0, 1.0 / std::sqrt(sp));
  Matrix struct_ctx(n, sp);
  for (int u = 0; u < n; ++u) {
    double* orow = struct_ctx.RowPtr(u);
    for (int v : g.Neighbors(u)) {
      const double* rrow = r.RowPtr(v);
      for (int j = 0; j < sp; ++j) orow[j] += rrow[j];
    }
  }
  // Input = [X | A R].
  Matrix input(n, d + sp);
  for (int i = 0; i < n; ++i) {
    const double* xrow = g.attributes().RowPtr(i);
    const double* srow = struct_ctx.RowPtr(i);
    double* irow = input.RowPtr(i);
    for (int j = 0; j < d; ++j) irow[j] = xrow[j];
    for (int j = 0; j < sp; ++j) irow[d + j] = srow[j];
  }

  // Declared before any Var; see GcnGae::Fit.
  MatrixArena local_arena;
  ArenaScope arena_scope(TrainingFastPathEnabled() ? &local_arena : nullptr);

  const size_t in_dim = static_cast<size_t>(d + sp);
  Mlp autoencoder({in_dim, static_cast<size_t>(options_.hidden_dim),
                   static_cast<size_t>(options_.bottleneck_dim),
                   static_cast<size_t>(options_.hidden_dim), in_dim},
                  &rng);
  AdamOptions adam_options;
  adam_options.lr = options_.lr;
  adam_options.clip_grad_norm = 5.0;
  Adam adam(autoencoder.Params(), adam_options);

  const Var x(input, /*requires_grad=*/false);
  Matrix final_recon;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    adam.ZeroGrad();
    Var recon = autoencoder.Forward(x);
    Var loss = MseLoss(recon, input);
    loss.Backward();
    adam.Step();
    if (epoch + 1 == options_.epochs) final_recon = recon.value();
  }

  std::vector<double> scores(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < in_dim; ++j) {
      const double diff = final_recon(i, j) - input(i, j);
      s += diff * diff;
    }
    scores[i] = std::sqrt(s);
  }
  MinMaxNormalize(&scores);
  return scores;
}

}  // namespace grgad
