#include "src/gae/gae_base.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/graph/graphsnn.h"
#include "src/graph/operators.h"
#include "src/nn/layers.h"
#include "src/nn/optim.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace grgad {

const char* ToString(ReconTarget target) {
  switch (target) {
    case ReconTarget::kAdjacency: return "A";
    case ReconTarget::kPower3: return "A^3";
    case ReconTarget::kPower5: return "A^5";
    case ReconTarget::kPower7: return "A^7";
    case ReconTarget::kGraphSnn: return "A~";
  }
  return "?";
}

bool ParseReconTarget(const std::string& name, ReconTarget* out) {
  for (ReconTarget t : {ReconTarget::kAdjacency, ReconTarget::kPower3,
                        ReconTarget::kPower5, ReconTarget::kPower7,
                        ReconTarget::kGraphSnn}) {
    if (name == ToString(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

void MinMaxNormalize(std::vector<double>* v) {
  if (v->empty()) return;
  const auto [lo_it, hi_it] = std::minmax_element(v->begin(), v->end());
  const double lo = *lo_it, hi = *hi_it;
  if (hi - lo < 1e-12) return;
  for (double& x : *v) x = (x - lo) / (hi - lo);
}

namespace {

SparseMatrix BuildTarget(const Graph& g, const GaeOptions& options) {
  switch (options.target) {
    case ReconTarget::kAdjacency:
      return AdjacencyMatrix(g);
    case ReconTarget::kPower3:
      return StandardizedPower(g, 3, options.power_row_cap);
    case ReconTarget::kPower5:
      return StandardizedPower(g, 5, options.power_row_cap);
    case ReconTarget::kPower7:
      return StandardizedPower(g, 7, options.power_row_cap);
    case ReconTarget::kGraphSnn: {
      GraphSnnOptions snn;
      snn.lambda = options.graphsnn_lambda;
      snn.max_normalize = true;
      return GraphSnnAdjacency(g, snn);
    }
  }
  return AdjacencyMatrix(g);
}

struct PairSet {
  std::vector<std::pair<int, int>> pairs;
  Matrix targets;  // p x 1
};

/// Positive pairs = stored entries of T (upper triangle); negatives sampled
/// uniformly among absent pairs. Deterministic given the rng.
PairSet SamplePairs(const SparseMatrix& t, const GaeOptions& options,
                    Rng* rng) {
  const int n = static_cast<int>(t.rows());
  PairSet out;
  std::vector<double> values;
  // Packed (u, v) keys of the stored upper-triangle nonzeros: the
  // negative-sampling rejection loop below probes membership once per
  // attempt, and on dense targets like A^7 the per-attempt t.At(u, v)
  // binary search made it O(attempts * log nnz(row)). One linear pass
  // builds an O(1) probe; only u < v keys are ever queried (the loop skips
  // u >= v draws), so lower-triangle/diagonal entries need not be stored.
  // Stored zeros are skipped to match At(u, v) != 0.0 exactly.
  std::unordered_set<uint64_t> present;
  present.reserve(t.nnz() / 2 + 1);
  const auto pack = [](int u, int v) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
           static_cast<uint32_t>(v);
  };
  for (int i = 0; i < n; ++i) {
    auto cols = t.RowCols(i);
    auto vals = t.RowValues(i);
    for (size_t p = 0; p < cols.size(); ++p) {
      if (cols[p] <= i || vals[p] == 0.0) continue;
      present.insert(pack(i, cols[p]));
      out.pairs.emplace_back(i, cols[p]);
      values.push_back(vals[p]);
    }
  }
  // Downsample positives if over budget.
  const size_t pos_budget =
      options.max_pairs / static_cast<size_t>(1 + options.neg_per_pos);
  if (out.pairs.size() > pos_budget) {
    const auto keep = rng->SampleWithoutReplacement(out.pairs.size(),
                                                    pos_budget);
    std::vector<std::pair<int, int>> kept_pairs;
    std::vector<double> kept_values;
    kept_pairs.reserve(keep.size());
    for (size_t idx : keep) {
      kept_pairs.push_back(out.pairs[idx]);
      kept_values.push_back(values[idx]);
    }
    out.pairs = std::move(kept_pairs);
    values = std::move(kept_values);
  }
  const size_t num_pos = out.pairs.size();
  const size_t num_neg = num_pos * static_cast<size_t>(options.neg_per_pos);
  size_t added = 0, guard = 0;
  while (added < num_neg && guard < num_neg * 30 + 100) {
    ++guard;
    const int u = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
    if (u >= v) continue;
    if (present.count(pack(u, v)) != 0) continue;
    out.pairs.emplace_back(u, v);
    values.push_back(0.0);
    ++added;
  }
  out.targets = Matrix(out.pairs.size(), 1);
  for (size_t p = 0; p < out.pairs.size(); ++p) {
    out.targets(p, 0) = values[p];
  }
  return out;
}

}  // namespace

GcnGae::GcnGae(GaeOptions options) : options_(options) {}

GaeResult GcnGae::Fit(const Graph& g) const {
  GRGAD_CHECK(g.has_attributes());
  GRGAD_CHECK_GT(g.num_nodes(), 1);
  const int n = g.num_nodes();
  const int d = static_cast<int>(g.attr_dim());
  Rng rng(options_.seed ^ 0x67616521ULL);

  // Declared before any Var so every tape node (params included) is torn
  // down before the arena; all matrix traffic below recycles through it.
  MatrixArena local_arena;
  MatrixArena* arena = options_.arena != nullptr ? options_.arena
                       : TrainingFastPathEnabled() ? &local_arena
                                                   : nullptr;
  ArenaScope arena_scope(arena);
  if (arena != nullptr) {
    if (options_.arena_byte_budget > 0) {
      arena->SetByteBudget(options_.arena_byte_budget);
    }
    arena->SetStopToken(options_.cancel);
  }

  const auto a_norm = NormalizedAdjacency(g);
  const SparseMatrix target = BuildTarget(g, options_);
  PairSet pair_set = SamplePairs(target, options_, &rng);
  GRGAD_CHECK(!pair_set.pairs.empty());
  const auto shared_pairs =
      std::make_shared<const std::vector<std::pair<int, int>>>(
          std::move(pair_set.pairs));

  // Encoder: GCN(d -> hidden) ReLU -> GCN(hidden -> embed).
  GcnLayer enc1(d, options_.hidden_dim, &rng);
  GcnLayer enc2(options_.hidden_dim, options_.embed_dim, &rng);
  // Attribute decoder: Linear(embed -> hidden) ReLU -> Linear(hidden -> d).
  Mlp attr_dec({static_cast<size_t>(options_.embed_dim),
                static_cast<size_t>(options_.hidden_dim),
                static_cast<size_t>(d)},
               &rng);

  std::vector<Var> params;
  for (const auto& layer_params :
       {enc1.Params(), enc2.Params(), attr_dec.Params()}) {
    params.insert(params.end(), layer_params.begin(), layer_params.end());
  }
  AdamOptions adam_options;
  adam_options.lr = options_.lr;
  adam_options.weight_decay = options_.weight_decay;
  adam_options.clip_grad_norm = 5.0;
  Adam adam(params, adam_options);

  const Var x(g.attributes(), /*requires_grad=*/false);
  GaeResult result;
  result.loss_history.reserve(options_.epochs);
  Matrix final_z;
  Matrix final_x_hat;
  Matrix final_pred;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    if (options_.cancel.stop_requested()) return result;
    adam.ZeroGrad();
    Var h = Relu(enc1.Forward(a_norm, x));
    Var z = enc2.Forward(a_norm, h);
    Var pred = Sigmoid(PairInnerProduct(z, shared_pairs));
    Var loss_stru = MseLoss(pred, pair_set.targets);
    Var x_hat = attr_dec.Forward(z);
    Var loss_attr = MseLoss(x_hat, g.attributes());
    Var loss = Add(Scale(loss_stru, options_.lambda),
                   Scale(loss_attr, 1.0 - options_.lambda));
    loss.Backward();
    adam.Step();
    result.loss_history.push_back(loss.item());
    if (epoch + 1 == options_.epochs) {
      final_z = z.value();
      final_x_hat = x_hat.value();
      final_pred = pred.value();
    }
  }

  // Per-node reconstruction errors over the sampled pairs (Eqn. 1 / 3).
  std::vector<double> stru(n, 0.0);
  std::vector<int> stru_count(n, 0);
  for (size_t p = 0; p < shared_pairs->size(); ++p) {
    const auto [i, j] = (*shared_pairs)[p];
    const double err = std::fabs(final_pred(p, 0) - pair_set.targets(p, 0));
    stru[i] += err;
    stru[j] += err;
    ++stru_count[i];
    ++stru_count[j];
  }
  for (int i = 0; i < n; ++i) {
    if (stru_count[i] > 0) stru[i] /= stru_count[i];
  }
  std::vector<double> attr(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double s = 0.0;
    for (int j = 0; j < d; ++j) {
      const double diff = final_x_hat(i, j) - g.attributes()(i, j);
      s += diff * diff;
    }
    attr[i] = std::sqrt(s);
  }
  result.structure_errors = stru;
  result.attribute_errors = attr;
  MinMaxNormalize(&stru);
  MinMaxNormalize(&attr);
  result.node_errors.resize(n);
  for (int i = 0; i < n; ++i) {
    result.node_errors[i] =
        options_.lambda * stru[i] + (1.0 - options_.lambda) * attr[i];
  }
  result.embeddings = std::move(final_z);
  GRGAD_LOG(kDebug) << "GcnGae(" << ToString(options_.target)
                    << ") final loss=" << result.loss_history.back();
  return result;
}

}  // namespace grgad
