// DOMINANT (Ding et al., SDM 2019): GCN autoencoder with joint structure
// (adjacency) + attribute reconstruction; node anomaly score = weighted
// reconstruction error. The N-GAD baseline the paper analyses in Fig. 3.
#ifndef GRGAD_GAE_DOMINANT_H_
#define GRGAD_GAE_DOMINANT_H_

#include "src/gae/gae_base.h"

namespace grgad {

/// DOMINANT baseline: GcnGae with the plain adjacency objective.
class Dominant : public NodeScorer {
 public:
  explicit Dominant(GaeOptions options = {});

  std::vector<double> FitNodeScores(const Graph& g) const override;
  std::string Name() const override { return "dominant"; }

 private:
  GaeOptions options_;
};

}  // namespace grgad

#endif  // GRGAD_GAE_DOMINANT_H_
