// The GCN graph-autoencoder engine shared by MH-GAE and the N-GAD baselines.
//
// Architecture (paper §III-A / §V-B, and DOMINANT): a 2-layer GCN encoder
// produces node embeddings Z; an inner-product decoder reconstructs a
// *structure target* T evaluated on sampled node pairs (all stored entries
// of T plus uniformly sampled negatives — the standard scalable GAE
// objective); an MLP decoder reconstructs the attributes X. The weighted
// reconstruction error r_i = λ r_stru + (1-λ) r_attr (Eqn. 1) ranks nodes.
//
// Swapping T is exactly the paper's MH-GAE ablation (Table IV):
//   A  -> vanilla GAE / DOMINANT (one-hop inconsistency only)
//   A^k (standardized walk powers)   -> multi-hop inconsistency
//   Ã  (GraphSNN weighted adjacency) -> overlap-structure inconsistency.
#ifndef GRGAD_GAE_GAE_BASE_H_
#define GRGAD_GAE_GAE_BASE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/arena.h"
#include "src/tensor/matrix.h"
#include "src/util/cancel.h"

namespace grgad {

/// Structure-reconstruction objective (Table IV columns).
enum class ReconTarget {
  kAdjacency,  ///< A (vanilla GAE / DOMINANT)
  kPower3,     ///< standardized A^3
  kPower5,     ///< standardized A^5
  kPower7,     ///< standardized A^7
  kGraphSnn,   ///< GraphSNN weighted Ã (MH-GAE default)
};

/// "A" | "A^3" | "A^5" | "A^7" | "A~".
const char* ToString(ReconTarget target);

/// Inverse of ToString(ReconTarget); false for unknown names.
bool ParseReconTarget(const std::string& name, ReconTarget* out);

/// GAE training hyperparameters (defaults follow §VII-A4).
struct GaeOptions {
  int hidden_dim = 64;
  int embed_dim = 64;
  int epochs = 80;
  double lr = 5e-3;
  double weight_decay = 0.0;
  /// λ of Eqn. (1): relative weight of the structure error. The attribute
  /// term carries the more reliable per-node signal (as in the DOMINANT
  /// reference configuration); the structure term is what differentiates
  /// the reconstruction objectives (Table IV).
  double lambda = 0.3;
  /// Negative pairs sampled per positive pair for the structure loss.
  int neg_per_pos = 1;
  /// Cap on total sampled pairs (positives + negatives).
  size_t max_pairs = 200000;
  ReconTarget target = ReconTarget::kAdjacency;
  /// Per-row cap when forming standardized powers (keeps A^k sparse).
  int power_row_cap = 64;
  /// λ exponent of the GraphSNN weights (Eqn. 4).
  double graphsnn_lambda = 1.0;
  uint64_t seed = 1;
  /// Cooperative stop token (cancellation, deadline, resource budget),
  /// polled once per epoch. When it fires, Fit() abandons training and
  /// returns a partial GaeResult (loss_history only); callers that handed
  /// out the token must check its stop_reason() before consuming the
  /// result.
  CancelToken cancel;
  /// Soft byte budget for the training arena (0 = unlimited). On breach the
  /// arena fires `cancel` with StopReason::kResourceExhausted and the epoch
  /// loop unwinds cleanly — see MatrixArena::SetByteBudget. Only effective
  /// when an arena backs the fit (the training fast path, i.e. the default).
  uint64_t arena_byte_budget = 0;
  /// Optional caller-owned buffer arena (must outlive Fit). When null and
  /// the training fast path is on, Fit installs a run-local arena; either
  /// way steady-state epochs reuse buffers instead of reallocating them.
  /// Passing an arena lets callers (benchmarks, multi-fit pipelines)
  /// inspect allocation stats and share warm buffers across fits.
  MatrixArena* arena = nullptr;
};

/// Everything a fitted GAE exposes.
struct GaeResult {
  Matrix embeddings;                    ///< n x embed_dim node embeddings Z.
  std::vector<double> node_errors;      ///< r_i (min-max normalized blend).
  std::vector<double> structure_errors; ///< raw r_stru per node.
  std::vector<double> attribute_errors; ///< raw r_attr per node.
  std::vector<double> loss_history;     ///< training loss per epoch.
};

/// Trains the autoencoder on a graph and returns node scores + embeddings.
class GcnGae {
 public:
  explicit GcnGae(GaeOptions options = {});

  /// Fits on `g` (must have attributes) and computes reconstruction errors.
  GaeResult Fit(const Graph& g) const;

 private:
  GaeOptions options_;
};

/// Interface for node-level anomaly scorers (DOMINANT / DeepAE / ComGA /
/// MH-GAE), consumed by the group-extraction adapters and benches.
class NodeScorer {
 public:
  virtual ~NodeScorer() = default;
  /// Fits on the graph and returns one anomaly score per node (higher =
  /// more anomalous, min-max normalized to [0, 1]).
  virtual std::vector<double> FitNodeScores(const Graph& g) const = 0;
  virtual std::string Name() const = 0;
};

/// Min-max normalizes v to [0, 1] in place (no-op for constant vectors).
void MinMaxNormalize(std::vector<double>* v);

}  // namespace grgad

#endif  // GRGAD_GAE_GAE_BASE_H_
