// MH-GAE: the paper's Multi-Hop Graph AutoEncoder (§V-B2).
//
// A GcnGae whose reconstruction objective is, by default, the GraphSNN
// weighted adjacency Ã — the configuration the paper selects after the
// Table IV ablation ("considering effectiveness, efficiency, and
// flexibility, we select Ã"). The A^k objectives remain available through
// MhGaeOptions::base.target for reproducing that ablation.
#ifndef GRGAD_GAE_MH_GAE_H_
#define GRGAD_GAE_MH_GAE_H_

#include "src/gae/gae_base.h"

namespace grgad {

/// MH-GAE configuration: the underlying GAE options plus anchor selection.
struct MhGaeOptions {
  GaeOptions base;
  /// Fraction of highest-error nodes promoted to anchors (§VII-A4: 10%).
  double anchor_fraction = 0.10;
  /// Absolute cap on the anchor count. Sampling does one BFS per anchor, so
  /// thousands are fine; the cap only guards pathological graph sizes.
  int max_anchors = 4096;

  MhGaeOptions() { base.target = ReconTarget::kGraphSnn; }
};

/// Fit result: everything GcnGae exposes plus the selected anchor nodes.
struct MhGaeResult {
  GaeResult gae;
  std::vector<int> anchors;  ///< Sorted node ids.
};

/// Multi-Hop Graph AutoEncoder with anchor-node selection.
class MhGae : public NodeScorer {
 public:
  explicit MhGae(MhGaeOptions options = {});

  /// Trains and selects anchors in one pass.
  MhGaeResult FitAnchors(const Graph& g) const;

  // NodeScorer interface (node errors as anomaly scores).
  std::vector<double> FitNodeScores(const Graph& g) const override;
  std::string Name() const override { return "mh-gae"; }

 private:
  MhGaeOptions options_;
};

}  // namespace grgad

#endif  // GRGAD_GAE_MH_GAE_H_
