// Anchor-node selection: the top fraction of nodes by reconstruction error
// become the seeds of candidate-group sampling (§V-B, §VII-A4).
#ifndef GRGAD_GAE_ANCHOR_H_
#define GRGAD_GAE_ANCHOR_H_

#include <vector>

namespace grgad {

/// Returns the ids of the ceil(fraction * n) highest-scoring nodes, sorted
/// ascending. Ties are broken by node id for determinism.
std::vector<int> SelectAnchors(const std::vector<double>& node_scores,
                               double fraction);

/// As above, but with an absolute cap on the anchor count (keeps the O(m^2)
/// pair sampling tractable on large graphs).
std::vector<int> SelectAnchorsCapped(const std::vector<double>& node_scores,
                                     double fraction, int max_anchors);

}  // namespace grgad

#endif  // GRGAD_GAE_ANCHOR_H_
