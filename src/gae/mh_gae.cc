#include "src/gae/mh_gae.h"

#include "src/gae/anchor.h"

namespace grgad {

MhGae::MhGae(MhGaeOptions options) : options_(options) {}

MhGaeResult MhGae::FitAnchors(const Graph& g) const {
  GcnGae engine(options_.base);
  MhGaeResult out;
  out.gae = engine.Fit(g);
  out.anchors = SelectAnchorsCapped(out.gae.node_errors,
                                    options_.anchor_fraction,
                                    options_.max_anchors);
  return out;
}

std::vector<double> MhGae::FitNodeScores(const Graph& g) const {
  GcnGae engine(options_.base);
  return engine.Fit(g).node_errors;
}

}  // namespace grgad
