// ComGA (Luo et al., WSDM 2022): community-aware attributed-graph anomaly
// detection. A community autoencoder over modularity features feeds its
// hidden representation into the GCN-GAE encoder (gated fusion), so the
// model can separate community-structure deviations from local noise.
//
// Scalability note (DESIGN.md §3): the original autoencodes the dense n x n
// modularity matrix B; we autoencode the random projection B R (computed
// without materializing B), which preserves the community fingerprint per
// node at O(nk + |E|k) cost.
#ifndef GRGAD_GAE_COMGA_H_
#define GRGAD_GAE_COMGA_H_

#include "src/gae/gae_base.h"

namespace grgad {

/// ComGA hyperparameters.
struct ComGaOptions {
  int modularity_dim = 32;  ///< Projection width of B.
  int hidden_dim = 64;
  int embed_dim = 64;
  int epochs = 80;
  double lr = 5e-3;
  double lambda = 0.3;      ///< Structure-vs-attribute weight (Eqn. 1).
  double community_weight = 0.15;  ///< Community-error share of the score.
  int neg_per_pos = 1;
  size_t max_pairs = 200000;
  uint64_t seed = 3;
};

/// Community-aware GAE node scorer.
class ComGa : public NodeScorer {
 public:
  explicit ComGa(ComGaOptions options = {});

  std::vector<double> FitNodeScores(const Graph& g) const override;
  std::string Name() const override { return "comga"; }

 private:
  ComGaOptions options_;
};

}  // namespace grgad

#endif  // GRGAD_GAE_COMGA_H_
