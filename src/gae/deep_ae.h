// DeepAE baseline: a per-node deep autoencoder over attributes concatenated
// with a random projection of the node's adjacency row (structure context).
// Node anomaly score = input reconstruction error. This is the pure
// autoencoder N-GAD baseline of Table III; like all one-hop reconstruction
// methods it cannot see long-range inconsistency.
#ifndef GRGAD_GAE_DEEP_AE_H_
#define GRGAD_GAE_DEEP_AE_H_

#include "src/gae/gae_base.h"

namespace grgad {

/// DeepAE hyperparameters.
struct DeepAeOptions {
  int struct_proj_dim = 24;  ///< Random-projection width of adjacency rows.
  int hidden_dim = 64;
  int bottleneck_dim = 32;
  int epochs = 80;
  double lr = 5e-3;
  uint64_t seed = 2;
};

/// Deep autoencoder node scorer.
class DeepAe : public NodeScorer {
 public:
  explicit DeepAe(DeepAeOptions options = {});

  std::vector<double> FitNodeScores(const Graph& g) const override;
  std::string Name() const override { return "deepae"; }

 private:
  DeepAeOptions options_;
};

}  // namespace grgad

#endif  // GRGAD_GAE_DEEP_AE_H_
