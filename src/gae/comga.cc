#include "src/gae/comga.h"

#include <cmath>

#include "src/graph/operators.h"
#include "src/nn/layers.h"
#include "src/nn/optim.h"
#include "src/tensor/arena.h"
#include "src/util/rng.h"

namespace grgad {

ComGa::ComGa(ComGaOptions options) : options_(options) {}

std::vector<double> ComGa::FitNodeScores(const Graph& g) const {
  GRGAD_CHECK(g.has_attributes());
  const int n = g.num_nodes();
  const int d = static_cast<int>(g.attr_dim());
  Rng rng(options_.seed ^ 0x636f6d67ULL);

  // Declared before any Var; see GcnGae::Fit.
  MatrixArena local_arena;
  ArenaScope arena_scope(TrainingFastPathEnabled() ? &local_arena : nullptr);

  const auto a_norm = NormalizedAdjacency(g);
  const Matrix b_proj =
      ModularityProjection(g, options_.modularity_dim, options_.seed ^ 0xb);

  // Community autoencoder over modularity features.
  const size_t md = static_cast<size_t>(options_.modularity_dim);
  Mlp comm_enc({md, static_cast<size_t>(options_.hidden_dim)}, &rng);
  Mlp comm_dec({static_cast<size_t>(options_.hidden_dim), md}, &rng);
  // GCN encoder with community fusion into the hidden layer.
  GcnLayer enc1(d, options_.hidden_dim, &rng);
  GcnLayer enc2(options_.hidden_dim, options_.embed_dim, &rng);
  Mlp attr_dec({static_cast<size_t>(options_.embed_dim),
                static_cast<size_t>(options_.hidden_dim),
                static_cast<size_t>(d)},
               &rng);

  std::vector<Var> params;
  for (const auto& layer_params :
       {comm_enc.Params(), comm_dec.Params(), enc1.Params(), enc2.Params(),
        attr_dec.Params()}) {
    params.insert(params.end(), layer_params.begin(), layer_params.end());
  }
  AdamOptions adam_options;
  adam_options.lr = options_.lr;
  adam_options.clip_grad_norm = 5.0;
  Adam adam(params, adam_options);

  // Structure pairs: adjacency entries + negatives (shared GAE recipe).
  const SparseMatrix adj = AdjacencyMatrix(g);
  std::vector<std::pair<int, int>> pairs;
  pairs.reserve(static_cast<size_t>(g.num_edges()));
  g.ForEachEdge([&pairs](int u, int v) { pairs.emplace_back(u, v); });
  const size_t num_pos = pairs.size();
  size_t added = 0, guard = 0;
  const size_t num_neg =
      std::min(num_pos * options_.neg_per_pos,
               options_.max_pairs > num_pos ? options_.max_pairs - num_pos
                                            : size_t{0});
  while (added < num_neg && guard < num_neg * 30 + 100) {
    ++guard;
    const int u = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int v = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    if (u >= v || adj.At(u, v) != 0.0) continue;
    pairs.emplace_back(u, v);
    ++added;
  }
  Matrix pair_targets(pairs.size(), 1);
  for (size_t p = 0; p < num_pos; ++p) pair_targets(p, 0) = 1.0;
  const auto shared_pairs =
      std::make_shared<const std::vector<std::pair<int, int>>>(
          std::move(pairs));

  const Var x(g.attributes(), /*requires_grad=*/false);
  const Var b(b_proj, /*requires_grad=*/false);
  Matrix final_pred, final_x_hat, final_b_hat;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    adam.ZeroGrad();
    // Community branch.
    Var h_comm = Relu(comm_enc.Forward(b));
    Var b_hat = comm_dec.Forward(h_comm);
    Var loss_comm = MseLoss(b_hat, b_proj);
    // Fused GCN encoder: hidden = ReLU(GCN1(x)) + community hidden.
    Var h = Relu(enc1.Forward(a_norm, x));
    Var h_fused = Add(h, Scale(h_comm, 0.5));
    Var z = enc2.Forward(a_norm, h_fused);
    Var pred = Sigmoid(PairInnerProduct(z, shared_pairs));
    Var loss_stru = MseLoss(pred, pair_targets);
    Var x_hat = attr_dec.Forward(z);
    Var loss_attr = MseLoss(x_hat, g.attributes());
    Var loss = Add(Add(Scale(loss_stru, options_.lambda),
                       Scale(loss_attr, 1.0 - options_.lambda)),
                   Scale(loss_comm, 0.5));
    loss.Backward();
    adam.Step();
    if (epoch + 1 == options_.epochs) {
      final_pred = pred.value();
      final_x_hat = x_hat.value();
      final_b_hat = b_hat.value();
    }
  }

  // Node scores: structure + attribute + community reconstruction errors.
  std::vector<double> stru(n, 0.0);
  std::vector<int> stru_count(n, 0);
  for (size_t p = 0; p < shared_pairs->size(); ++p) {
    const auto [i, j] = (*shared_pairs)[p];
    const double err = std::fabs(final_pred(p, 0) - pair_targets(p, 0));
    stru[i] += err;
    stru[j] += err;
    ++stru_count[i];
    ++stru_count[j];
  }
  for (int i = 0; i < n; ++i) {
    if (stru_count[i] > 0) stru[i] /= stru_count[i];
  }
  std::vector<double> attr(n, 0.0), comm(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double sa = 0.0;
    for (int j = 0; j < d; ++j) {
      const double diff = final_x_hat(i, j) - g.attributes()(i, j);
      sa += diff * diff;
    }
    attr[i] = std::sqrt(sa);
    double sc = 0.0;
    for (size_t j = 0; j < md; ++j) {
      const double diff = final_b_hat(i, j) - b_proj(i, j);
      sc += diff * diff;
    }
    comm[i] = std::sqrt(sc);
  }
  MinMaxNormalize(&stru);
  MinMaxNormalize(&attr);
  MinMaxNormalize(&comm);
  std::vector<double> scores(n);
  for (int i = 0; i < n; ++i) {
    scores[i] = options_.lambda * stru[i] +
                (1.0 - options_.lambda) * attr[i] +
                options_.community_weight * comm[i];
  }
  MinMaxNormalize(&scores);
  return scores;
}

}  // namespace grgad
