// Durability for the serving daemon: write-ahead log + state snapshots.
//
// PR 8 made the resident graph mutable; everything it absorbed lived only
// in daemon memory, so a kill -9 silently discarded the session. This layer
// extends PR 6's artifact durability contract (tmp+fsync+rename, checksums,
// typed DataLoss) to the whole serving session:
//
//  - WriteAheadLog appends one checksummed, length-prefixed record per
//    APPLIED operation (edge mutations, refresh, compact) before the client
//    sees the ack, with fsync batching under serve.wal_sync_every. On Open
//    a torn or corrupt tail — truncated record, flipped payload byte,
//    flipped length prefix — is detected by the frame checks, truncated at
//    the last valid record, and reported as a typed DataLoss note; the
//    valid prefix always replays.
//  - SaveServeSnapshot persists the full serving state (canonical packed
//    CSR, resident PipelineArtifacts, dirty-tracker marks, refresh cache,
//    WAL high-water mark) atomically under <state_dir>/snapshot, after
//    which the replayed WAL prefix can be truncated.
//  - LoadServeSnapshot + WAL replay through the daemon's own
//    apply/mark/refresh path restart a killed daemon bitwise identical
//    (response bytes and artifact doubles) to one that never crashed.
//
// WAL file format (text, line-framed; <state_dir>/wal.log):
//
//   grgad_wal_version 1 base <B>
//   <seq> <len> <fnv1a-hex> <payload>
//   ...
//
// where <len> is the payload byte count, <fnv1a-hex> is Fnv1a64(payload),
// and <seq> increases by exactly 1 from B+1. Payloads: "mutation <kind>
// <u> <v>" (FormatGraphMutation), "refresh", "compact" — the control
// records let replay re-run artifact refreshes and compactions at their
// original positions, which is what makes recovery bitwise reproducible.
//
// Not thread-safe: owned by the daemon's single executor thread.
#ifndef GRGAD_SERVE_WAL_H_
#define GRGAD_SERVE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/artifacts.h"
#include "src/graph/dynamic_graph.h"
#include "src/graph/graph.h"
#include "src/util/status.h"

namespace grgad {

/// One durable log record, in append order.
struct WalRecord {
  enum class Kind { kMutation, kRefresh, kCompact };
  Kind kind = Kind::kMutation;
  GraphMutation mutation;  ///< Valid only for kMutation.
  uint64_t seq = 0;
};

/// What Open() found on disk (surfaced into the stats durability block).
struct WalOpenStats {
  uint64_t base = 0;             ///< Header base: highest snapshotted seq.
  size_t replayable_records = 0; ///< Valid records parsed from the file.
  size_t truncated_records = 0;  ///< Torn/corrupt tail lines dropped.
  std::string truncation_note;   ///< Typed DataLoss description, "" = clean.
};

class WriteAheadLog {
 public:
  /// Opens (or creates, with base 0) the log at `path`. An existing file is
  /// validated record by record; the first torn or corrupt record truncates
  /// the file there — the damage is recorded in open_stats(), never an
  /// error, because a torn tail is exactly what a crash mid-append leaves.
  /// `sync_every` batches fsyncs: every Nth append syncs (<= 1 = every
  /// append is durable before it returns).
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path,
                                                     int sync_every);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record (seq = last_seq()+1) and applies the fsync policy.
  /// Fault points: "wal/pre-append" (before any byte), "wal/mid-append"
  /// (between the two writes framing the record; as an error the partial
  /// frame is truncated away, in crash mode it leaves a torn tail),
  /// "artifact/fsync" via the batched sync. On error the file is restored
  /// to the pre-append state and nothing was logged.
  Status Append(WalRecord::Kind kind,
                const GraphMutation& mutation = GraphMutation{});

  /// Forces an fsync of any unsynced appends (the `sync` serve op, and the
  /// graceful-drain path).
  Status Sync();

  /// Truncates to an empty log with header base `base_seq` (atomically:
  /// staged header file + rename) — called after a snapshot at `base_seq`
  /// commits. Records at or below the base are covered by the snapshot.
  Status ResetTo(uint64_t base_seq);

  /// The replayable tail Open() parsed (records with seq > base, in order).
  const std::vector<WalRecord>& records() const { return records_; }
  const WalOpenStats& open_stats() const { return open_stats_; }

  uint64_t last_seq() const { return last_seq_; }
  uint64_t appends() const { return appends_; }
  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t fsyncs() const { return fsyncs_; }

 private:
  WriteAheadLog() = default;

  std::string path_;
  int fd_ = -1;
  int sync_every_ = 1;
  int unsynced_ = 0;
  uint64_t last_seq_ = 0;
  uint64_t appends_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t fsyncs_ = 0;
  std::vector<WalRecord> records_;
  WalOpenStats open_stats_;
};

/// The serving-session state beyond graph + artifacts that recovery must
/// restore for bitwise equivalence: which anchors are marked dirty and the
/// refresh path's per-anchor candidate cache.
struct ServeStateSnapshot {
  bool all_dirty = false;
  std::vector<int> dirty_anchor_indices;  ///< Ignored when all_dirty.
  bool refresh_primed = false;
  std::vector<std::vector<std::vector<int>>> refresh_per_anchor;
};

/// Everything LoadServeSnapshot restores.
struct LoadedServeSnapshot {
  Graph graph;
  PipelineArtifacts artifacts;
  ServeStateSnapshot state;
  uint64_t wal_seq = 0;  ///< Highest WAL seq folded into this snapshot.
};

/// Atomically replaces <state_dir>/snapshot with the given state: staged in
/// a sibling tmp directory (graph.txt, serve_state.txt, artifacts/ via
/// WriteArtifactFiles, snapshot.txt manifest with sizes + checksums),
/// fsynced, committed with CommitDirReplace. Fault point "snapshot/mid"
/// fires inside staging — in crash mode the torn tmp directory is simply
/// discarded by the next Open/Save. On ANY failure the previous snapshot
/// is left intact.
Status SaveServeSnapshot(const std::string& state_dir, const Graph& graph,
                         const PipelineArtifacts& artifacts,
                         const ServeStateSnapshot& state, uint64_t wal_seq);

/// Loads <state_dir>/snapshot. NotFound when no snapshot exists (fresh
/// start — the caller falls back to --in/training plus full WAL replay);
/// DataLoss when one exists but is torn or checksum-corrupt (refusing to
/// serve from damaged state beats silently rescoring from the wrong graph).
Result<LoadedServeSnapshot> LoadServeSnapshot(const std::string& state_dir);

}  // namespace grgad

#endif  // GRGAD_SERVE_WAL_H_
