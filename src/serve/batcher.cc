#include "src/serve/batcher.h"

#include <utility>

namespace grgad {

bool RequestQueue::Admit(ServeRequest request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || queue_.size() >= capacity_) return false;
    PendingRequest pending;
    pending.request = std::move(request);
    pending.admit_seq = next_seq_++;
    queue_.push_back(std::move(pending));
  }
  ready_.notify_one();
  return true;
}

bool RequestQueue::DrainBatch(std::vector<PendingRequest>* batch) {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return false;  // Closed and drained.
  for (PendingRequest& pending : queue_) {
    batch->push_back(std::move(pending));
  }
  queue_.clear();
  return true;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace grgad
