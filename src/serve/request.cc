#include "src/serve/request.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace grgad {
namespace {

// ---- JSON parsing -----------------------------------------------------------

constexpr int kMaxDepth = 32;

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    GRGAD_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters after value");
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
      case 'f': return ParseLiteral(out);
      case 'n': return ParseLiteral(out);
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      GRGAD_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      GRGAD_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      JsonValue value;
      GRGAD_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseLiteral(JsonValue* out) {
    auto matches = [&](const char* word) {
      const size_t len = std::char_traits<char>::length(word);
      if (text_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      return true;
    };
    if (matches("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Status::Ok();
    }
    if (matches("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Status::Ok();
    }
    if (matches("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::Ok();
    }
    return Error("unknown literal");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      pos_ = start;
      return Error("malformed number '" + token + "'");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    out->clear();
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("malformed \\u escape");
          }
          // BMP code points only (surrogate pairs are out of scope for this
          // wire format — keys and values here are ASCII in practice).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---- request validation helpers ---------------------------------------------

/// Exact integer in [lo, hi] from a JSON number; false otherwise.
bool AsInt64(const JsonValue& v, int64_t lo, int64_t hi, int64_t* out) {
  if (v.kind != JsonValue::Kind::kNumber) return false;
  if (v.number != std::floor(v.number)) return false;
  if (v.number < static_cast<double>(lo) || v.number > static_cast<double>(hi)) {
    return false;
  }
  *out = static_cast<int64_t>(v.number);
  return true;
}

Status BadField(const char* field, const char* want) {
  return Status::InvalidArgument(std::string("request field '") + field +
                                 "': expected " + want);
}

// ---- response rendering -----------------------------------------------------

/// 17 significant digits round-trip IEEE-754 doubles exactly, matching the
/// artifact store's on-disk precision — scores survive the wire bit for bit.
std::string ExactNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string TopGroups(std::vector<ScoredGroup> groups, int top) {
  std::stable_sort(groups.begin(), groups.end(),
                   [](const ScoredGroup& a, const ScoredGroup& b) {
                     return a.score > b.score;
                   });
  std::string out = "[";
  const size_t limit = top < 0 ? 0 : static_cast<size_t>(top);
  for (size_t i = 0; i < groups.size() && i < limit; ++i) {
    if (i) out += ", ";
    out += "{\"score\": " + ExactNumber(groups[i].score) + ", \"nodes\": [";
    for (size_t k = 0; k < groups[i].nodes.size(); ++k) {
      if (k) out += ", ";
      out += std::to_string(groups[i].nodes[k]);
    }
    out += "]}";
  }
  out += "]";
  return out;
}

std::string ResponseHead(int64_t id, const char* op, const char* status) {
  return "{\"id\": " + std::to_string(id) + ", \"op\": \"" + op +
         "\", \"status\": \"" + status + "\"";
}

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<JsonValue> ParseJsonText(const std::string& text) {
  return JsonParser(text).Parse();
}

std::string JsonEscapeText(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* ServeOpName(ServeOp op) {
  switch (op) {
    case ServeOp::kAnchorScore: return "anchor-score";
    case ServeOp::kRescore: return "rescore";
    case ServeOp::kWhatIf: return "what-if";
    case ServeOp::kStats: return "stats";
    case ServeOp::kShutdown: return "shutdown";
    case ServeOp::kAddEdge: return "add-edge";
    case ServeOp::kRemoveEdge: return "remove-edge";
    case ServeOp::kRefresh: return "refresh";
    case ServeOp::kCompact: return "compact";
    case ServeOp::kSync: return "sync";
    case ServeOp::kSnapshot: return "snapshot";
  }
  return "unknown";
}

Result<ServeRequest> ParseServeRequest(const std::string& line) {
  auto parsed = ParseJsonText(line);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("request: expected a JSON object");
  }

  ServeRequest request;
  const JsonValue* id = root.Find("id");
  if (id == nullptr || !AsInt64(*id, 0, INT64_MAX, &request.id)) {
    return BadField("id", "a non-negative integer");
  }
  const JsonValue* op = root.Find("op");
  if (op == nullptr || op->kind != JsonValue::Kind::kString) {
    return BadField("op", "a string");
  }
  if (op->string == "anchor-score") request.op = ServeOp::kAnchorScore;
  else if (op->string == "rescore") request.op = ServeOp::kRescore;
  else if (op->string == "what-if") request.op = ServeOp::kWhatIf;
  else if (op->string == "stats") request.op = ServeOp::kStats;
  else if (op->string == "shutdown") request.op = ServeOp::kShutdown;
  else if (op->string == "add-edge") request.op = ServeOp::kAddEdge;
  else if (op->string == "remove-edge") request.op = ServeOp::kRemoveEdge;
  else if (op->string == "refresh") request.op = ServeOp::kRefresh;
  else if (op->string == "compact") request.op = ServeOp::kCompact;
  else if (op->string == "sync") request.op = ServeOp::kSync;
  else if (op->string == "snapshot") request.op = ServeOp::kSnapshot;
  else {
    return Status::InvalidArgument(
        "request: unknown op '" + op->string +
        "' (anchor-score, rescore, what-if, stats, shutdown, add-edge, "
        "remove-edge, refresh, compact, sync, snapshot)");
  }

  for (const auto& [key, value] : root.object) {
    if (key == "id" || key == "op") continue;
    if (key == "set") {
      if (value.kind != JsonValue::Kind::kArray) {
        return BadField("set", "an array of \"key=value\" strings");
      }
      for (const JsonValue& entry : value.array) {
        if (entry.kind != JsonValue::Kind::kString) {
          return BadField("set", "an array of \"key=value\" strings");
        }
        request.overrides.push_back(entry.string);
      }
    } else if (key == "detector") {
      if (value.kind != JsonValue::Kind::kString) {
        return BadField("detector", "a string");
      }
      request.detector = value.string;
    } else if (key == "seed") {
      int64_t seed = 0;
      if (!AsInt64(value, 0, static_cast<int64_t>(1) << 53, &seed)) {
        return BadField("seed", "a non-negative integer");
      }
      request.seed = static_cast<uint64_t>(seed);
      request.has_seed = true;
    } else if (key == "timeout") {
      if (value.kind != JsonValue::Kind::kNumber || value.number <= 0.0) {
        return BadField("timeout", "a positive number of seconds");
      }
      request.timeout_seconds = value.number;
    } else if (key == "top") {
      int64_t top = 0;
      if (!AsInt64(value, 0, 1000000, &top)) {
        return BadField("top", "an integer in [0, 1000000]");
      }
      request.top = static_cast<int>(top);
    } else if (key == "contains") {
      if (!AsInt64(value, 0, INT64_MAX, &request.contains_node)) {
        return BadField("contains", "a non-negative node id");
      }
    } else if (key == "min_size" || key == "max_size") {
      int64_t size = 0;
      if (!AsInt64(value, 0, 1000000000, &size)) {
        return BadField(key.c_str(), "a non-negative integer");
      }
      (key == "min_size" ? request.min_size : request.max_size) =
          static_cast<int>(size);
    } else if (key == "u" || key == "v") {
      int64_t node = 0;
      if (!AsInt64(value, 0, INT64_MAX, &node)) {
        return BadField(key.c_str(), "a non-negative node id");
      }
      (key == "u" ? request.u : request.v) = node;
    } else {
      return Status::InvalidArgument(
          "request: unknown field '" + key +
          "' (id, op, set, detector, seed, timeout, top, contains, "
          "min_size, max_size, u, v)");
    }
  }

  if (request.op == ServeOp::kRescore && request.detector.empty()) {
    return Status::InvalidArgument("request: rescore requires \"detector\"");
  }
  if ((request.op == ServeOp::kAddEdge || request.op == ServeOp::kRemoveEdge) &&
      (request.u < 0 || request.v < 0)) {
    return Status::InvalidArgument(
        std::string("request: ") + ServeOpName(request.op) +
        " requires \"u\" and \"v\"");
  }
  return request;
}

std::string RenderAnchorScoreResponse(int64_t id,
                                      const PipelineArtifacts& artifacts,
                                      int top) {
  std::string out = ResponseHead(id, "anchor-score", "ok");
  out += ", \"num_anchors\": " + std::to_string(artifacts.anchors.size());
  out += ", \"num_groups\": " +
         std::to_string(artifacts.candidate_groups.size());
  out += ", \"top_groups\": " + TopGroups(artifacts.scored_groups, top);
  out += "}";
  return out;
}

std::string RenderScoredGroupsResponse(int64_t id, ServeOp op,
                                       const std::vector<ScoredGroup>& scored,
                                       int top) {
  std::string out = ResponseHead(id, ServeOpName(op), "ok");
  out += ", \"num_groups\": " + std::to_string(scored.size());
  out += ", \"top_groups\": " + TopGroups(scored, top);
  out += "}";
  return out;
}

std::string RenderMutationResponse(int64_t id, ServeOp op, bool applied,
                                   int invalidated_anchors, int num_edges) {
  std::string out = ResponseHead(id, ServeOpName(op), "ok");
  out += std::string(", \"applied\": ") + (applied ? "true" : "false");
  out += ", \"invalidated_anchors\": " + std::to_string(invalidated_anchors);
  out += ", \"num_edges\": " + std::to_string(num_edges);
  out += "}";
  return out;
}

std::string RenderRefreshResponse(int64_t id, size_t refreshed_anchors,
                                  size_t reused_anchors,
                                  const std::vector<ScoredGroup>& scored,
                                  int top) {
  std::string out = ResponseHead(id, "refresh", "ok");
  out += ", \"refreshed_anchors\": " + std::to_string(refreshed_anchors);
  out += ", \"reused_anchors\": " + std::to_string(reused_anchors);
  out += ", \"num_groups\": " + std::to_string(scored.size());
  out += ", \"top_groups\": " + TopGroups(scored, top);
  out += "}";
  return out;
}

std::string RenderCompactResponse(int64_t id, int num_edges,
                                  uint64_t compactions, size_t pending_log) {
  std::string out = ResponseHead(id, "compact", "ok");
  out += ", \"num_edges\": " + std::to_string(num_edges);
  out += ", \"compactions\": " + std::to_string(compactions);
  out += ", \"pending_log\": " + std::to_string(pending_log);
  out += "}";
  return out;
}

std::string RenderSyncResponse(int64_t id, uint64_t wal_seq) {
  std::string out = ResponseHead(id, "sync", "ok");
  out += ", \"wal_seq\": " + std::to_string(wal_seq);
  out += "}";
  return out;
}

std::string RenderSnapshotResponse(int64_t id, uint64_t wal_seq) {
  std::string out = ResponseHead(id, "snapshot", "ok");
  out += ", \"wal_seq\": " + std::to_string(wal_seq);
  out += "}";
  return out;
}

std::string RenderErrorResponse(int64_t id, ServeOp op, const Status& status) {
  return RenderErrorResponse(id, ServeOpName(op), status);
}

std::string RenderErrorResponse(int64_t id, const char* op_name,
                                const Status& status) {
  std::string out = ResponseHead(id, op_name, StatusCodeName(status.code()));
  out += ", \"error\": \"" + JsonEscapeText(status.message()) + "\"}";
  return out;
}

}  // namespace grgad
