// Live serving telemetry: counters, histograms, and a bounded timeline.
//
// ServeMetrics is the daemon's always-on collector — every admission,
// rejection, batch, and completed request records into mutex-guarded
// aggregates, cheap enough to leave enabled (a few counter bumps per
// request; the pipeline's own telemetry arrives for free via RunContext
// stage timings). A `stats` request — or the --metrics-out dump at
// shutdown — renders SnapshotJson(): one self-describing JSON object
// ("grgad-serve-metrics-v3", schema documented in PERF.md) with queue
// gauges, per-op request counts + latency aggregates, batch-size stats, a
// log-spaced request latency histogram, per-(sub-)stage wall-time
// aggregates, mutation/invalidation-fanout/refresh counters, durability
// counters (WAL appends/bytes/fsyncs, snapshots, recovery replay and
// truncation totals), the shared workspace/arena allocation counters, and
// a most-recent-batches timeline ring (collector + timeline, not an
// unbounded log).
#ifndef GRGAD_SERVE_METRICS_H_
#define GRGAD_SERVE_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/run_context.h"
#include "src/tensor/arena.h"
#include "src/util/status.h"

namespace grgad {

class ServeMetrics {
 public:
  /// `timeline_capacity` bounds the per-batch timeline ring; older batches
  /// fall off (their contribution stays in the aggregates).
  explicit ServeMetrics(size_t queue_capacity, size_t timeline_capacity = 256);

  /// One request entered the queue; `queue_depth_after` feeds the depth
  /// peak gauge.
  void RecordAdmit(size_t queue_depth_after);

  /// One request was turned away at admission (full queue or injected
  /// fault) with an error response.
  void RecordReject();

  /// One batch finished: `batch_size` requests executed in `seconds`,
  /// drained when the queue held `depth_at_drain` (== batch_size unless
  /// requests kept arriving mid-drain).
  void RecordBatch(size_t batch_size, size_t depth_at_drain, double seconds);

  /// One request completed (ok or error) after `latency_seconds` from
  /// admission; `timings` carries the request's RunContext stage/sub-stage
  /// brackets, folded into the per-stage aggregates. Latency also folds
  /// into the per-op mean (the "per-op latency" counter of the mutation
  /// fast path).
  void RecordRequest(const std::string& op, const Status& status,
                     double latency_seconds,
                     const std::vector<StageTiming>& timings);

  /// One graph mutation executed: `applied` false for structural no-ops;
  /// `fanout` is the invalidation fanout (anchors inside the mutation's
  /// ball, or all anchors under the weighted-mode MarkAll fallback).
  void RecordMutation(bool applied, int fanout);

  /// One incremental refresh completed: `dirty` anchors re-sampled,
  /// `reused` served from the cache.
  void RecordRefresh(size_t dirty, size_t reused);

  // Durability (the "durability" snapshot section, schema v3):

  /// Flips the section's "enabled" flag (EnableDurability succeeded).
  void SetDurabilityEnabled(bool enabled);

  /// One WAL record appended (`bytes` on the wire); `fsynced` true when
  /// this append triggered the batched fsync.
  void RecordWalAppend(size_t bytes, bool fsynced);

  /// One explicit Sync() fsync (the `sync` op / graceful drain).
  void RecordWalSync();

  /// One snapshot committed at WAL high-water mark `wal_seq`.
  void RecordSnapshot(uint64_t wal_seq);

  /// Recovery finished: `replayed` WAL records re-applied, `truncated`
  /// torn/corrupt tail records dropped, with the typed DataLoss note ("" =
  /// clean tail).
  void RecordRecovery(size_t replayed, size_t truncated,
                      const std::string& note);

  /// A durable operation failed (WAL append, snapshot, sync); the daemon
  /// degraded but kept serving.
  void RecordDurabilityError(const Status& status);

  /// The live snapshot. `queue_depth` is sampled by the caller (the queue
  /// owns it); `arena` contributes the shared warm-buffer stats (nullptr
  /// omits the section's counters but keeps the key).
  std::string SnapshotJson(size_t queue_depth, const MatrixArena* arena) const;

 private:
  struct OpStats {
    uint64_t count = 0;
    uint64_t errors = 0;
    double total_ms = 0.0;  ///< Per-op latency aggregate (mean = total/count).
  };
  struct StageStats {
    uint64_t count = 0;
    double seconds = 0.0;
  };
  struct BatchSample {
    uint64_t batch = 0;
    size_t size = 0;
    size_t depth_at_drain = 0;
    double seconds = 0.0;
  };

  const size_t queue_capacity_;
  const size_t timeline_capacity_;

  mutable std::mutex mu_;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
  size_t peak_depth_ = 0;
  uint64_t batches_ = 0;
  size_t max_batch_size_ = 0;
  uint64_t batched_requests_ = 0;
  double batch_exec_seconds_ = 0.0;
  uint64_t requests_ = 0;
  uint64_t request_errors_ = 0;
  std::map<std::string, OpStats> by_op_;
  std::map<std::string, StageStats> by_stage_;
  std::vector<uint64_t> latency_buckets_;  ///< One per kLatencyUppersMs + inf.
  double max_latency_ms_ = 0.0;
  double total_latency_ms_ = 0.0;
  std::vector<BatchSample> timeline_;  ///< Ring, chronological modulo wrap.
  size_t timeline_next_ = 0;
  // Mutation fast path (the "mutations" snapshot section):
  uint64_t mutations_ = 0;
  uint64_t mutations_applied_ = 0;
  uint64_t fanout_total_ = 0;
  uint64_t fanout_max_ = 0;
  uint64_t refreshes_ = 0;
  uint64_t refreshed_anchors_ = 0;
  uint64_t reused_anchors_ = 0;
  // Durability (the "durability" snapshot section):
  bool durability_enabled_ = false;
  uint64_t wal_appends_ = 0;
  uint64_t wal_bytes_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t snapshots_ = 0;
  uint64_t wal_seq_ = 0;  ///< High-water mark of the last snapshot.
  uint64_t replayed_records_ = 0;
  uint64_t truncated_tail_records_ = 0;
  uint64_t durability_errors_ = 0;
  std::string last_durability_error_;  ///< "" until the first error/note.
};

}  // namespace grgad

#endif  // GRGAD_SERVE_METRICS_H_
