// The serving daemon's wire format: one JSON object per line, both ways.
//
// Requests (all fields but `id` and `op` optional):
//
//   {"id": 1, "op": "anchor-score", "set": ["sampler.max_groups=64"],
//    "timeout": 5.0, "top": 5}
//       Full pipeline over the resident graph; "set" carries the same
//       key=value overrides as `grgad run --set`, applied on top of the
//       daemon's base options through the method-registry OptionMap.
//   {"id": 2, "op": "rescore", "detector": "ensemble", "seed": 42}
//       Scoring stage only, over the resident artifacts (the daemon-side
//       twin of `grgad rescore`); seed defaults to the artifacts' seed.
//   {"id": 3, "op": "what-if", "contains": 17, "min_size": 3,
//    "max_size": 32, "detector": "ecod"}
//       Re-scores the subset of resident candidate groups passing the
//       filters — the cheap multi-scale what-if query a resident daemon
//       exists for. Detector defaults to the daemon's base detector.
//   {"id": 4, "op": "stats"}       live metrics snapshot
//   {"id": 5, "op": "shutdown"}    graceful drain + daemon exit
//   {"id": 6, "op": "add-edge", "u": 17, "v": 42}
//   {"id": 7, "op": "remove-edge", "u": 17, "v": 42}
//       Live graph mutations: applied to the daemon's DynamicGraph through
//       the same admission queue as queries (so mutate/query interleavings
//       are exactly admission order), marking the anchors whose
//       invalidation balls the edge touches. "applied" is false when the
//       mutation was a no-op (duplicate edge, absent edge, bad ids).
//   {"id": 8, "op": "refresh", "top": 5}
//       Incremental artifact refresh: re-samples only the dirty anchors,
//       merges with the cached lists, re-embeds (pooled) + re-scores.
//   {"id": 9, "op": "compact"}
//       Compacts the DynamicGraph's slack CSR and truncates its delta log.
//
// Responses echo {"id", "op", "status"} first; scoring responses carry
// counts and "top_groups" with scores at 17 significant digits (exact
// IEEE-754 round-trip), and deliberately NO wall-time fields — timings live
// in the metrics timeline, so a response is a pure function of the request
// and the resident state. That is what makes the batched-vs-sequential
// bitwise contract testable: the same renderers run over a direct
// RunPipeline/RescoreArtifacts result must produce the same bytes
// (tests/serve_test.cc).
#ifndef GRGAD_SERVE_REQUEST_H_
#define GRGAD_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/artifacts.h"
#include "src/util/status.h"

namespace grgad {

// ---- minimal JSON value + parser (no third-party deps) ----------------------

/// A parsed JSON value. Numbers are doubles (the wire format never needs
/// integers beyond 2^53); object members keep insertion order.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// The named object member, or nullptr (also for non-objects).
  const JsonValue* Find(const std::string& key) const;
};

/// Parses one complete JSON document (trailing garbage is an error).
/// InvalidArgument with position info on malformed input.
Result<JsonValue> ParseJsonText(const std::string& text);

/// Escapes `s` for embedding inside a JSON string literal (no quotes).
std::string JsonEscapeText(const std::string& s);

// ---- requests ---------------------------------------------------------------

enum class ServeOp {
  kAnchorScore,
  kRescore,
  kWhatIf,
  kStats,
  kShutdown,
  kAddEdge,
  kRemoveEdge,
  kRefresh,
  kCompact,
  kSync,      ///< Force a WAL fsync (durable up to the last acked record).
  kSnapshot,  ///< Force a state snapshot + WAL truncation.
};

const char* ServeOpName(ServeOp op);

struct ServeRequest {
  int64_t id = 0;
  ServeOp op = ServeOp::kStats;
  std::vector<std::string> overrides;  ///< anchor-score "set" entries.
  std::string detector;                ///< rescore (required) / what-if.
  bool has_seed = false;
  uint64_t seed = 0;
  double timeout_seconds = 0.0;  ///< Per-request deadline; 0 = daemon default.
  int top = 5;                   ///< Top groups echoed in the response.
  // what-if filters (kept groups must satisfy all):
  int64_t contains_node = -1;    ///< -1 = no membership filter.
  int min_size = 0;              ///< 0 = unbounded.
  int max_size = 0;              ///< 0 = unbounded.
  // add-edge / remove-edge endpoints (both required for those ops):
  int64_t u = -1;
  int64_t v = -1;
};

/// Parses and validates one request line. InvalidArgument on malformed
/// JSON, a missing/negative id, an unknown op, unknown keys, or per-op
/// requirements (rescore needs "detector").
Result<ServeRequest> ParseServeRequest(const std::string& line);

// ---- responses --------------------------------------------------------------

/// {"id", "op": "anchor-score", "status": "ok", num_anchors, num_groups,
///  top_groups} for a full-pipeline result.
std::string RenderAnchorScoreResponse(int64_t id,
                                      const PipelineArtifacts& artifacts,
                                      int top);

/// {"id", "op", "status": "ok", num_groups, top_groups} for rescore /
/// what-if results.
std::string RenderScoredGroupsResponse(int64_t id, ServeOp op,
                                       const std::vector<ScoredGroup>& scored,
                                       int top);

/// {"id", "op": "add-edge"|"remove-edge", "status": "ok", applied,
///  invalidated_anchors, num_edges} for a graph mutation. `applied` false =
///  structural no-op (duplicate / absent edge, bad ids).
std::string RenderMutationResponse(int64_t id, ServeOp op, bool applied,
                                   int invalidated_anchors, int num_edges);

/// {"id", "op": "refresh", "status": "ok", refreshed_anchors,
///  reused_anchors, num_groups, top_groups} for an incremental refresh.
std::string RenderRefreshResponse(int64_t id, size_t refreshed_anchors,
                                  size_t reused_anchors,
                                  const std::vector<ScoredGroup>& scored,
                                  int top);

/// {"id", "op": "compact", "status": "ok", num_edges, compactions,
///  pending_log} after a slack-CSR compaction.
std::string RenderCompactResponse(int64_t id, int num_edges,
                                  uint64_t compactions, size_t pending_log);

/// {"id", "op": "sync", "status": "ok", wal_seq} after a forced WAL fsync.
/// Deterministic: wal_seq is a pure function of the acked op sequence.
std::string RenderSyncResponse(int64_t id, uint64_t wal_seq);

/// {"id", "op": "snapshot", "status": "ok", wal_seq} after a forced
/// snapshot (wal_seq = the high-water mark the snapshot covers).
std::string RenderSnapshotResponse(int64_t id, uint64_t wal_seq);

/// {"id", "op", "status": "<StatusCodeName>", "error": "..."} — the
/// per-request failure surface (deadline expiry, injected faults, bad
/// options). `op_name` form for requests that never parsed.
std::string RenderErrorResponse(int64_t id, ServeOp op, const Status& status);
std::string RenderErrorResponse(int64_t id, const char* op_name,
                                const Status& status);

}  // namespace grgad

#endif  // GRGAD_SERVE_REQUEST_H_
