// The daemon's admission queue + batch former.
//
// The reader thread Admit()s parsed requests as they arrive; the executor
// thread blocks in DrainBatch(), which hands over EVERYTHING queued at that
// instant as one batch — cross-request coalescing falls out naturally:
// while the executor works through a slow request (an anchor-score retrain),
// arrivals pile up and the next drain takes them all in one tick. The queue
// is bounded; a full queue rejects at admission (the caller turns that into
// a kResourceExhausted error response) instead of buffering unboundedly.
//
// Batch order is admission order (admit_seq, FIFO), which the executor
// preserves — responses are written in request order, and per-request
// determinism (responses are pure functions of request + resident state)
// makes the bytes independent of how requests landed in batches.
#ifndef GRGAD_SERVE_BATCHER_H_
#define GRGAD_SERVE_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/serve/request.h"
#include "src/util/timer.h"

namespace grgad {

/// One admitted request waiting for (or moving through) execution.
struct PendingRequest {
  ServeRequest request;
  uint64_t admit_seq = 0;  ///< Monotonic admission number (FIFO key).
  Timer queued;            ///< Started at admission; read at completion for
                           ///< the end-to-end latency histogram.
};

class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity) : capacity_(capacity) {}

  /// Enqueues `request`, stamping its admit_seq. False — without enqueueing
  /// — when the queue is at capacity or closed.
  bool Admit(ServeRequest request);

  /// Blocks until at least one request is queued (returning the entire
  /// backlog, appended to *batch in admission order) or the queue is closed
  /// AND empty (returns false: drain complete).
  bool DrainBatch(std::vector<PendingRequest>* batch);

  /// Stops admissions and wakes the drainer; already-queued requests still
  /// drain (graceful-drain semantics).
  void Close();

  size_t depth() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::vector<PendingRequest> queue_;
  uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace grgad

#endif  // GRGAD_SERVE_BATCHER_H_
