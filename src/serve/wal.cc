#include "src/serve/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "src/util/atomic_io.h"
#include "src/util/fault.h"

namespace grgad {
namespace {

constexpr const char* kWalHeaderPrefix = "grgad_wal_version 1 base ";
constexpr const char* kSnapshotDirName = "snapshot";
constexpr const char* kSnapshotManifest = "snapshot.txt";
constexpr const char* kSnapshotGraphFile = "graph.txt";
constexpr const char* kSnapshotStateFile = "serve_state.txt";
constexpr const char* kSnapshotArtifactsDir = "artifacts";

std::string WalHeaderLine(uint64_t base) {
  return std::string(kWalHeaderPrefix) + std::to_string(base) + "\n";
}

/// write(2) the whole buffer, riding out EINTR and short writes.
Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("wal write failed: " + path + ": " +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// The record payload for a kind (the part the checksum covers).
std::string WalPayload(WalRecord::Kind kind, const GraphMutation& mutation) {
  switch (kind) {
    case WalRecord::Kind::kMutation:
      return "mutation " + FormatGraphMutation(mutation);
    case WalRecord::Kind::kRefresh:
      return "refresh";
    case WalRecord::Kind::kCompact:
      return "compact";
  }
  return "";
}

bool ParseWalPayload(const std::string& payload, WalRecord* out) {
  if (payload == "refresh") {
    out->kind = WalRecord::Kind::kRefresh;
    return true;
  }
  if (payload == "compact") {
    out->kind = WalRecord::Kind::kCompact;
    return true;
  }
  constexpr const char* kMutationPrefix = "mutation ";
  if (payload.rfind(kMutationPrefix, 0) == 0) {
    out->kind = WalRecord::Kind::kMutation;
    return ParseGraphMutation(payload.substr(std::strlen(kMutationPrefix)),
                              &out->mutation);
  }
  return false;
}

/// Parses one record line (without the trailing newline). Valid iff the
/// frame is well-formed, the length prefix matches the payload size, the
/// checksum matches, and the seq continues the chain.
bool ParseWalLine(const std::string& line, uint64_t expected_seq,
                  WalRecord* out) {
  // <seq> <len> <hex> <payload> — split on the first three spaces only;
  // the payload may contain spaces itself.
  const size_t s1 = line.find(' ');
  if (s1 == std::string::npos) return false;
  const size_t s2 = line.find(' ', s1 + 1);
  if (s2 == std::string::npos) return false;
  const size_t s3 = line.find(' ', s2 + 1);
  if (s3 == std::string::npos) return false;
  const std::string seq_str = line.substr(0, s1);
  const std::string len_str = line.substr(s1 + 1, s2 - s1 - 1);
  const std::string hex_str = line.substr(s2 + 1, s3 - s2 - 1);
  const std::string payload = line.substr(s3 + 1);
  char* end = nullptr;
  errno = 0;
  const uint64_t seq = std::strtoull(seq_str.c_str(), &end, 10);
  if (end == seq_str.c_str() || *end != '\0' || errno == ERANGE) return false;
  errno = 0;
  const uint64_t len = std::strtoull(len_str.c_str(), &end, 10);
  if (end == len_str.c_str() || *end != '\0' || errno == ERANGE) return false;
  if (seq != expected_seq) return false;
  if (payload.size() != len) return false;
  if (HexU64(Fnv1a64(payload)) != hex_str) return false;
  if (!ParseWalPayload(payload, out)) return false;
  out->seq = seq;
  return true;
}

std::string SerializeServeState(const ServeStateSnapshot& state) {
  std::string out;
  out += "grgad_serve_state_version 1\n";
  out += std::string("all_dirty ") + (state.all_dirty ? "1" : "0") + "\n";
  out += "dirty " + std::to_string(state.dirty_anchor_indices.size());
  for (int i : state.dirty_anchor_indices) out += " " + std::to_string(i);
  out += "\n";
  out += std::string("refresh_primed ") +
         (state.refresh_primed ? "1" : "0") + "\n";
  out += "refresh_anchors " +
         std::to_string(state.refresh_per_anchor.size()) + "\n";
  for (const auto& groups : state.refresh_per_anchor) {
    out += "a " + std::to_string(groups.size()) + "\n";
    for (const auto& group : groups) {
      out += "g " + std::to_string(group.size());
      for (int id : group) out += " " + std::to_string(id);
      out += "\n";
    }
  }
  return out;
}

Result<ServeStateSnapshot> ParseServeState(const std::string& text) {
  // TokenScanner for the same reason as ParseGraphSnapshot: the refresh
  // cache is one int token per cached candidate, all-anchor serving state
  // runs to hundreds of kilobytes, and recovery pays this parse on every
  // restart.
  TokenScanner in(text);
  long long version = 0;
  if (!in.Keyword("grgad_serve_state_version") || !in.I64(&version) ||
      version != 1) {
    return Status::DataLoss("serve state: bad or missing version header");
  }
  ServeStateSnapshot state;
  long long flag = 0;
  if (!in.Keyword("all_dirty") || !in.I64(&flag) ||
      (flag != 0 && flag != 1)) {
    return Status::DataLoss("serve state: bad all_dirty");
  }
  state.all_dirty = flag == 1;
  long long count = 0;
  if (!in.Keyword("dirty") || !in.I64(&count) || count < 0) {
    return Status::DataLoss("serve state: bad dirty count");
  }
  state.dirty_anchor_indices.reserve(static_cast<size_t>(count));
  for (long long i = 0; i < count; ++i) {
    long long idx = 0;
    if (!in.I64(&idx) || idx < INT_MIN || idx > INT_MAX) {
      return Status::DataLoss("serve state: truncated dirty list");
    }
    state.dirty_anchor_indices.push_back(static_cast<int>(idx));
  }
  if (!in.Keyword("refresh_primed") || !in.I64(&flag) ||
      (flag != 0 && flag != 1)) {
    return Status::DataLoss("serve state: bad refresh_primed");
  }
  state.refresh_primed = flag == 1;
  long long anchors = 0;
  if (!in.Keyword("refresh_anchors") || !in.I64(&anchors) || anchors < 0) {
    return Status::DataLoss("serve state: bad refresh_anchors");
  }
  state.refresh_per_anchor.resize(static_cast<size_t>(anchors));
  for (long long a = 0; a < anchors; ++a) {
    long long groups = 0;
    if (!in.Keyword("a") || !in.I64(&groups) || groups < 0) {
      return Status::DataLoss("serve state: bad anchor group count");
    }
    auto& anchor_groups = state.refresh_per_anchor[static_cast<size_t>(a)];
    anchor_groups.resize(static_cast<size_t>(groups));
    for (long long g = 0; g < groups; ++g) {
      long long len = 0;
      if (!in.Keyword("g") || !in.I64(&len) || len < 0) {
        return Status::DataLoss("serve state: bad group length");
      }
      auto& group = anchor_groups[static_cast<size_t>(g)];
      group.reserve(static_cast<size_t>(len));
      for (long long i = 0; i < len; ++i) {
        long long id = 0;
        if (!in.I64(&id) || id < INT_MIN || id > INT_MAX) {
          return Status::DataLoss("serve state: truncated group members");
        }
        group.push_back(static_cast<int>(id));
      }
    }
  }
  if (!in.AtEnd()) {
    return Status::DataLoss("serve state: trailing data after payload");
  }
  return state;
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, int sync_every) {
  namespace fs = std::filesystem;
  auto wal = std::unique_ptr<WriteAheadLog>(new WriteAheadLog());
  wal->path_ = path;
  wal->sync_every_ = sync_every < 1 ? 1 : sync_every;

  std::error_code ec;
  if (!fs::exists(fs::path(path), ec)) {
    // Fresh log: durable header before the first record can land.
    const std::string header = WalHeaderLine(0);
    GRGAD_RETURN_IF_ERROR(WriteTextFile(path, header));
    GRGAD_RETURN_IF_ERROR(FsyncPath(path, /*is_dir=*/false));
    const fs::path parent = fs::path(path).parent_path();
    if (!parent.empty()) {
      GRGAD_RETURN_IF_ERROR(FsyncPath(parent.string(), /*is_dir=*/true));
    }
  } else {
    auto contents = ReadTextFile(path);
    if (!contents.ok()) return contents.status();
    const std::string& text = contents.value();
    // Header line.
    const size_t header_nl = text.find('\n');
    if (header_nl == std::string::npos ||
        text.rfind(kWalHeaderPrefix, 0) != 0) {
      return Status::DataLoss("wal: bad or missing header: " + path);
    }
    const std::string base_str(text, std::strlen(kWalHeaderPrefix),
                               header_nl - std::strlen(kWalHeaderPrefix));
    char* end = nullptr;
    errno = 0;
    wal->open_stats_.base = std::strtoull(base_str.c_str(), &end, 10);
    if (end == base_str.c_str() || *end != '\0' || errno == ERANGE) {
      return Status::DataLoss("wal: bad header base: " + path);
    }
    wal->last_seq_ = wal->open_stats_.base;
    // Records: each must be a complete newline-terminated valid frame that
    // continues the seq chain; the first failure truncates the file there.
    size_t offset = header_nl + 1;
    size_t valid_end = offset;
    while (offset < text.size()) {
      const size_t nl = text.find('\n', offset);
      if (nl == std::string::npos) break;  // Torn trailing partial line.
      WalRecord record;
      if (!ParseWalLine(text.substr(offset, nl - offset), wal->last_seq_ + 1,
                        &record)) {
        break;
      }
      wal->records_.push_back(record);
      wal->last_seq_ = record.seq;
      offset = nl + 1;
      valid_end = offset;
    }
    wal->open_stats_.replayable_records = wal->records_.size();
    if (valid_end < text.size()) {
      // Count the dropped tail lines (a trailing partial counts as one).
      size_t dropped = 0;
      for (size_t p = valid_end; p < text.size();) {
        ++dropped;
        const size_t nl = text.find('\n', p);
        if (nl == std::string::npos) break;
        p = nl + 1;
      }
      wal->open_stats_.truncated_records = dropped;
      wal->open_stats_.truncation_note =
          Status::DataLoss("wal: torn or corrupt tail at byte " +
                           std::to_string(valid_end) + ", dropped " +
                           std::to_string(dropped) + " record(s): " + path)
              .ToString();
      if (::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
        return Status::IoError("wal: cannot truncate torn tail: " + path +
                               ": " + std::strerror(errno));
      }
      GRGAD_RETURN_IF_ERROR(FsyncPath(path, /*is_dir=*/false));
    }
  }

  wal->fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (wal->fd_ < 0) {
    return Status::IoError("wal: cannot open for append: " + path + ": " +
                           std::strerror(errno));
  }
  return wal;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status WriteAheadLog::Append(WalRecord::Kind kind,
                             const GraphMutation& mutation) {
  if (fd_ < 0) return Status::IoError("wal: not open: " + path_);
  GRGAD_RETURN_IF_ERROR(FaultInjector::Global().Check("wal/pre-append"));
  const std::string payload = WalPayload(kind, mutation);
  const uint64_t seq = last_seq_ + 1;
  const std::string frame = std::to_string(seq) + " " +
                            std::to_string(payload.size()) + " " +
                            HexU64(Fnv1a64(payload)) + " " + payload + "\n";
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IoError("wal: fstat failed: " + path_);
  }
  const off_t size_before = st.st_size;
  // On ANY failure below the partial frame is truncated away so the file
  // never diverges from the acked state (the caller rolls back the
  // in-memory mutation; a surviving record would replay it anyway).
  auto rollback = [&](Status error) {
    (void)::ftruncate(fd_, size_before);
    return error;
  };
  // Two writes framing the record: the gap between them is the torn-tail
  // window the "wal/mid-append" point (and crash mode) targets.
  const size_t half = frame.size() / 2;
  if (Status s = WriteAll(fd_, frame.data(), half, path_); !s.ok()) {
    return rollback(std::move(s));
  }
  if (Status s = FaultInjector::Global().Check("wal/mid-append"); !s.ok()) {
    return rollback(std::move(s));
  }
  if (Status s =
          WriteAll(fd_, frame.data() + half, frame.size() - half, path_);
      !s.ok()) {
    return rollback(std::move(s));
  }
  ++unsynced_;
  if (unsynced_ >= sync_every_) {
    if (Status s = FaultInjector::Global().Check("artifact/fsync"); !s.ok()) {
      return rollback(std::move(s));
    }
    if (::fsync(fd_) != 0) {
      return rollback(Status::IoError("wal: fsync failed: " + path_));
    }
    ++fsyncs_;
    unsynced_ = 0;
  }
  last_seq_ = seq;
  ++appends_;
  bytes_appended_ += frame.size();
  return Status::Ok();
}

Status WriteAheadLog::Sync() {
  if (fd_ < 0) return Status::IoError("wal: not open: " + path_);
  GRGAD_RETURN_IF_ERROR(FaultInjector::Global().Check("artifact/fsync"));
  if (::fsync(fd_) != 0) {
    return Status::IoError("wal: fsync failed: " + path_);
  }
  ++fsyncs_;
  unsynced_ = 0;
  return Status::Ok();
}

Status WriteAheadLog::ResetTo(uint64_t base_seq) {
  namespace fs = std::filesystem;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const std::string tmp = path_ + ".tmp";
  const Status staged = [&]() -> Status {
    GRGAD_RETURN_IF_ERROR(WriteTextFile(tmp, WalHeaderLine(base_seq)));
    return FsyncPath(tmp, /*is_dir=*/false);
  }();
  if (!staged.ok()) {
    std::error_code ec;
    fs::remove(fs::path(tmp), ec);
    // The old log is still intact; reopen so appends keep working.
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    return staged;
  }
  std::error_code ec;
  fs::rename(fs::path(tmp), fs::path(path_), ec);
  if (ec) {
    std::error_code cleanup;
    fs::remove(fs::path(tmp), cleanup);
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
    return Status::IoError("wal: cannot commit truncation: " + path_ + ": " +
                           ec.message());
  }
  const fs::path parent = fs::path(path_).parent_path();
  if (!parent.empty()) {
    // Best-effort: the rename already committed.
    (void)FsyncPath(parent.string(), /*is_dir=*/true);
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) {
    return Status::IoError("wal: cannot reopen after truncation: " + path_ +
                           ": " + std::strerror(errno));
  }
  if (base_seq > last_seq_) last_seq_ = base_seq;
  records_.clear();
  unsynced_ = 0;
  return Status::Ok();
}

Status SaveServeSnapshot(const std::string& state_dir, const Graph& graph,
                         const PipelineArtifacts& artifacts,
                         const ServeStateSnapshot& state, uint64_t wal_seq) {
  namespace fs = std::filesystem;
  const fs::path snap_dir = fs::path(state_dir) / kSnapshotDirName;
  const fs::path tmp(snap_dir.string() + ".tmp");
  std::error_code ec;
  fs::remove_all(tmp, ec);  // Stale leftovers from a crashed snapshot.
  fs::remove_all(fs::path(snap_dir.string() + ".old"), ec);
  ec.clear();
  fs::create_directories(tmp / kSnapshotArtifactsDir, ec);
  if (ec) {
    return Status::IoError("cannot create " + tmp.string() + ": " +
                           ec.message());
  }
  const Status staged = [&]() -> Status {
    const std::string graph_text = SerializeGraphSnapshot(graph);
    const std::string state_text = SerializeServeState(state);
    std::string manifest;
    manifest += "grgad_serve_snapshot_version 1\n";
    manifest += "wal_seq " + std::to_string(wal_seq) + "\n";
    manifest += std::string("file ") + kSnapshotGraphFile + " " +
                std::to_string(graph_text.size()) + " " +
                HexU64(Fnv1a64(graph_text)) + "\n";
    manifest += std::string("file ") + kSnapshotStateFile + " " +
                std::to_string(state_text.size()) + " " +
                HexU64(Fnv1a64(state_text)) + "\n";
    GRGAD_RETURN_IF_ERROR(
        WriteTextFile((tmp / kSnapshotGraphFile).string(), graph_text));
    // The kill-point inside staging: a crash here leaves only a torn tmp
    // directory, which the commit never publishes.
    GRGAD_RETURN_IF_ERROR(FaultInjector::Global().Check("snapshot/mid"));
    GRGAD_RETURN_IF_ERROR(
        WriteTextFile((tmp / kSnapshotStateFile).string(), state_text));
    GRGAD_RETURN_IF_ERROR(
        WriteTextFile((tmp / kSnapshotManifest).string(), manifest));
    GRGAD_RETURN_IF_ERROR(WriteArtifactFiles(
        artifacts, (tmp / kSnapshotArtifactsDir).string()));
    GRGAD_RETURN_IF_ERROR(
        FsyncPath((tmp / kSnapshotGraphFile).string(), /*is_dir=*/false));
    GRGAD_RETURN_IF_ERROR(
        FsyncPath((tmp / kSnapshotStateFile).string(), /*is_dir=*/false));
    GRGAD_RETURN_IF_ERROR(
        FsyncPath((tmp / kSnapshotManifest).string(), /*is_dir=*/false));
    return FsyncPath(tmp.string(), /*is_dir=*/true);
  }();
  if (!staged.ok()) {
    fs::remove_all(tmp, ec);
    return staged;
  }
  return CommitDirReplace(tmp.string(), snap_dir.string());
}

Result<LoadedServeSnapshot> LoadServeSnapshot(const std::string& state_dir) {
  namespace fs = std::filesystem;
  const fs::path snap_dir = fs::path(state_dir) / kSnapshotDirName;
  const fs::path manifest_path = snap_dir / kSnapshotManifest;
  std::error_code ec;
  if (!fs::exists(manifest_path, ec)) {
    return Status::NotFound("no snapshot under " + state_dir);
  }
  auto manifest = ReadTextFile(manifest_path.string());
  if (!manifest.ok()) return manifest.status();
  std::istringstream in(manifest.value());
  std::string key;
  long long version = 0;
  if (!(in >> key >> version) || key != "grgad_serve_snapshot_version" ||
      version != 1) {
    return Status::DataLoss("snapshot: bad or missing version header: " +
                            manifest_path.string());
  }
  LoadedServeSnapshot snap;
  long long wal_seq = 0;
  if (!(in >> key >> wal_seq) || key != "wal_seq" || wal_seq < 0) {
    return Status::DataLoss("snapshot: bad wal_seq: " +
                            manifest_path.string());
  }
  snap.wal_seq = static_cast<uint64_t>(wal_seq);
  // Per-file size + checksum entries; the artifacts directory verifies
  // itself through its own manifest inside LoadArtifacts.
  auto read_verified = [&](const char* name) -> Result<std::string> {
    std::string file_key;
    std::string file_name;
    long long size = 0;
    std::string checksum;
    if (!(in >> file_key >> file_name >> size >> checksum) ||
        file_key != "file" || file_name != name || size < 0) {
      return Status::DataLoss("snapshot: bad manifest entry for " +
                              std::string(name));
    }
    auto contents = ReadTextFile((snap_dir / name).string());
    if (!contents.ok()) {
      if (contents.status().code() == StatusCode::kIoError) {
        return Status::DataLoss("snapshot: missing or unreadable " +
                                std::string(name) + ": " +
                                contents.status().ToString());
      }
      return contents.status();
    }
    if (contents.value().size() != static_cast<size_t>(size) ||
        HexU64(Fnv1a64(contents.value())) != checksum) {
      return Status::DataLoss("snapshot: checksum mismatch in " +
                              std::string(name));
    }
    return contents;
  };
  auto graph_text = read_verified(kSnapshotGraphFile);
  if (!graph_text.ok()) return graph_text.status();
  auto state_text = read_verified(kSnapshotStateFile);
  if (!state_text.ok()) return state_text.status();
  auto graph = ParseGraphSnapshot(graph_text.value());
  if (!graph.ok()) return graph.status();
  snap.graph = std::move(graph.value());
  auto state = ParseServeState(state_text.value());
  if (!state.ok()) return state.status();
  snap.state = std::move(state.value());
  auto artifacts = LoadArtifacts((snap_dir / kSnapshotArtifactsDir).string());
  if (!artifacts.ok()) {
    if (artifacts.status().code() == StatusCode::kNotFound) {
      // A committed snapshot without its artifacts is torn, not absent.
      return Status::DataLoss("snapshot: artifacts missing: " +
                              artifacts.status().ToString());
    }
    return artifacts.status();
  }
  snap.artifacts = std::move(artifacts.value());
  if (snap.state.refresh_primed &&
      snap.state.refresh_per_anchor.size() != snap.artifacts.anchors.size()) {
    return Status::DataLoss(
        "snapshot: refresh cache size disagrees with anchors");
  }
  return snap;
}

}  // namespace grgad
