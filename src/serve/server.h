// The resident serving daemon behind `grgad serve`.
//
// A ServeDaemon owns everything a request would otherwise pay for on every
// CLI invocation: the host graph stays mapped, the trained
// PipelineArtifacts stay loaded, the traversal-workspace pools stay
// prewarmed (PrewarmPipelineState), and one shared MatrixArena keeps
// training buffers warm across anchor-score retrains. Serve() runs one
// line-delimited JSON session: an inline reader thread parses and admits
// requests into the bounded RequestQueue, an executor thread drains
// whole-backlog batches and runs them through the regular stage entry
// points (RunPipeline / RescoreArtifacts / RunScoringStage) — one request
// at a time, each internally parallel at full GRGAD_THREADS.
//
// Live mutations: the daemon owns a DynamicGraph seeded from the host
// graph. add-edge/remove-edge requests mutate it through the same
// admission queue as queries (so interleavings are exactly admission
// order), an AnchorDirtyTracker marks the anchors whose invalidation balls
// each mutation touches, and a refresh request re-samples only those
// anchors (RefreshArtifacts), rewriting the resident artifacts in place.
// Queries run on the DynamicGraph's canonical PackedView, so anchor-score
// always sees the mutated graph. Single-threaded execution is what makes
// unguarded mutation safe.
//
// Determinism: a response is a pure function of (request, resident
// artifacts, base options) — batch items execute sequentially in admission
// order on shared-but-value-neutral state (pools and arena recycle memory,
// never values), responses carry no timestamps, and scores render at 17
// significant digits. Batched output is therefore bitwise identical to
// running the same requests one-by-one through the stage functions, at any
// GRGAD_THREADS and any admission order (tests/serve_test.cc).
//
// Failure isolation: each request runs under its own RunContext with its
// own deadline; kDeadlineExceeded, injected faults ("serve/admit",
// "serve/execute", and every stage/* point), and bad options become
// per-request error responses — the daemon never exits on a request
// failure. A fired `stop` token (SIGTERM) or a `shutdown` request stops
// admissions and drains everything already admitted before Serve()
// returns.
#ifndef GRGAD_SERVE_SERVER_H_
#define GRGAD_SERVE_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/core/refresh.h"
#include "src/core/stages.h"
#include "src/graph/dynamic_graph.h"
#include "src/sampling/dirty_tracker.h"
#include "src/serve/batcher.h"
#include "src/serve/metrics.h"
#include "src/serve/request.h"
#include "src/serve/wal.h"
#include "src/util/transport.h"

namespace grgad {

struct ServeOptions {
  /// Base pipeline configuration (dataset-independent knobs, detector,
  /// seed, serve.prewarm_workspaces); per-request "set" overrides layer on
  /// top of a copy.
  TpGrGadOptions pipeline;
  /// Admission-queue bound; a full queue rejects with kResourceExhausted.
  size_t max_queue = 64;
  /// Deadline applied to requests that carry no "timeout" (0 = none).
  double default_timeout_seconds = 0.0;
  /// Durability root (WAL + snapshots live under it); "" = memory-only
  /// serving, exactly the pre-durability behavior. The daemon only becomes
  /// durable once EnableDurability() runs.
  std::string state_dir;
};

class ServeDaemon {
 public:
  /// `graph` must outlive the daemon (it seeds the live DynamicGraph);
  /// `artifacts` is the trained resident state rescore/what-if requests
  /// read and refresh rewrites.
  ServeDaemon(const Graph& graph, PipelineArtifacts artifacts,
              ServeOptions options);

  /// Pre-grows the shared traversal-workspace pools for the resident graph
  /// (per pipeline.serve_prewarm_workspaces) so the first request's
  /// candidate stage allocates nothing.
  void Prewarm();

  /// Arms durability under options().state_dir: opens (or creates) the WAL,
  /// restores `snapshot`'s tracker marks and refresh cache when one was
  /// loaded (the caller already seeded the constructor with its graph and
  /// artifacts), and replays the WAL tail above the snapshot's high-water
  /// mark through the same apply/mark/refresh path live traffic takes — so
  /// the daemon resumes bitwise identical to one that never crashed. Call
  /// once, before Serve(); a failure means the durable state is unusable
  /// and the caller must not serve from it.
  Status EnableDurability(const LoadedServeSnapshot* snapshot);

  /// Forces a snapshot now (graph + artifacts + tracker + refresh cache +
  /// WAL high-water mark) and truncates the replayed WAL prefix. The
  /// `snapshot` serve op, the cadence path, and graceful drain all land
  /// here. FailedPrecondition when durability is not enabled.
  Status SnapshotNow();

  /// Serves one session over `channel` until the peer closes the stream,
  /// `stop` fires, or a shutdown request lands — then drains every admitted
  /// request and returns. The returned Status reflects the transport only
  /// (request failures are per-request responses).
  Status Serve(LineChannel* channel, const CancelToken& stop);

  /// Executes one request synchronously — the exact code path batched
  /// requests take, exposed for tests and benches. `status_out` /
  /// `timings_out` (optional) receive the request's outcome and stage
  /// telemetry.
  std::string Execute(const ServeRequest& request,
                      Status* status_out = nullptr,
                      std::vector<StageTiming>* timings_out = nullptr);

  /// Current metrics snapshot (what a `stats` request returns under
  /// "metrics", and what --metrics-out writes at exit).
  std::string MetricsJson() const;

  ServeMetrics& metrics() { return metrics_; }
  const PipelineArtifacts& artifacts() const { return artifacts_; }
  /// The live graph (mutations land here; queries run on its PackedView).
  const DynamicGraph& dynamic_graph() const { return dynamic_; }

  /// True once a shutdown request was executed; the owner's accept loop
  /// checks this between sessions.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_relaxed);
  }

 private:
  void ExecuteLoop(RequestQueue* queue, LineChannel* channel);

  /// Weighted-path-mode fallback: ball invalidation is unsound there, so
  /// every mutation dirties every anchor. Returns the fanout (all anchors).
  int MarkAllAnchors();

  /// Applies one edge mutation with the correct mark ordering (add marks
  /// after, remove marks before) — the single code path live requests AND
  /// WAL replay go through, which is what makes recovery bitwise faithful.
  bool ApplyEdgeMutation(bool add, int u, int v, int* fanout);

  /// Replays one recovered WAL record through the live code paths.
  Status ReplayWalRecord(const WalRecord& record);

  /// Cadence check after an applied mutation: snapshot failures degrade to
  /// a durability-error counter (the WAL still covers the session), never
  /// a request failure.
  void MaybeSnapshot();

  const Graph* graph_;
  PipelineArtifacts artifacts_;
  ServeOptions options_;
  // The live-mutation state, all touched only from the executor thread:
  // the slack-CSR graph, the ball-invalidation tracker over the resident
  // anchors, and the refresh path's cached per-anchor candidate lists.
  DynamicGraph dynamic_;
  AnchorDirtyTracker tracker_;
  RefreshState refresh_state_;
  MatrixArena arena_;  ///< Warm training buffers shared across requests.
  // Durability (executor-thread-only, like the mutation state): the WAL
  // every applied mutation/refresh/compact lands in before its ack, and
  // the mutation count driving the snapshot cadence.
  std::unique_ptr<WriteAheadLog> wal_;
  uint64_t mutations_since_snapshot_ = 0;
  ServeMetrics metrics_;
  std::atomic<bool> shutdown_{false};
  std::atomic<RequestQueue*> live_queue_{nullptr};  ///< Depth gauge source.
};

}  // namespace grgad

#endif  // GRGAD_SERVE_SERVER_H_
