#include "src/serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/graph/traversal_workspace.h"
#include "src/serve/request.h"

namespace grgad {
namespace {

/// Log-spaced latency bucket upper bounds (milliseconds); a final +inf
/// bucket catches the tail.
constexpr double kLatencyUppersMs[] = {1,   2,    5,    10,   25,   50,  100,
                                       250, 500,  1000, 2500, 5000, 10000};
constexpr size_t kNumLatencyUppers =
    sizeof(kLatencyUppersMs) / sizeof(kLatencyUppersMs[0]);

std::string Num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

ServeMetrics::ServeMetrics(size_t queue_capacity, size_t timeline_capacity)
    : queue_capacity_(queue_capacity),
      timeline_capacity_(timeline_capacity),
      latency_buckets_(kNumLatencyUppers + 1, 0) {}

void ServeMetrics::RecordAdmit(size_t queue_depth_after) {
  std::lock_guard<std::mutex> lock(mu_);
  ++admitted_;
  peak_depth_ = std::max(peak_depth_, queue_depth_after);
}

void ServeMetrics::RecordReject() {
  std::lock_guard<std::mutex> lock(mu_);
  ++rejected_;
}

void ServeMetrics::RecordBatch(size_t batch_size, size_t depth_at_drain,
                               double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  BatchSample sample{batches_, batch_size, depth_at_drain, seconds};
  ++batches_;
  max_batch_size_ = std::max(max_batch_size_, batch_size);
  batched_requests_ += batch_size;
  batch_exec_seconds_ += seconds;
  if (timeline_capacity_ == 0) return;
  if (timeline_.size() < timeline_capacity_) {
    timeline_.push_back(sample);
  } else {
    timeline_[timeline_next_] = sample;
  }
  timeline_next_ = (timeline_next_ + 1) % timeline_capacity_;
}

void ServeMetrics::RecordRequest(const std::string& op, const Status& status,
                                 double latency_seconds,
                                 const std::vector<StageTiming>& timings) {
  std::lock_guard<std::mutex> lock(mu_);
  ++requests_;
  OpStats& op_stats = by_op_[op];
  ++op_stats.count;
  if (!status.ok()) {
    ++request_errors_;
    ++op_stats.errors;
  }
  for (const StageTiming& t : timings) {
    StageStats& stage = by_stage_[t.stage];
    ++stage.count;
    stage.seconds += t.seconds;
  }
  const double ms = latency_seconds * 1000.0;
  size_t bucket = 0;
  while (bucket < kNumLatencyUppers && ms > kLatencyUppersMs[bucket]) {
    ++bucket;
  }
  ++latency_buckets_[bucket];
  max_latency_ms_ = std::max(max_latency_ms_, ms);
  total_latency_ms_ += ms;
  op_stats.total_ms += ms;
}

void ServeMetrics::RecordMutation(bool applied, int fanout) {
  std::lock_guard<std::mutex> lock(mu_);
  ++mutations_;
  if (applied) ++mutations_applied_;
  fanout_total_ += static_cast<uint64_t>(fanout);
  fanout_max_ = std::max(fanout_max_, static_cast<uint64_t>(fanout));
}

void ServeMetrics::RecordRefresh(size_t dirty, size_t reused) {
  std::lock_guard<std::mutex> lock(mu_);
  ++refreshes_;
  refreshed_anchors_ += dirty;
  reused_anchors_ += reused;
}

void ServeMetrics::SetDurabilityEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  durability_enabled_ = enabled;
}

void ServeMetrics::RecordWalAppend(size_t bytes, bool fsynced) {
  std::lock_guard<std::mutex> lock(mu_);
  ++wal_appends_;
  wal_bytes_ += bytes;
  if (fsynced) ++fsyncs_;
}

void ServeMetrics::RecordWalSync() {
  std::lock_guard<std::mutex> lock(mu_);
  ++fsyncs_;
}

void ServeMetrics::RecordSnapshot(uint64_t wal_seq) {
  std::lock_guard<std::mutex> lock(mu_);
  ++snapshots_;
  wal_seq_ = wal_seq;
}

void ServeMetrics::RecordRecovery(size_t replayed, size_t truncated,
                                  const std::string& note) {
  std::lock_guard<std::mutex> lock(mu_);
  replayed_records_ += replayed;
  truncated_tail_records_ += truncated;
  if (!note.empty()) last_durability_error_ = note;
}

void ServeMetrics::RecordDurabilityError(const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  ++durability_errors_;
  last_durability_error_ = status.ToString();
}

std::string ServeMetrics::SnapshotJson(size_t queue_depth,
                                       const MatrixArena* arena) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"schema\": \"grgad-serve-metrics-v3\"";

  out += ", \"queue\": {\"capacity\": " + std::to_string(queue_capacity_) +
         ", \"depth\": " + std::to_string(queue_depth) +
         ", \"peak_depth\": " + std::to_string(peak_depth_) +
         ", \"admitted\": " + std::to_string(admitted_) +
         ", \"rejected\": " + std::to_string(rejected_) + "}";

  out += ", \"requests\": {\"total\": ";
  out += std::to_string(requests_);
  out += ", \"errors\": ";
  out += std::to_string(request_errors_);
  out += ", \"by_op\": {";
  bool first = true;
  for (const auto& [op, stats] : by_op_) {
    if (!first) out += ", ";
    first = false;
    out += "\"";
    out += JsonEscapeText(op);
    out += "\": {\"count\": ";
    out += std::to_string(stats.count);
    out += ", \"errors\": ";
    out += std::to_string(stats.errors);
    out += ", \"total_ms\": ";
    out += Num(stats.total_ms);
    out += "}";
  }
  out += "}}";

  const double mean_batch =
      batches_ > 0
          ? static_cast<double>(batched_requests_) / static_cast<double>(batches_)
          : 0.0;
  out += ", \"batches\": {\"count\": " + std::to_string(batches_) +
         ", \"max_size\": " + std::to_string(max_batch_size_) +
         ", \"mean_size\": " + Num(mean_batch) +
         ", \"exec_seconds\": " + Num(batch_exec_seconds_) + "}";

  out += ", \"latency_ms\": {\"buckets\": [";
  for (size_t i = 0; i < latency_buckets_.size(); ++i) {
    if (i) out += ", ";
    out += "{\"le\": ";
    out += i < kNumLatencyUppers ? Num(kLatencyUppersMs[i]) : "null";
    out += ", \"count\": " + std::to_string(latency_buckets_[i]) + "}";
  }
  out += "], \"max_ms\": ";
  out += Num(max_latency_ms_);
  out += ", \"total_ms\": ";
  out += Num(total_latency_ms_);
  out += "}";

  out += ", \"stages\": {";
  first = true;
  for (const auto& [stage, stats] : by_stage_) {
    if (!first) out += ", ";
    first = false;
    out += "\"";
    out += JsonEscapeText(stage);
    out += "\": {\"count\": ";
    out += std::to_string(stats.count);
    out += ", \"seconds\": ";
    out += Num(stats.seconds);
    out += "}";
  }
  out += "}";

  out += ", \"mutations\": {\"total\": " + std::to_string(mutations_) +
         ", \"applied\": " + std::to_string(mutations_applied_) +
         ", \"fanout_total\": " + std::to_string(fanout_total_) +
         ", \"fanout_max\": " + std::to_string(fanout_max_) +
         ", \"refreshes\": " + std::to_string(refreshes_) +
         ", \"refreshed_anchors\": " + std::to_string(refreshed_anchors_) +
         ", \"reused_anchors\": " + std::to_string(reused_anchors_) + "}";

  out += std::string(", \"durability\": {\"enabled\": ") +
         (durability_enabled_ ? "true" : "false") +
         ", \"wal_appends\": " + std::to_string(wal_appends_) +
         ", \"wal_bytes\": " + std::to_string(wal_bytes_) +
         ", \"fsyncs\": " + std::to_string(fsyncs_) +
         ", \"snapshots\": " + std::to_string(snapshots_) +
         ", \"wal_seq\": " + std::to_string(wal_seq_) +
         ", \"replayed_records\": " + std::to_string(replayed_records_) +
         ", \"truncated_tail_records\": " +
         std::to_string(truncated_tail_records_) +
         ", \"errors\": " + std::to_string(durability_errors_) +
         ", \"last_error\": \"" + JsonEscapeText(last_durability_error_) +
         "\"}";

  out += ", \"workspace\": {\"total_heap_allocs\": " +
         std::to_string(TraversalWorkspace::TotalHeapAllocs()) + "}";

  out += ", \"arena\": {";
  if (arena != nullptr) {
    const MatrixArena::Stats stats = arena->stats();
    out += "\"acquired\": " + std::to_string(stats.acquired) +
           ", \"reused\": " + std::to_string(stats.reused) +
           ", \"heap_allocs\": " + std::to_string(stats.heap_allocs) +
           ", \"released\": " + std::to_string(stats.released) +
           ", \"bytes_served\": " + std::to_string(stats.bytes_served) +
           ", \"heap_bytes\": " + std::to_string(stats.heap_bytes);
  }
  out += "}";

  // Chronological ring dump: oldest surviving batch first.
  out += ", \"timeline\": [";
  const size_t n = timeline_.size();
  const size_t start = n < timeline_capacity_ ? 0 : timeline_next_;
  for (size_t i = 0; i < n; ++i) {
    const BatchSample& s = timeline_[(start + i) % n];
    if (i) out += ", ";
    out += "{\"batch\": " + std::to_string(s.batch) +
           ", \"size\": " + std::to_string(s.size) +
           ", \"depth_at_drain\": " + std::to_string(s.depth_at_drain) +
           ", \"seconds\": " + Num(s.seconds) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace grgad
